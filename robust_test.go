package edgedrift

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// poisonStream returns a copy of xs with non-finite features planted in
// every stride-th sample, plus the clean subset with those samples
// removed.
func poisonStream(xs [][]float64, stride int) (poisoned, filtered [][]float64) {
	for i, x := range xs {
		if i%stride == stride-1 {
			bad := append([]float64(nil), x...)
			if i%(2*stride) == stride-1 {
				bad[i%len(bad)] = math.NaN()
			} else {
				bad[0] = math.Inf(-1)
			}
			poisoned = append(poisoned, bad)
			continue
		}
		poisoned = append(poisoned, x)
		filtered = append(filtered, x)
	}
	return poisoned, filtered
}

// TestMonitorPoisonedStreamMatchesFiltered is the acceptance test at the
// public API: a NaN/Inf-interleaved stream under the default Reject
// policy produces bit-identical drift events and behaviour to the same
// stream with the poisoned samples removed.
func TestMonitorPoisonedStreamMatchesFiltered(t *testing.T) {
	dirty, stream := newFit(t, defaultOpts(), 31)
	clean, _ := newFit(t, defaultOpts(), 31)
	poisoned, filtered := poisonStream(stream.X, 41)

	for _, x := range poisoned {
		r := dirty.Process(x)
		if math.IsNaN(r.Score) || math.IsInf(r.Score, 0) {
			t.Fatalf("public API returned non-finite score: %+v", r)
		}
	}
	for _, x := range filtered {
		clean.Process(x)
	}

	de, ce := dirty.DriftEvents(), clean.DriftEvents()
	if len(de) == 0 {
		t.Fatal("no drift detected")
	}
	if len(de) != len(ce) {
		t.Fatalf("drift events %v vs %v", de, ce)
	}
	for i := range de {
		if de[i] != ce[i] {
			t.Fatalf("drift event %d: %d vs %d", i, de[i], ce[i])
		}
	}
	h := dirty.Health()
	if got, want := h.Rejected, uint64(len(poisoned)-len(filtered)); got != want {
		t.Fatalf("Rejected = %d, want %d", got, want)
	}
	if !h.Healthy() {
		t.Fatalf("monitor unhealthy after guarded stream: %+v", h)
	}
}

func TestMonitorGuardClampOption(t *testing.T) {
	opts := defaultOpts()
	opts.Guard = GuardClamp
	mon, stream := newFit(t, opts, 32)
	bad := append([]float64(nil), stream.X[0]...)
	bad[1] = math.Inf(1)
	r := mon.Process(bad)
	if r.Rejected {
		t.Fatal("clamp policy rejected")
	}
	if got := mon.Health().Clamped; got != 1 {
		t.Fatalf("Clamped = %d, want 1", got)
	}
}

func TestMonitorTrainDuringMonitorSkipsBadSamples(t *testing.T) {
	opts := defaultOpts()
	opts.TrainDuringMonitor = true
	mon, stream := newFit(t, opts, 33)
	for i := 0; i < 100; i++ {
		mon.Process(stream.X[i])
	}
	bad := []float64{math.NaN(), math.NaN(), math.NaN()}
	for i := 0; i < 50; i++ {
		mon.Process(bad)
	}
	h := mon.Health()
	if h.Rejected != 50 {
		t.Fatalf("Rejected = %d, want 50", h.Rejected)
	}
	if !h.PFinite {
		t.Fatalf("model state poisoned through TrainDuringMonitor: %+v", h)
	}
	// And the monitor still predicts finite scores.
	if _, score := mon.Predict(stream.X[0]); math.IsNaN(score) {
		t.Fatal("NaN score after bad-sample burst")
	}
}

func TestFitRejectsNonFiniteSamples(t *testing.T) {
	trainX, trainY, _ := scenario(34)
	trainX[5] = []float64{1, math.NaN(), 2}
	mon, err := New(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err == nil {
		t.Fatal("Fit accepted a non-finite training sample")
	}
}

func savedMonitor(t *testing.T, seed uint64) (*Monitor, []byte) {
	t.Helper()
	mon, stream := newFit(t, defaultOpts(), seed)
	for i := 0; i < 100; i++ {
		mon.Process(stream.X[i])
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	return mon, buf.Bytes()
}

func TestLoadMonitorRejectsEveryFlippedByte(t *testing.T) {
	_, full := savedMonitor(t, 35)
	// Stride over a handful of offsets per region plus every byte of the
	// headers; checking all ~10k offsets individually is covered at the
	// package level, so sample here to keep the suite fast.
	for i := 0; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x08
		_, err := LoadMonitor(bytes.NewReader(mut))
		if err == nil {
			t.Fatalf("flipped byte %d/%d loaded successfully", i, len(full))
		}
		if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flipped byte %d/%d: err = %v, want ErrBadFormat", i, len(full), err)
		}
	}
}

func TestLoadMonitorRejectsEveryTruncation(t *testing.T) {
	_, full := savedMonitor(t, 36)
	for n := 0; n < len(full); n++ {
		if _, err := LoadMonitor(bytes.NewReader(full[:n])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFormat", n, len(full), err)
		}
	}
}

// TestLoadMonitorV1Compat reconstructs the legacy artifact layout (no
// checksum footers on the model or detector sections) and verifies it
// still loads: same payload bytes, version magics rewound to v1.
func TestLoadMonitorV1Compat(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 37)
	var mb, db bytes.Buffer
	if _, err := mon.model.Save(&mb, Float64); err != nil {
		t.Fatal(err)
	}
	if err := mon.det.SaveState(&db); err != nil {
		t.Fatal(err)
	}
	toV1 := func(b []byte, version byte) []byte {
		out := append([]byte(nil), b[:len(b)-4]...)
		if out[5] != version {
			t.Fatalf("unexpected version byte %q", out[5])
		}
		out[5] = '1'
		return out
	}
	// The v3 detector payload carries the two pinned-threshold floats
	// right after the fixed header (6-byte magic + 13 u32 + 6 f64); the
	// v1 layout predates them.
	det := toV1(db.Bytes(), '3')
	const pinsAt = 6 + 13*4 + 6*8
	det = append(det[:pinsAt], det[pinsAt+16:]...)
	legacy := append(toV1(mb.Bytes(), '2'), det...)
	got, err := LoadMonitor(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("v1 monitor artifact failed to load: %v", err)
	}
	te1, td1 := mon.Thresholds()
	te2, td2 := got.Thresholds()
	if te1 != te2 || td1 != td2 {
		t.Fatalf("thresholds (%v,%v) vs (%v,%v)", te1, td1, te2, td2)
	}
	for i := 0; i < 500; i++ {
		a := mon.Process(stream.X[i])
		b := got.Process(stream.X[i])
		if a.Label != b.Label || a.DriftDetected != b.DriftDetected {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

// TestSaveLoadContinuesAcrossReconstruction locks the full round-trip
// contract: a loaded monitor must stay bit-identical to the original
// through a drift detection AND the reconstruction that follows. The
// pre-v3 detector format dropped the calibrated θ_error pin, so the
// loaded copy re-derived its threshold after reconstruction while the
// original held the pin — a silent divergence exactly this deep into
// the stream.
func TestSaveLoadContinuesAcrossReconstruction(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 42)
	for i := 0; i < 500; i++ {
		mon.Process(stream.X[i])
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMonitor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 500; i < len(stream.X); i++ {
		a, b := mon.Process(stream.X[i]), got.Process(stream.X[i])
		if a != b {
			t.Fatalf("loaded monitor diverges at sample %d: %+v vs %+v", i, a, b)
		}
	}
	if mon.Reconstructions() == 0 {
		t.Fatal("stream never triggered a reconstruction; the test lost its teeth")
	}
	te1, td1 := mon.Thresholds()
	te2, td2 := got.Thresholds()
	if te1 != te2 || td1 != td2 {
		t.Fatalf("post-reconstruction thresholds (%v,%v) vs (%v,%v)", te1, td1, te2, td2)
	}
}

func TestSaveFileLoadMonitorFileRoundTrip(t *testing.T) {
	mon, _ := savedMonitor(t, 38)
	path := filepath.Join(t.TempDir(), "monitor.ed")
	if err := mon.SaveFile(path, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMonitorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	te1, td1 := mon.Thresholds()
	te2, td2 := got.Thresholds()
	if te1 != te2 || td1 != td2 {
		t.Fatalf("thresholds (%v,%v) vs (%v,%v)", te1, td1, te2, td2)
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want only the artifact", len(entries))
	}
	// Overwriting an existing artifact also works (rename over).
	if err := mon.SaveFile(path, Float32); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMonitorFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMonitorFileCorruptMatchesErrBadFormat(t *testing.T) {
	mon, _ := savedMonitor(t, 39)
	path := filepath.Join(t.TempDir(), "monitor.ed")
	if err := mon.SaveFile(path, Float64); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMonitorFile(path); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func FuzzLoadMonitor(f *testing.F) {
	mon, err := New(Options{Classes: 2, Inputs: 3, Hidden: 4, Window: 20, Seed: 1, NRecon: 100})
	if err != nil {
		f.Fatal(err)
	}
	trainX, trainY, _ := scenario(40)
	if err := mon.Fit(trainX, trainY); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, Float32); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/3])
	f.Add([]byte("MULTI2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := LoadMonitor(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil monitor with nil error")
		}
	})
}

package edgedrift

import (
	"testing"

	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

func scenario(seed uint64) (trainX [][]float64, trainY []int, stream *synth.Stream) {
	pre := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	post := synth.ShiftedGaussian(pre, 4)
	r := rng.New(seed)
	trainX, trainY = synth.TrainingSet(pre, 300, r)
	stream, err := synth.Generate(pre, post, 2500, synth.Spec{Kind: synth.Sudden, Start: 800}, r)
	if err != nil {
		panic(err)
	}
	return trainX, trainY, stream
}

func newFit(t *testing.T, opts Options, seed uint64) (*Monitor, *synth.Stream) {
	t.Helper()
	trainX, trainY, stream := scenario(seed)
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	return mon, stream
}

func defaultOpts() Options {
	return Options{Classes: 2, Inputs: 3, Hidden: 8, Window: 50, Seed: 1, NRecon: 300}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Classes: 0, Inputs: 3, Hidden: 4, Window: 10}); err == nil {
		t.Fatal("expected model config error")
	}
	if _, err := New(Options{Classes: 2, Inputs: 3, Hidden: 4, Window: 0}); err == nil {
		t.Fatal("expected window error")
	}
}

func TestFitValidation(t *testing.T) {
	mon, err := New(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(nil, nil); err == nil {
		t.Fatal("expected empty-fit error")
	}
	if err := mon.Fit([][]float64{{1, 2, 3}}, []int{9}); err == nil {
		t.Fatal("expected label range error")
	}
}

func TestProcessPanicsBeforeFit(t *testing.T) {
	mon, _ := New(defaultOpts())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mon.Process([]float64{1, 2, 3})
}

func TestEndToEndDriftDetection(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 2)
	thErr, thDrift := mon.Thresholds()
	if thErr <= 0 || thDrift <= 0 {
		t.Fatalf("thresholds %v/%v", thErr, thDrift)
	}
	for i, x := range stream.X {
		r := mon.Process(x)
		if i < 800 && r.DriftDetected {
			t.Fatalf("false positive at %d", i)
		}
	}
	ev := mon.DriftEvents()
	if len(ev) == 0 {
		t.Fatal("drift never detected")
	}
	if ev[0] < 800 || ev[0] > 1800 {
		t.Fatalf("detection at %d", ev[0])
	}
	if mon.Reconstructions() < 1 {
		t.Fatal("no reconstruction completed")
	}
	if mon.PhaseNow() == Reconstructing {
		t.Fatal("stuck in reconstruction")
	}
}

func TestFitUnsupervisedMatchesSupervisedBehaviour(t *testing.T) {
	trainX, _, stream := scenario(3)
	mon, err := New(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	labels, err := mon.FitUnsupervised(trainX)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != len(trainX) {
		t.Fatalf("labels %d", len(labels))
	}
	detected := false
	for _, x := range stream.X {
		if mon.Process(x).DriftDetected {
			detected = true
		}
	}
	if !detected {
		t.Fatal("unsupervised monitor missed the drift")
	}
}

func TestPredictDoesNotAdvanceDetector(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 4)
	before := mon.Detector().SamplesSeen()
	mon.Predict(stream.X[0])
	if mon.Detector().SamplesSeen() != before {
		t.Fatal("Predict advanced the detector")
	}
}

func TestMemoryAndOps(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 5)
	if mon.MemoryBytes() <= 0 {
		t.Fatal("memory audit")
	}
	var ops OpCounter
	mon.SetOps(&ops)
	mon.Process(stream.X[0])
	if ops.Total() == 0 {
		t.Fatal("ops not counted")
	}
}

func TestTrainDuringMonitor(t *testing.T) {
	opts := defaultOpts()
	opts.TrainDuringMonitor = true
	mon, stream := newFit(t, opts, 6)
	seen := mon.Model().Instance(0).SamplesSeen() + mon.Model().Instance(1).SamplesSeen()
	for i := 0; i < 100; i++ {
		mon.Process(stream.X[i])
	}
	after := mon.Model().Instance(0).SamplesSeen() + mon.Model().Instance(1).SamplesSeen()
	if after <= seen {
		t.Fatal("TrainDuringMonitor did not train")
	}
}

func TestManualThresholdsRespected(t *testing.T) {
	opts := defaultOpts()
	opts.ErrorThreshold = 123
	opts.DriftThreshold = 456
	trainX, trainY, _ := scenario(7)
	mon, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	te, td := mon.Thresholds()
	if te != 123 || td != 456 {
		t.Fatalf("thresholds %v/%v, want pinned values", te, td)
	}
}

package edgedrift

import (
	"errors"
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/fixed"
)

// Transitioner is the runtime precision-lifecycle capability
// (re-exported from core): a stage that can Demote to a cheaper numeric
// backend under pressure and Promote back exactly. Monitor implements
// it; the fleet and the pressure governor discover it through the same
// Inner() seam as the Merger and BatchStreaming capabilities.
type Transitioner = core.Transitioner

// Monitor is a Transitioner: precision is a runtime lifecycle, not a
// constructor choice.
var _ core.Transitioner = (*Monitor)(nil)

// Demote switches the monitor to a cheaper numeric backend at runtime:
// Float32 (weights narrowed, RLS state copied bit-for-bit — the twin
// keeps adapting, including drift-triggered reconstruction) or Fixed16
// (the detect-only Q16.16 port). The monitor's own full-precision state
// is frozen in place as the retained origin — nothing is widened from
// rounded state, ever — so Promote resumes it bit-exactly from the
// demotion instant. Valid demotions go strictly down: f64 → f32,
// f64 → q16, f32 → q16. Demoting an already-demoted monitor or one that
// is mid-reconstruction fails and changes nothing.
//
// The price of exact reversibility is that samples processed while
// demoted advance only the twin: promotion deliberately discards the
// degraded interval's adaptations along with its rounding. Size the
// retained state into memory budgets accordingly — MemoryBytes reports
// origin + twin while demoted.
func (m *Monitor) Demote(target Precision) error {
	if !m.fit {
		return errors.New("edgedrift: Demote before Fit")
	}
	if m.degraded != nil {
		return fmt.Errorf("edgedrift: already demoted to %v", m.ActivePrecision())
	}
	switch target {
	case Float32:
		if m.opts.Precision != Float64 {
			return fmt.Errorf("edgedrift: cannot demote %v monitor to %v (demotions go strictly down)", m.opts.Precision, target)
		}
		twin, err := m.deriveAt(Float32)
		if err != nil {
			return fmt.Errorf("edgedrift: demote to f32: %w", err)
		}
		m.degraded = twin
	case Fixed16:
		if m.det.PhaseNow() == Reconstructing {
			return errors.New("edgedrift: demote to q16 during reconstruction")
		}
		fs, err := m.deriveQ16()
		if err != nil {
			return fmt.Errorf("edgedrift: demote to q16: %w", err)
		}
		m.degraded = fs
	default:
		return fmt.Errorf("edgedrift: %v is not a demotion target (valid: f32, q16)", target)
	}
	return nil
}

// Promote discards the reduced-precision twin and resumes the retained
// full-precision origin exactly as it was when Demote ran — the origin
// was frozen, not round-tripped, so the continuation is bit-identical
// to a monitor that never degraded. It fails if the monitor is not
// demoted.
func (m *Monitor) Promote() error {
	if m.degraded == nil {
		return errors.New("edgedrift: Promote on a non-demoted monitor")
	}
	m.degraded = nil
	return nil
}

// Degraded reports whether the monitor is currently demoted.
func (m *Monitor) Degraded() bool { return m.degraded != nil }

// ActivePrecision returns the precision samples are currently processed
// at: Options.Precision normally, the twin's while demoted.
func (m *Monitor) ActivePrecision() Precision {
	switch t := m.degraded.(type) {
	case nil:
		return m.opts.Precision
	case *Monitor:
		return t.opts.Precision
	default:
		return Fixed16
	}
}

// deriveAt builds the monitor's reduced-precision float twin: the model
// converted in the oselm layer (weights narrowed, RLS state bit-exact)
// and the detector state carried through the core checkpoint path, with
// guard policy and lifetime diagnostics preserved. The receiver is not
// mutated.
func (m *Monitor) deriveAt(p Precision) (*Monitor, error) {
	mm, err := m.model.ConvertPrecision(p)
	if err != nil {
		return nil, err
	}
	det, err := m.det.CloneAt(mm)
	if err != nil {
		return nil, err
	}
	opts := m.opts
	opts.Precision = p
	return &Monitor{opts: opts, model: mm, det: det, rng: m.rng, fit: true}, nil
}

// deriveQ16 quantises the monitor's current state into the Q16.16
// detect-only stage — the shared machinery behind both QuantizeQ16 (a
// standalone port for split deployments) and Demote(Fixed16) (the same
// port installed as the monitor's degraded twin).
func (m *Monitor) deriveQ16() (*fixed.Stream, error) {
	if !m.fit {
		return nil, errors.New("edgedrift: QuantizeQ16 before Fit")
	}
	return fixed.NewStream(fixed.QuantizeDetector(m.det)), nil
}

// adoptDegraded reattaches a deserialised twin to the monitor — the
// load half of a FLEET4 degraded-member round trip. The twin must be at
// a strictly lower precision than the monitor's own.
func (m *Monitor) adoptDegraded(twin core.Streaming) error {
	if m.degraded != nil {
		return errors.New("edgedrift: monitor already has a degraded twin")
	}
	switch t := twin.(type) {
	case *Monitor:
		if m.opts.Precision != Float64 || t.opts.Precision != Float32 {
			return fmt.Errorf("edgedrift: degraded twin precision %v under a %v origin", t.opts.Precision, m.opts.Precision)
		}
	case *fixed.Stream:
		// Any float origin can carry a q16 twin.
	default:
		return fmt.Errorf("edgedrift: %T is not a degraded twin", twin)
	}
	m.degraded = twin
	return nil
}

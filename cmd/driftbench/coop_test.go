package main

import "testing"

// TestCoopGate pins the CI gate semantics: warm must converge and be no
// slower than cold, with the degenerate warm == cold == 0 stream — cold
// recovery already instantaneous — passing rather than failing the old
// strictly-faster assertion.
func TestCoopGate(t *testing.T) {
	cases := []struct {
		name       string
		warm, cold int
		wantErr    bool
	}{
		{"warm strictly faster", 10, 50, false},
		{"both instantaneous", 0, 0, false},
		{"equal nonzero", 30, 30, false},
		{"warm slower", 50, 10, true},
		{"warm never converged", -1, 50, true},
		{"cold never converged, warm did", 40, -1, false},
		{"warm instant, cold slow", 0, 200, false},
	}
	for _, c := range cases {
		err := coopGateErr(c.name, c.warm, c.cold)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: coopGateErr(%d, %d) = %v, wantErr=%v", c.name, c.warm, c.cold, err, c.wantErr)
		}
	}
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"edgedrift/internal/eval"
)

// runScenarios is the `driftbench scenarios` subcommand: the
// ext-scenarios label-delay matrix as a tracked artifact. It sweeps
// {label delay × label budget × drift type × detector mode} on the
// cooling-fan streams and, with -json, writes the matrix as the BENCH_9
// artifact CI uploads. The human-readable table on stdout is the same
// one `driftbench -exp ext-scenarios` prints.
func runScenarios(args []string) int {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for data and models")
	jsonPath := fs.String("json", "", "also write the matrix as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	m, err := eval.RunScenarios(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		return 1
	}
	out := eval.ScenariosOutcome(m)
	for _, t := range out.Tables {
		fmt.Println(t)
	}
	if err := scenariosGateErr(m); err != nil {
		fmt.Fprintln(os.Stderr, "scenarios:", err)
		return 1
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "scenarios:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return 0
}

// scenariosGateErr is the CI gate over the matrix: on the reoccurring
// stream the pooled arm must actually restore a checkpoint and recover
// no slower than the cold (unsupervised) rebuild — strictly faster when
// the cold rebuild takes any time at all. On the sudden stream the pool
// must stay a bystander: no restores, identical detection.
func scenariosGateErr(m *eval.ScenarioMatrix) error {
	find := func(scenario, mode string) *eval.ScenarioCell {
		for i := range m.Cells {
			c := &m.Cells[i]
			if c.Scenario == scenario && c.Mode == mode {
				return c
			}
		}
		return nil
	}
	cold := find("reoccurring", "unsupervised")
	pooled := find("reoccurring", "pooled")
	if cold == nil || pooled == nil {
		return fmt.Errorf("matrix is missing the reoccurring baseline cells")
	}
	if pooled.PoolRestores < 1 {
		return fmt.Errorf("reoccurring: pool never restored (hits=%d)", pooled.PoolHits)
	}
	if pooled.RecoverySamples < 0 {
		return fmt.Errorf("reoccurring: pooled arm never recovered")
	}
	if cold.RecoverySamples > 0 && pooled.RecoverySamples >= cold.RecoverySamples {
		return fmt.Errorf("reoccurring: pooled recovery (%d) not faster than cold (%d)",
			pooled.RecoverySamples, cold.RecoverySamples)
	}
	suddenCold := find("sudden", "unsupervised")
	suddenPooled := find("sudden", "pooled")
	if suddenCold == nil || suddenPooled == nil {
		return fmt.Errorf("matrix is missing the sudden baseline cells")
	}
	if suddenPooled.PoolRestores != 0 {
		return fmt.Errorf("sudden: pool restored %d times on a drift that never reoccurs", suddenPooled.PoolRestores)
	}
	if suddenPooled.DetectAt != suddenCold.DetectAt {
		return fmt.Errorf("sudden: pooled bystander diverged (detect %d vs %d)",
			suddenPooled.DetectAt, suddenCold.DetectAt)
	}
	return nil
}

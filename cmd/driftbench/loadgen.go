package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edgedrift/internal/stats"

	"edgedrift"
	"edgedrift/internal/core"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/router"
	"edgedrift/internal/wire"
)

// loadgenPoint is one row of the BENCH_7.json scaling curve.
type loadgenPoint struct {
	Shards       int     `json:"shards"`
	Streams      int     `json:"streams"`
	SamplesPerS  float64 `json:"samples_per_s"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	AckedSamples int64   `json:"acked_samples"`
	ShedSamples  int64   `json:"shed_samples"`
	Migrations   int     `json:"migrations"`
	AccountingOK bool    `json:"accounting_ok"`
	ElapsedS     float64 `json:"elapsed_s"`
}

type loadgenReport struct {
	Bench            string         `json:"bench"`
	GeneratedAt      string         `json:"generated_at"`
	Precision        string         `json:"precision"`
	Streams          int            `json:"streams"`
	SamplesPerStream int            `json:"samples_per_stream"`
	Batch            int            `json:"batch"`
	Window           int            `json:"window"`
	Points           []loadgenPoint `json:"points"`
}

// runLoadgen is the `driftbench loadgen` subcommand: it spawns K shard
// processes (re-executing this binary), fronts them with an in-process
// router, and drives M synthetic streams through the tier with a
// pipelined send window per stream — then repeats for each K in
// -shard-range and writes the scaling curve (aggregate samples/s and
// p99 ingest latency per point) to -json. When K > 1 it live-migrates
// one stream mid-run and folds the result into the point. Every point
// asserts the conservation identity sent == acked + shed exactly.
func runLoadgen(args []string) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	shardRange := fs.String("shard-range", "1,2,4", "comma-separated shard counts, one scaling point each")
	streams := fs.Int("streams", 16, "synthetic streams driven concurrently")
	samples := fs.Int("samples", 20000, "samples per stream per point")
	batch := fs.Int("batch", 256, "samples per batch frame")
	window := fs.Int("window", 8, "pipelined batches in flight per stream")
	jsonPath := fs.String("json", "BENCH_7.json", "write the scaling curve to this file")
	outDir := fs.String("out", "loadgen-out", "scratch directory (template artifact, shard logs)")
	precision := fs.String("precision", "f64", "shard member backend: f64, f32, or q16")
	seed := fs.Uint64("seed", 1, "random seed for the trained template")
	queueDepth := fs.Int("queue-depth", 64, "per-connection shard queue bound in batches")
	shedAfter := fs.Duration("shed-after", 0, "shard admission policy (see `driftbench shard`)")
	pressureBudget := fs.Duration("pressure-latency-budget", 0, "run each shard under the adaptive capacity governor with this per-batch p99 budget (0 disables)")
	pressureInterval := fs.Duration("pressure-interval", 0, "governor sampling interval in spawned shards (0 means 500ms)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	prec, err := edgedrift.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: unknown precision %q\n", *precision)
		return 2
	}
	var counts []int
	for _, s := range strings.Split(*shardRange, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "loadgen: bad -shard-range entry %q\n", s)
			return 2
		}
		counts = append(counts, n)
	}
	if *streams < 1 || *samples < *batch || *batch < 1 || *window < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: need streams >= 1, batch >= 1, window >= 1, samples >= batch")
		return 2
	}

	bin, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "loadgen: training template (%s)...\n", prec)
	tmpl, err := trainTemplate(*seed, prec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: train template: %v\n", err)
		return 1
	}
	tmplPath := filepath.Join(*outDir, "template.bin")
	if err := os.WriteFile(tmplPath, tmpl, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	// Drive data: the NSL-KDD surrogate test stream, cycled per stream.
	data := nslkdd.Generate(nslkdd.DefaultParams()).TestX

	report := loadgenReport{
		Bench:       "distributed-serve-tier",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Precision:   prec.String(), Streams: *streams,
		SamplesPerStream: *samples, Batch: *batch, Window: *window,
	}
	for _, k := range counts {
		pt, err := runLoadgenPoint(bin, tmplPath, data, pointConfig{
			shards: k, streams: *streams, samples: *samples, batch: *batch,
			window: *window, precision: *precision, queueDepth: *queueDepth,
			shedAfter: *shedAfter, pressureBudget: *pressureBudget,
			pressureInterval: *pressureInterval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %d shards: %v\n", k, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d shards: %.0f samples/s, p99 %.2f ms, shed %d, migrations %d, accounting_ok=%v\n",
			pt.Shards, pt.SamplesPerS, pt.P99Ms, pt.ShedSamples, pt.Migrations, pt.AccountingOK)
		report.Points = append(report.Points, pt)
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *jsonPath)
	return 0
}

type pointConfig struct {
	shards, streams, samples, batch, window int
	precision                               string
	queueDepth                              int
	shedAfter                               time.Duration
	// pressureBudget > 0 runs each spawned shard under the adaptive
	// capacity governor with that per-batch ingest p99 budget,
	// sampling every pressureInterval.
	pressureBudget   time.Duration
	pressureInterval time.Duration
}

// runLoadgenPoint measures one shard count: spawn the shard processes,
// front them with an in-process router, drive every stream, tear down.
func runLoadgenPoint(bin, tmplPath string, data [][]float64, cfg pointConfig) (loadgenPoint, error) {
	pt := loadgenPoint{Shards: cfg.shards, Streams: cfg.streams}

	// Spawn the shard processes and scrape their ephemeral addresses.
	var procs []*exec.Cmd
	var shardAddrs []string
	defer func() {
		for _, p := range procs {
			stopProc(p)
		}
	}()
	for i := 0; i < cfg.shards; i++ {
		proc, addr, err := spawnShard(bin, tmplPath, cfg)
		if err != nil {
			return pt, err
		}
		procs = append(procs, proc)
		shardAddrs = append(shardAddrs, addr)
	}

	rt, err := router.New(router.Config{Shards: shardAddrs})
	if err != nil {
		return pt, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return pt, err
	}
	go rt.Serve(ln)
	defer rt.Close()
	routerAddr := ln.Addr().String()

	var ackedTotal atomic.Int64
	results := make([]driveResult, cfg.streams)
	start := time.Now()

	// Live migration mid-run: once half the samples are acked, move
	// stream-000 to whichever shard it is not on. Export can be refused
	// at a mid-reconstruction boundary, so retry briefly.
	migDone := make(chan int, 1)
	if cfg.shards > 1 {
		total := int64(cfg.streams) * int64(cfg.samples/cfg.batch*cfg.batch)
		go func() {
			for ackedTotal.Load() < total/2 {
				time.Sleep(2 * time.Millisecond)
			}
			from := rt.Where("stream-000")
			to := shardAddrs[0]
			if from == to {
				to = shardAddrs[1]
			}
			for attempt := 0; attempt < 50; attempt++ {
				if err := rt.Migrate("stream-000", to); err == nil {
					migDone <- 1
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
			migDone <- 0
		}()
	} else {
		migDone <- 0
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("stream-%03d", i)
			// Offset each stream into the data so shards don't process
			// identical sample sequences in lockstep.
			results[i] = driveStream(routerAddr, id, data, i*977, cfg, &ackedTotal)
		}(i)
	}
	wg.Wait()
	pt.Migrations = <-migDone
	pt.ElapsedS = time.Since(start).Seconds()

	var rtts []float64
	sent := int64(0)
	accountingOK := true
	for _, r := range results {
		if r.err != nil {
			return pt, r.err
		}
		pt.AckedSamples += r.acked
		pt.ShedSamples += r.shed
		sent += r.sent
		if r.acked+r.shed != r.sent {
			accountingOK = false
		}
		rtts = append(rtts, r.rtts...)
	}
	// Cross-check against the tier's own books: every acked sample was
	// processed exactly once (migration must not lose or double-count).
	st, err := rt.Stats()
	if err != nil {
		return pt, err
	}
	if int64(st.Samples) != pt.AckedSamples || st.ShedSamples != uint64(pt.ShedSamples) {
		accountingOK = false
	}
	pt.AccountingOK = accountingOK
	pt.SamplesPerS = float64(pt.AckedSamples) / pt.ElapsedS
	pt.P50Ms = percentile(rtts, 0.50)
	pt.P99Ms = percentile(rtts, 0.99)
	return pt, nil
}

type driveResult struct {
	sent, acked, shed int64
	rtts              []float64 // per-batch round-trip, milliseconds
	err               error
}

// driveStream pushes one stream's batches through the tier with a
// pipelined send window: the sender keeps up to cfg.window batches in
// flight while the receiver matches acks in FIFO order (the protocol
// is strictly ordered per connection) and records each round-trip.
func driveStream(addr, id string, data [][]float64, dataOff int, cfg pointConfig, ackedTotal *atomic.Int64) driveResult {
	var res driveResult
	conn, err := wire.Dial(addr, 5*time.Second)
	if err != nil {
		res.err = err
		return res
	}
	defer conn.Close()

	nBatches := cfg.samples / cfg.batch
	sendTimes := make(chan time.Time, cfg.window)
	recvDone := make(chan struct{})
	var recvErr error
	go func() {
		defer close(recvDone)
		var rs []core.Result
		for i := 0; i < nBatches; i++ {
			typ, p, err := conn.ReadFrame()
			if err != nil {
				recvErr = err
				return
			}
			res.rtts = append(res.rtts, time.Since(<-sendTimes).Seconds()*1000)
			switch typ {
			case wire.TypeBatchAck:
				var err error
				if _, rs, err = wire.ParseResults(p, rs[:0]); err != nil {
					recvErr = err
					return
				}
				res.acked += int64(len(rs))
				ackedTotal.Add(int64(len(rs)))
			case wire.TypeShed:
				_, n, err := wire.ParseShed(p)
				if err != nil {
					recvErr = err
					return
				}
				res.shed += int64(n)
			case wire.TypeError:
				recvErr = &wire.RemoteError{Msg: string(p)}
				return
			default:
				recvErr = fmt.Errorf("loadgen: unexpected reply type %#x", typ)
				return
			}
		}
	}()

	var payload []byte
	xs := make([][]float64, 0, cfg.batch)
	off := dataOff
send:
	for i := 0; i < nBatches; i++ {
		xs = xs[:0]
		for j := 0; j < cfg.batch; j++ {
			xs = append(xs, data[(off+j)%len(data)])
		}
		off += cfg.batch
		payload, err = wire.AppendBatch(payload[:0], id, xs)
		if err != nil {
			res.err = err
			break
		}
		// Blocks once cfg.window batches are outstanding.
		select {
		case sendTimes <- time.Now():
		case <-recvDone:
			break send
		}
		if err := conn.WriteFrame(wire.TypeBatch, payload); err != nil {
			res.err = err
			break
		}
		res.sent += int64(cfg.batch)
	}
	if res.err != nil {
		// Unblock the receiver — it would otherwise wait forever for
		// acks of batches that were never sent.
		conn.Close()
	}
	<-recvDone
	if res.err == nil {
		res.err = recvErr
	}
	return res
}

// spawnShard re-executes this binary as `driftbench shard` on port 0
// and scrapes the bound address from its first stdout line.
func spawnShard(bin, tmplPath string, cfg pointConfig) (*exec.Cmd, string, error) {
	args := []string{"shard",
		"-addr", "127.0.0.1:0",
		"-template", tmplPath,
		"-precision", cfg.precision,
		"-queue-depth", strconv.Itoa(cfg.queueDepth),
		"-shed-after", cfg.shedAfter.String(),
	}
	if cfg.pressureBudget > 0 {
		args = append(args,
			"-pressure-latency-budget", cfg.pressureBudget.String(),
			"-pressure-interval", cfg.pressureInterval.String(),
		)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " "); i >= 0 {
				addrCh <- line[i+1:]
			}
		}
		close(addrCh)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			stopProc(cmd)
			return nil, "", fmt.Errorf("shard process produced no listen address")
		}
		return cmd, addr, nil
	case <-time.After(2 * time.Minute):
		stopProc(cmd)
		return nil, "", fmt.Errorf("timed out waiting for shard to listen")
	}
}

// stopProc interrupts a shard process and reaps it, escalating to Kill
// if it ignores the signal.
func stopProc(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	cmd.Process.Signal(os.Interrupt)
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		cmd.Process.Kill()
		<-done
	}
}

// percentile reads the q-quantile from unsorted latency samples,
// deferring to the stats package instead of hand-rolling the index
// arithmetic.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return stats.Quantile(xs, q)
}

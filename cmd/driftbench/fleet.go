package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/eval"
)

// runFleet is the `driftbench fleet` subcommand: it replays the NSL-KDD
// surrogate as K interleaved streams (sample i goes to stream i mod K),
// registers one trained monitor per stream in a Fleet, and measures
// per-stream and aggregate throughput while drift events fan in on the
// single subscriber channel. One monitor is trained once and cloned
// K times through its serialised artifact, so fleet setup cost is
// deserialisation, not K trainings.
func runFleet(args []string) int {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	streams := fs.Int("streams", 8, "independent streams (NSL-KDD test set interleaved round-robin)")
	shards := fs.Int("shards", 8, "fleet registry shard count")
	parallel := fs.Int("parallel", 0, "streams processed concurrently (0 means GOMAXPROCS)")
	batch := fs.Int("batch", 512, "samples per ProcessBatch call")
	seed := fs.Uint64("seed", 1, "random seed for the shared trained monitor")
	precision := fs.String("precision", "f64", "member numeric backend: f64, f32, or q16 (fixed-point inference port)")
	jsonPath := fs.String("json", "", "also write the throughput summary as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *streams < 1 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "fleet: -streams and -batch must be >= 1")
		return 2
	}
	prec, err := edgedrift.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: unknown precision %q; use f64, f32 or q16\n", *precision)
		return 2
	}

	ds := nslkdd.Generate(nslkdd.DefaultParams())
	// The Q16.16 port is quantised from a fitted monitor, so the shared
	// artifact is trained (and serialised) at f64 and each clone is
	// quantised after loading; f32 trains and ships at f32 directly.
	trainPrec := prec
	if prec == edgedrift.Fixed16 {
		trainPrec = edgedrift.Float64
	}
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: *seed,
		Precision: trainPrec,
	})
	if err == nil {
		err = mon.Fit(ds.TrainX, ds.TrainY)
	}
	var art bytes.Buffer
	if err == nil {
		err = mon.Save(&art, trainPrec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: train shared monitor: %v\n", err)
		return 1
	}

	f := edgedrift.NewFleet(edgedrift.FleetConfig{
		Shards: *shards, Workers: *parallel, EventBuffer: 4 * *streams,
	})
	events := f.Events()

	parts := make([][][]float64, *streams)
	for i, x := range ds.TestX {
		parts[i%*streams] = append(parts[i%*streams], x)
	}
	ids := make([]string, *streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%03d", i)
		m, err := edgedrift.LoadMonitor(bytes.NewReader(art.Bytes()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: clone monitor: %v\n", err)
			return 1
		}
		if prec == edgedrift.Fixed16 {
			st, err := m.QuantizeQ16()
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleet: quantize member: %v\n", err)
				return 1
			}
			if err := f.AddStage(ids[i], st); err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
				return 1
			}
			continue
		}
		if err := f.Add(ids[i], m); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
	}

	durs := make([]time.Duration, *streams)
	pool := eval.NewPool(*parallel)
	wall := time.Now()
	for i := range ids {
		i := i
		pool.Go(func() error {
			part := parts[i]
			start := time.Now()
			for lo := 0; lo < len(part); lo += *batch {
				hi := lo + *batch
				if hi > len(part) {
					hi = len(part)
				}
				if _, err := f.ProcessBatch(ids[i], part[lo:hi]); err != nil {
					return err
				}
			}
			durs[i] = time.Since(start)
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	elapsed := time.Since(wall)

	rates := make([]float64, 0, *streams)
	for i, d := range durs {
		if d > 0 && len(parts[i]) > 0 {
			rates = append(rates, float64(len(parts[i]))/d.Seconds())
		}
	}
	sort.Float64s(rates)
	fanned := 0
	for {
		select {
		case <-events:
			fanned++
			continue
		default:
		}
		break
	}
	fired := 0
	var drifts uint64
	for _, id := range ids {
		_, d, err := f.MemberStats(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		if d > 0 {
			fired++
		}
		drifts += d
	}
	h := f.Health()

	fmt.Printf("fleet: %d streams over %d shards, %d worker(s), %d-sample batches, %s members\n",
		*streams, *shards, poolWorkers(*parallel), *batch, prec)
	fmt.Printf("replayed %d NSL-KDD samples (%d per stream, drift at sample %d of the interleaved stream)\n",
		len(ds.TestX), len(parts[0]), ds.DriftAt)
	fmt.Printf("aggregate throughput: %.0f samples/s (wall %.3fs)\n",
		float64(len(ds.TestX))/elapsed.Seconds(), elapsed.Seconds())
	if len(rates) > 0 {
		fmt.Printf("per-stream throughput: min %.0f, median %.0f, max %.0f samples/s\n",
			rates[0], rates[len(rates)/2], rates[len(rates)-1])
	}
	fmt.Printf("drift: %d of %d streams fired, %d detections total, %d events fanned in, %d dropped\n",
		fired, *streams, drifts, fanned, f.EventsDropped())
	fmt.Printf("fleet memory: %.1f kB retained; %s\n",
		float64(f.MemoryBytes())/1024, h.String())

	if *jsonPath != "" {
		sum := fleetSummary{
			Streams: *streams, Shards: *shards, Workers: poolWorkers(*parallel), Batch: *batch,
			Precision: prec.String(),
			Samples:   len(ds.TestX),
			WallSecs:  elapsed.Seconds(),
			Aggregate: float64(len(ds.TestX)) / elapsed.Seconds(),
			Drifts:    drifts, StreamsFired: fired,
			EventsFanned: fanned, EventsDropped: f.EventsDropped(),
			MemoryBytes: f.MemoryBytes(), Healthy: h.Healthy(),
		}
		if len(rates) > 0 {
			sum.PerStreamMin = rates[0]
			sum.PerStreamMedian = rates[len(rates)/2]
			sum.PerStreamMax = rates[len(rates)-1]
		}
		if err := writeFleetJSON(*jsonPath, sum); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
	}
	return 0
}

// fleetSummary is the machine-readable form of the fleet benchmark
// report, written by -json for CI artifact tracking.
type fleetSummary struct {
	Streams         int     `json:"streams"`
	Shards          int     `json:"shards"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch"`
	Precision       string  `json:"precision"`
	Samples         int     `json:"samples"`
	WallSecs        float64 `json:"wall_secs"`
	Aggregate       float64 `json:"aggregate_samples_per_sec"`
	PerStreamMin    float64 `json:"per_stream_min_samples_per_sec"`
	PerStreamMedian float64 `json:"per_stream_median_samples_per_sec"`
	PerStreamMax    float64 `json:"per_stream_max_samples_per_sec"`
	Drifts          uint64  `json:"drifts"`
	StreamsFired    int     `json:"streams_fired"`
	EventsFanned    int     `json:"events_fanned"`
	EventsDropped   uint64  `json:"events_dropped"`
	MemoryBytes     int     `json:"memory_bytes"`
	Healthy         bool    `json:"healthy"`
}

func writeFleetJSON(path string, sum fleetSummary) error {
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// poolWorkers mirrors eval.NewPool's worker defaulting for display.
func poolWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"edgedrift/internal/pressure/bench"
)

// runPressure is the `driftbench pressure` subcommand: the forced-
// degradation matrix behind the adaptive capacity governor. Each Table
// 2/3 stream is replayed at every degradation level the governor can
// force (f64 baseline, demoted-f32, demoted-q16), reporting throughput
// and detection-quality deltas, gated on the demote→promote off-path
// being bit-exactly free. -json writes the BENCH_10 artifact tracked by
// CI; a failed golden gate is a non-zero exit even when the matrix
// itself completed.
func runPressure(args []string) int {
	fs := flag.NewFlagSet("pressure", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for datasets and monitors")
	jsonPath := fs.String("json", "", "also write the matrix as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rep, err := bench.Run(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pressure: %v\n", err)
		return 1
	}

	fmt.Printf("pressure: forced-degradation matrix, seed %d\n", rep.Seed)
	fmt.Printf("%-12s %-5s %14s %12s %8s %8s %12s\n",
		"stream", "level", "samples/s", "accuracy", "Δacc", "delay", "retained kB")
	for _, p := range rep.Points {
		acc, dacc := "-", "-"
		if p.AccuracyPct >= 0 {
			acc = fmt.Sprintf("%.2f%%", p.AccuracyPct)
			dacc = fmt.Sprintf("%+.2f", p.AccuracyDeltaPct)
		}
		delay := "-"
		if p.Delay >= 0 {
			delay = fmt.Sprintf("%d", p.Delay)
		}
		fmt.Printf("%-12s %-5s %14.0f %12s %8s %8s %12.1f\n",
			p.Stream, p.Level, p.SamplesPerSec, acc, dacc, delay, float64(p.MemoryBytes)/1024)
	}
	fmt.Printf("golden gate (demote→promote off-path bit-exact): %v\n", rep.GoldenGateOK)

	if *jsonPath != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pressure: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pressure: %v\n", err)
			return 1
		}
	}
	if !rep.GoldenGateOK {
		fmt.Fprintln(os.Stderr, "pressure: golden gate FAILED: a demote→promote excursion perturbed the full-precision path")
		return 1
	}
	return 0
}

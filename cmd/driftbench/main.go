// Command driftbench regenerates the paper's tables and figures.
//
// Usage:
//
//	driftbench -exp table2            # one experiment
//	driftbench -exp all               # everything, paper order
//	driftbench -exp all -parallel 4   # fan experiments out over 4 workers
//	driftbench -exp fig4 -csv out/    # also dump CSV series/tables
//	driftbench -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//	driftbench -exp table2 -precision f32   # same experiment on the float32 backend
//	driftbench -list                  # show the experiment registry
//	driftbench fleet -streams 64      # multi-stream fleet throughput
//	driftbench fleet -precision q16   # fleet of Q16.16 fixed-point members
//	driftbench serve -addr :9100      # replay streams, serve /metrics + /health
//	driftbench precision -json BENCH_6.json  # f64/f32/q16 scoring throughput
//	driftbench shard -addr :7600      # one shard of the distributed serve tier
//	driftbench route -shards host1:7600,host2:7600  # consistent-hash router
//	driftbench loadgen -shard-range 1,2,4 -json BENCH_7.json  # tier scaling curve
//	driftbench coop -json BENCH_8.json  # cooperative vs per-stream drift recovery
//	driftbench scenarios -json BENCH_9.json  # label-delay matrix: hybrid detection + model pool
//	driftbench pressure -json BENCH_10.json  # forced-degradation matrix + golden gate
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"edgedrift"
	"edgedrift/internal/eval"
)

// main delegates to run so that deferred cleanup — stopping the CPU
// profiler and closing profile files — executes on every exit path.
// Calling os.Exit directly from the work path would skip the defers and
// silently truncate the profiles exactly when an experiment fails, the
// case most worth profiling.
func main() {
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		os.Exit(runFleet(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		os.Exit(runServe(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "precision" {
		os.Exit(runPrecision(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		os.Exit(runShard(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "route" {
		os.Exit(runRoute(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		os.Exit(runLoadgen(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "coop" {
		os.Exit(runCoop(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "scenarios" {
		os.Exit(runScenarios(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "pressure" {
		os.Exit(runPressure(os.Args[2:]))
	}
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "experiment id (fig1, fig4, table2..table6, ablation-*, ext-*), 'all', 'ablations', or 'extensions'")
	precision := flag.String("precision", "f64", "numeric backend the experiment models compute at (f64 or f32; q16 is inference-only)")
	seed := flag.Uint64("seed", 1, "random seed for the whole experiment")
	csvDir := flag.String("csv", "", "directory to write CSV tables/series into")
	list := flag.Bool("list", false, "list available experiments and exit")
	parallel := flag.Int("parallel", 1, "experiments evaluated concurrently (1 keeps host wall-clock columns contention-free; 0 means GOMAXPROCS)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the experiment runs to this file")
	flag.Parse()

	if *list {
		for _, e := range eval.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		for _, e := range eval.RegistryAblations() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		for _, e := range eval.RegistryExtensions() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	prec, err := edgedrift.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unknown precision %q; use f64, f32 or q16\n", *precision)
		return 2
	}
	if err := eval.SetPrecision(prec); err != nil {
		// q16 lands here: the experiments train models, and the Q16.16
		// backend is inference-only (quantised from a fitted monitor).
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}

	var todo []eval.Experiment
	switch *exp {
	case "all":
		todo = eval.Registry()
	case "ablations":
		todo = eval.RegistryAblations()
	case "extensions":
		todo = eval.RegistryExtensions()
	default:
		e, ok := eval.LookupAny(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			return 2
		}
		todo = []eval.Experiment{e}
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	if err := runAll(todo, *seed, *parallel, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 1
	}

	if *memProfile != "" {
		if err := writeMemProfile(*memProfile); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			return 1
		}
	}
	return 0
}

// writeMemProfile snapshots the heap to path, reporting close errors so
// a full disk does not pass silently.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // settle the heap so the profile shows retained state
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runAll evaluates the experiments — concurrently when parallel != 1 —
// and prints their tables in registry order regardless of completion
// order. Each experiment's outcome lands in its pre-assigned slot; only
// printing and CSV writing happen after the pool drains.
func runAll(todo []eval.Experiment, seed uint64, parallel int, csvDir string) error {
	type timed struct {
		out     *eval.Outcome
		elapsed time.Duration
	}
	results := make([]timed, len(todo))
	pool := eval.NewPool(parallel)
	for i, e := range todo {
		i, e := i, e
		pool.Go(func() error {
			start := time.Now()
			out := e.Run(seed)
			results[i] = timed{out: out, elapsed: time.Since(start)}
			return nil
		})
	}
	if err := pool.Wait(); err != nil {
		return err
	}
	for i, e := range todo {
		fmt.Printf("== %s (%s, %.1fs)\n\n", e.ID, e.Title, results[i].elapsed.Seconds())
		for _, t := range results[i].out.Tables {
			fmt.Println(t.String())
		}
		if csvDir != "" {
			if err := writeCSV(csvDir, e.ID, results[i].out); err != nil {
				return fmt.Errorf("csv: %w", err)
			}
		}
	}
	return nil
}

func writeCSV(dir, id string, out *eval.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range out.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", id, i))
		if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for _, f := range out.Figures {
		name := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, f.Name))
		if err := os.WriteFile(name, []byte(eval.SeriesCSV(f.XLabel, f.Series)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Command driftbench regenerates the paper's tables and figures.
//
// Usage:
//
//	driftbench -exp table2            # one experiment
//	driftbench -exp all               # everything, paper order
//	driftbench -exp fig4 -csv out/    # also dump CSV series/tables
//	driftbench -list                  # show the experiment registry
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"edgedrift/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig1, fig4, table2..table6, ablation-*), 'all', or 'ablations'")
	seed := flag.Uint64("seed", 1, "random seed for the whole experiment")
	csvDir := flag.String("csv", "", "directory to write CSV tables/series into")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range eval.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		for _, e := range eval.RegistryAblations() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		for _, e := range eval.RegistryExtensions() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []eval.Experiment
	switch *exp {
	case "all":
		todo = eval.Registry()
	case "ablations":
		todo = eval.RegistryAblations()
	case "extensions":
		todo = eval.RegistryExtensions()
	default:
		e, ok := eval.LookupAny(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		todo = []eval.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		out := e.Run(*seed)
		fmt.Printf("== %s (%s, %.1fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		for _, t := range out.Tables {
			fmt.Println(t.String())
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, out); err != nil {
				fmt.Fprintf(os.Stderr, "csv: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

func writeCSV(dir, id string, out *eval.Outcome) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, t := range out.Tables {
		name := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", id, i))
		if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
	}
	for _, f := range out.Figures {
		name := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", id, f.Name))
		if err := os.WriteFile(name, []byte(eval.SeriesCSV(f.XLabel, f.Series)), 0o644); err != nil {
			return err
		}
	}
	return nil
}

package main

import (
	"strings"
	"testing"

	"edgedrift/internal/eval"
)

// matrix builds a minimal passing matrix the gate cases below perturb.
func matrix() *eval.ScenarioMatrix {
	return &eval.ScenarioMatrix{Cells: []eval.ScenarioCell{
		{Scenario: "reoccurring", Mode: "unsupervised", DetectAt: 156, RecoverySamples: 200},
		{Scenario: "reoccurring", Mode: "pooled", DetectAt: 156, RecoverySamples: 50, PoolHits: 1, PoolRestores: 1},
		{Scenario: "sudden", Mode: "unsupervised", DetectAt: 156, RecoverySamples: 200},
		{Scenario: "sudden", Mode: "pooled", DetectAt: 156, RecoverySamples: 200},
	}}
}

func TestScenariosGate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(m *eval.ScenarioMatrix)
		wantErr string
	}{
		{"pass", func(m *eval.ScenarioMatrix) {}, ""},
		{"pooled equals instantaneous cold", func(m *eval.ScenarioMatrix) {
			m.Cells[0].RecoverySamples = 0
			m.Cells[1].RecoverySamples = 0
		}, ""},
		{"never restored", func(m *eval.ScenarioMatrix) {
			m.Cells[1].PoolRestores = 0
		}, "never restored"},
		{"pooled never recovered", func(m *eval.ScenarioMatrix) {
			m.Cells[1].RecoverySamples = -1
		}, "never recovered"},
		{"pooled slower than cold", func(m *eval.ScenarioMatrix) {
			m.Cells[1].RecoverySamples = 300
		}, "not faster"},
		{"restore on sudden drift", func(m *eval.ScenarioMatrix) {
			m.Cells[3].PoolRestores = 2
		}, "never reoccurs"},
		{"pooled bystander diverged", func(m *eval.ScenarioMatrix) {
			m.Cells[3].DetectAt = 170
		}, "diverged"},
		{"missing cells", func(m *eval.ScenarioMatrix) {
			m.Cells = m.Cells[:1]
		}, "missing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := matrix()
			tc.mutate(m)
			err := scenariosGateErr(m)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected gate failure: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("gate error %v, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

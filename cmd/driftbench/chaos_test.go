package main

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/wire"
)

// buildOnce builds the driftbench binary exactly once per test run so
// the chaos test can spawn real shard processes through the same
// spawnShard helper the loadgen harness uses.
var buildOnce struct {
	sync.Once
	bin string
	err error
}

func driftbenchBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "driftbench-chaos")
		if err != nil {
			buildOnce.err = err
			return
		}
		bin := filepath.Join(dir, "driftbench")
		out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
		if err != nil {
			buildOnce.err = errors.New(string(out))
			return
		}
		buildOnce.bin = bin
	})
	if buildOnce.err != nil {
		t.Fatalf("build driftbench: %v", buildOnce.err)
	}
	return buildOnce.bin
}

// TestChaosKillShardUnderGovernor is the process-level chaos round
// trip: a shard process running the adaptive capacity governor is
// driven until it demotes members mid-traffic, one stream's checkpoint
// is migrated out (tombstoning it), the process is hard-killed with
// batches in flight, and a replacement process adopts the checkpoint.
// The books must reconcile across the kill: the checkpoint's lifetime
// sample counter continues exactly where the dead process left it, the
// tombstone refuses late batches until the death and does not leak
// into the replacement, and the governor resumes demoting in the new
// process.
func TestChaosKillShardUnderGovernor(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real shard processes")
	}
	bin := driftbenchBinary(t)

	tmpl, err := trainTemplate(1, edgedrift.Float64)
	if err != nil {
		t.Fatal(err)
	}
	tmplPath := filepath.Join(t.TempDir(), "template.bin")
	if err := os.WriteFile(tmplPath, tmpl, 0o644); err != nil {
		t.Fatal(err)
	}
	data := nslkdd.Generate(nslkdd.DefaultParams()).TestX
	cfg := pointConfig{
		precision: "f64", queueDepth: 64,
		// 1ns budget: every batch is over budget, so the governor
		// demotes whenever traffic flows and recovers when it stops.
		pressureBudget: time.Nanosecond, pressureInterval: 5 * time.Millisecond,
	}

	proc, addr, err := spawnShard(bin, tmplPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopProc(proc)
	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Drive two streams until the governor has demoted under load.
	const batch = 100
	sentBeta := uint64(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		for _, id := range []string{"alpha", "beta"} {
			rs, shed, err := cl.SendBatch(nil, id, data[:batch])
			if err != nil {
				t.Fatalf("send %s: %v", id, err)
			}
			if shed != 0 || len(rs) != batch {
				t.Fatalf("send %s: %d results, %d shed", id, len(rs), shed)
			}
			if id == "beta" {
				sentBeta += batch
			}
		}
		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded > 0 && st.Demotions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("governor never demoted under sustained over-budget traffic")
		}
	}

	// Checkpoint beta out. Export is refused at a mid-reconstruction
	// boundary, so push the stream forward until it succeeds. The
	// checkpoint's lifetime counter must then match every sample we
	// pushed, and the tombstone must refuse late batches.
	ckpt, err := cl.MigrateOut("beta")
	for attempt := 0; err != nil && attempt < 100; attempt++ {
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			t.Fatal(err)
		}
		if _, _, err = cl.SendBatch(nil, "beta", data[:batch]); err != nil {
			t.Fatal(err)
		}
		sentBeta += batch
		ckpt, err = cl.MigrateOut("beta")
	}
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Stream != "beta" || ckpt.Samples != sentBeta {
		t.Fatalf("checkpoint stream=%q samples=%d, want beta/%d", ckpt.Stream, ckpt.Samples, sentBeta)
	}
	var re *wire.RemoteError
	if _, _, err := cl.SendBatch(nil, "beta", data[:batch]); !errors.As(err, &re) {
		t.Fatalf("tombstoned stream accepted a late batch (err=%v)", err)
	}

	// Hard-kill the process with alpha batches in flight.
	killed := make(chan struct{})
	go func() {
		conn, err := wire.DialClient(addr, 2*time.Second)
		if err != nil {
			close(killed)
			return
		}
		defer conn.Close()
		for {
			if _, _, err := conn.SendBatch(nil, "alpha", data[:batch]); err != nil {
				close(killed) // the kill landed mid-batch
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the hammer goroutine get in flight
	if err := proc.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	proc.Wait()
	select {
	case <-killed:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight sender never observed the kill")
	}

	// Replacement process: adopt the checkpoint and reconcile.
	proc2, addr2, err := spawnShard(bin, tmplPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stopProc(proc2)
	cl2, err := wire.DialClient(addr2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.MigrateIn(ckpt); err != nil {
		t.Fatal(err)
	}

	// The adopted member serves (the dead process's tombstone did not
	// leak into the replacement) and arrives still demoted — the
	// checkpoint preserved its degraded state across the kill, so the
	// governor has nothing to do for beta. A fresh stream gives it new
	// work, proving the control loop runs in the replacement too.
	acked2, ackedGamma := uint64(0), uint64(0)
	deadline = time.Now().Add(10 * time.Second)
	for {
		for _, id := range []string{"beta", "gamma"} {
			rs, shed, err := cl2.SendBatch(nil, id, data[:batch])
			if err != nil {
				t.Fatalf("post-restart send %s: %v", id, err)
			}
			if shed != 0 || len(rs) != batch {
				t.Fatalf("post-restart send %s: %d results, %d shed", id, len(rs), shed)
			}
			if id == "beta" {
				acked2 += batch
			} else {
				ackedGamma += batch
			}
		}
		st, err := cl2.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.MigratedIn != 1 {
			t.Fatalf("replacement shard migrated-in counter = %d, want 1", st.MigratedIn)
		}
		// The roll-up carries the checkpoint's lifetime counter over, so
		// the replacement's books read pre-kill samples + its own acks.
		if st.Samples != sentBeta+acked2+ackedGamma {
			t.Fatalf("replacement shard books %d samples, want %d+%d+%d",
				st.Samples, sentBeta, acked2, ackedGamma)
		}
		if st.Degraded >= 2 && st.Demotions > 0 {
			// gamma demoted by the replacement's governor; beta still
			// degraded from the imported checkpoint.
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("governor never demoted in the replacement process (stats %+v)", st)
		}
	}

	// Final reconciliation: export beta again — its lifetime counter
	// must be exactly pre-kill samples plus post-restart acks, proving
	// the checkpoint lost nothing and double-counted nothing.
	ckpt2, err := cl2.MigrateOut("beta")
	for attempt := 0; err != nil && attempt < 100; attempt++ {
		var re *wire.RemoteError
		if !errors.As(err, &re) {
			t.Fatal(err)
		}
		if _, _, err = cl2.SendBatch(nil, "beta", data[:batch]); err != nil {
			t.Fatal(err)
		}
		acked2 += batch
		ckpt2, err = cl2.MigrateOut("beta")
	}
	if err != nil {
		t.Fatal(err)
	}
	if ckpt2.Samples != sentBeta+acked2 {
		t.Fatalf("beta lifetime samples = %d after restart, want %d + %d", ckpt2.Samples, sentBeta, acked2)
	}
	if len(ckpt2.Payload) == 0 {
		t.Fatal("re-exported checkpoint has an empty payload")
	}
}

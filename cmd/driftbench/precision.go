package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/mat"
)

// precisionBatches is the batch axis of the comparison: per-sample
// Process (the degenerate batch), a small block, and the scoring
// pipeline's full chunk.
var precisionBatches = []int{1, 8, 64}

// runPrecision is the `driftbench precision` subcommand: it trains one
// monitor per trainable backend (f64, f32) on the NSL-KDD surrogate,
// derives the Q16.16 port from the f64 monitor, and replays the test
// stream through each — per-sample and through the batched GEMM path at
// several batch sizes — reporting scoring throughput and the retained
// memory footprint side by side. -json writes the comparison as the
// BENCH_6 artifact tracked by CI (the batch=1 rows are the old BENCH_5
// measurement).
func runPrecision(args []string) int {
	fs := flag.NewFlagSet("precision", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for the trained monitors")
	repeat := fs.Int("repeat", 3, "test-stream replays per backend (first replay per backend is a discarded warm-up)")
	jsonPath := fs.String("json", "", "also write the comparison as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "precision: -repeat must be >= 1")
		return 2
	}

	ds := nslkdd.Generate(nslkdd.DefaultParams())
	train := func(p edgedrift.Precision) (*edgedrift.Monitor, error) {
		mon, err := edgedrift.New(edgedrift.Options{
			Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: *seed,
			Precision: p,
		})
		if err != nil {
			return nil, err
		}
		return mon, mon.Fit(ds.TrainX, ds.TrainY)
	}

	type backend struct {
		name string
		s    edgedrift.BatchStreaming
		mem  int
	}
	// Each backend×batch cell gets its own freshly trained monitor so no
	// cell is perturbed by the drift/reconstruction state an earlier
	// replay left behind.
	build := func(name string) (backend, error) {
		switch name {
		case "f64", "f32":
			p := edgedrift.Float64
			if name == "f32" {
				p = edgedrift.Float32
			}
			m, err := train(p)
			if err != nil {
				return backend{}, err
			}
			return backend{name, m, m.MemoryBytes()}, nil
		default: // q16
			donor, err := train(edgedrift.Float64)
			if err != nil {
				return backend{}, err
			}
			q, err := donor.QuantizeQ16()
			if err != nil {
				return backend{}, err
			}
			return backend{name, q.(edgedrift.BatchStreaming), q.MemoryBytes()}, nil
		}
	}

	var rows []precisionRow
	for _, name := range []string{"f64", "f32", "q16"} {
		for _, bs := range precisionBatches {
			b, err := build(name)
			if err != nil {
				fmt.Fprintf(os.Stderr, "precision: build %s: %v\n", name, err)
				return 1
			}
			var best float64
			dst := make([]edgedrift.Result, 0, bs)
			for r := 0; r < *repeat+1; r++ {
				start := time.Now()
				if bs == 1 {
					for _, x := range ds.TestX {
						b.s.Process(x)
					}
				} else {
					for lo := 0; lo < len(ds.TestX); lo += bs {
						hi := lo + bs
						if hi > len(ds.TestX) {
							hi = len(ds.TestX)
						}
						dst = b.s.ProcessBatch(dst[:0], ds.TestX[lo:hi])
					}
				}
				rate := float64(len(ds.TestX)) / time.Since(start).Seconds()
				// Replay 0 warms caches (and, for f64/f32, settles any
				// post-drift reconstruction); keep the best steady-state rate.
				if r > 0 && rate > best {
					best = rate
				}
			}
			rows = append(rows, precisionRow{Precision: b.name, Batch: bs, SamplesPerSec: best, MemoryBytes: b.mem})
		}
	}

	fmt.Printf("precision: %d-sample NSL-KDD replay, best of %d after warm-up (f32 SIMD: %v)\n",
		len(ds.TestX), *repeat, mat.F32SIMD())
	base := rows[0].SamplesPerSec // f64 per-sample
	for _, r := range rows {
		fmt.Printf("%-4s batch=%-3d %12.0f samples/s  %6.2fx f64  %8.1f kB retained\n",
			r.Precision, r.Batch, r.SamplesPerSec, r.SamplesPerSec/base, float64(r.MemoryBytes)/1024)
	}

	if *jsonPath != "" {
		sum := precisionSummary{
			Samples:  len(ds.TestX),
			Repeat:   *repeat,
			F32SIMD:  mat.F32SIMD(),
			Backends: rows,
		}
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "precision: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "precision: %v\n", err)
			return 1
		}
	}
	return 0
}

// precisionRow is one backend×batch cell of the BENCH_6 artifact.
// Batch 1 is the per-sample Process path (the old BENCH_5 rows); larger
// batches go through ProcessBatch and its GEMM kernels.
type precisionRow struct {
	Precision     string  `json:"precision"`
	Batch         int     `json:"batch"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	MemoryBytes   int     `json:"memory_bytes"`
}

// precisionSummary is the machine-readable form of the precision
// comparison, written by -json for CI artifact tracking.
type precisionSummary struct {
	Samples  int            `json:"samples"`
	Repeat   int            `json:"repeat"`
	F32SIMD  bool           `json:"f32_simd"`
	Backends []precisionRow `json:"backends"`
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
)

// runPrecision is the `driftbench precision` subcommand: it trains one
// monitor per trainable backend (f64, f32) on the NSL-KDD surrogate,
// derives the Q16.16 port from the f64 monitor, and replays the test
// stream through each, reporting per-sample scoring throughput and the
// retained memory footprint side by side. -json writes the comparison as
// the BENCH_5 artifact tracked by CI.
func runPrecision(args []string) int {
	fs := flag.NewFlagSet("precision", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for the trained monitors")
	repeat := fs.Int("repeat", 3, "test-stream replays per backend (first replay per backend is a discarded warm-up)")
	jsonPath := fs.String("json", "", "also write the comparison as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *repeat < 1 {
		fmt.Fprintln(os.Stderr, "precision: -repeat must be >= 1")
		return 2
	}

	ds := nslkdd.Generate(nslkdd.DefaultParams())
	train := func(p edgedrift.Precision) (*edgedrift.Monitor, error) {
		mon, err := edgedrift.New(edgedrift.Options{
			Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: *seed,
			Precision: p,
		})
		if err != nil {
			return nil, err
		}
		return mon, mon.Fit(ds.TrainX, ds.TrainY)
	}
	m64, err := train(edgedrift.Float64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "precision: train f64: %v\n", err)
		return 1
	}
	m32, err := train(edgedrift.Float32)
	if err != nil {
		fmt.Fprintf(os.Stderr, "precision: train f32: %v\n", err)
		return 1
	}
	// The Q16.16 port comes from its own f64 clone so the benchmark run
	// of the f64 monitor above is not perturbed by quantisation state.
	mq, err := train(edgedrift.Float64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "precision: train q16 donor: %v\n", err)
		return 1
	}
	q16, err := mq.QuantizeQ16()
	if err != nil {
		fmt.Fprintf(os.Stderr, "precision: quantize: %v\n", err)
		return 1
	}

	backends := []struct {
		name string
		s    edgedrift.Streaming
		mem  int
	}{
		{"f64", m64, m64.MemoryBytes()},
		{"f32", m32, m32.MemoryBytes()},
		{"q16", q16, q16.MemoryBytes()},
	}
	rows := make([]precisionRow, 0, len(backends))
	for _, b := range backends {
		var best float64
		for r := 0; r < *repeat+1; r++ {
			start := time.Now()
			for _, x := range ds.TestX {
				b.s.Process(x)
			}
			rate := float64(len(ds.TestX)) / time.Since(start).Seconds()
			// Replay 0 warms caches (and, for f64/f32, settles any
			// post-drift reconstruction); keep the best steady-state rate.
			if r > 0 && rate > best {
				best = rate
			}
		}
		rows = append(rows, precisionRow{Precision: b.name, SamplesPerSec: best, MemoryBytes: b.mem})
	}

	fmt.Printf("precision: %d-sample NSL-KDD replay, best of %d after warm-up\n", len(ds.TestX), *repeat)
	base := rows[0].SamplesPerSec
	for _, r := range rows {
		fmt.Printf("%-4s %12.0f samples/s  %6.2fx f64  %8.1f kB retained\n",
			r.Precision, r.SamplesPerSec, r.SamplesPerSec/base, float64(r.MemoryBytes)/1024)
	}

	if *jsonPath != "" {
		sum := precisionSummary{Samples: len(ds.TestX), Repeat: *repeat, Backends: rows}
		b, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "precision: %v\n", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "precision: %v\n", err)
			return 1
		}
	}
	return 0
}

// precisionRow is one backend's measurement in the BENCH_5 artifact.
type precisionRow struct {
	Precision     string  `json:"precision"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	MemoryBytes   int     `json:"memory_bytes"`
}

// precisionSummary is the machine-readable form of the precision
// comparison, written by -json for CI artifact tracking.
type precisionSummary struct {
	Samples  int            `json:"samples"`
	Repeat   int            `json:"repeat"`
	Backends []precisionRow `json:"backends"`
}

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"edgedrift/internal/eval"
)

// runCoop is the `driftbench coop` subcommand: the ext-coop experiment
// as a tracked artifact. It runs the per-stream (cold) vs cooperative
// (warm) post-drift recovery comparison on the cooling-fan scenarios
// and, with -json, writes the comparison as the BENCH_8 artifact CI
// uploads. The human-readable table on stdout is the same one
// `driftbench -exp ext-coop` prints.
func runCoop(args []string) int {
	fs := flag.NewFlagSet("coop", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for data and models")
	jsonPath := fs.String("json", "", "also write the comparison as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmp, err := eval.RunCoop(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coop:", err)
		return 1
	}
	out := eval.CoopOutcome(cmp)
	for _, t := range out.Tables {
		fmt.Println(t)
	}
	for _, s := range cmp.Scenarios {
		if err := coopGateErr(s.Scenario, s.WarmRecoverySamples, s.ColdRecoverySamples); err != nil {
			fmt.Fprintln(os.Stderr, "coop:", err)
			return 1
		}
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "coop:", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "coop:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return 0
}

// coopGateErr is the CI gate for one coop scenario. Warm must have
// converged, and must be no slower than cold; warm == cold == 0 passes,
// because on a stream where cold recovery is already instantaneous
// there is nothing left for warm seeding to beat — the old strict
// warm < cold gate failed that case spuriously. A cold that never
// converged (negative) passes any converged warm.
func coopGateErr(scenario string, warm, cold int) error {
	if warm < 0 {
		return fmt.Errorf("%s: warm recovery never converged", scenario)
	}
	if cold >= 0 && warm > cold {
		return fmt.Errorf("%s: warm recovery (%d) slower than cold (%d)", scenario, warm, cold)
	}
	return nil
}

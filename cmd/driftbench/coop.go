package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"edgedrift/internal/eval"
)

// runCoop is the `driftbench coop` subcommand: the ext-coop experiment
// as a tracked artifact. It runs the per-stream (cold) vs cooperative
// (warm) post-drift recovery comparison on the cooling-fan scenarios
// and, with -json, writes the comparison as the BENCH_8 artifact CI
// uploads. The human-readable table on stdout is the same one
// `driftbench -exp ext-coop` prints.
func runCoop(args []string) int {
	fs := flag.NewFlagSet("coop", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "random seed for data and models")
	jsonPath := fs.String("json", "", "also write the comparison as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cmp, err := eval.RunCoop(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coop:", err)
		return 1
	}
	out := eval.CoopOutcome(cmp)
	for _, t := range out.Tables {
		fmt.Println(t)
	}
	for _, s := range cmp.Scenarios {
		if s.WarmRecoverySamples < 0 {
			fmt.Fprintf(os.Stderr, "coop: %s: warm recovery never converged\n", s.Scenario)
			return 1
		}
		if s.ColdRecoverySamples >= 0 && s.WarmRecoverySamples >= s.ColdRecoverySamples {
			fmt.Fprintf(os.Stderr, "coop: %s: warm recovery (%d) not faster than cold (%d)\n",
				s.Scenario, s.WarmRecoverySamples, s.ColdRecoverySamples)
			return 1
		}
	}

	if *jsonPath != "" {
		b, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "coop:", err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "coop:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	return 0
}

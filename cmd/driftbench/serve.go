package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
)

// newServeMux wires a fleet's observability endpoints: /metrics serves
// the Prometheus text exposition, /health serves a JSON health snapshot
// (200 when every member's model state is finite, 503 otherwise), and
// /trace serves each instrumented stream's retained drift trace.
func newServeMux(f *edgedrift.Fleet) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		// Render into a buffer first so a mid-write error cannot leave a
		// truncated body behind a 200 status.
		var buf bytes.Buffer
		if err := f.WriteMetrics(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		h := f.Health()
		code := http.StatusOK
		if !h.Healthy() {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(struct {
			Healthy bool
			Summary string
			edgedrift.HealthSnapshot
		}{h.Healthy(), h.String(), h})
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f.Traces())
	})
	return mux
}

// runServe is the `driftbench serve` subcommand: it builds an
// instrumented fleet the same way `driftbench fleet` does — one monitor
// trained on the NSL-KDD surrogate, cloned per stream through its
// serialised artifact — then replays the interleaved test streams in a
// loop while serving /metrics, /health and /trace over HTTP. It is the
// live end-to-end demo of the observability layer: point a Prometheus
// scraper (or curl) at the address while the fleet churns.
func runServe(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	streams := fs.Int("streams", 8, "independent streams (NSL-KDD test set interleaved round-robin)")
	shards := fs.Int("shards", 8, "fleet registry shard count")
	batch := fs.Int("batch", 256, "samples per ProcessBatch call")
	seed := fs.Uint64("seed", 1, "random seed for the shared trained monitor")
	precision := fs.String("precision", "f64", "member numeric backend: f64, f32, or q16 (fixed-point inference port)")
	addr := fs.String("addr", "127.0.0.1:9100", "HTTP listen address")
	sampleEvery := fs.Int("sample-every", 64, "time every k-th sample per stream (0 disables latency sampling)")
	traceDepth := fs.Int("trace-depth", 64, "retained drift detections per stream")
	logHealth := fs.Duration("log-health", 30*time.Second, "cadence of the structured health log line (0 disables)")
	duration := fs.Duration("duration", 0, "stop after this long (0 runs until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *streams < 1 || *batch < 1 {
		fmt.Fprintln(os.Stderr, "serve: -streams and -batch must be >= 1")
		return 2
	}
	prec, perr := edgedrift.ParsePrecision(*precision)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "serve: unknown precision %q; use f64, f32 or q16\n", *precision)
		return 2
	}

	ds := nslkdd.Generate(nslkdd.DefaultParams())
	// Same cloning scheme as `driftbench fleet`: q16 members are
	// quantised from an f64-trained clone, f64/f32 train directly.
	trainPrec := prec
	if prec == edgedrift.Fixed16 {
		trainPrec = edgedrift.Float64
	}
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: *seed,
		Precision: trainPrec,
	})
	if err == nil {
		err = mon.Fit(ds.TrainX, ds.TrainY)
	}
	var art bytes.Buffer
	if err == nil {
		err = mon.Save(&art, trainPrec)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: train shared monitor: %v\n", err)
		return 1
	}

	f := edgedrift.NewFleet(edgedrift.FleetConfig{
		Shards: *shards, EventBuffer: 4 * *streams,
		Instrument: true, SampleEvery: *sampleEvery, TraceDepth: *traceDepth,
	})
	parts := make([][][]float64, *streams)
	for i, x := range ds.TestX {
		parts[i%*streams] = append(parts[i%*streams], x)
	}
	ids := make([]string, *streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("stream-%03d", i)
		m, err := edgedrift.LoadMonitor(bytes.NewReader(art.Bytes()))
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: clone monitor: %v\n", err)
			return 1
		}
		if prec == edgedrift.Fixed16 {
			st, err := m.QuantizeQ16()
			if err != nil {
				fmt.Fprintf(os.Stderr, "serve: quantize member: %v\n", err)
				return 1
			}
			if err := f.AddStage(ids[i], st); err != nil {
				fmt.Fprintf(os.Stderr, "serve: %v\n", err)
				return 1
			}
			continue
		}
		if err := f.Add(ids[i], m); err != nil {
			fmt.Fprintf(os.Stderr, "serve: %v\n", err)
			return 1
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	if *duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	if *logHealth > 0 {
		stop := edgedrift.StartHealthLogger(*logHealth, f.Health, func(line string) { log.Print(line) })
		defer stop()
	}

	// Replay each stream on its own goroutine, looping over its slice of
	// the interleaved test set until the context ends.
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(id string, part [][]float64) {
			defer wg.Done()
			for ctx.Err() == nil {
				for lo := 0; lo < len(part) && ctx.Err() == nil; lo += *batch {
					hi := min(lo+*batch, len(part))
					if _, err := f.ProcessBatch(id, part[lo:hi]); err != nil {
						log.Printf("serve: %s: %v", id, err)
						return
					}
				}
			}
		}(ids[i], parts[i])
	}

	srv := &http.Server{Addr: *addr, Handler: newServeMux(f)}
	go func() {
		<-ctx.Done()
		shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shutCancel()
		srv.Shutdown(shutCtx)
	}()
	log.Printf("serve: %d %s streams replaying; /metrics /health /trace on http://%s", *streams, prec, *addr)
	err = srv.ListenAndServe()
	// ListenAndServe returns on bind failure too — cancel the replay
	// context before waiting, or the stream goroutines spin forever and
	// this never exits.
	cancel()
	wg.Wait()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		return 1
	}
	return 0
}

package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

// tinyServeFleet builds a small instrumented fleet on synthetic
// Gaussian data — fast enough for a unit test, drifted enough that the
// trace endpoint has something to show.
func tinyServeFleet(t *testing.T) *edgedrift.Fleet {
	t.Helper()
	oldC := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newC := synth.ShiftedGaussian(oldC, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldC, 300, r)
	st, err := synth.Generate(oldC, newC, 2000, synth.Spec{Kind: synth.Sudden, Start: 500}, r)
	if err != nil {
		t.Fatal(err)
	}
	f := edgedrift.NewFleet(edgedrift.FleetConfig{Instrument: true, SampleEvery: 16, TraceDepth: 8})
	for _, id := range []string{"a", "b"} {
		mon, err := edgedrift.New(edgedrift.Options{
			Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		if err := f.Add(id, mon); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch(id, st.X); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestServeBindFailureExits is the regression test for the bind-time
// hang: when ListenAndServe fails because the address is occupied,
// runServe must cancel the replay goroutines and exit nonzero instead
// of blocking forever in wg.Wait. Duration is deliberately unlimited —
// a -duration timeout would mask the hang by cancelling the context on
// its own.
func TestServeBindFailureExits(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan int, 1)
	go func() {
		done <- runServe([]string{
			"-addr", ln.Addr().String(), "-streams", "1", "-log-health", "0",
		})
	}()
	select {
	case code := <-done:
		if code == 0 {
			t.Fatal("runServe returned 0 after a bind failure")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("runServe hung after the bind failure (replay goroutines never cancelled)")
	}
}

// TestServeEndpoints exercises the serve mux end to end over HTTP:
// /metrics speaks Prometheus text, /health reports JSON with the right
// status code, /trace returns the per-stream drift rings.
func TestServeEndpoints(t *testing.T) {
	f := tinyServeFleet(t)
	srv := httptest.NewServer(newServeMux(f))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	code, ctype, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"edgedrift_samples_total 4000",
		`edgedrift_stream_drifts_total{stream="a"}`,
		"# TYPE edgedrift_process_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, ctype, body = get("/health")
	if code != http.StatusOK {
		t.Fatalf("/health status = %d (body %s)", code, body)
	}
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/health content type = %q", ctype)
	}
	var h struct {
		Healthy     bool
		Summary     string
		SamplesSeen int
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/health is not JSON: %v", err)
	}
	if !h.Healthy || h.SamplesSeen != 4000 || !strings.Contains(h.Summary, "phase=") {
		t.Fatalf("/health payload = %+v", h)
	}

	code, _, body = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status = %d", code)
	}
	var traces map[string][]edgedrift.TraceEvent
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/trace is not JSON: %v", err)
	}
	if len(traces["a"]) == 0 || len(traces["b"]) == 0 {
		t.Fatalf("trace rings empty after a drifted replay: %v", traces)
	}
	for _, ev := range traces["a"] {
		if ev.StreamID != "a" || ev.ThetaError <= 0 {
			t.Fatalf("trace event %+v", ev)
		}
	}
}

package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"edgedrift/internal/router"
)

// runRoute is the `driftbench route` subcommand: the consistent-hash
// router process in front of N shards. Clients speak the same wire
// protocol to it as to a shard; the admin HTTP endpoint drives live
// stream migration and exposes the routing table and metrics.
func runRoute(args []string) int {
	fs := flag.NewFlagSet("route", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7500", "TCP listen address for the data plane (port 0 picks a free port)")
	admin := fs.String("admin", "", "optional HTTP listen address for the control plane (/migrate, /streams, /metrics)")
	shards := fs.String("shards", "", "comma-separated shard addresses (required)")
	vnodes := fs.Int("vnodes", 64, "ring points per shard")
	pool := fs.Int("pool", 4, "idle connections kept per shard")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var shardAddrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			shardAddrs = append(shardAddrs, a)
		}
	}
	if len(shardAddrs) == 0 {
		fmt.Fprintln(os.Stderr, "route: -shards needs at least one address")
		return 2
	}

	r, err := router.New(router.Config{Shards: shardAddrs, Vnodes: *vnodes, PoolSize: *pool})
	if err != nil {
		fmt.Fprintf(os.Stderr, "route: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "route: %v\n", err)
		return 1
	}
	fmt.Printf("route: listening on %s (%d shards)\n", ln.Addr(), len(shardAddrs))

	if *admin != "" {
		go func() {
			if err := http.ListenAndServe(*admin, r.AdminHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "route: admin: %v\n", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		r.Close()
	}()
	if err := r.Serve(ln); err != net.ErrClosed {
		fmt.Fprintf(os.Stderr, "route: %v\n", err)
		return 1
	}
	return 0
}

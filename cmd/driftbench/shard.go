package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/pressure"
	"edgedrift/internal/shard"
)

// trainTemplate trains the shared NSL-KDD surrogate monitor — the same
// model `driftbench serve` clones per stream — and returns its
// serialised artifact. Q16.16 shards train at f64 and quantise per
// member, so the artifact precision is the training precision.
func trainTemplate(seed uint64, prec edgedrift.Precision) ([]byte, error) {
	trainPrec := prec
	if prec == edgedrift.Fixed16 {
		trainPrec = edgedrift.Float64
	}
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: seed,
		Precision: trainPrec,
	})
	if err != nil {
		return nil, err
	}
	if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
		return nil, err
	}
	var art bytes.Buffer
	if err := mon.Save(&art, trainPrec); err != nil {
		return nil, err
	}
	return art.Bytes(), nil
}

// runShard is the `driftbench shard` subcommand: one shard process of
// the distributed serve tier. It listens for the wire batch-ingest
// protocol, clones the template for every unseen stream, and serves
// until interrupted. The "listening on" line on stdout is machine-
// scraped by `driftbench loadgen` when it spawns shards on port 0.
func runShard(args []string) int {
	fs := flag.NewFlagSet("shard", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7600", "TCP listen address for batch ingest (port 0 picks a free port)")
	metricsAddr := fs.String("metrics-addr", "", "optional HTTP listen address for /metrics")
	template := fs.String("template", "", "path to a serialised monitor artifact; empty trains the NSL-KDD surrogate monitor")
	precision := fs.String("precision", "f64", "member numeric backend: f64, f32, or q16 (quantised from the template per member)")
	queueDepth := fs.Int("queue-depth", 64, "per-connection ingest queue bound in batches")
	shedAfter := fs.Duration("shed-after", 0, "admission policy when a queue is full: 0 blocks (pure backpressure), >0 waits then sheds, negative sheds immediately")
	shards := fs.Int("fleet-shards", 8, "fleet registry shard count")
	seed := fs.Uint64("seed", 1, "random seed for the trained template (when -template is empty)")
	pressureBudget := fs.Duration("pressure-latency-budget", 0, "per-batch ingest p99 budget; >0 runs the adaptive capacity governor, demoting members while the windowed p99 exceeds it")
	pressureMem := fs.Int("pressure-memory-budget", 0, "fleet retained-bytes budget for the governor (0 leaves the memory axis unenforced)")
	pressureInterval := fs.Duration("pressure-interval", 0, "governor sampling interval (0 means 500ms)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	prec, err := edgedrift.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard: unknown precision %q; use f64, f32 or q16\n", *precision)
		return 2
	}

	var tmpl []byte
	if *template != "" {
		if tmpl, err = os.ReadFile(*template); err != nil {
			fmt.Fprintf(os.Stderr, "shard: %v\n", err)
			return 1
		}
	} else if tmpl, err = trainTemplate(*seed, prec); err != nil {
		fmt.Fprintf(os.Stderr, "shard: train template: %v\n", err)
		return 1
	}

	var pcfg *pressure.Config
	if *pressureBudget > 0 || *pressureMem > 0 {
		pcfg = &pressure.Config{
			LatencyBudgetNs:   uint64(*pressureBudget),
			MemoryBudgetBytes: *pressureMem,
		}
	}
	s, err := shard.New(shard.Config{
		Template:         tmpl,
		Precision:        prec,
		QueueDepth:       *queueDepth,
		ShedAfter:        *shedAfter,
		Fleet:            edgedrift.FleetConfig{Shards: *shards},
		Pressure:         pcfg,
		PressureInterval: *pressureInterval,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard: %v\n", err)
		return 1
	}
	fmt.Printf("shard: listening on %s\n", ln.Addr())

	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, s.MetricsHandler()); err != nil {
				fmt.Fprintf(os.Stderr, "shard: metrics: %v\n", err)
			}
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	go func() {
		<-stop
		s.Close()
	}()
	if err := s.Serve(ln); err != net.ErrClosed {
		fmt.Fprintf(os.Stderr, "shard: %v\n", err)
		return 1
	}
	return 0
}

// Command drifteval runs the proposed drift monitor over CSV data: train
// on one file, stream another, and report drift events (plus accuracy
// when the stream is labelled).
//
// The CSV layout is feature columns with an optional trailing "label"
// column — the format cmd/datagen writes, so the two tools compose:
//
//	go run ./cmd/datagen -dataset nslkdd -out data/
//	go run ./cmd/drifteval -train data/nslkdd_train.csv \
//	    -stream data/nslkdd_test.csv -classes 2 -window 100
//
// Real datasets exported from elsewhere work the same way.
package main

import (
	"flag"
	"fmt"
	"os"

	"edgedrift"
	"edgedrift/internal/eval"
	"edgedrift/internal/stream"
)

func main() {
	trainPath := flag.String("train", "", "training CSV (required)")
	streamPath := flag.String("stream", "", "evaluation stream CSV (required)")
	classes := flag.Int("classes", 0, "number of classes (0 = infer from training labels)")
	hidden := flag.Int("hidden", 22, "autoencoder hidden width")
	window := flag.Int("window", 100, "detector window size W")
	nrecon := flag.Int("nrecon", 0, "reconstruction length N (0 = default)")
	seed := flag.Uint64("seed", 1, "random seed")
	standardize := flag.Bool("standardize", false, "z-score features using training statistics")
	save := flag.String("save", "", "write the fitted monitor to this file after the run")
	flag.Parse()

	if *trainPath == "" || *streamPath == "" {
		fmt.Fprintln(os.Stderr, "drifteval: -train and -stream are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*trainPath, *streamPath, *classes, *hidden, *window, *nrecon, *seed, *standardize, *save); err != nil {
		fmt.Fprintln(os.Stderr, "drifteval:", err)
		os.Exit(1)
	}
}

func run(trainPath, streamPath string, classes, hidden, window, nrecon int, seed uint64, standardize bool, save string) error {
	train, err := loadCSV(trainPath)
	if err != nil {
		return err
	}
	test, err := loadCSV(streamPath)
	if err != nil {
		return err
	}
	if train.Dims() != test.Dims() {
		return fmt.Errorf("dimension mismatch: train %d vs stream %d", train.Dims(), test.Dims())
	}
	if standardize {
		std, err := stream.FitStandardizer(train.X)
		if err != nil {
			return err
		}
		std.ApplyAll(train.X)
		std.ApplyAll(test.X)
	}

	if classes == 0 {
		if !train.Labelled() {
			return fmt.Errorf("-classes required for unlabelled training data")
		}
		for _, y := range train.Y {
			if y+1 > classes {
				classes = y + 1
			}
		}
	}

	mon, err := edgedrift.New(edgedrift.Options{
		Classes: classes,
		Inputs:  train.Dims(),
		Hidden:  hidden,
		Window:  window,
		NRecon:  nrecon,
		Seed:    seed,
	})
	if err != nil {
		return err
	}
	if train.Labelled() {
		err = mon.Fit(train.X, train.Y)
	} else {
		_, err = mon.FitUnsupervised(train.X)
	}
	if err != nil {
		return err
	}
	thErr, thDrift := mon.Thresholds()
	fmt.Printf("fitted on %d samples (%d features, %d classes): θ_error=%.4g θ_drift=%.4g\n",
		train.Len(), train.Dims(), classes, thErr, thDrift)

	var mapper *eval.LabelMapper
	correct := 0
	if test.Labelled() {
		maxLab := 0
		for _, y := range test.Y {
			if y > maxLab {
				maxLab = y
			}
		}
		mapper = eval.NewLabelMapper(classes, maxLab+1)
	}
	for i, x := range test.X {
		r := mon.Process(x)
		if r.DriftDetected {
			fmt.Printf("sample %6d: concept drift detected (dist %.4g ≥ θ_drift) — reconstructing\n", i, r.Dist)
			if mapper != nil {
				mapper.Reset()
			}
		}
		if mapper != nil {
			if mapper.Map(r.Label) == test.Y[i] {
				correct++
			}
			mapper.Observe(r.Label, test.Y[i])
		}
	}
	fmt.Printf("stream done: %d samples, %d drift event(s), %d reconstruction(s)\n",
		test.Len(), len(mon.DriftEvents()), mon.Reconstructions())
	if mapper != nil {
		fmt.Printf("accuracy: %.2f%%\n", 100*float64(correct)/float64(test.Len()))
	}
	fmt.Printf("retained state: %d bytes\n", mon.MemoryBytes())

	if save != "" {
		f, err := os.Create(save)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := mon.Save(f, edgedrift.Float32); err != nil {
			return err
		}
		fmt.Printf("saved float32 deployment artifact to %s\n", save)
	}
	return nil
}

func loadCSV(path string) (*stream.Data, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := stream.ReadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if d.Len() == 0 {
		return nil, fmt.Errorf("%s: empty stream", path)
	}
	return d, nil
}

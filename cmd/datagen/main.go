// Command datagen writes the synthetic dataset surrogates to CSV so they
// can be inspected, plotted, or consumed by other tools.
//
// Usage:
//
//	datagen -dataset nslkdd -out out/            # train + test CSVs
//	datagen -dataset coolingfan -out out/        # train + 3 test streams
//	datagen -dataset drifts -out out/            # Figure 1 streams
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

func main() {
	dataset := flag.String("dataset", "nslkdd", "nslkdd | coolingfan | drifts")
	out := flag.String("out", "data", "output directory")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var err error
	switch *dataset {
	case "nslkdd":
		err = writeNSLKDD(*out, *seed)
	case "coolingfan":
		err = writeCoolingFan(*out, *seed)
	case "drifts":
		err = writeDrifts(*out, *seed)
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}

// writeCSV writes rows of features with an optional integer label column.
func writeCSV(path string, xs [][]float64, labels []int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()

	dim := len(xs[0])
	header := make([]string, 0, dim+1)
	for j := 0; j < dim; j++ {
		header = append(header, fmt.Sprintf("f%d", j))
	}
	if labels != nil {
		header = append(header, "label")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, dim+1)
	for i, x := range xs {
		row = row[:0]
		for _, v := range x {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if labels != nil {
			row = append(row, strconv.Itoa(labels[i]))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	return w.Error()
}

func writeNSLKDD(dir string, seed uint64) error {
	p := nslkdd.DefaultParams()
	p.Seed = seed
	ds := nslkdd.Generate(p)
	if err := writeCSV(filepath.Join(dir, "nslkdd_train.csv"), ds.TrainX, ds.TrainY); err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "nslkdd_test.csv"), ds.TestX, ds.TestY); err != nil {
		return err
	}
	fmt.Printf("wrote nslkdd_train.csv (%d rows) and nslkdd_test.csv (%d rows, drift at %d)\n",
		len(ds.TrainX), len(ds.TestX), ds.DriftAt)
	return nil
}

func writeCoolingFan(dir string, seed uint64) error {
	p := coolingfan.DefaultParams()
	p.Seed = seed
	gen := coolingfan.NewGenerator(p)
	trainX, trainY := gen.TrainingSet(120)
	if err := writeCSV(filepath.Join(dir, "coolingfan_train.csv"), trainX, trainY); err != nil {
		return err
	}
	for _, st := range []*coolingfan.Stream{gen.TestSudden(), gen.TestGradual(), gen.TestReoccurring()} {
		fromNew := make([]int, len(st.X))
		for i, b := range st.FromNew {
			if b {
				fromNew[i] = 1
			}
		}
		name := filepath.Join(dir, "coolingfan_"+st.Name+".csv")
		if err := writeCSV(name, st.X, fromNew); err != nil {
			return err
		}
	}
	fmt.Printf("wrote coolingfan_train.csv and 3 test streams (drift at %d)\n", coolingfan.DriftAt)
	return nil
}

func writeDrifts(dir string, seed uint64) error {
	pre := synth.NewGaussian([][]float64{{0}}, 0.3)
	post := synth.NewGaussian([][]float64{{4}}, 0.3)
	specs := []synth.Spec{
		{Kind: synth.Sudden, Start: 500},
		{Kind: synth.Gradual, Start: 350, End: 650},
		{Kind: synth.Incremental, Start: 350, End: 650},
		{Kind: synth.Reoccurring, Start: 400, End: 600},
	}
	r := rng.New(seed)
	for _, spec := range specs {
		st, err := synth.Generate(pre, post, 1000, spec, r.Split())
		if err != nil {
			return err
		}
		fromNew := make([]int, len(st.X))
		for i, b := range st.FromNew {
			if b {
				fromNew[i] = 1
			}
		}
		name := filepath.Join(dir, "drift_"+spec.Kind.String()+".csv")
		if err := writeCSV(name, st.X, fromNew); err != nil {
			return err
		}
	}
	fmt.Println("wrote 4 drift-type streams (Figure 1)")
	return nil
}

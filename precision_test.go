package edgedrift_test

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"edgedrift"
)

// precisionMonitor builds a fitted monitor on the shared fleet fixture
// at the requested numeric backend.
func precisionMonitor(t *testing.T, fx *fleetFixture, p edgedrift.Precision) *edgedrift.Monitor {
	t.Helper()
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
		Precision: p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(fx.trainX, fx.trainY); err != nil {
		t.Fatal(err)
	}
	return mon
}

// TestFloat32MonitorDeterministic pins that the float32 backend is as
// reproducible as float64: two monitors built from the same seed emit
// bit-identical result streams.
func TestFloat32MonitorDeterministic(t *testing.T) {
	fx := newFleetFixture(t)
	a := precisionMonitor(t, fx, edgedrift.Float32)
	b := precisionMonitor(t, fx, edgedrift.Float32)
	for i, x := range fx.stream {
		ra, rb := a.Process(x), b.Process(x)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
}

// TestFloat32TracksFloat64Stream bounds the backend gap end to end: the
// float32 monitor's scores stay within single-precision rounding of the
// float64 monitor's over the full drift stream, and both reach the same
// drift verdict.
func TestFloat32TracksFloat64Stream(t *testing.T) {
	fx := newFleetFixture(t)
	m64 := precisionMonitor(t, fx, edgedrift.Float64)
	m32 := precisionMonitor(t, fx, edgedrift.Float32)
	worst := 0.0
	for _, x := range fx.stream {
		r64, r32 := m64.Process(x), m32.Process(x)
		if d := math.Abs(r64.Score - r32.Score); d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Fatalf("f32 scores drifted %g from f64, want <= 1e-3", worst)
	}
	if len(m64.DriftEvents()) == 0 || len(m32.DriftEvents()) == 0 {
		t.Fatalf("drift verdicts differ: f64 %v, f32 %v", m64.DriftEvents(), m32.DriftEvents())
	}
}

// TestFloat32MonitorRoundTrip fits at float32, ships the v3 artifact,
// and checks the loaded monitor reports the backend and continues the
// stream bit-identically to the original.
func TestFloat32MonitorRoundTrip(t *testing.T) {
	fx := newFleetFixture(t)
	orig := precisionMonitor(t, fx, edgedrift.Float32)
	for _, x := range fx.stream[:500] {
		orig.Process(x)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf, edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	loaded, err := edgedrift.LoadMonitor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Precision() != edgedrift.Float32 {
		t.Fatalf("loaded precision = %v, want Float32", loaded.Precision())
	}
	for i, x := range fx.stream[500:1500] {
		ro, rl := orig.Process(x), loaded.Process(x)
		if !reflect.DeepEqual(ro, rl) {
			t.Fatalf("sample %d diverged after round trip: %+v vs %+v", i, ro, rl)
		}
	}
}

// TestQuantizeQ16RequiresFit pins the quantisation precondition.
func TestQuantizeQ16RequiresFit(t *testing.T) {
	mon, err := edgedrift.New(edgedrift.Options{Classes: 2, Inputs: 3, Hidden: 8, Window: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mon.QuantizeQ16(); err == nil {
		t.Fatal("QuantizeQ16 succeeded on an unfitted monitor")
	}
}

// TestMixedPrecisionFleet hosts all three backends in one fleet — an
// f64 monitor, an f32 monitor, and a Q16.16 stage — and checks they
// process, meter and health-aggregate side by side.
func TestMixedPrecisionFleet(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})

	if err := f.Add("f64", precisionMonitor(t, fx, edgedrift.Float64)); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("f32", precisionMonitor(t, fx, edgedrift.Float32)); err != nil {
		t.Fatal(err)
	}
	donor := precisionMonitor(t, fx, edgedrift.Float64)
	q16, err := donor.QuantizeQ16()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddStage("q16", q16); err != nil {
		t.Fatal(err)
	}

	for _, id := range f.IDs() {
		if _, err := f.ProcessBatch(id, fx.stream); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	n := len(fx.stream)
	for id, h := range f.MemberHealth() {
		if h.SamplesSeen != n {
			t.Errorf("%s: SamplesSeen = %d, want %d", id, h.SamplesSeen, n)
		}
	}
	agg := f.Health()
	if agg.SamplesSeen != 3*n {
		t.Fatalf("fleet SamplesSeen = %d, want %d", agg.SamplesSeen, 3*n)
	}
	if !agg.Healthy() {
		t.Fatalf("mixed fleet unhealthy: %s", agg.String())
	}
	// Every backend must see the sudden drift at sample 1000.
	for _, id := range []string{"f64", "f32", "q16"} {
		if _, drifts, err := f.MemberStats(id); err != nil || drifts == 0 {
			t.Errorf("%s: drifts = %d, err = %v; want a detection", id, drifts, err)
		}
	}
	if f.MemoryBytes() <= 0 {
		t.Fatal("fleet memory audit is non-positive")
	}
}

// TestMixedPrecisionFleetCheckpoint is the regression test for the
// mixed-precision save bug: Fleet.Save used to error on any AddStage
// (Q16.16) member. The FLEET2 member-kind byte must round-trip a fleet
// hosting all three backends, and every member — q16 included — must
// continue bit-identically after the reload.
func TestMixedPrecisionFleetCheckpoint(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("f64", precisionMonitor(t, fx, edgedrift.Float64)); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("f32", precisionMonitor(t, fx, edgedrift.Float32)); err != nil {
		t.Fatal(err)
	}
	donor := precisionMonitor(t, fx, edgedrift.Float64)
	q16, err := donor.QuantizeQ16()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddStage("q16", q16); err != nil {
		t.Fatal(err)
	}
	// Drive all members partway so the checkpoint carries live state.
	mid := fx.stream[:700]
	rest := fx.stream[700:1700]
	for _, id := range f.IDs() {
		if _, err := f.ProcessBatch(id, mid); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}

	var buf bytes.Buffer
	if err := f.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatalf("mixed-precision Save failed: %v", err)
	}
	g, err := edgedrift.LoadFleet(bytes.NewReader(buf.Bytes()), edgedrift.FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.IDs(), f.IDs()) {
		t.Fatalf("IDs after load: %v", g.IDs())
	}
	// Bit-identical continuation, every backend: the original fleet and
	// the reloaded one must agree result-for-result on the rest of the
	// stream. (The f32 member was saved at Float64, which is lossless
	// for float32 state.)
	for _, id := range g.IDs() {
		want, err := f.ProcessBatch(id, rest)
		if err != nil {
			t.Fatal(err)
		}
		got, err := g.ProcessBatch(id, rest)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: reloaded member diverged from the original", id)
		}
	}
}

// TestExportImportQ16Member migrates a Q16.16 member between two fleets
// through the public Export/ImportMember pair — the prerequisite the
// distributed tier relies on to move q16 streams between shards.
func TestExportImportQ16Member(t *testing.T) {
	fx := newFleetFixture(t)
	donor := precisionMonitor(t, fx, edgedrift.Float64)
	q16, err := donor.QuantizeQ16()
	if err != nil {
		t.Fatal(err)
	}
	src := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := src.AddStage("q", q16); err != nil {
		t.Fatal(err)
	}
	// Reference stage, never migrated, fed the identical stream.
	refDonor := precisionMonitor(t, fx, edgedrift.Float64)
	refStage, err := refDonor.QuantizeQ16()
	if err != nil {
		t.Fatal(err)
	}
	ref := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := ref.AddStage("q", refStage); err != nil {
		t.Fatal(err)
	}

	pre, post := fx.stream[:800], fx.stream[800:2000]
	if _, err := src.ProcessBatch("q", pre); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessBatch("q", pre); err != nil {
		t.Fatal(err)
	}

	st, err := src.ExportMember("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != 1 || st.Samples != uint64(len(pre)) {
		t.Fatalf("export state kind=%d samples=%d, want kind 1, %d samples", st.Kind, st.Samples, len(pre))
	}
	if src.Len() != 0 {
		t.Fatalf("source Len = %d after export", src.Len())
	}
	dst := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := dst.ImportMember(st); err != nil {
		t.Fatal(err)
	}

	got, err := dst.ProcessBatch("q", post)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ProcessBatch("q", post)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("migrated q16 member diverged from the unmigrated reference")
	}
	s, d, err := dst.MemberStats("q")
	if err != nil {
		t.Fatal(err)
	}
	rs, rd, err := ref.MemberStats("q")
	if err != nil {
		t.Fatal(err)
	}
	if s != rs || d != rd {
		t.Fatalf("migrated counters %d/%d, reference %d/%d", s, d, rs, rd)
	}
}

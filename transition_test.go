package edgedrift_test

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"testing"

	"edgedrift"
)

// resultHasher is the streaming form of the golden fingerprint: the same
// per-Result hash as fingerprint() in golden_test.go, but feedable in
// segments so a demote/promote excursion can sit between them.
type resultHasher struct {
	h hash.Hash64
	b [8]byte
}

func newResultHasher() *resultHasher { return &resultHasher{h: fnv.New64a()} }

func (rh *resultHasher) u64(v uint64) {
	binary.LittleEndian.PutUint64(rh.b[:], v)
	rh.h.Write(rh.b[:])
}

func (rh *resultHasher) bit(v bool) {
	if v {
		rh.h.Write([]byte{1})
	} else {
		rh.h.Write([]byte{0})
	}
}

func (rh *resultHasher) result(r edgedrift.Result) {
	rh.u64(uint64(r.Label))
	rh.u64(math.Float64bits(r.Score))
	rh.u64(math.Float64bits(r.Dist))
	rh.u64(uint64(r.Phase))
	rh.bit(r.DriftDetected)
	rh.bit(r.Rejected)
}

func (rh *resultHasher) finish(mon *edgedrift.Monitor) string {
	for _, e := range mon.DriftEvents() {
		rh.u64(uint64(e))
	}
	rh.u64(uint64(mon.Reconstructions()))
	return fmt.Sprintf("%016x", rh.h.Sum64())
}

// TestDemotePromoteGoldenExact is the tentpole guarantee: a monitor that
// is demoted mid-stream, serves an excursion of samples at reduced
// precision, and is then promoted continues the ORIGINAL stream
// bit-identically — its full-stream fingerprint equals the golden
// fingerprint of a monitor that never degraded. The retained origin is
// frozen during the excursion (degraded-interval samples advance only
// the twin), which is exactly what makes the promotion exact.
func TestDemotePromoteGoldenExact(t *testing.T) {
	ds := goldenDataset()
	for _, target := range []edgedrift.Precision{edgedrift.Float32, edgedrift.Fixed16} {
		target := target
		t.Run(target.String(), func(t *testing.T) {
			t.Parallel()
			mon := goldenMonitor(t, edgedrift.GuardReject)
			if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
				t.Fatal(err)
			}
			rh := newResultHasher()
			const cut = 1500
			for _, x := range ds.TestX[:cut] {
				rh.result(mon.Process(x))
			}
			if err := mon.Demote(target); err != nil {
				t.Fatal(err)
			}
			if !mon.Degraded() || mon.ActivePrecision() != target {
				t.Fatalf("after Demote: degraded=%v active=%v", mon.Degraded(), mon.ActivePrecision())
			}
			// The excursion: 300 samples served at reduced precision. Their
			// results are real (labels in range) but deliberately NOT part of
			// the golden stream — they advance only the twin.
			for i, x := range ds.TestX[cut : cut+300] {
				r := mon.Process(x)
				if r.Label < 0 || r.Label > 1 {
					t.Fatalf("excursion sample %d: label %d out of range", i, r.Label)
				}
			}
			if err := mon.Promote(); err != nil {
				t.Fatal(err)
			}
			if mon.Degraded() || mon.ActivePrecision() != edgedrift.Float64 {
				t.Fatalf("after Promote: degraded=%v active=%v", mon.Degraded(), mon.ActivePrecision())
			}
			// The origin resumes the golden stream where it left off.
			for _, x := range ds.TestX[cut:] {
				rh.result(mon.Process(x))
			}
			if got := rh.finish(mon); got != goldenCleanFP {
				t.Errorf("post-promotion fingerprint %s, want golden %s — promotion is not bit-exact", got, goldenCleanFP)
			}
		})
	}
}

// TestDemoteLifecycleErrors pins every rejected transition: demoting
// unfitted or already-demoted monitors, promoting a non-demoted one, and
// the direction lattice (strictly down, never to f64).
func TestDemoteLifecycleErrors(t *testing.T) {
	ds := goldenDataset()
	unfit := goldenMonitor(t, edgedrift.GuardReject)
	if err := unfit.Demote(edgedrift.Float32); err == nil {
		t.Fatal("Demote before Fit succeeded")
	}
	mon := goldenMonitor(t, edgedrift.GuardReject)
	if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
		t.Fatal(err)
	}
	if err := mon.Promote(); err == nil {
		t.Fatal("Promote on a non-demoted monitor succeeded")
	}
	if err := mon.Demote(edgedrift.Float64); err == nil {
		t.Fatal("Demote to f64 succeeded")
	}
	if err := mon.Demote(edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	if err := mon.Demote(edgedrift.Fixed16); err == nil {
		t.Fatal("double demotion succeeded")
	}
	if err := mon.Promote(); err != nil {
		t.Fatal(err)
	}

	// An f32-native monitor can only go down to q16.
	m32, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: len(ds.TrainX[0]), Hidden: 8, Window: 50, Seed: 3,
		Precision: edgedrift.Float32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m32.Fit(ds.TrainX, ds.TrainY); err != nil {
		t.Fatal(err)
	}
	if err := m32.Demote(edgedrift.Float32); err == nil {
		t.Fatal("f32 → f32 demotion succeeded")
	}
	if err := m32.Demote(edgedrift.Fixed16); err != nil {
		t.Fatalf("f32 → q16 demotion failed: %v", err)
	}
	if m32.ActivePrecision() != edgedrift.Fixed16 {
		t.Fatalf("active precision %v", m32.ActivePrecision())
	}
}

// TestDemotedMemoryAudit checks MemoryBytes counts origin + twin while
// demoted and falls back to the origin alone after promotion — the
// honest number for a governor's memory budget.
func TestDemotedMemoryAudit(t *testing.T) {
	ds := goldenDataset()
	mon := goldenMonitor(t, edgedrift.GuardReject)
	if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
		t.Fatal(err)
	}
	base := mon.MemoryBytes()
	if err := mon.Demote(edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	demoted := mon.MemoryBytes()
	if demoted <= base {
		t.Fatalf("demoted MemoryBytes %d not larger than origin alone %d (retained state must be counted)", demoted, base)
	}
	if err := mon.Promote(); err != nil {
		t.Fatal(err)
	}
	if got := mon.MemoryBytes(); got != base {
		t.Fatalf("post-promotion MemoryBytes %d, want %d", got, base)
	}
}

// TestDemotedBatchMatchesPerSample extends the BatchStreaming contract
// to a demoted monitor: batch and per-sample paths must agree bit for
// bit through the twin too.
func TestDemotedBatchMatchesPerSample(t *testing.T) {
	ds := goldenDataset()
	for _, target := range []edgedrift.Precision{edgedrift.Float32, edgedrift.Fixed16} {
		target := target
		t.Run(target.String(), func(t *testing.T) {
			a := goldenMonitor(t, edgedrift.GuardReject)
			b := goldenMonitor(t, edgedrift.GuardReject)
			for _, m := range []*edgedrift.Monitor{a, b} {
				if err := m.Fit(ds.TrainX, ds.TrainY); err != nil {
					t.Fatal(err)
				}
				for _, x := range ds.TestX[:200] {
					m.Process(x)
				}
				if err := m.Demote(target); err != nil {
					t.Fatal(err)
				}
			}
			xs := ds.TestX[200:800]
			batched := a.ProcessBatch(nil, xs)
			for i, x := range xs {
				r := b.Process(x)
				if r != batched[i] {
					t.Fatalf("sample %d: batch %+v vs per-sample %+v", i, batched[i], r)
				}
			}
		})
	}
}

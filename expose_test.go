package edgedrift_test

import (
	"bytes"
	"encoding/json"
	"expvar"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"edgedrift"
)

// instrumentedFleet builds a two-stream instrumented fleet and pushes a
// slice of the fixture stream through both members.
func instrumentedFleet(t *testing.T, fx *fleetFixture) *edgedrift.Fleet {
	t.Helper()
	f := edgedrift.NewFleet(edgedrift.FleetConfig{
		Instrument: true, SampleEvery: 8, TraceDepth: 16,
	})
	for _, id := range []string{"line-a", "line-b"} {
		if err := f.Add(id, fx.monitor(t, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch(id, fx.stream[:200]); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestWriteMetricsExposition renders an instrumented fleet in the
// Prometheus text format and checks the families a scraper relies on
// are present, typed, and carry the expected values.
func TestWriteMetricsExposition(t *testing.T) {
	fx := newFleetFixture(t)
	f := instrumentedFleet(t, fx)

	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE edgedrift_streams gauge",
		"edgedrift_streams 2",
		"# TYPE edgedrift_samples_total counter",
		"edgedrift_samples_total 400",
		"edgedrift_healthy 1",
		`edgedrift_stream_samples_total{stream="line-a"} 200`,
		`edgedrift_stream_samples_total{stream="line-b"} 200`,
		`edgedrift_stream_phase_samples_total{stream="line-a",phase="monitoring"}`,
		"# TYPE edgedrift_process_latency_seconds histogram",
		`edgedrift_process_latency_seconds_bucket{stream="line-a",le="+Inf"} 25`,
		`edgedrift_process_latency_seconds_count{stream="line-a"} 25`,
		"# TYPE edgedrift_labels_observed_total counter",
		"# TYPE edgedrift_supervised_fires_total counter",
		"# TYPE edgedrift_supervised_triggers_total counter",
		"# TYPE edgedrift_hybrid_confirms_total counter",
		"# TYPE edgedrift_pool_hits_total counter",
		"# TYPE edgedrift_pool_misses_total counter",
		"# TYPE edgedrift_pool_restores_total counter",
		"# TYPE edgedrift_pool_evictions_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// HELP/TYPE headers must appear exactly once per family even though
	// two streams emit the same families.
	if n := strings.Count(out, "# TYPE edgedrift_stream_samples_total counter"); n != 1 {
		t.Fatalf("per-stream family TYPE header emitted %d times, want 1", n)
	}
	// Deterministic ordering: line-a's series before line-b's.
	if strings.Index(out, `{stream="line-a"}`) > strings.Index(out, `{stream="line-b"}`) {
		t.Fatal("streams not sorted by ID in exposition")
	}
}

// TestWriteMetricsUninstrumented checks the exposition degrades
// gracefully on a plain fleet: totals and health, no per-stream stage
// families, no latency histogram.
func TestWriteMetricsUninstrumented(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", fx.stream[:50]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `edgedrift_stream_samples_total{stream="s"} 50`) {
		t.Fatal("per-stream sample counter missing")
	}
	if strings.Contains(out, "edgedrift_process_latency_seconds") {
		t.Fatal("latency histogram exposed without instrumentation")
	}
}

// TestFleetRemoveReportsFinalCounts locks the public Remove contract:
// the final lifetime counters come back with the membership bit.
func TestFleetRemoveReportsFinalCounts(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", fx.stream[:120]); err != nil {
		t.Fatal(err)
	}
	samples, drifts, ok := f.Remove("s")
	if !ok || samples != 120 {
		t.Fatalf("Remove = (%d, %d, %v), want 120 samples, ok", samples, drifts, ok)
	}
	if _, _, ok := f.Remove("s"); ok {
		t.Fatal("second Remove of the same stream reported ok")
	}
	if f.Len() != 0 {
		t.Fatalf("Len after remove = %d", f.Len())
	}
}

// TestPublishExpvar registers the fleet roll-up in the expvar registry
// and reads it back through the standard interface; a duplicate name
// must error instead of panicking.
func TestPublishExpvar(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", fx.stream[:80]); err != nil {
		t.Fatal(err)
	}
	const name = "edgedrift_test_fleet"
	if err := f.PublishExpvar(name); err != nil {
		t.Fatal(err)
	}
	if err := f.PublishExpvar(name); err == nil {
		t.Fatal("duplicate PublishExpvar did not error")
	}
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("expvar.Get returned nil after publish")
	}
	var m struct{ Samples uint64 }
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar rendering is not JSON: %v", err)
	}
	if m.Samples != 80 {
		t.Fatalf("expvar Samples = %d, want 80", m.Samples)
	}
}

// TestStartHealthLogger runs the periodic logger on a tight cadence and
// checks it emits Snapshot.String() lines until stopped; stop must be
// idempotent.
func TestStartHealthLogger(t *testing.T) {
	var lines atomic.Int64
	var lastLine atomic.Value
	snap := func() edgedrift.HealthSnapshot {
		return edgedrift.HealthSnapshot{SamplesSeen: 7, PFinite: true, Phase: "monitoring"}
	}
	stop := edgedrift.StartHealthLogger(time.Millisecond, snap, func(line string) {
		lastLine.Store(line)
		lines.Add(1)
	})
	deadline := time.Now().Add(2 * time.Second)
	for lines.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if lines.Load() < 3 {
		t.Fatalf("health logger emitted %d lines in 2s at 1ms cadence", lines.Load())
	}
	line, _ := lastLine.Load().(string)
	if !strings.Contains(line, "phase=monitoring") || !strings.Contains(line, "samples=7") {
		t.Fatalf("logged line %q is not the snapshot rendering", line)
	}
	// One tick may already be in flight when stop returns; let it land,
	// then the count must freeze.
	time.Sleep(20 * time.Millisecond)
	n := lines.Load()
	time.Sleep(20 * time.Millisecond)
	if lines.Load() != n {
		t.Fatal("logger kept ticking after stop")
	}
}

func TestStartHealthLoggerRejectsZeroInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("StartHealthLogger(0, ...) did not panic")
		}
	}()
	edgedrift.StartHealthLogger(0, func() edgedrift.HealthSnapshot { return edgedrift.HealthSnapshot{} }, func(string) {})
}

// TestInstrumentedFleetSteadyStateAllocs repeats the fleet's zero-alloc
// lock with instrumentation on: sampled timing and the trace ring must
// not put allocations back on the hot path.
func TestInstrumentedFleetSteadyStateAllocs(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{Instrument: true, SampleEvery: 4})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	batch := fx.stream[:100] // pre-drift, in-distribution
	dst := make([]edgedrift.Result, 0, len(batch))
	warm := func() {
		var err error
		dst, err = f.ProcessBatchInto(dst[:0], "s", batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("instrumented fleet steady-state allocates %.1f times per batch, want 0", n)
	}
}

// TestInstrumentedFleetSaveLoad checks serialization sees through the
// instrumentation wrapper: an instrumented fleet saves, loads into an
// instrumented config, and continues identically to an uninstrumented
// reference.
func TestInstrumentedFleetSaveLoad(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{Instrument: true})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	head, tail := fx.stream[:300], fx.stream[300:600]
	if _, err := f.ProcessBatch("s", head); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatal(err)
	}
	g, err := edgedrift.LoadFleet(bytes.NewReader(buf.Bytes()), edgedrift.FleetConfig{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.ProcessBatch("s", tail)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.ProcessBatch("s", tail)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: loaded instrumented fleet diverges", i)
		}
	}
	if m := g.Metrics(); m.PerStream["s"].Stage == nil {
		t.Fatal("loaded fleet lost its instrumentation")
	}
}

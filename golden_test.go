package edgedrift_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
)

// The golden-stream regression contract: the composable pipeline must be
// bit-identical to the monolithic pre-refactor Monitor. These
// fingerprints were recorded at the seed HEAD (before the pipeline
// refactor) by hashing every per-sample Result field — label, score
// bits, distance bits, phase, drift flag, rejection flag — plus the
// drift-event index list over a fixed NSL-KDD slice. Any change to the
// state machine's arithmetic, ordering, or guard semantics changes the
// hash.
const (
	goldenCleanFP    = "5a6544ada0f662ab"
	goldenPoisonedFP = "c8eca51621581921"
	goldenClampFP    = "313e07398693cb2b"
)

// goldenDataset is a compact NSL-KDD surrogate slice: big enough to
// drive the detector through calibration, a drift detection, and a full
// reconstruction; small enough to keep the regression test interactive.
func goldenDataset() *nslkdd.Dataset {
	p := nslkdd.DefaultParams()
	p.TrainN = 1200
	p.TestN = 4000
	p.DriftAt = 2000
	return nslkdd.Generate(p)
}

// goldenMonitor builds the fixed configuration the fingerprints lock.
func goldenMonitor(t testing.TB, guard edgedrift.GuardPolicy) *edgedrift.Monitor {
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2,
		Inputs:  nslkdd.Features,
		Hidden:  22,
		Window:  100,
		Seed:    1,
		Guard:   guard,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mon
}

// fingerprint replays xs through mon and hashes every Result field that
// the paper's evaluation depends on, bit for bit.
func fingerprint(mon *edgedrift.Monitor, xs [][]float64) string {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	bit := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	for _, x := range xs {
		r := mon.Process(x)
		u64(uint64(r.Label))
		u64(math.Float64bits(r.Score))
		u64(math.Float64bits(r.Dist))
		u64(uint64(r.Phase))
		bit(r.DriftDetected)
		bit(r.Rejected)
	}
	for _, e := range mon.DriftEvents() {
		u64(uint64(e))
	}
	u64(uint64(mon.Reconstructions()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// poison returns a copy of xs with a deterministic sprinkling of
// non-finite features — the rejection-flag path of the fingerprint.
func poison(xs [][]float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		px := append([]float64(nil), x...)
		switch {
		case i%97 == 11:
			px[i%len(px)] = math.NaN()
		case i%251 == 42:
			px[0] = math.Inf(1)
		}
		out[i] = px
	}
	return out
}

// TestGoldenStream locks the refactored pipeline to the pre-refactor
// Monitor output: drift indices, labels, scores, distances, phases and
// rejection flags must be bit-identical on the fixed NSL-KDD slice.
func TestGoldenStream(t *testing.T) {
	ds := goldenDataset()
	cases := []struct {
		name  string
		guard edgedrift.GuardPolicy
		xs    [][]float64
		want  string
	}{
		{"clean/reject", edgedrift.GuardReject, ds.TestX, goldenCleanFP},
		{"poisoned/reject", edgedrift.GuardReject, poison(ds.TestX), goldenPoisonedFP},
		{"poisoned/clamp", edgedrift.GuardClamp, poison(ds.TestX), goldenClampFP},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			mon := goldenMonitor(t, tc.guard)
			if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
				t.Fatal(err)
			}
			got := fingerprint(mon, tc.xs)
			if got != tc.want {
				t.Errorf("golden fingerprint drifted: got %s, want %s", got, tc.want)
			}
		})
	}
}

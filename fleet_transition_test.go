package edgedrift_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"edgedrift"
)

// TestFleetDemotePromoteRoundTrip is the fleet half of the transition
// contract: members demoted through the fleet serve samples at reduced
// precision, the roll-up counts them, traces stamp the transitions, and
// promotion resumes each stream bit-identically — the excursion samples
// advanced only the twins, so the post-promotion stream must equal a
// reference monitor that never saw them.
func TestFleetDemotePromoteRoundTrip(t *testing.T) {
	fx := newFleetFixture(t)
	head, mid, tail := fx.stream[:500], fx.stream[500:800], fx.stream[800:2000]

	// Per-stream references: head then tail, skipping the excursion.
	want := make(map[string][]edgedrift.Result)
	targets := map[string]edgedrift.Precision{"m0": edgedrift.Float32, "m1": edgedrift.Fixed16}
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("m%d", i)
		ref := fx.monitor(t, uint64(10+i))
		for _, x := range head {
			ref.Process(x)
		}
		for _, x := range tail {
			want[id] = append(want[id], ref.Process(x))
		}
	}

	f := edgedrift.NewFleet(edgedrift.FleetConfig{Instrument: true})
	for i := 0; i < 2; i++ {
		if err := f.Add(fmt.Sprintf("m%d", i), fx.monitor(t, uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	for id := range targets {
		if _, err := f.ProcessBatch(id, head); err != nil {
			t.Fatal(err)
		}
	}
	for id, target := range targets {
		if err := f.DemoteMember(id, target); err != nil {
			t.Fatal(err)
		}
		degraded, active, capable, err := f.MemberPrecision(id)
		if err != nil || !capable || !degraded || active != target {
			t.Fatalf("MemberPrecision(%s) = %v %v %v %v after demote to %v", id, degraded, active, capable, err, target)
		}
	}

	// The excursion is served by the twins.
	for id := range targets {
		rs, err := f.ProcessBatch(id, mid)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != len(mid) {
			t.Fatalf("%s: excursion returned %d results", id, len(rs))
		}
	}

	m := f.Metrics()
	if m.Degraded != 2 || m.Demotions != 2 || m.Promotions != 0 {
		t.Fatalf("mid-excursion metrics: Degraded=%d Demotions=%d Promotions=%d", m.Degraded, m.Demotions, m.Promotions)
	}
	for id, target := range targets {
		sm, ok := m.PerStream[id]
		if !ok || !sm.Degraded || sm.ActivePrecision != target.String() {
			t.Fatalf("stream metrics for %s: %+v", id, sm)
		}
	}

	for id := range targets {
		if err := f.PromoteMember(id); err != nil {
			t.Fatal(err)
		}
	}
	m = f.Metrics()
	if m.Degraded != 0 || m.Promotions != 2 || m.TransitionFailures != 0 {
		t.Fatalf("post-promotion metrics: Degraded=%d Promotions=%d TransitionFailures=%d", m.Degraded, m.Promotions, m.TransitionFailures)
	}

	// Transitions were stamped into each member's trace ring.
	traces := f.Traces()
	for id, target := range targets {
		var sawDemote, sawPromote bool
		for _, ev := range traces[id] {
			switch ev.Kind {
			case "demote:" + target.String():
				sawDemote = true
			case "promote:f64":
				sawPromote = true
			}
		}
		if !sawDemote || !sawPromote {
			t.Fatalf("%s: trace missing transition stamps (demote=%v promote=%v): %+v", id, sawDemote, sawPromote, traces[id])
		}
	}

	// The origins resume bit-identically.
	for id := range targets {
		got, err := f.ProcessBatch(id, tail)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[id]) {
			t.Fatalf("%s: post-promotion stream diverges from the never-degraded reference", id)
		}
	}
}

// TestFleetTransitionFailures pins the failure accounting: unknown
// members, capability-free stages and invalid transitions all count,
// and none of them changes any member.
func TestFleetTransitionFailures(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("m", fx.monitor(t, 3)); err != nil {
		t.Fatal(err)
	}
	q16, err := fx.monitor(t, 4).QuantizeQ16()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddStage("q", q16); err != nil {
		t.Fatal(err)
	}

	if err := f.DemoteMember("ghost", edgedrift.Float32); err == nil {
		t.Fatal("demoting an unknown member succeeded")
	}
	if err := f.DemoteMember("q", edgedrift.Float32); err == nil {
		t.Fatal("demoting a capability-free stage succeeded")
	}
	if _, _, capable, err := f.MemberPrecision("q"); err != nil || capable {
		t.Fatalf("MemberPrecision(q): capable=%v err=%v, want no capability", capable, err)
	}
	if err := f.PromoteMember("m"); err == nil {
		t.Fatal("promoting a non-demoted member succeeded")
	}
	if err := f.DemoteMember("m", edgedrift.Float64); err == nil {
		t.Fatal("demoting to f64 succeeded")
	}
	if got := f.Metrics().TransitionFailures; got != 4 {
		t.Fatalf("TransitionFailures = %d, want 4", got)
	}
	if degraded, active, _, _ := f.MemberPrecision("m"); degraded || active != edgedrift.Float64 {
		t.Fatalf("member mutated by failed transitions: degraded=%v active=%v", degraded, active)
	}
}

// TestFleetDegradedSaveLoad round-trips a degraded fleet through the
// FLEET4 container: demoted members reload demoted with their twins
// continuing bit-identically, the retained origins survive the trip, and
// promotion after the round trip is still bit-exact against a
// never-degraded reference. Then every byte of the artifact is flipped
// to prove corruption of the new degraded payloads cannot slip through.
func TestFleetDegradedSaveLoad(t *testing.T) {
	fx := newFleetFixture(t)
	head, mid, tail := fx.stream[:400], fx.stream[400:600], fx.stream[600:1800]

	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	ids := []string{"f32", "q16", "whole"}
	for i, id := range ids {
		if err := f.Add(id, fx.monitor(t, uint64(20+i))); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch(id, head); err != nil {
			t.Fatal(err)
		}
	}
	// References: head then tail, no excursion (what promotion resumes).
	want := make(map[string][]edgedrift.Result)
	for i, id := range ids {
		ref := fx.monitor(t, uint64(20+i))
		for _, x := range head {
			ref.Process(x)
		}
		for _, x := range tail {
			want[id] = append(want[id], ref.Process(x))
		}
	}
	if err := f.DemoteMember("f32", edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	if err := f.DemoteMember("q16", edgedrift.Fixed16); err != nil {
		t.Fatal(err)
	}
	// Advance the twins so the saved degraded state is mid-excursion,
	// not freshly derived.
	for _, id := range []string{"f32", "q16"} {
		if _, err := f.ProcessBatch(id, mid[:100]); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := f.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("FLEET4")) {
		t.Fatal("Save did not write a FLEET4 container")
	}

	g, err := edgedrift.LoadFleet(bytes.NewReader(buf.Bytes()), edgedrift.FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for id, wantActive := range map[string]edgedrift.Precision{
		"f32": edgedrift.Float32, "q16": edgedrift.Fixed16, "whole": edgedrift.Float64,
	} {
		degraded, active, capable, err := g.MemberPrecision(id)
		if err != nil || !capable {
			t.Fatalf("loaded MemberPrecision(%s): capable=%v err=%v", id, capable, err)
		}
		if wantDegraded := id != "whole"; degraded != wantDegraded || active != wantActive {
			t.Fatalf("loaded %s: degraded=%v active=%v, want degraded=%v active=%v", id, degraded, active, wantDegraded, wantActive)
		}
	}
	if got := g.Metrics().Degraded; got != 2 {
		t.Fatalf("loaded fleet Degraded = %d, want 2", got)
	}

	// The loaded twins continue bit-identically to the originals.
	for _, id := range []string{"f32", "q16"} {
		wantRS, err := f.ProcessBatch(id, mid[100:])
		if err != nil {
			t.Fatal(err)
		}
		gotRS, err := g.ProcessBatch(id, mid[100:])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRS, wantRS) {
			t.Fatalf("%s: loaded twin diverges from the original twin", id)
		}
	}

	// Promotion after the round trip restores the retained origin: the
	// loaded fleet's stream must match the never-degraded reference.
	for _, id := range []string{"f32", "q16"} {
		if err := g.PromoteMember(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []string{"f32", "q16"} {
		got, err := g.ProcessBatch(id, tail)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[id]) {
			t.Fatalf("%s: origin loaded from FLEET4 diverges after promotion", id)
		}
	}

	// Every single byte flip must be caught — the degraded payloads
	// (precision byte, retained origin, twin) included.
	art := buf.Bytes()
	for pos := 0; pos < len(art); pos++ {
		bad := append([]byte(nil), art...)
		bad[pos] ^= 0x40
		if _, err := edgedrift.LoadFleet(bytes.NewReader(bad), edgedrift.FleetConfig{}); !errors.Is(err, edgedrift.ErrBadFormat) {
			t.Fatalf("flip at byte %d/%d: err = %v, want ErrBadFormat", pos, len(art), err)
		}
	}
}

// TestFleetDegradedExportImport migrates a demoted member between
// fleets: the exported payload carries origin + twin, and the importing
// fleet resumes the twin bit-identically with the origin intact.
func TestFleetDegradedExportImport(t *testing.T) {
	fx := newFleetFixture(t)
	src := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := src.Add("m", fx.monitor(t, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.ProcessBatch("m", fx.stream[:400]); err != nil {
		t.Fatal(err)
	}
	if err := src.DemoteMember("m", edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	if _, err := src.ProcessBatch("m", fx.stream[400:500]); err != nil {
		t.Fatal(err)
	}
	// A parallel twin fleet predicts what the migrated member must do.
	ref := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := ref.Add("m", fx.monitor(t, 30)); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessBatch("m", fx.stream[:400]); err != nil {
		t.Fatal(err)
	}
	if err := ref.DemoteMember("m", edgedrift.Float32); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.ProcessBatch("m", fx.stream[400:500]); err != nil {
		t.Fatal(err)
	}

	st, err := src.ExportMember("m")
	if err != nil {
		t.Fatal(err)
	}
	if src.Len() != 0 {
		t.Fatal("export did not deregister the member")
	}
	dst := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := dst.ImportMember(st); err != nil {
		t.Fatal(err)
	}
	degraded, active, _, err := dst.MemberPrecision("m")
	if err != nil || !degraded || active != edgedrift.Float32 {
		t.Fatalf("imported member: degraded=%v active=%v err=%v", degraded, active, err)
	}
	got, err := dst.ProcessBatch("m", fx.stream[500:700])
	if err != nil {
		t.Fatal(err)
	}
	wantRS, err := ref.ProcessBatch("m", fx.stream[500:700])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantRS) {
		t.Fatal("imported demoted member diverges from the reference twin")
	}
	if err := dst.PromoteMember("m"); err != nil {
		t.Fatal(err)
	}
	if degraded, active, _, _ := dst.MemberPrecision("m"); degraded || active != edgedrift.Float64 {
		t.Fatalf("promotion after migration: degraded=%v active=%v", degraded, active)
	}
}

// FuzzLoadFleet is the loader's crash-resistance harness, FLEET4
// edition: arbitrary mutations of a container holding a plain member, a
// demoted f32 member and a demoted q16 member must either load cleanly
// or fail with an error — never panic. The corpus seeds the valid
// artifact plus a handful of structured prefixes.
func FuzzLoadFleet(f *testing.F) {
	fx := newFleetFixture(f)
	fl := edgedrift.NewFleet(edgedrift.FleetConfig{})
	for i, id := range []string{"a", "b", "c"} {
		if err := fl.Add(id, fx.monitor(f, uint64(40+i))); err != nil {
			f.Fatal(err)
		}
		if _, err := fl.ProcessBatch(id, fx.stream[:200]); err != nil {
			f.Fatal(err)
		}
	}
	if err := fl.DemoteMember("a", edgedrift.Float32); err != nil {
		f.Fatal(err)
	}
	if err := fl.DemoteMember("b", edgedrift.Fixed16); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fl.Save(&buf, edgedrift.Float64); err != nil {
		f.Fatal(err)
	}
	art := buf.Bytes()
	f.Add(art)
	f.Add(art[:len(art)/2])
	f.Add([]byte("FLEET4"))
	f.Add([]byte("FLEET1\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := edgedrift.LoadFleet(bytes.NewReader(data), edgedrift.FleetConfig{})
		if err != nil {
			return
		}
		// Whatever loaded must be re-saveable: the decoded members are
		// real stages, not half-initialised wreckage.
		var out bytes.Buffer
		if err := g.Save(&out, edgedrift.Float64); err != nil {
			t.Fatalf("loaded fleet cannot re-save: %v", err)
		}
	})
}

package edgedrift

import (
	"errors"
	"fmt"
	"io"
	"time"

	"edgedrift/internal/core"
	"edgedrift/internal/fixed"
	"edgedrift/internal/fleet"
	"edgedrift/internal/oselm"
)

// FleetConfig configures a Fleet: registry shard count, ProcessAll
// worker bound, and the drift-event buffer size. The zero value is
// ready to use (8 shards, GOMAXPROCS workers, 256 buffered events).
type FleetConfig = fleet.Config

// FleetEvent is one drift detection, fanned in from every member stream
// onto the fleet's single subscriber channel (see Fleet.Events).
type FleetEvent = fleet.Event

// FleetMetrics is the fleet-level metrics roll-up (see Fleet.Metrics).
type FleetMetrics = fleet.Metrics

// StreamMetrics is one stream's contribution to the fleet roll-up.
type StreamMetrics = fleet.StreamMetrics

// StageMetrics is an instrumented stage's counter snapshot.
type StageMetrics = core.StageMetrics

// TraceEvent is one retained drift detection in an instrumented
// stream's bounded trace ring: stream ID, sample index, score and the
// θ_error in force at detection time.
type TraceEvent = core.TraceEvent

// Streaming is the composable per-sample stage contract every detector
// in this repository satisfies (see the core package). Monitors, their
// Q16.16 ports (Monitor.QuantizeQ16) and custom stages all implement
// it, and a Fleet can host any mix of them via AddStage.
type Streaming = core.Streaming

// BatchStreaming is the optional batched-scoring capability a stage can
// expose: ProcessBatch must be observably identical to per-sample
// Process calls (see the core package for the contract). Monitors and
// their Q16.16 ports implement it; the Fleet discovers it at AddStage
// time and routes whole batches through it.
type BatchStreaming = core.BatchStreaming

// Fleet monitors many independent streams at once: a sharded,
// multi-tenant registry of Monitors keyed by stream ID. A Monitor alone
// is the single-stream special case — one state machine, one goroutine;
// the Fleet is the concurrent entry point, serialising access per
// member so that distinct streams scale across cores while each
// stream's results stay deterministic and bit-identical to running its
// Monitor alone.
type Fleet struct {
	f *fleet.Fleet
}

// NewFleet builds an empty fleet.
func NewFleet(cfg FleetConfig) *Fleet {
	return &Fleet{f: fleet.New(cfg)}
}

// Add registers a fitted monitor under a stream ID. The fleet owns the
// monitor from here on: drive the stream through ProcessBatch, not
// through the monitor directly.
func (f *Fleet) Add(id string, mon *Monitor) error {
	return f.AddCohort(id, mon, "")
}

// AddCohort registers a fitted monitor into a cooperation cohort.
// Members of one cohort exchange merged model state: with
// FleetConfig.WarmRecovery set, a drifted member's rebuilding model is
// seeded from the closed-form combination of its non-drifted cohort
// peers' state, and Fleet.AntiEntropy periodically reconciles the whole
// group. Cohort peers must be merge-compatible — built from the same
// Options (shape, precision, RLS constants) and the same Seed, so their
// random projections are bit-identical; incompatible peers are detected
// by fingerprint and skipped loudly, never merged. An empty cohort is
// plain Add.
func (f *Fleet) AddCohort(id string, mon *Monitor, cohort string) error {
	if mon == nil {
		return fmt.Errorf("edgedrift: fleet add %q: nil monitor", id)
	}
	if !mon.fit {
		return fmt.Errorf("edgedrift: fleet add %q: monitor not fitted", id)
	}
	return f.f.AddMember(id, mon, fleet.MemberConfig{Cohort: cohort})
}

// AddStage registers any streaming stage — e.g. the fixed-point port
// from Monitor.QuantizeQ16 — under a stream ID, letting one fleet host
// members at different numeric precisions side by side. Stage members
// are processed, health-aggregated and metered like Monitors, but the
// Monitor-specific surfaces (Do, Save) report them as non-Monitor
// members.
func (f *Fleet) AddStage(id string, s Streaming) error {
	if s == nil {
		return fmt.Errorf("edgedrift: fleet add %q: nil stage", id)
	}
	return f.f.Add(id, s)
}

// Remove deregisters a stream, reporting whether it existed and, when
// it did, the stream's final lifetime sample and drift counts. Remove
// waits out any batch mid-flight on the member before returning, so a
// removed stream can never emit another drift event.
func (f *Fleet) Remove(id string) (samples, drifts uint64, ok bool) { return f.f.Remove(id) }

// Len returns the registered stream count.
func (f *Fleet) Len() int { return f.f.Len() }

// IDs returns the registered stream IDs, sorted.
func (f *Fleet) IDs() []string { return f.f.IDs() }

// ProcessBatch feeds a batch of samples to one stream in order and
// returns the per-sample results. Safe to call concurrently for
// different streams; one stream's samples must arrive from one caller
// at a time for its order to be meaningful.
func (f *Fleet) ProcessBatch(id string, xs [][]float64) ([]Result, error) {
	return f.f.ProcessBatch(id, xs)
}

// ProcessBatchInto is ProcessBatch appending into dst — the
// allocation-free form for callers that reuse a result buffer.
func (f *Fleet) ProcessBatchInto(dst []Result, id string, xs [][]float64) ([]Result, error) {
	return f.f.ProcessBatchInto(dst, id, xs)
}

// ProcessAll fans per-stream batches out over the fleet's bounded
// worker pool and returns per-stream results keyed like the input.
func (f *Fleet) ProcessAll(batches map[string][][]float64) (map[string][]Result, error) {
	return f.f.ProcessAll(batches)
}

// Events arms drift-event delivery and returns the fleet's single
// subscriber channel. When the buffer is full, events are dropped and
// counted (EventsDropped) rather than stalling the processing path.
func (f *Fleet) Events() <-chan FleetEvent { return f.f.Subscribe() }

// EventsDropped returns how many drift events were discarded because
// the subscriber channel was full.
func (f *Fleet) EventsDropped() uint64 { return f.f.EventsDropped() }

// Health rolls every member's snapshot up into one fleet-level
// snapshot: counters sum, PFinite ANDs (one diverged member makes the
// fleet unhealthy), score summaries pool, and the phase reports the
// most operationally active member.
func (f *Fleet) Health() HealthSnapshot { return f.f.Health() }

// MemberHealth returns each stream's own snapshot, keyed by ID.
func (f *Fleet) MemberHealth() map[string]HealthSnapshot { return f.f.MemberHealth() }

// MemberStats returns one stream's lifetime sample and drift counts.
func (f *Fleet) MemberStats(id string) (samples, drifts uint64, err error) {
	return f.f.MemberStats(id)
}

// Metrics rolls every member's counters up into one fleet-level
// snapshot — whole-fleet sample/drift totals, dropped-event count, the
// memory audit and the per-stream breakdown. With FleetConfig.Instrument
// set, each stream also carries its stage instrumentation (phase
// transitions, sampled latency histogram).
func (f *Fleet) Metrics() FleetMetrics { return f.f.Metrics() }

// Traces returns each instrumented stream's retained drift trace (the
// last TraceDepth detections), keyed by stream ID. Empty unless the
// fleet was built with FleetConfig.Instrument.
func (f *Fleet) Traces() map[string][]TraceEvent { return f.f.Traces() }

// MemoryBytes audits the whole fleet's retained state.
func (f *Fleet) MemoryBytes() int { return f.f.MemoryBytes() }

// Cohort returns a member's cooperation cohort ("" when it has none).
func (f *Fleet) Cohort(id string) (string, error) { return f.f.Cohort(id) }

// CohortMembers returns the live member IDs of a cohort, sorted.
func (f *Fleet) CohortMembers(cohort string) []string { return f.f.CohortMembers(cohort) }

// ExportMergeState exports one member's mergeable model state and its
// compatibility fingerprint without deregistering it — the unit a
// cooperative recovery ships between fleets (or shards). Only a stable
// member exports: mid-reconstruction state is rejected.
func (f *Fleet) ExportMergeState(id string) (state []byte, fingerprint uint64, err error) {
	return f.f.ExportMergeState(id)
}

// MergeSeedMember replaces one member's model state with the
// closed-form combination of the given peer states (from
// ExportMergeState on merge-compatible members). Incompatible state is
// rejected with an error wrapping ErrMergeIncompatible and leaves the
// member untouched.
func (f *Fleet) MergeSeedMember(id string, states [][]byte) error {
	return f.f.MergeSeedMember(id, states)
}

// MemberFingerprint returns a member's merge-compatibility fingerprint
// (0 for members without mergeable state).
func (f *Fleet) MemberFingerprint(id string) (uint64, error) { return f.f.MemberFingerprint(id) }

// AntiEntropy runs one cooperative merge round over a cohort: every
// live, stable, mutually compatible member contributes its state
// and is re-seeded with the combination of all contributions. It
// returns how many members were seeded.
func (f *Fleet) AntiEntropy(cohort string) (int, error) { return f.f.AntiEntropy(cohort) }

// StartAntiEntropy launches the periodic anti-entropy policy over every
// cohort; the returned stop function halts it and waits for an
// in-flight round.
func (f *Fleet) StartAntiEntropy(interval time.Duration) (stop func()) {
	return f.f.StartAntiEntropy(interval)
}

// DemoteMember switches one member to a cheaper active precision under
// the member's lock (see Monitor.Demote for the transition lattice and
// retention semantics). The transition is stamped into the member's
// trace ring when the fleet is instrumented, and counted in the
// fleet-level Demotions/TransitionFailures roll-up.
func (f *Fleet) DemoteMember(id string, target Precision) error {
	return f.f.DemoteMember(id, target)
}

// PromoteMember restores one member to its retained full-precision
// origin, bit-exactly (see Monitor.Promote).
func (f *Fleet) PromoteMember(id string) error { return f.f.PromoteMember(id) }

// MemberPrecision reports one member's capacity state: whether it is
// currently demoted, the precision actually serving its samples, and
// whether the member supports transitions at all (q16-native stages and
// custom stages do not).
func (f *Fleet) MemberPrecision(id string) (degraded bool, active Precision, capable bool, err error) {
	return f.f.MemberPrecision(id)
}

// asMonitor recovers the Monitor inside a member stage, seeing through
// the Instrumented wrapper an instrumented fleet adds at registration.
func asMonitor(s core.Streaming) (*Monitor, bool) {
	for {
		if mon, ok := s.(*Monitor); ok {
			return mon, true
		}
		in, ok := s.(*core.Instrumented)
		if !ok {
			return nil, false
		}
		s = in.Inner()
	}
}

// asFixedStream recovers the Q16.16 stage inside a member, seeing
// through the Instrumented wrapper like asMonitor.
func asFixedStream(s core.Streaming) (*fixed.Stream, bool) {
	for {
		if fs, ok := s.(*fixed.Stream); ok {
			return fs, true
		}
		in, ok := s.(*core.Instrumented)
		if !ok {
			return nil, false
		}
		s = in.Inner()
	}
}

// Member-kind bytes recorded per member in the FLEET4 container and in
// ExportMember payloads: the discriminator that lets mixed-precision
// fleets round-trip (satellite of the distributed tier — a shard must
// be able to checkpoint and migrate q16 members like any other).
const (
	memberKindMonitor = 0 // float Monitor, OSELM3 artifact (at the fleet's save precision)
	memberKindQ16     = 1 // fixed.Stream, QFIX01 artifact
	// memberKindDegraded (FLEET4) is a demoted Monitor: one byte naming
	// the twin's precision, the retained full-precision origin at its
	// own training precision (exactness is the whole point of
	// retention), then the active twin — an f32 Monitor serialised at
	// the f64 wire (the f32 wire truncates the RLS state; widening
	// f32 state onto the f64 wire is exact, so the twin round-trips
	// bit-identically) or a Q16.16 stage in its exact integer format.
	memberKindDegraded = 2
)

// encodeMember serialises one member stage with its kind byte; prec
// applies to float Monitors only (the Q16.16 wire format is exact).
func encodeMember(prec Precision) fleet.EncodeFunc {
	return func(id string, s core.Streaming, w io.Writer) (byte, error) {
		if mon, ok := asMonitor(s); ok {
			if mon.degraded != nil {
				return memberKindDegraded, encodeDegraded(mon, w)
			}
			return memberKindMonitor, mon.Save(w, prec)
		}
		if fs, ok := asFixedStream(s); ok {
			return memberKindQ16, fs.Save(w)
		}
		return 0, fmt.Errorf("edgedrift: fleet member %q has no wire format (not a Monitor or Q16.16 stage)", id)
	}
}

// encodeDegraded writes a demoted member: [twin-precision byte][origin
// artifact at origin precision][twin artifact]. Both artifacts are
// self-delimiting (their own magic + CRC footers), so no lengths are
// needed.
func encodeDegraded(mon *Monitor, w io.Writer) error {
	active := mon.ActivePrecision()
	if _, err := w.Write([]byte{byte(active)}); err != nil {
		return err
	}
	if err := mon.Save(w, mon.opts.Precision); err != nil {
		return err
	}
	switch t := mon.degraded.(type) {
	case *Monitor:
		// The f32 wire truncates the RLS conditioning state; the f64 wire
		// widens the twin's f32 slabs exactly, so this — not the twin's
		// own precision — is the lossless encoding.
		return t.Save(w, Float64)
	case *fixed.Stream:
		return t.Save(w)
	default:
		return fmt.Errorf("edgedrift: degraded twin %T has no wire format", mon.degraded)
	}
}

// decodeMember reconstructs one member stage from its kind byte.
func decodeMember(id string, kind byte, r io.Reader) (core.Streaming, error) {
	switch kind {
	case memberKindMonitor:
		return LoadMonitor(r)
	case memberKindQ16:
		return fixed.LoadStream(r)
	case memberKindDegraded:
		var ab [1]byte
		if _, err := io.ReadFull(r, ab[:]); err != nil {
			return nil, fmt.Errorf("edgedrift: fleet member %q: degraded header: %w", id, err)
		}
		mon, err := LoadMonitor(r)
		if err != nil {
			return nil, fmt.Errorf("edgedrift: fleet member %q: degraded origin: %w", id, err)
		}
		var twin core.Streaming
		switch Precision(ab[0]) {
		case Float32:
			twin, err = LoadMonitor(r)
		case Fixed16:
			twin, err = fixed.LoadStream(r)
		default:
			return nil, fmt.Errorf("edgedrift: fleet member %q: implausible twin precision byte %d", id, ab[0])
		}
		if err != nil {
			return nil, fmt.Errorf("edgedrift: fleet member %q: degraded twin: %w", id, err)
		}
		if err := mon.adoptDegraded(twin); err != nil {
			return nil, fmt.Errorf("edgedrift: fleet member %q: %w", id, err)
		}
		return mon, nil
	default:
		return nil, fmt.Errorf("edgedrift: fleet member %q: unknown member kind %d", id, kind)
	}
}

// Do runs fn against one member while holding that member's lock — the
// safe way to inspect a single stream while the fleet keeps processing.
func (f *Fleet) Do(id string, fn func(*Monitor) error) error {
	return f.f.Do(id, func(s core.Streaming) error {
		mon, ok := asMonitor(s)
		if !ok {
			return fmt.Errorf("edgedrift: fleet member %q is not a Monitor", id)
		}
		return fn(mon)
	})
}

// Save serialises the whole fleet in sorted-ID order: a FLEET4
// container in which every member is a complete artifact with its own
// CRC32 footer — float Monitors at prec, Q16.16 stages in their exact
// integer format, demoted members as retained origin plus active twin —
// covered again by a container-level footer. Corruption fails loudly at
// load, naming the damaged member.
func (f *Fleet) Save(w io.Writer, prec Precision) error {
	return f.f.Save(w, encodeMember(prec))
}

// SaveFile atomically writes the fleet artifact to path (temp file,
// sync, rename — the same crash-safety contract as Monitor.SaveFile).
func (f *Fleet) SaveFile(path string, prec Precision) error {
	return f.f.SaveFile(path, encodeMember(prec))
}

// LoadFleet deserialises a fleet written by Save (FLEET4, or any of the
// legacy FLEET1–FLEET3 artifacts). Every member — including demoted
// members, which resume at their reduced precision with the origin
// retained — is immediately ready to Process. Corruption — container or
// member level — fails with an error matching ErrBadFormat.
func LoadFleet(r io.Reader, cfg FleetConfig) (*Fleet, error) {
	fl := NewFleet(cfg)
	if err := fl.f.Load(r, decodeMember); err != nil {
		return nil, liftFleetErr(err)
	}
	return fl, nil
}

// LoadFleetFile deserialises a fleet artifact written by SaveFile.
func LoadFleetFile(path string, cfg FleetConfig) (*Fleet, error) {
	fl := NewFleet(cfg)
	if err := fl.f.LoadFile(path, decodeMember); err != nil {
		return nil, liftFleetErr(err)
	}
	return fl, nil
}

// MemberState is one exported member: the self-contained checkpoint a
// live migration carries from a source fleet to a target fleet (see
// Fleet.ExportMember / Fleet.ImportMember). Payload is a complete
// member artifact with its own CRC32 footer; Kind discriminates the
// encoding; Samples/Drifts are the lifetime counters the importing
// fleet carries over so the roll-up neither loses nor double-counts.
type MemberState struct {
	ID      string
	Kind    byte
	Cohort  string
	Samples uint64
	Drifts  uint64
	Payload []byte
}

// ExportMember atomically deregisters one member and returns its
// serialised state — the source half of a live stream migration. The
// member is removed from the registry first, then encoded after any
// in-flight batch completes, so the payload is a sample-boundary
// snapshot and no sample can land on the source after its export.
// Float members export at their own training precision (exactness is
// what makes the continuation bit-identical); q16 members export in
// their exact integer format. A failed export leaves the fleet
// unchanged.
func (f *Fleet) ExportMember(id string) (*MemberState, error) {
	prec := Float64
	if err := f.f.Do(id, func(s core.Streaming) error {
		if mon, ok := asMonitor(s); ok {
			prec = mon.opts.Precision
		}
		return nil
	}); err != nil {
		return nil, err
	}
	kind, cohort, payload, samples, drifts, err := f.f.ExportMember(id, encodeMember(prec))
	if err != nil {
		return nil, err
	}
	return &MemberState{ID: id, Kind: kind, Cohort: cohort, Samples: samples, Drifts: drifts, Payload: payload}, nil
}

// ImportMember registers a member exported from another fleet — the
// target half of a live stream migration. The payload's checksum is
// verified before registration; corruption fails with ErrBadFormat and
// registers nothing.
func (f *Fleet) ImportMember(st *MemberState) error {
	if st == nil {
		return fmt.Errorf("edgedrift: import: nil member state")
	}
	err := f.f.ImportMember(st.ID, st.Kind, st.Cohort, st.Payload, st.Samples, st.Drifts, decodeMember)
	return liftFleetErr(err)
}

// ErrMergeIncompatible is re-exported so callers can classify merge
// rejections (see the oselm package): shape/precision/seed-topology
// mismatches and detect-only members all wrap it.
var ErrMergeIncompatible = oselm.ErrMergeIncompatible

// liftFleetErr maps the internal container's format error onto the
// public ErrBadFormat while preserving the cause chain.
func liftFleetErr(err error) error {
	if errors.Is(err, fleet.ErrBadFormat) && !errors.Is(err, ErrBadFormat) {
		return fmt.Errorf("%w: %w", ErrBadFormat, err)
	}
	return err
}

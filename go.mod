module edgedrift

go 1.22

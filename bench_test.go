// Benchmark harness: one testing.B benchmark per paper table and figure,
// plus the ablation benches for the design choices DESIGN.md calls out.
//
// Each benchmark regenerates its artifact end to end — dataset synthesis,
// model training, calibration, the full evaluation stream — and reports
// the headline quantities as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// is the single command that re-derives the paper's evaluation. The
// rendered tables themselves are printed by `go run ./cmd/driftbench`.
package edgedrift

import (
	"fmt"
	"strconv"
	"testing"

	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/eval"
)

// reportCell parses a numeric table cell into a benchmark metric. The
// single legitimate non-numeric cell is "-" — the tables' explicit
// no-value marker (e.g. a drift that was never detected) — which is
// skipped; any other unparsable content means the table generator
// regressed and fails the benchmark instead of silently dropping the
// metric.
func reportCell(b *testing.B, t *eval.Table, row, col int, unit string) {
	b.Helper()
	if row >= len(t.Rows) || col >= len(t.Rows[row]) {
		b.Fatalf("table %q lacks cell (%d,%d)", t.Title, row, col)
	}
	cell := t.Rows[row][col]
	if cell == "-" {
		return
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("table %q cell (%d,%d) = %q is neither numeric nor \"-\": %v", t.Title, row, col, cell, err)
	}
	b.ReportMetric(v, unit)
}

func runExperiment(b *testing.B, id string) *eval.Outcome {
	b.Helper()
	e, ok := eval.LookupAny(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var out *eval.Outcome
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = e.Run(1)
	}
	b.StopTimer()
	if out == nil || len(out.Tables) == 0 {
		b.Fatalf("experiment %q produced no tables", id)
	}
	return out
}

// BenchmarkFigure1DriftTypes regenerates the four drift-type streams of
// Figure 1 and reports the sudden stream's post-drift mean (≈4 by
// construction).
func BenchmarkFigure1DriftTypes(b *testing.B) {
	out := runExperiment(b, "fig1")
	reportCell(b, out.Tables[0], 0, 3, "sudden-end-mean")
}

// BenchmarkFigure3CentroidGeometry regenerates the centroid-distance
// trail of the algorithm illustration.
func BenchmarkFigure3CentroidGeometry(b *testing.B) {
	out := runExperiment(b, "fig3")
	reportCell(b, out.Tables[0], 3, 1, "drift-samples-to-detect")
}

// BenchmarkExtensionFixedPoint regenerates the Q16.16 deployment
// comparison.
func BenchmarkExtensionFixedPoint(b *testing.B) {
	out := runExperiment(b, "ext-fixedpoint")
	reportCell(b, out.Tables[0], 1, 2, "fixed-ms-per-sample")
}

// BenchmarkFigure4AccuracyTrace regenerates the five accuracy-vs-time
// curves on the NSL-KDD surrogate and reports each method's overall
// accuracy.
func BenchmarkFigure4AccuracyTrace(b *testing.B) {
	out := runExperiment(b, "fig4")
	t := out.Tables[0]
	reportCell(b, t, 0, 1, "quanttree-acc-%")
	reportCell(b, t, 2, 1, "baseline-acc-%")
	reportCell(b, t, 4, 1, "proposed-acc-%")
	if len(out.Figures) == 0 || len(out.Figures[0].Series) != 5 {
		b.Fatal("figure 4 must carry five series")
	}
}

// BenchmarkTable2AccuracyDelay regenerates Table 2 (accuracy and
// detection delay of the five methods on NSL-KDD).
func BenchmarkTable2AccuracyDelay(b *testing.B) {
	out := runExperiment(b, "table2")
	t := out.Tables[0]
	reportCell(b, t, 0, 2, "quanttree-delay")
	reportCell(b, t, 4, 1, "proposed-w100-acc-%")
	reportCell(b, t, 4, 2, "proposed-w100-delay")
	reportCell(b, t, 6, 2, "proposed-w1000-delay")
}

// BenchmarkTable3WindowDelay regenerates Table 3 (window size vs delay
// on the three cooling-fan drift types).
func BenchmarkTable3WindowDelay(b *testing.B) {
	out := runExperiment(b, "table3")
	t := out.Tables[0]
	reportCell(b, t, 0, 1, "w10-sudden-delay")
	reportCell(b, t, 2, 1, "w150-sudden-delay")
	reportCell(b, t, 0, 2, "w10-gradual-delay")
	// Row 2 col 3 is "-" (reoccurring escapes W=150); reportCell skips it
	// after verifying the cell exists.
	reportCell(b, t, 2, 3, "w150-reoccurring-delay")
}

// BenchmarkTable4Memory regenerates Table 4 (memory utilisation of the
// three detectors in the D=511 configuration).
func BenchmarkTable4Memory(b *testing.B) {
	out := runExperiment(b, "table4")
	t := out.Tables[0]
	reportCell(b, t, 0, 1, "quanttree-kB")
	reportCell(b, t, 1, 1, "spll-kB")
	reportCell(b, t, 2, 1, "proposed-kB")
}

// BenchmarkTable5ExecutionTime regenerates Table 5 (modelled Raspberry
// Pi 4 execution time over the 700-sample cooling-fan stream).
func BenchmarkTable5ExecutionTime(b *testing.B) {
	out := runExperiment(b, "table5")
	t := out.Tables[0]
	reportCell(b, t, 0, 1, "quanttree-s")
	reportCell(b, t, 1, 1, "spll-s")
	reportCell(b, t, 2, 1, "baseline-s")
	reportCell(b, t, 3, 1, "proposed-s")
}

// BenchmarkTable6PicoBreakdown regenerates Table 6 (per-sample stage
// breakdown on the Raspberry Pi Pico model).
func BenchmarkTable6PicoBreakdown(b *testing.B) {
	out := runExperiment(b, "table6")
	t := out.Tables[0]
	reportCell(b, t, 0, 1, "label-prediction-ms")
	reportCell(b, t, 1, 1, "distance-ms")
	reportCell(b, t, 5, 1, "coord-update-ms")
}

// Ablation benches (DESIGN.md §4).

func BenchmarkAblationCentroidUpdate(b *testing.B) {
	out := runExperiment(b, "ablation-centroid")
	reportCell(b, out.Tables[0], 0, 2, "running-mean-delay")
	reportCell(b, out.Tables[0], 2, 2, "ewma-delay")
}

func BenchmarkAblationDistanceMetric(b *testing.B) {
	out := runExperiment(b, "ablation-distance")
	reportCell(b, out.Tables[0], 0, 1, "l1-acc-%")
	reportCell(b, out.Tables[0], 1, 1, "l2-acc-%")
}

func BenchmarkAblationErrorGate(b *testing.B) {
	out := runExperiment(b, "ablation-gate")
	reportCell(b, out.Tables[0], 0, 3, "gated-dist-invocations")
	reportCell(b, out.Tables[0], 1, 3, "always-dist-invocations")
}

func BenchmarkAblationModelReset(b *testing.B) {
	out := runExperiment(b, "ablation-reset")
	reportCell(b, out.Tables[0], 0, 2, "reset-postdrift-acc-%")
	reportCell(b, out.Tables[0], 1, 2, "continue-postdrift-acc-%")
}

func BenchmarkAblationForgettingSweep(b *testing.B) {
	out := runExperiment(b, "ablation-forgetting")
	reportCell(b, out.Tables[0], 2, 1, "alpha097-acc-%")
}

func BenchmarkAblationHiddenWidth(b *testing.B) {
	out := runExperiment(b, "ablation-hidden")
	reportCell(b, out.Tables[0], 2, 3, "h22-pico-ms-per-pred")
}

func BenchmarkAblationMultiWindow(b *testing.B) {
	out := runExperiment(b, "ablation-multiwindow")
	reportCell(b, out.Tables[0], 2, 1, "quorum1-sudden-delay")
	reportCell(b, out.Tables[0], 3, 1, "quorum2-sudden-delay")
}

// BenchmarkScorePrecision measures the per-sample scoring hot path of
// each numeric backend — float64, float32, and the Q16.16 fixed-point
// port — over the same NSL-KDD replay. The sub-benchmark names are
// benchstat-friendly: run it on two commits and
//
//	benchstat old.txt new.txt
//
// compares the backends cell by cell. `driftbench precision -json`
// wraps the same comparison as the BENCH_6 CI artifact. The retained
// state of each backend is reported as the state-bytes metric
// (Monitor.MemoryBytes / Streaming.MemoryBytes).
func BenchmarkScorePrecision(b *testing.B) {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	train := func(b *testing.B, p Precision) *Monitor {
		b.Helper()
		mon, err := New(Options{
			Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100, Seed: 1,
			Precision: p,
		})
		if err == nil {
			err = mon.Fit(ds.TrainX, ds.TrainY)
		}
		if err != nil {
			b.Fatalf("train %v monitor: %v", p, err)
		}
		return mon
	}
	backends := []struct {
		name string
		make func(b *testing.B) Streaming
	}{
		{"f64", func(b *testing.B) Streaming { return train(b, Float64) }},
		{"f32", func(b *testing.B) Streaming { return train(b, Float32) }},
		{"q16", func(b *testing.B) Streaming {
			q, err := train(b, Float64).QuantizeQ16()
			if err != nil {
				b.Fatalf("quantize: %v", err)
			}
			return q
		}},
	}
	for _, bc := range backends {
		b.Run(bc.name, func(b *testing.B) {
			s := bc.make(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Process(ds.TestX[i%len(ds.TestX)])
			}
			b.StopTimer()
			b.ReportMetric(float64(s.MemoryBytes()), "state-bytes")
		})
		// The batch axis: the same replay driven through ProcessBatch in
		// fixed-size chunks. ns/op stays per sample, so the batchN rows
		// compare directly against the per-sample row above.
		for _, n := range []int{8, 64} {
			n := n
			b.Run(fmt.Sprintf("%s/batch%d", bc.name, n), func(b *testing.B) {
				s := bc.make(b).(BatchStreaming)
				chunks := make([][][]float64, 0, len(ds.TestX)/n)
				for lo := 0; lo+n <= len(ds.TestX); lo += n {
					chunks = append(chunks, ds.TestX[lo:lo+n])
				}
				dst := make([]Result, 0, n)
				dst = s.ProcessBatch(dst, chunks[0]) // prime lazy batch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i, j := 0, 0; i < b.N; i, j = i+n, j+1 {
					dst = s.ProcessBatch(dst[:0], chunks[j%len(chunks)])
				}
				b.StopTimer()
				b.ReportMetric(float64(s.MemoryBytes()), "state-bytes")
			})
		}
	}
}

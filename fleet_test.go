package edgedrift_test

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

type fleetFixture struct {
	trainX [][]float64
	trainY []int
	stream [][]float64
}

func newFleetFixture(t testing.TB) *fleetFixture {
	t.Helper()
	oldConcept := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newConcept := synth.ShiftedGaussian(oldConcept, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldConcept, 300, r)
	st, err := synth.Generate(oldConcept, newConcept, 3000,
		synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		t.Fatal(err)
	}
	return &fleetFixture{trainX: trainX, trainY: trainY, stream: st.X}
}

func (fx *fleetFixture) monitor(t testing.TB, seed uint64) *edgedrift.Monitor {
	t.Helper()
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(fx.trainX, fx.trainY); err != nil {
		t.Fatal(err)
	}
	return mon
}

// TestFleetMatchesMonitor locks the single-stream-special-case claim:
// a stream driven through the fleet in odd-sized batches produces
// bit-identical results to the same monitor driven directly.
func TestFleetMatchesMonitor(t *testing.T) {
	fx := newFleetFixture(t)
	direct := fx.monitor(t, 1)
	var want []edgedrift.Result
	for _, x := range fx.stream {
		want = append(want, direct.Process(x))
	}

	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	var got []edgedrift.Result
	for lo := 0; lo < len(fx.stream); lo += 37 {
		hi := lo + 37
		if hi > len(fx.stream) {
			hi = len(fx.stream)
		}
		rs, err := f.ProcessBatch("s", fx.stream[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fleet results differ from the monitor driven directly")
	}
	if err := f.Do("s", func(m *edgedrift.Monitor) error {
		if !reflect.DeepEqual(m.DriftEvents(), direct.DriftEvents()) {
			return errors.New("drift events differ")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetConcurrentStreamsDeterministic drives each stream from its
// own goroutine (the supported concurrency pattern) and asserts every
// stream's results match its own single-threaded reference.
func TestFleetConcurrentStreamsDeterministic(t *testing.T) {
	fx := newFleetFixture(t)
	const streams = 4
	f := edgedrift.NewFleet(edgedrift.FleetConfig{Shards: 2})
	want := make([][]edgedrift.Result, streams)
	for i := 0; i < streams; i++ {
		ref := fx.monitor(t, uint64(i+1))
		for _, x := range fx.stream {
			want[i] = append(want[i], ref.Process(x))
		}
		if err := f.Add(fmt.Sprintf("s%d", i), fx.monitor(t, uint64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	got := make([][]edgedrift.Result, streams)
	var wg sync.WaitGroup
	errc := make(chan error, streams)
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs, err := f.ProcessBatch(fmt.Sprintf("s%d", i), fx.stream)
			if err != nil {
				errc <- err
				return
			}
			got[i] = rs
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for i := 0; i < streams; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("stream %d: concurrent results differ from reference", i)
		}
	}
}

// TestFleetSaveLoad round-trips a whole fleet mid-stream and checks the
// loaded fleet continues bit-identically; then verifies that corruption
// anywhere in the artifact is caught at load.
func TestFleetSaveLoad(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	for i := 0; i < 3; i++ {
		if err := f.Add(fmt.Sprintf("m%d", i), fx.monitor(t, uint64(10+i))); err != nil {
			t.Fatal(err)
		}
	}
	// The tail crosses the true drift (sample 1000) and the full NRecon
	// reconstruction, so the round trip must preserve everything that
	// decides post-reconstruction behaviour — including the calibrated
	// θ_error pin, which the v2 detector format lost.
	head, tail := fx.stream[:500], fx.stream[500:2500]
	for _, id := range f.IDs() {
		if _, err := f.ProcessBatch(id, head); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatal(err)
	}

	g, err := edgedrift.LoadFleet(bytes.NewReader(buf.Bytes()), edgedrift.FleetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.IDs(), f.IDs()) {
		t.Fatalf("IDs after load: %v", g.IDs())
	}
	for _, id := range f.IDs() {
		wantRS, err := f.ProcessBatch(id, tail)
		if err != nil {
			t.Fatal(err)
		}
		gotRS, err := g.ProcessBatch(id, tail)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotRS, wantRS) {
			t.Fatalf("%s: loaded fleet diverges from original", id)
		}
	}

	art := buf.Bytes()
	for _, pos := range []int{0, 5, len(art) / 4, len(art) / 2, 3 * len(art) / 4, len(art) - 1} {
		bad := append([]byte(nil), art...)
		bad[pos] ^= 0x20
		if _, err := edgedrift.LoadFleet(bytes.NewReader(bad), edgedrift.FleetConfig{}); !errors.Is(err, edgedrift.ErrBadFormat) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadFormat", pos, err)
		}
	}
	if _, err := edgedrift.LoadFleet(bytes.NewReader(art[:len(art)-3]), edgedrift.FleetConfig{}); !errors.Is(err, edgedrift.ErrBadFormat) {
		t.Fatal("truncated artifact loaded without error")
	}
}

// TestFleetSteadyStateAllocs locks the fleet's per-sample allocation
// behaviour: processing an in-distribution batch through a registered
// monitor with a reused result buffer allocates nothing.
func TestFleetSteadyStateAllocs(t *testing.T) {
	fx := newFleetFixture(t)
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	if err := f.Add("s", fx.monitor(t, 1)); err != nil {
		t.Fatal(err)
	}
	batch := fx.stream[:100] // pre-drift, in-distribution
	dst := make([]edgedrift.Result, 0, len(batch))
	warm := func() {
		var err error
		dst, err = f.ProcessBatchInto(dst[:0], "s", batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	warm()
	if n := testing.AllocsPerRun(100, warm); n != 0 {
		t.Fatalf("fleet steady-state allocates %.1f times per %d-sample batch, want 0", n, len(batch))
	}
}

// TestFleetCooperativeWarmRecovery drives the public cooperative
// surface end to end with real monitors: same-seed members fingerprint
// identically, peers that adapted to the new concept donate state when
// the laggard detects its drift, and the health roll-up records the
// warm path.
func TestFleetCooperativeWarmRecovery(t *testing.T) {
	fx := newFleetFixture(t)
	fleet := edgedrift.NewFleet(edgedrift.FleetConfig{WarmRecovery: true})
	for _, id := range []string{"t", "p0", "p1"} {
		if err := fleet.AddCohort(id, fx.monitor(t, 1), "cohort-a"); err != nil {
			t.Fatal(err)
		}
	}
	fp0, err := fleet.MemberFingerprint("t")
	if err != nil {
		t.Fatal(err)
	}
	fp1, err := fleet.MemberFingerprint("p0")
	if err != nil || fp0 != fp1 {
		t.Fatalf("same-seed members fingerprint differently: %x vs %x (%v)", fp0, fp1, err)
	}

	// Peers see the whole stream (drift at 1000, NRecon 300) and settle
	// into the new concept; the target lags behind, still pre-drift.
	for _, id := range []string{"p0", "p1"} {
		if _, err := fleet.ProcessBatch(id, fx.stream); err != nil {
			t.Fatal(err)
		}
	}

	// Now the target catches up and hits the drift; WarmRecovery should
	// seed its rebuild from the adapted peers.
	rs, err := fleet.ProcessBatch("t", fx.stream)
	if err != nil {
		t.Fatal(err)
	}
	drifted := false
	for _, r := range rs {
		drifted = drifted || r.DriftDetected
	}
	if !drifted {
		t.Fatal("target never detected the drift")
	}
	h := fleet.Health()
	if h.WarmRecoveries == 0 {
		t.Fatalf("no warm recovery recorded: %+v", h)
	}
	if h.Merges == 0 {
		t.Fatalf("no merge recorded: %+v", h)
	}
	if h.ColdFallbacks != 0 {
		t.Fatalf("unexpected cold fallback with two adapted peers: %+v", h)
	}

	// The manual exchange surface round-trips state between members.
	state, fprint, err := fleet.ExportMergeState("p0")
	if err != nil {
		t.Fatal(err)
	}
	if fprint != fp0 {
		t.Fatalf("export fingerprint %x != member fingerprint %x", fprint, fp0)
	}
	if err := fleet.MergeSeedMember("p1", [][]byte{state}); err != nil {
		t.Fatal(err)
	}

	// Cohort membership is inspectable.
	if got, err := fleet.Cohort("t"); err != nil || got != "cohort-a" {
		t.Fatalf("Cohort(t) = %q, %v", got, err)
	}
	if n := len(fleet.CohortMembers("cohort-a")); n != 3 {
		t.Fatalf("cohort members = %d", n)
	}
}

GO ?= go

.PHONY: build test vet race bench bench-kernels check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The packages with concurrency: parallel multi-instance scoring (model)
# and the experiment worker pool (eval). core exercises both transitively.
race:
	$(GO) test -race ./internal/model/... ./internal/eval/... ./internal/core/...

# Kernel and hot-path micro-benchmarks at the detector's real shapes.
bench-kernels:
	$(GO) test -bench=. -benchmem ./internal/mat/ ./internal/model/ ./internal/oselm/

# Paper-table macro benchmarks (regenerates every artifact end to end).
bench:
	$(GO) test -bench=. -benchmem .

# The full pre-merge gate: tier-1 plus static analysis and the race
# detector over the concurrent packages.
check: build vet test race

GO ?= go

.PHONY: build test vet staticcheck race bench bench-kernels bench-fleet fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Deeper static analysis. Gated on the binary being installed so the
# gate still runs on boxes without it (CI installs it explicitly):
# `go install honnef.co/go/tools/cmd/staticcheck@latest`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The packages with concurrency: parallel multi-instance scoring (model),
# the experiment worker pool (eval), and the sharded multi-stream fleet.
# core exercises model+eval transitively; the root package holds the
# concurrent Fleet integration tests.
race:
	$(GO) test -race ./internal/model/... ./internal/eval/... ./internal/core/... ./internal/fleet/... .

# Kernel and hot-path micro-benchmarks at the detector's real shapes.
bench-kernels:
	$(GO) test -bench=. -benchmem ./internal/mat/ ./internal/model/ ./internal/oselm/

# Paper-table macro benchmarks (regenerates every artifact end to end).
bench:
	$(GO) test -bench=. -benchmem .

# Multi-stream fleet throughput: NSL-KDD replayed as K interleaved
# streams, exercising the parallel path and a non-default shard count.
bench-fleet:
	$(GO) run ./cmd/driftbench fleet -streams 64 -shards 16 -parallel 0
	$(GO) run ./cmd/driftbench fleet -streams 8 -shards 4 -parallel 4

# Short fuzz passes over every deserialiser: corrupt or truncated
# artifacts must fail with ErrBadFormat, never panic. `go test -fuzz`
# takes one target per invocation, hence three runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=10s ./internal/oselm/
	$(GO) test -fuzz=FuzzLoadState -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzLoadMonitor -fuzztime=10s .

# The full pre-merge gate: tier-1 plus static analysis, the race
# detector over the concurrent packages, and a fuzz smoke over the
# artifact loaders.
check: build vet staticcheck test race fuzz-smoke

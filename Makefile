GO ?= go

.PHONY: build test vet race bench bench-kernels fuzz-smoke check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The packages with concurrency: parallel multi-instance scoring (model)
# and the experiment worker pool (eval). core exercises both transitively.
race:
	$(GO) test -race ./internal/model/... ./internal/eval/... ./internal/core/...

# Kernel and hot-path micro-benchmarks at the detector's real shapes.
bench-kernels:
	$(GO) test -bench=. -benchmem ./internal/mat/ ./internal/model/ ./internal/oselm/

# Paper-table macro benchmarks (regenerates every artifact end to end).
bench:
	$(GO) test -bench=. -benchmem .

# Short fuzz passes over every deserialiser: corrupt or truncated
# artifacts must fail with ErrBadFormat, never panic. `go test -fuzz`
# takes one target per invocation, hence three runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=10s ./internal/oselm/
	$(GO) test -fuzz=FuzzLoadState -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzLoadMonitor -fuzztime=10s .

# The full pre-merge gate: tier-1 plus static analysis, the race
# detector over the concurrent packages, and a fuzz smoke over the
# artifact loaders.
check: build vet test race fuzz-smoke

GO ?= go

.PHONY: build cross test vet staticcheck race bench bench-kernels bench-fleet bench-precision bench-compare bench-loadgen bench-coop bench-scenarios bench-pressure fuzz-smoke check

build:
	$(GO) build ./...

# Cross-compile smoke for the 32-bit Arm edge targets the paper deploys
# to (Pi Pico toolchains, armv7 Linux). Catches 64-bit-only assumptions
# — int-sized constants, alignment — that amd64 CI would never see.
cross:
	GOOS=linux GOARCH=arm $(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Deeper static analysis. Gated on the binary being installed so the
# gate still runs on boxes without it (CI installs it explicitly):
# `go install honnef.co/go/tools/cmd/staticcheck@latest`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The packages with concurrency: parallel multi-instance scoring (model),
# the experiment worker pool (eval), and the sharded multi-stream fleet.
# core exercises model+eval transitively; the root package holds the
# concurrent Fleet integration tests. wire/shard/router are the
# distributed serve tier — the router test is the end-to-end shard
# migration integration test, so it runs under the detector too.
# pressure holds the governor that ticks inside the shard's loop.
race:
	$(GO) test -race ./internal/model/... ./internal/eval/... ./internal/core/... ./internal/fleet/... ./internal/wire/... ./internal/shard/... ./internal/router/... ./internal/pressure/... .

# Kernel and hot-path micro-benchmarks at the detector's real shapes.
bench-kernels:
	$(GO) test -bench=. -benchmem ./internal/mat/ ./internal/model/ ./internal/oselm/

# Paper-table macro benchmarks (regenerates every artifact end to end).
bench:
	$(GO) test -bench=. -benchmem .

# Multi-stream fleet throughput: NSL-KDD replayed as K interleaved
# streams, exercising the parallel path and a non-default shard count.
bench-fleet:
	$(GO) run ./cmd/driftbench fleet -streams 64 -shards 16 -parallel 0
	$(GO) run ./cmd/driftbench fleet -streams 8 -shards 4 -parallel 4

# Numeric-backend comparison: f64/f32/q16 scoring throughput and
# retained memory over the same replay, per-sample and through the
# batched GEMM path (batch 1/8/64), written as the BENCH_6 artifact.
# `go test -bench=ScorePrecision .` is the benchstat-friendly twin.
bench-precision:
	$(GO) run ./cmd/driftbench precision -json BENCH_6.json

# Before/after comparison of the scoring hot path for perf PRs:
# benchmarks the working tree against BENCH_BASE (default HEAD) with
# -count=$(BENCH_COUNT) repetitions and diffs via benchstat. Warn-only
# by design — a missing benchstat binary, an unbenchmarkable base, or a
# regression all print rather than fail, because micro-benchmark noise
# on shared CI runners must never block a merge; read the report.
# Outputs land in $(BENCH_DIR) (bench-old.txt, bench-new.txt,
# benchstat.txt) for artifact upload.
BENCH_BASE ?= HEAD
BENCH_COUNT ?= 10
BENCH_PATTERN ?= 'BenchmarkScoreBatch|BenchmarkScorePrecision'
BENCH_DIR ?= bench-out
bench-compare:
	@mkdir -p $(BENCH_DIR)
	@$(GO) test -run '^$$' -bench $(BENCH_PATTERN) -count=$(BENCH_COUNT) \
		./internal/oselm/ . > $(BENCH_DIR)/bench-new.txt || \
		{ cat $(BENCH_DIR)/bench-new.txt; echo "bench-compare: head bench failed (warn-only)"; }
	@base=$$(mktemp -d) && \
	if git worktree add -q $$base/tree $(BENCH_BASE) 2>/dev/null; then \
		( cd $$base/tree && $(GO) test -run '^$$' -bench $(BENCH_PATTERN) -count=$(BENCH_COUNT) \
			./internal/oselm/ . > $(CURDIR)/$(BENCH_DIR)/bench-old.txt ) || \
			echo "bench-compare: base bench failed (warn-only; base may predate these benches)"; \
		git worktree remove --force $$base/tree; \
	else \
		echo "bench-compare: cannot materialise base $(BENCH_BASE) (warn-only)"; \
	fi; \
	rm -rf $$base
	@if command -v benchstat >/dev/null 2>&1 && [ -s $(BENCH_DIR)/bench-old.txt ]; then \
		benchstat $(BENCH_DIR)/bench-old.txt $(BENCH_DIR)/bench-new.txt | tee $(BENCH_DIR)/benchstat.txt; \
	else \
		echo "benchstat unavailable or no base run; raw results in $(BENCH_DIR)/ (go install golang.org/x/perf/cmd/benchstat@latest)" | tee $(BENCH_DIR)/benchstat.txt; \
	fi

# Distributed serve tier scaling curve: spawn 1/2/4 shard processes
# behind the consistent-hash router, drive pipelined synthetic streams
# through them (with one live migration per multi-shard point), and
# write aggregate samples/s + p99 ingest latency as the BENCH_7
# artifact. Sized down from the defaults to stay CI-friendly.
bench-loadgen:
	$(GO) build -o bin/driftbench ./cmd/driftbench
	./bin/driftbench loadgen -shard-range 1,2,4 -streams 16 -samples 20480 -json BENCH_7.json

# Cooperative vs per-stream drift recovery on the cooling-fan
# scenarios: cold rebuild against warm-seeding from the closed-form
# merge of adapted cohort peers, written as the BENCH_8 artifact. Exits
# non-zero if warm recovery converged slower than cold (both-zero
# passes: nothing left to beat when cold is already instantaneous).
bench-coop:
	$(GO) run ./cmd/driftbench coop -json BENCH_8.json

# Label-delay scenario matrix: {delay × budget × drift type × detector
# mode} on the cooling-fan streams — unsupervised baseline, hybrid
# DDM fusion fed late labels, and the reoccurring-drift model pool —
# written as the BENCH_9 artifact. Exits non-zero unless the pooled
# restore beats the cold rebuild on reoccurring drift and stays a
# bystander on sudden drift.
bench-scenarios:
	$(GO) run ./cmd/driftbench scenarios -json BENCH_9.json

# Adaptive-capacity forced-degradation matrix: each Table 2/3 stream
# replayed at every degradation level the governor can force (f64
# baseline, demoted-f32, demoted-q16), reporting throughput and
# detection-quality deltas as the BENCH_10 artifact. Exits non-zero if
# the golden gate fails — a demote→promote excursion must leave the
# full-precision path bit-exactly untouched.
bench-pressure:
	$(GO) run ./cmd/driftbench pressure -json BENCH_10.json

# Short fuzz passes over every deserialiser: corrupt or truncated
# artifacts must fail with ErrBadFormat, never panic. `go test -fuzz`
# takes one target per invocation, hence one run per format.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=10s ./internal/oselm/
	$(GO) test -fuzz=FuzzLoadState -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzLoadPool -fuzztime=10s ./internal/pool/
	$(GO) test -fuzz=FuzzLoadMonitor -fuzztime=10s .
	$(GO) test -fuzz=FuzzLoadFleet -fuzztime=10s .

# The full pre-merge gate: tier-1 plus the 32-bit Arm cross-compile,
# static analysis, the race detector over the concurrent packages, and a
# fuzz smoke over the artifact loaders.
check: build cross vet staticcheck test race fuzz-smoke

GO ?= go

.PHONY: build cross test vet staticcheck race bench bench-kernels bench-fleet bench-precision fuzz-smoke check

build:
	$(GO) build ./...

# Cross-compile smoke for the 32-bit Arm edge targets the paper deploys
# to (Pi Pico toolchains, armv7 Linux). Catches 64-bit-only assumptions
# — int-sized constants, alignment — that amd64 CI would never see.
cross:
	GOOS=linux GOARCH=arm $(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Deeper static analysis. Gated on the binary being installed so the
# gate still runs on boxes without it (CI installs it explicitly):
# `go install honnef.co/go/tools/cmd/staticcheck@latest`.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# The packages with concurrency: parallel multi-instance scoring (model),
# the experiment worker pool (eval), and the sharded multi-stream fleet.
# core exercises model+eval transitively; the root package holds the
# concurrent Fleet integration tests.
race:
	$(GO) test -race ./internal/model/... ./internal/eval/... ./internal/core/... ./internal/fleet/... .

# Kernel and hot-path micro-benchmarks at the detector's real shapes.
bench-kernels:
	$(GO) test -bench=. -benchmem ./internal/mat/ ./internal/model/ ./internal/oselm/

# Paper-table macro benchmarks (regenerates every artifact end to end).
bench:
	$(GO) test -bench=. -benchmem .

# Multi-stream fleet throughput: NSL-KDD replayed as K interleaved
# streams, exercising the parallel path and a non-default shard count.
bench-fleet:
	$(GO) run ./cmd/driftbench fleet -streams 64 -shards 16 -parallel 0
	$(GO) run ./cmd/driftbench fleet -streams 8 -shards 4 -parallel 4

# Numeric-backend comparison: f64/f32/q16 scoring throughput and
# retained memory over the same replay, written as the BENCH_5 artifact.
# `go test -bench=ScorePrecision .` is the benchstat-friendly twin.
bench-precision:
	$(GO) run ./cmd/driftbench precision -json BENCH_5.json

# Short fuzz passes over every deserialiser: corrupt or truncated
# artifacts must fail with ErrBadFormat, never panic. `go test -fuzz`
# takes one target per invocation, hence three runs.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoad -fuzztime=10s ./internal/oselm/
	$(GO) test -fuzz=FuzzLoadState -fuzztime=10s ./internal/core/
	$(GO) test -fuzz=FuzzLoadMonitor -fuzztime=10s .

# The full pre-merge gate: tier-1 plus the 32-bit Arm cross-compile,
# static analysis, the race detector over the concurrent packages, and a
# fuzz smoke over the artifact loaders.
check: build cross vet staticcheck test race fuzz-smoke

package edgedrift

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgedrift/internal/core"
	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// ErrBadFormat reports a stream that is not a serialised monitor, or a
// checksummed (v2) artifact that is truncated or corrupt — including a
// single flipped byte anywhere in the stream. Classify load failures
// with errors.Is(err, edgedrift.ErrBadFormat).
var ErrBadFormat = errors.New("edgedrift: not a serialised monitor (or corrupt artifact)")

// wrapLoadErr lifts the internal packages' format errors into the public
// ErrBadFormat while preserving the full cause chain.
func wrapLoadErr(stage string, err error) error {
	if errors.Is(err, model.ErrBadFormat) || errors.Is(err, core.ErrBadFormat) || errors.Is(err, oselm.ErrBadFormat) {
		return fmt.Errorf("edgedrift: load %s: %w: %w", stage, ErrBadFormat, err)
	}
	return fmt.Errorf("edgedrift: load %s: %w", stage, err)
}

// Precision selects the float width of saved monitors; use Float32 for
// microcontroller deployment artifacts.
type Precision = oselm.Precision

// Precision values. Float64 and Float32 are wire and compute
// precisions; Fixed16 is the Q16.16 backend of Monitor.QuantizeQ16
// (compute-only, never a wire format).
const (
	Float64 = oselm.Float64
	Float32 = oselm.Float32
	Fixed16 = oselm.Fixed16
)

// ParsePrecision maps the spellings "f64"/"float64", "f32"/"float32"
// and "q16"/"fixed16" to a Precision, with an error naming the valid
// set otherwise.
func ParsePrecision(s string) (Precision, error) { return oselm.ParsePrecision(s) }

// Save serialises the fitted monitor — discriminative model and detector
// state — to w. This is the host-side half of the paper's workflow:
// train and calibrate on a capable machine, ship the artifact to the
// edge device, and continue purely sequential operation there.
func (m *Monitor) Save(w io.Writer, prec Precision) error {
	if !m.fit {
		return errors.New("edgedrift: Save before Fit")
	}
	if _, err := m.model.Save(w, prec); err != nil {
		return fmt.Errorf("edgedrift: save model: %w", err)
	}
	if err := m.det.SaveState(w); err != nil {
		return fmt.Errorf("edgedrift: save detector: %w", err)
	}
	return nil
}

// LoadMonitor deserialises a monitor written by Save. It is immediately
// ready to Process.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	mm, err := model.Load(r)
	if err != nil {
		return nil, wrapLoadErr("model", err)
	}
	det, err := core.LoadState(r, mm)
	if err != nil {
		return nil, wrapLoadErr("detector", err)
	}
	cfg := mm.Config()
	return &Monitor{
		opts: Options{
			Classes:    cfg.Classes,
			Inputs:     cfg.Inputs,
			Hidden:     cfg.Hidden,
			Window:     det.Config().Window,
			Forgetting: cfg.Forgetting,
			Ridge:      cfg.Ridge,
			Precision:  cfg.Precision,
		},
		model: mm,
		det:   det,
		rng:   rng.New(0),
		fit:   true,
	}, nil
}

// SaveFile atomically writes the monitor artifact to path: the bytes go
// to a temporary file in the same directory, are flushed to stable
// storage, and only then renamed over path. A crash or power loss midway
// leaves either the old artifact or the new one — never a torn file that
// would fail its checksum on the next boot.
func (m *Monitor) SaveFile(path string, prec Precision) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("edgedrift: save %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := m.Save(tmp, prec); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("edgedrift: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("edgedrift: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("edgedrift: save %s: %w", path, err)
	}
	return nil
}

// LoadMonitorFile deserialises a monitor artifact written by SaveFile
// (or Save). Corruption — truncation, bit rot, a torn write — fails with
// an error matching ErrBadFormat.
func LoadMonitorFile(path string) (*Monitor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("edgedrift: load %s: %w", path, err)
	}
	defer f.Close()
	m, err := LoadMonitor(f)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return m, nil
}

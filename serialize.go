package edgedrift

import (
	"errors"
	"fmt"
	"io"

	"edgedrift/internal/core"
	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// Precision selects the float width of saved monitors; use Float32 for
// microcontroller deployment artifacts.
type Precision = oselm.Precision

// Precision values.
const (
	Float64 = oselm.Float64
	Float32 = oselm.Float32
)

// Save serialises the fitted monitor — discriminative model and detector
// state — to w. This is the host-side half of the paper's workflow:
// train and calibrate on a capable machine, ship the artifact to the
// edge device, and continue purely sequential operation there.
func (m *Monitor) Save(w io.Writer, prec Precision) error {
	if !m.fit {
		return errors.New("edgedrift: Save before Fit")
	}
	if _, err := m.model.Save(w, prec); err != nil {
		return fmt.Errorf("edgedrift: save model: %w", err)
	}
	if err := m.det.SaveState(w); err != nil {
		return fmt.Errorf("edgedrift: save detector: %w", err)
	}
	return nil
}

// LoadMonitor deserialises a monitor written by Save. It is immediately
// ready to Process.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	mm, err := model.Load(r)
	if err != nil {
		return nil, fmt.Errorf("edgedrift: load model: %w", err)
	}
	det, err := core.LoadState(r, mm)
	if err != nil {
		return nil, fmt.Errorf("edgedrift: load detector: %w", err)
	}
	cfg := mm.Config()
	return &Monitor{
		opts: Options{
			Classes:    cfg.Classes,
			Inputs:     cfg.Inputs,
			Hidden:     cfg.Hidden,
			Window:     det.Config().Window,
			Forgetting: cfg.Forgetting,
			Ridge:      cfg.Ridge,
		},
		model: mm,
		det:   det,
		rng:   rng.New(0),
		fit:   true,
	}, nil
}

package edgedrift

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"edgedrift/internal/metrics"
)

// WriteMetrics renders the fleet's metrics and health roll-up in the
// Prometheus text exposition format (0.0.4): whole-fleet totals, the
// health-snapshot counters and gauges, and a per-stream breakdown
// labelled by stream ID. Instrumented fleets (FleetConfig.Instrument)
// additionally expose per-stream phase counters and the sampled
// process-latency histogram in seconds.
//
// Exposition runs on the scrape path: each member is visited briefly
// under its own lock, never stalling the whole fleet, and the output is
// deterministic (streams sorted by ID) so scrapes diff cleanly.
func (f *Fleet) WriteMetrics(w io.Writer) error {
	m := f.Metrics()
	h := f.Health()
	tw := metrics.NewTextWriter(w)

	tw.Gauge("edgedrift_streams", "Registered member streams.", nil, float64(m.Streams))
	tw.Counter("edgedrift_samples_total", "Samples processed across all streams.", nil, m.Samples)
	tw.Counter("edgedrift_drifts_total", "Drift detections across all streams.", nil, m.Drifts)
	tw.Counter("edgedrift_events_dropped_total", "Drift events dropped on a full subscriber buffer.", nil, m.EventsDropped)
	tw.Gauge("edgedrift_memory_bytes", "Retained state of the whole fleet (registry overhead included).", nil, float64(m.MemoryBytes))

	// Adaptive capacity: the precision-lifecycle roll-up.
	tw.Gauge("edgedrift_degraded_streams", "Members currently demoted to a reduced precision.", nil, float64(m.Degraded))
	tw.Counter("edgedrift_demotions_total", "Member demotions to a reduced precision.", nil, m.Demotions)
	tw.Counter("edgedrift_promotions_total", "Member promotions back to the retained full-precision origin.", nil, m.Promotions)
	tw.Counter("edgedrift_transition_failures_total", "Refused or failed precision transitions.", nil, m.TransitionFailures)

	// Health roll-up: the same numbers Snapshot.String() logs, scrapable.
	tw.Counter("edgedrift_rejected_total", "Samples refused by the ingestion guard.", nil, h.Rejected)
	tw.Counter("edgedrift_clamped_total", "Samples repaired by the ingestion guard.", nil, h.Clamped)
	tw.Counter("edgedrift_model_divergences_total", "Non-finite scores on finite input (model divergence rebuilds).", nil, h.ModelDivergences)
	tw.Counter("edgedrift_watchdog_resets_total", "RLS watchdog P-matrix re-initialisations.", nil, h.WatchdogResets)
	tw.Counter("edgedrift_merges_total", "Closed-form state merges applied to member models.", nil, h.Merges)
	tw.Counter("edgedrift_warm_recoveries_total", "Drift recoveries seeded from cohort peer state.", nil, h.WarmRecoveries)
	tw.Counter("edgedrift_cold_fallbacks_total", "Drift recoveries that fell back to a cold rebuild (no eligible cohort peer).", nil, h.ColdFallbacks)
	tw.Counter("edgedrift_labels_observed_total", "Late labels fed to hybrid supervised arms.", nil, h.LabelsObserved)
	tw.Counter("edgedrift_supervised_fires_total", "Drift alarms raised by supervised error-rate arms.", nil, h.SupervisedFires)
	tw.Counter("edgedrift_supervised_triggers_total", "Reconstructions started by supervised alarms (FuseEither).", nil, h.SupervisedTriggers)
	tw.Counter("edgedrift_hybrid_confirms_total", "Drifts confirmed by both hybrid arms within the confirmation window.", nil, h.HybridConfirms)
	tw.Counter("edgedrift_pool_hits_total", "Post-drift windows matched by a pooled model checkpoint.", nil, h.PoolHits)
	tw.Counter("edgedrift_pool_misses_total", "Post-drift windows no pooled checkpoint fit.", nil, h.PoolMisses)
	tw.Counter("edgedrift_pool_restores_total", "Pooled checkpoints restored in place of cold retraining.", nil, h.PoolRestores)
	tw.Counter("edgedrift_pool_evictions_total", "Pool checkpoints evicted (LRU capacity or decode failure).", nil, h.PoolEvictions)
	healthy := 0.0
	if h.Healthy() {
		healthy = 1
	}
	tw.Gauge("edgedrift_healthy", "1 when every member's model state is finite.", nil, healthy)
	tw.Gauge("edgedrift_ptrace_max", "Largest tr(P) across model instances.", nil, h.PTraceMax)
	tw.Gauge("edgedrift_score_mean", "Pooled mean of monitoring anomaly scores.", nil, h.ScoreMean)
	tw.Gauge("edgedrift_score_std", "Pooled standard deviation of monitoring anomaly scores.", nil, h.ScoreStd)

	ids := make([]string, 0, len(m.PerStream))
	for id := range m.PerStream {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		sm := m.PerStream[id]
		labels := []metrics.Label{{Name: "stream", Value: id}}
		tw.Counter("edgedrift_stream_samples_total", "Samples processed per stream.", labels, sm.Samples)
		tw.Counter("edgedrift_stream_drifts_total", "Drift detections per stream.", labels, sm.Drifts)
		if sm.Degraded {
			tw.Gauge("edgedrift_stream_degraded", "1 while the stream is demoted; the precision label names its active backend.",
				[]metrics.Label{{Name: "stream", Value: id}, {Name: "precision", Value: sm.ActivePrecision}}, 1)
		}
		if sm.Stage == nil {
			continue
		}
		tw.Counter("edgedrift_stream_rejected_total", "Guard rejections observed per stream.", labels, sm.Stage.Rejected)
		tw.Counter("edgedrift_stream_phase_transitions_total", "Detector phase transitions per stream.", labels, sm.Stage.PhaseTransitions)
		for p, n := range sm.Stage.PhaseSamples {
			tw.Counter("edgedrift_stream_phase_samples_total", "Samples per detector phase per stream.",
				[]metrics.Label{{Name: "stream", Value: id}, {Name: "phase", Value: Phase(p).String()}}, n)
		}
		if sm.Stage.Latency.Count > 0 {
			tw.Histogram("edgedrift_process_latency_seconds", "Sampled per-sample process latency.", labels, sm.Stage.Latency, 1e-9)
		}
	}
	return tw.Err()
}

// expvarPublished guards against the panic expvar.Publish raises on a
// duplicate name, turning re-registration into an error.
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar registers the fleet's metrics roll-up under name in the
// process-wide expvar registry, so the standard /debug/vars endpoint
// (or any expvar consumer) sees a JSON rendering of Fleet.Metrics.
// Publishing the same name twice returns an error; expvar offers no
// unregistration, so the variable lives until process exit and keeps
// reading from this fleet.
func (f *Fleet) PublishExpvar(name string) error {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvarPublished[name] {
		return fmt.Errorf("edgedrift: expvar %q already published", name)
	}
	expvar.Publish(name, expvar.Func(func() any { return f.Metrics() }))
	expvarPublished[name] = true
	return nil
}

// StartHealthLogger renders a health snapshot through logf on a fixed
// cadence — the periodic structured health log for months-long
// unattended deployments. snap is polled at each tick (pass
// fleet.Health or monitor.Health); logf receives the single-line
// Snapshot.String() rendering. The returned stop function halts the
// logger and is safe to call more than once.
func StartHealthLogger(every time.Duration, snap func() HealthSnapshot, logf func(line string)) (stop func()) {
	if every <= 0 {
		panic("edgedrift: StartHealthLogger needs a positive interval")
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				logf(snap().String())
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

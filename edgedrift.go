// Package edgedrift is a lightweight, fully sequential concept-drift
// detection library for resource-limited edge devices, reproducing
// Yamada & Matsutani, "A Lightweight Concept Drift Detection Method for
// On-Device Learning on Resource-Limited Edge Devices" (IPPS 2023).
//
// The library couples a multi-instance OS-ELM autoencoder model (one
// instance per class, argmin-reconstruction-error prediction) with a
// centroid-tracking drift detector whose every step — prediction,
// centroid update, distance test, and drift-triggered model
// reconstruction — is O(1)-per-sample sequential computation over
// O(C·D + H²) state. Nothing buffers past samples, which is what lets
// the whole system run in the 264 kB of a Raspberry Pi Pico.
//
// Quickstart:
//
//	mon, _ := edgedrift.New(edgedrift.Options{
//		Classes: 2, Inputs: 38, Hidden: 22, Window: 100, Seed: 1,
//	})
//	_ = mon.Fit(trainX, trainY) // or FitUnsupervised(trainX)
//	for _, x := range stream {
//		r := mon.Process(x)
//		if r.DriftDetected {
//			log.Println("concept drift — model reconstruction started")
//		}
//	}
//
// The internal packages expose the substrates (OS-ELM, QuantTree, SPLL,
// DDM, ADWIN, k-means, device cost models, dataset surrogates) to the
// example programs and the benchmark harness in this repository; this
// package is the stable user-facing surface.
package edgedrift

import (
	"errors"
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/health"
	"edgedrift/internal/mat"
	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

// Result is the per-sample outcome of Monitor.Process.
type Result = core.Result

// Phase is the detector state (Monitoring, Checking, Reconstructing).
type Phase = core.Phase

// Detector phases, re-exported for switch statements on Result.Phase.
const (
	Monitoring     = core.Monitoring
	Checking       = core.Checking
	Reconstructing = core.Reconstructing
)

// OpCounter tallies modelled floating-point work; attach one with
// Monitor.SetOps and convert it to device time with the device profiles
// in internal/device (or your own cycle model).
type OpCounter = opcount.Counter

// GuardPolicy selects what Process does with a sample carrying a
// non-finite (NaN/±Inf) feature. The default, GuardReject, refuses the
// sample before it can poison model or centroid state; see the core
// package for the full semantics of each policy.
type GuardPolicy = core.GuardPolicy

// Guard policies, re-exported for Options.Guard.
const (
	GuardReject = core.GuardReject
	GuardClamp  = core.GuardClamp
	GuardPanic  = core.GuardPanic
)

// HealthSnapshot is the monitor's structured health view: ingestion-guard
// counters, RLS watchdog state across all model instances, and the
// monitoring-score distribution summary.
type HealthSnapshot = health.Snapshot

// Options configures a Monitor.
type Options struct {
	// Classes is the number of labels C; one autoencoder instance each.
	Classes int
	// Inputs is the feature dimension D.
	Inputs int
	// Hidden is the autoencoder hidden-layer width (the paper uses 22).
	Hidden int
	// Window is the detector's window size W (paper Table 2/3 values:
	// 10–1000 depending on the expected drift behaviour).
	Window int
	// Seed drives all random state (projections, calibration); same
	// seed, same behaviour.
	Seed uint64

	// Forgetting < 1 enables the ONLAD-style forgetting factor inside
	// each instance. 0 means 1 (plain OS-ELM).
	Forgetting float64
	// Ridge regularises the sequential least squares (0 → 1e-2).
	Ridge float64
	// ZDrift and ZError are the threshold calibration widths (0 → 1 for
	// drift, 2 for error — see Monitor.Fit).
	ZDrift, ZError float64
	// ErrorThreshold and DriftThreshold pin θ_error / θ_drift manually
	// when > 0, bypassing calibration.
	ErrorThreshold, DriftThreshold float64
	// NRecon, NSearch, NUpdate size the reconstruction (0 → detector
	// defaults).
	NRecon, NSearch, NUpdate int
	// TrainDuringMonitor keeps sequentially training the closest
	// instance on every monitored sample (the passive ONLAD behaviour).
	// Samples rejected by the ingestion guard are never trained on.
	TrainDuringMonitor bool

	// Guard is the non-finite-input policy; the zero value is
	// GuardReject, the production default.
	Guard GuardPolicy
	// ClampLimit is the magnitude ±Inf features are clamped to under
	// GuardClamp (0 → 1e12).
	ClampLimit float64

	// Precision selects the numeric backend the model's inference-side
	// state computes at: Float64 (the zero value, bit-identical to the
	// historical behaviour) or Float32 (half the inference footprint; RLS
	// training keeps its conditioning state at float64). Fixed16 is
	// inference-only and rejected here — fit a float monitor and derive
	// the integer port with QuantizeQ16.
	Precision Precision
}

// Monitor is the user-facing bundle of discriminative model + drift
// detector — the single-stream special case of the streaming pipeline.
// It is not safe for concurrent use: a Monitor is one state machine fed
// from one goroutine. To monitor many streams concurrently, register
// one Monitor per stream in a Fleet, which serialises access per member
// and is the concurrent entry point.
type Monitor struct {
	opts  Options
	model *model.Multi
	det   *core.Detector
	rng   *rng.Rand
	fit   bool

	// degraded is the reduced-precision twin installed by Demote and
	// dropped by Promote. While non-nil, model and det above are frozen
	// as the retained full-precision origin and every sample flows
	// through the twin; see transition.go for the lifecycle.
	degraded core.Streaming
}

// A fitted Monitor is itself a pipeline stage: the Fleet schedules it
// through the same contract every detector in this repository satisfies,
// and it exposes the batched-scoring capability so fleet batches run
// through the GEMM path.
var _ core.Streaming = (*Monitor)(nil)
var _ core.BatchStreaming = (*Monitor)(nil)

// New builds an untrained Monitor. Call Fit or FitUnsupervised before
// Process.
func New(opts Options) (*Monitor, error) {
	if opts.Ridge == 0 {
		opts.Ridge = 1e-2
	}
	r := rng.New(opts.Seed)
	m, err := model.New(model.Config{
		Classes:    opts.Classes,
		Inputs:     opts.Inputs,
		Hidden:     opts.Hidden,
		Forgetting: opts.Forgetting,
		Ridge:      opts.Ridge,
		Precision:  opts.Precision,
	}, r.Split())
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Window:            opts.Window,
		ZDrift:            opts.ZDrift,
		ZError:            opts.ZError,
		ErrorThreshold:    opts.ErrorThreshold,
		DriftThreshold:    opts.DriftThreshold,
		NRecon:            opts.NRecon,
		NSearch:           opts.NSearch,
		NUpdate:           opts.NUpdate,
		ResetModelOnDrift: true,
		Guard:             opts.Guard,
		ClampLimit:        opts.ClampLimit,
		Precision:         opts.Precision,
	}
	det, err := core.New(m, cfg)
	if err != nil {
		return nil, err
	}
	return &Monitor{opts: opts, model: m, det: det, rng: r}, nil
}

// Fit trains the discriminative model sequentially on the labelled
// initial data and calibrates both detector thresholds.
//
// θ_error is calibrated prequentially: each sample is scored before it is
// trained on, and the threshold is μ + ZError·σ of the second-half
// scores (ZError defaults to 2). Scoring after training would measure
// overfit reconstruction errors and open a check window on every
// deployment sample.
func (m *Monitor) Fit(xs [][]float64, labels []int) error {
	if len(xs) == 0 || len(xs) != len(labels) {
		return fmt.Errorf("edgedrift: Fit needs matched non-empty samples, got %d/%d", len(xs), len(labels))
	}
	// Validate before any training: by the time Calibrate would notice a
	// non-finite feature, the model would already be poisoned.
	for i, x := range xs {
		if !mat.AllFinite(x) {
			return fmt.Errorf("edgedrift: training sample %d has a non-finite feature", i)
		}
	}
	var tail stats.Running
	for i, x := range xs {
		_, score := m.model.Predict(x)
		if i >= len(xs)/2 {
			tail.Observe(score)
		}
		if labels[i] < 0 || labels[i] >= m.opts.Classes {
			return fmt.Errorf("edgedrift: label %d out of range [0,%d)", labels[i], m.opts.Classes)
		}
		m.model.Train(x, labels[i])
	}
	if m.opts.ErrorThreshold <= 0 {
		z := m.opts.ZError
		if z == 0 {
			z = 2
		}
		// Pin the prequential threshold in place. Rebuilding the detector
		// via core.New here (the old implementation) silently discarded
		// every guard and health counter accumulated before calibration.
		if theta := tail.Mean() + z*tail.Std(); theta > 0 {
			if err := m.det.SetErrorThreshold(theta); err != nil {
				return err
			}
		}
	}
	if err := m.det.Calibrate(xs, labels); err != nil {
		return err
	}
	m.fit = true
	return nil
}

// FitUnsupervised labels the initial data by k-means with C clusters
// (the paper's §3.2 assumption for unlabelled deployments) and then
// behaves like Fit. It returns the cluster labelling it used.
func (m *Monitor) FitUnsupervised(xs [][]float64) ([]int, error) {
	if len(xs) == 0 {
		return nil, errors.New("edgedrift: FitUnsupervised needs samples")
	}
	labels := core.LabelsByKMeans(xs, m.opts.Classes, m.rng.Split())
	if err := m.Fit(xs, labels); err != nil {
		return nil, err
	}
	return labels, nil
}

// Process consumes one sample: it predicts a label, advances the drift
// state machine, and (after a detection) drives the sequential model
// reconstruction. It panics if Fit has not run.
//
// Samples with a non-finite feature are handled by the configured
// GuardPolicy (Options.Guard) before they can touch model or centroid
// state; under the default GuardReject they return the last accepted
// Result with Rejected set and are never trained on.
func (m *Monitor) Process(x []float64) Result {
	if !m.fit {
		panic("edgedrift: Process before Fit")
	}
	if m.degraded != nil {
		return m.degraded.Process(x)
	}
	res := m.det.Process(x)
	// The finiteness re-check covers GuardClamp, where the detector
	// processed a repaired copy but x itself still carries the bad values.
	if m.opts.TrainDuringMonitor && !res.Rejected && res.Phase == Monitoring && mat.AllFinite(x) {
		m.model.Train(x, res.Label)
	}
	return res
}

// ProcessBatch consumes a batch of samples in order, appending one
// Result per sample to dst — results and state bit-identical to calling
// Process per sample (the BatchStreaming contract). The win is the
// memory-access pattern: the model scores each chunk through batched
// GEMM kernels that stream every weight matrix once per chunk instead
// of once per sample. With TrainDuringMonitor set, the model mutates
// between samples, so the monitor transparently falls back to the
// per-sample path.
func (m *Monitor) ProcessBatch(dst []Result, xs [][]float64) []Result {
	if !m.fit {
		panic("edgedrift: ProcessBatch before Fit")
	}
	if m.degraded != nil {
		if bs, ok := m.degraded.(core.BatchStreaming); ok {
			return bs.ProcessBatch(dst, xs)
		}
		for _, x := range xs {
			dst = append(dst, m.degraded.Process(x))
		}
		return dst
	}
	if m.opts.TrainDuringMonitor {
		for _, x := range xs {
			dst = append(dst, m.Process(x))
		}
		return dst
	}
	return m.det.ProcessBatch(dst, xs)
}

// Health assembles a structured health snapshot of the monitor: guard
// counters, RLS watchdog state, and score-distribution summary. Cheap
// enough to call every sample; intended for operational dashboards and
// periodic logging. While demoted it reports the active twin's health —
// the state actually processing samples.
func (m *Monitor) Health() HealthSnapshot {
	if m.degraded != nil {
		return m.degraded.Health()
	}
	return m.det.Health()
}

// Predict scores x without advancing the detector: it returns the
// predicted class and the anomaly (reconstruction) score.
func (m *Monitor) Predict(x []float64) (label int, score float64) {
	return m.model.Predict(x)
}

// DriftEvents returns the 0-based indices of processed samples on which
// drift was detected. While demoted at f32 it reports the twin's history
// (which continues the origin's); the q16 twin keeps its own flag-only
// view, so the origin's record is returned unchanged.
func (m *Monitor) DriftEvents() []int {
	if t, ok := m.degraded.(*Monitor); ok {
		return t.DriftEvents()
	}
	return m.det.DriftEvents()
}

// Reconstructions returns how many model rebuilds have completed.
func (m *Monitor) Reconstructions() int {
	if t, ok := m.degraded.(*Monitor); ok {
		return t.Reconstructions()
	}
	return m.det.Reconstructions()
}

// PhaseNow returns the current detector phase: the twin's while demoted
// at f32 (the active state machine), the origin's otherwise — a q16
// twin is detect-only, so under it the origin's frozen phase stands.
func (m *Monitor) PhaseNow() Phase {
	if t, ok := m.degraded.(*Monitor); ok {
		return t.PhaseNow()
	}
	return m.det.PhaseNow()
}

// Thresholds returns the active (θ_error, θ_drift) pair — the twin's
// while demoted at f32, since that state machine is the one testing
// samples against them.
func (m *Monitor) Thresholds() (errorThreshold, driftThreshold float64) {
	if t, ok := m.degraded.(*Monitor); ok {
		return t.Thresholds()
	}
	return m.det.ThetaError(), m.det.ThetaDrift()
}

// MemoryBytes audits the retained state of model + detector — the
// number that must fit the target device's RAM. While demoted it counts
// the retained origin AND the active twin: demotion halves the hot
// working set but exact promotability keeps the full-precision state
// resident.
func (m *Monitor) MemoryBytes() int {
	n := m.det.MemoryBytes()
	if m.degraded != nil {
		n += m.degraded.MemoryBytes()
	}
	return n
}

// SetOps attaches an operation counter to every compute kernel in the
// monitor (nil detaches).
func (m *Monitor) SetOps(c *OpCounter) { m.det.SetOps(c) }

// Precision returns the numeric backend the monitor's model computes
// at (Options.Precision).
func (m *Monitor) Precision() Precision { return m.model.Precision() }

// QuantizeQ16 derives the Q16.16 fixed-point port of the fitted
// monitor — the on-device half of a split deployment for FPU-less
// targets. The returned stage predicts labels and raises drift flags in
// pure integer arithmetic; it does not reconstruct (the host retrains
// and ships a fresh artifact). Values that clipped to the Q16.16 range
// during quantisation are surfaced through the stage's
// Health().QuantSaturations counter.
func (m *Monitor) QuantizeQ16() (Streaming, error) {
	fs, err := m.deriveQ16()
	if err != nil {
		return nil, err
	}
	return fs, nil
}

// MergeFingerprint returns the monitor's merge-compatibility
// fingerprint (see core.Merger). Two monitors can exchange merge state
// iff their fingerprints match: same shape, activation, precision, RLS
// constants, and seed topology (bit-identical random projections).
func (m *Monitor) MergeFingerprint() uint64 { return m.det.MergeFingerprint() }

// ExportMergeState serialises the monitor's trained model state into a
// blob a compatible peer's MergeSeed can consume — the unit of
// cooperative fleet learning, shippable across shards.
func (m *Monitor) ExportMergeState() ([]byte, error) {
	if !m.fit {
		return nil, errors.New("edgedrift: ExportMergeState before Fit")
	}
	return m.det.ExportMergeState()
}

// MergeSeed replaces the monitor's model state with the closed-form
// combination of the given peer state blobs (from ExportMergeState on
// merge-compatible monitors). Detector thresholds, centroids and phase
// are untouched; incompatible state is rejected with an error wrapping
// oselm.ErrMergeIncompatible and leaves the monitor unchanged.
func (m *Monitor) MergeSeed(states [][]byte) error {
	if !m.fit {
		return errors.New("edgedrift: MergeSeed before Fit")
	}
	return m.det.MergeSeed(states)
}

var _ core.Merger = (*Monitor)(nil)

// Detector exposes the underlying core detector for advanced use
// (stage-level op accounting, centroid inspection).
func (m *Monitor) Detector() *core.Detector { return m.det }

// Model exposes the underlying multi-instance model.
func (m *Monitor) Model() *model.Multi { return m.model }

// ScoreMetric re-exports for model configuration.
type ScoreMetric = oselm.ScoreMetric

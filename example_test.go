package edgedrift_test

import (
	"fmt"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

// Example shows the full monitor lifecycle: fit on an initial window,
// stream samples, and react to the drift detection.
func Example() {
	// Two-class concept that shifts suddenly at sample 1,000.
	oldConcept := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newConcept := synth.ShiftedGaussian(oldConcept, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldConcept, 300, r)
	stream, err := synth.Generate(oldConcept, newConcept, 3000,
		synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		panic(err)
	}

	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		panic(err)
	}

	for _, x := range stream.X {
		mon.Process(x)
	}
	events := mon.DriftEvents()
	fmt.Printf("drift events: %d\n", len(events))
	fmt.Printf("first detection after ground truth (sample 1000): %v\n", events[0] >= 1000)
	fmt.Printf("reconstructions completed: %d\n", mon.Reconstructions())
	// Output:
	// drift events: 1
	// first detection after ground truth (sample 1000): true
	// reconstructions completed: 1
}

// ExampleFleet monitors several independent streams from one process:
// one fitted Monitor per stream registered in a Fleet, drift events
// fanned in on a single channel.
func ExampleFleet() {
	oldConcept := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newConcept := synth.ShiftedGaussian(oldConcept, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldConcept, 300, r)
	stream, err := synth.Generate(oldConcept, newConcept, 3000,
		synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		panic(err)
	}

	fleet := edgedrift.NewFleet(edgedrift.FleetConfig{})
	events := fleet.Events()
	for _, id := range []string{"sensor-a", "sensor-b"} {
		mon, err := edgedrift.New(edgedrift.Options{
			Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		if err := mon.Fit(trainX, trainY); err != nil {
			panic(err)
		}
		if err := fleet.Add(id, mon); err != nil {
			panic(err)
		}
	}

	for _, id := range fleet.IDs() {
		if _, err := fleet.ProcessBatch(id, stream.X); err != nil {
			panic(err)
		}
	}
	ev1, ev2 := <-events, <-events
	fmt.Printf("streams monitored: %d\n", fleet.Len())
	fmt.Printf("drift on %s and %s, both after the true drift: %v\n",
		ev1.StreamID, ev2.StreamID, ev1.Index >= 1000 && ev2.Index >= 1000)
	h := fleet.Health()
	fmt.Printf("fleet healthy: %v, samples seen: %d\n", h.Healthy(), h.SamplesSeen)
	// Output:
	// streams monitored: 2
	// drift on sensor-a and sensor-b, both after the true drift: true
	// fleet healthy: true, samples seen: 6000
}

// ExampleMonitor_FitUnsupervised labels the initial window with k-means
// when no ground-truth labels exist (§3.2 of the paper).
func ExampleMonitor_FitUnsupervised() {
	concept := synth.NewGaussian([][]float64{{0, 0}, {6, 6}}, 0.3)
	trainX, _ := synth.TrainingSet(concept, 200, rng.New(3))

	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 2, Hidden: 6, Window: 30, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	labels, err := mon.FitUnsupervised(trainX)
	if err != nil {
		panic(err)
	}
	distinct := map[int]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	fmt.Printf("clustered %d samples into %d classes\n", len(labels), len(distinct))
	// Output:
	// clustered 200 samples into 2 classes
}

package edgedrift

import (
	"bytes"
	"testing"
)

func TestMonitorSaveLoadRoundTrip(t *testing.T) {
	mon, stream := newFit(t, defaultOpts(), 20)
	// Warm it up so detector state is non-trivial.
	for i := 0; i < 200; i++ {
		mon.Process(stream.X[i])
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := LoadMonitor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	te1, td1 := mon.Thresholds()
	te2, td2 := got.Thresholds()
	if te1 != te2 || td1 != td2 {
		t.Fatalf("thresholds (%v,%v) vs (%v,%v)", te1, td1, te2, td2)
	}
	// Both monitors behave identically from here on.
	for i := 200; i < 2500; i++ {
		a := mon.Process(stream.X[i])
		b := got.Process(stream.X[i])
		if a.Label != b.Label || a.DriftDetected != b.DriftDetected || a.Phase != b.Phase {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a, b)
		}
	}
	if len(got.DriftEvents()) == 0 {
		t.Fatal("loaded monitor never detected the stream's drift")
	}
}

func TestMonitorSaveFloat32Smaller(t *testing.T) {
	mon, _ := newFit(t, defaultOpts(), 21)
	var b64, b32 bytes.Buffer
	if err := mon.Save(&b64, Float64); err != nil {
		t.Fatal(err)
	}
	if err := mon.Save(&b32, Float32); err != nil {
		t.Fatal(err)
	}
	if b32.Len() >= b64.Len() {
		t.Fatalf("float32 artifact %d not smaller than %d", b32.Len(), b64.Len())
	}
}

func TestMonitorSaveBeforeFitFails(t *testing.T) {
	mon, err := New(defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Save(&bytes.Buffer{}, Float64); err == nil {
		t.Fatal("expected error before Fit")
	}
}

func TestLoadMonitorRejectsGarbage(t *testing.T) {
	if _, err := LoadMonitor(bytes.NewReader([]byte("nope nope nope nope"))); err == nil {
		t.Fatal("expected format error")
	}
}

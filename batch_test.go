package edgedrift_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"testing"

	"edgedrift"
)

// fingerprintBatched is fingerprint with the stream driven through
// ProcessBatch in fixed-size chunks instead of per-sample Process calls.
// The BatchStreaming contract says the two must hash identically.
func fingerprintBatched(mon *edgedrift.Monitor, xs [][]float64, bs int) string {
	h := fnv.New64a()
	var b [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	bit := func(v bool) {
		if v {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	dst := make([]edgedrift.Result, 0, bs)
	for lo := 0; lo < len(xs); lo += bs {
		hi := lo + bs
		if hi > len(xs) {
			hi = len(xs)
		}
		dst = mon.ProcessBatch(dst[:0], xs[lo:hi])
		for _, r := range dst {
			u64(uint64(r.Label))
			u64(math.Float64bits(r.Score))
			u64(math.Float64bits(r.Dist))
			u64(uint64(r.Phase))
			bit(r.DriftDetected)
			bit(r.Rejected)
		}
	}
	for _, e := range mon.DriftEvents() {
		u64(uint64(e))
	}
	u64(uint64(mon.Reconstructions()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestGoldenStreamBatched replays the golden NSL-KDD cases through
// ProcessBatch at several chunk sizes: the fingerprints must equal the
// per-sample golden constants bit for bit — across drift detections,
// full reconstructions, and (in the poisoned cases) guard rejections
// and clamps splitting the batch mid-chunk.
func TestGoldenStreamBatched(t *testing.T) {
	ds := goldenDataset()
	cases := []struct {
		name  string
		guard edgedrift.GuardPolicy
		xs    [][]float64
		want  string
	}{
		{"clean/reject", edgedrift.GuardReject, ds.TestX, goldenCleanFP},
		{"poisoned/reject", edgedrift.GuardReject, poison(ds.TestX), goldenPoisonedFP},
		{"poisoned/clamp", edgedrift.GuardClamp, poison(ds.TestX), goldenClampFP},
	}
	for _, tc := range cases {
		for _, bs := range []int{1, 37, 64, 256} {
			tc, bs := tc, bs
			t.Run(fmt.Sprintf("%s/bs=%d", tc.name, bs), func(t *testing.T) {
				t.Parallel()
				mon := goldenMonitor(t, tc.guard)
				if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
					t.Fatal(err)
				}
				if got := fingerprintBatched(mon, tc.xs, bs); got != tc.want {
					t.Errorf("batched fingerprint drifted: got %s, want %s", got, tc.want)
				}
			})
		}
	}
}

// TestProcessBatchMatchesProcessFloat32 pins the same equivalence on the
// float32 backend: the batched path must use the exact kernels the
// per-sample path uses, so the result streams are bit-identical (not
// merely within tolerance) regardless of SIMD availability.
func TestProcessBatchMatchesProcessFloat32(t *testing.T) {
	fx := newFleetFixture(t)
	for _, p := range []edgedrift.Precision{edgedrift.Float64, edgedrift.Float32} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			seq := precisionMonitor(t, fx, p)
			bat := precisionMonitor(t, fx, p)
			var want []edgedrift.Result
			for _, x := range fx.stream {
				want = append(want, seq.Process(x))
			}
			var got []edgedrift.Result
			for lo := 0; lo < len(fx.stream); lo += 129 {
				hi := lo + 129
				if hi > len(fx.stream) {
					hi = len(fx.stream)
				}
				got = bat.ProcessBatch(got, fx.stream[lo:hi])
			}
			if !reflect.DeepEqual(got, want) {
				for i := range want {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("sample %d diverged: %+v vs %+v", i, got[i], want[i])
					}
				}
			}
			if !reflect.DeepEqual(seq.DriftEvents(), bat.DriftEvents()) {
				t.Fatalf("drift events diverged: %v vs %v", bat.DriftEvents(), seq.DriftEvents())
			}
		})
	}
}

// TestMonitorProcessBatchZeroAllocs pins the end-to-end batch path —
// guard, detector, model, backend — at zero allocations per call once
// the lazy chunk buffers exist, for both float backends.
func TestMonitorProcessBatchZeroAllocs(t *testing.T) {
	fx := newFleetFixture(t)
	for _, p := range []edgedrift.Precision{edgedrift.Float64, edgedrift.Float32} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			mon := precisionMonitor(t, fx, p)
			xs := fx.stream[:96] // stationary prefix: no drift, no rebuild
			dst := make([]edgedrift.Result, 0, len(xs))
			dst = mon.ProcessBatch(dst, xs)
			allocs := testing.AllocsPerRun(100, func() {
				dst = mon.ProcessBatch(dst[:0], xs)
			})
			if allocs != 0 {
				t.Fatalf("ProcessBatch allocates %v per call, want 0", allocs)
			}
		})
	}
}

func TestProcessBatchPanicsBeforeFit(t *testing.T) {
	mon, err := edgedrift.New(edgedrift.Options{Classes: 2, Inputs: 3, Hidden: 4, Window: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mon.ProcessBatch(nil, [][]float64{{1, 2, 3}})
}

// TestProcessBatchTrainDuringMonitorFallback pins the fallback: with
// on-line training enabled the model mutates between samples, so the
// batched entry point must behave exactly like per-sample Process calls
// (which train), not like a frozen-model batch.
func TestProcessBatchTrainDuringMonitorFallback(t *testing.T) {
	fx := newFleetFixture(t)
	build := func() *edgedrift.Monitor {
		mon, err := edgedrift.New(edgedrift.Options{
			Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
			TrainDuringMonitor: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Fit(fx.trainX, fx.trainY); err != nil {
			t.Fatal(err)
		}
		return mon
	}
	seq, bat := build(), build()
	stream := fx.stream[:600]
	var want []edgedrift.Result
	for _, x := range stream {
		want = append(want, seq.Process(x))
	}
	got := bat.ProcessBatch(nil, stream)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("TrainDuringMonitor batch diverged from per-sample stream")
	}
}

// Package metrics is the lightweight metrics core of the observability
// layer: counters, gauges and fixed-bucket latency histograms with
// power-of-two buckets. Everything here is allocation-free on the
// update path and safe for one writer + many readers (atomic loads),
// which is exactly the shape of the streaming pipeline: each stage is
// single-threaded by contract, while an exposition scrape may read the
// same numbers from another goroutine at any time.
//
// The package deliberately takes no time measurements itself — whether
// and how often to pay a clock syscall is the instrumenting caller's
// decision (see core.Instrumented's sampled timing), so the paper's
// per-sample cost model stays untouched when instrumentation is off.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Updates are atomic so a scrape can read a live counter
// without synchronising with the hot path.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a last-written float64 value (a level, not a count). The
// zero value is ready to use and reads as 0.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the last stored value.
func (g *Gauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramBuckets is the fixed bucket count of Histogram. Bucket i
// holds observations v with bits.Len64(v) == i, i.e. v < 2^i and
// v >= 2^(i-1); the upper bound of bucket i is therefore 2^i − 1.
// With nanosecond observations the top bucket boundary is 2^39 ns
// ≈ 9.2 minutes — far beyond any per-sample latency this system can
// produce; larger observations clamp into the last bucket.
const HistogramBuckets = 40

// Histogram is a fixed-range latency histogram with power-of-two
// buckets: Observe costs one bits.Len64 plus three atomic adds, no
// floating point, no allocation, no locks. The zero value is ready to
// use. Intended unit is nanoseconds, but the histogram is unit-blind;
// the exposition layer applies the unit scale.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [HistogramBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	i := bits.Len64(v)
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile of the live
// histogram — Snapshot().Quantile(q) without making the caller hold a
// snapshot. See HistogramSnapshot.Quantile for the estimate's fidelity.
func (h *Histogram) Quantile(q float64) uint64 { return h.Snapshot().Quantile(q) }

// Snapshot returns a consistent-enough point-in-time copy for
// exposition (individual loads are atomic; the set is not a single
// linearised cut, which is fine for monitoring counters).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a plain-value copy of a Histogram, safe to pass
// around and render without touching the live atomics.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Buckets [HistogramBuckets]uint64
}

// UpperBound returns the inclusive upper bound of bucket i (2^i − 1).
func (HistogramSnapshot) UpperBound(i int) uint64 {
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Delta returns the observations recorded between prev and s — the
// windowed view a control loop needs from a lifetime-cumulative
// histogram (take a snapshot each tick and diff against the previous
// one). prev must be an earlier snapshot of the same histogram.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	d.Count = s.Count - prev.Count
	d.Sum = s.Sum - prev.Sum
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// Mean returns the mean observed value, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// observed distribution: the upper bound of the first bucket whose
// cumulative count reaches q·Count. Power-of-two buckets make this a
// within-2× estimate, which is the right fidelity for an operational
// latency dashboard at zero hot-path cost.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return s.UpperBound(i)
		}
	}
	return s.UpperBound(HistogramBuckets - 1)
}

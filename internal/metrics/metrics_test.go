package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	if g.Load() != 0 {
		t.Fatal("zero gauge must read 0")
	}
	g.Set(3.25)
	if got := g.Load(); got != 3.25 {
		t.Fatalf("gauge = %v, want 3.25", got)
	}
	g.Set(math.Inf(-1))
	if !math.IsInf(g.Load(), -1) {
		t.Fatal("gauge must round-trip -Inf bits")
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	// bits.Len64: 0→bucket 0, 1→1, 2,3→2, 4..7→3, ...
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(7)
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 13 {
		t.Fatalf("count/sum = %d/%d, want 5/13", s.Count, s.Sum)
	}
	want := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1}
	for i, c := range s.Buckets {
		if c != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	// An upper bound holds every value the bucket can contain.
	for i := 0; i < HistogramBuckets; i++ {
		if i > 0 && s.UpperBound(i) != 2*s.UpperBound(i-1)+1 {
			t.Fatalf("bucket bounds not power-of-two at %d", i)
		}
	}
}

func TestHistogramClampsHugeValues(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxUint64)
	s := h.Snapshot()
	if s.Buckets[HistogramBuckets-1] != 1 {
		t.Fatal("huge observation must clamp into the last bucket")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Snapshot().Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket 7, upper bound 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(100_000) // bucket 17, upper bound 131071
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 127 {
		t.Fatalf("p50 = %d, want 127", got)
	}
	if got := h.Quantile(0.5); got != s.Quantile(0.5) {
		t.Fatalf("live Quantile %d disagrees with snapshot %d", got, s.Quantile(0.5))
	}
	if got := s.Quantile(0.99); got != 131071 {
		t.Fatalf("p99 = %d, want 131071", got)
	}
	if got, want := s.Mean(), (90*100.0+10*100_000.0)/100; got != want {
		t.Fatalf("mean = %v, want %v", got, want)
	}
}

func TestHistogramDelta(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(100)
	prev := h.Snapshot()
	h.Observe(100_000)
	d := h.Snapshot().Delta(prev)
	if d.Count != 1 || d.Sum != 100_000 {
		t.Fatalf("delta count=%d sum=%d, want 1/100000", d.Count, d.Sum)
	}
	if got := d.Quantile(0.99); got != 131071 {
		t.Fatalf("delta p99 = %d, want 131071 (the window must not see pre-window observations)", got)
	}
	if empty := h.Snapshot().Delta(h.Snapshot()); empty.Count != 0 || empty.Quantile(0.99) != 0 {
		t.Fatalf("idle-window delta not empty: %+v", empty)
	}
}

// TestConcurrentReadsWhileWriting locks the one-writer/many-reader
// contract under the race detector: a scrape concurrent with updates
// must be race-free.
func TestConcurrentReadsWhileWriting(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				c.Inc()
				g.Set(float64(c.Load()))
				h.Observe(c.Load())
			}
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = c.Load()
		_ = g.Load()
		_ = h.Snapshot()
	}
	close(done)
	wg.Wait()
}

func TestObserveZeroAllocs(t *testing.T) {
	var c Counter
	var h Histogram
	if n := testing.AllocsPerRun(200, func() { c.Inc(); h.Observe(42) }); n != 0 {
		t.Fatalf("metric updates allocate %v objects per call, want 0", n)
	}
}

func TestTextWriterGolden(t *testing.T) {
	var h Histogram
	h.Observe(900) // bucket 10, upper bound 1023
	h.Observe(100) // bucket 7, upper bound 127

	var b strings.Builder
	tw := NewTextWriter(&b)
	tw.Counter("edgedrift_samples_total", "Samples processed.", nil, 7)
	tw.Counter("edgedrift_stream_samples_total", "Per-stream samples.", []Label{{"stream", "s-0"}}, 3)
	tw.Counter("edgedrift_stream_samples_total", "Per-stream samples.", []Label{{"stream", "s-1"}}, 4)
	tw.Gauge("edgedrift_streams", "Registered streams.", nil, 2)
	tw.Histogram("edgedrift_process_latency_seconds", "Sampled latency.", nil, h.Snapshot(), 1e-9)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP edgedrift_samples_total Samples processed.
# TYPE edgedrift_samples_total counter
edgedrift_samples_total 7
# HELP edgedrift_stream_samples_total Per-stream samples.
# TYPE edgedrift_stream_samples_total counter
edgedrift_stream_samples_total{stream="s-0"} 3
edgedrift_stream_samples_total{stream="s-1"} 4
# HELP edgedrift_streams Registered streams.
# TYPE edgedrift_streams gauge
edgedrift_streams 2
# HELP edgedrift_process_latency_seconds Sampled latency.
# TYPE edgedrift_process_latency_seconds histogram
edgedrift_process_latency_seconds_bucket{le="1.27e-07"} 1
edgedrift_process_latency_seconds_bucket{le="1.023e-06"} 2
edgedrift_process_latency_seconds_bucket{le="+Inf"} 2
edgedrift_process_latency_seconds_sum 1e-06
edgedrift_process_latency_seconds_count 2
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTextWriterSkipsLeadingEmptyBuckets(t *testing.T) {
	var b strings.Builder
	tw := NewTextWriter(&b)
	tw.Histogram("m", "h.", nil, HistogramSnapshot{}, 1)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	// Empty histogram: only the +Inf bucket, sum and count lines.
	got := b.String()
	if strings.Count(got, "_bucket") != 1 {
		t.Fatalf("empty histogram exposition:\n%s", got)
	}
	if !strings.Contains(got, `le="+Inf"} 0`) || !strings.Contains(got, "m_count 0") {
		t.Fatalf("empty histogram exposition:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	var b strings.Builder
	tw := NewTextWriter(&b)
	tw.Counter("m", "h.", []Label{{"stream", "a\"b\\c\nd"}}, 1)
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `m{stream="a\"b\\c\nd"} 1`) {
		t.Fatalf("escaping wrong:\n%s", b.String())
	}
}

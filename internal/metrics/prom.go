package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Label is one name="value" pair on an exposed sample.
type Label struct{ Name, Value string }

// TextWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4, the format every scraper accepts). It emits the
// # HELP / # TYPE header once per metric family, so per-stream samples
// of the same family can be written back to back; the first write error
// is sticky and returned by Err.
//
// Exposition runs on the scrape path, never the per-sample hot path,
// so this writer favours clarity over allocation avoidance.
type TextWriter struct {
	w       io.Writer
	err     error
	emitted map[string]bool
}

// NewTextWriter returns a writer rendering to w.
func NewTextWriter(w io.Writer) *TextWriter {
	return &TextWriter{w: w, emitted: map[string]bool{}}
}

// Err returns the first write error, if any.
func (t *TextWriter) Err() error { return t.err }

// Counter writes one counter sample.
func (t *TextWriter) Counter(name, help string, labels []Label, v uint64) {
	t.header(name, help, "counter")
	t.printf("%s%s %d\n", name, renderLabels(labels), v)
}

// Gauge writes one gauge sample.
func (t *TextWriter) Gauge(name, help string, labels []Label, v float64) {
	t.header(name, help, "gauge")
	t.printf("%s%s %g\n", name, renderLabels(labels), v)
}

// Histogram writes one histogram sample: cumulative buckets with `le`
// bounds, the +Inf bucket, and the _sum/_count pair. scale converts the
// histogram's raw unit into the exposed unit (1e-9 for nanosecond
// observations exposed as seconds, per Prometheus base-unit convention).
func (t *TextWriter) Histogram(name, help string, labels []Label, s HistogramSnapshot, scale float64) {
	t.header(name, help, "histogram")
	var cum uint64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		// Cumulative counts may be sparse in the exposition format: a
		// scraper fills the gaps, so empty power-of-two buckets cost
		// nothing on the wire.
		cum += c
		le := float64(s.UpperBound(i)) * scale
		t.printf("%s_bucket%s %d\n", name, renderLabels(append(labels, Label{"le", fmt.Sprintf("%.6g", le)})), cum)
	}
	t.printf("%s_bucket%s %d\n", name, renderLabels(append(labels, Label{"le", "+Inf"})), s.Count)
	t.printf("%s_sum%s %.6g\n", name, renderLabels(labels), float64(s.Sum)*scale)
	t.printf("%s_count%s %d\n", name, renderLabels(labels), s.Count)
}

// header emits the # HELP / # TYPE preamble once per family.
func (t *TextWriter) header(name, help, typ string) {
	if t.emitted[name] {
		return
	}
	t.emitted[name] = true
	t.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func (t *TextWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

// renderLabels formats {k="v",...}, empty string for no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a help string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

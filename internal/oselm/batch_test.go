package oselm

import (
	"math"
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// The batched forward must be a pure memory-access-pattern change:
// ScoreBatch's results are bit-identical to per-sample Score on both
// float backends, for every metric, at batch sizes that are smaller
// than, equal to, straddling, and ragged against the internal chunk.

func batchTestAE(t testing.TB, p Precision, metric ScoreMetric, d, h int) *Autoencoder {
	t.Helper()
	ae, err := NewAutoencoder(Config{Inputs: d, Hidden: h, Precision: p}, metric, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	x := make([]float64, d)
	for i := 0; i < 50; i++ {
		r.FillUniform(x, -1, 1)
		ae.Train(x)
	}
	return ae
}

func batchSamples(n, d int) [][]float64 {
	r := rng.New(13)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		r.FillUniform(xs[i], -1, 1)
	}
	return xs
}

func TestScoreBatchMatchesScoreBitExact(t *testing.T) {
	for _, p := range []Precision{Float64, Float32} {
		for _, metric := range []ScoreMetric{MSE, L1Mean, L2Norm} {
			for _, n := range []int{1, 3, 63, 64, 65, 130} {
				const d, h = 37, 9
				ae := batchTestAE(t, p, metric, d, h)
				xs := batchSamples(n, d)
				want := make([]float64, n)
				for i, x := range xs {
					want[i] = ae.Score(x)
				}
				got := make([]float64, n)
				ae.ScoreBatch(got, xs)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%v/%v n=%d sample %d: batch %v per-sample %v (want bit-identical)",
							p, metric, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Training between batches must leave both paths equivalent: score a
// batch, train on each sample, score again — against a per-sample twin.
func TestScoreBatchInterleavedWithTraining(t *testing.T) {
	const d, h, n = 21, 6, 40
	for _, p := range []Precision{Float64, Float32} {
		a := batchTestAE(t, p, MSE, d, h)
		b := batchTestAE(t, p, MSE, d, h)
		xs := batchSamples(n, d)
		got := make([]float64, n)
		want := make([]float64, n)
		for round := 0; round < 3; round++ {
			a.ScoreBatch(got, xs)
			for i, x := range xs {
				want[i] = b.Score(x)
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%v round %d sample %d: batch %v per-sample %v", p, round, i, got[i], want[i])
				}
			}
			for _, x := range xs {
				a.Train(x)
				b.Train(x)
			}
		}
	}
}

// ScoreBatch charges the op counter exactly as n Score calls would.
func TestScoreBatchOpParity(t *testing.T) {
	const d, h, n = 17, 5, 9
	a := batchTestAE(t, Float64, MSE, d, h)
	b := batchTestAE(t, Float64, MSE, d, h)
	xs := batchSamples(n, d)
	opsA := &opcount.Counter{}
	opsB := &opcount.Counter{}
	a.SetOps(opsA)
	b.SetOps(opsB)
	a.ScoreBatch(make([]float64, n), xs)
	for _, x := range xs {
		b.Score(x)
	}
	if *opsA != *opsB {
		t.Fatalf("batch ops %+v != per-sample ops %+v", *opsA, *opsB)
	}
}

func TestScoreBatchZeroAllocs(t *testing.T) {
	for _, p := range []Precision{Float64, Float32} {
		ae := batchTestAE(t, p, MSE, 64, 22)
		xs := batchSamples(96, 64)
		dst := make([]float64, len(xs))
		ae.ScoreBatch(dst, xs) // allocate the scratch once
		if n := testing.AllocsPerRun(100, func() { ae.ScoreBatch(dst, xs) }); n != 0 {
			t.Fatalf("%v: ScoreBatch allocates %v objects per call, want 0", p, n)
		}
	}
}

func TestScoreBatchMemoryAccounting(t *testing.T) {
	ae := batchTestAE(t, Float64, MSE, 16, 4)
	before := ae.MemoryBytes()
	xs := batchSamples(8, 16)
	ae.ScoreBatch(make([]float64, 8), xs)
	after := ae.MemoryBytes()
	want := before + 8*batchChunk*(4+16)
	if after != want {
		t.Fatalf("MemoryBytes after batch scratch = %d, want %d (before %d)", after, want, before)
	}
}

func TestScoreBatchPanicsOnBadShapes(t *testing.T) {
	ae := batchTestAE(t, Float64, MSE, 8, 3)
	for name, fn := range map[string]func(){
		"dst length":   func() { ae.ScoreBatch(make([]float64, 2), batchSamples(3, 8)) },
		"sample width": func() { ae.ScoreBatch(make([]float64, 2), batchSamples(2, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

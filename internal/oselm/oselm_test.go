package oselm

import (
	"math"
	"testing"
	"testing/quick"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	r := rng.New(1)
	bad := []Config{
		{Inputs: 0, Hidden: 2, Outputs: 1},
		{Inputs: 2, Hidden: 0, Outputs: 1},
		{Inputs: 2, Hidden: 2, Outputs: 0},
		{Inputs: 2, Hidden: 2, Outputs: 1, Forgetting: -0.5},
		{Inputs: 2, Hidden: 2, Outputs: 1, Forgetting: 1.5},
		{Inputs: 2, Hidden: 2, Outputs: 1, Ridge: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg, r); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, cfg)
		}
	}
	m, err := New(Config{Inputs: 3, Hidden: 4, Outputs: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Config()
	if c.Forgetting != 1 || c.Ridge != 1e-3 || c.WeightScale != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

// makeRegression builds a noisy linear target so an ELM with a linear
// activation can fit it exactly in the hidden feature space.
func makeRegression(r *rng.Rand, n, d, m int) (xs, ts [][]float64) {
	w := mat.New(d, m)
	r.FillNorm(w.Data, 0, 1)
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		r.FillNorm(x, 0, 1)
		t := make([]float64, m)
		mat.MulVecTrans(t, w, x)
		xs = append(xs, x)
		ts = append(ts, t)
	}
	return xs, ts
}

// TestSequentialMatchesBatchRidge is the core RLS-equivalence property:
// training sample-by-sample from the sequential start state must produce
// exactly the batch ridge solution over the same samples.
func TestSequentialMatchesBatchRidge(t *testing.T) {
	r := rng.New(2)
	cfg := Config{Inputs: 5, Hidden: 8, Outputs: 3, Activation: Sigmoid, Ridge: 0.01}
	seq, err := New(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	// Clone the random projection into a second model by sharing the
	// draw: create batch model from same rng state via same seed.
	r2 := rng.New(2)
	batch, err := New(cfg, r2)
	if err != nil {
		t.Fatal(err)
	}
	xs, ts := makeRegression(rng.New(3), 60, 5, 3)
	for i := range xs {
		seq.Train(xs[i], ts[i])
	}
	if err := batch.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(seq.Beta(), batch.Beta()); d > 1e-6 {
		t.Fatalf("sequential β deviates from batch ridge by %v", d)
	}
	if seq.SamplesSeen() != 60 || batch.SamplesSeen() != 60 {
		t.Fatalf("SamplesSeen = %d/%d", seq.SamplesSeen(), batch.SamplesSeen())
	}
}

func TestBatchInitThenSequentialMatchesFullBatch(t *testing.T) {
	cfg := Config{Inputs: 4, Hidden: 6, Outputs: 2, Ridge: 0.05}
	a, _ := New(cfg, rng.New(4))
	b, _ := New(cfg, rng.New(4))
	xs, ts := makeRegression(rng.New(5), 80, 4, 2)
	// a: batch on first 40, sequential on rest.
	if err := a.InitTrainBatch(xs[:40], ts[:40]); err != nil {
		t.Fatal(err)
	}
	for i := 40; i < 80; i++ {
		a.Train(xs[i], ts[i])
	}
	// b: batch on everything.
	if err := b.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(a.Beta(), b.Beta()); d > 1e-6 {
		t.Fatalf("hybrid training deviates from full batch by %v", d)
	}
}

func TestPredictLearnsFunction(t *testing.T) {
	cfg := Config{Inputs: 2, Hidden: 30, Outputs: 1, Ridge: 1e-4}
	m, _ := New(cfg, rng.New(6))
	r := rng.New(7)
	// Learn f(x) = x0 − 2·x1 with noise-free samples.
	for i := 0; i < 2000; i++ {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
		m.Train(x, []float64{x[0] - 2*x[1]})
	}
	var worst float64
	for i := 0; i < 200; i++ {
		x := []float64{r.Uniform(-1, 1), r.Uniform(-1, 1)}
		y := m.Predict(nil, x)
		if e := math.Abs(y[0] - (x[0] - 2*x[1])); e > worst {
			worst = e
		}
	}
	if worst > 0.05 {
		t.Fatalf("worst-case prediction error %v, want < 0.05", worst)
	}
}

func TestResetClearsLearning(t *testing.T) {
	cfg := Config{Inputs: 2, Hidden: 4, Outputs: 1}
	m, _ := New(cfg, rng.New(8))
	m.Train([]float64{1, 2}, []float64{3})
	if m.SamplesSeen() != 1 {
		t.Fatal("SamplesSeen not incremented")
	}
	m.Reset()
	if m.SamplesSeen() != 0 {
		t.Fatal("Reset did not clear SamplesSeen")
	}
	if n := m.Beta().FrobeniusNorm(); n != 0 {
		t.Fatalf("Reset left β norm %v", n)
	}
	// Prediction after reset is zero (β = 0).
	y := m.Predict(nil, []float64{1, 1})
	if y[0] != 0 {
		t.Fatalf("post-reset prediction = %v", y)
	}
}

func TestForgettingAdaptsFasterAfterShift(t *testing.T) {
	mk := func(forget float64) *Model {
		m, err := New(Config{Inputs: 1, Hidden: 10, Outputs: 1, Forgetting: forget, Ridge: 0.01}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain := mk(1)
	forgetful := mk(0.95)
	r := rng.New(10)
	// Phase 1: y = x. Phase 2: y = −x. The forgetful model should track
	// the new concept with lower error after the switch.
	feed := func(m *Model, slope float64, n int) {
		for i := 0; i < n; i++ {
			x := []float64{r.Uniform(-1, 1)}
			m.Train(x, []float64{slope * x[0]})
		}
	}
	r = rng.New(10)
	feed(plain, 1, 800)
	feed(plain, -1, 200)
	r = rng.New(10)
	feed(forgetful, 1, 800)
	feed(forgetful, -1, 200)
	errOf := func(m *Model) float64 {
		rr := rng.New(11)
		var s float64
		for i := 0; i < 200; i++ {
			x := []float64{rr.Uniform(-1, 1)}
			y := m.Predict(nil, x)
			s += math.Abs(y[0] - (-x[0]))
		}
		return s / 200
	}
	pe, fe := errOf(plain), errOf(forgetful)
	if fe >= pe {
		t.Fatalf("forgetting model error %v not better than plain %v after shift", fe, pe)
	}
}

func TestPredictPanicsOnBadDims(t *testing.T) {
	m, _ := New(Config{Inputs: 2, Hidden: 3, Outputs: 1}, rng.New(12))
	for _, fn := range []func(){
		func() { m.Predict(nil, []float64{1}) },
		func() { m.Predict(make([]float64, 5), []float64{1, 2}) },
		func() { m.Train([]float64{1, 2}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestInitTrainBatchErrors(t *testing.T) {
	m, _ := New(Config{Inputs: 2, Hidden: 3, Outputs: 1}, rng.New(13))
	if err := m.InitTrainBatch(nil, nil); err == nil {
		t.Fatal("expected error on empty batch")
	}
	if err := m.InitTrainBatch([][]float64{{1, 2}}, [][]float64{{1, 2}}); err == nil {
		t.Fatal("expected error on bad target dimension")
	}
}

func TestActivationString(t *testing.T) {
	if Sigmoid.String() != "sigmoid" || Tanh.String() != "tanh" || Linear.String() != "linear" {
		t.Fatal("Activation String mismatch")
	}
	if Activation(42).String() != "Activation(42)" {
		t.Fatal("unknown activation formatting")
	}
}

func TestOpsCounting(t *testing.T) {
	m, _ := New(Config{Inputs: 4, Hidden: 5, Outputs: 2}, rng.New(14))
	var c opcount.Counter
	m.SetOps(&c)
	m.Predict(nil, []float64{1, 2, 3, 4})
	if c.MulAdd != uint64(5*4+5*2) {
		t.Fatalf("predict MulAdd = %d, want %d", c.MulAdd, 5*4+5*2)
	}
	if c.Exp != 5 {
		t.Fatalf("predict Exp = %d, want 5", c.Exp)
	}
	before := c
	m.Train([]float64{1, 2, 3, 4}, []float64{0, 0})
	delta := c.Sub(before)
	// Train must cost more than predict: it includes two P·h products.
	if delta.MulAdd <= before.MulAdd {
		t.Fatalf("train MulAdd %d not greater than predict %d", delta.MulAdd, before.MulAdd)
	}
	// Nil counter must be safe.
	m.SetOps(nil)
	m.Predict(nil, []float64{1, 2, 3, 4})
}

func TestMemoryBytes(t *testing.T) {
	m, _ := New(Config{Inputs: 10, Hidden: 4, Outputs: 10}, rng.New(15))
	// W: 40, bias: 4, β: 40, P: 16, scratch h/ph: 4+4, e: 10 → 118 floats
	if got, want := m.MemoryBytes(), 8*118; got != want {
		t.Fatalf("MemoryBytes = %d, want %d", got, want)
	}
}

// Property: the RLS update never produces NaNs for bounded inputs and the
// prediction error on the just-trained sample decreases (or stays) after
// training on it.
func TestPropTrainingReducesResidualOnSample(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, err := New(Config{Inputs: 3, Hidden: 6, Outputs: 2, Ridge: 0.01}, r)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			x := make([]float64, 3)
			r.FillNorm(x, 0, 1)
			tgt := make([]float64, 2)
			r.FillNorm(tgt, 0, 1)
			before := mat.L2Dist(m.Predict(nil, x), tgt)
			m.Train(x, tgt)
			after := mat.L2Dist(m.Predict(nil, x), tgt)
			if math.IsNaN(after) || after > before+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrainD38H22(b *testing.B) {
	m, _ := New(Config{Inputs: 38, Hidden: 22, Outputs: 38}, rng.New(1))
	x := make([]float64, 38)
	rng.New(2).FillNorm(x, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Train(x, x)
	}
}

func BenchmarkPredictD511H22(b *testing.B) {
	m, _ := New(Config{Inputs: 511, Hidden: 22, Outputs: 511}, rng.New(1))
	x := make([]float64, 511)
	rng.New(2).FillNorm(x, 0, 1)
	dst := make([]float64, 511)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(dst, x)
	}
}

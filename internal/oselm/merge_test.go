package oselm

import (
	"errors"
	"math"
	"testing"

	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

// mergeCfg is the shape used throughout the merge tests.
var mergeCfg = Config{Inputs: 6, Hidden: 12, Outputs: 4, Ridge: 1e-2}

func mkMergeData(r *rng.Rand, n int, cfg Config) (xs, ts [][]float64) {
	xs = make([][]float64, n)
	ts = make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, cfg.Inputs)
		ts[i] = make([]float64, cfg.Outputs)
		r.FillUniform(xs[i], -2, 2)
		r.FillUniform(ts[i], -1, 1)
	}
	return xs, ts
}

func mustModel(t *testing.T, cfg Config, seed uint64) *Model {
	t.Helper()
	m, err := New(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// maxDiff is the largest absolute element difference between two
// equally-shaped matrices.
func maxDiff(a, b *mat.Matrix) float64 {
	var worst float64
	for i, v := range a.Data {
		if d := math.Abs(v - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestMergeExactnessBatch is the closed-form oracle: merging K models
// batch-trained on disjoint partitions must match batch training on the
// union. Bit-level equality is not expected — the partition grams are
// summed in a different order than the union gram — but the result is
// tight: every β and P element within 1e-8 of the oracle (the matrices
// here are O(1)-scaled, so this is ~8 significant decimal digits).
func TestMergeExactnessBatch(t *testing.T) {
	const parts, perPart = 3, 40
	r := rng.New(99)
	xs, ts := mkMergeData(r, parts*perPart, mergeCfg)

	full := mustModel(t, mergeCfg, 7)
	if err := full.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}

	srcs := make([]*Model, parts)
	for k := 0; k < parts; k++ {
		srcs[k] = mustModel(t, mergeCfg, 7) // same seed: shared projection
		lo, hi := k*perPart, (k+1)*perPart
		if err := srcs[k].InitTrainBatch(xs[lo:hi], ts[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}

	merged := mustModel(t, mergeCfg, 7)
	if err := merged.Merge(srcs...); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(merged.Beta(), full.Beta()); d > 1e-8 {
		t.Fatalf("merged β differs from union batch solution by %g", d)
	}
	if d := maxDiff(merged.P(), full.P()); d > 1e-8 {
		t.Fatalf("merged P differs from union batch solution by %g", d)
	}
	if merged.SamplesSeen() != parts*perPart {
		t.Fatalf("merged SamplesSeen = %d, want %d", merged.SamplesSeen(), parts*perPart)
	}

	// The merged model predicts like the oracle.
	probe := make([]float64, mergeCfg.Inputs)
	rng.New(123).FillUniform(probe, -2, 2)
	got := merged.Predict(nil, probe)
	want := full.Predict(nil, probe)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("output %d: merged %g vs oracle %g", i, got[i], want[i])
		}
	}
}

// TestMergeExactnessSequential: at Forgetting == 1 the Sherman-Morrison
// recursion computes the same P as the batch formula, so merging
// sequentially trained sources also matches the union batch oracle
// (looser tolerance: each rank-1 step rounds independently).
func TestMergeExactnessSequential(t *testing.T) {
	const parts, perPart = 2, 60
	r := rng.New(5)
	xs, ts := mkMergeData(r, parts*perPart, mergeCfg)

	full := mustModel(t, mergeCfg, 3)
	if err := full.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}

	srcs := make([]*Model, parts)
	for k := 0; k < parts; k++ {
		srcs[k] = mustModel(t, mergeCfg, 3)
		for i := k * perPart; i < (k+1)*perPart; i++ {
			srcs[k].Train(xs[i], ts[i])
		}
	}
	merged := mustModel(t, mergeCfg, 3)
	if err := merged.Merge(srcs...); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(merged.Beta(), full.Beta()); d > 1e-6 {
		t.Fatalf("merged β differs from union batch solution by %g", d)
	}
}

// TestMergeExactnessFloat32: the f32 backend shares the f64 P (the RLS
// state never narrows), so the merge algebra is the same; only β crosses
// the precision boundary. The oracle tolerance is float32 resolution.
func TestMergeExactnessFloat32(t *testing.T) {
	cfg := mergeCfg
	cfg.Precision = Float32
	const parts, perPart = 2, 40
	r := rng.New(11)
	xs, ts := mkMergeData(r, parts*perPart, cfg)

	full := mustModel(t, cfg, 7)
	if err := full.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}
	srcs := make([]*Model, parts)
	for k := 0; k < parts; k++ {
		srcs[k] = mustModel(t, cfg, 7)
		lo, hi := k*perPart, (k+1)*perPart
		if err := srcs[k].InitTrainBatch(xs[lo:hi], ts[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	merged := mustModel(t, cfg, 7)
	if err := merged.Merge(srcs...); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(merged.Beta(), full.Beta()); d > 1e-5 {
		t.Fatalf("merged f32 β differs from union batch solution by %g", d)
	}
}

// TestMergeSelfInclusion: including the destination itself in the
// sources keeps its evidence — merging {m, peer} into m equals the
// union oracle, even though m's state is overwritten mid-merge.
func TestMergeSelfInclusion(t *testing.T) {
	const perPart = 30
	r := rng.New(21)
	xs, ts := mkMergeData(r, 2*perPart, mergeCfg)
	full := mustModel(t, mergeCfg, 9)
	if err := full.InitTrainBatch(xs, ts); err != nil {
		t.Fatal(err)
	}
	m := mustModel(t, mergeCfg, 9)
	if err := m.InitTrainBatch(xs[:perPart], ts[:perPart]); err != nil {
		t.Fatal(err)
	}
	peer := mustModel(t, mergeCfg, 9)
	if err := peer.InitTrainBatch(xs[perPart:], ts[perPart:]); err != nil {
		t.Fatal(err)
	}
	if err := m.Merge(m, peer); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(m.Beta(), full.Beta()); d > 1e-8 {
		t.Fatalf("self-inclusive merge differs from union oracle by %g", d)
	}
}

// TestMergeIncompatible is the exhaustive rejection table: every way two
// models can fail to be mergeable must be rejected loudly with
// ErrMergeIncompatible, and the destination must be left untouched.
func TestMergeIncompatible(t *testing.T) {
	mk := func(mut func(*Config), seed uint64) *Model {
		c := mergeCfg
		if mut != nil {
			mut(&c)
		}
		m, err := New(c, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	cases := []struct {
		name string
		src  *Model
	}{
		{"input shape", mk(func(c *Config) { c.Inputs = 5 }, 7)},
		{"hidden shape", mk(func(c *Config) { c.Hidden = 13 }, 7)},
		{"output shape", mk(func(c *Config) { c.Outputs = 3 }, 7)},
		{"activation", mk(func(c *Config) { c.Activation = Tanh }, 7)},
		{"precision", mk(func(c *Config) { c.Precision = Float32 }, 7)},
		{"forgetting", mk(func(c *Config) { c.Forgetting = 0.97 }, 7)},
		{"ridge", mk(func(c *Config) { c.Ridge = 1e-3 }, 7)},
		{"weight scale", mk(func(c *Config) { c.WeightScale = 0.5 }, 7)},
		{"seed topology", mk(nil, 8)},
		{"nil model", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := mk(nil, 7)
			xs, ts := mkMergeData(rng.New(1), 20, mergeCfg)
			if err := dst.InitTrainBatch(xs, ts); err != nil {
				t.Fatal(err)
			}
			before := dst.Beta()
			err := dst.Merge(tc.src)
			if !errors.Is(err, ErrMergeIncompatible) {
				t.Fatalf("err = %v, want ErrMergeIncompatible", err)
			}
			var me *MergeError
			if !errors.As(err, &me) || me.Reason == "" {
				t.Fatalf("err = %v, want a *MergeError with a reason", err)
			}
			if d := maxDiff(dst.Beta(), before); d != 0 {
				t.Fatalf("failed merge mutated the destination (Δβ = %g)", d)
			}
			// Fingerprints disagree exactly when merge is incompatible.
			if tc.src != nil && tc.src.Fingerprint() == dst.Fingerprint() {
				t.Fatal("incompatible models share a fingerprint")
			}
		})
	}
	t.Run("empty sources", func(t *testing.T) {
		dst := mk(nil, 7)
		if err := dst.Merge(); !errors.Is(err, ErrMergeIncompatible) {
			t.Fatalf("err = %v, want ErrMergeIncompatible", err)
		}
	})
}

// TestFingerprintStable: the fingerprint depends only on what
// CompatibleWith checks — training must not change it, and two models
// built from the same seed must share it.
func TestFingerprintStable(t *testing.T) {
	a := mustModel(t, mergeCfg, 7)
	b := mustModel(t, mergeCfg, 7)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same-seed models have different fingerprints")
	}
	before := a.Fingerprint()
	xs, ts := mkMergeData(rng.New(2), 50, mergeCfg)
	for i := range xs {
		a.Train(xs[i], ts[i])
	}
	if a.Fingerprint() != before {
		t.Fatal("training changed the fingerprint")
	}
	if err := a.CompatibleWith(b); err != nil {
		t.Fatalf("same-seed models incompatible: %v", err)
	}
}

// TestAutoencoderMerge checks the autoencoder wrapper: model delegation
// plus the metric compatibility check.
func TestAutoencoderMerge(t *testing.T) {
	cfg := Config{Inputs: 6, Hidden: 10, Ridge: 1e-2}
	mk := func(metric ScoreMetric) *Autoencoder {
		a, err := NewAutoencoder(cfg, metric, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	xs, _ := mkMergeData(rng.New(17), 60, Config{Inputs: 6, Outputs: 6})
	full, p1, p2 := mk(MSE), mk(MSE), mk(MSE)
	if err := full.InitTrainBatch(xs); err != nil {
		t.Fatal(err)
	}
	if err := p1.InitTrainBatch(xs[:30]); err != nil {
		t.Fatal(err)
	}
	if err := p2.InitTrainBatch(xs[30:]); err != nil {
		t.Fatal(err)
	}
	dst := mk(MSE)
	if err := dst.Merge(p1, p2); err != nil {
		t.Fatal(err)
	}
	probe := xs[0]
	if d := math.Abs(dst.Score(probe) - full.Score(probe)); d > 1e-8 {
		t.Fatalf("merged autoencoder score differs from oracle by %g", d)
	}
	if err := dst.Merge(mk(L1Mean)); !errors.Is(err, ErrMergeIncompatible) {
		t.Fatal("metric mismatch not rejected")
	}
	if mk(MSE).Fingerprint() == mk(L1Mean).Fingerprint() {
		t.Fatal("different metrics share an autoencoder fingerprint")
	}
}

package oselm

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"edgedrift/internal/mat"
)

// ErrMergeIncompatible is the sentinel every merge-compatibility failure
// wraps: two models whose trained state cannot be combined — different
// shape, activation, precision, RLS constants, or seed topology (W·b).
// Policy layers (fleet warm recovery, anti-entropy) classify rejections
// with errors.Is against it; nothing is ever silently skipped.
var ErrMergeIncompatible = errors.New("oselm: models are merge-incompatible")

// MergeError is the typed incompatibility report. It wraps
// ErrMergeIncompatible and carries the specific reason.
type MergeError struct {
	// Reason names the first compatibility check that failed.
	Reason string
}

// Error implements error.
func (e *MergeError) Error() string { return "oselm: merge-incompatible: " + e.Reason }

// Unwrap makes errors.Is(err, ErrMergeIncompatible) true.
func (e *MergeError) Unwrap() error { return ErrMergeIncompatible }

func mergeErrf(format string, args ...interface{}) error {
	return &MergeError{Reason: fmt.Sprintf(format, args...)}
}

// CompatibleWith reports nil when o's trained state can be merged with
// m's, or a *MergeError naming the first mismatch. Mergeability requires
// identical shape, activation, precision, RLS constants and — because
// the closed form assumes one shared random projection — bit-identical
// W and bias.
func (m *Model) CompatibleWith(o *Model) error {
	if o == nil {
		return mergeErrf("nil model")
	}
	a, b := m.cfg, o.cfg
	switch {
	case a.Inputs != b.Inputs || a.Hidden != b.Hidden || a.Outputs != b.Outputs:
		return mergeErrf("shape D×H×M %d×%d×%d vs %d×%d×%d",
			a.Inputs, a.Hidden, a.Outputs, b.Inputs, b.Hidden, b.Outputs)
	case a.Activation != b.Activation:
		return mergeErrf("activation %v vs %v", a.Activation, b.Activation)
	case a.Precision != b.Precision:
		return mergeErrf("precision %v vs %v", a.Precision, b.Precision)
	case a.Forgetting != b.Forgetting:
		return mergeErrf("forgetting factor %v vs %v", a.Forgetting, b.Forgetting)
	case a.Ridge != b.Ridge:
		return mergeErrf("ridge %v vs %v", a.Ridge, b.Ridge)
	case a.WeightScale != b.WeightScale:
		return mergeErrf("weight scale %v vs %v", a.WeightScale, b.WeightScale)
	}
	if m.w32 != nil {
		if !sameBits32(m.w32.Data, o.w32.Data) || !sameBits32(m.bias32, o.bias32) {
			return mergeErrf("different seed topology (random projections W·b differ)")
		}
		return nil
	}
	if !sameBits64(m.w.Data, o.w.Data) || !sameBits64(m.bias, o.bias) {
		return mergeErrf("different seed topology (random projections W·b differ)")
	}
	return nil
}

func sameBits64(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func sameBits32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

// Fingerprint returns the model's 64-bit merge-compatibility
// fingerprint: FNV-1a over everything CompatibleWith checks — shape,
// activation, precision, RLS constants, and the bit patterns of the
// random projection. Two models merge cleanly iff their fingerprints
// match (up to hash collision); fleet and wire layers use it to check
// compatibility without shipping full state.
func (m *Model) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(m.cfg.Inputs))
	put(uint64(m.cfg.Hidden))
	put(uint64(m.cfg.Outputs))
	put(uint64(m.cfg.Activation))
	put(uint64(m.cfg.Precision))
	put(math.Float64bits(m.cfg.Forgetting))
	put(math.Float64bits(m.cfg.Ridge))
	put(math.Float64bits(m.cfg.WeightScale))
	if m.w32 != nil {
		for _, v := range m.w32.Data {
			put(uint64(math.Float32bits(v)))
		}
		for _, v := range m.bias32 {
			put(uint64(math.Float32bits(v)))
		}
	} else {
		for _, v := range m.w.Data {
			put(math.Float64bits(v))
		}
		for _, v := range m.bias {
			put(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// P returns a deep copy of the inverse-covariance state, for tests and
// diagnostics.
func (m *Model) P() *mat.Matrix { return m.p.Clone() }

// Merge replaces m's learned state (β, P) with the closed-form joint
// solution over the source models' states (Ito et al.: OS-ELM instances
// sharing one random projection combine without gradient averaging).
//
// Each P_k is the inverse of the ridge-regularised Gram of that model's
// hidden activations, P_k⁻¹ = H_kᵀH_k + λI, and P_k⁻¹·β_k = H_kᵀT_k.
// For sources trained on disjoint data the joint model is therefore
//
//	P = (Σ_k P_k⁻¹ − (K−1)·λ·I)⁻¹   (the ridge prior counted once)
//	β = P · Σ_k P_k⁻¹·β_k
//
// which is exactly the batch solution on the union of the sources'
// data — sample-weighted by construction, since each P_k⁻¹ carries its
// own evidence. Exactness holds at Forgetting == 1 (batch or sequential
// training); with a forgetting factor the same formula combines the
// decayed grams, a well-behaved approximation.
//
// m's own prior state does not contribute; include m itself in srcs to
// keep it. Every source must be merge-compatible with m (see
// CompatibleWith) — incompatibility is reported as a *MergeError
// wrapping ErrMergeIncompatible, and m is left untouched on any error.
func (m *Model) Merge(srcs ...*Model) error {
	if len(srcs) == 0 {
		return mergeErrf("no source models")
	}
	for i, s := range srcs {
		if err := m.CompatibleWith(s); err != nil {
			return fmt.Errorf("source %d: %w", i, err)
		}
	}
	hn, mn := m.cfg.Hidden, m.cfg.Outputs
	sumInv := mat.New(hn, hn) // Σ_k P_k⁻¹ − (K−1)·λ·I
	rhs := mat.New(hn, mn)    // Σ_k P_k⁻¹·β_k
	pinv := mat.New(hn, hn)
	tmp := mat.New(hn, mn)
	total := 0
	for i, s := range srcs {
		if err := mat.Inverse(pinv, s.p); err != nil {
			return fmt.Errorf("oselm: merge source %d: invert P: %w", i, err)
		}
		for j, v := range pinv.Data {
			sumInv.Data[j] += v
		}
		mat.Mul(tmp, pinv, s.Beta())
		for j, v := range tmp.Data {
			rhs.Data[j] += v
		}
		total += s.inits
	}
	sumInv.AddDiag(-float64(len(srcs)-1) * m.cfg.Ridge)
	pNew := mat.New(hn, hn)
	if err := mat.Inverse(pNew, sumInv); err != nil {
		return fmt.Errorf("oselm: merge: invert joint gram: %w", err)
	}
	betaNew := mat.New(hn, mn)
	mat.Mul(betaNew, pNew, rhs)
	if !mat.AllFinite(pNew.Data) || !mat.AllFinite(betaNew.Data) {
		return errors.New("oselm: merge produced non-finite state")
	}
	// Install only after every source combined cleanly: a failed merge
	// must leave m exactly as it was.
	copy(m.p.Data, pNew.Data)
	m.p.SymmetrizeInPlace() // the RLS recursion assumes symmetric P
	if m.beta32 != nil {
		mat.ConvertVec(m.beta32.Data, betaNew.Data)
	} else {
		copy(m.beta.Data, betaNew.Data)
	}
	m.inits = total
	m.wdCount = 0
	return nil
}

// Merge replaces the autoencoder's learned state with the closed-form
// combination of the sources' states (see Model.Merge). Score metrics
// must match: the metric is part of what peers agree on.
func (a *Autoencoder) Merge(srcs ...*Autoencoder) error {
	ms := make([]*Model, len(srcs))
	for i, s := range srcs {
		if s == nil {
			return mergeErrf("nil autoencoder")
		}
		if s.metric != a.metric {
			return mergeErrf("score metric %v vs %v", a.metric, s.metric)
		}
		ms[i] = s.model
	}
	return a.model.Merge(ms...)
}

// Fingerprint returns the autoencoder's merge-compatibility
// fingerprint: the model's, folded with the score metric.
func (a *Autoencoder) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	v := a.model.Fingerprint() ^ (uint64(a.metric) + 1)
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

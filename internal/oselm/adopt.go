package oselm

import (
	"errors"
	"fmt"
)

// AdoptState copies src's learned and random state into m in place:
// the random projection (W, b), the learned output weights β, the RLS
// inverse-covariance P, the sequential-init counter and the watchdog
// phase. Both models must share one configuration. Adoption exists for
// restores that must not rebind pointers — a Monitor or a wrapping
// stage holds this model, so a checkpointed model is poured into the
// live instance rather than swapped for it. After AdoptState, m
// continues a stream bit-identically to src (the watchdog phase is
// copied because a re-symmetrisation pass landing on a different
// sample would change bits). The watchdog's lifetime reset counter is
// deliberately kept — it is m's health history, not model state.
func (m *Model) AdoptState(src *Model) error {
	if src == nil {
		return errors.New("oselm: AdoptState from nil model")
	}
	if m.cfg != src.cfg {
		return fmt.Errorf("oselm: AdoptState config mismatch: have %+v, adopting %+v", m.cfg, src.cfg)
	}
	if m.w32 != nil {
		copy(m.w32.Data, src.w32.Data)
		copy(m.bias32, src.bias32)
		copy(m.beta32.Data, src.beta32.Data)
	} else {
		copy(m.w.Data, src.w.Data)
		copy(m.bias, src.bias)
		copy(m.beta.Data, src.beta.Data)
	}
	copy(m.p.Data, src.p.Data)
	m.inits = src.inits
	m.wdCount = src.wdCount
	return nil
}

// AdoptState copies src's model state into the autoencoder in place;
// the score metric must match (it is part of the serialised identity).
func (a *Autoencoder) AdoptState(src *Autoencoder) error {
	if src == nil {
		return errors.New("oselm: AdoptState from nil autoencoder")
	}
	if a.metric != src.metric {
		return fmt.Errorf("oselm: AdoptState metric mismatch: %v vs %v", a.metric, src.metric)
	}
	return a.model.AdoptState(src.model)
}

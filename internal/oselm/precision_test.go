package oselm

import (
	"math"
	"testing"

	"edgedrift/internal/rng"
)

// TestMemoryBytesPerPrecision pins the memory audit to its closed form
// for every backend: the RLS training state (P, h, P·h, e) is always
// float64, while the inference-side slabs scale with the element width.
func TestMemoryBytesPerPrecision(t *testing.T) {
	const d, h, m = 16, 22, 16
	training := 8 * (h*h + h + h + m) // P, h, P·h, e — always f64
	infSlabs := h*d + h + h*m         // W, bias, β
	staging := h + d + m + h + m      // h32, x32, o32, u32, e32
	cases := []struct {
		prec      Precision
		wantTotal int
		wantInf   int
	}{
		{Float64, training + 8*infSlabs, 8 * (infSlabs + h)},
		{Float32, training + 4*(infSlabs+staging), 4 * (infSlabs + h)},
	}
	for _, tc := range cases {
		mdl, err := New(Config{Inputs: d, Hidden: h, Outputs: m, Precision: tc.prec}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got := mdl.MemoryBytes(); got != tc.wantTotal {
			t.Errorf("%v MemoryBytes = %d, want %d", tc.prec, got, tc.wantTotal)
		}
		if got := mdl.InferenceBytes(); got != tc.wantInf {
			t.Errorf("%v InferenceBytes = %d, want %d", tc.prec, got, tc.wantInf)
		}
	}
	// The deployment contract: float32 inference state is exactly half
	// of float64 at equal shape.
	if 2*cases[1].wantInf != cases[0].wantInf {
		t.Fatalf("f32 inference bytes %d not exactly half of f64 %d", cases[1].wantInf, cases[0].wantInf)
	}
}

// precisionPair builds two models of identical shape and seed, one per
// trainable backend, so the float32 model starts as the rounded image of
// the float64 one.
func precisionPair(t *testing.T, d, h int) (*Model, *Model) {
	t.Helper()
	m64, err := New(Config{Inputs: d, Hidden: h, Outputs: d}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m32, err := New(Config{Inputs: d, Hidden: h, Outputs: d, Precision: Float32}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return m64, m32
}

// TestFloat32TracksFloat64 trains both backends on the same stream and
// checks the float32 predictions stay within single-precision rounding
// of the float64 reference throughout.
func TestFloat32TracksFloat64(t *testing.T) {
	const d, h, n = 12, 22, 400
	m64, m32 := precisionPair(t, d, h)
	r := rng.New(3)
	x := make([]float64, d)
	o64 := make([]float64, d)
	o32 := make([]float64, d)
	worst := 0.0
	for i := 0; i < n; i++ {
		r.FillUniform(x, -1, 1)
		m64.Predict(o64, x)
		m32.Predict(o32, x)
		for j := range o64 {
			if diff := math.Abs(o64[j] - o32[j]); diff > worst {
				worst = diff
			}
		}
		m64.Train(x, x)
		m32.Train(x, x)
	}
	// Single-precision epsilon is ~1.2e-7; after hundreds of RLS steps
	// the accumulated rounding stays far below the anomaly-score scale
	// (the Table-2 tolerance methodology in DESIGN.md §11 builds on this).
	if worst > 1e-3 {
		t.Fatalf("float32 predictions drifted %g from float64, want <= 1e-3", worst)
	}
}

// TestFloat32ZeroAllocs extends the steady-state zero-allocation
// guarantee to the float32 backend's Predict and Train paths.
func TestFloat32ZeroAllocs(t *testing.T) {
	m, err := New(Config{Inputs: 64, Hidden: 22, Outputs: 64, Precision: Float32}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	out := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	m.Train(x, x)
	if n := testing.AllocsPerRun(200, func() { m.Predict(out, x) }); n != 0 {
		t.Fatalf("f32 Predict allocates %v objects per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() { m.Train(x, x) }); n != 0 {
		t.Fatalf("f32 Train allocates %v objects per call, want 0", n)
	}
}

// TestFixed16NotTrainable pins the constructor error: the Q16.16 backend
// is inference-only and must be produced by quantising a fitted model,
// never by training.
func TestFixed16NotTrainable(t *testing.T) {
	if _, err := New(Config{Inputs: 8, Hidden: 4, Outputs: 8, Precision: Fixed16}, rng.New(1)); err == nil {
		t.Fatal("New accepted a Fixed16 training config")
	}
}

// TestParsePrecision pins the accepted spellings and the error shape for
// unknown ones (driftbench -precision leans on this).
func TestParsePrecision(t *testing.T) {
	ok := map[string]Precision{
		"f64": Float64, "float64": Float64,
		"f32": Float32, "float32": Float32,
		"q16": Fixed16, "fixed16": Fixed16,
	}
	for s, want := range ok {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision accepted f16")
	}
}

package oselm

import (
	"bytes"
	"math"
	"testing"

	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

func trainedModel(t *testing.T) *Model {
	t.Helper()
	m, err := New(Config{Inputs: 6, Hidden: 9, Outputs: 3, Ridge: 0.01}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		x := make([]float64, 6)
		r.FillNorm(x, 0, 1)
		tgt := []float64{x[0] + x[1], x[2] * 2, -x[3]}
		m.Train(x, tgt)
	}
	return m
}

func TestSaveLoadFloat64ExactRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	n, err := m.Save(&buf, Float64)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SamplesSeen() != m.SamplesSeen() {
		t.Fatalf("SamplesSeen %d vs %d", got.SamplesSeen(), m.SamplesSeen())
	}
	if d := mat.MaxAbsDiff(got.Beta(), m.Beta()); d != 0 {
		t.Fatalf("β differs by %v after exact round trip", d)
	}
	// Predictions must be bit-identical.
	x := []float64{1, -1, 0.5, 2, -0.25, 0}
	a := m.Predict(nil, x)
	b := got.Predict(nil, x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Continued training must behave identically.
	m.Train(x, []float64{0, 0, 0})
	got.Train(x, []float64{0, 0, 0})
	if d := mat.MaxAbsDiff(got.Beta(), m.Beta()); d != 0 {
		t.Fatalf("post-load training diverged by %v", d)
	}
}

func TestSaveLoadFloat32Lossy(t *testing.T) {
	m := trainedModel(t)
	var b64, b32 bytes.Buffer
	if _, err := m.Save(&b64, Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(&b32, Float32); err != nil {
		t.Fatal(err)
	}
	// Float32 artifact is roughly half the size (headers aside).
	if b32.Len() >= b64.Len()*3/4 {
		t.Fatalf("float32 artifact %d not clearly smaller than %d", b32.Len(), b64.Len())
	}
	got, err := Load(&b32)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -1, 0.5, 2, -0.25, 0}
	a := m.Predict(nil, x)
	b := got.Predict(nil, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-4*(1+math.Abs(a[i])) {
			t.Fatalf("float32 prediction error too large at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model at all"))); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty stream")
	}
	// Valid magic, bad precision byte.
	bad := append([]byte("OSELM1"), 99)
	if _, err := Load(bytes.NewReader(bad)); err != ErrBadFormat {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Fatal("expected error on truncated stream")
	}
}

func TestAutoencoderSaveLoad(t *testing.T) {
	ae, err := NewAutoencoder(Config{Inputs: 5, Hidden: 3}, L1Mean, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 100; i++ {
		x := make([]float64, 5)
		r.FillNorm(x, 0, 1)
		ae.Train(x)
	}
	var buf bytes.Buffer
	if _, err := ae.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAutoencoder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	if a, b := ae.Score(x), got.Score(x); a != b {
		t.Fatalf("scores differ: %v vs %v", a, b)
	}
}

func TestLoadAutoencoderRejectsNonAutoencoder(t *testing.T) {
	m := trainedModel(t) // Inputs 6 ≠ Outputs 3
	var buf bytes.Buffer
	// Fake the autoencoder wrapper: metric word + model.
	if err := writeU32(&buf, uint32(MSE)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAutoencoder(&buf); err == nil {
		t.Fatal("expected non-autoencoder rejection")
	}
}

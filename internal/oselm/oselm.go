// Package oselm implements the Online Sequential Extreme Learning Machine
// (Liang et al. 2006) and its forgetting-factor variant used by ONLAD
// (Tsukada et al. 2020) — the discriminative substrate of the paper.
//
// An OS-ELM is a single-hidden-layer network y = β·g(W·x + b) whose input
// weights W and biases b are random and fixed; only the output weights β
// are learned, by recursive least squares. With the training chunk size
// fixed to one — the configuration the paper uses so "pseudo inverse
// operation of matrixes can be eliminated" — the update is a rank-1
// Sherman-Morrison recursion over the H×H matrix P:
//
//	P ← P − P·h·hᵀ·P / (1 + hᵀ·P·h)
//	β ← β + P·h·(tᵀ − hᵀ·β)
//
// With a forgetting factor α ∈ (0,1] (ONLAD), older samples decay:
//
//	P ← (1/α)·(P − P·h·hᵀ·P / (α + hᵀ·P·h))
//
// Memory per model is H² + H·M + H·D + H floats — independent of how many
// samples have been seen, which is what fits in a 264 kB microcontroller.
package oselm

import (
	"errors"
	"fmt"
	"math"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// Sigmoid is g(z) = 1/(1+e^(−z)), the paper's default.
	Sigmoid Activation = iota
	// Tanh is g(z) = tanh(z).
	Tanh
	// Linear is g(z) = z (useful for testing the RLS algebra exactly).
	Linear
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Config describes an OS-ELM instance.
type Config struct {
	// Inputs is the input dimension D (required).
	Inputs int
	// Hidden is the hidden-layer width H (required).
	Hidden int
	// Outputs is the output dimension M (required; equals Inputs for the
	// autoencoder use).
	Outputs int
	// Activation selects the hidden nonlinearity; default Sigmoid.
	Activation Activation
	// Forgetting is the ONLAD forgetting factor α. Zero means 1 (no
	// forgetting, plain OS-ELM). Must lie in (0, 1].
	Forgetting float64
	// Ridge is the regularisation λ used for P's initialisation
	// (P₀ = (1/λ)·I when training starts purely sequentially, or
	// (HᵀH + λI)⁻¹ for batch initialisation). Zero means 1e-3.
	Ridge float64
	// WeightScale bounds the uniform draw for W and b, [−s, s]. Zero
	// means 1.
	WeightScale float64
	// Precision selects the numeric backend for the inference-side state
	// (W, b, β and the activation buffers). Float64 — the zero value — is
	// the historical full-precision path; Float32 halves the inference
	// footprint while the RLS recursion keeps P and its scratch at
	// float64 for conditioning, crossing the precision boundary once per
	// sample. Fixed16 is inference-only and rejected here: train at a
	// float precision and quantise via internal/fixed.
	Precision Precision
}

func (c Config) withDefaults() (Config, error) {
	if c.Inputs <= 0 || c.Hidden <= 0 || c.Outputs <= 0 {
		return c, fmt.Errorf("oselm: dimensions must be positive, got D=%d H=%d M=%d", c.Inputs, c.Hidden, c.Outputs)
	}
	if c.Forgetting == 0 {
		c.Forgetting = 1
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 {
		return c, fmt.Errorf("oselm: forgetting factor %v out of (0,1]", c.Forgetting)
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-3
	}
	if c.Ridge < 0 {
		return c, errors.New("oselm: negative ridge")
	}
	if c.WeightScale == 0 {
		c.WeightScale = 1
	}
	switch c.Precision {
	case Float64, Float32:
	case Fixed16:
		return c, errors.New("oselm: Fixed16 is inference-only; train at f64 or f32 and quantise via internal/fixed")
	default:
		return c, fmt.Errorf("oselm: unknown precision %v", c.Precision)
	}
	return c, nil
}

// Model is an OS-ELM instance. It is not safe for concurrent use.
type Model struct {
	cfg Config

	w    *mat.Matrix // Hidden×Inputs random input weights (Float64 backend)
	bias []float64   // Hidden biases (Float64 backend)
	beta *mat.Matrix // Hidden×Outputs learned output weights (Float64 backend)
	p    *mat.Matrix // Hidden×Hidden inverse-covariance state (always float64)

	// Float32 backend state. When cfg.Precision == Float32 the model owns
	// its inference-side parameters at float32 and the float64 twins above
	// (w, bias, beta) are nil; P and the RLS scratch stay float64 so the
	// Sherman-Morrison recursion keeps its conditioning. The staging
	// buffers carry values across the precision boundary each sample
	// without allocating.
	w32    *mat.MatrixOf[float32] // Hidden×Inputs random input weights
	bias32 []float32              // Hidden biases
	beta32 *mat.MatrixOf[float32] // Hidden×Outputs learned output weights
	h32    []float32              // hidden activations
	x32    []float32              // input narrowed to float32
	o32    []float32              // forward output βᵀ·h
	u32    []float32              // RLS gain P·h narrowed to float32
	e32    []float32              // residual narrowed to float32

	// scratch buffers reused across calls
	h     []float64 // hidden activations (float64 image on the f32 path)
	ph    []float64 // P·h
	e     []float64 // residual tᵀ − hᵀβ
	ops   *opcount.Counter
	inits int // samples consumed since last Reset (sequential-only training)

	// bb is the batched-forward scratch, allocated lazily on the first
	// batch scoring call (see batch.go); nil on per-sample-only models.
	bb *batchScratch

	// RLS health watchdog state; see watchdog().
	wdPeriod   int     // trains between watchdog passes
	wdCount    int     // trains since the last pass
	wdResets   uint64  // divergence repairs since creation
	traceLimit float64 // tr(P) above this counts as divergence
}

// Watchdog defaults. The period keeps the O(H²) P scan amortised to a
// fraction of one Train (which is itself O(H²)); the trace limit is a
// large multiple of tr(P₀) = H/λ — RLS shrinks P as evidence
// accumulates, so sustained growth past that is divergence, not data.
const (
	defaultWatchdogPeriod     = 64
	defaultTraceLimitFactor   = 1e6
	watchdogTraceLimitMinimum = 1e12
	// watchdogAsymmetryTol is the relative symmetry-loss threshold above
	// which the watchdog re-symmetrises P. Independent rounding of the
	// (i,j)/(j,i) rank-1 updates sits many orders of magnitude below it.
	watchdogAsymmetryTol = 1e-8
)

// New creates a model with random input weights drawn from r and the
// purely sequential initialisation P = (1/λ)·I, β = 0. This is the
// configuration deployable on a microcontroller: no batch pseudo-inverse
// ever happens.
func New(cfg Config, r *rng.Rand) (*Model, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := alloc(c)
	if m.w32 != nil {
		// Draw the projection at float64 from the same RNG stream as the
		// full-precision backend and narrow, so an f32 model with a given
		// seed is the rounded image of the f64 model with that seed —
		// which is what makes cross-precision parity tests meaningful.
		wd := make([]float64, len(m.w32.Data))
		bd := make([]float64, len(m.bias32))
		r.FillUniform(wd, -c.WeightScale, c.WeightScale)
		r.FillUniform(bd, -c.WeightScale, c.WeightScale)
		mat.ConvertVec(m.w32.Data, wd)
		mat.ConvertVec(m.bias32, bd)
	} else {
		r.FillUniform(m.w.Data, -c.WeightScale, c.WeightScale)
		r.FillUniform(m.bias, -c.WeightScale, c.WeightScale)
	}
	m.resetState()
	return m, nil
}

// alloc builds a model with the backend state the configuration's
// precision selects, leaving weights unset. P, the RLS scratch and the
// float64 activation image are allocated for every backend.
func alloc(c Config) *Model {
	m := &Model{
		cfg: c,
		p:   mat.New(c.Hidden, c.Hidden),
		h:   make([]float64, c.Hidden),
		ph:  make([]float64, c.Hidden),
		e:   make([]float64, c.Outputs),
	}
	if c.Precision == Float32 {
		m.w32 = mat.NewOf[float32](c.Hidden, c.Inputs)
		m.bias32 = make([]float32, c.Hidden)
		m.beta32 = mat.NewOf[float32](c.Hidden, c.Outputs)
		m.h32 = make([]float32, c.Hidden)
		m.x32 = make([]float32, c.Inputs)
		m.o32 = make([]float32, c.Outputs)
		m.u32 = make([]float32, c.Hidden)
		m.e32 = make([]float32, c.Outputs)
	} else {
		m.w = mat.New(c.Hidden, c.Inputs)
		m.bias = make([]float64, c.Hidden)
		m.beta = mat.New(c.Hidden, c.Outputs)
	}
	m.initWatchdog()
	return m
}

// initWatchdog sets the watchdog defaults from the configuration.
//
// The periodic watchdog defaults on only at Forgetting == 1 — the
// paper's deployed configuration. There tr(P) starts at H/λ and is
// non-increasing (each rank-1 update subtracts a PSD term), so trace
// growth or symmetry loss can only mean numerical divergence. With
// forgetting < 1, unbounded P growth — and eventual divergence — is the
// variant's documented pathology, the behaviour the paper's comparison
// tables record; silently repairing it would misrepresent that
// baseline, so the periodic watchdog stays off unless a caller opts in
// via SetWatchdogPeriod, which re-arms the per-sample denominator guard
// in Train along with the periodic scan.
func (m *Model) initWatchdog() {
	if m.cfg.Forgetting < 1 {
		m.wdPeriod = 0
		m.traceLimit = math.Inf(1)
		return
	}
	m.wdPeriod = defaultWatchdogPeriod
	m.traceLimit = defaultTraceLimitFactor * float64(m.cfg.Hidden) / m.cfg.Ridge
	if m.traceLimit < watchdogTraceLimitMinimum {
		m.traceLimit = watchdogTraceLimitMinimum
	}
}

// resetState restores the sequential-learning start state, keeping the
// random projection.
func (m *Model) resetState() {
	m.zeroBeta()
	m.p.Zero()
	m.p.AddDiag(1 / m.cfg.Ridge)
	m.inits = 0
	m.wdCount = 0
}

// Reset clears everything learned (β and P) while keeping the fixed
// random input weights, which is how the proposed method reconstructs a
// model after a drift: the projection stays, the least-squares state
// restarts.
func (m *Model) Reset() { m.resetState() }

// zeroBeta clears the learned output weights on whichever backend owns
// them.
func (m *Model) zeroBeta() {
	if m.beta32 != nil {
		m.beta32.Zero()
		return
	}
	m.beta.Zero()
}

// betaFinite reports whether every learned output weight is finite.
func (m *Model) betaFinite() bool {
	if m.beta32 != nil {
		return mat.AllFinite(m.beta32.Data)
	}
	return mat.AllFinite(m.beta.Data)
}

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// Precision returns the compute precision of the inference-side state.
func (m *Model) Precision() Precision { return m.cfg.Precision }

// SamplesSeen returns the number of sequential training samples folded in
// since creation or the last Reset.
func (m *Model) SamplesSeen() int { return m.inits }

// SetOps attaches an operation counter (nil detaches).
func (m *Model) SetOps(c *opcount.Counter) { m.ops = c }

// hiddenKernel computes the hidden activation vector g(W·x + b) into
// dst at the element type E — the one forward kernel every float
// backend instantiates. At E = float64 the conversions are identity
// operations, so the float64 path is bit-for-bit the historical one.
func hiddenKernel[E mat.Element](dst []E, w *mat.MatrixOf[E], bias, x []E, act Activation) {
	mat.MulVec(dst, w, x)
	activateKernel(dst, bias, act)
}

// activateKernel applies g(z + b) in place — factored out of
// hiddenKernel so the batched forward (which computes the matvec part as
// a GEMM) and the float32 SIMD path run the exact same element-wise
// arithmetic as the per-sample kernel: bias add and activation at E,
// transcendental evaluated at float64 and narrowed, identically in every
// entry point.
func activateKernel[E mat.Element](dst, bias []E, act Activation) {
	for i := range dst {
		z := dst[i] + bias[i]
		switch act {
		case Sigmoid:
			dst[i] = E(1 / (1 + math.Exp(float64(-z))))
		case Tanh:
			dst[i] = E(math.Tanh(float64(z)))
		case Linear:
			dst[i] = z
		}
	}
}

// opsHidden charges the operation counter for one hidden-layer pass;
// the count is precision-independent.
func (m *Model) opsHidden() {
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Inputs)
	m.ops.AddAdd(m.cfg.Hidden)
	if m.cfg.Activation != Linear {
		m.ops.AddExp(m.cfg.Hidden)
		m.ops.AddDiv(m.cfg.Hidden)
	}
}

// hiddenInto computes the hidden activation vector for x into dst
// (Float64 backend).
func (m *Model) hiddenInto(dst, x []float64) {
	if len(x) != m.cfg.Inputs {
		panic(fmt.Sprintf("oselm: input dimension %d, want %d", len(x), m.cfg.Inputs))
	}
	hiddenKernel(dst, m.w, m.bias, x, m.cfg.Activation)
	m.opsHidden()
}

// hidden32 narrows x into the staging buffer and computes the hidden
// activations into h32 (Float32 backend).
func (m *Model) hidden32(x []float64) {
	if len(x) != m.cfg.Inputs {
		panic(fmt.Sprintf("oselm: input dimension %d, want %d", len(x), m.cfg.Inputs))
	}
	mat.ConvertVec(m.x32, x)
	// The concrete float32 matvec dispatches to the SIMD kernels when the
	// CPU has them; the batched path runs the same kernel, which is what
	// keeps batch and per-sample f32 scores bit-identical (see mat/f32.go).
	mat.MulVecF32(m.h32, m.w32, m.x32)
	activateKernel(m.h32, m.bias32, m.cfg.Activation)
	m.opsHidden()
}

// Predict writes the network output for x into dst (len Outputs) and
// returns dst. If dst is nil a new slice is allocated.
func (m *Model) Predict(dst, x []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.cfg.Outputs)
	}
	if len(dst) != m.cfg.Outputs {
		panic("oselm: bad output buffer length")
	}
	if m.w32 != nil {
		m.hidden32(x)
		mat.MulVecTransF32(m.o32, m.beta32, m.h32)
		m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
		mat.ConvertVec(dst, m.o32)
		return dst
	}
	m.hiddenInto(m.h, x)
	mat.MulVecTrans(dst, m.beta, m.h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
	return dst
}

// Train folds one (x, t) sample into the model with the rank-1 RLS
// update. This is the only training path used at deployment time.
func (m *Model) Train(x, t []float64) {
	if len(t) != m.cfg.Outputs {
		panic(fmt.Sprintf("oselm: target dimension %d, want %d", len(t), m.cfg.Outputs))
	}
	h := m.h
	if m.w32 != nil {
		// Forward pass at float32; widen the activations once so the
		// Sherman-Morrison recursion below runs untouched at float64.
		m.hidden32(x)
		mat.ConvertVec(h, m.h32)
	} else {
		m.hiddenInto(h, x)
	}

	// ph = P·h
	mat.MulVec(m.ph, m.p, h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)

	alpha := m.cfg.Forgetting
	denom := alpha + mat.Dot(h, m.ph)
	m.ops.AddMulAdd(m.cfg.Hidden)
	m.ops.AddAdd(1)

	// With P symmetric positive definite, hᵀPh ≥ 0 and denom ≥ α > 0. A
	// non-positive or non-finite denominator means the inverse-covariance
	// state has already diverged; folding the sample in would poison β as
	// well. Repair P instead of continuing with garbage. Gated on the
	// same switch as the periodic watchdog (see initWatchdog): forgetting
	// variants run unguarded by default because their divergence is the
	// recorded baseline behaviour, not a fault.
	if m.wdPeriod > 0 && (!(denom > 0) || math.IsInf(denom, 0)) {
		m.repairDivergence()
		return
	}

	// P ← (P − ph·phᵀ/denom) / alpha
	m.p.AddScaledOuter(-1/denom, m.ph, m.ph)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)
	m.ops.AddDiv(1)
	if alpha != 1 {
		m.p.Scale(1 / alpha)
		m.ops.AddMul(m.cfg.Hidden * m.cfg.Hidden)
	}

	// e = t − βᵀh (residual against the *pre-update* β, using post-update
	// P per the OS-ELM recursion: β ← β + P·h·eᵀ). On the float32 backend
	// the forward product runs at the precision β actually lives at, so
	// the residual measures — and therefore corrects — the rounded
	// model's real error rather than an idealised float64 shadow's.
	if m.beta32 != nil {
		mat.MulVecTransF32(m.o32, m.beta32, m.h32)
		m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
		for i := range m.e {
			m.e[i] = t[i] - float64(m.o32[i])
		}
	} else {
		mat.MulVecTrans(m.e, m.beta, h)
		m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
		for i := range m.e {
			m.e[i] = t[i] - m.e[i]
		}
	}
	m.ops.AddAdd(m.cfg.Outputs)

	// gain k = P·h (with the updated P).
	mat.MulVec(m.ph, m.p, h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)
	if m.beta32 != nil {
		mat.ConvertVec(m.u32, m.ph)
		mat.ConvertVec(m.e32, m.e)
		m.beta32.AddScaledOuter(1, m.u32, m.e32)
	} else {
		m.beta.AddScaledOuter(1, m.ph, m.e)
	}
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)

	m.inits++
	m.wdCount++
	if m.wdCount >= m.wdPeriod {
		m.wdCount = 0
		m.watchdog()
	}
}

// Health is the RLS watchdog's structured view of the model state.
type Health struct {
	// PTrace is tr(P), a cheap condition proxy: it starts at H/λ and
	// shrinks as evidence accumulates; sustained explosion means the
	// Sherman-Morrison recursion has diverged.
	PTrace float64
	// PFinite and BetaFinite report whether every element of P / β is
	// finite right now.
	PFinite, BetaFinite bool
	// WatchdogResets counts divergence repairs (P re-initialised from the
	// calibration path) since the model was created.
	WatchdogResets uint64
}

// HealthNow scans the learned state and reports the watchdog's view of
// it. The scan is O(H² + H·M); call it at diagnostic cadence, not per
// sample — the periodic watchdog already guards the hot path.
func (m *Model) HealthNow() Health {
	return Health{
		PTrace:         m.p.Trace(),
		PFinite:        mat.AllFinite(m.p.Data),
		BetaFinite:     m.betaFinite(),
		WatchdogResets: m.wdResets,
	}
}

// WatchdogResets returns how many times the watchdog re-initialised P.
func (m *Model) WatchdogResets() uint64 { return m.wdResets }

// SetWatchdogPeriod overrides how many Train calls elapse between
// watchdog passes; period ≤ 0 disables the watchdog entirely — both the
// periodic pass and the in-update denominator guard. A positive period
// arms both, including on forgetting models where the watchdog is off
// by default (see initWatchdog).
func (m *Model) SetWatchdogPeriod(period int) {
	m.wdPeriod = period
	m.wdCount = 0
}

// watchdog is the periodic RLS health pass: it re-symmetrises P (rank-1
// updates preserve symmetry only up to floating-point rounding, and the
// Sherman-Morrison recursion assumes a symmetric P) and repairs outright
// divergence — non-finite elements or a trace explosion — by
// re-initialising P from the calibration path P₀ = (1/λ)·I. β is kept
// when finite: the learned mapping is still valid, only the step-size
// state is rebuilt.
func (m *Model) watchdog() {
	if m.wdPeriod <= 0 {
		return
	}
	tr := m.p.Trace()
	if math.IsNaN(tr) || math.IsInf(tr, 0) || tr > m.traceLimit || !mat.AllFinite(m.p.Data) {
		m.repairDivergence()
		return
	}
	// Re-symmetrise only when symmetry loss is material relative to P's
	// own scale. The rank-1 kernel rounds (i,j) and (j,i) independently,
	// so ulp-level mismatch is normal background noise; averaging it away
	// would needlessly perturb the model's trajectory every period.
	// Material loss only appears when state has been corrupted upstream.
	if diff, mag := m.p.Asymmetry(); diff > watchdogAsymmetryTol*mag {
		m.p.SymmetrizeInPlace()
	}
}

// repairDivergence is the graceful-degradation path: the inverse
// covariance restarts from P₀ exactly as a fresh sequential calibration
// would, and β is zeroed only if it was itself poisoned.
func (m *Model) repairDivergence() {
	m.p.Zero()
	m.p.AddDiag(1 / m.cfg.Ridge)
	if !m.betaFinite() {
		m.zeroBeta()
	}
	m.wdCount = 0
	m.wdResets++
}

// InitTrainBatch performs the classic OS-ELM batch initialisation from
// N₀ ≥ 1 samples: P = (HᵀH + λI)⁻¹, β = P·Hᵀ·T. The paper's deployed
// configuration avoids this path on-device; it is provided for parity
// with the original algorithm and for host-side initial training.
func (m *Model) InitTrainBatch(xs, ts [][]float64) error {
	if len(xs) == 0 || len(xs) != len(ts) {
		return fmt.Errorf("oselm: batch init needs matched non-empty samples, got %d/%d", len(xs), len(ts))
	}
	n := len(xs)
	hm := mat.New(n, m.cfg.Hidden)
	tm := mat.New(n, m.cfg.Outputs)
	for i, x := range xs {
		if m.w32 != nil {
			m.hidden32(x)
			mat.ConvertVec(hm.Row(i), m.h32)
		} else {
			m.hiddenInto(hm.Row(i), x)
		}
		t := ts[i]
		if len(t) != m.cfg.Outputs {
			return fmt.Errorf("oselm: target %d has dimension %d, want %d", i, len(t), m.cfg.Outputs)
		}
		copy(tm.Row(i), t)
	}
	gram := mat.New(m.cfg.Hidden, m.cfg.Hidden)
	mat.RidgeGram(gram, hm, m.cfg.Ridge)
	if err := mat.Inverse(m.p, gram); err != nil {
		return fmt.Errorf("oselm: batch init: %w", err)
	}
	ht := mat.New(m.cfg.Hidden, m.cfg.Outputs)
	mat.MulTransA(ht, hm, tm)
	if m.beta32 != nil {
		// Solve at float64 and narrow once — batch init is a host-side
		// path, so the conditioning of the normal equations wins over
		// keeping every intermediate at the deployment width.
		tmp := mat.New(m.cfg.Hidden, m.cfg.Outputs)
		mat.Mul(tmp, m.p, ht)
		mat.ConvertVec(m.beta32.Data, tmp.Data)
	} else {
		mat.Mul(m.beta, m.p, ht)
	}
	m.inits = n
	return nil
}

// Beta returns a deep copy of the learned output weights at float64,
// mainly for tests and serialisation.
func (m *Model) Beta() *mat.Matrix {
	if m.beta32 != nil {
		b := mat.New(m.beta32.Rows, m.beta32.Cols)
		mat.ConvertVec(b.Data, m.beta32.Data)
		return b
	}
	return m.beta.Clone()
}

// Weights returns the raw parameters at float64 — input weights W
// (row-major Hidden×Inputs), biases, and output weights β (row-major
// Hidden×Outputs) — for quantisation and export. The float64 backend
// returns live views the caller must not mutate; the float32 backend
// returns widened copies.
func (m *Model) Weights() (w, bias, beta []float64) {
	if m.w32 != nil {
		w = make([]float64, len(m.w32.Data))
		bias = make([]float64, len(m.bias32))
		beta = make([]float64, len(m.beta32.Data))
		mat.ConvertVec(w, m.w32.Data)
		mat.ConvertVec(bias, m.bias32)
		mat.ConvertVec(beta, m.beta32.Data)
		return w, bias, beta
	}
	return m.w.Data, m.bias, m.beta.Data
}

// MemoryBytes reports the number of bytes of persistent state the model
// retains (the quantity audited in the paper's Table 4), derived from
// the backend's element width. Scratch and staging buffers are included
// since a deployed implementation must also hold them; P and the RLS
// scratch are counted at float64 on every backend because that is where
// they live (see Config.Precision).
func (m *Model) MemoryBytes() int {
	const f64 = 8
	training := f64 * (len(m.p.Data) + len(m.h) + len(m.ph) + len(m.e))
	if m.bb != nil {
		training += m.bb.bytes()
	}
	es := m.cfg.Precision.Bytes()
	if m.w32 != nil {
		return training + es*(len(m.w32.Data)+len(m.bias32)+len(m.beta32.Data)+
			len(m.h32)+len(m.x32)+len(m.o32)+len(m.u32)+len(m.e32))
	}
	return training + es*(len(m.w.Data)+len(m.bias)+len(m.beta.Data))
}

// InferenceBytes reports the bytes of inference-side state alone — the
// projection, biases, output weights and activation buffer. This is the
// footprint a deploy-only port carries (the RLS training state stays
// host-side) and it scales directly with the element width: float32 is
// exactly half of float64 at equal shape.
func (m *Model) InferenceBytes() int {
	es := m.cfg.Precision.Bytes()
	if m.w32 != nil {
		return es * (len(m.w32.Data) + len(m.bias32) + len(m.beta32.Data) + len(m.h32))
	}
	return es * (len(m.w.Data) + len(m.bias) + len(m.beta.Data) + len(m.h))
}

// Package oselm implements the Online Sequential Extreme Learning Machine
// (Liang et al. 2006) and its forgetting-factor variant used by ONLAD
// (Tsukada et al. 2020) — the discriminative substrate of the paper.
//
// An OS-ELM is a single-hidden-layer network y = β·g(W·x + b) whose input
// weights W and biases b are random and fixed; only the output weights β
// are learned, by recursive least squares. With the training chunk size
// fixed to one — the configuration the paper uses so "pseudo inverse
// operation of matrixes can be eliminated" — the update is a rank-1
// Sherman-Morrison recursion over the H×H matrix P:
//
//	P ← P − P·h·hᵀ·P / (1 + hᵀ·P·h)
//	β ← β + P·h·(tᵀ − hᵀ·β)
//
// With a forgetting factor α ∈ (0,1] (ONLAD), older samples decay:
//
//	P ← (1/α)·(P − P·h·hᵀ·P / (α + hᵀ·P·h))
//
// Memory per model is H² + H·M + H·D + H floats — independent of how many
// samples have been seen, which is what fits in a 264 kB microcontroller.
package oselm

import (
	"errors"
	"fmt"
	"math"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

const (
	// Sigmoid is g(z) = 1/(1+e^(−z)), the paper's default.
	Sigmoid Activation = iota
	// Tanh is g(z) = tanh(z).
	Tanh
	// Linear is g(z) = z (useful for testing the RLS algebra exactly).
	Linear
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	case Linear:
		return "linear"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// Config describes an OS-ELM instance.
type Config struct {
	// Inputs is the input dimension D (required).
	Inputs int
	// Hidden is the hidden-layer width H (required).
	Hidden int
	// Outputs is the output dimension M (required; equals Inputs for the
	// autoencoder use).
	Outputs int
	// Activation selects the hidden nonlinearity; default Sigmoid.
	Activation Activation
	// Forgetting is the ONLAD forgetting factor α. Zero means 1 (no
	// forgetting, plain OS-ELM). Must lie in (0, 1].
	Forgetting float64
	// Ridge is the regularisation λ used for P's initialisation
	// (P₀ = (1/λ)·I when training starts purely sequentially, or
	// (HᵀH + λI)⁻¹ for batch initialisation). Zero means 1e-3.
	Ridge float64
	// WeightScale bounds the uniform draw for W and b, [−s, s]. Zero
	// means 1.
	WeightScale float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Inputs <= 0 || c.Hidden <= 0 || c.Outputs <= 0 {
		return c, fmt.Errorf("oselm: dimensions must be positive, got D=%d H=%d M=%d", c.Inputs, c.Hidden, c.Outputs)
	}
	if c.Forgetting == 0 {
		c.Forgetting = 1
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 {
		return c, fmt.Errorf("oselm: forgetting factor %v out of (0,1]", c.Forgetting)
	}
	if c.Ridge == 0 {
		c.Ridge = 1e-3
	}
	if c.Ridge < 0 {
		return c, errors.New("oselm: negative ridge")
	}
	if c.WeightScale == 0 {
		c.WeightScale = 1
	}
	return c, nil
}

// Model is an OS-ELM instance. It is not safe for concurrent use.
type Model struct {
	cfg Config

	w    *mat.Matrix // Hidden×Inputs random input weights
	bias []float64   // Hidden biases
	beta *mat.Matrix // Hidden×Outputs learned output weights
	p    *mat.Matrix // Hidden×Hidden inverse-covariance state

	// scratch buffers reused across calls
	h     []float64 // hidden activations
	ph    []float64 // P·h
	e     []float64 // residual tᵀ − hᵀβ
	ops   *opcount.Counter
	inits int // samples consumed since last Reset (sequential-only training)

	// RLS health watchdog state; see watchdog().
	wdPeriod   int     // trains between watchdog passes
	wdCount    int     // trains since the last pass
	wdResets   uint64  // divergence repairs since creation
	traceLimit float64 // tr(P) above this counts as divergence
}

// Watchdog defaults. The period keeps the O(H²) P scan amortised to a
// fraction of one Train (which is itself O(H²)); the trace limit is a
// large multiple of tr(P₀) = H/λ — RLS shrinks P as evidence
// accumulates, so sustained growth past that is divergence, not data.
const (
	defaultWatchdogPeriod     = 64
	defaultTraceLimitFactor   = 1e6
	watchdogTraceLimitMinimum = 1e12
	// watchdogAsymmetryTol is the relative symmetry-loss threshold above
	// which the watchdog re-symmetrises P. Independent rounding of the
	// (i,j)/(j,i) rank-1 updates sits many orders of magnitude below it.
	watchdogAsymmetryTol = 1e-8
)

// New creates a model with random input weights drawn from r and the
// purely sequential initialisation P = (1/λ)·I, β = 0. This is the
// configuration deployable on a microcontroller: no batch pseudo-inverse
// ever happens.
func New(cfg Config, r *rng.Rand) (*Model, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Model{
		cfg:  c,
		w:    mat.New(c.Hidden, c.Inputs),
		bias: make([]float64, c.Hidden),
		beta: mat.New(c.Hidden, c.Outputs),
		p:    mat.New(c.Hidden, c.Hidden),
		h:    make([]float64, c.Hidden),
		ph:   make([]float64, c.Hidden),
		e:    make([]float64, c.Outputs),
	}
	r.FillUniform(m.w.Data, -c.WeightScale, c.WeightScale)
	r.FillUniform(m.bias, -c.WeightScale, c.WeightScale)
	m.initWatchdog()
	m.resetState()
	return m, nil
}

// initWatchdog sets the watchdog defaults from the configuration.
//
// The periodic watchdog defaults on only at Forgetting == 1 — the
// paper's deployed configuration. There tr(P) starts at H/λ and is
// non-increasing (each rank-1 update subtracts a PSD term), so trace
// growth or symmetry loss can only mean numerical divergence. With
// forgetting < 1, unbounded P growth — and eventual divergence — is the
// variant's documented pathology, the behaviour the paper's comparison
// tables record; silently repairing it would misrepresent that
// baseline, so the periodic watchdog stays off unless a caller opts in
// via SetWatchdogPeriod, which re-arms the per-sample denominator guard
// in Train along with the periodic scan.
func (m *Model) initWatchdog() {
	if m.cfg.Forgetting < 1 {
		m.wdPeriod = 0
		m.traceLimit = math.Inf(1)
		return
	}
	m.wdPeriod = defaultWatchdogPeriod
	m.traceLimit = defaultTraceLimitFactor * float64(m.cfg.Hidden) / m.cfg.Ridge
	if m.traceLimit < watchdogTraceLimitMinimum {
		m.traceLimit = watchdogTraceLimitMinimum
	}
}

// resetState restores the sequential-learning start state, keeping the
// random projection.
func (m *Model) resetState() {
	m.beta.Zero()
	m.p.Zero()
	m.p.AddDiag(1 / m.cfg.Ridge)
	m.inits = 0
	m.wdCount = 0
}

// Reset clears everything learned (β and P) while keeping the fixed
// random input weights, which is how the proposed method reconstructs a
// model after a drift: the projection stays, the least-squares state
// restarts.
func (m *Model) Reset() { m.resetState() }

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// SamplesSeen returns the number of sequential training samples folded in
// since creation or the last Reset.
func (m *Model) SamplesSeen() int { return m.inits }

// SetOps attaches an operation counter (nil detaches).
func (m *Model) SetOps(c *opcount.Counter) { m.ops = c }

// hiddenInto computes the hidden activation vector for x into dst.
func (m *Model) hiddenInto(dst, x []float64) {
	if len(x) != m.cfg.Inputs {
		panic(fmt.Sprintf("oselm: input dimension %d, want %d", len(x), m.cfg.Inputs))
	}
	mat.MulVec(dst, m.w, x)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Inputs)
	for i := range dst {
		z := dst[i] + m.bias[i]
		switch m.cfg.Activation {
		case Sigmoid:
			dst[i] = 1 / (1 + math.Exp(-z))
		case Tanh:
			dst[i] = math.Tanh(z)
		case Linear:
			dst[i] = z
		}
	}
	m.ops.AddAdd(m.cfg.Hidden)
	if m.cfg.Activation != Linear {
		m.ops.AddExp(m.cfg.Hidden)
		m.ops.AddDiv(m.cfg.Hidden)
	}
}

// Predict writes the network output for x into dst (len Outputs) and
// returns dst. If dst is nil a new slice is allocated.
func (m *Model) Predict(dst, x []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.cfg.Outputs)
	}
	if len(dst) != m.cfg.Outputs {
		panic("oselm: bad output buffer length")
	}
	m.hiddenInto(m.h, x)
	mat.MulVecTrans(dst, m.beta, m.h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
	return dst
}

// Train folds one (x, t) sample into the model with the rank-1 RLS
// update. This is the only training path used at deployment time.
func (m *Model) Train(x, t []float64) {
	if len(t) != m.cfg.Outputs {
		panic(fmt.Sprintf("oselm: target dimension %d, want %d", len(t), m.cfg.Outputs))
	}
	h := m.h
	m.hiddenInto(h, x)

	// ph = P·h
	mat.MulVec(m.ph, m.p, h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)

	alpha := m.cfg.Forgetting
	denom := alpha + mat.Dot(h, m.ph)
	m.ops.AddMulAdd(m.cfg.Hidden)
	m.ops.AddAdd(1)

	// With P symmetric positive definite, hᵀPh ≥ 0 and denom ≥ α > 0. A
	// non-positive or non-finite denominator means the inverse-covariance
	// state has already diverged; folding the sample in would poison β as
	// well. Repair P instead of continuing with garbage. Gated on the
	// same switch as the periodic watchdog (see initWatchdog): forgetting
	// variants run unguarded by default because their divergence is the
	// recorded baseline behaviour, not a fault.
	if m.wdPeriod > 0 && (!(denom > 0) || math.IsInf(denom, 0)) {
		m.repairDivergence()
		return
	}

	// P ← (P − ph·phᵀ/denom) / alpha
	m.p.AddScaledOuter(-1/denom, m.ph, m.ph)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)
	m.ops.AddDiv(1)
	if alpha != 1 {
		m.p.Scale(1 / alpha)
		m.ops.AddMul(m.cfg.Hidden * m.cfg.Hidden)
	}

	// e = t − βᵀh (residual against the *pre-update* β, using post-update
	// P per the OS-ELM recursion: β ← β + P·h·eᵀ).
	mat.MulVecTrans(m.e, m.beta, h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
	for i := range m.e {
		m.e[i] = t[i] - m.e[i]
	}
	m.ops.AddAdd(m.cfg.Outputs)

	// gain k = P·h (with the updated P).
	mat.MulVec(m.ph, m.p, h)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Hidden)
	m.beta.AddScaledOuter(1, m.ph, m.e)
	m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)

	m.inits++
	m.wdCount++
	if m.wdCount >= m.wdPeriod {
		m.wdCount = 0
		m.watchdog()
	}
}

// Health is the RLS watchdog's structured view of the model state.
type Health struct {
	// PTrace is tr(P), a cheap condition proxy: it starts at H/λ and
	// shrinks as evidence accumulates; sustained explosion means the
	// Sherman-Morrison recursion has diverged.
	PTrace float64
	// PFinite and BetaFinite report whether every element of P / β is
	// finite right now.
	PFinite, BetaFinite bool
	// WatchdogResets counts divergence repairs (P re-initialised from the
	// calibration path) since the model was created.
	WatchdogResets uint64
}

// HealthNow scans the learned state and reports the watchdog's view of
// it. The scan is O(H² + H·M); call it at diagnostic cadence, not per
// sample — the periodic watchdog already guards the hot path.
func (m *Model) HealthNow() Health {
	return Health{
		PTrace:         m.p.Trace(),
		PFinite:        mat.AllFinite(m.p.Data),
		BetaFinite:     mat.AllFinite(m.beta.Data),
		WatchdogResets: m.wdResets,
	}
}

// WatchdogResets returns how many times the watchdog re-initialised P.
func (m *Model) WatchdogResets() uint64 { return m.wdResets }

// SetWatchdogPeriod overrides how many Train calls elapse between
// watchdog passes; period ≤ 0 disables the watchdog entirely — both the
// periodic pass and the in-update denominator guard. A positive period
// arms both, including on forgetting models where the watchdog is off
// by default (see initWatchdog).
func (m *Model) SetWatchdogPeriod(period int) {
	m.wdPeriod = period
	m.wdCount = 0
}

// watchdog is the periodic RLS health pass: it re-symmetrises P (rank-1
// updates preserve symmetry only up to floating-point rounding, and the
// Sherman-Morrison recursion assumes a symmetric P) and repairs outright
// divergence — non-finite elements or a trace explosion — by
// re-initialising P from the calibration path P₀ = (1/λ)·I. β is kept
// when finite: the learned mapping is still valid, only the step-size
// state is rebuilt.
func (m *Model) watchdog() {
	if m.wdPeriod <= 0 {
		return
	}
	tr := m.p.Trace()
	if math.IsNaN(tr) || math.IsInf(tr, 0) || tr > m.traceLimit || !mat.AllFinite(m.p.Data) {
		m.repairDivergence()
		return
	}
	// Re-symmetrise only when symmetry loss is material relative to P's
	// own scale. The rank-1 kernel rounds (i,j) and (j,i) independently,
	// so ulp-level mismatch is normal background noise; averaging it away
	// would needlessly perturb the model's trajectory every period.
	// Material loss only appears when state has been corrupted upstream.
	if diff, mag := m.p.Asymmetry(); diff > watchdogAsymmetryTol*mag {
		m.p.SymmetrizeInPlace()
	}
}

// repairDivergence is the graceful-degradation path: the inverse
// covariance restarts from P₀ exactly as a fresh sequential calibration
// would, and β is zeroed only if it was itself poisoned.
func (m *Model) repairDivergence() {
	m.p.Zero()
	m.p.AddDiag(1 / m.cfg.Ridge)
	if !mat.AllFinite(m.beta.Data) {
		m.beta.Zero()
	}
	m.wdCount = 0
	m.wdResets++
}

// InitTrainBatch performs the classic OS-ELM batch initialisation from
// N₀ ≥ 1 samples: P = (HᵀH + λI)⁻¹, β = P·Hᵀ·T. The paper's deployed
// configuration avoids this path on-device; it is provided for parity
// with the original algorithm and for host-side initial training.
func (m *Model) InitTrainBatch(xs, ts [][]float64) error {
	if len(xs) == 0 || len(xs) != len(ts) {
		return fmt.Errorf("oselm: batch init needs matched non-empty samples, got %d/%d", len(xs), len(ts))
	}
	n := len(xs)
	hm := mat.New(n, m.cfg.Hidden)
	tm := mat.New(n, m.cfg.Outputs)
	for i, x := range xs {
		m.hiddenInto(hm.Row(i), x)
		t := ts[i]
		if len(t) != m.cfg.Outputs {
			return fmt.Errorf("oselm: target %d has dimension %d, want %d", i, len(t), m.cfg.Outputs)
		}
		copy(tm.Row(i), t)
	}
	gram := mat.New(m.cfg.Hidden, m.cfg.Hidden)
	mat.RidgeGram(gram, hm, m.cfg.Ridge)
	if err := mat.Inverse(m.p, gram); err != nil {
		return fmt.Errorf("oselm: batch init: %w", err)
	}
	ht := mat.New(m.cfg.Hidden, m.cfg.Outputs)
	mat.MulTransA(ht, hm, tm)
	mat.Mul(m.beta, m.p, ht)
	m.inits = n
	return nil
}

// Beta returns a deep copy of the learned output weights, mainly for
// tests and serialisation.
func (m *Model) Beta() *mat.Matrix { return m.beta.Clone() }

// Weights returns views of the raw parameters — input weights W
// (row-major Hidden×Inputs), biases, and output weights β (row-major
// Hidden×Outputs) — for quantisation and export. Callers must not
// mutate them.
func (m *Model) Weights() (w, bias, beta []float64) {
	return m.w.Data, m.bias, m.beta.Data
}

// MemoryBytes reports the number of bytes of persistent state the model
// retains (the quantity audited in the paper's Table 4). Scratch buffers
// are included since a deployed implementation must also hold them.
func (m *Model) MemoryBytes() int {
	const f = 8 // float64
	persistent := len(m.w.Data) + len(m.bias) + len(m.beta.Data) + len(m.p.Data)
	scratch := len(m.h) + len(m.ph) + len(m.e)
	return f * (persistent + scratch)
}

package oselm

import (
	"fmt"
	"testing"

	"edgedrift/internal/rng"
)

// Per-sample hot-path benchmarks at the detector's real shapes. Score is
// the prediction cost (hidden projection + reconstruction), Train adds
// the rank-1 RLS update; together they bound the per-sample latency the
// paper reports in Tables 5–6.
func benchShapes() []struct{ d, h int } {
	return []struct{ d, h int }{{511, 22}, {511, 64}, {511, 128}}
}

func BenchmarkScore(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("D%d_H%d", s.d, s.h), func(b *testing.B) {
			ae, err := NewAutoencoder(Config{Inputs: s.d, Hidden: s.h}, MSE, rng.New(7))
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, s.d)
			rng.New(3).FillUniform(x, -1, 1)
			ae.Train(x)
			b.ReportAllocs()
			b.ResetTimer()
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += ae.Score(x)
			}
			benchSink = sum
		})
	}
}

func BenchmarkTrain(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("D%d_H%d", s.d, s.h), func(b *testing.B) {
			m, err := New(Config{Inputs: s.d, Hidden: s.h, Outputs: s.d}, rng.New(7))
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, s.d)
			rng.New(3).FillUniform(x, -1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Train(x, x)
			}
		})
	}
}

var benchSink float64

package oselm

import (
	"fmt"
	"testing"

	"edgedrift/internal/rng"
)

// Per-sample hot-path benchmarks at the detector's real shapes. Score is
// the prediction cost (hidden projection + reconstruction), Train adds
// the rank-1 RLS update; together they bound the per-sample latency the
// paper reports in Tables 5–6.
func benchShapes() []struct{ d, h int } {
	return []struct{ d, h int }{{511, 22}, {511, 64}, {511, 128}}
}

func BenchmarkScore(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("D%d_H%d", s.d, s.h), func(b *testing.B) {
			ae, err := NewAutoencoder(Config{Inputs: s.d, Hidden: s.h}, MSE, rng.New(7))
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, s.d)
			rng.New(3).FillUniform(x, -1, 1)
			ae.Train(x)
			b.ReportAllocs()
			b.ResetTimer()
			var sum float64
			for i := 0; i < b.N; i++ {
				sum += ae.Score(x)
			}
			benchSink = sum
		})
	}
}

func BenchmarkTrain(b *testing.B) {
	for _, s := range benchShapes() {
		b.Run(fmt.Sprintf("D%d_H%d", s.d, s.h), func(b *testing.B) {
			m, err := New(Config{Inputs: s.d, Hidden: s.h, Outputs: s.d}, rng.New(7))
			if err != nil {
				b.Fatal(err)
			}
			x := make([]float64, s.d)
			rng.New(3).FillUniform(x, -1, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Train(x, x)
			}
		})
	}
}

// BenchmarkScoreBatch measures the batched scoring path at the paper's
// cooling-fan shape for both float backends across the batch axis.
// ns/op is per sample: the batch1 row is the degenerate batch and the
// batch64 row is one full chunk, so the spread is the GEMM win.
func BenchmarkScoreBatch(b *testing.B) {
	const d, h = 511, 22
	for _, prec := range []Precision{Float64, Float32} {
		ae, err := NewAutoencoder(Config{Inputs: d, Hidden: h, Precision: prec}, MSE, rng.New(7))
		if err != nil {
			b.Fatal(err)
		}
		seed := make([]float64, d)
		rng.New(3).FillUniform(seed, -1, 1)
		ae.Train(seed)
		for _, n := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%v/D%d_H%d/batch%d", prec, d, h, n), func(b *testing.B) {
				r := rng.New(5)
				xs := make([][]float64, n)
				for i := range xs {
					xs[i] = make([]float64, d)
					r.FillUniform(xs[i], -1, 1)
				}
				dst := make([]float64, n)
				ae.ScoreBatch(dst, xs) // prime lazy batch buffers
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += n {
					ae.ScoreBatch(dst, xs)
				}
				benchSink = dst[0]
			})
		}
	}
}

var benchSink float64

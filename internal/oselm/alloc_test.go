package oselm

import (
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// The per-sample path — Score, Predict, Train — must not allocate in
// steady state: on a 264 kB microcontroller every heap allocation is a
// latency spike and a fragmentation risk, and the paper's per-sample
// latency claims assume none happen. These tests lock that in; a
// regression here means a scratch buffer was dropped or a closure
// started escaping.

func allocModel(t testing.TB, d, h int) *Model {
	t.Helper()
	m, err := New(Config{Inputs: d, Hidden: h, Outputs: d}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPredictZeroAllocs(t *testing.T) {
	m := allocModel(t, 64, 22)
	x := make([]float64, 64)
	out := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	m.Train(x, x)
	if n := testing.AllocsPerRun(200, func() { m.Predict(out, x) }); n != 0 {
		t.Fatalf("Predict allocates %v objects per call, want 0", n)
	}
}

func TestTrainZeroAllocs(t *testing.T) {
	m := allocModel(t, 64, 22)
	x := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	if n := testing.AllocsPerRun(200, func() { m.Train(x, x) }); n != 0 {
		t.Fatalf("Train allocates %v objects per call, want 0", n)
	}
}

func TestScoreZeroAllocs(t *testing.T) {
	for _, metric := range []ScoreMetric{MSE, L1Mean, L2Norm} {
		ae, err := NewAutoencoder(Config{Inputs: 64, Hidden: 22}, metric, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, 64)
		rng.New(3).FillUniform(x, -1, 1)
		ae.Train(x)
		if n := testing.AllocsPerRun(200, func() { ae.Score(x) }); n != 0 {
			t.Fatalf("Score(%v) allocates %v objects per call, want 0", metric, n)
		}
	}
}

// Attaching an op counter must not change the allocation profile — the
// instrumented paper runs share the same hot path.
func TestTrainWithOpsZeroAllocs(t *testing.T) {
	m := allocModel(t, 64, 22)
	var ops opcount.Counter
	m.SetOps(&ops)
	x := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	if n := testing.AllocsPerRun(200, func() { m.Train(x, x) }); n != 0 {
		t.Fatalf("Train with ops counter allocates %v objects per call, want 0", n)
	}
}

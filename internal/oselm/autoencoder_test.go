package oselm

import (
	"math"
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// lineSamples draws points near the 1-D manifold (t, 2t, −t) embedded in
// R³, which a 2-hidden-unit autoencoder can compress well.
func lineSamples(r *rng.Rand, n int, noise float64) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		t := r.Uniform(-1, 1)
		xs[i] = []float64{
			t + r.Normal(0, noise),
			2*t + r.Normal(0, noise),
			-t + r.Normal(0, noise),
		}
	}
	return xs
}

func TestAutoencoderScoresInDistributionLower(t *testing.T) {
	ae, err := NewAutoencoder(Config{Inputs: 3, Hidden: 6, Ridge: 1e-3}, MSE, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for _, x := range lineSamples(r, 3000, 0.01) {
		ae.Train(x)
	}
	var in, out float64
	for i := 0; i < 200; i++ {
		in += ae.Score(lineSamples(r, 1, 0.01)[0])
		// Off-manifold point.
		y := make([]float64, 3)
		r.FillNorm(y, 3, 1)
		out += ae.Score(y)
	}
	if in/200*5 > out/200 {
		t.Fatalf("in-distribution score %v not clearly below out-of-distribution %v", in/200, out/200)
	}
}

func TestAutoencoderMetrics(t *testing.T) {
	for _, metric := range []ScoreMetric{MSE, L1Mean, L2Norm} {
		ae, err := NewAutoencoder(Config{Inputs: 2, Hidden: 3}, metric, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		// Fresh model: β = 0 so reconstruction is 0 and the score of x is
		// a known function of x.
		x := []float64{3, 4}
		got := ae.Score(x)
		var want float64
		switch metric {
		case MSE:
			want = (9.0 + 16.0) / 2
		case L1Mean:
			want = (3.0 + 4.0) / 2
		case L2Norm:
			want = 5
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("%v score = %v, want %v", metric, got, want)
		}
	}
}

func TestScoreMetricString(t *testing.T) {
	if MSE.String() != "mse" || L1Mean.String() != "l1" || L2Norm.String() != "l2" {
		t.Fatal("metric names")
	}
	if ScoreMetric(9).String() != "unknown" {
		t.Fatal("unknown metric name")
	}
}

func TestAutoencoderBatchInitAndReset(t *testing.T) {
	ae, _ := NewAutoencoder(Config{Inputs: 3, Hidden: 4}, MSE, rng.New(4))
	xs := lineSamples(rng.New(5), 50, 0.05)
	if err := ae.InitTrainBatch(xs); err != nil {
		t.Fatal(err)
	}
	if ae.SamplesSeen() != 50 {
		t.Fatalf("SamplesSeen = %d", ae.SamplesSeen())
	}
	trained := ae.Score(xs[0])
	ae.Reset()
	if ae.SamplesSeen() != 0 {
		t.Fatal("Reset failed")
	}
	fresh := ae.Score(xs[0])
	if fresh <= trained {
		t.Fatalf("reset score %v should exceed trained score %v", fresh, trained)
	}
}

func TestAutoencoderOpsAndMemory(t *testing.T) {
	ae, _ := NewAutoencoder(Config{Inputs: 4, Hidden: 2}, L1Mean, rng.New(6))
	var c opcount.Counter
	ae.SetOps(&c)
	ae.Score([]float64{1, 2, 3, 4})
	if c.Abs != 4 {
		t.Fatalf("L1 score Abs count = %d, want 4", c.Abs)
	}
	if ae.MemoryBytes() <= ae.Model().MemoryBytes() {
		t.Fatal("autoencoder memory must include reconstruction buffer")
	}
}

func TestNewAutoencoderPropagatesConfigError(t *testing.T) {
	if _, err := NewAutoencoder(Config{Inputs: 0, Hidden: 2}, MSE, rng.New(7)); err == nil {
		t.Fatal("expected config error")
	}
}

package oselm

import (
	"fmt"

	"edgedrift/internal/mat"
)

// ConvertPrecision returns a new model computing at precision p whose
// state is the narrowed image of m's: W, b and β are converted to the
// target element width while the RLS inverse-covariance P — float64 on
// every backend — is copied bit-for-bit, together with the
// sequential-init counter and the watchdog phase. This is the model half
// of a runtime precision demotion: the caller keeps m aside as the
// retained origin, runs the converted twin, and promotion is simply
// resuming m — no widening ever happens, so the origin stays bit-exact.
//
// Only narrowing conversions are supported (Float64 → Float32 today;
// Fixed16 has its own quantisation path in internal/fixed). m is not
// mutated.
func (m *Model) ConvertPrecision(p Precision) (*Model, error) {
	if p == m.cfg.Precision {
		return nil, fmt.Errorf("oselm: ConvertPrecision to the current precision %v", p)
	}
	if m.cfg.Precision != Float64 || p != Float32 {
		return nil, fmt.Errorf("oselm: unsupported precision conversion %v → %v (only f64 → f32; use internal/fixed for q16)", m.cfg.Precision, p)
	}
	cfg := m.cfg
	cfg.Precision = p
	nm := alloc(cfg)
	mat.ConvertVec(nm.w32.Data, m.w.Data)
	mat.ConvertVec(nm.bias32, m.bias)
	mat.ConvertVec(nm.beta32.Data, m.beta.Data)
	copy(nm.p.Data, m.p.Data)
	nm.inits = m.inits
	nm.wdCount = m.wdCount
	nm.wdResets = m.wdResets
	return nm, nil
}

// ConvertPrecision returns the autoencoder's reduced-precision twin:
// the model converted (see Model.ConvertPrecision) under the same score
// metric. The receiver is not mutated.
func (a *Autoencoder) ConvertPrecision(p Precision) (*Autoencoder, error) {
	nm, err := a.model.ConvertPrecision(p)
	if err != nil {
		return nil, err
	}
	return &Autoencoder{
		model:  nm,
		metric: a.metric,
		recon:  make([]float64, nm.cfg.Inputs),
	}, nil
}

package oselm

import (
	"math"
	"testing"

	"edgedrift/internal/rng"
)

// TestConvertPrecisionState pins what the f64 → f32 conversion does to
// each slab: inference weights are narrowed elementwise, while the RLS
// inverse-covariance — the conditioning state promotion depends on — is
// copied bit for bit, along with the init counter and watchdog phase.
func TestConvertPrecisionState(t *testing.T) {
	const d, h = 10, 22
	m, err := New(Config{Inputs: d, Hidden: h, Outputs: d}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	x := make([]float64, d)
	for i := 0; i < 60; i++ {
		r.FillUniform(x, -1, 1)
		m.Train(x, x)
	}
	m32, err := m.ConvertPrecision(Float32)
	if err != nil {
		t.Fatal(err)
	}
	if m32.cfg.Precision != Float32 {
		t.Fatalf("twin precision %v", m32.cfg.Precision)
	}
	for i, v := range m.w.Data {
		if m32.w32.Data[i] != float32(v) {
			t.Fatalf("W[%d] not the narrowed image", i)
		}
	}
	for i, v := range m.bias {
		if m32.bias32[i] != float32(v) {
			t.Fatalf("bias[%d] not the narrowed image", i)
		}
	}
	for i, v := range m.beta.Data {
		if m32.beta32.Data[i] != float32(v) {
			t.Fatalf("beta[%d] not the narrowed image", i)
		}
	}
	for i, v := range m.p.Data {
		if m32.p.Data[i] != v {
			t.Fatalf("P[%d] not bit-identical: %v vs %v", i, m32.p.Data[i], v)
		}
	}
	if m32.inits != m.inits || m32.wdResets != m.wdResets {
		t.Fatal("init counter / watchdog state not carried")
	}

	// The origin must stay bit-exact while the twin trains on.
	wBefore := append([]float64(nil), m.w.Data...)
	betaBefore := append([]float64(nil), m.beta.Data...)
	pBefore := append([]float64(nil), m.p.Data...)
	o64 := make([]float64, d)
	o32 := make([]float64, d)
	worst := 0.0
	for i := 0; i < 50; i++ {
		r.FillUniform(x, -1, 1)
		m.Predict(o64, x)
		m32.Predict(o32, x)
		for j := range o64 {
			if diff := math.Abs(o64[j] - o32[j]); diff > worst {
				worst = diff
			}
		}
	}
	// At the conversion instant the twin is the rounded image of the
	// origin, so inference agrees to single-precision rounding.
	if worst > 1e-4 {
		t.Fatalf("converted twin %g from its origin at conversion time", worst)
	}
	// The twin keeps training; the frozen origin must not move a bit.
	for i := 0; i < 200; i++ {
		r.FillUniform(x, -1, 1)
		m32.Train(x, x)
	}
	for i := range wBefore {
		if m.w.Data[i] != wBefore[i] {
			t.Fatal("origin W mutated by the twin")
		}
	}
	for i := range betaBefore {
		if m.beta.Data[i] != betaBefore[i] {
			t.Fatal("origin beta mutated by the twin")
		}
	}
	for i := range pBefore {
		if m.p.Data[i] != pBefore[i] {
			t.Fatal("origin P mutated by the twin")
		}
	}
}

// TestConvertPrecisionRejects pins the conversion lattice: strictly
// f64 → f32, everything else is an error naming the pair.
func TestConvertPrecisionRejects(t *testing.T) {
	m64, err := New(Config{Inputs: 6, Hidden: 4, Outputs: 6}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m64.ConvertPrecision(Float64); err == nil {
		t.Fatal("accepted a same-precision conversion")
	}
	if _, err := m64.ConvertPrecision(Fixed16); err == nil {
		t.Fatal("accepted f64 → q16 (owned by internal/fixed)")
	}
	m32, err := New(Config{Inputs: 6, Hidden: 4, Outputs: 6, Precision: Float32}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m32.ConvertPrecision(Float64); err == nil {
		t.Fatal("accepted a widening f32 → f64 conversion")
	}
}

// TestAutoencoderConvertPrecision checks the autoencoder wrapper keeps
// the score metric across the conversion.
func TestAutoencoderConvertPrecision(t *testing.T) {
	ae, err := NewAutoencoder(Config{Inputs: 8, Hidden: 4}, MSE, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	twin, err := ae.ConvertPrecision(Float32)
	if err != nil {
		t.Fatal(err)
	}
	if twin.metric != ae.metric {
		t.Fatalf("metric %v, want %v", twin.metric, ae.metric)
	}
	if len(twin.recon) != 8 {
		t.Fatalf("recon buffer %d, want 8", len(twin.recon))
	}
}

package oselm

import (
	"math"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// ScoreMetric selects how an autoencoder turns a reconstruction residual
// into a scalar anomaly score.
type ScoreMetric int

const (
	// MSE is the mean squared reconstruction error, the default.
	MSE ScoreMetric = iota
	// L1Mean is the mean absolute reconstruction error.
	L1Mean
	// L2Norm is the Euclidean norm of the residual.
	L2Norm
)

// String implements fmt.Stringer.
func (s ScoreMetric) String() string {
	switch s {
	case MSE:
		return "mse"
	case L1Mean:
		return "l1"
	case L2Norm:
		return "l2"
	default:
		return "unknown"
	}
}

// Autoencoder wraps an OS-ELM whose targets are its inputs, yielding the
// unsupervised anomaly detector of the paper's §3.1: the reconstruction
// error is the anomaly score, and training on a sample pulls the score
// for similar samples down.
type Autoencoder struct {
	model  *Model
	metric ScoreMetric
	recon  []float64
}

// NewAutoencoder builds an autoencoder with the given input dimension,
// hidden width and general model options taken from cfg (Outputs is
// forced equal to Inputs).
func NewAutoencoder(cfg Config, metric ScoreMetric, r *rng.Rand) (*Autoencoder, error) {
	cfg.Outputs = cfg.Inputs
	m, err := New(cfg, r)
	if err != nil {
		return nil, err
	}
	return &Autoencoder{model: m, metric: metric, recon: make([]float64, cfg.Inputs)}, nil
}

// Score returns the reconstruction-error anomaly score of x.
func (a *Autoencoder) Score(x []float64) float64 {
	a.model.Predict(a.recon, x)
	return a.scoreFrom(x, a.recon)
}

// scoreFrom turns a reconstruction into the metric's scalar score. The
// residual is always computed at float64 — on the float32 backend the
// reconstruction is widened before this point, matching the per-sample
// Predict path — so ScoreBatch and Score share one metric kernel.
func (a *Autoencoder) scoreFrom(x, recon []float64) float64 {
	ops := a.model.ops
	d := len(x)
	switch a.metric {
	case L1Mean:
		var s float64
		for i, v := range x {
			s += math.Abs(v - recon[i])
		}
		ops.AddAbs(d)
		ops.AddAdd(d)
		ops.AddDiv(1)
		return s / float64(d)
	case L2Norm:
		var s float64
		for i, v := range x {
			r := v - recon[i]
			s += r * r
		}
		ops.AddMulAdd(d)
		ops.AddAdd(d)
		return math.Sqrt(s)
	default: // MSE
		var s float64
		for i, v := range x {
			r := v - recon[i]
			s += r * r
		}
		ops.AddMulAdd(d)
		ops.AddAdd(d)
		ops.AddDiv(1)
		return s / float64(d)
	}
}

// ScoreBatch writes the anomaly score of each xs[i] into dst[i],
// running the forward passes as batched GEMMs over chunks of up to 64
// samples (see Model.forwardBatch). Scores are bit-identical to calling
// Score per sample — the batched kernels only change the memory access
// pattern, never the per-sample arithmetic — and the call allocates
// nothing after the model's batch scratch exists. The model must not be
// trained between the samples of one batch; callers that interleave
// training fall back to per-sample Score.
func (a *Autoencoder) ScoreBatch(dst []float64, xs [][]float64) {
	if len(dst) != len(xs) {
		panic("oselm: ScoreBatch buffer length mismatch")
	}
	m := a.model
	for start := 0; start < len(xs); start += batchChunk {
		end := start + batchChunk
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[start:end]
		m.forwardBatch(chunk)
		for i := range chunk {
			if m.w32 != nil {
				mat.ConvertVec(a.recon, m.bb.ob32.Row(i))
				dst[start+i] = a.scoreFrom(chunk[i], a.recon)
			} else {
				dst[start+i] = a.scoreFrom(chunk[i], m.bb.ob.Row(i))
			}
		}
	}
}

// Train folds x into the autoencoder (target = input).
func (a *Autoencoder) Train(x []float64) { a.model.Train(x, x) }

// InitTrainBatch batch-initialises the autoencoder on xs.
func (a *Autoencoder) InitTrainBatch(xs [][]float64) error {
	return a.model.InitTrainBatch(xs, xs)
}

// Reset clears learned state, keeping the random projection (see
// Model.Reset).
func (a *Autoencoder) Reset() { a.model.Reset() }

// Model exposes the underlying OS-ELM.
func (a *Autoencoder) Model() *Model { return a.model }

// SetOps attaches an operation counter to the underlying model.
func (a *Autoencoder) SetOps(c *opcount.Counter) { a.model.SetOps(c) }

// SamplesSeen reports sequential samples since creation or Reset.
func (a *Autoencoder) SamplesSeen() int { return a.model.SamplesSeen() }

// Precision returns the compute precision of the underlying model.
func (a *Autoencoder) Precision() Precision { return a.model.cfg.Precision }

// MemoryBytes reports retained state including the reconstruction
// buffer, which is counted at the backend's element width: on the
// float32 backend the model already retains the width-matched
// reconstruction (its o32 staging buffer), so the float64 recon here is
// the widened image of state counted once.
func (a *Autoencoder) MemoryBytes() int {
	return a.model.MemoryBytes() + a.model.cfg.Precision.Bytes()*len(a.recon)
}

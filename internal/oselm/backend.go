package oselm

// Backend is the scoring surface a precision backend exposes: the
// float backends (this package's Autoencoder at Float64 or Float32)
// and the Q16.16 fixed-point backend (internal/fixed's ScoreBackend)
// all satisfy it, so callers can hold "an anomaly scorer at some
// precision" without caring which numeric core is underneath.
//
// Score accepts and returns float64 regardless of backend — the stream
// arrives as float64 and the detector thresholds at float64; each
// backend crosses the precision boundary internally.
type Backend interface {
	// Score returns the reconstruction-error anomaly score of x.
	Score(x []float64) float64
	// Precision identifies the numeric backend.
	Precision() Precision
	// MemoryBytes reports the backend's retained state.
	MemoryBytes() int
}

var _ Backend = (*Autoencoder)(nil)

package oselm

import (
	"fmt"

	"edgedrift/internal/mat"
)

// Batched forward pass: N samples through the autoencoder as two GEMMs
// (X·Wᵀ then H·β) with the bias/activation pass fused between them,
// instead of N pairs of matvecs. The win is memory traffic: per-sample
// scoring re-streams W and β for every sample, so at the paper's shapes
// the matvec is bandwidth-bound; the batched kernels stream each weight
// row once per block of samples. Arithmetic per sample is unchanged and
// — by the kernel-parity invariants in internal/mat — bit-identical to
// the per-sample path at every precision, which is what lets the
// detector layer batch scoring without perturbing the paper's results.

// batchChunk caps how many samples one batched forward processes: large
// enough to amortise the weight streams, small enough that the scratch
// (chunk·(D+H+M) elements) stays a few hundred kB at the paper's largest
// shapes, and the unit the layers above use to size their own buffers.
const batchChunk = 64

// batchScratch holds the lazily-allocated batch-forward buffers. Only
// the backing store for the model's own precision is allocated.
type batchScratch struct {
	// Float64 backend.
	hb *mat.Matrix // batchChunk×Hidden activations
	ob *mat.Matrix // batchChunk×Outputs forward outputs

	// Float32 backend.
	xb32 *mat.MatrixOf[float32] // batchChunk×Inputs staged inputs
	hb32 *mat.MatrixOf[float32] // batchChunk×Hidden activations
	ob32 *mat.MatrixOf[float32] // batchChunk×Outputs forward outputs
}

// bytes reports the scratch footprint for MemoryBytes.
func (b *batchScratch) bytes() int {
	n := 0
	if b.hb != nil {
		n += 8 * (len(b.hb.Data) + len(b.ob.Data))
	}
	if b.xb32 != nil {
		n += 4 * (len(b.xb32.Data) + len(b.hb32.Data) + len(b.ob32.Data))
	}
	return n
}

// ensureBatch allocates the batch scratch on first use. Per-sample-only
// deployments (including everything the paper's tables measure) never
// call a batch entry point, so they carry none of this state.
func (m *Model) ensureBatch() *batchScratch {
	if m.bb == nil {
		bb := &batchScratch{}
		if m.w32 != nil {
			bb.xb32 = mat.NewOf[float32](batchChunk, m.cfg.Inputs)
			bb.hb32 = mat.NewOf[float32](batchChunk, m.cfg.Hidden)
			bb.ob32 = mat.NewOf[float32](batchChunk, m.cfg.Outputs)
		} else {
			bb.hb = mat.New(batchChunk, m.cfg.Hidden)
			bb.ob = mat.New(batchChunk, m.cfg.Outputs)
		}
		m.bb = bb
	}
	return m.bb
}

// viewRows returns an n-row window onto m's first n rows — a value
// header over the same backing array, so the batch kernels can operate
// on a partial chunk without reslicing allocations.
func viewRows[E mat.Element](m *mat.MatrixOf[E], n int) mat.MatrixOf[E] {
	return mat.MatrixOf[E]{Rows: n, Cols: m.Cols, Data: m.Data[:n*m.Cols]}
}

// forwardBatch runs the forward pass for len(chunk) ≤ batchChunk samples,
// leaving per-sample outputs in the scratch rows (ob for the float64
// backend, ob32 for float32). The op counter is charged exactly as
// len(chunk) Predict calls would charge it.
func (m *Model) forwardBatch(chunk [][]float64) {
	bb := m.ensureBatch()
	n := len(chunk)
	if n > batchChunk {
		panic("oselm: forwardBatch chunk exceeds batchChunk")
	}
	if m.w32 != nil {
		xb := viewRows(bb.xb32, n)
		for i, x := range chunk {
			if len(x) != m.cfg.Inputs {
				panic(fmt.Sprintf("oselm: input dimension %d, want %d", len(x), m.cfg.Inputs))
			}
			mat.ConvertVec(xb.Row(i), x)
		}
		hb := viewRows(bb.hb32, n)
		mat.MulBatchF32(&hb, &xb, m.w32)
		for i := 0; i < n; i++ {
			activateKernel(hb.Row(i), m.bias32, m.cfg.Activation)
		}
		ob := viewRows(bb.ob32, n)
		mat.MulBatchTransF32(&ob, &hb, m.beta32)
	} else {
		hb := viewRows(bb.hb, n)
		mat.MulBatchRows(&hb, chunk, m.w)
		for i := 0; i < n; i++ {
			activateKernel(hb.Row(i), m.bias, m.cfg.Activation)
		}
		ob := viewRows(bb.ob, n)
		mat.MulBatchTrans(&ob, &hb, m.beta)
	}
	for i := 0; i < n; i++ {
		m.opsHidden()
		m.ops.AddMulAdd(m.cfg.Hidden * m.cfg.Outputs)
	}
}

package oselm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"edgedrift/internal/mat"
)

// Precision selects the on-wire float width for saved models.
type Precision byte

const (
	// Float64 round-trips the model exactly.
	Float64 Precision = 0
	// Float32 halves the artifact size for microcontroller deployment at
	// the cost of ~7 decimal digits; the paper's Pico port stores its
	// weights this way.
	Float32 Precision = 1
)

// magic identifies a serialised OS-ELM model (format version 1).
var magic = [6]byte{'O', 'S', 'E', 'L', 'M', '1'}

// ErrBadFormat reports a stream that is not a serialised model of a
// known version.
var ErrBadFormat = errors.New("oselm: not a serialised OS-ELM model (or unsupported version)")

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeFloats(w io.Writer, prec Precision, xs []float64) error {
	if prec == Float32 {
		buf := make([]byte, 4*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
		}
		_, err := w.Write(buf)
		return err
	}
	buf := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, prec Precision, dst []float64) error {
	if prec == Float32 {
		buf := make([]byte, 4*len(dst))
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		return nil
	}
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeF64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Save serialises the model (random projection, learned state and
// configuration) to w in a versioned little-endian format. It returns
// the number of bytes written.
func (m *Model) Save(w io.Writer, prec Precision) (int64, error) {
	cw := &countingWriter{w: w}
	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	if _, err := cw.Write([]byte{byte(prec)}); err != nil {
		return cw.n, err
	}
	for _, v := range []uint32{
		uint32(m.cfg.Inputs), uint32(m.cfg.Hidden), uint32(m.cfg.Outputs),
		uint32(m.cfg.Activation), uint32(m.inits),
	} {
		if err := writeU32(cw, v); err != nil {
			return cw.n, err
		}
	}
	for _, v := range []float64{m.cfg.Forgetting, m.cfg.Ridge, m.cfg.WeightScale} {
		if err := writeF64(cw, v); err != nil {
			return cw.n, err
		}
	}
	for _, xs := range [][]float64{m.w.Data, m.bias, m.beta.Data, m.p.Data} {
		if err := writeFloats(cw, prec, xs); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// Load deserialises a model written by Save. The returned model is ready
// to predict and to continue sequential training.
func Load(r io.Reader) (*Model, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("oselm: load header: %w", err)
	}
	if got != magic {
		return nil, ErrBadFormat
	}
	var precByte [1]byte
	if _, err := io.ReadFull(r, precByte[:]); err != nil {
		return nil, err
	}
	prec := Precision(precByte[0])
	if prec != Float64 && prec != Float32 {
		return nil, ErrBadFormat
	}
	var u [5]uint32
	for i := range u {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		u[i] = v
	}
	var f [3]float64
	for i := range f {
		v, err := readF64(r)
		if err != nil {
			return nil, err
		}
		f[i] = v
	}
	cfg := Config{
		Inputs:      int(u[0]),
		Hidden:      int(u[1]),
		Outputs:     int(u[2]),
		Activation:  Activation(u[3]),
		Forgetting:  f[0],
		Ridge:       f[1],
		WeightScale: f[2],
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("oselm: load config: %w", err)
	}
	m := newEmpty(c)
	for _, xs := range [][]float64{m.w.Data, m.bias, m.beta.Data, m.p.Data} {
		if err := readFloats(r, prec, xs); err != nil {
			return nil, fmt.Errorf("oselm: load weights: %w", err)
		}
	}
	m.inits = int(u[4])
	return m, nil
}

// newEmpty allocates a model without drawing random weights (they will
// be overwritten by a load).
func newEmpty(c Config) *Model {
	return &Model{
		cfg:  c,
		w:    mat.New(c.Hidden, c.Inputs),
		bias: make([]float64, c.Hidden),
		beta: mat.New(c.Hidden, c.Outputs),
		p:    mat.New(c.Hidden, c.Hidden),
		h:    make([]float64, c.Hidden),
		ph:   make([]float64, c.Hidden),
		e:    make([]float64, c.Outputs),
	}
}

// SaveAutoencoder serialises an autoencoder (its model plus the score
// metric).
func (a *Autoencoder) Save(w io.Writer, prec Precision) (int64, error) {
	cw := &countingWriter{w: w}
	if err := writeU32(cw, uint32(a.metric)); err != nil {
		return cw.n, err
	}
	n, err := a.model.Save(cw, prec)
	return 4 + n, err
}

// LoadAutoencoder deserialises an autoencoder written by Save.
func LoadAutoencoder(r io.Reader) (*Autoencoder, error) {
	metric, err := readU32(r)
	if err != nil {
		return nil, err
	}
	m, err := Load(r)
	if err != nil {
		return nil, err
	}
	if m.cfg.Inputs != m.cfg.Outputs {
		return nil, errors.New("oselm: serialised model is not an autoencoder")
	}
	return &Autoencoder{
		model:  m,
		metric: ScoreMetric(metric),
		recon:  make([]float64, m.cfg.Inputs),
	}, nil
}

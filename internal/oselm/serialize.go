package oselm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/mat"
)

// Precision identifies a numeric backend: the element width model
// state is stored and — since the precision refactor — computed at.
// It doubles as the on-wire float width for saved models.
type Precision byte

const (
	// Float64 is the full-precision backend (and exact round-trip wire
	// format), the historical default.
	Float64 Precision = 0
	// Float32 halves weight memory and artifact size for 32-bit edge
	// deployment at the cost of ~7 decimal digits; the paper's Pico port
	// stores its weights this way. As a compute precision it applies to
	// the inference-side state only — RLS training keeps P at float64.
	Float32 Precision = 1
	// Fixed16 is the Q16.16 fixed-point backend (internal/fixed) for
	// FPU-less targets. It is inference-only: models are built by
	// quantising a trained float model, never trained at this width, and
	// it is not a wire format.
	Fixed16 Precision = 2
)

// Bytes returns the element width in bytes.
func (p Precision) Bytes() int {
	if p == Float64 {
		return 8
	}
	return 4 // Float32 and Fixed16 are both 32-bit words
}

// String implements fmt.Stringer with the spellings the driftbench
// -precision flag accepts.
func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case Float32:
		return "f32"
	case Fixed16:
		return "q16"
	default:
		return fmt.Sprintf("Precision(%d)", byte(p))
	}
}

// ParsePrecision maps the driftbench flag spellings back to a
// Precision, listing the valid set in the error so callers can surface
// it verbatim as a usage message.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return Float64, nil
	case "f32", "float32":
		return Float32, nil
	case "q16", "fixed16":
		return Fixed16, nil
	}
	return 0, fmt.Errorf("unknown precision %q (valid: f64, f32, q16)", s)
}

// magicV1..magicV3 identify serialised OS-ELM models. v2 appends a
// CRC32 footer (see internal/ckpt) so corruption fails loudly at load
// time; v3 adds a compute-precision byte after the wire-precision byte
// so a reduced-precision model round-trips as one (v1/v2 artifacts load
// as float64-compute, their historical behaviour). Save writes v3; Load
// accepts all three.
var (
	magicV1 = [6]byte{'O', 'S', 'E', 'L', 'M', '1'}
	magicV2 = [6]byte{'O', 'S', 'E', 'L', 'M', '2'}
	magicV3 = [6]byte{'O', 'S', 'E', 'L', 'M', '3'}
)

// ErrBadFormat reports a stream that is not a serialised model of a
// known version, or a v2 artifact that is truncated or corrupt.
var ErrBadFormat = errors.New("oselm: not a serialised OS-ELM model (or unsupported version)")

// Sanity bounds on deserialised dimensions: large enough for any model
// this library can usefully run, small enough that a bit-flipped header
// can never demand an absurd allocation before the checksum is checked.
const (
	maxLoadDim         = 1 << 16
	maxLoadMatrixElems = 1 << 26
)

func writeFloats(w io.Writer, prec Precision, xs []float64) error {
	if prec == Float32 {
		buf := make([]byte, 4*len(xs))
		for i, v := range xs {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(float32(v)))
		}
		_, err := w.Write(buf)
		return err
	}
	buf := make([]byte, 8*len(xs))
	for i, v := range xs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, prec Precision, dst []float64) error {
	if prec == Float32 {
		buf := make([]byte, 4*len(dst))
		if _, err := io.ReadFull(r, buf); err != nil {
			return err
		}
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:])))
		}
		return nil
	}
	buf := make([]byte, 8*len(dst))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeF64(w io.Writer, v float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	_, err := w.Write(buf[:])
	return err
}

func readF64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}

// Save serialises the model (random projection, learned state and
// configuration) to w in the versioned little-endian v3 format: the
// payload followed by a CRC32 footer. prec selects the on-wire element
// width; the model's compute precision is carried separately so a
// float32 model reloads as one. It returns the number of bytes written.
func (m *Model) Save(w io.Writer, prec Precision) (int64, error) {
	cw := ckpt.NewWriter(w)
	if prec != Float64 && prec != Float32 {
		return 0, fmt.Errorf("oselm: %v is not a wire precision (valid: f64, f32)", prec)
	}
	if _, err := cw.Write(magicV3[:]); err != nil {
		return cw.N(), err
	}
	if _, err := cw.Write([]byte{byte(prec), byte(m.cfg.Precision)}); err != nil {
		return cw.N(), err
	}
	for _, v := range []uint32{
		uint32(m.cfg.Inputs), uint32(m.cfg.Hidden), uint32(m.cfg.Outputs),
		uint32(m.cfg.Activation), uint32(m.inits),
	} {
		if err := writeU32(cw, v); err != nil {
			return cw.N(), err
		}
	}
	for _, v := range []float64{m.cfg.Forgetting, m.cfg.Ridge, m.cfg.WeightScale} {
		if err := writeF64(cw, v); err != nil {
			return cw.N(), err
		}
	}
	for _, xs := range m.exportSlabs() {
		if err := writeFloats(cw, prec, xs); err != nil {
			return cw.N(), err
		}
	}
	if err := cw.WriteFooter(); err != nil {
		return cw.N(), err
	}
	return cw.N(), nil
}

// exportSlabs returns the persistent state in serialisation order
// (W, bias, β, P) as float64 slices. The float64 backend returns live
// views; the float32 backend materialises converted copies — Save is an
// export path, not a hot loop.
func (m *Model) exportSlabs() [][]float64 {
	if m.w32 == nil {
		return [][]float64{m.w.Data, m.bias, m.beta.Data, m.p.Data}
	}
	w := make([]float64, len(m.w32.Data))
	bias := make([]float64, len(m.bias32))
	beta := make([]float64, len(m.beta32.Data))
	mat.ConvertVec(w, m.w32.Data)
	mat.ConvertVec(bias, m.bias32)
	mat.ConvertVec(beta, m.beta32.Data)
	return [][]float64{w, bias, beta, m.p.Data}
}

// Load deserialises a model written by Save — the current checksummed v2
// format or the legacy v1 format. The returned model is ready to predict
// and to continue sequential training. In the v2 path every failure
// (truncation, checksum mismatch, implausible header) wraps ErrBadFormat
// so callers can classify corruption with errors.Is.
func Load(r io.Reader) (*Model, error) {
	m, _, err := loadVersioned(r)
	return m, err
}

// loadVersioned is Load plus the artifact version it found, so nesting
// callers (LoadAutoencoder) know whether an enclosing footer follows.
func loadVersioned(r io.Reader) (*Model, int, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, 0, badFormat(fmt.Errorf("load header: %w", err))
	}
	switch got {
	case magicV1:
		m, err := loadBody(r, 1)
		return m, 1, err
	case magicV2, magicV3:
		ver := 2
		if got == magicV3 {
			ver = 3
		}
		cr := ckpt.NewReader(r)
		cr.Fold(got[:])
		m, err := loadBody(cr, ver)
		if err != nil {
			return nil, ver, badFormat(err)
		}
		if err := cr.VerifyFooter(); err != nil {
			return nil, ver, badFormat(err)
		}
		return m, ver, nil
	default:
		return nil, 0, ErrBadFormat
	}
}

// badFormat wraps a v2 load failure so it matches both ErrBadFormat and
// the underlying cause.
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("oselm: corrupt artifact: %w: %w", ErrBadFormat, err)
}

// loadBody parses the payload that follows the magic. ver 3 carries a
// compute-precision byte after the wire-precision byte; v1/v2 artifacts
// predate the precision axis and load as float64-compute models.
func loadBody(r io.Reader, ver int) (*Model, error) {
	var precByte [1]byte
	if _, err := io.ReadFull(r, precByte[:]); err != nil {
		return nil, err
	}
	prec := Precision(precByte[0])
	if prec != Float64 && prec != Float32 {
		return nil, ErrBadFormat
	}
	compute := Float64
	if ver >= 3 {
		var computeByte [1]byte
		if _, err := io.ReadFull(r, computeByte[:]); err != nil {
			return nil, err
		}
		compute = Precision(computeByte[0])
		if compute != Float64 && compute != Float32 {
			return nil, ErrBadFormat
		}
	}
	var u [5]uint32
	for i := range u {
		v, err := readU32(r)
		if err != nil {
			return nil, err
		}
		u[i] = v
	}
	var f [3]float64
	for i := range f {
		v, err := readF64(r)
		if err != nil {
			return nil, err
		}
		f[i] = v
	}
	cfg := Config{
		Inputs:      int(u[0]),
		Hidden:      int(u[1]),
		Outputs:     int(u[2]),
		Activation:  Activation(u[3]),
		Forgetting:  f[0],
		Ridge:       f[1],
		WeightScale: f[2],
		Precision:   compute,
	}
	if err := checkLoadDims(cfg); err != nil {
		return nil, err
	}
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("oselm: load config: %w", err)
	}
	m := newEmpty(c)
	if m.w32 == nil {
		for _, xs := range [][]float64{m.w.Data, m.bias, m.beta.Data, m.p.Data} {
			if err := readFloats(r, prec, xs); err != nil {
				return nil, fmt.Errorf("oselm: load weights: %w", err)
			}
		}
	} else {
		// Float32 backend: stage each slab through a float64 buffer, then
		// narrow into the owned float32 state. P stays float64.
		for _, dst := range [][]float32{m.w32.Data, m.bias32, m.beta32.Data} {
			buf := make([]float64, len(dst))
			if err := readFloats(r, prec, buf); err != nil {
				return nil, fmt.Errorf("oselm: load weights: %w", err)
			}
			mat.ConvertVec(dst, buf)
		}
		if err := readFloats(r, prec, m.p.Data); err != nil {
			return nil, fmt.Errorf("oselm: load weights: %w", err)
		}
	}
	m.inits = int(u[4])
	return m, nil
}

// checkLoadDims rejects deserialised dimensions no valid artifact can
// carry, so a corrupt header fails as ErrBadFormat instead of demanding
// a multi-gigabyte allocation.
func checkLoadDims(c Config) error {
	dims := [...]int{c.Inputs, c.Hidden, c.Outputs}
	for _, d := range dims {
		if d <= 0 || d > maxLoadDim {
			return fmt.Errorf("%w: implausible dimension %d", ErrBadFormat, d)
		}
	}
	for _, n := range [...]int{c.Hidden * c.Inputs, c.Hidden * c.Outputs, c.Hidden * c.Hidden} {
		if n > maxLoadMatrixElems {
			return fmt.Errorf("%w: implausible matrix size %d", ErrBadFormat, n)
		}
	}
	return nil
}

// newEmpty allocates a model without drawing random weights (they will
// be overwritten by a load). The configuration's compute precision
// decides which backend's state gets allocated.
func newEmpty(c Config) *Model {
	return alloc(c)
}

// Save serialises an autoencoder: the score metric followed by its
// model artifact, the whole wrapped in an outer CRC32 footer so the
// metric field — which precedes the model's own checksummed region — is
// covered too.
func (a *Autoencoder) Save(w io.Writer, prec Precision) (int64, error) {
	cw := ckpt.NewWriter(w)
	if err := writeU32(cw, uint32(a.metric)); err != nil {
		return cw.N(), err
	}
	if _, err := a.model.Save(cw, prec); err != nil {
		return cw.N(), err
	}
	if err := cw.WriteFooter(); err != nil {
		return cw.N(), err
	}
	return cw.N(), nil
}

// LoadAutoencoder deserialises an autoencoder written by Save. Legacy
// (v1) instances carry no checksums at all; the embedded model's version
// decides whether the outer footer is expected.
func LoadAutoencoder(r io.Reader) (*Autoencoder, error) {
	cr := ckpt.NewReader(r)
	metric, err := readU32(cr)
	if err != nil {
		return nil, badFormat(fmt.Errorf("load metric: %w", err))
	}
	if metric > uint32(L2Norm) {
		return nil, fmt.Errorf("%w: unknown score metric %d", ErrBadFormat, metric)
	}
	m, ver, err := loadVersioned(cr)
	if err != nil {
		return nil, err
	}
	if ver >= 2 {
		if err := cr.VerifyFooter(); err != nil {
			return nil, badFormat(err)
		}
	}
	if m.cfg.Inputs != m.cfg.Outputs {
		return nil, errors.New("oselm: serialised model is not an autoencoder")
	}
	return &Autoencoder{
		model:  m,
		metric: ScoreMetric(metric),
		recon:  make([]float64, m.cfg.Inputs),
	}, nil
}

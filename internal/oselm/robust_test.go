package oselm

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

// poisonP plants a NaN in the middle of the RLS covariance, the state a
// non-finite training target (or accumulated blow-up) would leave behind.
func poisonP(m *Model) {
	m.p.Data[len(m.p.Data)/2] = math.NaN()
}

func TestWatchdogRepairsNaNCovariance(t *testing.T) {
	m := trainedModel(t)
	poisonP(m)
	if h := m.HealthNow(); h.PFinite {
		t.Fatal("poisoned P reported finite")
	}
	// The very next Train hits a NaN denominator and must repair rather
	// than fold NaN into P and β.
	x := []float64{1, 2, 3, 4, 5, 6}
	m.Train(x, []float64{1, 0, 0})
	if got := m.WatchdogResets(); got != 1 {
		t.Fatalf("WatchdogResets = %d, want 1", got)
	}
	h := m.HealthNow()
	if !h.PFinite || !h.BetaFinite {
		t.Fatalf("state still non-finite after repair: %+v", h)
	}
	// The repaired model must keep learning normally.
	for i := 0; i < 50; i++ {
		m.Train(x, []float64{1, 0, 0})
	}
	if h := m.HealthNow(); !h.PFinite || !h.BetaFinite || math.IsNaN(h.PTrace) {
		t.Fatalf("model unhealthy after post-repair training: %+v", h)
	}
	if y := m.Predict(nil, x); !mat.AllFinite(y) {
		t.Fatalf("non-finite prediction after repair: %v", y)
	}
}

func TestPeriodicWatchdogCatchesSilentDivergence(t *testing.T) {
	m := trainedModel(t)
	m.SetWatchdogPeriod(8)
	// Poison P in a way a single Train's denominator check cannot see:
	// h is sigmoid-activated, so a zero input row keeps hᵀPh away from
	// the poisoned entry only in contrived cases; instead poison and
	// train with targets of zero so β stays finite while P decays.
	poisonP(m)
	x := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	for i := 0; i < 16 && m.WatchdogResets() == 0; i++ {
		m.Train(x, []float64{0, 0, 0})
	}
	if m.WatchdogResets() == 0 {
		t.Fatal("watchdog never repaired the poisoned covariance")
	}
	if h := m.HealthNow(); !h.PFinite {
		t.Fatalf("P still non-finite: %+v", h)
	}
}

func TestWatchdogTraceLimitReset(t *testing.T) {
	m := trainedModel(t)
	// Blow the trace past the configured limit without any NaN.
	m.p.Data[0] = m.traceLimit * 10
	m.watchdog()
	if got := m.WatchdogResets(); got != 1 {
		t.Fatalf("WatchdogResets = %d, want 1 after trace blow-up", got)
	}
	if h := m.HealthNow(); h.PTrace > m.traceLimit {
		t.Fatalf("trace %v still above limit %v", h.PTrace, m.traceLimit)
	}
}

func TestWatchdogSymmetrizeKeepsHealthyStateFinite(t *testing.T) {
	m := trainedModel(t)
	before := m.WatchdogResets()
	m.watchdog() // healthy pass: symmetrise only, no reset
	if got := m.WatchdogResets(); got != before {
		t.Fatalf("healthy watchdog pass reset the model (%d → %d)", before, got)
	}
	h := m.HealthNow()
	if !h.PFinite || !h.BetaFinite {
		t.Fatalf("healthy pass corrupted state: %+v", h)
	}
}

// v1FromV3 converts a single checksummed v3 artifact into the legacy v1
// layout: version byte '1', the compute-precision byte (offset 7, a v3
// addition) removed, and no CRC footer. (The formats deliberately kept
// the rest of the payload identical so the old parser still applies.)
func v1FromV3(t *testing.T, b []byte) []byte {
	t.Helper()
	if len(b) < 12 {
		t.Fatalf("artifact too short: %d bytes", len(b))
	}
	out := append([]byte(nil), b[:len(b)-4]...)
	if out[5] != '3' {
		t.Fatalf("unexpected version byte %q", out[5])
	}
	out[5] = '1'
	return append(out[:7], out[8:]...)
}

func TestLoadV1LegacyArtifact(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(v1FromV3(t, buf.Bytes())))
	if err != nil {
		t.Fatalf("v1 artifact failed to load: %v", err)
	}
	if d := mat.MaxAbsDiff(got.Beta(), m.Beta()); d != 0 {
		t.Fatalf("v1 round trip differs by %v", d)
	}
}

func TestLoadRejectsEveryTruncation(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := Load(bytes.NewReader(full[:n])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFormat", n, len(full), err)
		}
	}
}

func TestLoadRejectsEveryFlippedByte(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, err := Load(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flipped byte %d/%d: err = %v, want ErrBadFormat", i, len(full), err)
		}
	}
}

func TestAutoencoderLoadRejectsCorruption(t *testing.T) {
	ae, err := NewAutoencoder(Config{Inputs: 5, Hidden: 4, Ridge: 0.01}, MSE, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	for i := 0; i < 50; i++ {
		ae.Train(x)
	}
	var buf bytes.Buffer
	if _, err := ae.Save(&buf, Float64); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		if _, err := LoadAutoencoder(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flipped byte %d: err = %v, want ErrBadFormat", i, err)
		}
	}
}

func FuzzLoad(f *testing.F) {
	m, err := New(Config{Inputs: 3, Hidden: 4, Outputs: 2, Ridge: 0.01}, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Save(&buf, Float64); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add(v1FromV3FuzzSeed(full))
	f.Add([]byte("OSELM2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; any error (or a clean load of a lucky valid
		// stream) is acceptable.
		m, err := Load(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil model with nil error")
		}
	})
}

func v1FromV3FuzzSeed(b []byte) []byte {
	if len(b) < 12 || b[5] != '3' {
		return b
	}
	out := append([]byte(nil), b[:len(b)-4]...)
	out[5] = '1'
	return append(out[:7], out[8:]...)
}

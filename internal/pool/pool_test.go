package pool

import (
	"bytes"
	"errors"
	"testing"

	"edgedrift/internal/core"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

const (
	testDims    = 4
	testClasses = 2
)

// sample draws one point of class c, optionally shifted (the drifted
// concept moves every class by +shift per dimension).
func sample(r *rng.Rand, c int, shift float64) []float64 {
	x := make([]float64, testDims)
	base := float64(c) * 5
	for j := range x {
		x[j] = r.Normal(base+shift, 0.3)
	}
	return x
}

// trainSet draws n alternating-class samples.
func trainSet(r *rng.Rand, n int, shift float64) ([][]float64, []int) {
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		labels[i] = i % testClasses
		xs[i] = sample(r, labels[i], shift)
	}
	return xs, labels
}

// testConfig keeps reconstruction short enough to cycle drifts in a
// test while leaving NRecon well past the pool's Window countdown.
func testConfig() core.Config {
	cfg := core.DefaultConfig(40)
	cfg.NRecon = 400
	cfg.NUpdate = 100
	return cfg
}

// newCalibrated builds a trained, calibrated detector over the two-blob
// concept.
func newCalibrated(t *testing.T, seed uint64, cfg core.Config) (*core.Detector, *rng.Rand) {
	t.Helper()
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1000)
	xs, labels := trainSet(r, 400, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	d, err := core.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	return d, r
}

// newStage builds a pool stage over a calibrated detector.
func newStage(t *testing.T, seed uint64, cfg Config) (*Stage, *rng.Rand) {
	t.Helper()
	d, r := newCalibrated(t, seed, testConfig())
	p, err := NewStage(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, r
}

// driveDrift feeds shifted samples until the detector fires, failing
// the test if it never does.
func driveDrift(t *testing.T, p *Stage, r *rng.Rand, shift float64) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if p.Process(sample(r, i%testClasses, shift)).DriftDetected {
			return
		}
	}
	t.Fatal("drift never detected")
}

func TestNewStageValidation(t *testing.T) {
	if _, err := NewStage(nil, Config{}); err == nil {
		t.Fatal("expected nil-detector error")
	}
	d, _ := newCalibrated(t, 10, testConfig())
	if _, err := NewStage(d, Config{Capacity: -1}); err == nil {
		t.Fatal("expected negative-capacity error")
	}
	if _, err := NewStage(d, Config{Margin: -0.5}); err == nil {
		t.Fatal("expected negative-margin error")
	}
	p, err := NewStage(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.cfg.Capacity != 4 || p.cfg.Margin != 1.25 {
		t.Fatalf("defaults = %+v", p.cfg)
	}
}

func TestPoolCheckpointsOnDrift(t *testing.T) {
	p, r := newStage(t, 20, Config{})
	for i := 0; i < 100; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	if p.Len() != 0 {
		t.Fatalf("pool not empty before drift: %d", p.Len())
	}
	driveDrift(t, p, r, 6)
	if p.Len() != 1 {
		t.Fatalf("pool has %d entries after one drift", p.Len())
	}
	e := p.entries[0]
	if len(e.modelBlob) == 0 || len(e.detBlob) == 0 || e.thetaError <= 0 {
		t.Fatalf("degenerate checkpoint: model=%dB det=%dB θ=%v",
			len(e.modelBlob), len(e.detBlob), e.thetaError)
	}
	// The checkpoint must decode with the standard loaders.
	m, err := model.Load(bytes.NewReader(e.modelBlob))
	if err != nil {
		t.Fatalf("checkpointed model does not decode: %v", err)
	}
	if _, err := core.LoadState(bytes.NewReader(e.detBlob), m); err != nil {
		t.Fatalf("checkpointed detector state does not decode: %v", err)
	}
}

// TestPoolRestoreReoccurringBitExact is the tentpole acceptance test:
// when the pre-drift concept returns, the pool restores the checkpoint
// and the live detector then continues the stream bit-identically to a
// reference detector freshly loaded from the same checkpoint blobs.
func TestPoolRestoreReoccurringBitExact(t *testing.T) {
	p, r := newStage(t, 30, Config{})
	for i := 0; i < 100; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	driveDrift(t, p, r, 6)
	// Snapshot the checkpoint into an independent reference detector.
	e := p.entries[0]
	refModel, err := model.Load(bytes.NewReader(e.modelBlob))
	if err != nil {
		t.Fatal(err)
	}
	refDet, err := core.LoadState(bytes.NewReader(e.detBlob), refModel)
	if err != nil {
		t.Fatal(err)
	}
	// Reoccurring drift: the old concept comes straight back. After a
	// window of fresh samples the pool must match and restore.
	for i := 0; i < 200 && p.Restores() == 0; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	if p.Hits() != 1 || p.Restores() != 1 || p.Misses() != 0 {
		t.Fatalf("hits=%d misses=%d restores=%d, want 1/0/1",
			p.Hits(), p.Misses(), p.Restores())
	}
	if got := p.PhaseNow(); got != core.Monitoring {
		t.Fatalf("phase after restore = %v, want Monitoring", got)
	}
	// Bit-exact continuation: both detectors consume the identical
	// tail and must agree on every score and label to the last bit.
	tail, _ := trainSet(r, 300, 0)
	for i, x := range tail {
		a := p.Process(x)
		b := refDet.Process(x)
		if a.Score != b.Score || a.Label != b.Label || a.DriftDetected != b.DriftDetected {
			t.Fatalf("step %d diverged: restored (score=%v label=%d drift=%v) vs reference (score=%v label=%d drift=%v)",
				i, a.Score, a.Label, a.DriftDetected, b.Score, b.Label, b.DriftDetected)
		}
	}
}

// TestPoolMissOnNovelDrift: a drift to a genuinely new concept must not
// restore anything — the cold reconstruction runs to completion.
func TestPoolMissOnNovelDrift(t *testing.T) {
	p, r := newStage(t, 40, Config{})
	for i := 0; i < 100; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	driveDrift(t, p, r, 6)
	// Sudden drift: the shifted concept persists. The pooled concept-0
	// model cannot fit the post-drift window.
	for i := 0; i < 1000; i++ {
		p.Process(sample(r, i%testClasses, 6))
	}
	if p.Misses() != 1 || p.Restores() != 0 || p.Hits() != 0 {
		t.Fatalf("hits=%d misses=%d restores=%d, want 0/1/0",
			p.Hits(), p.Misses(), p.Restores())
	}
	// Cold adaptation still completes.
	if got := p.PhaseNow(); got != core.Monitoring {
		t.Fatalf("phase after cold reconstruction = %v, want Monitoring", got)
	}
}

func TestPoolLRUEviction(t *testing.T) {
	p, r := newStage(t, 50, Config{Capacity: 2})
	for i := 0; i < 50; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	for k := 0; k < 3; k++ {
		p.checkpoint()
	}
	if p.Len() != 2 {
		t.Fatalf("pool holds %d entries, capacity 2", p.Len())
	}
	if p.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", p.Evictions())
	}
}

func TestPoolHealthCounters(t *testing.T) {
	p, r := newStage(t, 60, Config{})
	for i := 0; i < 100; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	driveDrift(t, p, r, 6)
	for i := 0; i < 200 && p.Restores() == 0; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	s := p.Health()
	if s.PoolHits != p.Hits() || s.PoolMisses != p.Misses() ||
		s.PoolRestores != p.Restores() || s.PoolEvictions != p.Evictions() {
		t.Fatalf("health snapshot %+v does not carry pool counters (%d/%d/%d/%d)",
			s, p.Hits(), p.Misses(), p.Restores(), p.Evictions())
	}
	if s.SamplesSeen == 0 {
		t.Fatal("health snapshot lost the detector's counters")
	}
	if p.MemoryBytes() <= p.Detector().MemoryBytes() {
		t.Fatal("MemoryBytes must audit pooled blobs on top of the detector")
	}
}

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	p, r := newStage(t, 70, Config{})
	for i := 0; i < 50; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	p.checkpoint()
	for i := 0; i < 50; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	p.checkpoint()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, _ := newStage(t, 71, Config{})
	if err := q.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if q.Len() != p.Len() {
		t.Fatalf("loaded %d entries, want %d", q.Len(), p.Len())
	}
	for i := range p.entries {
		a, b := p.entries[i], q.entries[i]
		if a.thetaError != b.thetaError ||
			!bytes.Equal(a.modelBlob, b.modelBlob) ||
			!bytes.Equal(a.detBlob, b.detBlob) {
			t.Fatalf("entry %d differs after round trip", i)
		}
	}
}

// TestPoolLoadCorruption: every truncation and every byte flip of a
// valid POOL1 artifact must fail with an error wrapping ErrBadFormat,
// and must leave the stage's existing entries untouched.
func TestPoolLoadCorruption(t *testing.T) {
	p, r := newStage(t, 80, Config{})
	for i := 0; i < 50; i++ {
		p.Process(sample(r, i%testClasses, 0))
	}
	p.checkpoint()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	q := &Stage{}
	if err := q.Load(bytes.NewReader(full)); err != nil {
		t.Fatal(err)
	}
	want := q.Len()
	for n := 0; n < len(full); n++ {
		if err := q.Load(bytes.NewReader(full[:n])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d: err = %v, want ErrBadFormat", n, err)
		}
		if q.Len() != want {
			t.Fatalf("truncation at %d mutated the stage", n)
		}
	}
	flipped := make([]byte, len(full))
	for i := range full {
		copy(flipped, full)
		flipped[i] ^= 0xFF
		if err := q.Load(bytes.NewReader(flipped)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("byte flip at %d: err = %v, want ErrBadFormat", i, err)
		}
		if q.Len() != want {
			t.Fatalf("byte flip at %d mutated the stage", i)
		}
	}
}

func TestPoolLoadRejectsImplausibleCount(t *testing.T) {
	// Handcraft a header claiming 2^31 entries; must fail on the bound,
	// not attempt the allocation.
	var buf bytes.Buffer
	empty := &Stage{}
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[5], b[6], b[7], b[8] = 0, 0, 0, 0x80 // count u32 little-endian
	if err := empty.Load(bytes.NewReader(b)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("err = %v, want ErrBadFormat", err)
	}
}

// FuzzLoadPool: Load must never panic; any failure must classify as
// ErrBadFormat.
func FuzzLoadPool(f *testing.F) {
	var buf bytes.Buffer
	if err := (&Stage{}).Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:3])
	f.Add([]byte("POOL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p := &Stage{}
		if err := p.Load(bytes.NewReader(data)); err != nil && !errors.Is(err, ErrBadFormat) {
			t.Fatalf("load error %v does not wrap ErrBadFormat", err)
		}
	})
}

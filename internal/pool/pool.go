// Package pool implements the reoccurring-drift model pool: a bounded
// LRU of checkpointed (model, detector-state) pairs cut at each
// detected drift, plus the matching logic that restores one bit-exactly
// when a later drift turns out to be an old concept returning.
//
// The paper's reoccurring scenario (Fig. 1) makes cold retraining pure
// waste: the fan returns to its pre-drift state, yet the method rebuilds
// the model from scratch over N_recon samples. The pool instead
// checkpoints the outgoing model at the drift instant — before
// ResetModelOnDrift clears it — and, once a window of post-drift
// samples has accumulated, scores every pooled model on that window.
// If one already fits (median anomaly score within Margin of the
// checkpoint's own θ_error), its state is poured back into the live
// model and detector in place, abandoning the cold reconstruction
// mid-flight. Restores are bit-exact: the adopted model continues the
// stream with the identical arithmetic a freshly-loaded copy of the
// checkpoint would.
package pool

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/core"
	"edgedrift/internal/health"
	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
)

// Config configures a pool stage.
type Config struct {
	// Capacity bounds the LRU; zero defaults to 4 checkpoints.
	Capacity int
	// Margin is the fit bar: a pooled model matches the post-drift
	// window when its median anomaly score is at most Margin times the
	// θ_error it was checkpointed with. Zero defaults to 1.25, the
	// probe margin the cooperative-recovery experiment uses.
	Margin float64
}

// entry is one checkpoint: the serialised model (always float64 wire,
// so both numeric backends round-trip exactly), the normalised detector
// state, and the θ_error the fit bar is measured against.
type entry struct {
	modelBlob  []byte
	detBlob    []byte
	thetaError float64
}

// Stage wraps a calibrated core.Detector with the model pool. It is a
// core.Streaming stage: samples flow through Process unchanged, and the
// pool machinery runs off the detector's drift hook plus a short
// post-drift countdown. The stage deliberately does not expose the
// batch capability — a restore must land at an exact sample boundary,
// which a forwarded batch cannot honour mid-block.
type Stage struct {
	det *core.Detector
	cfg Config

	entries []*entry // front = most recently used

	// ring holds copies of the last Window accepted samples — the
	// evidence window a later drift is matched against.
	ring  [][]float64
	rfill int
	rpos  int

	// countdown, when positive, counts accepted samples until the
	// post-drift match runs: the drift window itself belongs to the
	// dying concept (a reoccurring drift is detected at the END of the
	// transient, when the old concept is already back), so the match
	// waits for a full ring of fresh samples.
	countdown int

	hits      uint64
	misses    uint64
	restores  uint64
	evictions uint64
}

// NewStage wraps det, which must already be calibrated, and registers
// the drift-checkpoint hook on it.
func NewStage(det *core.Detector, cfg Config) (*Stage, error) {
	if det == nil {
		return nil, errors.New("pool: nil detector")
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = 4
	}
	if cfg.Capacity < 0 {
		return nil, fmt.Errorf("pool: negative capacity %d", cfg.Capacity)
	}
	if cfg.Margin == 0 {
		cfg.Margin = 1.25
	}
	if cfg.Margin <= 0 {
		return nil, fmt.Errorf("pool: non-positive margin %v", cfg.Margin)
	}
	p := &Stage{
		det:  det,
		cfg:  cfg,
		ring: make([][]float64, det.Config().Window),
	}
	det.SetDriftHook(p.checkpoint)
	return p, nil
}

// Detector returns the wrapped detector.
func (p *Stage) Detector() *core.Detector { return p.det }

// Inner returns the wrapped detector as a Streaming stage, keeping the
// capability-discovery seam wrapping stages walk.
func (p *Stage) Inner() core.Streaming { return p.det }

// Hits, Misses, Restores, Evictions expose the pool counters.
func (p *Stage) Hits() uint64      { return p.hits }
func (p *Stage) Misses() uint64    { return p.misses }
func (p *Stage) Restores() uint64  { return p.restores }
func (p *Stage) Evictions() uint64 { return p.evictions }

// Len returns the number of pooled checkpoints.
func (p *Stage) Len() int { return len(p.entries) }

// checkpoint runs inside the detector's drift transition, while the
// outgoing model and calibrated state are still intact. Failures leave
// the pool unchanged — a checkpoint that cannot be cut must never turn
// a working drift response into a panic.
func (p *Stage) checkpoint() {
	var mbuf bytes.Buffer
	// Always float64 on the wire: exact for the f64 backend, and the
	// f32 backend's weights widen/narrow losslessly while P (kept
	// float64 for conditioning) would be truncated by an f32 wire.
	if _, err := p.det.Model().Save(&mbuf, oselm.Float64); err != nil {
		return
	}
	var dbuf bytes.Buffer
	if err := p.det.CheckpointState(&dbuf); err != nil {
		return
	}
	p.entries = append([]*entry{{
		modelBlob:  mbuf.Bytes(),
		detBlob:    dbuf.Bytes(),
		thetaError: p.det.ThetaError(),
	}}, p.entries...)
	for len(p.entries) > p.cfg.Capacity {
		p.entries = p.entries[:len(p.entries)-1]
		p.evictions++
	}
}

// Process forwards the sample to the detector, maintains the evidence
// ring, and drives the post-drift match countdown.
func (p *Stage) Process(x []float64) core.Result {
	res := p.det.Process(x)
	if !res.Rejected {
		p.push(x)
		if res.DriftDetected {
			p.countdown = len(p.ring)
		} else if p.countdown > 0 {
			p.countdown--
			if p.countdown == 0 {
				p.match()
			}
		}
	}
	return res
}

// push copies x into the ring.
func (p *Stage) push(x []float64) {
	if p.ring[p.rpos] == nil {
		p.ring[p.rpos] = make([]float64, len(x))
	}
	copy(p.ring[p.rpos], x)
	p.rpos = (p.rpos + 1) % len(p.ring)
	if p.rfill < len(p.ring) {
		p.rfill++
	}
}

// match scores every pooled checkpoint against the ring — the Window
// samples that followed the drift — and restores the best fit. It only
// acts while the cold reconstruction is still running; if the detector
// already finished adapting, the freshly-trained model wins by default.
//
// Fit is the MEDIAN anomaly score over the ring relative to the
// checkpoint's θ_error, not the mean: the ring's oldest samples can
// still belong to the dying concept (a reoccurring drift is detected
// near the end of its transient), and on such samples a non-fitting
// model scores orders of magnitude above θ_error — a single straddler
// would veto a checkpoint that fits every fresh sample. The median
// tolerates up to half a ring of straddlers while still rejecting a
// model that misfits the majority.
func (p *Stage) match() {
	if len(p.entries) == 0 || p.rfill < len(p.ring) {
		return
	}
	if p.det.PhaseNow() != core.Reconstructing {
		return
	}
	best := -1
	bestRatio := p.cfg.Margin
	var bestModel *model.Multi
	scores := make([]float64, len(p.ring))
	for i, e := range p.entries {
		m, err := model.Load(bytes.NewReader(e.modelBlob))
		if err != nil {
			continue // unreachable for in-process checkpoints; be safe
		}
		for j, x := range p.ring {
			_, scores[j] = m.Predict(x)
		}
		sort.Float64s(scores)
		ratio := scores[len(scores)/2] / e.thetaError
		if ratio <= bestRatio {
			best, bestRatio, bestModel = i, ratio, m
		}
	}
	if best < 0 {
		p.misses++
		return
	}
	p.hits++
	e := p.entries[best]
	if err := p.det.Model().AdoptState(bestModel); err != nil {
		return
	}
	if err := p.det.RestoreState(bytes.NewReader(e.detBlob)); err != nil {
		return
	}
	p.restores++
	// LRU touch: the restored concept is the most likely to reoccur.
	p.entries = append(p.entries[:best], p.entries[best+1:]...)
	p.entries = append([]*entry{e}, p.entries...)
}

// MemoryBytes audits the detector plus the pool's retained state: the
// checkpoint blobs and the evidence ring.
func (p *Stage) MemoryBytes() int {
	n := p.det.MemoryBytes()
	for _, e := range p.entries {
		n += len(e.modelBlob) + len(e.detBlob) + 8
	}
	for _, x := range p.ring {
		n += 8 * len(x)
	}
	return n + 6*8
}

// Health returns the detector's snapshot with the pool counters added
// in, per the stage-composition rule.
func (p *Stage) Health() health.Snapshot {
	s := p.det.Health()
	s.PoolHits += p.hits
	s.PoolMisses += p.misses
	s.PoolRestores += p.restores
	s.PoolEvictions += p.evictions
	return s
}

// PhaseNow forwards the detector's phase.
func (p *Stage) PhaseNow() core.Phase { return p.det.PhaseNow() }

var _ core.Streaming = (*Stage)(nil)

// poolMagic identifies the POOL1 container: the magic, a u32 entry
// count, then each entry as (f64 θ_error, length-prefixed model blob,
// length-prefixed detector blob) in LRU order (most recent first), all
// covered by one ckpt CRC32 footer. The nested blobs carry their own
// footers, so a flipped bit fails at both the container and the
// artifact level.
var poolMagic = [5]byte{'P', 'O', 'O', 'L', '1'}

// ErrBadFormat reports a stream that is not a serialised POOL1
// container, or one that is truncated or corrupt.
var ErrBadFormat = errors.New("pool: not a serialised model pool (or corrupt artifact)")

// Sanity bounds so a corrupt header fails as ErrBadFormat instead of
// demanding an absurd allocation.
const (
	maxLoadEntries  = 1 << 12
	maxLoadBlobSize = 1 << 28
)

// Save serialises the pooled checkpoints to w as a POOL1 container.
// The wrapped detector is not included — the pool artifact is portable
// across restarts of the same deployment, which persists its detector
// and model through their own formats.
func (p *Stage) Save(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	if _, err := cw.Write(poolMagic[:]); err != nil {
		return err
	}
	if err := putU32(cw, uint32(len(p.entries))); err != nil {
		return err
	}
	for _, e := range p.entries {
		if err := putF64(cw, e.thetaError); err != nil {
			return err
		}
		if err := putU32(cw, uint32(len(e.modelBlob))); err != nil {
			return err
		}
		if _, err := cw.Write(e.modelBlob); err != nil {
			return err
		}
		if err := putU32(cw, uint32(len(e.detBlob))); err != nil {
			return err
		}
		if _, err := cw.Write(e.detBlob); err != nil {
			return err
		}
	}
	return cw.WriteFooter()
}

// Load replaces the stage's pooled checkpoints with the POOL1 container
// read from r. Every failure wraps ErrBadFormat so callers can classify
// corruption with errors.Is; on error the stage keeps its old entries.
func (p *Stage) Load(r io.Reader) error {
	entries, err := decodeEntries(r)
	if err != nil {
		return err
	}
	p.entries = entries
	return nil
}

// decodeEntries parses a POOL1 container.
func decodeEntries(r io.Reader) ([]*entry, error) {
	var got [5]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, badFormat(fmt.Errorf("load header: %w", err))
	}
	if got != poolMagic {
		return nil, ErrBadFormat
	}
	cr := ckpt.NewReader(r)
	cr.Fold(got[:])
	count, err := getU32(cr)
	if err != nil {
		return nil, badFormat(err)
	}
	if count > maxLoadEntries {
		return nil, badFormat(fmt.Errorf("implausible entry count %d", count))
	}
	entries := make([]*entry, 0, count)
	for i := uint32(0); i < count; i++ {
		e := &entry{}
		if e.thetaError, err = getF64(cr); err != nil {
			return nil, badFormat(err)
		}
		if e.modelBlob, err = getBlob(cr); err != nil {
			return nil, badFormat(err)
		}
		if e.detBlob, err = getBlob(cr); err != nil {
			return nil, badFormat(err)
		}
		entries = append(entries, e)
	}
	if err := cr.VerifyFooter(); err != nil {
		return nil, badFormat(err)
	}
	return entries, nil
}

func getBlob(r io.Reader) ([]byte, error) {
	n, err := getU32(r)
	if err != nil {
		return nil, err
	}
	if n > maxLoadBlobSize {
		return nil, fmt.Errorf("implausible blob size %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// badFormat wraps a load failure so it matches both ErrBadFormat and
// the underlying cause (including ckpt.ErrChecksum).
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("pool: corrupt artifact: %w: %w", ErrBadFormat, err)
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func putF64(w io.Writer, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, err := w.Write(b[:])
	return err
}

func getF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

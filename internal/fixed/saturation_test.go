package fixed

import (
	"testing"

	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// trainedAutoencoder builds a small trained float autoencoder whose
// weights sit comfortably inside the Q16.16 range.
func trainedAutoencoder(t *testing.T) *oselm.Autoencoder {
	t.Helper()
	ae, err := oselm.NewAutoencoder(oselm.Config{Inputs: 6, Hidden: 4}, oselm.L1Mean, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	x := make([]float64, 6)
	for i := 0; i < 50; i++ {
		r.FillUniform(x, -1, 1)
		ae.Train(x)
	}
	return ae
}

// TestQuantizeCountsNoSaturationInRange pins the happy path: a model
// trained on standardised features quantises without a single clip.
func TestQuantizeCountsNoSaturationInRange(t *testing.T) {
	qa := QuantizeAutoencoder(trainedAutoencoder(t))
	if got := qa.Saturations(); got != 0 {
		t.Fatalf("in-range model clipped %d parameters, want 0", got)
	}
}

// TestQuantizeCountsSaturations forces parameters outside the Q16.16
// range (±32768) and checks every clip is counted, so deployments can
// tell a faithfully quantised model from a silently clamped one.
func TestQuantizeCountsSaturations(t *testing.T) {
	ae := trainedAutoencoder(t)
	_, _, beta := ae.Model().Weights() // live view at float64
	beta[0] = 1e6                      // far above the Q16.16 ceiling
	beta[1] = -1e6
	qa := QuantizeAutoencoder(ae)
	if got := qa.Saturations(); got != 2 {
		t.Fatalf("out-of-range model counted %d saturations, want 2", got)
	}
}

// TestStreamHealthReportsSaturations checks the counter surfaces where
// operators look: a quantised detector built from an out-of-range float
// model reports its clips through the streaming stage's health snapshot.
func TestStreamHealthReportsSaturations(t *testing.T) {
	det, r := calibratedFloatDetector(t, 21)
	_, _, beta := det.Model().Instance(0).Model().Weights()
	beta[0] = 1e6
	s := NewStream(QuantizeDetector(det))
	for i := 0; i < 10; i++ {
		s.Process(monSample(r, i%monClasses, 0))
	}
	h := s.Health()
	if h.QuantSaturations == 0 {
		t.Fatal("stream health reports zero quantisation saturations for an out-of-range model")
	}
	if h.SamplesSeen != 10 {
		t.Fatalf("stream health SamplesSeen = %d, want 10", h.SamplesSeen)
	}
	if !h.Healthy() {
		t.Fatalf("saturation alone must not mark the stream unhealthy: %+v", h)
	}
}

// TestFromFloatCheckedReportsClip pins the primitive underneath the
// counter: exact range behaviour plus the NaN policy (NaN clamps to
// zero and is reported as a clip).
func TestFromFloatCheckedReportsClip(t *testing.T) {
	if _, clipped := FromFloatChecked(1.5); clipped {
		t.Fatal("1.5 reported as clipped")
	}
	if q, clipped := FromFloatChecked(1e9); !clipped || q != MaxQ {
		t.Fatalf("1e9 → (%d, %v), want (MaxQ, true)", q, clipped)
	}
	if q, clipped := FromFloatChecked(-1e9); !clipped || q != MinQ {
		t.Fatalf("-1e9 → (%d, %v), want (MinQ, true)", q, clipped)
	}
}

package fixed

import (
	"fmt"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
)

// Autoencoder is an inference-only Q16.16 quantisation of a trained
// oselm.Autoencoder: fixed W, b, β; no P matrix (training stays on the
// float path / the host). The hot loops are the shared integer kernels
// of internal/mat instantiated at Q.
type Autoencoder struct {
	inputs, hidden int
	// w is row-major Hidden×Inputs, beta row-major Hidden×Inputs
	// (autoencoder: outputs = inputs).
	w    []Q
	bias []Q
	beta []Q

	h     []Q
	recon []Q
	hb    []Q // batchChunk×hidden staging for ScoreBatch (lazy)
	sat   int // parameters clipped during quantisation
	ops   *opcount.Counter
}

// batchChunk is the sample-block size of the batched fixed-point scorer,
// matching the float backends' chunk so cross-precision benchmarks
// compare the same batching discipline.
const batchChunk = 64

// QuantizeAutoencoder converts a trained float autoencoder for
// fixed-point inference. Weight magnitudes must fit Q16.16 (they do for
// standardised features and the paper's configurations; saturation
// applies otherwise and is counted — see Saturations).
func QuantizeAutoencoder(src *oselm.Autoencoder) *Autoencoder {
	m := src.Model()
	cfg := m.Config()
	a := &Autoencoder{
		inputs: cfg.Inputs,
		hidden: cfg.Hidden,
		h:      make([]Q, cfg.Hidden),
		recon:  make([]Q, cfg.Inputs),
	}
	wf, bf, betaf := m.Weights()
	var s1, s2, s3 int
	a.w, s1 = QuantizeVecChecked(wf)
	a.bias, s2 = QuantizeVecChecked(bf)
	a.beta, s3 = QuantizeVecChecked(betaf)
	a.sat = s1 + s2 + s3
	return a
}

// Inputs returns the feature dimension.
func (a *Autoencoder) Inputs() int { return a.inputs }

// Saturations reports how many parameters clipped to the Q16.16 range
// while the autoencoder was quantised. Non-zero means the float model's
// weights exceeded ±32768 and the quantised scores are suspect.
func (a *Autoencoder) Saturations() int { return a.sat }

// SetOps attaches an operation counter (integer MACs are counted in the
// MulAdd class; the device profile decides what they cost).
func (a *Autoencoder) SetOps(c *opcount.Counter) { a.ops = c }

// Score computes the mean-absolute reconstruction error of x — the L1
// metric, chosen because it needs no fixed-point squaring (whose range
// demands would halve the usable precision).
func (a *Autoencoder) Score(x []Q) Q {
	if len(x) != a.inputs {
		panic(fmt.Sprintf("fixed: input dimension %d, want %d", len(x), a.inputs))
	}
	// Hidden layer matvec: h = W·x.
	mat.MulVecQ16(a.h, a.w, x)
	return a.scoreFromHidden(x)
}

// scoreFromHidden finishes a score with the raw hidden matvec W·x
// already in a.h: bias, sigmoid, output layer and the L1 metric — the
// shared tail of Score and ScoreBatch.
func (a *Autoencoder) scoreFromHidden(x []Q) Q {
	for i, v := range a.h {
		a.h[i] = Sigmoid(Add(v, a.bias[i]))
	}
	a.ops.AddMulAdd(a.hidden * a.inputs)
	a.ops.AddAdd(a.hidden)
	a.ops.AddExp(a.hidden) // table lookups; profiles may cost them as cheap
	// Output layer: recon = βᵀ·h.
	mat.MulVecTransQ16(a.recon, a.beta, a.h)
	a.ops.AddMulAdd(a.hidden * a.inputs)
	// Mean absolute error.
	total := L1DistAcc(a.recon, x)
	a.ops.AddAbs(a.inputs)
	a.ops.AddAdd(a.inputs)
	a.ops.AddDiv(1)
	return Div(total, FromFloat(float64(a.inputs)))
}

// ScoreBatch scores every xs[i] into dst[i], computing the hidden-layer
// matvecs of a whole chunk through the batched integer kernel so the
// weight slab streams once per block instead of once per sample.
// Results are bit-identical to per-sample Score calls: DotQ16
// accumulates each element in one 64-bit register and saturates once,
// so its value cannot depend on batching, and the per-sample tail is
// the same code. The model is static (inference-only port), so batching
// is always semantics-preserving here.
func (a *Autoencoder) ScoreBatch(dst []Q, xs [][]Q) {
	if len(dst) != len(xs) {
		panic("fixed: ScoreBatch buffer length mismatch")
	}
	if a.hb == nil {
		a.hb = make([]Q, batchChunk*a.hidden)
	}
	for start := 0; start < len(xs); start += batchChunk {
		end := start + batchChunk
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[start:end]
		for i, x := range chunk {
			if len(x) != a.inputs {
				panic(fmt.Sprintf("fixed: input dimension %d, want %d", len(chunk[i]), a.inputs))
			}
		}
		hb := a.hb[:len(chunk)*a.hidden]
		mat.MulVecBatchQ16(hb, a.w, chunk, a.hidden)
		for i, x := range chunk {
			copy(a.h, hb[i*a.hidden:(i+1)*a.hidden])
			dst[start+i] = a.scoreFromHidden(x)
		}
	}
}

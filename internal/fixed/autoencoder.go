package fixed

import (
	"fmt"

	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
)

// Autoencoder is an inference-only Q16.16 quantisation of a trained
// oselm.Autoencoder: fixed W, b, β; no P matrix (training stays on the
// float path / the host).
type Autoencoder struct {
	inputs, hidden int
	// w is row-major Hidden×Inputs, beta row-major Hidden×Inputs
	// (autoencoder: outputs = inputs).
	w    []Q
	bias []Q
	beta []Q

	h     []Q
	recon []Q
	ops   *opcount.Counter
}

// QuantizeAutoencoder converts a trained float autoencoder for
// fixed-point inference. Weight magnitudes must fit Q16.16 (they do for
// standardised features and the paper's configurations; saturation
// applies otherwise).
func QuantizeAutoencoder(src *oselm.Autoencoder) *Autoencoder {
	m := src.Model()
	cfg := m.Config()
	a := &Autoencoder{
		inputs: cfg.Inputs,
		hidden: cfg.Hidden,
		w:      make([]Q, cfg.Hidden*cfg.Inputs),
		bias:   make([]Q, cfg.Hidden),
		beta:   make([]Q, cfg.Hidden*cfg.Inputs),
		h:      make([]Q, cfg.Hidden),
		recon:  make([]Q, cfg.Inputs),
	}
	wf, bf, betaf := m.Weights()
	for i, v := range wf {
		a.w[i] = FromFloat(v)
	}
	for i, v := range bf {
		a.bias[i] = FromFloat(v)
	}
	for i, v := range betaf {
		a.beta[i] = FromFloat(v)
	}
	return a
}

// Inputs returns the feature dimension.
func (a *Autoencoder) Inputs() int { return a.inputs }

// SetOps attaches an operation counter (integer MACs are counted in the
// MulAdd class; the device profile decides what they cost).
func (a *Autoencoder) SetOps(c *opcount.Counter) { a.ops = c }

// Score computes the mean-absolute reconstruction error of x — the L1
// metric, chosen because it needs no fixed-point squaring (whose range
// demands would halve the usable precision).
func (a *Autoencoder) Score(x []Q) Q {
	if len(x) != a.inputs {
		panic(fmt.Sprintf("fixed: input dimension %d, want %d", len(x), a.inputs))
	}
	// Hidden layer.
	for i := 0; i < a.hidden; i++ {
		row := a.w[i*a.inputs : (i+1)*a.inputs]
		a.h[i] = Sigmoid(Add(DotAcc(row, x), a.bias[i]))
	}
	a.ops.AddMulAdd(a.hidden * a.inputs)
	a.ops.AddAdd(a.hidden)
	a.ops.AddExp(a.hidden) // table lookups; profiles may cost them as cheap
	// Output layer: recon = βᵀ·h.
	for j := range a.recon {
		a.recon[j] = 0
	}
	for i := 0; i < a.hidden; i++ {
		hi := a.h[i]
		if hi == 0 {
			continue
		}
		row := a.beta[i*a.inputs : (i+1)*a.inputs]
		for j, b := range row {
			a.recon[j] = Add(a.recon[j], Mul(hi, b))
		}
	}
	a.ops.AddMulAdd(a.hidden * a.inputs)
	// Mean absolute error.
	total := L1DistAcc(a.recon, x)
	a.ops.AddAbs(a.inputs)
	a.ops.AddAdd(a.inputs)
	a.ops.AddDiv(1)
	return Div(total, FromFloat(float64(a.inputs)))
}

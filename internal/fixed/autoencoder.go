package fixed

import (
	"fmt"

	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
)

// Autoencoder is an inference-only Q16.16 quantisation of a trained
// oselm.Autoencoder: fixed W, b, β; no P matrix (training stays on the
// float path / the host). The hot loops are the shared integer kernels
// of internal/mat instantiated at Q.
type Autoencoder struct {
	inputs, hidden int
	// w is row-major Hidden×Inputs, beta row-major Hidden×Inputs
	// (autoencoder: outputs = inputs).
	w    []Q
	bias []Q
	beta []Q

	h     []Q
	recon []Q
	sat   int // parameters clipped during quantisation
	ops   *opcount.Counter
}

// QuantizeAutoencoder converts a trained float autoencoder for
// fixed-point inference. Weight magnitudes must fit Q16.16 (they do for
// standardised features and the paper's configurations; saturation
// applies otherwise and is counted — see Saturations).
func QuantizeAutoencoder(src *oselm.Autoencoder) *Autoencoder {
	m := src.Model()
	cfg := m.Config()
	a := &Autoencoder{
		inputs: cfg.Inputs,
		hidden: cfg.Hidden,
		h:      make([]Q, cfg.Hidden),
		recon:  make([]Q, cfg.Inputs),
	}
	wf, bf, betaf := m.Weights()
	var s1, s2, s3 int
	a.w, s1 = QuantizeVecChecked(wf)
	a.bias, s2 = QuantizeVecChecked(bf)
	a.beta, s3 = QuantizeVecChecked(betaf)
	a.sat = s1 + s2 + s3
	return a
}

// Inputs returns the feature dimension.
func (a *Autoencoder) Inputs() int { return a.inputs }

// Saturations reports how many parameters clipped to the Q16.16 range
// while the autoencoder was quantised. Non-zero means the float model's
// weights exceeded ±32768 and the quantised scores are suspect.
func (a *Autoencoder) Saturations() int { return a.sat }

// SetOps attaches an operation counter (integer MACs are counted in the
// MulAdd class; the device profile decides what they cost).
func (a *Autoencoder) SetOps(c *opcount.Counter) { a.ops = c }

// Score computes the mean-absolute reconstruction error of x — the L1
// metric, chosen because it needs no fixed-point squaring (whose range
// demands would halve the usable precision).
func (a *Autoencoder) Score(x []Q) Q {
	if len(x) != a.inputs {
		panic(fmt.Sprintf("fixed: input dimension %d, want %d", len(x), a.inputs))
	}
	// Hidden layer: h = g(W·x + b).
	mat.MulVecQ16(a.h, a.w, x)
	for i, v := range a.h {
		a.h[i] = Sigmoid(Add(v, a.bias[i]))
	}
	a.ops.AddMulAdd(a.hidden * a.inputs)
	a.ops.AddAdd(a.hidden)
	a.ops.AddExp(a.hidden) // table lookups; profiles may cost them as cheap
	// Output layer: recon = βᵀ·h.
	mat.MulVecTransQ16(a.recon, a.beta, a.h)
	a.ops.AddMulAdd(a.hidden * a.inputs)
	// Mean absolute error.
	total := L1DistAcc(a.recon, x)
	a.ops.AddAbs(a.inputs)
	a.ops.AddAdd(a.inputs)
	a.ops.AddDiv(1)
	return Div(total, FromFloat(float64(a.inputs)))
}

package fixed

import (
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/opcount"
)

// Monitor is the on-device half of a split deployment: quantised label
// prediction over C autoencoder instances plus the sequential centroid
// drift check of Algorithm 1 in pure integer arithmetic. On detection it
// sets a flag (readable via DriftPending) rather than reconstructing —
// the host retrains and ships a fresh artifact, the realistic division
// of labour for an M0+-class device.
type Monitor struct {
	instances []*Autoencoder
	dims      int

	trainCor [][]Q
	cor      [][]Q
	num      []int32

	thetaError Q
	thetaDrift Q
	window     int

	check   bool
	win     int
	dist    Q
	pending bool

	samples int
	events  []int
	sat     int // values clipped during quantisation
	ops     *opcount.Counter

	// Batched-prediction staging (lazy; see ProcessBatch).
	batchCols   [][]Q // per-instance score columns, C×batchChunk
	batchLabels []int
	batchScores []Q
}

// QuantizeDetector builds a fixed-point monitor from a calibrated float
// detector: every instance, centroid and threshold is quantised in one
// shot. Values that clip to the Q16.16 range are counted — see
// Saturations.
func QuantizeDetector(det *core.Detector) *Monitor {
	m := det.Model()
	classes := m.Classes()
	thetaE, satE := FromFloatChecked(det.ThetaError())
	thetaD, satD := FromFloatChecked(det.ThetaDrift())
	mon := &Monitor{
		dims:       m.Config().Inputs,
		window:     det.Config().Window,
		thetaError: thetaE,
		thetaDrift: thetaD,
		num:        make([]int32, classes),
	}
	if satE {
		mon.sat++
	}
	if satD {
		mon.sat++
	}
	for c := 0; c < classes; c++ {
		inst := QuantizeAutoencoder(m.Instance(c))
		mon.sat += inst.Saturations()
		trainCor, s1 := QuantizeVecChecked(det.TrainedCentroid(c))
		cor, s2 := QuantizeVecChecked(det.RecentCentroid(c))
		mon.sat += s1 + s2
		mon.instances = append(mon.instances, inst)
		mon.trainCor = append(mon.trainCor, trainCor)
		mon.cor = append(mon.cor, cor)
		mon.num[c] = 1
	}
	return mon
}

// Saturations reports how many values (weights, centroids, thresholds)
// clipped to the Q16.16 range while this monitor was quantised. Non-zero
// means the float detector's state exceeded the representable ±32768 and
// the fixed-point port is degraded; surface it via health reporting.
func (mon *Monitor) Saturations() int { return mon.sat }

// Result is the per-sample outcome of the quantised monitor.
type Result struct {
	// Label is the argmin-score class.
	Label int
	// Score is the winning reconstruction error.
	Score Q
	// DriftDetected is true exactly on the window close that crossed
	// θ_drift.
	DriftDetected bool
}

// SetOps attaches an operation counter to the monitor and instances.
func (mon *Monitor) SetOps(c *opcount.Counter) {
	mon.ops = c
	for _, inst := range mon.instances {
		inst.SetOps(c)
	}
}

// DriftPending reports whether a drift was detected and the host has not
// yet acknowledged it (ClearDrift).
func (mon *Monitor) DriftPending() bool { return mon.pending }

// ClearDrift acknowledges a pending drift, typically after the host has
// shipped a retrained artifact.
func (mon *Monitor) ClearDrift() { mon.pending = false }

// Events returns sample indices of detections.
func (mon *Monitor) Events() []int {
	out := make([]int, len(mon.events))
	copy(out, mon.events)
	return out
}

// Process consumes one quantised sample.
func (mon *Monitor) Process(x []Q) Result {
	if len(x) != mon.dims {
		panic(fmt.Sprintf("fixed: sample dimension %d, want %d", len(x), mon.dims))
	}
	mon.samples++

	best, bestScore := 0, Q(0)
	for c, inst := range mon.instances {
		s := inst.Score(x)
		if c == 0 || s < bestScore {
			best, bestScore = c, s
		}
	}
	mon.ops.AddCmp(len(mon.instances) - 1)
	return mon.step(x, best, bestScore)
}

// step is the post-prediction half of Process: the θ_error gate, the
// centroid window and the drift decision, operating on an
// already-computed (label, score) pair so the batched path drives the
// identical state machine. The caller increments samples first.
func (mon *Monitor) step(x []Q, best int, bestScore Q) Result {
	res := Result{Label: best, Score: bestScore}

	if mon.pending {
		// Awaiting host action; keep predicting, skip detection.
		return res
	}
	if !mon.check && bestScore >= mon.thetaError {
		mon.check = true
		mon.win = 0
	}
	mon.ops.AddCmp(1)
	if mon.check && mon.win < mon.window {
		mon.updateCentroid(best, x)
		mon.dist = mon.centroidDist()
		mon.win++
		if mon.win == mon.window {
			mon.ops.AddCmp(1)
			if mon.dist >= mon.thetaDrift {
				mon.pending = true
				mon.events = append(mon.events, mon.samples-1)
				res.DriftDetected = true
			}
			mon.check = false
		}
	}
	return res
}

// scoreBatch predicts a chunk (≤ batchChunk samples): every instance
// scores the whole chunk through its batched kernel, then the argmin
// scan — replicating Process's exactly, including the "first instance
// wins ties" rule and the comparison charge — fills labels and scores.
func (mon *Monitor) scoreBatch(labels []int, scores []Q, chunk [][]Q) {
	if mon.batchCols == nil {
		mon.batchCols = make([][]Q, len(mon.instances))
		for c := range mon.batchCols {
			mon.batchCols[c] = make([]Q, batchChunk)
		}
	}
	for c, inst := range mon.instances {
		inst.ScoreBatch(mon.batchCols[c][:len(chunk)], chunk)
	}
	for i := range chunk {
		best, bestScore := 0, Q(0)
		for c := range mon.instances {
			if s := mon.batchCols[c][i]; c == 0 || s < bestScore {
				best, bestScore = c, s
			}
		}
		mon.ops.AddCmp(len(mon.instances) - 1)
		labels[i], scores[i] = best, bestScore
	}
}

// ensureBatch lazily allocates the chunk-sized label/score staging.
func (mon *Monitor) ensureBatch() ([]int, []Q) {
	if mon.batchLabels == nil {
		mon.batchLabels = make([]int, batchChunk)
		mon.batchScores = make([]Q, batchChunk)
	}
	return mon.batchLabels, mon.batchScores
}

// ProcessBatch consumes xs in order, appending one Result per sample to
// dst. The on-device model is inference-only — nothing mutates the
// instances between samples, even across a detection — so batching is
// always valid here and results are bit-identical to per-sample Process
// calls (see Autoencoder.ScoreBatch for the kernel argument).
func (mon *Monitor) ProcessBatch(dst []Result, xs [][]Q) []Result {
	labels, scores := mon.ensureBatch()
	for start := 0; start < len(xs); start += batchChunk {
		end := start + batchChunk
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[start:end]
		for _, x := range chunk {
			if len(x) != mon.dims {
				panic(fmt.Sprintf("fixed: sample dimension %d, want %d", len(x), mon.dims))
			}
		}
		mon.scoreBatch(labels[:len(chunk)], scores[:len(chunk)], chunk)
		for i, x := range chunk {
			mon.samples++
			dst = append(dst, mon.step(x, labels[i], scores[i]))
		}
	}
	return dst
}

// updateCentroid applies the running-mean rule in fixed point:
// cor ← cor + (x − cor)/(n+1), the rearrangement that avoids the
// overflow-prone cor·n product.
func (mon *Monitor) updateCentroid(label int, x []Q) {
	n := mon.num[label]
	inv := Div(One, FromFloat(float64(n+1)))
	row := mon.cor[label]
	for j, v := range x {
		row[j] = Add(row[j], Mul(Sub(v, row[j]), inv))
	}
	mon.num[label] = n + 1
	mon.ops.AddMulAdd(2 * mon.dims)
	mon.ops.AddDiv(1)
}

func (mon *Monitor) centroidDist() Q {
	var total int64
	for c := range mon.cor {
		total += int64(L1DistAcc(mon.cor[c], mon.trainCor[c]))
	}
	mon.ops.AddAbs(len(mon.cor) * mon.dims)
	mon.ops.AddAdd(len(mon.cor) * mon.dims)
	return satur(total)
}

// MemoryBytes audits the monitor's retained state: 4-byte words for
// every weight and centroid — the number that must fit the device.
func (mon *Monitor) MemoryBytes() int {
	const w = 4
	total := 8 * w // scalars
	for _, inst := range mon.instances {
		total += w * (len(inst.w) + len(inst.bias) + len(inst.beta) + len(inst.h) + len(inst.recon) + len(inst.hb))
	}
	for c := range mon.cor {
		total += w * (len(mon.cor[c]) + len(mon.trainCor[c]))
	}
	total += 4 * len(mon.num)
	// Batch staging, zero until the batched path is first used.
	for _, col := range mon.batchCols {
		total += w * len(col)
	}
	total += 8*len(mon.batchLabels) + w*len(mon.batchScores)
	return total
}

package fixed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"edgedrift/internal/ckpt"
)

// qfixMagicV1 identifies a serialised fixed-point monitor (QFIX01): the
// magic, the monitor geometry, every instance's quantised parameters,
// the centroid state and the drift state machine, all as exact Q16.16
// words — integer state round-trips bit-for-bit by construction. The
// artifact is covered by a ckpt CRC32 footer like every other wire
// format in this repository, so corruption fails loudly at load.
//
// This is what makes a Q16.16 fleet member checkpointable and therefore
// migratable: the float Monitor ships as an OSELM3 artifact, the
// quantised port ships as QFIX01, and the fleet container's member-kind
// byte says which decoder to use.
var qfixMagicV1 = [6]byte{'Q', 'F', 'I', 'X', '0', '1'}

// ErrBadFormat reports a stream that is not a serialised fixed-point
// monitor, or one that is truncated or corrupt.
var ErrBadFormat = errors.New("fixed: not a serialised fixed-point monitor (or corrupt artifact)")

// Sanity bounds so a corrupt header fails as ErrBadFormat instead of
// demanding an absurd allocation.
const (
	maxLoadDim     = 1 << 20
	maxLoadClasses = 1 << 16
	maxLoadEvents  = 1 << 24
)

// Save serialises the monitor's complete state to w. The artifact is a
// sample-boundary snapshot: loading it and feeding the same subsequent
// samples produces bit-identical results to never having saved, because
// every retained word is an integer written verbatim (compute staging —
// h, recon, batch buffers — is rebuilt at load and never carries state
// across samples).
func (mon *Monitor) Save(w io.Writer) error {
	cw := ckpt.NewWriter(w)
	if _, err := cw.Write(qfixMagicV1[:]); err != nil {
		return err
	}
	if err := putU32s(cw, uint32(mon.dims), uint32(mon.window), uint32(len(mon.instances))); err != nil {
		return err
	}
	if err := putQs(cw, []Q{mon.thetaError, mon.thetaDrift}); err != nil {
		return err
	}
	for _, inst := range mon.instances {
		if err := putU32s(cw, uint32(inst.inputs), uint32(inst.hidden), uint32(inst.sat)); err != nil {
			return err
		}
		for _, qs := range [][]Q{inst.w, inst.bias, inst.beta} {
			if err := putQs(cw, qs); err != nil {
				return err
			}
		}
	}
	for c := range mon.instances {
		if err := putQs(cw, mon.trainCor[c]); err != nil {
			return err
		}
		if err := putQs(cw, mon.cor[c]); err != nil {
			return err
		}
		if err := putU32s(cw, uint32(mon.num[c])); err != nil {
			return err
		}
	}
	flags := byte(0)
	if mon.check {
		flags |= 1
	}
	if mon.pending {
		flags |= 2
	}
	if _, err := cw.Write([]byte{flags}); err != nil {
		return err
	}
	if err := putU32s(cw, uint32(mon.win)); err != nil {
		return err
	}
	if err := putQs(cw, []Q{mon.dist}); err != nil {
		return err
	}
	if err := putU64(cw, uint64(mon.samples)); err != nil {
		return err
	}
	if err := putU32s(cw, uint32(len(mon.events))); err != nil {
		return err
	}
	for _, e := range mon.events {
		if err := putU64(cw, uint64(e)); err != nil {
			return err
		}
	}
	if err := putU32s(cw, uint32(mon.sat)); err != nil {
		return err
	}
	return cw.WriteFooter()
}

// LoadMonitor deserialises a monitor written by Save. It is immediately
// ready to Process; operation counting (SetOps) and batch staging are
// reattached or rebuilt lazily by the caller as needed.
func LoadMonitor(r io.Reader) (*Monitor, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, badFormat(fmt.Errorf("load header: %w", err))
	}
	if got != qfixMagicV1 {
		return nil, ErrBadFormat
	}
	cr := ckpt.NewReader(r)
	cr.Fold(got[:])
	var dims, window, classes uint32
	if err := getU32s(cr, &dims, &window, &classes); err != nil {
		return nil, badFormat(err)
	}
	if dims == 0 || dims > maxLoadDim || window > maxLoadDim || classes == 0 || classes > maxLoadClasses {
		return nil, badFormat(fmt.Errorf("implausible geometry dims=%d window=%d classes=%d", dims, window, classes))
	}
	mon := &Monitor{
		dims:   int(dims),
		window: int(window),
		num:    make([]int32, classes),
	}
	var thetas [2]Q
	if err := getQs(cr, thetas[:]); err != nil {
		return nil, badFormat(err)
	}
	mon.thetaError, mon.thetaDrift = thetas[0], thetas[1]
	for c := uint32(0); c < classes; c++ {
		var inputs, hidden, sat uint32
		if err := getU32s(cr, &inputs, &hidden, &sat); err != nil {
			return nil, badFormat(err)
		}
		if inputs == 0 || inputs > maxLoadDim || hidden == 0 || hidden > maxLoadDim {
			return nil, badFormat(fmt.Errorf("instance %d: implausible shape %dx%d", c, inputs, hidden))
		}
		inst := &Autoencoder{
			inputs: int(inputs),
			hidden: int(hidden),
			w:      make([]Q, int(hidden)*int(inputs)),
			bias:   make([]Q, hidden),
			beta:   make([]Q, int(hidden)*int(inputs)),
			h:      make([]Q, hidden),
			recon:  make([]Q, inputs),
			sat:    int(sat),
		}
		for _, qs := range [][]Q{inst.w, inst.bias, inst.beta} {
			if err := getQs(cr, qs); err != nil {
				return nil, badFormat(fmt.Errorf("instance %d: %w", c, err))
			}
		}
		mon.instances = append(mon.instances, inst)
	}
	for c := uint32(0); c < classes; c++ {
		trainCor := make([]Q, dims)
		cor := make([]Q, dims)
		if err := getQs(cr, trainCor); err != nil {
			return nil, badFormat(err)
		}
		if err := getQs(cr, cor); err != nil {
			return nil, badFormat(err)
		}
		var num uint32
		if err := getU32s(cr, &num); err != nil {
			return nil, badFormat(err)
		}
		mon.trainCor = append(mon.trainCor, trainCor)
		mon.cor = append(mon.cor, cor)
		mon.num[c] = int32(num)
	}
	var flags [1]byte
	if _, err := io.ReadFull(cr, flags[:]); err != nil {
		return nil, badFormat(err)
	}
	mon.check = flags[0]&1 != 0
	mon.pending = flags[0]&2 != 0
	var win uint32
	if err := getU32s(cr, &win); err != nil {
		return nil, badFormat(err)
	}
	mon.win = int(win)
	var dist [1]Q
	if err := getQs(cr, dist[:]); err != nil {
		return nil, badFormat(err)
	}
	mon.dist = dist[0]
	smp, err := getU64(cr)
	if err != nil {
		return nil, badFormat(err)
	}
	mon.samples = int(smp)
	var nEvents uint32
	if err := getU32s(cr, &nEvents); err != nil {
		return nil, badFormat(err)
	}
	if nEvents > maxLoadEvents {
		return nil, badFormat(fmt.Errorf("implausible event count %d", nEvents))
	}
	for i := uint32(0); i < nEvents; i++ {
		e, err := getU64(cr)
		if err != nil {
			return nil, badFormat(err)
		}
		mon.events = append(mon.events, int(e))
	}
	var sat uint32
	if err := getU32s(cr, &sat); err != nil {
		return nil, badFormat(err)
	}
	mon.sat = int(sat)
	if err := cr.VerifyFooter(); err != nil {
		return nil, badFormat(err)
	}
	return mon, nil
}

// Save serialises the stream's wrapped monitor (the stream itself holds
// only compute staging, rebuilt by LoadStream).
func (s *Stream) Save(w io.Writer) error { return s.mon.Save(w) }

// LoadStream deserialises a fixed-point streaming stage written by
// Stream.Save, immediately ready to Process.
func LoadStream(r io.Reader) (*Stream, error) {
	mon, err := LoadMonitor(r)
	if err != nil {
		return nil, err
	}
	return NewStream(mon), nil
}

// badFormat wraps a load failure so it matches both ErrBadFormat and
// the underlying cause (including ckpt.ErrChecksum).
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("fixed: corrupt artifact: %w: %w", ErrBadFormat, err)
}

func putU32s(w io.Writer, vs ...uint32) error {
	var b [4]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint32(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func getU32s(r io.Reader, vs ...*uint32) error {
	var b [4]byte
	for _, v := range vs {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return err
		}
		*v = binary.LittleEndian.Uint32(b[:])
	}
	return nil
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// putQs writes a Q16.16 vector as little-endian 32-bit words.
func putQs(w io.Writer, qs []Q) error {
	buf := make([]byte, 4*len(qs))
	for i, q := range qs {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(q))
	}
	_, err := w.Write(buf)
	return err
}

// getQs reads len(qs) little-endian 32-bit words into qs.
func getQs(r io.Reader, qs []Q) error {
	buf := make([]byte, 4*len(qs))
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range qs {
		qs[i] = Q(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

// Package fixed implements Q16.16 fixed-point arithmetic and a
// fixed-point port of the inference/detection path, modelling how the
// paper's method actually deploys on an FPU-less Cortex-M0+.
//
// The Raspberry Pi Pico has no floating-point hardware: every float
// operation is a multi-hundred-cycle software routine (the cost the
// Table 6 reproduction models). Production MCU ports therefore quantise:
// weights become 32-bit fixed-point words and the hot loops become
// integer multiply-accumulates, roughly two orders of magnitude cheaper.
// This package provides:
//
//   - the Q16.16 scalar type and its arithmetic (saturating conversion,
//     full-precision 64-bit intermediate products);
//   - a piecewise-linear sigmoid suited to table-driven MCUs;
//   - Autoencoder, an inference-only quantisation of a trained
//     oselm.Autoencoder;
//   - Monitor, the on-device half of a split deployment: quantised label
//     prediction plus the sequential centroid drift check of Algorithm 1.
//     On detection it raises a flag instead of reconstructing — the
//     realistic division of labour where the MCU watches and a host
//     retrains (full on-device reconstruction needs the float path).
//
// Quantisation error is bounded by the Q16.16 resolution (2⁻¹⁶ ≈ 1.5e-5
// per operand); the tests verify scores and drift decisions track the
// float implementation on realistic data.
package fixed

import (
	"fmt"
	"math"
)

// Q is a Q16.16 fixed-point number: 16 integer bits (signed) and 16
// fractional bits in an int32.
type Q int32

// Shift is the fractional bit count.
const Shift = 16

// One is the Q representation of 1.0.
const One Q = 1 << Shift

// MaxQ and MinQ are the representable range (≈ ±32768).
const (
	MaxQ Q = math.MaxInt32
	MinQ Q = math.MinInt32
)

// FromFloat converts a float64 to Q with saturation.
func FromFloat(f float64) Q {
	v := f * float64(One)
	switch {
	case v >= float64(MaxQ):
		return MaxQ
	case v <= float64(MinQ):
		return MinQ
	case math.IsNaN(v):
		return 0
	}
	return Q(math.Round(v))
}

// Float converts q back to float64.
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Mul multiplies two Q values with a 64-bit intermediate (no overflow of
// the product itself; the result saturates).
func Mul(a, b Q) Q {
	p := (int64(a) * int64(b)) >> Shift
	return satur(p)
}

// Div divides a by b (b must be non-zero) with saturation.
func Div(a, b Q) Q {
	if b == 0 {
		panic("fixed: division by zero")
	}
	p := (int64(a) << Shift) / int64(b)
	return satur(p)
}

// Add returns a+b with saturation.
func Add(a, b Q) Q { return satur(int64(a) + int64(b)) }

// Sub returns a−b with saturation.
func Sub(a, b Q) Q { return satur(int64(a) - int64(b)) }

// Abs returns |q| (saturating at MaxQ for MinQ).
func Abs(q Q) Q {
	if q >= 0 {
		return q
	}
	if q == MinQ {
		return MaxQ
	}
	return -q
}

func satur(v int64) Q {
	switch {
	case v > int64(MaxQ):
		return MaxQ
	case v < int64(MinQ):
		return MinQ
	}
	return Q(v)
}

// DotAcc accumulates Σ aᵢ·bᵢ in a 64-bit accumulator and converts once —
// the standard fixed-point MAC-loop pattern (one shift per dot product,
// not per term).
func DotAcc(a, b []Q) Q {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fixed: dot length %d vs %d", len(a), len(b)))
	}
	var acc int64
	for i, v := range a {
		acc += int64(v) * int64(b[i])
	}
	return satur(acc >> Shift)
}

// L1DistAcc returns Σ|aᵢ−bᵢ| with a 64-bit accumulator.
func L1DistAcc(a, b []Q) Q {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fixed: l1 length %d vs %d", len(a), len(b)))
	}
	var acc int64
	for i, v := range a {
		d := int64(v) - int64(b[i])
		if d < 0 {
			d = -d
		}
		acc += d
	}
	return satur(acc)
}

// sigmoidTable holds a piecewise-linear approximation of the logistic
// function over [-8, 8] with 64 segments; beyond the range it clamps to
// 0/1. Max absolute error ≈ 1e-3, well below the Q16.16 noise floor of
// the downstream dot products at D≈500.
const sigmoidSegments = 64

var sigmoidTable [sigmoidSegments + 1]Q

func init() {
	for i := 0; i <= sigmoidSegments; i++ {
		x := -8.0 + 16.0*float64(i)/float64(sigmoidSegments)
		sigmoidTable[i] = FromFloat(1.0 / (1.0 + math.Exp(-x)))
	}
}

// Sigmoid evaluates the logistic function by table interpolation.
func Sigmoid(x Q) Q {
	lo := FromFloat(-8)
	hi := FromFloat(8)
	if x <= lo {
		return 0
	}
	if x >= hi {
		return One
	}
	// Position within the table: (x+8)/16 · segments.
	pos := (int64(x) - int64(lo)) * sigmoidSegments
	span := int64(hi) - int64(lo)
	idx := pos / span
	frac := Q(((pos % span) << Shift) / span)
	a := sigmoidTable[idx]
	b := sigmoidTable[idx+1]
	return Add(a, Mul(frac, Sub(b, a)))
}

// QuantizeVec converts a float vector to Q.
func QuantizeVec(xs []float64) []Q {
	out := make([]Q, len(xs))
	for i, v := range xs {
		out[i] = FromFloat(v)
	}
	return out
}

// DequantizeVec converts back to float64.
func DequantizeVec(qs []Q) []float64 {
	out := make([]float64, len(qs))
	for i, v := range qs {
		out[i] = v.Float()
	}
	return out
}

// Package fixed implements Q16.16 fixed-point arithmetic and a
// fixed-point port of the inference/detection path, modelling how the
// paper's method actually deploys on an FPU-less Cortex-M0+.
//
// The Raspberry Pi Pico has no floating-point hardware: every float
// operation is a multi-hundred-cycle software routine (the cost the
// Table 6 reproduction models). Production MCU ports therefore quantise:
// weights become 32-bit fixed-point words and the hot loops become
// integer multiply-accumulates, roughly two orders of magnitude cheaper.
// This package provides:
//
//   - the Q16.16 scalar type Q and float conversion (the arithmetic
//     kernels live in internal/mat's Q16 layer, shared with the float
//     backends' kernel layer — this package instantiates them at Q);
//   - Autoencoder, an inference-only quantisation of a trained
//     oselm.Autoencoder, with saturation accounting;
//   - Monitor, the on-device half of a split deployment: quantised label
//     prediction plus the sequential centroid drift check of Algorithm 1.
//     On detection it raises a flag instead of reconstructing — the
//     realistic division of labour where the MCU watches and a host
//     retrains (full on-device reconstruction needs the float path).
//
// Quantisation error is bounded by the Q16.16 resolution (2⁻¹⁶ ≈ 1.5e-5
// per operand); the tests verify scores and drift decisions track the
// float implementation on realistic data.
package fixed

import (
	"math"

	"edgedrift/internal/mat"
)

// Q is a Q16.16 fixed-point number: 16 integer bits (signed) and 16
// fractional bits in an int32. It satisfies mat.FixedElement, so the
// shared integer kernels instantiate at it directly.
type Q int32

// Shift is the fractional bit count.
const Shift = mat.Q16Shift

// One is the Q representation of 1.0.
const One = Q(mat.Q16One)

// MaxQ and MinQ are the representable range (≈ ±32768).
const (
	MaxQ Q = math.MaxInt32
	MinQ Q = math.MinInt32
)

// FromFloat converts a float64 to Q with silent saturation.
func FromFloat(f float64) Q {
	q, _ := FromFloatChecked(f)
	return q
}

// FromFloatChecked converts a float64 to Q, additionally reporting
// whether the value was clipped to the representable range (or was NaN,
// mapped to 0) — the silent failure mode of quantising a model whose
// weights outgrew ±32768. Quantisation entry points count these so a
// bad quantisation is visible in health reporting instead of just
// scoring garbage.
func FromFloatChecked(f float64) (Q, bool) {
	v := f * float64(One)
	switch {
	case v >= float64(MaxQ):
		return MaxQ, true
	case v <= float64(MinQ):
		return MinQ, true
	case math.IsNaN(v):
		return 0, true
	}
	return Q(math.Round(v)), false
}

// Float converts q back to float64.
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Mul multiplies two Q values with a 64-bit intermediate (no overflow of
// the product itself; the result saturates).
func Mul(a, b Q) Q { return mat.MulQ16(a, b) }

// Div divides a by b (b must be non-zero) with saturation.
func Div(a, b Q) Q {
	if b == 0 {
		panic("fixed: division by zero")
	}
	p := (int64(a) << Shift) / int64(b)
	return satur(p)
}

// Add returns a+b with saturation.
func Add(a, b Q) Q { return mat.AddQ16(a, b) }

// Sub returns a−b with saturation.
func Sub(a, b Q) Q { return mat.SubQ16(a, b) }

// Abs returns |q| (saturating at MaxQ for MinQ).
func Abs(q Q) Q {
	if q >= 0 {
		return q
	}
	if q == MinQ {
		return MaxQ
	}
	return -q
}

func satur(v int64) Q { return mat.SatQ16[Q](v) }

// DotAcc accumulates Σ aᵢ·bᵢ in a 64-bit accumulator and converts once —
// the standard fixed-point MAC-loop pattern (one shift per dot product,
// not per term).
func DotAcc(a, b []Q) Q { return mat.DotQ16(a, b) }

// L1DistAcc returns Σ|aᵢ−bᵢ| with a 64-bit accumulator.
func L1DistAcc(a, b []Q) Q { return mat.L1DistQ16(a, b) }

// Sigmoid evaluates the logistic function by table interpolation — the
// shared piecewise-linear kernel over [−8, 8].
func Sigmoid(x Q) Q { return mat.SigmoidQ16(x) }

// QuantizeVec converts a float vector to Q with silent saturation.
func QuantizeVec(xs []float64) []Q {
	out, _ := QuantizeVecChecked(xs)
	return out
}

// QuantizeVecChecked converts a float vector to Q and reports how many
// elements saturated.
func QuantizeVecChecked(xs []float64) ([]Q, int) {
	out := make([]Q, len(xs))
	sat := 0
	for i, v := range xs {
		q, s := FromFloatChecked(v)
		out[i] = q
		if s {
			sat++
		}
	}
	return out, sat
}

// DequantizeVec converts back to float64.
func DequantizeVec(qs []Q) []float64 {
	out := make([]float64, len(qs))
	for i, v := range qs {
		out[i] = v.Float()
	}
	return out
}

package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 1, -1, 0.5, -0.25, 3.14159, 1000, -1000, 1.0 / 65536}
	for _, f := range cases {
		q := FromFloat(f)
		if got := q.Float(); math.Abs(got-f) > 1.0/65536 {
			t.Fatalf("round trip %v → %v", f, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	if FromFloat(1e9) != MaxQ {
		t.Fatal("positive saturation")
	}
	if FromFloat(-1e9) != MinQ {
		t.Fatal("negative saturation")
	}
	if FromFloat(math.NaN()) != 0 {
		t.Fatal("NaN should map to 0")
	}
}

func TestArithmetic(t *testing.T) {
	a, b := FromFloat(2.5), FromFloat(-1.5)
	if got := Add(a, b).Float(); got != 1 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(a, b).Float(); got != 4 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Float(); math.Abs(got+3.75) > 1e-4 {
		t.Fatalf("Mul = %v", got)
	}
	if got := Div(a, b).Float(); math.Abs(got+5.0/3) > 1e-4 {
		t.Fatalf("Div = %v", got)
	}
	if Abs(b) != FromFloat(1.5) {
		t.Fatal("Abs")
	}
	if Abs(MinQ) != MaxQ {
		t.Fatal("Abs(MinQ) must saturate")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Div(One, 0)
}

func TestMulSaturates(t *testing.T) {
	big := FromFloat(30000)
	if Mul(big, big) != MaxQ {
		t.Fatal("Mul should saturate")
	}
	if Mul(big, Sub(0, big)) != MinQ {
		t.Fatal("Mul should saturate negatively")
	}
}

func TestDotAccMatchesFloat(t *testing.T) {
	a := []float64{0.5, -1.25, 2, 0.0625}
	b := []float64{1, 2, -0.5, 8}
	qa, qb := QuantizeVec(a), QuantizeVec(b)
	var want float64
	for i := range a {
		want += a[i] * b[i]
	}
	if got := DotAcc(qa, qb).Float(); math.Abs(got-want) > 1e-3 {
		t.Fatalf("DotAcc = %v, want %v", got, want)
	}
}

func TestL1DistAcc(t *testing.T) {
	a := QuantizeVec([]float64{0, 1, -2})
	b := QuantizeVec([]float64{1, 1, 2})
	if got := L1DistAcc(a, b).Float(); math.Abs(got-5) > 1e-3 {
		t.Fatalf("L1 = %v", got)
	}
}

func TestSigmoidAccuracy(t *testing.T) {
	for x := -10.0; x <= 10; x += 0.173 {
		want := 1 / (1 + math.Exp(-x))
		got := Sigmoid(FromFloat(x)).Float()
		if math.Abs(got-want) > 2e-3 {
			t.Fatalf("sigmoid(%v) = %v, want %v", x, got, want)
		}
	}
	if Sigmoid(FromFloat(-20)) != 0 || Sigmoid(FromFloat(20)) != One {
		t.Fatal("sigmoid clamps")
	}
}

func TestQuantizeDequantize(t *testing.T) {
	xs := []float64{1.5, -2.25, 0}
	back := DequantizeVec(QuantizeVec(xs))
	for i := range xs {
		if math.Abs(back[i]-xs[i]) > 1e-4 {
			t.Fatalf("vec round trip %v → %v", xs[i], back[i])
		}
	}
}

// Property: Add/Sub/Mul agree with float arithmetic within quantisation
// noise for moderate operands.
func TestPropArithmeticTracksFloat(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a := float64(aRaw) / 256
		b := float64(bRaw) / 256
		qa, qb := FromFloat(a), FromFloat(b)
		const eps = 1e-3
		if math.Abs(Add(qa, qb).Float()-(a+b)) > eps {
			return false
		}
		if math.Abs(Sub(qa, qb).Float()-(a-b)) > eps {
			return false
		}
		return math.Abs(Mul(qa, qb).Float()-a*b) <= eps*(1+math.Abs(a*b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: sigmoid is monotone non-decreasing in fixed point.
func TestPropSigmoidMonotone(t *testing.T) {
	f := func(aRaw, bRaw int16) bool {
		a, b := Q(aRaw)*256, Q(bRaw)*256
		if a > b {
			a, b = b, a
		}
		return Sigmoid(a) <= Sigmoid(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDotAcc511(b *testing.B) {
	a := make([]Q, 511)
	c := make([]Q, 511)
	for i := range a {
		a[i] = FromFloat(float64(i%7) * 0.1)
		c[i] = FromFloat(float64(i%5) * 0.2)
	}
	var sink Q
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += DotAcc(a, c)
	}
	_ = sink
}

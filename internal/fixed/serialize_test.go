package fixed

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// TestSaveLoadBitIdenticalContinuation is the QFIX01 contract: save a
// mid-stream monitor, load it, and the resumed copy must produce
// bit-identical results to the original on every subsequent sample —
// including across a drift detection and through the batched path.
func TestSaveLoadBitIdenticalContinuation(t *testing.T) {
	det, r := calibratedFloatDetector(t, 42)
	mon := QuantizeDetector(det)
	s := NewStream(mon)

	// Drive the stream partway, ending mid-window so the checkpoint
	// carries non-trivial state-machine and centroid state.
	for i := 0; i < 137; i++ {
		s.Process(monSample(r, i%monClasses, 2.5))
	}

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	resumed, err := LoadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// The same post-checkpoint samples through both copies, shifted so
	// drifts fire. Per-sample on the original, batched on the resumed
	// copy — exercising checkpoint identity and the batch contract at
	// once.
	var post [][]float64
	for i := 0; i < 120; i++ {
		post = append(post, monSample(r, i%monClasses, 5))
	}
	var want []Result
	for _, x := range post {
		rr := s.mon.Process(quantize(s, x))
		want = append(want, rr)
	}
	got := resumed.mon.ProcessBatch(nil, quantizeAll(resumed, post))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed monitor diverged from the original after load")
	}
	if s.mon.samples != resumed.mon.samples || s.mon.sat != resumed.mon.sat {
		t.Fatalf("counters diverged: samples %d/%d sat %d/%d",
			s.mon.samples, resumed.mon.samples, s.mon.sat, resumed.mon.sat)
	}
	if !reflect.DeepEqual(s.mon.Events(), resumed.mon.Events()) {
		t.Fatalf("event logs diverged: %v vs %v", s.mon.Events(), resumed.mon.Events())
	}

	// Save-load-save byte identity: the artifact is deterministic.
	var buf2 bytes.Buffer
	if err := LoadedCopySave(t, buf.Bytes(), &buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save-load-save is not byte-identical")
	}
}

// LoadedCopySave loads an artifact and re-saves it, for byte-identity
// checks.
func LoadedCopySave(t *testing.T, art []byte, w *bytes.Buffer) error {
	t.Helper()
	st, err := LoadStream(bytes.NewReader(art))
	if err != nil {
		return err
	}
	return st.Save(w)
}

func quantize(s *Stream, x []float64) []Q {
	out := make([]Q, len(x))
	for i, v := range x {
		out[i] = FromFloat(v)
	}
	return out
}

func quantizeAll(s *Stream, xs [][]float64) [][]Q {
	out := make([][]Q, len(xs))
	for i, x := range xs {
		out[i] = quantize(s, x)
	}
	return out
}

// TestLoadCorruptionQFIX flips every byte of the artifact in turn and
// truncates it at several lengths; every damage must fail with
// ErrBadFormat, never a panic or a silently-wrong monitor.
func TestLoadCorruptionQFIX(t *testing.T) {
	det, _ := calibratedFloatDetector(t, 7)
	s := NewStream(QuantizeDetector(det))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	art := buf.Bytes()
	for pos := 0; pos < len(art); pos++ {
		bad := append([]byte(nil), art...)
		bad[pos] ^= 0x40
		if _, err := LoadStream(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadFormat", pos, err)
		}
	}
	for _, n := range []int{0, 3, 6, 10, len(art) / 2, len(art) - 1} {
		if _, err := LoadStream(bytes.NewReader(art[:n])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrBadFormat", n, err)
		}
	}
}

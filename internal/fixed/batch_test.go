package fixed

import (
	"math"
	"testing"

	"edgedrift/internal/core"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// batchTrace builds a float sample sequence that covers every monitor
// regime: stationary monitoring, an open check window, a drift
// detection, and the pending phase after it.
func batchTrace(r *rng.Rand, n int) [][]float64 {
	xs := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		shift := 0.0
		if i >= n/3 {
			shift = 4 // drifted regime for the back two-thirds
		}
		xs = append(xs, monSample(r, i%monClasses, shift))
	}
	return xs
}

func quantTrace(xs [][]float64) [][]Q {
	qs := make([][]Q, len(xs))
	for i, x := range xs {
		qs[i] = QuantizeVec(x)
	}
	return qs
}

func TestMonitorProcessBatchMatchesProcess(t *testing.T) {
	det, r := calibratedFloatDetector(t, 11)
	xs := quantTrace(batchTrace(r, 700))
	for _, bs := range []int{1, 3, 63, 64, 65, 130, 700} {
		seq := QuantizeDetector(det)
		bat := QuantizeDetector(det)
		var seqOps, batOps opcount.Counter
		seq.SetOps(&seqOps)
		bat.SetOps(&batOps)

		// ClearDrift only at segment boundaries, the same stream
		// positions on both paths, so the comparison stays fair while
		// still exercising the pending and post-clear regimes.
		seg := len(xs) / 2
		want := make([]Result, 0, len(xs))
		for i, x := range xs {
			want = append(want, seq.Process(x))
			if i == seg {
				seq.ClearDrift()
			}
		}
		got := make([]Result, 0, len(xs))
		for start := 0; start < len(xs); start += bs {
			end := start + bs
			if end > len(xs) {
				end = len(xs)
			}
			for i := start; i < end; i++ {
				got = bat.ProcessBatch(got, xs[i:i+1])
				if i == seg {
					bat.ClearDrift()
				}
			}
		}
		// Re-run the whole trace in true chunks on a third monitor and a
		// fourth per-sample reference without any clears, so chunked
		// batches (not just size-1 ones) are exercised too.
		seq2 := QuantizeDetector(det)
		bat2 := QuantizeDetector(det)
		want2 := make([]Result, 0, len(xs))
		for _, x := range xs {
			want2 = append(want2, seq2.Process(x))
		}
		got2 := make([]Result, 0, len(xs))
		for start := 0; start < len(xs); start += bs {
			end := start + bs
			if end > len(xs) {
				end = len(xs)
			}
			got2 = bat2.ProcessBatch(got2, xs[start:end])
		}
		for i := range want2 {
			if got2[i] != want2[i] {
				t.Fatalf("bs=%d (chunked) sample %d: got %+v want %+v", bs, i, got2[i], want2[i])
			}
		}
		if len(got) != len(want) {
			t.Fatalf("bs=%d: %d results, want %d", bs, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("bs=%d sample %d: got %+v want %+v", bs, i, got[i], want[i])
			}
		}
		if seqOps != batOps {
			t.Fatalf("bs=%d: op counters diverge: seq %+v bat %+v", bs, seqOps, batOps)
		}
		se, be := seq.Events(), bat.Events()
		if len(se) != len(be) {
			t.Fatalf("bs=%d: events %v vs %v", bs, be, se)
		}
		for i := range se {
			if se[i] != be[i] {
				t.Fatalf("bs=%d: events %v vs %v", bs, be, se)
			}
		}
	}
}

func TestStreamProcessBatchMatchesProcess(t *testing.T) {
	det, r := calibratedFloatDetector(t, 12)
	xs := batchTrace(r, 500)
	for _, bs := range []int{1, 5, 64, 65, 130} {
		seq := NewStream(QuantizeDetector(det))
		bat := NewStream(QuantizeDetector(det))

		// No clears: the pending phase persists after the detection, so
		// the trace covers monitoring, checking and the pending regime.
		want := make([]core.Result, 0, len(xs))
		for _, x := range xs {
			want = append(want, seq.Process(x))
		}
		got := make([]core.Result, 0, len(xs))
		for start := 0; start < len(xs); start += bs {
			end := start + bs
			if end > len(xs) {
				end = len(xs)
			}
			got = bat.ProcessBatch(got, xs[start:end])
		}
		if len(got) != len(want) {
			t.Fatalf("bs=%d: %d results, want %d", bs, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if g.Label != w.Label || g.Phase != w.Phase ||
				g.DriftDetected != w.DriftDetected || g.Rejected != w.Rejected ||
				math.Float64bits(g.Score) != math.Float64bits(w.Score) {
				t.Fatalf("bs=%d sample %d: got %+v want %+v", bs, i, g, w)
			}
		}
		if seq.Health() != bat.Health() {
			t.Fatalf("bs=%d: health diverges: %+v vs %+v", bs, bat.Health(), seq.Health())
		}
	}
}

func TestMonitorProcessBatchZeroAllocs(t *testing.T) {
	det, r := calibratedFloatDetector(t, 13)
	mon := QuantizeDetector(det)
	xs := quantTrace(batchTrace(r, 96))
	dst := make([]Result, 0, len(xs))
	// Prime the lazy batch buffers.
	dst = mon.ProcessBatch(dst, xs)
	mon.ClearDrift()
	allocs := testing.AllocsPerRun(100, func() {
		dst = mon.ProcessBatch(dst[:0], xs)
		mon.ClearDrift()
	})
	if allocs != 0 {
		t.Fatalf("ProcessBatch allocates %v per call, want 0", allocs)
	}
}

func TestStreamProcessBatchZeroAllocs(t *testing.T) {
	det, r := calibratedFloatDetector(t, 14)
	s := NewStream(QuantizeDetector(det))
	xs := batchTrace(r, 96)
	dst := make([]core.Result, 0, len(xs))
	dst = s.ProcessBatch(dst, xs)
	s.Monitor().ClearDrift()
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.ProcessBatch(dst[:0], xs)
		s.Monitor().ClearDrift()
	})
	if allocs != 0 {
		t.Fatalf("Stream.ProcessBatch allocates %v per call, want 0", allocs)
	}
}

func TestMonitorBatchMemoryAccounted(t *testing.T) {
	det, r := calibratedFloatDetector(t, 15)
	mon := QuantizeDetector(det)
	before := mon.MemoryBytes()
	xs := quantTrace(batchTrace(r, 8))
	mon.ProcessBatch(make([]Result, 0, len(xs)), xs)
	after := mon.MemoryBytes()
	if after <= before {
		t.Fatalf("batch staging not audited: %d -> %d", before, after)
	}
}

func TestMonitorProcessBatchPanicsOnBadDims(t *testing.T) {
	det, _ := calibratedFloatDetector(t, 16)
	mon := QuantizeDetector(det)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mon.ProcessBatch(nil, [][]Q{make([]Q, monDims-1)})
}

package fixed

import (
	"edgedrift/internal/core"
	"edgedrift/internal/health"
	"edgedrift/internal/oselm"
)

// ScoreBackend adapts a quantised Autoencoder to the oselm.Backend
// scoring surface, so callers comparing precision backends can hold the
// Q16.16 port behind the same interface as the float models. The float
// boundary is crossed through a retained staging buffer — no per-call
// allocation.
type ScoreBackend struct {
	ae *Autoencoder
	xq []Q
}

// NewScoreBackend wraps a quantised autoencoder.
func NewScoreBackend(ae *Autoencoder) *ScoreBackend {
	return &ScoreBackend{ae: ae, xq: make([]Q, ae.Inputs())}
}

// Score quantises x and returns the fixed-point reconstruction error,
// widened back to float64.
func (s *ScoreBackend) Score(x []float64) float64 {
	for i, v := range x {
		s.xq[i] = FromFloat(v)
	}
	return s.ae.Score(s.xq).Float()
}

// Precision identifies the backend.
func (s *ScoreBackend) Precision() oselm.Precision { return oselm.Fixed16 }

// MemoryBytes audits the retained state: the quantised weights plus the
// staging buffer.
func (s *ScoreBackend) MemoryBytes() int {
	const w = 4
	a := s.ae
	return w * (len(a.w) + len(a.bias) + len(a.beta) + len(a.h) + len(a.recon) + len(s.xq))
}

var _ oselm.Backend = (*ScoreBackend)(nil)

// Stream adapts a quantised Monitor to the core.Streaming stage
// contract, so the fleet layer can host Q16.16 members next to float
// detectors. Input samples are quantised through a retained buffer;
// results are widened back to float64.
type Stream struct {
	mon *Monitor
	xq  []Q
	xqb [][]Q // batchChunk quantise rows for ProcessBatch (lazy)
}

// NewStream wraps a quantised monitor as a streaming stage.
func NewStream(mon *Monitor) *Stream {
	return &Stream{mon: mon, xq: make([]Q, mon.dims)}
}

// Monitor returns the wrapped fixed-point monitor.
func (s *Stream) Monitor() *Monitor { return s.mon }

// Process quantises one sample and runs the fixed-point monitor on it.
func (s *Stream) Process(x []float64) core.Result {
	for i, v := range x {
		s.xq[i] = FromFloat(v)
	}
	r := s.mon.Process(s.xq)
	return core.Result{
		Label:         r.Label,
		Score:         r.Score.Float(),
		Phase:         s.phaseNow(),
		DriftDetected: r.DriftDetected,
	}
}

// ProcessBatch quantises a chunk of samples into retained staging rows,
// scores the chunk through the monitor's batched kernel, then drives
// the drift state machine one sample at a time — reading the phase
// after each step, exactly as the per-sample path observes it. The
// quantised model never trains on-device, so the batched prediction is
// always semantics-preserving and the results are bit-identical to
// per-sample Process calls.
func (s *Stream) ProcessBatch(dst []core.Result, xs [][]float64) []core.Result {
	if s.xqb == nil {
		s.xqb = make([][]Q, batchChunk)
		for i := range s.xqb {
			s.xqb[i] = make([]Q, s.mon.dims)
		}
	}
	labels, scores := s.mon.ensureBatch()
	for start := 0; start < len(xs); start += batchChunk {
		end := start + batchChunk
		if end > len(xs) {
			end = len(xs)
		}
		n := end - start
		chunk := s.xqb[:n]
		for i, x := range xs[start:end] {
			row := chunk[i]
			for j, v := range x {
				row[j] = FromFloat(v)
			}
		}
		s.mon.scoreBatch(labels[:n], scores[:n], chunk)
		for i := 0; i < n; i++ {
			s.mon.samples++
			r := s.mon.step(chunk[i], labels[i], scores[i])
			dst = append(dst, core.Result{
				Label:         r.Label,
				Score:         r.Score.Float(),
				Phase:         s.phaseNow(),
				DriftDetected: r.DriftDetected,
			})
		}
	}
	return dst
}

// phaseNow maps the monitor's state onto the detector phase vocabulary:
// an open check window is Checking, a drift awaiting host action is
// Reconstructing (the adaptation is in flight, just host-side in the
// split deployment), everything else is Monitoring.
func (s *Stream) phaseNow() core.Phase {
	switch {
	case s.mon.pending:
		return core.Reconstructing
	case s.mon.check:
		return core.Checking
	default:
		return core.Monitoring
	}
}

// MemoryBytes audits the stage's retained state.
func (s *Stream) MemoryBytes() int {
	total := s.mon.MemoryBytes() + 4*len(s.xq)
	for _, row := range s.xqb {
		total += 4 * len(row)
	}
	return total
}

// Health reports the fixed-point stage's view of itself. Integer state
// cannot go non-finite, so PFinite is always true; the interesting
// counter is QuantSaturations, which records how much of the float
// model clipped when this stage was quantised.
func (s *Stream) Health() health.Snapshot {
	return health.Snapshot{
		SamplesSeen:      s.mon.samples,
		PFinite:          true,
		QuantSaturations: uint64(s.mon.sat),
		Phase:            s.phaseNow().String(),
	}
}

var _ core.Streaming = (*Stream)(nil)
var _ core.BatchStreaming = (*Stream)(nil)

package fixed

import (
	"math"
	"testing"

	"edgedrift/internal/core"
	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

const (
	monDims    = 6
	monClasses = 2
)

func monSample(r *rng.Rand, c int, shift float64) []float64 {
	x := make([]float64, monDims)
	for j := range x {
		x[j] = r.Normal(float64(c)*4+shift, 0.25)
	}
	return x
}

// calibratedFloatDetector trains and calibrates the float pipeline the
// quantised monitor derives from.
func calibratedFloatDetector(t testing.TB, seed uint64) (*core.Detector, *rng.Rand) {
	t.Helper()
	m, err := model.New(model.Config{Classes: monClasses, Inputs: monDims, Hidden: 8, Ridge: 1e-2, Metric: oselm.L1Mean}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 99)
	xs := make([][]float64, 0, 400)
	labels := make([]int, 0, 400)
	var tail stats.Running
	for i := 0; i < 400; i++ {
		c := i % monClasses
		x := monSample(r, c, 0)
		_, score := m.Predict(x)
		if i >= 200 {
			tail.Observe(score)
		}
		m.Train(x, c)
		xs = append(xs, x)
		labels = append(labels, c)
	}
	cfg := core.DefaultConfig(30)
	cfg.ErrorThreshold = tail.Mean() + 2*tail.Std()
	det, err := core.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	return det, r
}

func TestQuantizedScoresTrackFloat(t *testing.T) {
	det, r := calibratedFloatDetector(t, 1)
	mon := QuantizeDetector(det)
	maxRel := 0.0
	for i := 0; i < 100; i++ {
		c := i % monClasses
		x := monSample(r, c, 0)
		_, fScore := det.Model().Predict(x)
		res := mon.Process(QuantizeVec(x))
		qScore := res.Score.Float()
		rel := math.Abs(qScore-fScore) / (fScore + 1e-6)
		if rel > maxRel {
			maxRel = rel
		}
	}
	// L1-mean scores are O(0.1); quantisation noise must stay small
	// relative to them.
	if maxRel > 0.2 {
		t.Fatalf("worst relative score error %v", maxRel)
	}
}

func TestQuantizedLabelsAgreeWithFloat(t *testing.T) {
	det, r := calibratedFloatDetector(t, 2)
	mon := QuantizeDetector(det)
	agree := 0
	const n = 400
	for i := 0; i < n; i++ {
		c := i % monClasses
		x := monSample(r, c, 0)
		fLabel, _ := det.Model().Predict(x)
		if mon.Process(QuantizeVec(x)).Label == fLabel {
			agree++
		}
	}
	if agree < n*99/100 {
		t.Fatalf("label agreement %d/%d", agree, n)
	}
}

func TestQuantizedMonitorDetectsDrift(t *testing.T) {
	det, r := calibratedFloatDetector(t, 3)
	mon := QuantizeDetector(det)
	// Stationary phase: no detection.
	for i := 0; i < 300; i++ {
		if mon.Process(QuantizeVec(monSample(r, i%monClasses, 0))).DriftDetected {
			t.Fatalf("false positive at %d", i)
		}
	}
	// Drift phase.
	detected := -1
	for i := 0; i < 2000 && detected < 0; i++ {
		if mon.Process(QuantizeVec(monSample(r, i%monClasses, 4))).DriftDetected {
			detected = i
		}
	}
	if detected < 0 {
		t.Fatal("quantised monitor never detected the drift")
	}
	if !mon.DriftPending() {
		t.Fatal("DriftPending should be set")
	}
	if len(mon.Events()) != 1 {
		t.Fatalf("events %v", mon.Events())
	}
	// While pending, no further detections; predictions continue.
	res := mon.Process(QuantizeVec(monSample(r, 0, 4)))
	if res.DriftDetected {
		t.Fatal("detection while pending")
	}
	mon.ClearDrift()
	if mon.DriftPending() {
		t.Fatal("ClearDrift failed")
	}
}

func TestQuantizedMemorySmallerThanFloat(t *testing.T) {
	det, _ := calibratedFloatDetector(t, 4)
	mon := QuantizeDetector(det)
	if mon.MemoryBytes() >= det.MemoryBytes()/2+64 {
		t.Fatalf("quantised footprint %d not clearly below half of %d", mon.MemoryBytes(), det.MemoryBytes())
	}
}

func TestQuantizedOpsCounted(t *testing.T) {
	det, r := calibratedFloatDetector(t, 5)
	mon := QuantizeDetector(det)
	var ops opcount.Counter
	mon.SetOps(&ops)
	mon.Process(QuantizeVec(monSample(r, 0, 0)))
	if ops.MulAdd == 0 {
		t.Fatal("integer MACs not counted")
	}
}

func TestProcessPanicsOnBadDims(t *testing.T) {
	det, _ := calibratedFloatDetector(t, 6)
	mon := QuantizeDetector(det)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mon.Process([]Q{1, 2})
}

// Package stats provides the statistical primitives shared by the drift
// detectors: streaming moments (Welford), exponentially weighted averages,
// sample quantiles, histogram test statistics, and Gaussian distribution
// helpers.
//
// Everything here is sequential-friendly: the streaming accumulators hold
// O(1) or O(D) state, which is what makes them deployable on the paper's
// 264 kB target device.
package stats

import (
	"math"
	"sort"
)

// MeanStd returns the mean and (population) standard deviation of xs.
// It returns (0, 0) for an empty slice.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	n := float64(len(xs))
	for _, v := range xs {
		mean += v
	}
	mean /= n
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / n)
}

// Quantile returns the q-th sample quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// QuantileSorted is Quantile for an already ascending-sorted sample,
// avoiding the copy and sort.
func QuantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with P(Z ≤ x) = p for a standard normal Z.
// It panics for p outside (0, 1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: NormalQuantile requires p in (0,1)")
	}
	return -math.Sqrt2 * math.Erfinv(1-2*p)
}

// ChiSquareStatistic returns the Pearson statistic
// Σ (observedᵢ − expectedᵢ)² / expectedᵢ. Bins with zero expectation are
// skipped (they contribute nothing under the null).
func ChiSquareStatistic(observed []int, expected []float64) float64 {
	if len(observed) != len(expected) {
		panic("stats: chi-square length mismatch")
	}
	var s float64
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			continue
		}
		d := float64(o) - e
		s += d * d / e
	}
	return s
}

// TotalVariation returns ½ Σ |observedᵢ/n − expectedProbᵢ| for bin counts
// observed summing to n against a reference probability vector.
func TotalVariation(observed []int, expectedProb []float64) float64 {
	if len(observed) != len(expectedProb) {
		panic("stats: total-variation length mismatch")
	}
	n := 0
	for _, o := range observed {
		n += o
	}
	if n == 0 {
		return 0
	}
	inv := 1 / float64(n)
	var s float64
	for i, o := range observed {
		s += math.Abs(float64(o)*inv - expectedProb[i])
	}
	return 0.5 * s
}

// EWMA is an exponentially weighted moving average of a scalar stream.
type EWMA struct {
	// Alpha is the weight on the newest observation, in (0, 1].
	Alpha float64
	value float64
	seen  bool
}

// NewEWMA returns an EWMA with the given new-sample weight.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("stats: EWMA alpha out of (0,1]")
	}
	return &EWMA{Alpha: alpha}
}

// Observe folds x into the average. The first observation initialises the
// average exactly.
func (e *EWMA) Observe(x float64) {
	if !e.seen {
		e.value = x
		e.seen = true
		return
	}
	e.value = (1-e.Alpha)*e.value + e.Alpha*x
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Reset clears the accumulator.
func (e *EWMA) Reset() { e.value, e.seen = 0, false }

// MovingAccuracy tracks windowed classification accuracy over a stream —
// the quantity plotted in the paper's Figure 4.
type MovingAccuracy struct {
	window []bool
	head   int
	filled int
	hits   int
}

// NewMovingAccuracy returns a tracker over the given window length.
func NewMovingAccuracy(window int) *MovingAccuracy {
	if window <= 0 {
		panic("stats: MovingAccuracy window must be positive")
	}
	return &MovingAccuracy{window: make([]bool, window)}
}

// Observe records whether the latest prediction was correct.
func (m *MovingAccuracy) Observe(correct bool) {
	if m.filled == len(m.window) {
		if m.window[m.head] {
			m.hits--
		}
	} else {
		m.filled++
	}
	m.window[m.head] = correct
	if correct {
		m.hits++
	}
	m.head++
	if m.head == len(m.window) {
		m.head = 0
	}
}

// Value returns the fraction of correct predictions in the window, or 0
// before any observation.
func (m *MovingAccuracy) Value() float64 {
	if m.filled == 0 {
		return 0
	}
	return float64(m.hits) / float64(m.filled)
}

// Count returns how many observations are currently in the window.
func (m *MovingAccuracy) Count() int { return m.filled }

package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-range, equal-width histogram of a scalar stream.
// Samples outside [Lo, Hi) are clamped into the edge bins so no finite
// observation is silently dropped; non-finite observations (NaN, ±Inf)
// cannot be binned and are counted separately (see Dropped) so the loss
// is visible instead of silently polluting an edge bin.
type Histogram struct {
	Lo, Hi  float64
	counts  []int
	total   int
	dropped uint64
}

// NewHistogram returns a histogram with bins equal-width bins over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if !(lo < hi) {
		panic(fmt.Sprintf("stats: invalid histogram range [%v,%v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int, bins)}
}

// Observe adds x to the histogram. NaN and ±Inf cannot be assigned a
// meaningful bin (and the float→int bin conversion is implementation-
// defined for them); they are tallied in the dropped counter instead of
// a bin so downstream distribution statistics stay valid while the data
// loss stays visible.
func (h *Histogram) Observe(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		h.dropped++
		return
	}
	idx := h.binOf(x)
	h.counts[idx]++
	h.total++
}

func (h *Histogram) binOf(x float64) int {
	f := (x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.counts))
	idx := int(math.Floor(f))
	if idx < 0 {
		return 0
	}
	if idx >= len(h.counts) {
		return len(h.counts) - 1
	}
	return idx
}

// Counts returns a copy of the bin counts.
func (h *Histogram) Counts() []int {
	c := make([]int, len(h.counts))
	copy(c, h.counts)
	return c
}

// Total returns the number of binned observations (NaNs excluded).
func (h *Histogram) Total() int { return h.total }

// Dropped returns how many non-finite observations could not be binned —
// the silent-data-loss counter surfaced by the health snapshot.
func (h *Histogram) Dropped() uint64 { return h.dropped }

// Probabilities returns the empirical bin probabilities (uniform over bins
// when the histogram is empty, so it is always a valid distribution).
func (h *Histogram) Probabilities() []float64 {
	p := make([]float64, len(h.counts))
	if h.total == 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return p
	}
	inv := 1 / float64(h.total)
	for i, c := range h.counts {
		p[i] = float64(c) * inv
	}
	return p
}

// Reset zeroes all counts, including the dropped-NaN counter.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.dropped = 0
}

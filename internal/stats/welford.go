package stats

import "math"

// Running accumulates count, mean and variance of a scalar stream in O(1)
// memory using Welford's algorithm. The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Observe folds x into the accumulator.
func (r *Running) Observe(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the population variance (0 with fewer than 2 observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVar returns the unbiased sample variance (0 with <2 observations).
func (r *Running) SampleVar() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Std returns the population standard deviation.
func (r *Running) Std() float64 { return math.Sqrt(r.Var()) }

// Reset clears the accumulator.
func (r *Running) Reset() { *r = Running{} }

// Merge combines another accumulator into r (Chan et al. parallel form),
// as if r had also observed everything o observed.
func (r *Running) Merge(o *Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = *o
		return
	}
	nA, nB := float64(r.n), float64(o.n)
	delta := o.mean - r.mean
	total := nA + nB
	r.mean += delta * nB / total
	r.m2 += o.m2 + delta*delta*nA*nB/total
	r.n += o.n
}

// RunningVec accumulates per-dimension mean and variance of a vector
// stream, O(D) memory. Used for feature standardisation and dataset
// diagnostics.
type RunningVec struct {
	n    int
	mean []float64
	m2   []float64
}

// NewRunningVec returns an accumulator for dim-dimensional vectors.
func NewRunningVec(dim int) *RunningVec {
	return &RunningVec{mean: make([]float64, dim), m2: make([]float64, dim)}
}

// Observe folds the vector x into the accumulator.
func (r *RunningVec) Observe(x []float64) {
	if len(x) != len(r.mean) {
		panic("stats: RunningVec dimension mismatch")
	}
	r.n++
	fn := float64(r.n)
	for i, v := range x {
		d := v - r.mean[i]
		r.mean[i] += d / fn
		r.m2[i] += d * (v - r.mean[i])
	}
}

// N returns the number of observations.
func (r *RunningVec) N() int { return r.n }

// Mean returns the per-dimension mean (a view; do not mutate).
func (r *RunningVec) Mean() []float64 { return r.mean }

// Std writes the per-dimension population standard deviation into dst.
func (r *RunningVec) Std(dst []float64) {
	if len(dst) != len(r.mean) {
		panic("stats: RunningVec dimension mismatch")
	}
	if r.n < 2 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	fn := float64(r.n)
	for i := range dst {
		dst[i] = math.Sqrt(r.m2[i] / fn)
	}
}

// Reset clears the accumulator, keeping the dimension.
func (r *RunningVec) Reset() {
	r.n = 0
	for i := range r.mean {
		r.mean[i] = 0
		r.m2[i] = 0
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-12 {
		t.Fatalf("std = %v, want 2", std)
	}
}

func TestMeanStdEmpty(t *testing.T) {
	mean, std := MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatalf("empty MeanStd = %v, %v", mean, std)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Input must be untouched.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.25); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("interpolated quantile = %v, want 2.5", got)
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	for _, q := range []float64{0, 0.1, 0.33, 0.5, 0.9, 1} {
		if a, b := Quantile(xs, q), QuantileSorted(xs, q); a != b {
			t.Fatalf("q=%v: Quantile %v != QuantileSorted %v", q, a, b)
		}
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); math.Abs(got-p) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NormalQuantile(0)
}

func TestChiSquareStatistic(t *testing.T) {
	obs := []int{10, 20, 30}
	exp := []float64{20, 20, 20}
	// (10-20)^2/20 + 0 + (30-20)^2/20 = 5 + 0 + 5 = 10
	if got := ChiSquareStatistic(obs, exp); math.Abs(got-10) > 1e-12 {
		t.Fatalf("chi2 = %v, want 10", got)
	}
	// Zero-expectation bins skipped.
	if got := ChiSquareStatistic([]int{5}, []float64{0}); got != 0 {
		t.Fatalf("chi2 with zero expectation = %v", got)
	}
}

func TestTotalVariation(t *testing.T) {
	obs := []int{50, 50}
	if got := TotalVariation(obs, []float64{0.5, 0.5}); got != 0 {
		t.Fatalf("TV of matching dist = %v", got)
	}
	if got := TotalVariation([]int{100, 0}, []float64{0.5, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("TV = %v, want 0.5", got)
	}
	if got := TotalVariation([]int{0, 0}, []float64{0.5, 0.5}); got != 0 {
		t.Fatalf("TV of empty = %v", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("fresh EWMA should read 0")
	}
	e.Observe(10) // first observation initialises exactly
	if e.Value() != 10 {
		t.Fatalf("after first obs = %v", e.Value())
	}
	e.Observe(0)
	if e.Value() != 5 {
		t.Fatalf("after second obs = %v", e.Value())
	}
	e.Reset()
	if e.Value() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEWMA(0)
}

func TestMovingAccuracy(t *testing.T) {
	m := NewMovingAccuracy(4)
	if m.Value() != 0 || m.Count() != 0 {
		t.Fatal("fresh tracker should be empty")
	}
	m.Observe(true)
	m.Observe(true)
	m.Observe(false)
	if got := m.Value(); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("partial window accuracy = %v", got)
	}
	m.Observe(false)
	m.Observe(false) // evicts the first true
	m.Observe(false) // evicts the second true
	if got := m.Value(); got != 0 {
		t.Fatalf("full-window accuracy = %v, want 0", got)
	}
	if m.Count() != 4 {
		t.Fatalf("Count = %d, want 4", m.Count())
	}
}

func TestMovingAccuracySlidesCorrectly(t *testing.T) {
	m := NewMovingAccuracy(2)
	seq := []bool{true, false, true, true}
	m.Observe(seq[0])
	m.Observe(seq[1])
	m.Observe(seq[2]) // window = {false, true}
	if m.Value() != 0.5 {
		t.Fatalf("value = %v, want 0.5", m.Value())
	}
	m.Observe(seq[3]) // window = {true, true}
	if m.Value() != 1 {
		t.Fatalf("value = %v, want 1", m.Value())
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var r Running
	xs := make([]float64, 0, 1000)
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*3 + 7
		xs = append(xs, v)
		r.Observe(v)
	}
	mean, std := MeanStd(xs)
	if math.Abs(r.Mean()-mean) > 1e-9 {
		t.Fatalf("running mean %v vs batch %v", r.Mean(), mean)
	}
	if math.Abs(r.Std()-std) > 1e-9 {
		t.Fatalf("running std %v vs batch %v", r.Std(), std)
	}
	if r.N() != 1000 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestRunningSmallCounts(t *testing.T) {
	var r Running
	if r.Var() != 0 || r.SampleVar() != 0 {
		t.Fatal("variance of empty accumulator should be 0")
	}
	r.Observe(5)
	if r.Mean() != 5 || r.Var() != 0 {
		t.Fatalf("single obs: mean=%v var=%v", r.Mean(), r.Var())
	}
	r.Observe(7)
	if r.SampleVar() != 2 {
		t.Fatalf("sample var = %v, want 2", r.SampleVar())
	}
	r.Reset()
	if r.N() != 0 || r.Mean() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var all, a, b Running
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 10
		all.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Var()-all.Var()) > 1e-9 {
		t.Fatalf("merge mean/var %v/%v vs %v/%v", a.Mean(), a.Var(), all.Mean(), all.Var())
	}
	// Merging into empty copies.
	var empty Running
	empty.Merge(&all)
	if empty.N() != all.N() || empty.Mean() != all.Mean() {
		t.Fatal("merge into empty should copy")
	}
	// Merging empty is a no-op.
	n := all.N()
	all.Merge(&Running{})
	if all.N() != n {
		t.Fatal("merging empty changed state")
	}
}

func TestRunningVec(t *testing.T) {
	rv := NewRunningVec(2)
	data := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	for _, x := range data {
		rv.Observe(x)
	}
	if rv.N() != 3 {
		t.Fatalf("N = %d", rv.N())
	}
	m := rv.Mean()
	if math.Abs(m[0]-2) > 1e-12 || math.Abs(m[1]-20) > 1e-12 {
		t.Fatalf("mean = %v", m)
	}
	std := make([]float64, 2)
	rv.Std(std)
	want := math.Sqrt(2.0 / 3.0)
	if math.Abs(std[0]-want) > 1e-12 || math.Abs(std[1]-10*want) > 1e-12 {
		t.Fatalf("std = %v", std)
	}
	rv.Reset()
	if rv.N() != 0 || rv.Mean()[0] != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRunningVecDimPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRunningVec(2).Observe([]float64{1})
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1.9, 2, 5, 9.999} {
		h.Observe(v)
	}
	counts := h.Counts()
	want := []int{2, 1, 1, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("counts = %v, want %v", counts, want)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(-100)
	h.Observe(100)
	c := h.Counts()
	if c[0] != 1 || c[1] != 1 {
		t.Fatalf("clamped counts = %v", c)
	}
}

func TestHistogramCountsDroppedNaN(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Observe(0.25)
	h.Observe(math.NaN())
	h.Observe(math.NaN())
	if got := h.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	if h.Total() != 1 {
		t.Fatalf("Total = %d, want 1 (NaN must not be binned)", h.Total())
	}
	if c := h.Counts(); c[0] != 1 || c[1] != 0 {
		t.Fatalf("counts = %v: NaN leaked into a bin", c)
	}
	h.Reset()
	if h.Dropped() != 0 || h.Total() != 0 {
		t.Fatalf("Reset must clear the dropped counter, got %d/%d", h.Dropped(), h.Total())
	}
}

func TestHistogramProbabilities(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	p := h.Probabilities()
	for _, v := range p {
		if v != 0.25 {
			t.Fatalf("empty histogram probabilities = %v", p)
		}
	}
	h.Observe(0.1)
	h.Observe(0.1)
	h.Observe(0.6)
	h.Observe(0.9)
	p = h.Probabilities()
	if p[0] != 0.5 || p[2] != 0.25 || p[3] != 0.25 {
		t.Fatalf("probabilities = %v", p)
	}
	h.Reset()
	if h.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: Welford mean always lies within [min, max] of the data.
func TestPropWelfordMeanBounded(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		r := rand.New(rand.NewSource(seed))
		var run Running
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := r.NormFloat64() * 100
			run.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return run.Mean() >= lo-1e-9 && run.Mean() <= hi+1e-9 && run.Var() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merge order does not matter.
func TestPropMergeCommutes(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a1, b1, a2, b2 Running
		for i := 0; i < 20; i++ {
			a1.Observe(r.Float64())
		}
		for i := 0; i < 30; i++ {
			b1.Observe(r.Float64() * 5)
		}
		a2, b2 = a1, b1
		a1.Merge(&b1) // a ∪ b
		b2.Merge(&a2) // b ∪ a
		return math.Abs(a1.Mean()-b2.Mean()) < 1e-9 &&
			math.Abs(a1.Var()-b2.Var()) < 1e-9 && a1.N() == b2.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram total always equals number of observations and
// probabilities sum to 1.
func TestPropHistogramConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := rand.New(rand.NewSource(seed))
		h := NewHistogram(-1, 1, 8)
		for i := 0; i < n; i++ {
			h.Observe(r.NormFloat64())
		}
		if h.Total() != n {
			return false
		}
		var sum float64
		for _, p := range h.Probabilities() {
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package kmeans implements Lloyd's k-means with k-means++ seeding and a
// sequential (online) variant.
//
// Three places in the reproduction depend on it: the unsupervised initial
// labelling the paper assumes for the training set (§3.2 "it is assumed
// that these initial samples can be labeled with a clustering algorithm
// such as k-means"), the SPLL baseline's cluster step (Kuncheva 2013), and
// the conceptual basis of the proposed method's Init_Coord/Update_Coord
// routines (Algorithms 3 and 4 are explicitly "inspired by k-means++" and
// "very similar to a sequential k-means").
package kmeans

import (
	"math"

	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

// Result holds the output of a clustering run.
type Result struct {
	// Centroids[c] is the centre of cluster c.
	Centroids [][]float64
	// Assign[i] is the cluster index of input sample i.
	Assign []int
	// Inertia is the sum of squared distances of samples to their
	// assigned centroid.
	Inertia float64
	// Iterations actually performed before convergence or the cap.
	Iterations int
}

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters (required, ≥ 1).
	K int
	// MaxIter caps Lloyd iterations; 0 means 100.
	MaxIter int
	// Tol stops early when total centroid movement (L2) falls below it;
	// 0 means 1e-9.
	Tol float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MaxIter == 0 {
		out.MaxIter = 100
	}
	if out.Tol == 0 {
		out.Tol = 1e-9
	}
	return out
}

// SeedPlusPlus selects cfg.K initial centroids from data using k-means++
// (Arthur & Vassilvitskii 2007): the first uniformly, each next with
// probability proportional to squared distance from the nearest centroid
// chosen so far.
func SeedPlusPlus(data [][]float64, k int, r *rng.Rand) [][]float64 {
	n := len(data)
	if k <= 0 || n == 0 {
		panic("kmeans: need k ≥ 1 and non-empty data")
	}
	if k > n {
		k = n
	}
	cents := make([][]float64, 0, k)
	cents = append(cents, mat.CopyVec(data[r.Intn(n)]))
	d2 := make([]float64, n)
	for i := range d2 {
		d2[i] = mat.SqDist(data[i], cents[0])
	}
	for len(cents) < k {
		var total float64
		for _, v := range d2 {
			total += v
		}
		var idx int
		if total <= 0 {
			// All points coincide with chosen centroids; pick uniformly.
			idx = r.Intn(n)
		} else {
			target := r.Float64() * total
			var acc float64
			idx = n - 1
			for i, v := range d2 {
				acc += v
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := mat.CopyVec(data[idx])
		cents = append(cents, c)
		for i := range d2 {
			if v := mat.SqDist(data[i], c); v < d2[i] {
				d2[i] = v
			}
		}
	}
	return cents
}

// Run clusters data with Lloyd's algorithm seeded by k-means++.
func Run(data [][]float64, cfg Config, r *rng.Rand) *Result {
	c := cfg.withDefaults()
	if len(data) == 0 {
		panic("kmeans: empty data")
	}
	dim := len(data[0])
	cents := SeedPlusPlus(data, c.K, r)
	k := len(cents)
	assign := make([]int, len(data))
	counts := make([]int, k)
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dim)
	}
	res := &Result{Centroids: cents, Assign: assign}
	for iter := 0; iter < c.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		var inertia float64
		for i, x := range data {
			best, bd := 0, math.Inf(1)
			for ci, cent := range cents {
				if d := mat.SqDist(x, cent); d < bd {
					best, bd = ci, d
				}
			}
			assign[i] = best
			inertia += bd
		}
		res.Inertia = inertia
		// Update step.
		for ci := range sums {
			counts[ci] = 0
			for j := range sums[ci] {
				sums[ci][j] = 0
			}
		}
		for i, x := range data {
			ci := assign[i]
			counts[ci]++
			for j, v := range x {
				sums[ci][j] += v
			}
		}
		var moved float64
		for ci := range cents {
			if counts[ci] == 0 {
				// Re-seed an empty cluster on the point farthest from its
				// centroid, the standard repair.
				far, fd := 0, -1.0
				for i, x := range data {
					if d := mat.SqDist(x, cents[assign[i]]); d > fd {
						far, fd = i, d
					}
				}
				moved += mat.L2Dist(cents[ci], data[far])
				copy(cents[ci], data[far])
				continue
			}
			inv := 1 / float64(counts[ci])
			var m float64
			for j := range cents[ci] {
				nv := sums[ci][j] * inv
				d := nv - cents[ci][j]
				m += d * d
				cents[ci][j] = nv
			}
			moved += math.Sqrt(m)
		}
		if moved < c.Tol {
			break
		}
	}
	// Final assignment against the last centroid update.
	var inertia float64
	for i, x := range data {
		best, bd := 0, math.Inf(1)
		for ci, cent := range cents {
			if d := mat.SqDist(x, cent); d < bd {
				best, bd = ci, d
			}
		}
		assign[i] = best
		inertia += bd
	}
	res.Inertia = inertia
	return res
}

// Nearest returns the index of the centroid closest (squared Euclidean) to
// x, and that squared distance.
func Nearest(centroids [][]float64, x []float64) (idx int, sq float64) {
	if len(centroids) == 0 {
		panic("kmeans: Nearest with no centroids")
	}
	idx, sq = 0, math.Inf(1)
	for c, cent := range centroids {
		if d := mat.SqDist(x, cent); d < sq {
			idx, sq = c, d
		}
	}
	return idx, sq
}

// NearestL1 returns the index of the centroid closest in L1 distance to x,
// and that distance — the metric the paper's Algorithms 2–4 use.
func NearestL1(centroids [][]float64, x []float64) (idx int, dist float64) {
	if len(centroids) == 0 {
		panic("kmeans: NearestL1 with no centroids")
	}
	idx, dist = 0, math.Inf(1)
	for c, cent := range centroids {
		if d := mat.L1Dist(x, cent); d < dist {
			idx, dist = c, d
		}
	}
	return idx, dist
}

// Sequential is an online k-means clusterer: each sample moves its nearest
// centroid by the running-mean rule. This is the primitive the paper's
// Update_Coord (Algorithm 4) is built on.
type Sequential struct {
	Centroids [][]float64
	Counts    []int
}

// NewSequential starts an online clusterer from the given initial
// centroids (deep-copied) with per-centroid prior counts of initCount.
func NewSequential(initial [][]float64, initCount int) *Sequential {
	if len(initial) == 0 {
		panic("kmeans: NewSequential with no centroids")
	}
	s := &Sequential{
		Centroids: make([][]float64, len(initial)),
		Counts:    make([]int, len(initial)),
	}
	for i, c := range initial {
		s.Centroids[i] = mat.CopyVec(c)
		s.Counts[i] = initCount
	}
	return s
}

// Observe assigns x to its nearest centroid (L1, matching Algorithm 4
// line 2), updates that centroid by the running mean, and returns the
// chosen cluster index.
func (s *Sequential) Observe(x []float64) int {
	idx, _ := NearestL1(s.Centroids, x)
	s.Counts[idx] = mat.RunningMeanUpdate(s.Centroids[idx], s.Counts[idx], x)
	return idx
}

package kmeans

import (
	"testing"
	"testing/quick"

	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

// threeBlobs returns well-separated Gaussian blobs around the given
// centres.
func threeBlobs(r *rng.Rand, perBlob int, centres [][]float64, std float64) ([][]float64, []int) {
	var data [][]float64
	var labels []int
	for ci, c := range centres {
		for i := 0; i < perBlob; i++ {
			x := make([]float64, len(c))
			for j := range x {
				x[j] = r.Normal(c[j], std)
			}
			data = append(data, x)
			labels = append(labels, ci)
		}
	}
	return data, labels
}

func TestRunRecoversSeparatedBlobs(t *testing.T) {
	r := rng.New(1)
	centres := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	data, truth := threeBlobs(r, 100, centres, 0.5)
	res := Run(data, Config{K: 3}, r)
	if len(res.Centroids) != 3 {
		t.Fatalf("got %d centroids", len(res.Centroids))
	}
	// Every found centroid must be within 1.0 of a distinct true centre.
	used := make([]bool, 3)
	for _, c := range res.Centroids {
		found := false
		for ti, tc := range centres {
			if !used[ti] && mat.L2Dist(c, tc) < 1.0 {
				used[ti] = true
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("centroid %v matches no true centre", c)
		}
	}
	// Cluster assignments must be pure: samples of one true blob share a
	// cluster id.
	for blob := 0; blob < 3; blob++ {
		first := -1
		for i, lab := range truth {
			if lab != blob {
				continue
			}
			if first == -1 {
				first = res.Assign[i]
			} else if res.Assign[i] != first {
				t.Fatalf("blob %d split across clusters", blob)
			}
		}
	}
}

func TestRunDeterministicGivenSeed(t *testing.T) {
	data, _ := threeBlobs(rng.New(2), 50, [][]float64{{0, 0}, {5, 5}}, 0.3)
	a := Run(data, Config{K: 2}, rng.New(99))
	b := Run(data, Config{K: 2}, rng.New(99))
	for i := range a.Centroids {
		if mat.L2Dist(a.Centroids[i], b.Centroids[i]) != 0 {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("inertia differs across identical runs")
	}
}

func TestRunSingleCluster(t *testing.T) {
	r := rng.New(3)
	data, _ := threeBlobs(r, 40, [][]float64{{1, 2}}, 0.1)
	res := Run(data, Config{K: 1}, r)
	if mat.L2Dist(res.Centroids[0], []float64{1, 2}) > 0.1 {
		t.Fatalf("K=1 centroid = %v", res.Centroids[0])
	}
	for _, a := range res.Assign {
		if a != 0 {
			t.Fatal("K=1 must assign everything to cluster 0")
		}
	}
}

func TestRunKLargerThanN(t *testing.T) {
	data := [][]float64{{0}, {1}}
	res := Run(data, Config{K: 5}, rng.New(4))
	if len(res.Centroids) != 2 {
		t.Fatalf("K>n should clamp to n, got %d centroids", len(res.Centroids))
	}
}

func TestRunPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(nil, Config{K: 2}, rng.New(1))
}

func TestSeedPlusPlusSpreadsCentroids(t *testing.T) {
	r := rng.New(5)
	// Two tight, far-apart groups: ++ seeding should pick one from each.
	data, _ := threeBlobs(r, 50, [][]float64{{0, 0}, {100, 100}}, 0.01)
	hits := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		cents := SeedPlusPlus(data, 2, r)
		if mat.L2Dist(cents[0], cents[1]) > 50 {
			hits++
		}
	}
	if hits < trials*9/10 {
		t.Fatalf("k-means++ spread only %d/%d trials", hits, trials)
	}
}

func TestSeedPlusPlusDegenerateData(t *testing.T) {
	// All identical points: must not loop or divide by zero.
	data := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	cents := SeedPlusPlus(data, 3, rng.New(6))
	if len(cents) != 3 {
		t.Fatalf("got %d centroids", len(cents))
	}
	for _, c := range cents {
		if c[0] != 1 || c[1] != 1 {
			t.Fatalf("unexpected centroid %v", c)
		}
	}
}

func TestNearestAndNearestL1(t *testing.T) {
	cents := [][]float64{{0, 0}, {10, 0}}
	idx, sq := Nearest(cents, []float64{1, 0})
	if idx != 0 || sq != 1 {
		t.Fatalf("Nearest = %d, %v", idx, sq)
	}
	idx, d := NearestL1(cents, []float64{6, 3})
	// L1 to (0,0)=9, to (10,0)=7 → cluster 1
	if idx != 1 || d != 7 {
		t.Fatalf("NearestL1 = %d, %v", idx, d)
	}
}

func TestNearestPanicsOnNoCentroids(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Nearest(nil, []float64{1})
}

func TestSequentialTracksShiftedMean(t *testing.T) {
	r := rng.New(7)
	s := NewSequential([][]float64{{0, 0}, {10, 10}}, 1)
	// Feed samples near (1,1): cluster 0 should drift towards it.
	for i := 0; i < 500; i++ {
		s.Observe([]float64{r.Normal(1, 0.1), r.Normal(1, 0.1)})
	}
	if mat.L2Dist(s.Centroids[0], []float64{1, 1}) > 0.2 {
		t.Fatalf("sequential centroid = %v, want near (1,1)", s.Centroids[0])
	}
	if mat.L2Dist(s.Centroids[1], []float64{10, 10}) != 0 {
		t.Fatal("unassigned centroid must not move")
	}
	if s.Counts[0] != 501 || s.Counts[1] != 1 {
		t.Fatalf("counts = %v", s.Counts)
	}
}

func TestNewSequentialDeepCopies(t *testing.T) {
	init := [][]float64{{1, 1}}
	s := NewSequential(init, 0)
	s.Observe([]float64{3, 3})
	if init[0][0] != 1 {
		t.Fatal("NewSequential must deep-copy initial centroids")
	}
}

func TestRunConvergesWithinMaxIter(t *testing.T) {
	r := rng.New(8)
	data, _ := threeBlobs(r, 30, [][]float64{{0, 0}, {20, 20}}, 0.2)
	res := Run(data, Config{K: 2, MaxIter: 50}, r)
	if res.Iterations >= 50 {
		t.Fatalf("did not converge early: %d iterations", res.Iterations)
	}
}

// Property: inertia of the returned clustering never exceeds the inertia
// of assigning everything to the global mean (the K=1 optimum), for K ≥ 1.
func TestPropInertiaImprovesOnGlobalMean(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		k := int(kRaw%4) + 1
		data, _ := threeBlobs(r, 20, [][]float64{{0, 0}, {4, 4}, {-4, 4}}, 1.0)
		res := Run(data, Config{K: k}, r)
		mean := make([]float64, 2)
		mat.MeanVec(mean, data)
		var base float64
		for _, x := range data {
			base += mat.SqDist(x, mean)
		}
		return res.Inertia <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every assignment index is in range and every sample is
// assigned to its genuinely nearest centroid on return.
func TestPropAssignmentsAreNearest(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		data, _ := threeBlobs(r, 15, [][]float64{{0, 0}, {3, 0}}, 0.8)
		res := Run(data, Config{K: 2}, r)
		for i, x := range data {
			want, _ := Nearest(res.Centroids, x)
			if res.Assign[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunK3D38(b *testing.B) {
	r := rng.New(1)
	data, _ := threeBlobs(r, 300, [][]float64{make([]float64, 38), onesVec(38, 3), onesVec(38, -3)}, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(data, Config{K: 3}, rng.New(uint64(i)))
	}
}

func onesVec(n int, v float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = v
	}
	return x
}

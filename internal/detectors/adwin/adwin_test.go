package adwin

import (
	"testing"

	"edgedrift/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Delta: 2}); err == nil {
		t.Fatal("expected delta error")
	}
	if _, err := New(Config{MaxBucketsPerRow: 1}); err == nil {
		t.Fatal("expected bucket error")
	}
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Width() != 0 || d.Mean() != 0 || d.Cuts() != 0 {
		t.Fatal("fresh detector state")
	}
}

func TestObservePanicsOutOfRange(t *testing.T) {
	d, _ := New(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Observe(1.5)
}

func TestMeanTracksStationaryStream(t *testing.T) {
	d, _ := New(Config{})
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		var v float64
		if r.Bernoulli(0.3) {
			v = 1
		}
		d.Observe(v)
	}
	if m := d.Mean(); m < 0.25 || m > 0.35 {
		t.Fatalf("window mean %v, want ≈0.3", m)
	}
	// The window should have grown large with no change.
	if d.Width() < 2000 {
		t.Fatalf("stationary window width %d, expected to grow", d.Width())
	}
}

func TestNoCutsOnStationaryStream(t *testing.T) {
	d, _ := New(Config{})
	r := rng.New(2)
	for i := 0; i < 10000; i++ {
		var v float64
		if r.Bernoulli(0.2) {
			v = 1
		}
		d.Observe(v)
	}
	// δ=0.002 keeps false cuts very rare.
	if d.Cuts() > 2 {
		t.Fatalf("%d cuts on a stationary stream", d.Cuts())
	}
}

func TestDetectsMeanShift(t *testing.T) {
	d, _ := New(Config{})
	r := rng.New(3)
	for i := 0; i < 2000; i++ {
		var v float64
		if r.Bernoulli(0.05) {
			v = 1
		}
		d.Observe(v)
	}
	detectedAt := -1
	for i := 0; i < 2000; i++ {
		var v float64
		if r.Bernoulli(0.6) {
			v = 1
		}
		if d.Observe(v) && detectedAt == -1 {
			detectedAt = i
		}
	}
	if detectedAt == -1 {
		t.Fatal("mean shift never detected")
	}
	if detectedAt > 300 {
		t.Fatalf("detection delay %d too long", detectedAt)
	}
	// Window should have shed the old regime: its mean now reflects the
	// new rate.
	if m := d.Mean(); m < 0.4 {
		t.Fatalf("post-cut window mean %v still reflects old regime", m)
	}
}

func TestWindowShrinksAfterCut(t *testing.T) {
	d, _ := New(Config{})
	r := rng.New(4)
	for i := 0; i < 3000; i++ {
		d.Observe(0)
	}
	widthBefore := d.Width()
	for i := 0; i < 500; i++ {
		var v float64
		if r.Bernoulli(0.9) {
			v = 1
		}
		d.Observe(v)
	}
	if d.Cuts() == 0 {
		t.Fatal("no cut on a 0→0.9 shift")
	}
	if d.Width() >= widthBefore+500 {
		t.Fatalf("window did not shrink: %d → %d", widthBefore, d.Width())
	}
}

func TestMemoryIsLogarithmic(t *testing.T) {
	d, _ := New(Config{})
	r := rng.New(5)
	for i := 0; i < 100000; i++ {
		var v float64
		if r.Bernoulli(0.5) {
			v = 1
		}
		d.Observe(v)
	}
	// 100k observations must be summarised in way under 10 kB.
	if b := d.MemoryBytes(); b > 10*1024 {
		t.Fatalf("ADWIN memory %d bytes for 100k stream", b)
	}
}

func TestCheckEverySkipsTests(t *testing.T) {
	d, _ := New(Config{CheckEvery: 50})
	r := rng.New(6)
	for i := 0; i < 1000; i++ {
		d.Observe(0)
	}
	// Shift; detection still happens, just on a 50-sample grid.
	detected := false
	for i := 0; i < 1000 && !detected; i++ {
		var v float64
		if r.Bernoulli(0.9) {
			v = 1
		}
		detected = d.Observe(v)
	}
	if !detected {
		t.Fatal("CheckEvery=50 never detected the shift")
	}
}

package adwin

import (
	"edgedrift/internal/core"
	"edgedrift/internal/health"
)

// Process adapts ADWIN to the core.Streaming stage contract over a
// bounded scalar stream: the sample's single feature x[0] must lie in
// [0,1] (for the error-stream use, 0 = correct, 1 = error). Score is the
// current window mean; DriftDetected reports a window cut. Label is -1 —
// an error-rate detector predicts no class.
func (d *Detector) Process(x []float64) core.Result {
	drift := d.Observe(x[0])
	return core.Result{
		Label:         -1,
		Score:         d.Mean(),
		Phase:         core.Monitoring,
		DriftDetected: drift,
	}
}

// Reset restores the detector to its as-constructed state (the
// configuration is kept). The evaluation harness re-arms the detector
// this way after a drift-triggered model rebuild, so the new concept's
// error stream is judged against a fresh window rather than the old
// concept's residue.
func (d *Detector) Reset() {
	d.rows = nil
	d.total, d.seen, d.cuts = 0, 0, 0
	d.sum = 0
}

// Health reports the detector's structured health snapshot. The bucket
// summaries stay finite whenever the observations do (they are sums of
// [0,1] values), so only counters are interesting.
func (d *Detector) Health() health.Snapshot {
	return health.Snapshot{
		SamplesSeen: d.seen,
		PFinite:     true,
		Phase:       core.Monitoring.String(),
	}
}

var _ core.Streaming = (*Detector)(nil)

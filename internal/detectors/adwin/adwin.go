// Package adwin implements ADaptive WINdowing (Bifet & Gavaldà, SDM
// 2007), the adaptive-window error-rate detector from the paper's related
// work (§2.2.2).
//
// ADWIN maintains a variable-length window over a bounded scalar stream
// (here: prediction errors in [0,1]) in exponential-histogram buckets,
// using O(log W) memory. Whenever the means of some split of the window
// into "old" and "new" halves differ by more than a Hoeffding-style bound
// ε_cut(δ), the old half is dropped and a change is reported.
package adwin

import (
	"fmt"
	"math"
)

// bucketRow holds up to maxBuckets buckets that each summarise 2^level
// observations.
type bucketRow struct {
	sums   []float64
	counts []int // observation count per bucket (all equal 2^level)
}

// Config parameterises ADWIN.
type Config struct {
	// Delta is the confidence parameter δ of the cut test; 0 means 0.002
	// (the authors' default).
	Delta float64
	// MaxBucketsPerRow is M; 0 means 5.
	MaxBucketsPerRow int
	// MinWindow suppresses cuts while the window holds fewer
	// observations; 0 means 10.
	MinWindow int
	// CheckEvery tests for cuts only every k-th observation (a standard
	// constant-factor optimisation); 0 means 1 (every observation).
	CheckEvery int
}

func (c Config) withDefaults() (Config, error) {
	if c.Delta == 0 {
		c.Delta = 0.002
	}
	if c.Delta <= 0 || c.Delta >= 1 {
		return c, fmt.Errorf("adwin: delta %v out of (0,1)", c.Delta)
	}
	if c.MaxBucketsPerRow == 0 {
		c.MaxBucketsPerRow = 5
	}
	if c.MaxBucketsPerRow < 2 {
		return c, fmt.Errorf("adwin: need ≥ 2 buckets per row")
	}
	if c.MinWindow == 0 {
		c.MinWindow = 10
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 1
	}
	return c, nil
}

// Detector is an ADWIN instance. Not safe for concurrent use.
type Detector struct {
	cfg   Config
	rows  []bucketRow
	total int
	sum   float64
	seen  int
	cuts  int
}

// New returns a fresh detector.
func New(cfg Config) (*Detector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: c}, nil
}

// Observe folds x (must lie in [0,1], e.g. 0 = correct, 1 = error) into
// the window and reports whether a change was detected (old data
// dropped).
func (d *Detector) Observe(x float64) bool {
	if x < 0 || x > 1 {
		panic(fmt.Sprintf("adwin: observation %v outside [0,1]", x))
	}
	d.insert(x)
	d.seen++
	if d.seen%d.cfg.CheckEvery != 0 {
		return false
	}
	return d.tryCut()
}

// insert places x as a fresh level-0 bucket and compresses rows that
// overflow by merging their two oldest buckets into the next level.
func (d *Detector) insert(x float64) {
	if len(d.rows) == 0 {
		d.rows = append(d.rows, bucketRow{})
	}
	r0 := &d.rows[0]
	r0.sums = append(r0.sums, x)
	r0.counts = append(r0.counts, 1)
	d.total++
	d.sum += x
	for level := 0; level < len(d.rows); level++ {
		row := &d.rows[level]
		if len(row.sums) <= d.cfg.MaxBucketsPerRow {
			break
		}
		// Merge the two oldest buckets (front of the slice) upward.
		mergedSum := row.sums[0] + row.sums[1]
		mergedCount := row.counts[0] + row.counts[1]
		row.sums = row.sums[2:]
		row.counts = row.counts[2:]
		if level+1 == len(d.rows) {
			d.rows = append(d.rows, bucketRow{})
		}
		next := &d.rows[level+1]
		next.sums = append(next.sums, mergedSum)
		next.counts = append(next.counts, mergedCount)
	}
}

// tryCut scans split points from oldest to newest and drops the oldest
// buckets while any split violates the bound. Returns true if anything
// was dropped.
func (d *Detector) tryCut() bool {
	if d.total < d.cfg.MinWindow {
		return false
	}
	cut := false
	for {
		if !d.cutOnce() {
			return cut
		}
		cut = true
		d.cuts++
	}
}

// cutOnce looks for the first violating split (scanning from the oldest
// bucket) and, if found, drops everything older than it.
func (d *Detector) cutOnce() bool {
	if d.total < d.cfg.MinWindow {
		return false
	}
	// Walk buckets from oldest (highest level, front) to newest.
	var n0 int
	var s0 float64
	n1, s1 := d.total, d.sum
	for level := len(d.rows) - 1; level >= 0; level-- {
		row := &d.rows[level]
		for b := 0; b < len(row.sums); b++ {
			n0 += row.counts[b]
			s0 += row.sums[b]
			n1 -= row.counts[b]
			s1 -= row.sums[b]
			if n0 < 1 || n1 < 1 {
				continue
			}
			if d.violates(n0, s0, n1, s1) {
				d.dropOldest(level, b)
				return true
			}
		}
	}
	return false
}

// violates applies the ADWIN cut condition |μ̂0 − μ̂1| ≥ ε_cut.
func (d *Detector) violates(n0 int, s0 float64, n1 int, s1 float64) bool {
	mu0 := s0 / float64(n0)
	mu1 := s1 / float64(n1)
	m := 1 / (1/float64(n0) + 1/float64(n1)) // harmonic mean /2 of sizes
	deltaPrime := d.cfg.Delta / float64(d.total)
	// Variance-aware bound from the ADWIN paper (eq. for ε_cut using the
	// window's observed variance).
	mean := d.sum / float64(d.total)
	variance := math.Max(0, d.windowVariance(mean))
	lnTerm := math.Log(2 / deltaPrime)
	eps := math.Sqrt(2/m*variance*lnTerm) + 2.0/(3.0*m)*lnTerm
	return math.Abs(mu0-mu1) >= eps
}

// windowVariance approximates the window variance from bucket summaries;
// with 0/1 observations (the error-stream use) mean(1−mean) is exact.
func (d *Detector) windowVariance(mean float64) float64 {
	return mean * (1 - mean)
}

// dropOldest removes every bucket strictly older than position (level, b)
// inclusive — i.e. the scanned prefix.
func (d *Detector) dropOldest(level, b int) {
	for l := len(d.rows) - 1; l > level; l-- {
		row := &d.rows[l]
		for i := range row.sums {
			d.total -= row.counts[i]
			d.sum -= row.sums[i]
		}
		row.sums = nil
		row.counts = nil
	}
	row := &d.rows[level]
	for i := 0; i <= b && i < len(row.sums); i++ {
		d.total -= row.counts[i]
		d.sum -= row.sums[i]
	}
	row.sums = append([]float64(nil), row.sums[min(b+1, len(row.sums)):]...)
	row.counts = append([]int(nil), row.counts[min(b+1, len(row.counts)):]...)
	// Trim empty high rows.
	for len(d.rows) > 1 {
		last := &d.rows[len(d.rows)-1]
		if len(last.sums) != 0 {
			break
		}
		d.rows = d.rows[:len(d.rows)-1]
	}
}

// Width returns the current window length.
func (d *Detector) Width() int { return d.total }

// Mean returns the current window mean (0 when empty).
func (d *Detector) Mean() float64 {
	if d.total == 0 {
		return 0
	}
	return d.sum / float64(d.total)
}

// Cuts returns how many cuts (detections) have occurred.
func (d *Detector) Cuts() int { return d.cuts }

// MemoryBytes audits retained state: O(M · log W) bucket summaries.
func (d *Detector) MemoryBytes() int {
	bytes := 4 * 8 // scalars
	for _, r := range d.rows {
		bytes += 16 * len(r.sums)
	}
	return bytes
}

package quanttree

import (
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// gaussData draws n D-dimensional normal samples centred at mean.
func gaussData(r *rng.Rand, n, dims int, mean float64) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, dims)
		r.FillNorm(x, mean, 1)
		xs[i] = x
	}
	return xs
}

func newTree(t *testing.T, seed uint64, cfg Config) *Tree {
	t.Helper()
	r := rng.New(seed)
	train := gaussData(r, 500, 4, 0)
	// Fast calibration for tests.
	if cfg.CalibrationTrials == 0 {
		cfg.CalibrationTrials = 400
	}
	tree, err := New(train, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestConfigValidation(t *testing.T) {
	r := rng.New(1)
	train := gaussData(r, 100, 2, 0)
	bad := []Config{
		{Bins: 1, BatchSize: 50},
		{Bins: 8, BatchSize: 4},
		{Bins: 8, BatchSize: 50, Alpha: 2},
	}
	for i, cfg := range bad {
		if _, err := New(train, cfg, r); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := New(gaussData(r, 4, 2, 0), Config{Bins: 8, BatchSize: 16}, r); err == nil {
		t.Fatal("expected error for too little training data")
	}
}

func TestBinsPartitionTrainingDataEvenly(t *testing.T) {
	tree := newTree(t, 2, Config{Bins: 8, BatchSize: 64})
	r := rng.New(3)
	train := gaussData(r, 4000, 4, 0)
	counts := make([]int, 8)
	for _, x := range train {
		b := tree.Bin(x)
		if b < 0 || b >= 8 {
			t.Fatalf("bin %d out of range", b)
		}
		counts[b]++
	}
	// In-distribution data should land roughly uniformly (±50% slack —
	// the tree was built on a different draw of the same distribution).
	want := 4000 / 8
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bin %d holds %d of 4000, want ≈%d: %v", i, c, want, counts)
		}
	}
}

func TestNoFalseAlarmsOnStationaryStream(t *testing.T) {
	tree := newTree(t, 4, Config{Bins: 8, BatchSize: 100, Alpha: 0.01})
	r := rng.New(5)
	checked, detections := 0, 0
	for i := 0; i < 4000; i++ {
		c, d := tree.Observe(gaussData(r, 1, 4, 0)[0])
		if c {
			checked++
		}
		if d {
			detections++
		}
	}
	if checked != 40 {
		t.Fatalf("checked %d batches, want 40", checked)
	}
	// α=1% per batch: expect ≈0–2 false alarms over 40 batches.
	if detections > 3 {
		t.Fatalf("%d false alarms over %d batches", detections, checked)
	}
	if tree.Batches() != checked || tree.Detections() != detections {
		t.Fatal("counters disagree with observations")
	}
}

func TestDetectsShiftedDistribution(t *testing.T) {
	tree := newTree(t, 6, Config{Bins: 8, BatchSize: 100})
	r := rng.New(7)
	// One full drifted batch must flag.
	var flagged bool
	for i := 0; i < 100; i++ {
		_, d := tree.Observe(gaussData(r, 1, 4, 3)[0])
		flagged = flagged || d
	}
	if !flagged {
		t.Fatalf("shifted batch not detected (stat %v vs threshold %v)", tree.LastStatistic(), tree.Threshold())
	}
}

func TestTotalVariationStatistic(t *testing.T) {
	tree := newTree(t, 8, Config{Bins: 8, BatchSize: 100, Statistic: TotalVariation})
	r := rng.New(9)
	var flagged bool
	for i := 0; i < 100; i++ {
		_, d := tree.Observe(gaussData(r, 1, 4, 3)[0])
		flagged = flagged || d
	}
	if !flagged {
		t.Fatal("TV statistic missed the shift")
	}
	if Pearson.String() != "pearson" || TotalVariation.String() != "tv" {
		t.Fatal("statistic names")
	}
}

func TestBatchBufferResetsAfterTest(t *testing.T) {
	tree := newTree(t, 10, Config{Bins: 4, BatchSize: 10})
	r := rng.New(11)
	for i := 0; i < 9; i++ {
		tree.Observe(gaussData(r, 1, 4, 0)[0])
	}
	if len(tree.Batch()) != 9 {
		t.Fatalf("buffer length %d", len(tree.Batch()))
	}
	tree.Observe(gaussData(r, 1, 4, 0)[0])
	if len(tree.Batch()) != 0 {
		t.Fatal("buffer not cleared after batch test")
	}
}

func TestObservePanicsOnBadDims(t *testing.T) {
	tree := newTree(t, 12, Config{Bins: 4, BatchSize: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Observe([]float64{1})
}

func TestThresholdGrowsWithSmallerAlpha(t *testing.T) {
	loose := newTree(t, 13, Config{Bins: 8, BatchSize: 100, Alpha: 0.2})
	strict := newTree(t, 13, Config{Bins: 8, BatchSize: 100, Alpha: 0.005})
	if strict.Threshold() <= loose.Threshold() {
		t.Fatalf("threshold(α=0.005)=%v should exceed threshold(α=0.2)=%v", strict.Threshold(), loose.Threshold())
	}
}

func TestMemoryBytesDominatedByBatchBuffer(t *testing.T) {
	small := newTree(t, 14, Config{Bins: 4, BatchSize: 16})
	big := newTree(t, 14, Config{Bins: 4, BatchSize: 256})
	if big.MemoryBytes() <= small.MemoryBytes() {
		t.Fatal("memory must grow with batch size")
	}
	if small.BatchSize() != 16 || big.BatchSize() != 256 {
		t.Fatal("BatchSize accessor")
	}
}

func TestOpsCounting(t *testing.T) {
	tree := newTree(t, 15, Config{Bins: 4, BatchSize: 10})
	var c opcount.Counter
	tree.SetOps(&c)
	r := rng.New(16)
	tree.Observe(gaussData(r, 1, 4, 0)[0])
	if c.Cmp == 0 {
		t.Fatal("bin routing should count comparisons")
	}
}

func TestRetrainStopsRefiring(t *testing.T) {
	tree := newTree(t, 20, Config{Bins: 8, BatchSize: 100})
	r := rng.New(21)
	// Drifted stream: the stale tree fires on (almost) every batch.
	fired := 0
	for i := 0; i < 400; i++ {
		if _, d := tree.Observe(gaussData(r, 1, 4, 3)[0]); d {
			fired++
		}
	}
	if fired < 3 {
		t.Fatalf("stale tree fired only %d/4 batches", fired)
	}
	// Re-baseline on the drifted distribution: firing must stop.
	if err := tree.Retrain(gaussData(r, 500, 4, 3), r); err != nil {
		t.Fatal(err)
	}
	fired = 0
	for i := 0; i < 400; i++ {
		if _, d := tree.Observe(gaussData(r, 1, 4, 3)[0]); d {
			fired++
		}
	}
	if fired > 1 {
		t.Fatalf("retrained tree still fired %d/4 batches", fired)
	}
}

func TestRetrainErrors(t *testing.T) {
	tree := newTree(t, 22, Config{Bins: 8, BatchSize: 100})
	r := rng.New(23)
	if err := tree.Retrain(gaussData(r, 3, 4, 0), r); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	if err := tree.Retrain(gaussData(r, 100, 2, 0), r); err == nil {
		t.Fatal("expected dimension error")
	}
}

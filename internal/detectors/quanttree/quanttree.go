// Package quanttree implements the QuantTree histogram for change
// detection in multivariate data streams (Boracchi, Carrera, Cervellera,
// Macciò, ICML 2018) — one of the paper's two batch-based baselines.
//
// A QuantTree recursively splits the training sample with axis-aligned
// cuts at marginal quantiles so that each of the K leaves ("bins")
// receives a target probability π_k (uniform 1/K here, the common
// configuration). Monitoring proceeds in batches of ν samples: each
// sample is routed to its bin, and a histogram statistic (Pearson or
// total variation) over the bin counts is compared to a threshold.
//
// The statistic's key property is distribution-freeness: its null
// distribution depends only on (N, K, ν), never on the data distribution
// or dimension. This package exploits that directly — thresholds are
// calibrated once by Monte Carlo over 1-D uniform data with the same
// (N, K, ν) and the desired false-positive rate.
//
// Being a batch method, the monitor buffers ν samples of D features —
// the memory behaviour the paper's Table 4 measures against the proposed
// sequential detector.
package quanttree

import (
	"fmt"
	"math"
	"sort"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

// Statistic selects the histogram test statistic.
type Statistic int

const (
	// Pearson is Σ (y_k − ν·π_k)² / (ν·π_k).
	Pearson Statistic = iota
	// TotalVariation is ½ Σ |y_k/ν − π_k|.
	TotalVariation
)

// String implements fmt.Stringer.
func (s Statistic) String() string {
	if s == TotalVariation {
		return "tv"
	}
	return "pearson"
}

// split is one axis-aligned cut. A sample x falls into this bin when
// x[Dim] ≤ Threshold (Low) or x[Dim] > Threshold (!Low), tested in split
// order; the final bin is the remainder.
type split struct {
	Dim       int
	Threshold float64
	Low       bool
}

// Config parameterises construction.
type Config struct {
	// Bins is K, the number of histogram bins (paper: 32 for NSL-KDD,
	// 16 for the cooling-fan set).
	Bins int
	// BatchSize is ν, the monitoring batch (paper: 480 / 235).
	BatchSize int
	// Statistic selects Pearson (default) or TotalVariation.
	Statistic Statistic
	// Alpha is the target false-positive rate per batch for threshold
	// calibration; 0 means 0.01.
	Alpha float64
	// CalibrationTrials is the Monte-Carlo sample count; 0 means 3000.
	CalibrationTrials int
}

func (c Config) withDefaults() (Config, error) {
	if c.Bins < 2 {
		return c, fmt.Errorf("quanttree: need ≥ 2 bins, got %d", c.Bins)
	}
	if c.BatchSize < c.Bins {
		return c, fmt.Errorf("quanttree: batch size %d below bin count %d", c.BatchSize, c.Bins)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return c, fmt.Errorf("quanttree: alpha %v out of (0,1)", c.Alpha)
	}
	if c.CalibrationTrials == 0 {
		c.CalibrationTrials = 3000
	}
	return c, nil
}

// Tree is a trained QuantTree monitor. Not safe for concurrent use.
type Tree struct {
	cfg       Config
	splits    []split
	probs     []float64 // target bin probabilities
	threshold float64
	trainN    int

	counts []int
	buf    [][]float64 // buffered batch samples (batch-method memory)
	dims   int

	seen       int
	batches    int
	detections int
	lastStat   float64
	ops        *opcount.Counter
}

// buildSplits constructs the K−1 cuts over the training data, consuming
// it bin by bin so each leaf receives ≈ N/K training points.
func buildSplits(train [][]float64, bins int, r *rng.Rand) []split {
	remaining := make([][]float64, len(train))
	copy(remaining, train)
	dims := len(train[0])
	splits := make([]split, 0, bins-1)
	for k := 0; k < bins-1; k++ {
		nRem := len(remaining)
		// Target count for this bin out of what remains: uniform target
		// probabilities make it nRem/(bins−k).
		want := int(math.Round(float64(nRem) / float64(bins-k)))
		if want < 1 {
			want = 1
		}
		if want > nRem {
			want = nRem
		}
		dim := r.Intn(dims)
		low := r.Bernoulli(0.5)
		vals := make([]float64, nRem)
		for i, x := range remaining {
			vals[i] = x[dim]
		}
		sort.Float64s(vals)
		var thr float64
		if low {
			thr = vals[want-1]
		} else {
			thr = vals[nRem-want]
		}
		sp := split{Dim: dim, Threshold: thr, Low: low}
		splits = append(splits, sp)
		next := remaining[:0]
		taken := 0
		for _, x := range remaining {
			if taken < want && sp.matches(x) {
				taken++
				continue
			}
			next = append(next, x)
		}
		remaining = next
		if len(remaining) == 0 {
			break
		}
	}
	return splits
}

func (s split) matches(x []float64) bool {
	if s.Low {
		return x[s.Dim] <= s.Threshold
	}
	return x[s.Dim] >= s.Threshold
}

// New trains a QuantTree on the training set and calibrates its detection
// threshold by Monte Carlo (distribution-free in (N, K, ν)).
func New(train [][]float64, cfg Config, r *rng.Rand) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(train) < c.Bins {
		return nil, fmt.Errorf("quanttree: %d training samples for %d bins", len(train), c.Bins)
	}
	t := &Tree{
		cfg:    c,
		splits: buildSplits(train, c.Bins, r),
		probs:  make([]float64, c.Bins),
		trainN: len(train),
		counts: make([]int, c.Bins),
		buf:    make([][]float64, 0, c.BatchSize),
		dims:   len(train[0]),
	}
	for i := range t.probs {
		t.probs[i] = 1 / float64(c.Bins)
	}
	t.threshold = calibrateThreshold(len(train), c, r.Split())
	return t, nil
}

// calibrateThreshold estimates the (1−α) quantile of the null statistic
// distribution by simulating trees on 1-D uniform data — valid for any
// data distribution by the QuantTree distribution-free theorem.
func calibrateThreshold(trainN int, c Config, r *rng.Rand) float64 {
	statsSample := make([]float64, c.CalibrationTrials)
	train := make([][]float64, trainN)
	batch := make([]float64, c.BatchSize)
	probs := make([]float64, c.Bins)
	for i := range probs {
		probs[i] = 1 / float64(c.Bins)
	}
	expected := make([]float64, c.Bins)
	for i := range expected {
		expected[i] = float64(c.BatchSize) * probs[i]
	}
	counts := make([]int, c.Bins)
	for trial := 0; trial < c.CalibrationTrials; trial++ {
		for i := range train {
			train[i] = []float64{r.Float64()}
		}
		splits := buildSplits(train, c.Bins, r)
		for i := range counts {
			counts[i] = 0
		}
		for i := range batch {
			batch[i] = r.Float64()
			counts[binOf(splits, []float64{batch[i]})]++
		}
		switch c.Statistic {
		case TotalVariation:
			statsSample[trial] = stats.TotalVariation(counts, probs)
		default:
			statsSample[trial] = stats.ChiSquareStatistic(counts, expected)
		}
	}
	sort.Float64s(statsSample)
	return stats.QuantileSorted(statsSample, 1-c.Alpha)
}

// binOf routes x through the splits; the first matching split's bin wins
// and the final bin is the remainder.
func binOf(splits []split, x []float64) int {
	for i, s := range splits {
		if s.matches(x) {
			return i
		}
	}
	return len(splits)
}

// Retrain rebuilds the tree (and recalibrates the threshold for the new
// reference size) on fresh training data — the re-baselining step after
// a drift adaptation, without which every post-drift batch would keep
// firing against the stale reference.
func (t *Tree) Retrain(train [][]float64, r *rng.Rand) error {
	if len(train) < t.cfg.Bins {
		return fmt.Errorf("quanttree: %d retraining samples for %d bins", len(train), t.cfg.Bins)
	}
	if len(train[0]) != t.dims {
		return fmt.Errorf("quanttree: retraining dimension %d, want %d", len(train[0]), t.dims)
	}
	t.splits = buildSplits(train, t.cfg.Bins, r)
	if len(train) != t.trainN {
		t.threshold = calibrateThreshold(len(train), t.cfg, r.Split())
		t.trainN = len(train)
	}
	t.resetBatch()
	return nil
}

// Bin returns the histogram bin index of x.
func (t *Tree) Bin(x []float64) int {
	t.ops.AddCmp(len(t.splits))
	return binOf(t.splits, x)
}

// Observe folds one sample into the current batch. When the batch is
// full it is tested and cleared: checked reports that a test happened and
// drift its outcome.
func (t *Tree) Observe(x []float64) (checked, drift bool) {
	if len(x) != t.dims {
		panic(fmt.Sprintf("quanttree: sample dimension %d, want %d", len(x), t.dims))
	}
	t.seen++
	t.counts[t.Bin(x)]++
	// Batch methods retain the raw samples (retraining after a detection
	// needs them); the copy is part of the audited memory cost.
	buf := make([]float64, len(x))
	copy(buf, x)
	t.buf = append(t.buf, buf)
	if len(t.buf) < t.cfg.BatchSize {
		return false, false
	}
	t.batches++
	t.lastStat = t.statistic()
	drift = t.lastStat >= t.threshold
	t.ops.AddCmp(1)
	if drift {
		t.detections++
	}
	t.resetBatch()
	return true, drift
}

func (t *Tree) statistic() float64 {
	switch t.cfg.Statistic {
	case TotalVariation:
		t.ops.AddAbs(t.cfg.Bins)
		t.ops.AddAdd(t.cfg.Bins)
		return stats.TotalVariation(t.counts, t.probs)
	default:
		expected := make([]float64, t.cfg.Bins)
		for i := range expected {
			expected[i] = float64(t.cfg.BatchSize) * t.probs[i]
		}
		t.ops.AddMulAdd(2 * t.cfg.Bins)
		t.ops.AddDiv(t.cfg.Bins)
		return stats.ChiSquareStatistic(t.counts, expected)
	}
}

func (t *Tree) resetBatch() {
	for i := range t.counts {
		t.counts[i] = 0
	}
	t.buf = t.buf[:0]
}

// Batch returns the samples buffered so far in the current batch (views).
func (t *Tree) Batch() [][]float64 { return t.buf }

// Threshold returns the calibrated detection threshold.
func (t *Tree) Threshold() float64 { return t.threshold }

// LastStatistic returns the statistic of the most recent completed batch.
func (t *Tree) LastStatistic() float64 { return t.lastStat }

// Batches returns how many batches have been tested.
func (t *Tree) Batches() int { return t.batches }

// Detections returns how many batches crossed the threshold.
func (t *Tree) Detections() int { return t.detections }

// BatchSize returns ν.
func (t *Tree) BatchSize() int { return t.cfg.BatchSize }

// SetOps attaches an operation counter.
func (t *Tree) SetOps(c *opcount.Counter) { t.ops = c }

// MemoryBytes audits retained state: the split table, bin counters,
// target probabilities, and — dominating everything — the ν×D batch
// buffer.
func (t *Tree) MemoryBytes() int {
	const f = 8
	splitBytes := len(t.splits) * (f + 16) // threshold + dim/flag words
	binBytes := f*len(t.probs) + 8*len(t.counts)
	bufBytes := t.cfg.BatchSize * t.dims * f
	return splitBytes + binBytes + bufBytes
}

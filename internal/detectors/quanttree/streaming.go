package quanttree

import (
	"edgedrift/internal/core"
	"edgedrift/internal/health"
)

// Process adapts the tree to the core.Streaming stage contract, so the
// evaluation harness and the fleet layer can schedule a QuantTree
// exactly like the proposed detector. Between batch closes the result is
// quiet (Phase Monitoring); the sample that completes a batch carries
// the test outcome: Phase Checking, Score the histogram statistic, and
// DriftDetected when it crossed the calibrated threshold. Label is -1 —
// a batch change detector predicts no class.
func (t *Tree) Process(x []float64) core.Result {
	checked, drift := t.Observe(x)
	res := core.Result{Label: -1, Phase: core.Monitoring, DriftDetected: drift}
	if checked {
		res.Phase = core.Checking
		res.Score = t.lastStat
	}
	return res
}

// Health reports the tree's structured health snapshot. A QuantTree has
// no recursive model state that can diverge, so the snapshot is mostly
// counters: every observed sample is accepted (guarding, if wanted, is a
// wrapping core.Guard stage).
func (t *Tree) Health() health.Snapshot {
	return health.Snapshot{
		SamplesSeen: t.seen,
		PFinite:     true,
		Phase:       core.Monitoring.String(),
	}
}

var _ core.Streaming = (*Tree)(nil)

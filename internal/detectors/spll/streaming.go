package spll

import (
	"edgedrift/internal/core"
	"edgedrift/internal/health"
)

// Process adapts the detector to the core.Streaming stage contract, so
// the evaluation harness and the fleet layer can schedule SPLL exactly
// like the proposed detector. Between batch closes the result is quiet
// (Phase Monitoring); the sample that completes a batch carries the test
// outcome: Phase Checking, Score the log-likelihood statistic, and
// DriftDetected when it escaped the calibrated band. Label is -1 — a
// batch change detector predicts no class.
func (d *Detector) Process(x []float64) core.Result {
	checked, drift := d.Observe(x)
	res := core.Result{Label: -1, Phase: core.Monitoring, DriftDetected: drift}
	if checked {
		res.Phase = core.Checking
		res.Score = d.lastStat
	}
	return res
}

// Health reports the detector's structured health snapshot. SPLL's
// fitted mixture is frozen between retrains, so there is no live state
// that can diverge; the snapshot is counters only.
func (d *Detector) Health() health.Snapshot {
	return health.Snapshot{
		SamplesSeen: d.seen,
		PFinite:     true,
		Phase:       core.Monitoring.String(),
	}
}

var _ core.Streaming = (*Detector)(nil)

// Package spll implements the Semi-Parametric Log-Likelihood change
// detector (Kuncheva, IEEE TKDE 2013) — the paper's second batch-based
// baseline.
//
// SPLL models a reference window with a Gaussian mixture fitted the
// cheap way: k-means clusters with a shared (pooled) covariance matrix.
// The change statistic for a test window is the average, over its ν
// samples, of the squared Mahalanobis distance to the nearest cluster
// mean:
//
//	SPLL(W) = (1/ν) · Σ_{x∈W} min_c (x−μ_c)ᵀ Σ⁻¹ (x−μ_c)
//
// Under the reference distribution each term is approximately χ²_D, so
// the statistic concentrates near D; a distribution shift inflates (or,
// for a collapse, deflates) it. The detection threshold is calibrated by
// parametric bootstrap: synthetic batches are drawn from the fitted
// mixture itself and the empirical (1−α) quantile of their statistics is
// used.
//
// Like QuantTree this is a batch method: it buffers ν raw samples and —
// dominating the paper's Table 4 memory audit — holds the D×D pooled
// covariance factorisation (for D = 511 that alone is ≈ 2 MB, matching
// the paper's ≈ 1.9 MB SPLL footprint).
package spll

import (
	"fmt"
	"math"
	"sort"

	"edgedrift/internal/kmeans"
	"edgedrift/internal/mat"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

// Config parameterises the detector.
type Config struct {
	// Clusters is the k-means cluster count c; 0 means 3 (Kuncheva's
	// default).
	Clusters int
	// BatchSize is ν, the monitoring batch (paper: 480 / 235).
	BatchSize int
	// Alpha is the per-batch false-positive target for calibration;
	// 0 means 0.01.
	Alpha float64
	// CalibrationTrials is the bootstrap batch count; 0 means 300.
	CalibrationTrials int
	// TwoSided also flags batches whose statistic falls below the α
	// quantile (distribution collapse); default one-sided.
	TwoSided bool
	// Ridge inflates the pooled covariance diagonal for invertibility;
	// 0 means an adaptive value (1e-3 of the mean diagonal plus 1e-9).
	Ridge float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Clusters == 0 {
		c.Clusters = 3
	}
	if c.Clusters < 1 {
		return c, fmt.Errorf("spll: clusters %d", c.Clusters)
	}
	if c.BatchSize < 1 {
		return c, fmt.Errorf("spll: batch size %d", c.BatchSize)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return c, fmt.Errorf("spll: alpha %v out of (0,1)", c.Alpha)
	}
	if c.CalibrationTrials == 0 {
		c.CalibrationTrials = 300
	}
	if c.Ridge < 0 {
		return c, fmt.Errorf("spll: negative ridge")
	}
	return c, nil
}

// Detector is a trained SPLL monitor. Not safe for concurrent use.
type Detector struct {
	cfg   Config
	dims  int
	means [][]float64
	// chol is the lower Cholesky factor of the pooled covariance; the
	// Mahalanobis form solves against it rather than inverting.
	chol *mat.Matrix

	hi, lo float64 // detection thresholds

	buf        [][]float64
	seen       int
	batches    int
	detections int
	lastStat   float64
	scratch    []float64
	solveBuf   []float64
	ops        *opcount.Counter
}

// New fits the semi-parametric model on train and calibrates thresholds.
func New(train [][]float64, cfg Config, r *rng.Rand) (*Detector, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(train) < c.Clusters {
		return nil, fmt.Errorf("spll: %d samples for %d clusters", len(train), c.Clusters)
	}
	dims := len(train[0])
	km := kmeans.Run(train, kmeans.Config{K: c.Clusters}, r)

	// Pooled covariance of residuals about each sample's cluster mean.
	cov := mat.New(dims, dims)
	resid := make([]float64, dims)
	for i, x := range train {
		mat.SubVec(resid, x, km.Centroids[km.Assign[i]])
		cov.AddScaledOuter(1, resid, resid)
	}
	cov.Scale(1 / float64(len(train)))

	ridge := c.Ridge
	if ridge == 0 {
		var trace float64
		for i := 0; i < dims; i++ {
			trace += cov.At(i, i)
		}
		ridge = 1e-3*trace/float64(dims) + 1e-9
	}
	cov.AddDiag(ridge)

	chol := mat.New(dims, dims)
	// Escalate the ridge until the factorisation succeeds; degenerate
	// training data (constant features) needs it.
	for attempt := 0; ; attempt++ {
		if err := mat.Cholesky(chol, cov); err == nil {
			break
		}
		if attempt == 8 {
			return nil, fmt.Errorf("spll: covariance not positive definite after regularisation")
		}
		ridge *= 10
		cov.AddDiag(ridge)
	}

	d := &Detector{
		cfg:      c,
		dims:     dims,
		means:    km.Centroids,
		chol:     chol,
		buf:      make([][]float64, 0, c.BatchSize),
		scratch:  make([]float64, dims),
		solveBuf: make([]float64, dims),
	}
	d.calibrate(r.Split())
	return d, nil
}

// mahalanobisMin returns min_c (x−μ_c)ᵀ Σ⁻¹ (x−μ_c) via the Cholesky
// solve: with Σ = L·Lᵀ and L·y = (x−μ), the form equals ‖y‖².
func (d *Detector) mahalanobisMin(x []float64) float64 {
	best := -1.0
	for _, mu := range d.means {
		mat.SubVec(d.scratch, x, mu)
		// Forward substitution only: solve L·y = resid.
		y := d.solveBuf
		for i := 0; i < d.dims; i++ {
			s := d.scratch[i]
			row := d.chol.Row(i)
			for k := 0; k < i; k++ {
				s -= row[k] * y[k]
			}
			y[i] = s / row[i]
		}
		var q float64
		for _, v := range y {
			q += v * v
		}
		if best < 0 || q < best {
			best = q
		}
	}
	// Account the dominant cost: per cluster one triangular solve
	// (≈ D²/2 MACs) plus the norm.
	d.ops.AddMulAdd(len(d.means) * (d.dims*d.dims/2 + d.dims))
	d.ops.AddDiv(len(d.means) * d.dims)
	d.ops.AddCmp(len(d.means))
	return best
}

// statistic computes the SPLL statistic over the buffered batch.
func (d *Detector) statistic(batch [][]float64) float64 {
	var s float64
	for _, x := range batch {
		s += d.mahalanobisMin(x)
	}
	return s / float64(len(batch))
}

// calibrate draws bootstrap batches from the fitted mixture and sets
// thresholds at the α and 1−α empirical quantiles.
func (d *Detector) calibrate(r *rng.Rand) {
	trials := d.cfg.CalibrationTrials
	samples := make([]float64, trials)
	z := make([]float64, d.dims)
	x := make([]float64, d.dims)
	for t := 0; t < trials; t++ {
		var sum float64
		for b := 0; b < d.cfg.BatchSize; b++ {
			mu := d.means[r.Intn(len(d.means))]
			r.FillNorm(z, 0, 1)
			// x = μ + L·z
			for i := 0; i < d.dims; i++ {
				row := d.chol.Row(i)
				var s float64
				for k := 0; k <= i; k++ {
					s += row[k] * z[k]
				}
				x[i] = mu[i] + s
			}
			sum += d.mahalanobisMin(x)
		}
		samples[t] = sum / float64(d.cfg.BatchSize)
	}
	sort.Float64s(samples)
	d.hi = stats.QuantileSorted(samples, 1-d.cfg.Alpha)
	d.lo = stats.QuantileSorted(samples, d.cfg.Alpha)
}

// Retrain refits the semi-parametric model (clusters and pooled
// covariance) on fresh training data — the re-baselining step after a
// drift adaptation. The detection thresholds are kept: under the null
// the SPLL statistic concentrates near the dimension D for any fitted
// mixture, so the calibrated quantiles transfer across refits and the
// expensive parametric bootstrap runs only at construction.
func (d *Detector) Retrain(train [][]float64, r *rng.Rand) error {
	if len(train) < 3*d.cfg.Clusters {
		return fmt.Errorf("spll: %d retraining samples for %d clusters", len(train), d.cfg.Clusters)
	}
	if len(train[0]) != d.dims {
		return fmt.Errorf("spll: retraining dimension %d, want %d", len(train[0]), d.dims)
	}
	// Holdout split: the model is fitted on the first two thirds and the
	// threshold moments are measured on the final third, so the quantiles
	// reflect out-of-sample behaviour (in-sample moments are
	// optimistically low and would re-fire on the very next batch).
	cut := len(train) * 2 / 3
	fit, holdout := train[:cut], train[cut:]
	km := kmeans.Run(fit, kmeans.Config{K: d.cfg.Clusters}, r)
	cov := mat.New(d.dims, d.dims)
	resid := make([]float64, d.dims)
	for i, x := range fit {
		mat.SubVec(resid, x, km.Centroids[km.Assign[i]])
		cov.AddScaledOuter(1, resid, resid)
	}
	cov.Scale(1 / float64(len(fit)))
	ridge := d.cfg.Ridge
	if ridge == 0 {
		var trace float64
		for i := 0; i < d.dims; i++ {
			trace += cov.At(i, i)
		}
		ridge = 1e-3*trace/float64(d.dims) + 1e-9
	}
	cov.AddDiag(ridge)
	chol := mat.New(d.dims, d.dims)
	for attempt := 0; ; attempt++ {
		if err := mat.Cholesky(chol, cov); err == nil {
			break
		}
		if attempt == 8 {
			return fmt.Errorf("spll: covariance not positive definite after regularisation")
		}
		ridge *= 10
		cov.AddDiag(ridge)
	}
	d.means = km.Centroids
	d.chol = chol
	d.buf = d.buf[:0]
	// Recalibrate thresholds analytically instead of re-running the
	// bootstrap: the batch statistic is a mean of BatchSize per-sample
	// values, so with the per-sample moments measured on the retraining
	// data (which include the fit error a bootstrap would miss) the CLT
	// gives the batch quantiles directly.
	var run stats.Running
	for _, x := range holdout {
		run.Observe(d.mahalanobisMin(x))
	}
	// The band covers both the batch-mean variance (σ²/ν) and the
	// uncertainty of the holdout mean itself (σ²/n_holdout) — with a
	// single window of data the latter is not negligible.
	z := stats.NormalQuantile(1 - d.cfg.Alpha)
	se := run.Std() * math.Sqrt(1/float64(d.cfg.BatchSize)+1/float64(run.N()))
	d.hi = run.Mean() + z*se
	d.lo = run.Mean() - z*se
	// Dominant refit cost: covariance accumulation (n·D²) plus the
	// Cholesky factorisation (D³/6); the moment pass is already charged
	// by mahalanobisMin.
	d.ops.AddMulAdd(len(train)*d.dims*d.dims + d.dims*d.dims*d.dims/6)
	return nil
}

// Observe folds one sample into the current batch; when full, the batch
// is tested and cleared.
func (d *Detector) Observe(x []float64) (checked, drift bool) {
	if len(x) != d.dims {
		panic(fmt.Sprintf("spll: sample dimension %d, want %d", len(x), d.dims))
	}
	d.seen++
	buf := make([]float64, len(x))
	copy(buf, x)
	d.buf = append(d.buf, buf)
	if len(d.buf) < d.cfg.BatchSize {
		return false, false
	}
	d.batches++
	d.lastStat = d.statistic(d.buf)
	drift = d.lastStat >= d.hi || (d.cfg.TwoSided && d.lastStat <= d.lo)
	d.ops.AddCmp(2)
	if drift {
		d.detections++
	}
	d.buf = d.buf[:0]
	return true, drift
}

// Thresholds returns the calibrated (low, high) detection thresholds.
func (d *Detector) Thresholds() (lo, hi float64) { return d.lo, d.hi }

// LastStatistic returns the statistic of the most recent completed batch.
func (d *Detector) LastStatistic() float64 { return d.lastStat }

// Batches returns how many batches have been tested.
func (d *Detector) Batches() int { return d.batches }

// Detections returns how many tested batches flagged a change.
func (d *Detector) Detections() int { return d.detections }

// BatchSize returns ν.
func (d *Detector) BatchSize() int { return d.cfg.BatchSize }

// Means returns the fitted cluster means (views).
func (d *Detector) Means() [][]float64 { return d.means }

// SetOps attaches an operation counter.
func (d *Detector) SetOps(c *opcount.Counter) { d.ops = c }

// MemoryBytes audits retained state: the D×D covariance factor (the
// dominant term), cluster means, scratch vectors, and the ν×D batch
// buffer.
func (d *Detector) MemoryBytes() int {
	const f = 8
	covBytes := d.dims * d.dims * f
	meanBytes := len(d.means) * d.dims * f
	scratchBytes := 2 * d.dims * f
	bufBytes := d.cfg.BatchSize * d.dims * f
	return covBytes + meanBytes + scratchBytes + bufBytes
}

package spll

import (
	"math"
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// mixtureData draws from two Gaussian blobs at 0 and 6 (per dimension).
func mixtureData(r *rng.Rand, n, dims int, shift float64) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		base := shift
		if i%2 == 1 {
			base += 6
		}
		x := make([]float64, dims)
		r.FillNorm(x, base, 1)
		xs[i] = x
	}
	return xs
}

func newDetector(t *testing.T, seed uint64, cfg Config) *Detector {
	t.Helper()
	r := rng.New(seed)
	train := mixtureData(r, 400, 4, 0)
	if cfg.CalibrationTrials == 0 {
		cfg.CalibrationTrials = 100
	}
	d, err := New(train, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	r := rng.New(1)
	train := mixtureData(r, 50, 2, 0)
	bad := []Config{
		{Clusters: -1, BatchSize: 10},
		{BatchSize: 0},
		{BatchSize: 10, Alpha: 1.5},
		{BatchSize: 10, Ridge: -1},
	}
	for i, cfg := range bad {
		if _, err := New(train, cfg, r); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := New(train[:2], Config{Clusters: 3, BatchSize: 10}, r); err == nil {
		t.Fatal("expected error for fewer samples than clusters")
	}
}

func TestStatisticNearDimensionUnderNull(t *testing.T) {
	d := newDetector(t, 2, Config{Clusters: 2, BatchSize: 100})
	r := rng.New(3)
	for i := 0; i < 100; i++ {
		d.Observe(mixtureData(r, 1, 4, 0)[0])
	}
	// min-Mahalanobis² averages ≈ D for in-distribution data.
	if s := d.LastStatistic(); s < 1 || s > 8 {
		t.Fatalf("null statistic %v, want ≈4", s)
	}
}

func TestNoFalseAlarmsOnStationaryStream(t *testing.T) {
	d := newDetector(t, 4, Config{Clusters: 2, BatchSize: 80, Alpha: 0.01})
	r := rng.New(5)
	checked, detections := 0, 0
	for i := 0; i < 2400; i++ {
		c, dd := d.Observe(mixtureData(r, 1, 4, 0)[0])
		if c {
			checked++
		}
		if dd {
			detections++
		}
	}
	if checked != 30 {
		t.Fatalf("checked %d batches", checked)
	}
	if detections > 3 {
		t.Fatalf("%d false alarms in %d batches", detections, checked)
	}
}

func TestDetectsShiftedDistribution(t *testing.T) {
	d := newDetector(t, 6, Config{Clusters: 2, BatchSize: 80})
	r := rng.New(7)
	var flagged bool
	for i := 0; i < 80; i++ {
		_, dd := d.Observe(mixtureData(r, 1, 4, 3)[0])
		flagged = flagged || dd
	}
	if !flagged {
		lo, hi := d.Thresholds()
		t.Fatalf("shift missed: stat %v, thresholds (%v, %v)", d.LastStatistic(), lo, hi)
	}
	if d.Detections() != 1 || d.Batches() != 1 {
		t.Fatalf("counters: %d detections, %d batches", d.Detections(), d.Batches())
	}
}

func TestTwoSidedFlagsCollapse(t *testing.T) {
	cfg := Config{Clusters: 2, BatchSize: 80, TwoSided: true}
	d := newDetector(t, 8, cfg)
	// A collapsed distribution (all samples exactly at a cluster mean)
	// drives the statistic to ≈0, below the low threshold.
	mean := d.Means()[0]
	var flagged bool
	for i := 0; i < 80; i++ {
		x := make([]float64, len(mean))
		copy(x, mean)
		_, dd := d.Observe(x)
		flagged = flagged || dd
	}
	if !flagged {
		lo, _ := d.Thresholds()
		t.Fatalf("collapse missed: stat %v vs lo %v", d.LastStatistic(), lo)
	}
}

func TestObservePanicsOnBadDims(t *testing.T) {
	d := newDetector(t, 9, Config{Clusters: 2, BatchSize: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Observe([]float64{1})
}

func TestDegenerateTrainingDataSurvivesRegularisation(t *testing.T) {
	r := rng.New(10)
	// Constant feature 0 makes the raw covariance singular.
	train := make([][]float64, 100)
	for i := range train {
		train[i] = []float64{7, r.Norm(), r.Norm()}
	}
	d, err := New(train, Config{Clusters: 2, BatchSize: 20, CalibrationTrials: 50}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Must produce finite statistics.
	for i := 0; i < 20; i++ {
		d.Observe([]float64{7, r.Norm(), r.Norm()})
	}
	if math.IsNaN(d.LastStatistic()) || math.IsInf(d.LastStatistic(), 0) {
		t.Fatalf("statistic = %v", d.LastStatistic())
	}
}

func TestMemoryBytesDominatedByCovariance(t *testing.T) {
	r := rng.New(11)
	small, err := New(mixtureData(r, 100, 4, 0), Config{Clusters: 2, BatchSize: 20, CalibrationTrials: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(mixtureData(r, 100, 32, 0), Config{Clusters: 2, BatchSize: 20, CalibrationTrials: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	// Covariance grows quadratically with D: 32² vs 4² should dominate.
	if big.MemoryBytes() < 16*small.MemoryBytes()/4 {
		t.Fatalf("memory %d vs %d does not reflect D² covariance", big.MemoryBytes(), small.MemoryBytes())
	}
	if big.BatchSize() != 20 {
		t.Fatal("BatchSize accessor")
	}
}

func TestOpsCounting(t *testing.T) {
	d := newDetector(t, 12, Config{Clusters: 2, BatchSize: 4})
	var c opcount.Counter
	d.SetOps(&c)
	r := rng.New(13)
	for i := 0; i < 4; i++ {
		d.Observe(mixtureData(r, 1, 4, 0)[0])
	}
	if c.MulAdd == 0 {
		t.Fatal("batch test should count triangular-solve MACs")
	}
}

func TestRetrainStopsRefiring(t *testing.T) {
	d := newDetector(t, 20, Config{Clusters: 2, BatchSize: 80})
	r := rng.New(21)
	fired := 0
	for _, x := range mixtureData(r, 320, 4, 3) {
		if _, dd := d.Observe(x); dd {
			fired++
		}
	}
	if fired < 3 {
		t.Fatalf("stale model fired only %d/4 batches", fired)
	}
	if err := d.Retrain(mixtureData(r, 400, 4, 3), r); err != nil {
		t.Fatal(err)
	}
	fired = 0
	for _, x := range mixtureData(r, 320, 4, 3) {
		if _, dd := d.Observe(x); dd {
			fired++
		}
	}
	if fired > 1 {
		t.Fatalf("retrained model still fired %d/4 batches", fired)
	}
}

func TestRetrainErrors(t *testing.T) {
	d := newDetector(t, 22, Config{Clusters: 3, BatchSize: 20})
	r := rng.New(23)
	if err := d.Retrain(mixtureData(r, 2, 4, 0), r); err == nil {
		t.Fatal("expected too-few-samples error")
	}
	if err := d.Retrain(mixtureData(r, 50, 2, 0), r); err == nil {
		t.Fatal("expected dimension error")
	}
}

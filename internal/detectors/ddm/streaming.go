package ddm

import (
	"edgedrift/internal/core"
	"edgedrift/internal/health"
)

// Process adapts DDM to the core.Streaming stage contract over an
// error-bit stream: the sample's single feature is the graded prediction
// outcome, where x[0] >= 0.5 means the model was wrong. The three-state
// Level maps onto the shared Result vocabulary — InControl is Phase
// Monitoring, Warning is Phase Checking, and Drift sets DriftDetected
// (after which the detector has already reset itself, per the usual
// replace-the-model protocol). Score is the running error rate; Label is
// -1 — an error-rate detector predicts no class.
func (d *Detector) Process(x []float64) core.Result {
	lvl := d.Observe(x[0] >= 0.5)
	res := core.Result{Label: -1, Score: d.ErrorRate(), Phase: core.Monitoring}
	switch lvl {
	case Warning:
		res.Phase = core.Checking
	case Drift:
		res.DriftDetected = true
	}
	return res
}

// Health reports the detector's structured health snapshot: a handful of
// scalars that cannot go non-finite on a finite error stream.
func (d *Detector) Health() health.Snapshot {
	return health.Snapshot{
		SamplesSeen: d.seen,
		PFinite:     true,
		Phase:       core.Monitoring.String(),
	}
}

var _ core.Streaming = (*Detector)(nil)

// Package ddm implements the Drift Detection Method of Gama et al.
// (SBIA 2004), the classic error-rate based detector the paper's related
// work (§2.2.2) describes: it monitors the discriminative model's
// prediction error rate p_i with standard deviation s_i = √(p_i(1−p_i)/i)
// and raises a warning when p_i + s_i ≥ p_min + 2·s_min and a drift when
// p_i + s_i ≥ p_min + 3·s_min.
//
// DDM needs labelled data — every observation is "was the prediction
// correct?" — which is exactly the property that makes error-rate
// detectors ill-suited to the paper's unlabelled edge setting. It is
// provided as an additional baseline and for the ablation benches.
package ddm

import (
	"fmt"
	"math"
)

// Level is DDM's three-state output.
type Level int

const (
	// InControl means no anomaly in the error rate.
	InControl Level = iota
	// Warning crosses the 2σ band; callers typically start buffering
	// samples for a fresh model.
	Warning
	// Drift crosses the 3σ band; the model should be replaced.
	Drift
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case InControl:
		return "in-control"
	case Warning:
		return "warning"
	case Drift:
		return "drift"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Config parameterises DDM.
type Config struct {
	// MinSamples before any decision is made; 0 means 30 (the
	// original's recommendation).
	MinSamples int
	// WarnSigma is the warning band width; 0 means 2.
	WarnSigma float64
	// DriftSigma is the drift band width; 0 means 3.
	DriftSigma float64
}

func (c Config) withDefaults() Config {
	if c.MinSamples == 0 {
		c.MinSamples = 30
	}
	if c.WarnSigma == 0 {
		c.WarnSigma = 2
	}
	if c.DriftSigma == 0 {
		c.DriftSigma = 3
	}
	return c
}

// Detector is a DDM instance. The zero value is not usable; call New.
type Detector struct {
	cfg  Config
	i    int
	errs int
	pMin float64
	sMin float64
	seen int // lifetime observations, unaffected by Reset
}

// New returns a fresh detector.
func New(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), pMin: math.Inf(1), sMin: math.Inf(1)}
}

// Observe folds one prediction outcome (error=true means the model was
// wrong) and returns the current level. After returning Drift the
// detector resets itself, matching the usual replace-the-model protocol.
func (d *Detector) Observe(err bool) Level {
	d.seen++
	d.i++
	if err {
		d.errs++
	}
	if d.i < d.cfg.MinSamples {
		return InControl
	}
	p := float64(d.errs) / float64(d.i)
	s := math.Sqrt(p * (1 - p) / float64(d.i))
	if p+s < d.pMin+d.sMin {
		d.pMin, d.sMin = p, s
	}
	// Strictly greater, as in the original formulation: on a perfect
	// stream p, s, pMin and sMin are all zero, and `>=` would fire a
	// drift out of nothing at exactly MinSamples observations.
	switch {
	case p+s > d.pMin+d.cfg.DriftSigma*d.sMin:
		d.Reset()
		return Drift
	case p+s > d.pMin+d.cfg.WarnSigma*d.sMin:
		return Warning
	default:
		return InControl
	}
}

// Reset restores the initial state (also called internally after a
// drift).
func (d *Detector) Reset() {
	d.i, d.errs = 0, 0
	d.pMin, d.sMin = math.Inf(1), math.Inf(1)
}

// Samples returns the observations since the last reset.
func (d *Detector) Samples() int { return d.i }

// ErrorRate returns the error rate since the last reset (0 when empty).
func (d *Detector) ErrorRate() float64 {
	if d.i == 0 {
		return 0
	}
	return float64(d.errs) / float64(d.i)
}

// MemoryBytes audits retained state — a handful of scalars, the reason
// error-rate detectors are cheap when labels exist.
func (d *Detector) MemoryBytes() int { return 5 * 8 }

package ddm

import (
	"testing"

	"edgedrift/internal/rng"
)

func TestLevelStrings(t *testing.T) {
	if InControl.String() != "in-control" || Warning.String() != "warning" || Drift.String() != "drift" {
		t.Fatal("level names")
	}
	if Level(9).String() != "Level(9)" {
		t.Fatal("unknown level name")
	}
}

func TestNoDecisionBeforeMinSamples(t *testing.T) {
	d := New(Config{MinSamples: 30})
	for i := 0; i < 29; i++ {
		if lvl := d.Observe(true); lvl != InControl {
			t.Fatalf("decision %v at sample %d, before MinSamples", lvl, i)
		}
	}
}

func TestStableErrorRateStaysInControl(t *testing.T) {
	d := New(Config{})
	r := rng.New(1)
	for i := 0; i < 5000; i++ {
		if lvl := d.Observe(r.Bernoulli(0.1)); lvl == Drift {
			t.Fatalf("drift on stationary 10%% error stream at %d", i)
		}
	}
	if rate := d.ErrorRate(); rate < 0.07 || rate > 0.13 {
		t.Fatalf("error rate %v", rate)
	}
}

// TestPerfectStreamStaysInControl: a stream with zero errors must never
// alarm — p, s and both minima are all zero, and the decision rule used
// to compare them with >=, firing a drift out of nothing at exactly
// MinSamples observations.
func TestPerfectStreamStaysInControl(t *testing.T) {
	d := New(Config{})
	for i := 0; i < 1000; i++ {
		if lvl := d.Observe(false); lvl != InControl {
			t.Fatalf("level %v on a perfect stream at observation %d", lvl, i)
		}
	}
}

func TestErrorRateJumpTriggersDrift(t *testing.T) {
	d := New(Config{})
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		d.Observe(r.Bernoulli(0.05))
	}
	sawWarning, sawDrift := false, false
	detectedAt := -1
	for i := 0; i < 500; i++ {
		switch d.Observe(r.Bernoulli(0.6)) {
		case Warning:
			sawWarning = true
		case Drift:
			sawDrift = true
			if detectedAt == -1 {
				detectedAt = i
			}
		}
	}
	if !sawDrift {
		t.Fatal("error-rate jump not detected")
	}
	if !sawWarning {
		t.Fatal("no warning phase before drift")
	}
	if detectedAt > 200 {
		t.Fatalf("drift detected only after %d samples", detectedAt)
	}
}

func TestResetAfterDrift(t *testing.T) {
	d := New(Config{})
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		d.Observe(r.Bernoulli(0.05))
	}
	for i := 0; i < 1000; i++ {
		if d.Observe(true) == Drift {
			break
		}
	}
	// Internal reset: counters back to zero.
	if d.Samples() != 0 {
		t.Fatalf("Samples after drift = %d, want 0 (auto-reset)", d.Samples())
	}
	if d.ErrorRate() != 0 {
		t.Fatalf("ErrorRate after reset = %v", d.ErrorRate())
	}
}

func TestManualReset(t *testing.T) {
	d := New(Config{})
	d.Observe(true)
	d.Observe(false)
	if d.Samples() != 2 {
		t.Fatalf("Samples = %d", d.Samples())
	}
	d.Reset()
	if d.Samples() != 0 || d.ErrorRate() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMemoryBytesTiny(t *testing.T) {
	if b := New(Config{}).MemoryBytes(); b > 100 {
		t.Fatalf("DDM memory %d bytes, should be scalar-sized", b)
	}
}

func TestCustomBands(t *testing.T) {
	// With a huge drift band, only warnings appear.
	d := New(Config{WarnSigma: 0.5, DriftSigma: 50})
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		d.Observe(r.Bernoulli(0.05))
	}
	sawDrift := false
	sawWarning := false
	for i := 0; i < 300; i++ {
		switch d.Observe(r.Bernoulli(0.5)) {
		case Drift:
			sawDrift = true
		case Warning:
			sawWarning = true
		}
	}
	if sawDrift {
		t.Fatal("drift despite 50σ band")
	}
	if !sawWarning {
		t.Fatal("no warning despite 0.5σ band")
	}
}

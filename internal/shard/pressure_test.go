package shard

import (
	"testing"
	"time"

	"edgedrift"
	"edgedrift/internal/pressure"
	"edgedrift/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestShardGovernorDemotesUnderPressureAndRecovers is the shard-level
// transition round trip: a governor with an impossible latency budget
// demotes members while batches flow, the wire Stats carry the
// degradation, and once ingest stops (windowed pressure reads clear)
// every member is promoted back to full precision.
func TestShardGovernorDemotesUnderPressureAndRecovers(t *testing.T) {
	template, stream := testTemplate(t)
	s, addr := startShard(t, Config{
		Template: template,
		// 1ns latency budget: every processed batch is over budget, so
		// demotion pressure is sustained while traffic flows and clears
		// the moment it stops.
		Pressure:         &pressure.Config{LatencyBudgetNs: 1, HighStreak: 2, LowStreak: 2, Cooldown: 1},
		PressureInterval: 5 * time.Millisecond,
	})

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Keep batches flowing until the governor has demoted both streams.
	waitFor(t, 10*time.Second, "both members demoted", func() bool {
		for _, id := range []string{"a", "b"} {
			if _, _, err := cl.SendBatch(nil, id, stream[:100]); err != nil {
				t.Fatal(err)
			}
		}
		return s.Stats().Degraded == 2
	})

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 2 || st.Demotions < 2 {
		t.Fatalf("wire stats under pressure: %+v", st)
	}
	if st.IngestP99Ns == 0 {
		t.Fatal("wire stats carry no ingest p99")
	}
	for _, id := range []string{"a", "b"} {
		degraded, active, _, err := s.Fleet().MemberPrecision(id)
		if err != nil || !degraded || active != edgedrift.Float32 {
			t.Fatalf("%s: degraded=%v active=%v err=%v", id, degraded, active, err)
		}
	}

	// Demoted members still serve batches.
	if _, _, err := cl.SendBatch(nil, "a", stream[100:200]); err != nil {
		t.Fatal(err)
	}

	// Stop ingest: the windowed p99 reads 0, pressure clears, and the
	// governor promotes everything back.
	waitFor(t, 10*time.Second, "both members promoted", func() bool {
		return s.Stats().Degraded == 0
	})
	st, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Promotions < 2 {
		t.Fatalf("wire stats after recovery: %+v", st)
	}
	for _, id := range []string{"a", "b"} {
		degraded, active, _, err := s.Fleet().MemberPrecision(id)
		if err != nil || degraded || active != edgedrift.Float64 {
			t.Fatalf("%s after recovery: degraded=%v active=%v err=%v", id, degraded, active, err)
		}
	}
}

// TestShardGovernorSteadyLoadNoFlap runs a shard WITH headroom — a
// generous budget a local replay cannot exceed — under steady load and
// asserts the governor never transitions at all.
func TestShardGovernorSteadyLoadNoFlap(t *testing.T) {
	template, stream := testTemplate(t)
	s, addr := startShard(t, Config{
		Template:         template,
		Pressure:         &pressure.Config{LatencyBudgetNs: uint64(time.Hour), HighStreak: 2, LowStreak: 2, Cooldown: 1},
		PressureInterval: 2 * time.Millisecond,
	})
	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 100; i++ {
		if _, _, err := cl.SendBatch(nil, "s", stream[:50]); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Demotions != 0 || st.Promotions != 0 || st.Degraded != 0 {
		t.Fatalf("governor flapped under steady in-budget load: %+v", st)
	}
}

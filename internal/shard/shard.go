// Package shard is the per-process half of the distributed serve tier:
// a TCP server speaking the wire batch-ingest protocol in front of one
// edgedrift.Fleet. A deployment runs N shard processes behind the
// consistent-hash router (internal/router); each shard owns a disjoint
// subset of the streams and lands every Batch frame directly in the
// fleet's ProcessBatch GEMM path.
//
// Ingest is bounded: each connection gets a reader goroutine, a bounded
// job queue, and one worker goroutine draining it in FIFO order (per
// -connection arrival order is the per-stream order contract, exactly
// as with a local fleet). When the queue is full the shed policy
// decides between backpressure (block the reader — TCP pushes back to
// the sender) and load-shedding (drop the batch at admission, tell the
// client with a Shed frame, count it). Shedding never drops silently:
// a shed batch is never processed, so sent == processed + shed holds
// exactly — the accounting loadgen asserts.
//
// Streams are created on first use by cloning the shard's template
// artifact, so the router can place new streams anywhere without a
// control round-trip. Live migration is the fleet member handoff over
// the wire: MigrateOut exports the member (sample-boundary snapshot,
// CRC-checksummed payload) and tombstones the stream so a late batch
// cannot silently respawn a fresh member; MigrateIn imports it with
// lifetime counters carried over.
package shard

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edgedrift"
	"edgedrift/internal/metrics"
	"edgedrift/internal/pressure"
	"edgedrift/internal/wire"
)

// Config parameterises a shard server.
type Config struct {
	// Template is a serialised Monitor artifact (Monitor.Save) cloned
	// for every stream the shard has not seen before. Required.
	Template []byte
	// Precision selects the member backend built from the template:
	// Float64/Float32 register the loaded Monitor as-is (the artifact's
	// own backend governs), Fixed16 quantises it to a Q16.16 stage.
	Precision edgedrift.Precision
	// QueueDepth bounds each connection's ingest queue in batches;
	// 0 means 64.
	QueueDepth int
	// ShedAfter is the admission policy when a connection's queue is
	// full: 0 blocks the reader until space frees (pure backpressure —
	// TCP flow control pushes back to the sender), > 0 waits that long
	// and then sheds the batch, < 0 sheds immediately.
	ShedAfter time.Duration
	// Cohort, when set, registers every member this shard creates or
	// imports into that cooperation cohort, making its streams eligible
	// for warm recovery and cross-shard state exchange (all clones of
	// one template artifact share a merge fingerprint by construction).
	// Requires mergeable members: incompatible with Precision Fixed16.
	Cohort string
	// Fleet configures the shard's fleet.
	Fleet edgedrift.FleetConfig
	// Pressure, when non-nil, runs the adaptive capacity governor over
	// this shard's fleet: every PressureInterval the shard samples its
	// p99 batch-ingest latency and retained memory and feeds one
	// governor tick, demoting the coldest members under sustained
	// budget pressure and promoting them back when it clears (see
	// internal/pressure for the hysteresis contract).
	Pressure *pressure.Config
	// PressureInterval is the governor tick period; 0 means 500ms.
	PressureInterval time.Duration
	// Logf receives shard lifecycle logs; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Server is one shard process's ingest server.
type Server struct {
	cfg   Config
	fleet *edgedrift.Fleet
	ln    net.Listener

	mu         sync.Mutex
	tombstones map[string]bool // migrated-out streams: never auto-recreate

	closed atomic.Bool
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	batches       metrics.Counter
	shedSamples   metrics.Counter
	shedBatches   metrics.Counter
	migratedIn    metrics.Counter
	migratedOut   metrics.Counter
	mergeFetches  metrics.Counter
	mergeSeeds    metrics.Counter
	ingestLatency metrics.Histogram // per-batch ProcessBatch wall time, ns
	queueDepth    atomic.Int64      // queued batches across all connections
	connections   atomic.Int64

	govMu   sync.Mutex // guards gov (Tick vs Metrics scrapes)
	gov     *pressure.Governor
	govStop chan struct{}
}

// New builds a shard server (not yet listening; call Serve).
func New(cfg Config) (*Server, error) {
	if len(cfg.Template) == 0 {
		return nil, errors.New("shard: config needs a template artifact")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Cohort != "" && cfg.Precision == edgedrift.Fixed16 {
		return nil, errors.New("shard: cohort requires mergeable members; Q16.16 detect-only members cannot cooperate")
	}
	s := &Server{
		cfg:        cfg,
		fleet:      edgedrift.NewFleet(cfg.Fleet),
		tombstones: map[string]bool{},
		conns:      map[net.Conn]struct{}{},
	}
	// Validate the template once up front so a bad artifact fails at
	// startup, not on the first stream.
	if _, err := s.newMember(); err != nil {
		return nil, fmt.Errorf("shard: bad template: %w", err)
	}
	if cfg.Pressure != nil {
		interval := cfg.PressureInterval
		if interval <= 0 {
			interval = 500 * time.Millisecond
		}
		s.gov = pressure.New(*cfg.Pressure, s.fleet)
		s.govStop = make(chan struct{})
		s.wg.Add(1)
		go s.governorLoop(interval)
	}
	return s, nil
}

// governorLoop drives the pressure governor: each tick samples the
// shard's p99 ingest latency and retained memory and lets the governor
// decide. The governor itself is clock-free — this loop is the only
// place wall time enters the control path.
func (s *Server) governorLoop(interval time.Duration) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	var prev metrics.HistogramSnapshot
	for {
		select {
		case <-s.govStop:
			return
		case <-t.C:
			// Windowed p99: the lifetime histogram diffed against the
			// previous tick, so cleared pressure actually reads as
			// cleared (an idle window reads 0).
			cur := s.ingestLatency.Snapshot()
			win := cur.Delta(prev)
			prev = cur
			sample := pressure.Sample{
				P99Ns:       win.Quantile(0.99),
				MemoryBytes: s.fleet.MemoryBytes(),
			}
			s.govMu.Lock()
			act := s.gov.Tick(sample)
			s.govMu.Unlock()
			switch act.Kind {
			case pressure.Demote:
				s.cfg.Logf("shard: governor demoted %q (p99 %dns, %d bytes retained)", act.Stream, sample.P99Ns, sample.MemoryBytes)
			case pressure.Promote:
				s.cfg.Logf("shard: governor promoted %q (pressure cleared)", act.Stream)
			}
		}
	}
}

// Fleet exposes the shard's fleet (metrics, health, tests).
func (s *Server) Fleet() *edgedrift.Fleet { return s.fleet }

// newMember clones the template into a fresh member stage.
func (s *Server) newMember() (edgedrift.Streaming, error) {
	mon, err := edgedrift.LoadMonitor(bytes.NewReader(s.cfg.Template))
	if err != nil {
		return nil, err
	}
	if s.cfg.Precision == edgedrift.Fixed16 {
		return mon.QuantizeQ16()
	}
	return mon, nil
}

// ensureStream registers a member for an unseen stream, cloning the
// template. Returns an error for tombstoned (migrated-out) streams.
func (s *Server) ensureStream(stream string) error {
	s.mu.Lock()
	if s.tombstones[stream] {
		s.mu.Unlock()
		return fmt.Errorf("shard: stream %q migrated out", stream)
	}
	s.mu.Unlock()
	st, err := s.newMember()
	if err != nil {
		return err
	}
	if s.cfg.Cohort != "" {
		mon, ok := st.(*edgedrift.Monitor)
		if !ok {
			return fmt.Errorf("shard: stream %q: cohort %q requires a mergeable member", stream, s.cfg.Cohort)
		}
		err = s.fleet.AddCohort(stream, mon, s.cfg.Cohort)
	} else {
		err = s.fleet.AddStage(stream, st)
	}
	if err != nil && isAlreadyRegistered(err) {
		return nil // lost a create race; the member exists
	}
	return err
}

// isAlreadyRegistered matches the fleet's duplicate-Add error.
func isAlreadyRegistered(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already registered")
}

// Serve accepts connections on ln until Close. It always returns a
// non-nil error (net.ErrClosed after a clean Close).
func (s *Server) Serve(ln net.Listener) error {
	s.connMu.Lock()
	s.ln = ln
	s.connMu.Unlock()
	if s.closed.Load() { // Close raced ahead of us
		ln.Close()
		return net.ErrClosed
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		s.connMu.Lock()
		s.conns[nc] = struct{}{}
		s.connMu.Unlock()
		s.connections.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, nc)
				s.connMu.Unlock()
				s.connections.Add(-1)
				nc.Close()
			}()
			s.serveConn(wire.NewConn(nc))
		}()
	}
}

// Close stops accepting, closes every live connection and waits for
// the per-connection goroutines to drain.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.govStop != nil {
		close(s.govStop)
	}
	var err error
	s.connMu.Lock()
	if s.ln != nil {
		err = s.ln.Close()
	}
	for nc := range s.conns {
		nc.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// job is one admitted batch: the decoded samples (job-owned — the
// frame buffer is reused by the reader) and the stream they belong to.
type job struct {
	stream string
	xs     [][]float64
}

// serveConn runs one connection: handshake, then the reader loop
// feeding a bounded queue drained by one worker goroutine. Batches are
// admitted (or shed) here; control frames (stats, migration) are
// answered inline — the router fences migrations so no batch for the
// moving stream is in flight anywhere when MigrateOut arrives.
func (s *Server) serveConn(c *wire.Conn) {
	if err := c.AcceptHandshake(); err != nil {
		return
	}
	jobs := make(chan job, s.cfg.QueueDepth)
	var workerWg sync.WaitGroup
	workerWg.Add(1)
	go func() {
		defer workerWg.Done()
		s.worker(c, jobs)
	}()
	defer func() {
		close(jobs)
		workerWg.Wait()
	}()

	for {
		typ, p, err := c.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !s.closed.Load() {
				s.cfg.Logf("shard: connection error: %v", err)
			}
			return
		}
		switch typ {
		case wire.TypeBatch:
			b, err := wire.ParseBatch(p)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				return
			}
			j := job{stream: b.Stream, xs: b.Decode(nil)}
			if !s.admit(c, jobs, j) {
				return
			}
		case wire.TypeMigrateOut:
			stream, err := parseStreamOnly(p)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				return
			}
			s.migrateOut(c, stream)
		case wire.TypeMigrateIn:
			st, err := wire.ParseState(p)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				return
			}
			s.migrateIn(c, st)
		case wire.TypeFetchState:
			stream, err := parseStreamOnly(p)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				return
			}
			s.fetchState(c, stream)
		case wire.TypeMergeState:
			ms, err := wire.ParseMergeStates(p)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				return
			}
			s.mergeSeed(c, ms)
		case wire.TypeStats:
			c.WriteFrame(wire.TypeStatsReply, wire.AppendStats(nil, s.Stats()))
		default:
			c.WriteFrame(wire.TypeError, []byte(fmt.Sprintf("unexpected frame type %#x", typ)))
			return
		}
	}
}

// admit enqueues a batch under the shed policy. Returns false only on
// a write failure (connection is dead).
func (s *Server) admit(c *wire.Conn, jobs chan job, j job) bool {
	// Fast path: space available.
	select {
	case jobs <- j:
		s.queueDepth.Add(1)
		return true
	default:
	}
	if s.cfg.ShedAfter == 0 {
		// Pure backpressure: block the reader; TCP flow control stalls
		// the sender until the worker catches up.
		jobs <- j
		s.queueDepth.Add(1)
		return true
	}
	if s.cfg.ShedAfter > 0 {
		t := time.NewTimer(s.cfg.ShedAfter)
		defer t.Stop()
		select {
		case jobs <- j:
			s.queueDepth.Add(1)
			return true
		case <-t.C:
		}
	}
	// Shed: the batch is dropped at admission, never processed.
	s.shedBatches.Inc()
	s.shedSamples.Add(uint64(len(j.xs)))
	return c.WriteFrame(wire.TypeShed, wire.AppendShed(nil, j.stream, len(j.xs))) == nil
}

// worker drains one connection's queue in FIFO order: per-connection
// arrival order is the per-stream sample order, as with a local fleet.
func (s *Server) worker(c *wire.Conn, jobs chan job) {
	var results []edgedrift.Result
	var ack []byte
	for j := range jobs {
		s.queueDepth.Add(-1)
		start := time.Now()
		var err error
		results, err = s.fleet.ProcessBatchInto(results[:0], j.stream, j.xs)
		if err != nil {
			// Unknown stream: first sight — clone the template and retry.
			if cerr := s.ensureStream(j.stream); cerr != nil {
				c.WriteFrame(wire.TypeError, []byte(cerr.Error()))
				continue
			}
			results, err = s.fleet.ProcessBatchInto(results[:0], j.stream, j.xs)
			if err != nil {
				c.WriteFrame(wire.TypeError, []byte(err.Error()))
				continue
			}
		}
		s.batches.Inc()
		s.ingestLatency.Observe(uint64(time.Since(start)))
		ack = wire.AppendResults(ack[:0], j.stream, results)
		if err := c.WriteFrame(wire.TypeBatchAck, ack); err != nil {
			return
		}
	}
}

// migrateOut exports a member and tombstones the stream.
func (s *Server) migrateOut(c *wire.Conn, stream string) {
	st, err := s.fleet.ExportMember(stream)
	if err != nil {
		c.WriteFrame(wire.TypeError, []byte(err.Error()))
		return
	}
	s.mu.Lock()
	s.tombstones[stream] = true
	s.mu.Unlock()
	s.migratedOut.Inc()
	c.WriteFrame(wire.TypeState, wire.AppendState(nil, wire.State{
		Stream:  stream,
		Kind:    st.Kind,
		Samples: st.Samples,
		Drifts:  st.Drifts,
		Payload: st.Payload,
	}))
}

// migrateIn imports a member exported by another shard. The wire State
// frame does not carry a cohort — the member joins this shard's
// configured cohort (cohort membership is a placement property, and the
// router co-locates a cohort's shards by configuration).
func (s *Server) migrateIn(c *wire.Conn, st wire.State) {
	err := s.fleet.ImportMember(&edgedrift.MemberState{
		ID:      st.Stream,
		Kind:    st.Kind,
		Cohort:  s.cfg.Cohort,
		Samples: st.Samples,
		Drifts:  st.Drifts,
		Payload: append([]byte(nil), st.Payload...),
	})
	if err != nil {
		c.WriteFrame(wire.TypeError, []byte(err.Error()))
		return
	}
	s.mu.Lock()
	delete(s.tombstones, st.Stream) // the stream may return later
	s.mu.Unlock()
	s.migratedIn.Inc()
	c.WriteFrame(wire.TypeMigrateAck, nil)
}

// fetchState exports a member's mergeable model state without
// deregistering it — unlike migrateOut there is no tombstone and the
// member keeps processing; this is the donor half of a cross-shard
// warm recovery.
func (s *Server) fetchState(c *wire.Conn, stream string) {
	state, fprint, err := s.fleet.ExportMergeState(stream)
	if err != nil {
		c.WriteFrame(wire.TypeError, []byte(err.Error()))
		return
	}
	s.mergeFetches.Inc()
	c.WriteFrame(wire.TypeMergeState, wire.AppendMergeStates(nil, wire.MergeStates{
		Stream:      stream,
		Fingerprint: fprint,
		States:      [][]byte{state},
	}))
}

// mergeSeed replaces a local member's model with the closed-form merge
// of the delivered peer states (the recovery half of a cross-shard warm
// recovery). A non-zero fingerprint in the frame must match the target
// member's — a cross-fleet topology mismatch fails loudly before any
// state is touched.
func (s *Server) mergeSeed(c *wire.Conn, ms wire.MergeStates) {
	if ms.Fingerprint != 0 {
		got, err := s.fleet.MemberFingerprint(ms.Stream)
		if err != nil {
			c.WriteFrame(wire.TypeError, []byte(err.Error()))
			return
		}
		if got != ms.Fingerprint {
			c.WriteFrame(wire.TypeError, []byte(fmt.Sprintf(
				"shard: stream %q fingerprint %#x does not match seed fingerprint %#x", ms.Stream, got, ms.Fingerprint)))
			return
		}
	}
	if err := s.fleet.MergeSeedMember(ms.Stream, ms.States); err != nil {
		c.WriteFrame(wire.TypeError, []byte(err.Error()))
		return
	}
	s.mergeSeeds.Inc()
	c.WriteFrame(wire.TypeMergeAck, nil)
}

// Stats snapshots the shard's counters for the wire Stats reply.
func (s *Server) Stats() wire.Stats {
	m := s.fleet.Metrics()
	qd := s.queueDepth.Load()
	if qd < 0 {
		qd = 0
	}
	return wire.Stats{
		Streams:            uint32(m.Streams),
		Samples:            m.Samples,
		Drifts:             m.Drifts,
		Batches:            s.batches.Load(),
		ShedSamples:        s.shedSamples.Load(),
		ShedBatches:        s.shedBatches.Load(),
		MigratedIn:         s.migratedIn.Load(),
		MigratedOut:        s.migratedOut.Load(),
		QueueDepth:         uint32(qd),
		Degraded:           uint32(m.Degraded),
		Demotions:          m.Demotions,
		Promotions:         m.Promotions,
		TransitionFailures: m.TransitionFailures,
		IngestP99Ns:        s.ingestLatency.Quantile(0.99),
	}
}

// WriteMetrics renders the shard's Prometheus exposition: the fleet's
// full roll-up plus the shard-level ingest families.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.fleet.WriteMetrics(w); err != nil {
		return err
	}
	tw := metrics.NewTextWriter(w)
	tw.Counter("edgedrift_shard_batches_total", "Batches processed by this shard.", nil, s.batches.Load())
	tw.Counter("edgedrift_shard_shed_batches_total", "Batches dropped at admission (queue full past the shed deadline).", nil, s.shedBatches.Load())
	tw.Counter("edgedrift_shard_shed_samples_total", "Samples inside shed batches (never processed).", nil, s.shedSamples.Load())
	tw.Counter("edgedrift_shard_migrations_in_total", "Streams imported via live migration.", nil, s.migratedIn.Load())
	tw.Counter("edgedrift_shard_migrations_out_total", "Streams exported via live migration.", nil, s.migratedOut.Load())
	tw.Counter("edgedrift_shard_merge_fetches_total", "Mergeable model states served to peers (cross-shard recovery donors).", nil, s.mergeFetches.Load())
	tw.Counter("edgedrift_shard_merge_seeds_total", "Members re-seeded from peer merge states (cross-shard recovery targets).", nil, s.mergeSeeds.Load())
	tw.Gauge("edgedrift_shard_queue_depth", "Batches queued across all ingest connections.", nil, float64(s.queueDepth.Load()))
	tw.Gauge("edgedrift_shard_connections", "Live ingest connections.", nil, float64(s.connections.Load()))
	if lat := s.ingestLatency.Snapshot(); lat.Count > 0 {
		tw.Histogram("edgedrift_shard_ingest_latency_seconds", "Per-batch fleet ProcessBatch wall time.", nil, lat, 1e-9)
	}
	if s.gov != nil {
		s.govMu.Lock()
		gm := s.gov.Metrics()
		s.govMu.Unlock()
		tw.Counter("edgedrift_shard_governor_ticks_total", "Pressure-governor control-loop ticks.", nil, gm.Ticks)
		tw.Counter("edgedrift_shard_governor_over_budget_total", "Ticks with at least one pressure axis over budget.", nil, gm.OverBudget)
		tw.Counter("edgedrift_shard_governor_demotions_total", "Members demoted by the governor.", nil, gm.Demotions)
		tw.Counter("edgedrift_shard_governor_promotions_total", "Members promoted back by the governor.", nil, gm.Promotions)
		tw.Counter("edgedrift_shard_governor_errors_total", "Transitions the fleet refused to the governor.", nil, gm.Errors)
		tw.Gauge("edgedrift_shard_governor_demoted", "Members currently demoted by the governor.", nil, float64(gm.Demoted))
	}
	return tw.Err()
}

// MetricsHandler serves WriteMetrics over HTTP (the /metrics endpoint).
func (s *Server) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// parseStreamOnly parses a payload that is exactly one stream name.
func parseStreamOnly(p []byte) (string, error) {
	stream, rest, err := wire.ParseStream(p)
	if err != nil {
		return "", err
	}
	if len(rest) != 0 {
		return "", fmt.Errorf("wire: %d trailing bytes after stream name", len(rest))
	}
	return stream, nil
}

package shard

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"edgedrift"
	"edgedrift/internal/core"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
	"edgedrift/internal/wire"
)

// testTemplate trains a small monitor on synthetic Gaussian data and
// returns its serialised artifact plus a drifted stream to replay.
func testTemplate(t testing.TB) (template []byte, stream [][]float64) {
	t.Helper()
	oldC := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newC := synth.ShiftedGaussian(oldC, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldC, 300, r)
	st, err := synth.Generate(oldC, newC, 3000, synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st.X
}

// startShard builds and serves a shard on an ephemeral port.
func startShard(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

// referenceFleet replays the template locally — the ground truth every
// shard result must match bit-for-bit.
func referenceFleet(t *testing.T, template []byte, prec edgedrift.Precision, streams ...string) *edgedrift.Fleet {
	t.Helper()
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	for _, id := range streams {
		mon, err := edgedrift.LoadMonitor(bytes.NewReader(template))
		if err != nil {
			t.Fatal(err)
		}
		var st edgedrift.Streaming = mon
		if prec == edgedrift.Fixed16 {
			if st, err = mon.QuantizeQ16(); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.AddStage(id, st); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// TestShardBatchIngest drives two streams through a shard over TCP and
// asserts every result is bit-identical to a local fleet replay.
func TestShardBatchIngest(t *testing.T) {
	template, stream := testTemplate(t)
	_, addr := startShard(t, Config{Template: template})
	ref := referenceFleet(t, template, edgedrift.Float64, "a", "b")

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const batchLen = 100
	for off := 0; off+batchLen <= 1000; off += batchLen {
		xs := stream[off : off+batchLen]
		for _, id := range []string{"a", "b"} {
			got, shed, err := cl.SendBatch(nil, id, xs)
			if err != nil {
				t.Fatal(err)
			}
			if shed != 0 {
				t.Fatalf("unexpected shed of %d samples with backpressure policy", shed)
			}
			want, err := ref.ProcessBatch(id, xs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: shard results diverge from local replay at offset %d", id, off)
			}
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Streams != 2 || st.Samples != 2000 || st.ShedSamples != 0 {
		t.Fatalf("stats = %+v, want 2 streams / 2000 samples / 0 shed", st)
	}
}

// TestShardShedAccounting pins the shed policy's books: with an
// immediate-shed queue and the worker busy, pipelined batches are
// dropped at admission — and sent == processed + shed holds exactly.
func TestShardShedAccounting(t *testing.T) {
	template, stream := testTemplate(t)
	s, addr := startShard(t, Config{Template: template, QueueDepth: 2, ShedAfter: -1})

	conn, err := wire.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Pipeline: blast batches without reading acks, then drain. The
	// worker can't keep up with a zero-latency sender, so the 2-deep
	// queue must overflow and shed.
	const nBatches, batchLen = 40, 64
	sent := 0
	var wg sync.WaitGroup
	wg.Add(1)
	acked, shedSamples := 0, 0
	go func() {
		defer wg.Done()
		for i := 0; i < nBatches; i++ {
			typ, p, err := conn.ReadFrame()
			if err != nil {
				t.Error(err)
				return
			}
			switch typ {
			case wire.TypeBatchAck:
				_, rs, err := wire.ParseResults(p, nil)
				if err != nil {
					t.Error(err)
					return
				}
				acked += len(rs)
			case wire.TypeShed:
				_, n, err := wire.ParseShed(p)
				if err != nil {
					t.Error(err)
					return
				}
				shedSamples += n
			default:
				t.Errorf("unexpected frame %#x", typ)
				return
			}
		}
	}()
	var payload []byte
	for i := 0; i < nBatches; i++ {
		off := (i * batchLen) % (len(stream) - batchLen)
		payload, err = wire.AppendBatch(payload[:0], "s", stream[off:off+batchLen])
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.WriteFrame(wire.TypeBatch, payload); err != nil {
			t.Fatal(err)
		}
		sent += batchLen
	}
	wg.Wait()

	if acked+shedSamples != sent {
		t.Fatalf("accounting broken: acked %d + shed %d != sent %d", acked, shedSamples, sent)
	}
	st := s.Stats()
	if st.Samples != uint64(acked) {
		t.Fatalf("shard processed %d samples, acked %d — a shed batch was processed", st.Samples, acked)
	}
	if st.ShedSamples != uint64(shedSamples) {
		t.Fatalf("shard shed counter %d, client saw %d", st.ShedSamples, shedSamples)
	}
}

// TestShardMigration moves a live stream between two shards mid-stream
// and asserts bit-identical continuation and exact counter carry-over.
func TestShardMigration(t *testing.T) {
	template, stream := testTemplate(t)
	a, addrA := startShard(t, Config{Template: template})
	b, addrB := startShard(t, Config{Template: template})
	ref := referenceFleet(t, template, edgedrift.Float64, "mig")

	clA, err := wire.DialClient(addrA, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	clB, err := wire.DialClient(addrB, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()

	check := func(cl *wire.Client, xs [][]float64) {
		t.Helper()
		got, shed, err := cl.SendBatch(nil, "mig", xs)
		if err != nil || shed != 0 {
			t.Fatal(err, shed)
		}
		want, err := ref.ProcessBatch("mig", xs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("results diverge from unmigrated reference")
		}
	}

	// First 1500 samples on shard A — through the drift at 1000 AND the
	// reconstruction that follows (checkpointing is refused
	// mid-reconstruction, so a migration point must sit past it).
	for off := 0; off < 1500; off += 100 {
		check(clA, stream[off:off+100])
	}
	// Live migration: export from A, import to B.
	st, err := clA.MigrateOut("mig")
	if err != nil {
		t.Fatal(err)
	}
	if err := clB.MigrateIn(st); err != nil {
		t.Fatal(err)
	}
	// A late batch at the old home must fail loudly, not respawn a
	// fresh member from the template.
	if _, _, err := clA.SendBatch(nil, "mig", stream[1500:1600]); err == nil {
		t.Fatal("tombstoned stream accepted a batch on the source shard")
	} else {
		var re *wire.RemoteError
		if !errors.As(err, &re) || !strings.Contains(re.Msg, "migrated out") {
			t.Fatalf("tombstone error = %v", err)
		}
	}
	// Continuation on shard B stays bit-identical.
	for off := 1500; off < 3000; off += 100 {
		check(clB, stream[off:off+100])
	}

	// Accounting: zero lost, zero double-counted across the move. The
	// exported member leaves the source roll-up entirely (its lifetime
	// counters travel with it), so all 3000 samples live on B.
	sa, sb := a.Stats(), b.Stats()
	if sa.Samples != 0 || sa.Streams != 0 {
		t.Fatalf("source shard kept %d samples / %d streams after export", sa.Samples, sa.Streams)
	}
	if sb.Samples != 3000 {
		t.Fatalf("target shard samples = %d, want 3000 (carried counters + new batches)", sb.Samples)
	}
	if sa.MigratedOut != 1 || sb.MigratedIn != 1 {
		t.Fatalf("migration counters: out=%d in=%d", sa.MigratedOut, sb.MigratedIn)
	}
	refS, refD, err := ref.MemberStats("mig")
	if err != nil {
		t.Fatal(err)
	}
	bS, bD, err := b.Fleet().MemberStats("mig")
	if err != nil {
		t.Fatal(err)
	}
	if bS != refS || bD != refD {
		t.Fatalf("migrated counters %d/%d, reference %d/%d", bS, bD, refS, refD)
	}
}

// TestShardQ16Members runs a q16 shard end to end — template quantised
// at member creation, results bit-identical to a local q16 replay, and
// migration of the q16 member to a second shard.
func TestShardQ16Members(t *testing.T) {
	template, stream := testTemplate(t)
	cfg := Config{Template: template, Precision: edgedrift.Fixed16}
	_, addrA := startShard(t, cfg)
	_, addrB := startShard(t, cfg)
	ref := referenceFleet(t, template, edgedrift.Fixed16, "q")

	clA, err := wire.DialClient(addrA, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clA.Close()
	clB, err := wire.DialClient(addrB, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer clB.Close()

	run := func(cl *wire.Client, xs [][]float64) []core.Result {
		t.Helper()
		got, shed, err := cl.SendBatch(nil, "q", xs)
		if err != nil || shed != 0 {
			t.Fatal(err, shed)
		}
		return got
	}
	got := run(clA, stream[:800])
	want, err := ref.ProcessBatch("q", stream[:800])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("q16 shard results diverge from local q16 replay")
	}
	st, err := clA.MigrateOut("q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != 1 {
		t.Fatalf("q16 member exported with kind %d, want 1", st.Kind)
	}
	if err := clB.MigrateIn(st); err != nil {
		t.Fatal(err)
	}
	got = run(clB, stream[800:2000])
	want, err = ref.ProcessBatch("q", stream[800:2000])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("migrated q16 member diverged from unmigrated replay")
	}
}

// TestShardMetricsExposition checks the shard families render alongside
// the fleet roll-up.
func TestShardMetricsExposition(t *testing.T) {
	template, stream := testTemplate(t)
	s, addr := startShard(t, Config{Template: template})
	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.SendBatch(nil, "s", stream[:100]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"edgedrift_samples_total 100",
		"edgedrift_shard_batches_total 1",
		"edgedrift_shard_shed_samples_total 0",
		"edgedrift_shard_queue_depth 0",
		"edgedrift_shard_migrations_out_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestShardMergeProtocol drives the cooperative control frames over
// TCP: FetchState is non-destructive (the donor keeps serving, no
// tombstone), MergeSeed replaces the target's model and is fenced by
// the fingerprint check, and both counters reach the exposition.
func TestShardMergeProtocol(t *testing.T) {
	template, stream := testTemplate(t)
	s, addr := startShard(t, Config{Template: template, Cohort: "fans"})

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	// Create two monitoring streams with pre-drift data.
	for _, id := range []string{"t", "p"} {
		if _, _, err := cl.SendBatch(nil, id, stream[:200]); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := s.Fleet().Cohort("p"); got != "fans" {
		t.Fatalf("shard-created stream joined cohort %q, want fans", got)
	}

	ms, err := cl.FetchState("p")
	if err != nil {
		t.Fatal(err)
	}
	if ms.Stream != "p" || len(ms.States) != 1 || ms.Fingerprint == 0 {
		t.Fatalf("fetch reply: stream=%q states=%d fprint=%#x", ms.Stream, len(ms.States), ms.Fingerprint)
	}
	// Non-destructive: the donor still serves batches afterwards.
	if _, _, err := cl.SendBatch(nil, "p", stream[200:300]); err != nil {
		t.Fatalf("donor stopped serving after fetch: %v", err)
	}

	// A wrong fingerprint must be rejected before any state is touched.
	bad := ms
	bad.Stream = "t"
	bad.Fingerprint = ms.Fingerprint + 1
	var re *wire.RemoteError
	if err := cl.MergeSeed(bad); !errors.As(err, &re) {
		t.Fatalf("fingerprint mismatch: err = %v, want RemoteError", err)
	}

	seed := ms
	seed.Stream = "t"
	if err := cl.MergeSeed(seed); err != nil {
		t.Fatal(err)
	}
	// The seeded stream keeps serving.
	if _, _, err := cl.SendBatch(nil, "t", stream[200:300]); err != nil {
		t.Fatalf("target stopped serving after seed: %v", err)
	}

	var buf bytes.Buffer
	if err := s.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"edgedrift_shard_merge_fetches_total 1",
		"edgedrift_shard_merge_seeds_total 1",
		"edgedrift_merges_total 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Fetching an unknown stream fails loudly, in protocol sync.
	if _, err := cl.FetchState("nosuch"); !errors.As(err, &re) {
		t.Fatalf("fetch of unknown stream: err = %v, want RemoteError", err)
	}
}

// TestShardCohortRejectsQ16 pins the loud incompatibility: a cohort
// needs mergeable members, so a Q16.16 shard with a cohort must refuse
// to start.
func TestShardCohortRejectsQ16(t *testing.T) {
	template, _ := testTemplate(t)
	_, err := New(Config{Template: template, Precision: edgedrift.Fixed16, Cohort: "fans"})
	if err == nil {
		t.Fatal("Q16.16 shard with a cohort started")
	}
}

package wire

import (
	"fmt"
	"time"

	"edgedrift/internal/core"
)

// Client is the synchronous request/reply view of a framed connection:
// one outstanding request at a time, matching the protocol's
// request/reply discipline. The loadgen's per-connection drivers and
// the router's migration orchestration both speak through it; the
// router's hot forwarding path bypasses it and relays raw frames.
type Client struct {
	conn *Conn
	buf  []byte // reused request-encoding buffer
}

// NewClient wraps an already-handshaken connection.
func NewClient(conn *Conn) *Client { return &Client{conn: conn} }

// DialClient connects to a shard (or router) and handshakes.
func DialClient(addr string, timeout time.Duration) (*Client, error) {
	conn, err := Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// SendBatch sends one stream batch and waits for its outcome: the
// per-sample results (appended to dst), or the shed sample count when
// the shard dropped the batch at admission (shed > 0, results nil —
// the samples were NOT processed).
func (c *Client) SendBatch(dst []core.Result, stream string, xs [][]float64) (results []core.Result, shed int, err error) {
	c.buf, err = AppendBatch(c.buf[:0], stream, xs)
	if err != nil {
		return dst, 0, err
	}
	if err := c.conn.WriteFrame(TypeBatch, c.buf); err != nil {
		return dst, 0, err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return dst, 0, err
	}
	switch typ {
	case TypeBatchAck:
		gotStream, rs, err := ParseResults(p, dst)
		if err != nil {
			return dst, 0, err
		}
		if gotStream != stream {
			return dst, 0, fmt.Errorf("%w: ack for stream %q, want %q", ErrProtocol, gotStream, stream)
		}
		return rs, 0, nil
	case TypeShed:
		_, n, err := ParseShed(p)
		if err != nil {
			return dst, 0, err
		}
		return dst, n, nil
	case TypeError:
		return dst, 0, &RemoteError{Msg: string(p)}
	default:
		return dst, 0, fmt.Errorf("%w: unexpected reply type %#x to batch", ErrProtocol, typ)
	}
}

// MigrateOut asks the peer to export a stream and returns its
// checkpoint. The returned State owns its payload (copied out of the
// frame buffer).
func (c *Client) MigrateOut(stream string) (State, error) {
	if err := c.conn.WriteFrame(TypeMigrateOut, appendString(nil, stream)); err != nil {
		return State{}, err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return State{}, err
	}
	switch typ {
	case TypeState:
		st, err := ParseState(p)
		if err != nil {
			return State{}, err
		}
		st.Payload = append([]byte(nil), st.Payload...)
		return st, nil
	case TypeError:
		return State{}, &RemoteError{Msg: string(p)}
	default:
		return State{}, fmt.Errorf("%w: unexpected reply type %#x to migrate-out", ErrProtocol, typ)
	}
}

// MigrateIn hands a checkpoint to the peer and waits for its ack.
func (c *Client) MigrateIn(st State) error {
	if err := c.conn.WriteFrame(TypeMigrateIn, AppendState(nil, st)); err != nil {
		return err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return err
	}
	switch typ {
	case TypeMigrateAck:
		return nil
	case TypeError:
		return &RemoteError{Msg: string(p)}
	default:
		return fmt.Errorf("%w: unexpected reply type %#x to migrate-in", ErrProtocol, typ)
	}
}

// FetchState asks the peer for a stream's mergeable model state without
// deregistering it — the non-destructive read half of a cross-shard
// warm recovery. The returned states are copied out of the frame
// buffer. It fails (RemoteError) when the member is mid-reconstruction
// or has no mergeable state.
func (c *Client) FetchState(stream string) (MergeStates, error) {
	if err := c.conn.WriteFrame(TypeFetchState, appendString(nil, stream)); err != nil {
		return MergeStates{}, err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return MergeStates{}, err
	}
	switch typ {
	case TypeMergeState:
		ms, err := ParseMergeStates(p)
		if err != nil {
			return MergeStates{}, err
		}
		for i, st := range ms.States {
			ms.States[i] = append([]byte(nil), st...)
		}
		return ms, nil
	case TypeError:
		return MergeStates{}, &RemoteError{Msg: string(p)}
	default:
		return MergeStates{}, fmt.Errorf("%w: unexpected reply type %#x to fetch-state", ErrProtocol, typ)
	}
}

// MergeSeed hands peer merge states to the shard owning stream, which
// replaces the stream's model with their closed-form combination. A
// non-zero ms.Fingerprint must match the target member's fingerprint —
// the shard rejects the seed otherwise, so an incompatible cross-shard
// merge fails loudly before any state is touched.
func (c *Client) MergeSeed(ms MergeStates) error {
	if err := c.conn.WriteFrame(TypeMergeState, AppendMergeStates(nil, ms)); err != nil {
		return err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return err
	}
	switch typ {
	case TypeMergeAck:
		return nil
	case TypeError:
		return &RemoteError{Msg: string(p)}
	default:
		return fmt.Errorf("%w: unexpected reply type %#x to merge-seed", ErrProtocol, typ)
	}
}

// Stats fetches the peer's counter snapshot.
func (c *Client) Stats() (Stats, error) {
	if err := c.conn.WriteFrame(TypeStats, nil); err != nil {
		return Stats{}, err
	}
	typ, p, err := c.conn.ReadFrame()
	if err != nil {
		return Stats{}, err
	}
	switch typ {
	case TypeStatsReply:
		return ParseStats(p)
	case TypeError:
		return Stats{}, &RemoteError{Msg: string(p)}
	default:
		return Stats{}, fmt.Errorf("%w: unexpected reply type %#x to stats", ErrProtocol, typ)
	}
}

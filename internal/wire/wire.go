// Package wire is the binary batch-ingest protocol of the distributed
// serve tier: length-prefixed frames over TCP carrying whole per-stream
// sample batches, their per-sample results, and the checkpoint payloads
// of live stream migrations.
//
// A sample is ~41 float64s, so per-sample framing would drown the
// detector's O(C·D + H²) arithmetic in syscalls and header bytes. Every
// Batch frame therefore carries one stream's whole batch, which the
// shard lands directly in Fleet.ProcessBatch — the GEMM path — and acks
// with one frame of per-sample results. Results echo every field of
// core.Result bit-exactly (scores and distances as IEEE-754 bit
// patterns), which is what lets a client fingerprint a stream across a
// live migration and assert bit-identical continuation.
//
// Frame layout (all integers little-endian):
//
//	u32 length   — byte length of type + payload (≤ MaxFrame)
//	u8  type     — Type* constant
//	...payload
//
// The protocol is strictly request/reply per connection: a client sends
// one frame and reads one reply (TypeShed counts as the reply to an
// over-quota batch). That keeps connection state trivial and lets a
// router multiplex many client streams over a small pool of shard
// connections without reply matching.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"

	"edgedrift/internal/core"
)

// Frame types.
const (
	// TypeHello opens a connection: payload is the 4-byte protocol magic
	// plus a version byte. The server answers TypeHelloAck (same
	// payload) or drops the connection.
	TypeHello = 0x01
	// TypeHelloAck acknowledges a Hello.
	TypeHelloAck = 0x02
	// TypeBatch carries one stream's sample batch (see AppendBatch).
	TypeBatch = 0x10
	// TypeBatchAck carries the per-sample results of a Batch (see
	// AppendResults).
	TypeBatchAck = 0x11
	// TypeShed tells the client its batch was dropped at admission
	// because the shard's ingest queue stayed full past the shed
	// deadline: payload is the stream name and the shed sample count.
	// The batch was NOT processed; the client decides whether to retry.
	TypeShed = 0x12
	// TypeMigrateOut asks the shard to export a stream: payload is the
	// stream name. The shard answers TypeState or TypeError.
	TypeMigrateOut = 0x20
	// TypeState carries an exported member checkpoint (see AppendState).
	TypeState = 0x21
	// TypeMigrateIn hands a checkpoint to the target shard: payload is
	// the same layout as TypeState. The shard answers TypeMigrateAck or
	// TypeError.
	TypeMigrateIn = 0x22
	// TypeMigrateAck acknowledges a MigrateIn: payload is the stream name.
	TypeMigrateAck = 0x23
	// TypeFetchState asks the shard for a stream's mergeable model state
	// WITHOUT deregistering it: payload is the stream name. The shard
	// answers TypeMergeState (one state) or TypeError. Unlike MigrateOut
	// this is non-destructive — the member keeps processing — and it only
	// succeeds for a monitoring member, so a cross-shard recovery can
	// never ship mid-reconstruction state.
	TypeFetchState = 0x24
	// TypeMergeState carries merge state (see AppendMergeStates): as a
	// reply to FetchState (one state, the member's fingerprint) or as a
	// request seeding a stream with peer states (answered by
	// TypeMergeAck or TypeError).
	TypeMergeState = 0x25
	// TypeMergeAck acknowledges a merge seed: payload is the stream name.
	TypeMergeAck = 0x26
	// TypeStats asks the shard for its counters; empty payload. The
	// shard answers TypeStatsReply.
	TypeStats = 0x30
	// TypeStatsReply carries the shard's counter snapshot (see
	// AppendStats).
	TypeStatsReply = 0x31
	// TypeError reports a request failure: payload is a UTF-8 message.
	TypeError = 0x7f
)

// MaxFrame bounds a frame's type+payload length: large enough for a
// 4096-sample batch of 500-dim float64 samples, small enough that a
// corrupt length prefix cannot demand a multi-gigabyte allocation.
const MaxFrame = 16 << 20

// Version is the protocol version carried in the Hello handshake.
const Version = 1

// helloMagic is the 4-byte protocol identifier in Hello/HelloAck.
var helloMagic = [4]byte{'E', 'D', 'W', '1'}

// ErrProtocol reports a malformed frame or handshake.
var ErrProtocol = errors.New("wire: protocol error")

// RemoteError is a TypeError reply surfaced to the caller.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "wire: remote error: " + e.Msg }

// Conn is a framed connection. ReadFrame and WriteFrame are each safe
// for one concurrent caller (reads and writes may overlap); WriteFrame
// additionally serialises concurrent writers internally so response
// writers and shed notifications can share the connection.
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	rbuf []byte // reused ReadFrame buffer; valid until the next ReadFrame
}

// NewConn wraps an established net.Conn. The caller still owes the
// Hello handshake (Handshake client-side, AcceptHandshake server-side).
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:  c,
		br: bufio.NewReaderSize(c, 64<<10),
		bw: bufio.NewWriterSize(c, 64<<10),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetDeadline bounds the next I/O operations on the connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.c.SetDeadline(t) }

// WriteFrame sends one frame (type byte plus payload) and flushes.
func (c *Conn) WriteFrame(typ byte, payload []byte) error {
	if len(payload)+1 > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrProtocol, len(payload)+1)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)+1))
	hdr[4] = typ
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := c.bw.Write(payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReadFrame reads one frame. The returned payload aliases an internal
// buffer and is valid only until the next ReadFrame call — callers that
// hand it to another goroutine must copy it first.
func (c *Conn) ReadFrame() (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: implausible frame length %d", ErrProtocol, n)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	buf := c.rbuf[:n]
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// Handshake runs the client half of the Hello exchange.
func (c *Conn) Handshake() error {
	if err := c.WriteFrame(TypeHello, append(helloMagic[:4:4], Version)); err != nil {
		return err
	}
	typ, p, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if typ != TypeHelloAck || len(p) != 5 || [4]byte(p[:4]) != helloMagic || p[4] != Version {
		return fmt.Errorf("%w: bad handshake ack", ErrProtocol)
	}
	return nil
}

// AcceptHandshake runs the server half of the Hello exchange.
func (c *Conn) AcceptHandshake() error {
	typ, p, err := c.ReadFrame()
	if err != nil {
		return err
	}
	if typ != TypeHello || len(p) != 5 || [4]byte(p[:4]) != helloMagic {
		return fmt.Errorf("%w: bad hello", ErrProtocol)
	}
	if p[4] != Version {
		return fmt.Errorf("%w: version %d, want %d", ErrProtocol, p[4], Version)
	}
	return c.WriteFrame(TypeHelloAck, append(helloMagic[:4:4], Version))
}

// Dial connects to a shard and completes the handshake.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := NewConn(nc)
	if timeout > 0 {
		nc.SetDeadline(time.Now().Add(timeout))
	}
	if err := c.Handshake(); err != nil {
		nc.Close()
		return nil, err
	}
	if timeout > 0 {
		nc.SetDeadline(time.Time{})
	}
	return c, nil
}

// --- Batch payloads ---

// AppendBatch encodes a Batch payload: stream name, sample geometry,
// then the samples as raw IEEE-754 bit patterns.
//
//	u16 streamLen | stream | u16 dims | u32 count | count×dims f64
func AppendBatch(dst []byte, stream string, xs [][]float64) ([]byte, error) {
	if len(stream) == 0 || len(stream) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: stream name length %d", ErrProtocol, len(stream))
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrProtocol)
	}
	dims := len(xs[0])
	if dims == 0 || dims > math.MaxUint16 {
		return nil, fmt.Errorf("%w: sample dimension %d", ErrProtocol, dims)
	}
	dst = appendString(dst, stream)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(dims))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(xs)))
	for _, x := range xs {
		if len(x) != dims {
			return nil, fmt.Errorf("%w: ragged batch (%d-dim sample in %d-dim batch)", ErrProtocol, len(x), dims)
		}
		for _, v := range x {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst, nil
}

// Batch is a parsed Batch payload. Samples aliases the frame buffer —
// decode or copy before the next ReadFrame.
type Batch struct {
	Stream  string
	Dims    int
	Count   int
	Samples []byte // Count×Dims little-endian f64 bit patterns
}

// ParseBatch parses a Batch payload without decoding the samples, so a
// router can route on the header alone and relay the bytes untouched.
func ParseBatch(p []byte) (Batch, error) {
	var b Batch
	stream, rest, err := parseString(p)
	if err != nil {
		return b, err
	}
	if len(rest) < 6 {
		return b, fmt.Errorf("%w: short batch header", ErrProtocol)
	}
	b.Stream = stream
	b.Dims = int(binary.LittleEndian.Uint16(rest))
	b.Count = int(binary.LittleEndian.Uint32(rest[2:]))
	b.Samples = rest[6:]
	if b.Dims == 0 || b.Count == 0 {
		return b, fmt.Errorf("%w: empty batch geometry %dx%d", ErrProtocol, b.Count, b.Dims)
	}
	if len(b.Samples) != b.Count*b.Dims*8 {
		return b, fmt.Errorf("%w: batch payload %d bytes, want %d", ErrProtocol, len(b.Samples), b.Count*b.Dims*8)
	}
	return b, nil
}

// Decode materialises the batch into dst (reused across batches; rows
// are grown as needed). The result is valid as long as dst's rows are.
func (b Batch) Decode(dst [][]float64) [][]float64 {
	dst = dst[:0]
	for i := 0; i < b.Count; i++ {
		row := make([]float64, b.Dims)
		off := i * b.Dims * 8
		for j := 0; j < b.Dims; j++ {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(b.Samples[off+j*8:]))
		}
		dst = append(dst, row)
	}
	return dst
}

// --- Result payloads ---

// Per-sample result flags in a BatchAck.
const (
	flagDrift    = 1 << 0
	flagRejected = 1 << 1
)

// resultBytes is the fixed per-sample encoding size in a BatchAck:
// i32 label, u8 phase, u8 flags, f64 score bits, f64 dist bits.
const resultBytes = 4 + 1 + 1 + 8 + 8

// AppendResults encodes a BatchAck payload: the stream name and every
// core.Result field bit-exactly.
//
//	u16 streamLen | stream | u32 count | count × (i32 u8 u8 f64 f64)
func AppendResults(dst []byte, stream string, rs []core.Result) []byte {
	dst = appendString(dst, stream)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rs)))
	for _, r := range rs {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(int32(r.Label)))
		flags := byte(0)
		if r.DriftDetected {
			flags |= flagDrift
		}
		if r.Rejected {
			flags |= flagRejected
		}
		dst = append(dst, byte(r.Phase), flags)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Score))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Dist))
	}
	return dst
}

// ParseResults decodes a BatchAck payload, appending into dst.
func ParseResults(p []byte, dst []core.Result) (stream string, _ []core.Result, err error) {
	stream, rest, err := parseString(p)
	if err != nil {
		return "", dst, err
	}
	if len(rest) < 4 {
		return "", dst, fmt.Errorf("%w: short results header", ErrProtocol)
	}
	count := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != count*resultBytes {
		return "", dst, fmt.Errorf("%w: results payload %d bytes, want %d", ErrProtocol, len(rest), count*resultBytes)
	}
	for i := 0; i < count; i++ {
		q := rest[i*resultBytes:]
		flags := q[5]
		dst = append(dst, core.Result{
			Label:         int(int32(binary.LittleEndian.Uint32(q))),
			Phase:         core.Phase(q[4]),
			DriftDetected: flags&flagDrift != 0,
			Rejected:      flags&flagRejected != 0,
			Score:         math.Float64frombits(binary.LittleEndian.Uint64(q[6:])),
			Dist:          math.Float64frombits(binary.LittleEndian.Uint64(q[14:])),
		})
	}
	return stream, dst, nil
}

// --- Shed payloads ---

// AppendShed encodes a Shed payload: the stream and how many samples
// were dropped at admission.
func AppendShed(dst []byte, stream string, samples int) []byte {
	dst = appendString(dst, stream)
	return binary.LittleEndian.AppendUint32(dst, uint32(samples))
}

// ParseShed decodes a Shed payload.
func ParseShed(p []byte) (stream string, samples int, err error) {
	stream, rest, err := parseString(p)
	if err != nil {
		return "", 0, err
	}
	if len(rest) != 4 {
		return "", 0, fmt.Errorf("%w: shed payload %d bytes", ErrProtocol, len(rest))
	}
	return stream, int(binary.LittleEndian.Uint32(rest)), nil
}

// --- Migration payloads ---

// State is an exported member checkpoint in flight between shards: the
// wire twin of the fleet's member handoff (kind byte, lifetime
// counters, self-checksummed payload).
type State struct {
	Stream  string
	Kind    byte
	Samples uint64
	Drifts  uint64
	Payload []byte
}

// AppendState encodes a State (or MigrateIn) payload.
//
//	u16 streamLen | stream | u8 kind | u64 samples | u64 drifts | u32 payloadLen | payload
func AppendState(dst []byte, st State) []byte {
	dst = appendString(dst, st.Stream)
	dst = append(dst, st.Kind)
	dst = binary.LittleEndian.AppendUint64(dst, st.Samples)
	dst = binary.LittleEndian.AppendUint64(dst, st.Drifts)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st.Payload)))
	return append(dst, st.Payload...)
}

// ParseState decodes a State payload. State.Payload aliases p — copy
// before the next ReadFrame if it outlives the frame.
func ParseState(p []byte) (State, error) {
	var st State
	stream, rest, err := parseString(p)
	if err != nil {
		return st, err
	}
	if len(rest) < 1+8+8+4 {
		return st, fmt.Errorf("%w: short state header", ErrProtocol)
	}
	st.Stream = stream
	st.Kind = rest[0]
	st.Samples = binary.LittleEndian.Uint64(rest[1:])
	st.Drifts = binary.LittleEndian.Uint64(rest[9:])
	plen := binary.LittleEndian.Uint32(rest[17:])
	rest = rest[21:]
	if len(rest) != int(plen) {
		return st, fmt.Errorf("%w: state payload %d bytes, want %d", ErrProtocol, len(rest), plen)
	}
	st.Payload = rest
	return st, nil
}

// --- Merge payloads ---

// MergeStates is cooperative model state in flight: a fetch reply
// carries one exported state and the member's merge fingerprint; a seed
// request carries the peer states a stream's model should be replaced
// with (Fingerprint then holds the expected fingerprint of the target,
// 0 to skip the check).
type MergeStates struct {
	Stream      string
	Fingerprint uint64
	States      [][]byte
}

// AppendMergeStates encodes a MergeState payload.
//
//	u16 streamLen | stream | u64 fingerprint | u32 count | count × (u32 len | state)
func AppendMergeStates(dst []byte, ms MergeStates) []byte {
	dst = appendString(dst, ms.Stream)
	dst = binary.LittleEndian.AppendUint64(dst, ms.Fingerprint)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ms.States)))
	for _, st := range ms.States {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(st)))
		dst = append(dst, st...)
	}
	return dst
}

// ParseMergeStates decodes a MergeState payload. The states alias p —
// copy before the next ReadFrame if they outlive the frame.
func ParseMergeStates(p []byte) (MergeStates, error) {
	var ms MergeStates
	stream, rest, err := parseString(p)
	if err != nil {
		return ms, err
	}
	if len(rest) < 8+4 {
		return ms, fmt.Errorf("%w: short merge-state header", ErrProtocol)
	}
	ms.Stream = stream
	ms.Fingerprint = binary.LittleEndian.Uint64(rest)
	count := int(binary.LittleEndian.Uint32(rest[8:]))
	rest = rest[12:]
	if count == 0 || count > math.MaxUint16 {
		return ms, fmt.Errorf("%w: implausible merge-state count %d", ErrProtocol, count)
	}
	ms.States = make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4 {
			return ms, fmt.Errorf("%w: merge-state payload truncated at state %d", ErrProtocol, i)
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if len(rest) < n {
			return ms, fmt.Errorf("%w: merge-state payload truncated at state %d", ErrProtocol, i)
		}
		ms.States = append(ms.States, rest[:n])
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return ms, fmt.Errorf("%w: merge-state payload has %d trailing bytes", ErrProtocol, len(rest))
	}
	return ms, nil
}

// --- Stats payloads ---

// Stats is a shard's counter snapshot: the accounting surface loadgen
// and the router use to prove zero lost and zero double-counted samples
// across sheds and migrations.
type Stats struct {
	Streams     uint32
	Samples     uint64
	Drifts      uint64
	Batches     uint64
	ShedSamples uint64
	ShedBatches uint64
	MigratedIn  uint64
	MigratedOut uint64
	QueueDepth  uint32
	// Adaptive-capacity fields: members currently demoted, lifetime
	// transition counters, and the shard's p99 batch-ingest latency
	// (0 before any batch). A router aggregation sums the counters and
	// takes the worst p99 across shards.
	Degraded           uint32
	Demotions          uint64
	Promotions         uint64
	TransitionFailures uint64
	IngestP99Ns        uint64
}

// AppendStats encodes a StatsReply payload.
func AppendStats(dst []byte, s Stats) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, s.Streams)
	for _, v := range [...]uint64{s.Samples, s.Drifts, s.Batches, s.ShedSamples, s.ShedBatches, s.MigratedIn, s.MigratedOut} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	dst = binary.LittleEndian.AppendUint32(dst, s.QueueDepth)
	dst = binary.LittleEndian.AppendUint32(dst, s.Degraded)
	for _, v := range [...]uint64{s.Demotions, s.Promotions, s.TransitionFailures, s.IngestP99Ns} {
		dst = binary.LittleEndian.AppendUint64(dst, v)
	}
	return dst
}

// ParseStats decodes a StatsReply payload.
func ParseStats(p []byte) (Stats, error) {
	var s Stats
	if len(p) != 4+7*8+4+4+4*8 {
		return s, fmt.Errorf("%w: stats payload %d bytes", ErrProtocol, len(p))
	}
	s.Streams = binary.LittleEndian.Uint32(p)
	p = p[4:]
	for _, v := range [...]*uint64{&s.Samples, &s.Drifts, &s.Batches, &s.ShedSamples, &s.ShedBatches, &s.MigratedIn, &s.MigratedOut} {
		*v = binary.LittleEndian.Uint64(p)
		p = p[8:]
	}
	s.QueueDepth = binary.LittleEndian.Uint32(p)
	p = p[4:]
	s.Degraded = binary.LittleEndian.Uint32(p)
	p = p[4:]
	for _, v := range [...]*uint64{&s.Demotions, &s.Promotions, &s.TransitionFailures, &s.IngestP99Ns} {
		*v = binary.LittleEndian.Uint64(p)
		p = p[8:]
	}
	return s, nil
}

// --- Small helpers ---

// AppendStream appends a u16-length-prefixed stream name — the leading
// field of every stream-addressed payload, so a router can parse just
// this and relay the rest untouched.
func AppendStream(dst []byte, s string) []byte { return appendString(dst, s) }

// ParseStream parses a u16-length-prefixed stream name, returning the
// remaining payload.
func ParseStream(p []byte) (s string, rest []byte, err error) { return parseString(p) }

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func parseString(p []byte) (s string, rest []byte, err error) {
	if len(p) < 2 {
		return "", nil, fmt.Errorf("%w: short string", ErrProtocol)
	}
	n := int(binary.LittleEndian.Uint16(p))
	if len(p) < 2+n {
		return "", nil, fmt.Errorf("%w: truncated string", ErrProtocol)
	}
	return string(p[2 : 2+n]), p[2+n:], nil
}

package wire

import (
	"bytes"
	"errors"
	"math"
	"net"
	"reflect"
	"testing"

	"edgedrift/internal/core"
)

func TestBatchRoundTrip(t *testing.T) {
	xs := [][]float64{
		{1.5, -2.25, math.Inf(1)},
		{0, math.NaN(), 3.75},
	}
	p, err := AppendBatch(nil, "sensor-7", xs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseBatch(p)
	if err != nil {
		t.Fatal(err)
	}
	if b.Stream != "sensor-7" || b.Dims != 3 || b.Count != 2 {
		t.Fatalf("header = %q %dx%d", b.Stream, b.Count, b.Dims)
	}
	got := b.Decode(nil)
	for i := range xs {
		for j := range xs[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(xs[i][j]) {
				t.Fatalf("sample %d[%d]: %v != %v (bit-exact)", i, j, got[i][j], xs[i][j])
			}
		}
	}
}

func TestBatchRejects(t *testing.T) {
	if _, err := AppendBatch(nil, "", [][]float64{{1}}); err == nil {
		t.Fatal("empty stream name accepted")
	}
	if _, err := AppendBatch(nil, "s", nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := AppendBatch(nil, "s", [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	p, _ := AppendBatch(nil, "s", [][]float64{{1, 2}})
	if _, err := ParseBatch(p[:len(p)-1]); err == nil {
		t.Fatal("truncated batch parsed")
	}
}

func TestResultsRoundTripBitExact(t *testing.T) {
	rs := []core.Result{
		{Label: 3, Score: 0.123456789, Phase: core.Checking, Dist: 1.5},
		{Label: -1, Score: math.Inf(1), Phase: core.Reconstructing, DriftDetected: true, Dist: 42.000000001},
		{Label: 0, Score: 0, Phase: core.Monitoring, Rejected: true},
	}
	p := AppendResults(nil, "s", rs)
	stream, got, err := ParseResults(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stream != "s" {
		t.Fatalf("stream = %q", stream)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("results round trip:\n got %+v\nwant %+v", got, rs)
	}
}

func TestStateRoundTrip(t *testing.T) {
	st := State{Stream: "mig", Kind: 1, Samples: 1 << 40, Drifts: 7, Payload: []byte{1, 2, 3}}
	got, err := ParseState(AppendState(nil, st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("state round trip: %+v != %+v", got, st)
	}
}

func TestShedAndStatsRoundTrip(t *testing.T) {
	stream, n, err := ParseShed(AppendShed(nil, "s", 640))
	if err != nil || stream != "s" || n != 640 {
		t.Fatalf("shed round trip: %q %d %v", stream, n, err)
	}
	s := Stats{Streams: 3, Samples: 1000, Drifts: 5, Batches: 40, ShedSamples: 64,
		ShedBatches: 1, MigratedIn: 2, MigratedOut: 1, QueueDepth: 9,
		Degraded: 2, Demotions: 4, Promotions: 2, TransitionFailures: 1,
		IngestP99Ns: 1_048_575}
	got, err := ParseStats(AppendStats(nil, s))
	if err != nil || got != s {
		t.Fatalf("stats round trip: %+v %v", got, err)
	}
	// A payload from a pre-transition peer (or any torn length) is
	// rejected, not misparsed.
	short := AppendStats(nil, s)[:4+7*8+4]
	if _, err := ParseStats(short); err == nil {
		t.Fatal("legacy-length stats payload parsed")
	}
}

// TestFramedExchange runs the handshake and a batch request/reply over
// a real TCP socket pair.
func TestFramedExchange(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverErr := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			serverErr <- err
			return
		}
		sc := NewConn(nc)
		if err := sc.AcceptHandshake(); err != nil {
			serverErr <- err
			return
		}
		typ, p, err := sc.ReadFrame()
		if err != nil || typ != TypeBatch {
			serverErr <- err
			return
		}
		b, err := ParseBatch(p)
		if err != nil {
			serverErr <- err
			return
		}
		rs := make([]core.Result, b.Count)
		for i := range rs {
			rs[i] = core.Result{Label: i, Score: float64(i), Phase: core.Monitoring}
		}
		serverErr <- sc.WriteFrame(TypeBatchAck, AppendResults(nil, b.Stream, rs))
	}()

	cl, err := DialClient(ln.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	rs, shed, err := cl.SendBatch(nil, "s", [][]float64{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if shed != 0 || len(rs) != 3 || rs[2].Label != 2 {
		t.Fatalf("reply = shed %d, %+v", shed, rs)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeRejectsGarbage: a non-protocol peer must fail the
// handshake, not hang or crash the server loop.
func TestHandshakeRejectsGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- NewConn(nc).AcceptHandshake()
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := NewConn(nc)
	if err := c.WriteFrame(TypeHello, []byte("BOGUS")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrProtocol) {
		t.Fatalf("server accepted garbage hello: %v", err)
	}
}

func TestFrameLengthBounds(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xff, 0xff, 0xff, 0xff}) // 4 GiB length prefix
	_, _, err := NewConn(b).ReadFrame()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("implausible frame length accepted: %v", err)
	}
}

func TestMergeStatesRoundTrip(t *testing.T) {
	ms := MergeStates{
		Stream:      "fan-3",
		Fingerprint: 0xdeadbeefcafe,
		States:      [][]byte{{1, 2, 3}, {}, {4}},
	}
	got, err := ParseMergeStates(AppendMergeStates(nil, ms))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream != ms.Stream || got.Fingerprint != ms.Fingerprint || len(got.States) != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	for i := range ms.States {
		if !bytes.Equal(got.States[i], ms.States[i]) {
			t.Fatalf("state %d round-tripped to %v", i, got.States[i])
		}
	}
}

func TestMergeStatesRejects(t *testing.T) {
	good := AppendMergeStates(nil, MergeStates{Stream: "s", Fingerprint: 1,
		States: [][]byte{{9, 9}, {8}}})
	// Zero states is not a valid frame in either direction.
	if _, err := ParseMergeStates(AppendMergeStates(nil, MergeStates{Stream: "s"})); err == nil {
		t.Fatal("zero-state payload accepted")
	}
	// Any truncation must be rejected.
	for n := 0; n < len(good); n++ {
		if _, err := ParseMergeStates(good[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := ParseMergeStates(append(append([]byte(nil), good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A state length pointing past the payload must be rejected.
	bad := append([]byte(nil), good...)
	bad[len(bad)-3] = 0xff // first byte of the last state's u32 length
	if _, err := ParseMergeStates(bad); err == nil {
		t.Fatal("oversized state length accepted")
	}
}

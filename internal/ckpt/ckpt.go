// Package ckpt provides the checksum plumbing shared by every versioned
// checkpoint format in the repository (oselm, model, core, and the
// top-level monitor artifacts). A v2 artifact is its v1 payload followed
// by a 4-byte little-endian CRC32 (IEEE) footer covering every byte from
// the magic onward, so a truncated or bit-flipped artifact shipped to a
// device fails loudly at load time instead of running with corrupt
// weights.
//
// The writer and reader nest: when an outer format (the multi-instance
// model) streams an inner artifact (an OS-ELM instance) through its own
// hashing writer, the inner artifact's bytes — footer included — are
// covered by the outer checksum too.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// ErrChecksum reports a v2 artifact whose CRC32 footer does not match
// its content: the artifact was truncated, bit-flipped, or otherwise
// corrupted between save and load.
var ErrChecksum = errors.New("ckpt: artifact checksum mismatch")

// Writer hashes everything written through it and can append the CRC32
// footer. It also counts bytes, replacing the ad-hoc counting writers
// the serialize paths used before.
type Writer struct {
	w   io.Writer
	crc hash.Hash32
	n   int64
}

// NewWriter wraps w in a hashing, byte-counting writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, crc: crc32.NewIEEE()}
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	n, err := w.w.Write(p)
	w.crc.Write(p[:n])
	w.n += int64(n)
	return n, err
}

// N returns the number of bytes written through the writer, footer
// included once WriteFooter has run.
func (w *Writer) N() int64 { return w.n }

// WriteFooter appends the little-endian CRC32 of everything written so
// far. The footer bytes themselves are excluded from the writer's own
// hash (but an enclosing Writer hashes them normally, since they pass
// through its Write).
func (w *Writer) WriteFooter() error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w.crc.Sum32())
	n, err := w.w.Write(b[:])
	w.n += int64(n)
	return err
}

// Reader hashes everything read through it and can verify the CRC32
// footer against what was read.
type Reader struct {
	r   io.Reader
	crc hash.Hash32
}

// NewReader wraps r in a hashing reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: r, crc: crc32.NewIEEE()}
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	r.crc.Write(p[:n])
	return n, err
}

// Fold hashes bytes the caller already consumed from the underlying
// stream before wrapping it — the magic that selected the v2 path.
func (r *Reader) Fold(p []byte) { r.crc.Write(p) }

// VerifyFooter reads the 4-byte footer from the underlying stream
// (deliberately not folding it into this reader's own hash) and compares
// it with the hash of everything read so far. A short read or a mismatch
// returns an error wrapping ErrChecksum.
func (r *Reader) VerifyFooter() error {
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return fmt.Errorf("%w: footer: %v", ErrChecksum, err)
	}
	want := binary.LittleEndian.Uint32(b[:])
	if got := r.crc.Sum32(); got != want {
		return fmt.Errorf("%w: computed %08x, footer says %08x", ErrChecksum, got, want)
	}
	return nil
}

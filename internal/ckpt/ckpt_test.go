package ckpt

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func roundTrip(t *testing.T, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	if want := int64(len(payload) + 4); w.N() != want {
		t.Fatalf("N = %d, want %d", w.N(), want)
	}
	return buf.Bytes()
}

func TestWriterReaderRoundTrip(t *testing.T) {
	payload := []byte("MAGIC1 body bytes of an artifact")
	full := roundTrip(t, payload)
	r := NewReader(bytes.NewReader(full))
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(r, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mangled")
	}
	if err := r.VerifyFooter(); err != nil {
		t.Fatalf("valid footer rejected: %v", err)
	}
}

func TestFoldCoversPreConsumedMagic(t *testing.T) {
	payload := []byte("MAGIC2 rest of the body")
	full := roundTrip(t, payload)
	// A loader reads the magic raw to dispatch on it, then wraps the rest.
	raw := bytes.NewReader(full)
	magic := make([]byte, 6)
	if _, err := io.ReadFull(raw, magic); err != nil {
		t.Fatal(err)
	}
	r := NewReader(raw)
	r.Fold(magic)
	if _, err := io.Copy(io.Discard, io.LimitReader(r, int64(len(payload)-6))); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyFooter(); err != nil {
		t.Fatalf("fold path rejected a valid artifact: %v", err)
	}
}

func TestVerifyFooterDetectsEveryFlippedByte(t *testing.T) {
	payload := []byte("body under test")
	full := roundTrip(t, payload)
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x04
		r := NewReader(bytes.NewReader(mut))
		if _, err := io.CopyN(io.Discard, r, int64(len(payload))); err != nil {
			t.Fatal(err)
		}
		if err := r.VerifyFooter(); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flipped byte %d: err = %v, want ErrChecksum", i, err)
		}
	}
}

func TestVerifyFooterShortRead(t *testing.T) {
	full := roundTrip(t, []byte("body"))
	r := NewReader(bytes.NewReader(full[:len(full)-2]))
	if _, err := io.CopyN(io.Discard, r, 4); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyFooter(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("truncated footer: err = %v, want ErrChecksum", err)
	}
}

// TestNestedWriters locks the nesting contract: an outer writer hashes
// the inner artifact's footer bytes, because they pass through its Write.
func TestNestedWriters(t *testing.T) {
	var buf bytes.Buffer
	outer := NewWriter(&buf)
	if _, err := outer.Write([]byte("OUTER hdr")); err != nil {
		t.Fatal(err)
	}
	inner := NewWriter(outer)
	if _, err := inner.Write([]byte("inner body")); err != nil {
		t.Fatal(err)
	}
	if err := inner.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	if err := outer.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Verify the outer footer over everything before it.
	r := NewReader(bytes.NewReader(full))
	if _, err := io.CopyN(io.Discard, r, int64(len(full)-4)); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyFooter(); err != nil {
		t.Fatalf("outer footer: %v", err)
	}
	// Flipping a byte inside the inner footer must break the outer hash.
	mut := append([]byte(nil), full...)
	mut[len(mut)-6] ^= 0x01 // inside the inner footer region
	r = NewReader(bytes.NewReader(mut))
	if _, err := io.CopyN(io.Discard, r, int64(len(mut)-4)); err != nil {
		t.Fatal(err)
	}
	if err := r.VerifyFooter(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("outer footer missed inner-footer corruption: %v", err)
	}
}

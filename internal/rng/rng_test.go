package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded generators diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Consuming the child must not change the parent's future outputs.
	ref := New(7)
	_ = ref.Uint64() // the Split draw
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatalf("parent stream perturbed by child at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ≈0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	// Each bucket should be within 10% of n/7.
	want := float64(n) / 7
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("bucket %d count %d far from %v", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(6)
	const n = 300000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestNormalShiftScale(t *testing.T) {
	r := New(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Fatalf("Normal(5,2) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformityFirstElement(t *testing.T) {
	r := New(9)
	counts := make([]int, 5)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[r.Perm(5)[0]]++
	}
	want := float64(trials) / 5
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.1*want {
			t.Fatalf("Perm first-element bucket %d = %d, want ≈%v", i, c, want)
		}
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := New(10)
	xs := []string{"a", "b", "c", "d"}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := map[string]bool{}
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("Shuffle lost elements: %v", xs)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", p)
	}
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean = %v, want ≈0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Exponential(0)
}

func TestFillHelpers(t *testing.T) {
	r := New(13)
	u := make([]float64, 1000)
	r.FillUniform(u, -2, 3)
	for _, v := range u {
		if v < -2 || v >= 3 {
			t.Fatalf("FillUniform out of range: %v", v)
		}
	}
	nrm := make([]float64, 1000)
	r.FillNorm(nrm, 0, 1)
	var s float64
	for _, v := range nrm {
		s += v
	}
	if math.Abs(s/1000) > 0.15 {
		t.Fatalf("FillNorm mean too far from 0: %v", s/1000)
	}
}

// Property: Intn(n) always lands in [0, n).
func TestPropIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Split children from distinct draws behave as distinct streams.
func TestPropSplitChildrenDiffer(t *testing.T) {
	f := func(seed uint64) bool {
		p := New(seed)
		a, b := p.Split(), p.Split()
		same := 0
		for i := 0; i < 32; i++ {
			if a.Uint64() == b.Uint64() {
				same++
			}
		}
		return same == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Norm()
	}
	_ = sink
}

// Package rng provides a small deterministic random number generator used
// throughout the reproduction.
//
// Every experiment in the paper depends on random state (OS-ELM input
// weights, synthetic dataset draws, QuantTree splits, Monte-Carlo threshold
// calibration). Reproducibility of tables and figures therefore requires a
// generator whose sequence is stable across runs, platforms and Go
// versions — math/rand's global source and its v1/v2 migration do not give
// that guarantee. This package implements xoshiro256** seeded through
// SplitMix64, the combination recommended by Blackman & Vigna, plus the
// distribution helpers the project needs.
//
// Streams: Split derives an independent child generator from a parent, so
// each subsystem (dataset, model init, detector calibration) can own its
// own stream and remain stable when other subsystems change how much
// randomness they consume.
package rng

import (
	"math"
	"math/bits"
)

// Rand is a deterministic xoshiro256** generator. It is not safe for
// concurrent use; derive per-goroutine streams with Split instead of
// sharing one.
type Rand struct {
	s [4]uint64
	// cached spare normal deviate from Box-Muller
	hasSpare bool
	spare    float64
}

// splitmix64 advances *x and returns the next SplitMix64 output. It is the
// standard way to expand a 64-bit seed into xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the 64-bit seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero words from any seed, but keep the guard explicit.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child generator. The child's seed is drawn
// from the parent, so the parent's later outputs are unaffected by how
// much the child consumes.
func (r *Rand) Split() *Rand { return New(r.Uint64()) }

// Float64 returns a uniform deviate in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Uniform returns a uniform deviate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation with rejection to
	// remove modulo bias.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

// Norm returns a standard normal deviate via the Box-Muller transform.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a normal deviate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, std float64) float64 { return mean + std*r.Norm() }

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p uniformly at random (Fisher-Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool { return r.Float64() < p }

// Exponential returns an exponential deviate with the given rate λ.
func (r *Rand) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	// 1-Float64() avoids Log(0).
	return -math.Log(1-r.Float64()) / rate
}

// FillNorm fills dst with independent Normal(mean, std) deviates.
func (r *Rand) FillNorm(dst []float64, mean, std float64) {
	for i := range dst {
		dst[i] = r.Normal(mean, std)
	}
}

// FillUniform fills dst with independent Uniform(lo, hi) deviates.
func (r *Rand) FillUniform(dst []float64, lo, hi float64) {
	for i := range dst {
		dst[i] = r.Uniform(lo, hi)
	}
}

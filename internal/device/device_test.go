package device

import (
	"math"
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

func TestProfilesSpecTable(t *testing.T) {
	pico := PiPico()
	if pico.ClockHz != 133e6 || pico.RAMBytes != 264*1024 {
		t.Fatalf("Pico spec: %v Hz, %v bytes", pico.ClockHz, pico.RAMBytes)
	}
	pi4 := Pi4()
	if pi4.ClockHz != 1.5e9 || pi4.RAMBytes != 4<<30 {
		t.Fatalf("Pi4 spec: %v Hz, %v bytes", pi4.ClockHz, pi4.RAMBytes)
	}
}

func TestSecondsLinearInOps(t *testing.T) {
	p := Pi4()
	var c opcount.Counter
	c.AddMulAdd(1000)
	one := p.Seconds(c)
	c.AddMulAdd(1000)
	two := p.Seconds(c)
	if math.Abs(two-2*one) > 1e-15 {
		t.Fatalf("seconds not linear: %v vs %v", one, two)
	}
	if one <= 0 {
		t.Fatal("non-positive time")
	}
	if p.Millis(c) != p.Seconds(c)*1e3 {
		t.Fatal("Millis/Seconds mismatch")
	}
}

func TestPicoSlowerThanPi4(t *testing.T) {
	var c opcount.Counter
	c.AddMulAdd(10000)
	c.AddExp(100)
	if PiPico().Seconds(c) < 50*Pi4().Seconds(c) {
		t.Fatalf("Pico %v not ≫ Pi4 %v", PiPico().Seconds(c), Pi4().Seconds(c))
	}
}

// TestPicoLabelPredictionCalibration pins the headline Table 6 number:
// one label prediction of the cooling-fan autoencoder (D=511, H=22) on
// the Pico model should land in the paper's ≈150 ms regime.
func TestPicoLabelPredictionCalibration(t *testing.T) {
	ae, err := oselm.NewAutoencoder(oselm.Config{Inputs: 511, Hidden: 22}, oselm.MSE, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var c opcount.Counter
	ae.SetOps(&c)
	x := make([]float64, 511)
	rng.New(2).FillNorm(x, 0, 1)
	ae.Score(x)
	ms := PiPico().Millis(c)
	if ms < 75 || ms > 300 {
		t.Fatalf("Pico label prediction = %v ms, want ≈150", ms)
	}
}

func TestFitsIn(t *testing.T) {
	pico := PiPico()
	if !pico.FitsIn(69_000, 0) { // the paper's proposed-method footprint
		t.Fatal("69 kB should fit the Pico")
	}
	if pico.FitsIn(619_000, 0) { // QuantTree's footprint
		t.Fatal("619 kB must not fit the Pico")
	}
	if pico.FitsIn(1_933_000, 0) { // SPLL's footprint
		t.Fatal("1.9 MB must not fit the Pico")
	}
	if !Pi4().FitsIn(1_933_000, 0) {
		t.Fatal("SPLL fits a Pi 4 easily")
	}
}

func TestFitsInPanicsOnBadReserve(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PiPico().FitsIn(100, 1.5)
}

func TestKB(t *testing.T) {
	if KB(69_000) != 69 {
		t.Fatalf("KB = %v", KB(69_000))
	}
}

// Package device models the paper's two evaluation platforms — Raspberry
// Pi 4 Model B and Raspberry Pi Pico — well enough to reproduce the
// execution-time and memory tables without the hardware.
//
// Time: the compute kernels in this repository count their floating-point
// work (package opcount); a device Profile converts those counts into
// seconds with per-operation-class cycle costs. The Pico profile reflects
// a Cortex-M0+ running an interpreted runtime with software
// double-precision floats (the usual MicroPython deployment, hundreds of
// cycles per float op); the Pi 4 profile reflects a Cortex-A72 running an
// interpreter over hardware floats (tens of cycles per op). The absolute
// scale of each profile is a calibration constant; the *relative* costs
// across methods and stages come from the measured op counts.
//
// Memory: every monitor in this repository reports the bytes of state it
// retains (MemoryBytes); FitsIn checks a footprint against a device's
// RAM, reproducing the paper's point that the batch methods cannot run in
// the Pico's 264 kB.
package device

import (
	"fmt"

	"edgedrift/internal/opcount"
)

// Profile describes one execution platform.
type Profile struct {
	// Name identifies the device in reports.
	Name string
	// ClockHz is the core clock.
	ClockHz float64
	// RAMBytes is the usable RAM. int64, not int: the Pi 4's 4 GiB
	// overflows a 32-bit int, and the profiles must compile on the very
	// 32-bit Arm targets they describe (the CI cross-compile smoke
	// builds GOOS=linux GOARCH=arm).
	RAMBytes int64
	// Cycle costs per operation class.
	CyclesMulAdd float64
	CyclesAdd    float64
	CyclesMul    float64
	CyclesDiv    float64
	CyclesExp    float64
	CyclesAbs    float64
	CyclesCmp    float64
}

// Pi4 returns the Raspberry Pi 4 Model B profile (Cortex-A72, 1.5 GHz,
// 4 GB RAM; Table 1). Cycle costs model an interpreted float pipeline on
// a hardware FPU and are calibrated so the no-detection baseline over the
// 700-sample cooling-fan stream lands near the paper's ≈1 s.
func Pi4() Profile {
	return Profile{
		Name:         "Raspberry Pi 4 Model B",
		ClockHz:      1.5e9,
		RAMBytes:     4 << 30,
		CyclesMulAdd: 95,
		CyclesAdd:    80,
		CyclesMul:    90,
		CyclesDiv:    140,
		CyclesExp:    400,
		CyclesAbs:    70,
		CyclesCmp:    70,
	}
}

// PiPico returns the Raspberry Pi Pico profile (Cortex-M0+, 133 MHz,
// 264 kB RAM; Table 1). The M0+ has no FPU: every double-precision
// operation is a software routine dispatched by an interpreted runtime,
// costing on the order of a thousand cycles. Calibrated so one label
// prediction of the cooling-fan model (D=511, H=22) lands near the
// paper's 148.87 ms.
func PiPico() Profile {
	return Profile{
		Name:         "Raspberry Pi Pico",
		ClockHz:      133e6,
		RAMBytes:     264 << 10,
		CyclesMulAdd: 850,
		CyclesAdd:    700,
		CyclesMul:    800,
		CyclesDiv:    1400,
		CyclesExp:    3200,
		CyclesAbs:    500,
		CyclesCmp:    500,
	}
}

// PiPicoFixed returns the Raspberry Pi Pico running a compiled
// fixed-point (Q16.16) pipeline instead of interpreted software floats:
// a multiply-accumulate is a few integer instructions on the M0+
// (MULS + shifts + ADDS), the sigmoid is a table interpolation, and
// division remains comparatively expensive (software 32-bit divide).
// Same silicon as PiPico — only the arithmetic changes.
func PiPicoFixed() Profile {
	return Profile{
		Name:         "Raspberry Pi Pico (fixed-point)",
		ClockHz:      133e6,
		RAMBytes:     264 << 10,
		CyclesMulAdd: 8,
		CyclesAdd:    2,
		CyclesMul:    6,
		CyclesDiv:    40,
		CyclesExp:    24, // LUT + interpolation
		CyclesAbs:    3,
		CyclesCmp:    2,
	}
}

// Cycles converts an operation tally into device cycles.
func (p Profile) Cycles(c opcount.Counter) float64 {
	return float64(c.MulAdd)*p.CyclesMulAdd +
		float64(c.Add)*p.CyclesAdd +
		float64(c.Mul)*p.CyclesMul +
		float64(c.Div)*p.CyclesDiv +
		float64(c.Exp)*p.CyclesExp +
		float64(c.Abs)*p.CyclesAbs +
		float64(c.Cmp)*p.CyclesCmp
}

// Seconds converts an operation tally into device seconds.
func (p Profile) Seconds(c opcount.Counter) float64 {
	return p.Cycles(c) / p.ClockHz
}

// Millis converts an operation tally into device milliseconds.
func (p Profile) Millis(c opcount.Counter) float64 {
	return p.Seconds(c) * 1e3
}

// FitsIn reports whether a memory footprint fits in the device RAM with
// the given fraction reserved for the runtime (stack, interpreter, I/O
// buffers). reserve 0 means 25%.
func (p Profile) FitsIn(footprintBytes int, reserve float64) bool {
	if reserve == 0 {
		reserve = 0.25
	}
	if reserve < 0 || reserve >= 1 {
		panic(fmt.Sprintf("device: reserve %v out of [0,1)", reserve))
	}
	return float64(footprintBytes) <= float64(p.RAMBytes)*(1-reserve)
}

// KB renders a byte count in the paper's kB units (decimal).
func KB(bytes int) float64 { return float64(bytes) / 1000 }

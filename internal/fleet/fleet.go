// Package fleet is the multi-stream scheduling layer over the
// single-stream drift pipeline: a sharded, multi-tenant registry of
// independent core.Streaming stages keyed by stream ID. One gateway
// process monitoring hundreds of sensor streams runs one Fleet; each
// member keeps the paper's O(C·D + H²) sequential state and the fleet
// adds only a mutex and two counters per member.
//
// Concurrency model: every member stage is single-threaded by the
// Streaming contract, so the fleet serialises access per member with a
// member mutex and keeps registry lookups cheap with per-shard
// read-write locks. Different streams never contend on the same lock
// (beyond their shard's read lock), which is what makes whole-fleet
// throughput scale with cores; samples of one stream are processed in
// arrival order, which is what keeps per-stream results deterministic.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"edgedrift/internal/core"
	"edgedrift/internal/eval"
	"edgedrift/internal/health"
)

// Event is one drift detection, fanned in from every member onto the
// fleet's single subscriber channel.
type Event struct {
	// StreamID names the member that detected the drift.
	StreamID string
	// Index is the 0-based per-stream sample index of the detection.
	Index int
	// Result is the member's per-sample outcome on that sample.
	Result core.Result
}

// Config parameterises a Fleet.
type Config struct {
	// Shards is the registry shard count; 0 means 8. More shards means
	// less registry-lock contention when members are added and removed
	// concurrently with processing.
	Shards int
	// Workers bounds ProcessAll's concurrency; 0 means GOMAXPROCS.
	Workers int
	// EventBuffer is the drift-event channel capacity; 0 means 256.
	// Events beyond a full buffer are dropped (and counted) rather than
	// blocking the processing hot path on a slow subscriber.
	EventBuffer int
	// Instrument wraps every member in a core.Instrumented stage at Add
	// time, enabling per-stream counters, the drift-event trace ring and
	// (with SampleEvery > 0) sampled latency timing. Off by default: an
	// uninstrumented fleet adds nothing to the per-sample hot path.
	Instrument bool
	// SampleEvery is the latency-timing period for instrumented members
	// (time one Process call in every SampleEvery). 0 disables timing;
	// counters and traces stay on whenever Instrument is set.
	SampleEvery int
	// TraceDepth bounds each member's drift-trace ring; 0 means 64.
	TraceDepth int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// member is one registered stream: its stage, the lock serialising it,
// and its lifetime counters. removed (guarded by mu) marks a member
// whose Remove has completed, so a caller that looked the member up
// before removal and then won the lock afterwards cannot process
// samples on a ghost stream.
type member struct {
	mu    sync.Mutex
	stage core.Streaming
	// instr aliases stage when the fleet wrapped it at Add: the batch
	// loop calls the wrapper through this concrete pointer (a static
	// call target) instead of re-dispatching through the interface, so
	// instrumentation costs one direct call, not a second virtual one.
	instr *core.Instrumented
	// batch is the stage's batched-scoring capability, discovered once at
	// Add time (nil when the stage is per-sample only). When set, whole
	// ProcessBatch calls go through one virtual dispatch instead of one
	// per sample, and the stage gets contiguous chunks to run as GEMMs.
	batch   core.BatchStreaming
	samples uint64
	drifts  uint64
	removed bool
}

// shard is one slice of the registry.
type shard struct {
	mu      sync.RWMutex
	members map[string]*member
}

// Fleet is a sharded registry of independently monitored streams. All
// methods are safe for concurrent use; per-stream sample order is the
// caller's responsibility (feed one stream from one goroutine, or batch
// its samples through a single ProcessBatch call).
type Fleet struct {
	cfg    Config
	shards []shard

	events     chan Event
	subscribed atomic.Bool
	dropped    atomic.Uint64
}

// New builds an empty fleet.
func New(cfg Config) *Fleet {
	c := cfg.withDefaults()
	f := &Fleet{
		cfg:    c,
		shards: make([]shard, c.Shards),
		events: make(chan Event, c.EventBuffer),
	}
	for i := range f.shards {
		f.shards[i].members = map[string]*member{}
	}
	return f
}

// shardOf routes a stream ID to its shard (FNV-1a, allocation-free).
func (f *Fleet) shardOf(id string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &f.shards[h%uint32(len(f.shards))]
}

// Add registers a stream. The stage must not be shared with another
// member or used directly afterwards — the fleet owns its schedule.
func (f *Fleet) Add(id string, s core.Streaming) error {
	return f.addMember(id, s, 0, 0)
}

// addMember is Add with explicit starting lifetime counters — the shared
// registration path of Add (zero counters) and ImportMember (counters
// carried over from the exporting fleet so a migrated stream's roll-up
// neither loses nor double-counts samples).
func (f *Fleet) addMember(id string, s core.Streaming, samples, drifts uint64) error {
	if id == "" {
		return fmt.Errorf("fleet: empty stream ID")
	}
	if s == nil {
		return fmt.Errorf("fleet: stream %q: nil stage", id)
	}
	mb := &member{stage: s, samples: samples, drifts: drifts}
	if f.cfg.Instrument {
		mb.instr = core.NewInstrumented(s, core.InstrumentConfig{
			StreamID:    id,
			SampleEvery: f.cfg.SampleEvery,
			TraceDepth:  f.cfg.TraceDepth,
		})
		mb.stage = mb.instr
	}
	if bs, ok := mb.stage.(core.BatchStreaming); ok {
		mb.batch = bs
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.members[id]; ok {
		return fmt.Errorf("fleet: stream %q already registered", id)
	}
	sh.members[id] = mb
	return nil
}

// Remove deregisters a stream, reporting whether it existed and, when
// it did, the member's final lifetime sample and drift counts. Remove
// acquires the member's own lock before returning, so any batch that
// was mid-flight on the member has fully completed — results delivered,
// drift events emitted, counters settled — by the time Remove returns;
// a "removed" stream can never emit another event. Callers that raced a
// lookup against Remove and win the member lock afterwards see the
// removed mark and fail with an unknown-stream error.
func (f *Fleet) Remove(id string) (samples, drifts uint64, ok bool) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	m, found := sh.members[id]
	if !found {
		sh.mu.Unlock()
		return 0, 0, false
	}
	delete(sh.members, id)
	sh.mu.Unlock()

	// Wait out any in-flight batch, then seal the member. The shard lock
	// is already released: a long batch must not block Add/Remove of the
	// shard's other streams.
	m.mu.Lock()
	defer m.mu.Unlock()
	m.removed = true
	return m.samples, m.drifts, true
}

// Len returns the registered stream count.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		n += len(sh.members)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the registered stream IDs, sorted.
func (f *Fleet) IDs() []string {
	var ids []string
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id := range sh.members {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

func (f *Fleet) member(id string) (*member, error) {
	sh := f.shardOf(id)
	sh.mu.RLock()
	m, ok := sh.members[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m, nil
}

// ProcessBatch feeds a batch of samples to one stream in order and
// returns the per-sample results. Batching amortises the lock: the
// member mutex is taken once per batch, not once per sample.
func (f *Fleet) ProcessBatch(id string, xs [][]float64) ([]core.Result, error) {
	return f.ProcessBatchInto(make([]core.Result, 0, len(xs)), id, xs)
}

// ProcessBatchInto is ProcessBatch appending into dst — the
// allocation-free form for callers that reuse a result buffer across
// batches.
func (f *Fleet) ProcessBatchInto(dst []core.Result, id string, xs [][]float64) ([]core.Result, error) {
	m, err := f.member(id)
	if err != nil {
		return dst, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return dst, fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.batch != nil {
		// Batched path: the stage consumes the whole slice in one call
		// (equivalence to per-sample Process is the BatchStreaming
		// contract), then the fleet replays its accounting over the
		// appended results.
		base := len(dst)
		dst = m.batch.ProcessBatch(dst, xs)
		for _, r := range dst[base:] {
			idx := m.samples
			m.samples++
			if r.DriftDetected {
				m.drifts++
				f.emit(Event{StreamID: id, Index: int(idx), Result: r})
			}
		}
		return dst, nil
	}
	for _, x := range xs {
		var r core.Result
		if m.instr != nil {
			r = m.instr.Process(x)
		} else {
			r = m.stage.Process(x)
		}
		idx := m.samples
		m.samples++
		if r.DriftDetected {
			m.drifts++
			f.emit(Event{StreamID: id, Index: int(idx), Result: r})
		}
		dst = append(dst, r)
	}
	return dst, nil
}

// ProcessAll fans a set of per-stream batches out over a bounded worker
// pool and returns the per-stream results keyed like the input. Each
// stream's batch is processed sequentially on one worker (preserving
// per-stream determinism); distinct streams run concurrently. The first
// failing stream aborts the call.
func (f *Fleet) ProcessAll(batches map[string][][]float64) (map[string][]core.Result, error) {
	ids := make([]string, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	results := make([][]core.Result, len(ids))
	p := eval.NewPool(f.cfg.Workers)
	for i, id := range ids {
		i, id := i, id
		p.Go(func() error {
			rs, err := f.ProcessBatch(id, batches[id])
			if err != nil {
				return err
			}
			results[i] = rs
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		return nil, err
	}
	out := make(map[string][]core.Result, len(ids))
	for i, id := range ids {
		out[id] = results[i]
	}
	return out, nil
}

// Subscribe arms drift-event delivery and returns the fleet's single
// event channel. Events are fanned in from every member; when the
// buffer is full an event is dropped and counted rather than stalling
// processing (see EventsDropped). Before the first Subscribe call no
// events are buffered at all.
func (f *Fleet) Subscribe() <-chan Event {
	f.subscribed.Store(true)
	return f.events
}

// EventsDropped returns how many drift events were discarded because
// the subscriber channel was full.
func (f *Fleet) EventsDropped() uint64 { return f.dropped.Load() }

func (f *Fleet) emit(ev Event) {
	if !f.subscribed.Load() {
		return
	}
	select {
	case f.events <- ev:
	default:
		f.dropped.Add(1)
	}
}

// Do runs fn against one member's stage while holding that member's
// lock — the safe way to inspect or checkpoint a single stream while
// the rest of the fleet keeps processing.
func (f *Fleet) Do(id string, fn func(core.Streaming) error) error {
	m, err := f.member(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return fmt.Errorf("fleet: unknown stream %q", id)
	}
	return fn(m.stage)
}

// MemberStats returns one stream's lifetime sample and drift counts.
func (f *Fleet) MemberStats(id string) (samples, drifts uint64, err error) {
	m, err := f.member(id)
	if err != nil {
		return 0, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return 0, 0, fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m.samples, m.drifts, nil
}

// Health rolls every member's snapshot up into one fleet-level snapshot
// (see health.Aggregate for the semantics: counters sum, PFinite ANDs,
// score summaries pool).
func (f *Fleet) Health() health.Snapshot {
	var snaps []health.Snapshot
	f.eachMember(func(id string, m *member) {
		snaps = append(snaps, m.stage.Health())
	})
	return health.Aggregate(snaps)
}

// StreamMetrics is one member's contribution to the fleet roll-up.
type StreamMetrics struct {
	// Samples and Drifts are the fleet's lifetime counters for the
	// member (identical to MemberStats).
	Samples uint64
	Drifts  uint64
	// Stage carries the member's instrumentation snapshot when the fleet
	// was built with Config.Instrument; nil otherwise.
	Stage *core.StageMetrics
}

// Metrics is the fleet-level metrics roll-up: whole-fleet totals plus
// the per-stream breakdown, the exposition layer's one-stop source.
type Metrics struct {
	// Streams is the registered member count.
	Streams int
	// Samples and Drifts sum every member's lifetime counters.
	Samples uint64
	Drifts  uint64
	// EventsDropped counts drift events discarded on a full subscriber
	// buffer.
	EventsDropped uint64
	// MemoryBytes is the whole-fleet retained-state audit.
	MemoryBytes int
	// PerStream holds each member's counters keyed by stream ID.
	PerStream map[string]StreamMetrics
}

// Metrics rolls every member's counters up into one fleet-level
// snapshot, the counterpart of Health for throughput and event
// accounting. Each member is visited under its own lock, so a snapshot
// taken under load is per-member consistent.
func (f *Fleet) Metrics() Metrics {
	m := Metrics{PerStream: make(map[string]StreamMetrics, f.Len())}
	f.eachMember(func(id string, mb *member) {
		sm := StreamMetrics{Samples: mb.samples, Drifts: mb.drifts}
		if mb.instr != nil {
			stage := mb.instr.Metrics()
			sm.Stage = &stage
		}
		m.MemoryBytes += mb.stage.MemoryBytes() + len(id) + memberOverheadBytes
		m.Streams++
		m.Samples += sm.Samples
		m.Drifts += sm.Drifts
		m.PerStream[id] = sm
	})
	m.EventsDropped = f.dropped.Load()
	return m
}

// Traces returns each instrumented member's retained drift trace,
// keyed by stream ID (members without instrumentation are absent).
// Each ring is read under its member's lock.
func (f *Fleet) Traces() map[string][]core.TraceEvent {
	out := map[string][]core.TraceEvent{}
	f.eachMember(func(id string, mb *member) {
		if mb.instr != nil {
			out[id] = mb.instr.Trace()
		}
	})
	return out
}

// MemberHealth returns each stream's own snapshot, keyed by ID.
func (f *Fleet) MemberHealth() map[string]health.Snapshot {
	out := make(map[string]health.Snapshot, f.Len())
	f.eachMember(func(id string, m *member) {
		out[id] = m.stage.Health()
	})
	return out
}

// memberOverheadBytes is the registry's own cost per member beyond the
// stage's audit and the ID bytes (charged as len(id)): the member
// struct (mutex, 16-byte stage interface header, the concrete instr
// pointer, the 16-byte batch capability header, two uint64 counters,
// removed mark + padding = 72), the map's *member value (8), and the
// string header of the map key (16). Pinned to the real layout by an
// unsafe.Sizeof test so it cannot rot when the struct changes.
const memberOverheadBytes = 72 + 8 + 16

// MemoryBytes audits the whole fleet's retained state: the sum of every
// member's audit plus the registry's own per-member overhead.
func (f *Fleet) MemoryBytes() int {
	total := 0
	f.eachMember(func(id string, m *member) {
		total += m.stage.MemoryBytes() + len(id) + memberOverheadBytes
	})
	return total
}

// eachMember visits every live member under that member's own lock —
// never while holding a shard lock. The member set is snapshotted under
// each shard's read lock first and the shard lock released before any
// member lock is taken, so a visitor stalled behind one member's long
// batch (a /metrics or Health scrape, say) cannot block Add/Remove on
// that shard. Members removed between snapshot and visit are skipped.
// The visit order is unspecified; callers needing determinism sort by
// ID.
func (f *Fleet) eachMember(fn func(id string, m *member)) {
	type entry struct {
		id string
		m  *member
	}
	snap := make([]entry, 0, 64)
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id, m := range sh.members {
			snap = append(snap, entry{id, m})
		}
		sh.mu.RUnlock()
	}
	for _, e := range snap {
		e.m.mu.Lock()
		if !e.m.removed {
			fn(e.id, e.m)
		}
		e.m.mu.Unlock()
	}
}

// Package fleet is the multi-stream scheduling layer over the
// single-stream drift pipeline: a sharded, multi-tenant registry of
// independent core.Streaming stages keyed by stream ID. One gateway
// process monitoring hundreds of sensor streams runs one Fleet; each
// member keeps the paper's O(C·D + H²) sequential state and the fleet
// adds only a mutex and two counters per member.
//
// Concurrency model: every member stage is single-threaded by the
// Streaming contract, so the fleet serialises access per member with a
// member mutex and keeps registry lookups cheap with per-shard
// read-write locks. Different streams never contend on the same lock
// (beyond their shard's read lock), which is what makes whole-fleet
// throughput scale with cores; samples of one stream are processed in
// arrival order, which is what keeps per-stream results deterministic.
package fleet

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgedrift/internal/core"
	"edgedrift/internal/eval"
	"edgedrift/internal/health"
	"edgedrift/internal/oselm"
)

// Event is one drift detection, fanned in from every member onto the
// fleet's single subscriber channel.
type Event struct {
	// StreamID names the member that detected the drift.
	StreamID string
	// Index is the 0-based per-stream sample index of the detection.
	Index int
	// Result is the member's per-sample outcome on that sample.
	Result core.Result
}

// Config parameterises a Fleet.
type Config struct {
	// Shards is the registry shard count; 0 means 8. More shards means
	// less registry-lock contention when members are added and removed
	// concurrently with processing.
	Shards int
	// Workers bounds ProcessAll's concurrency; 0 means GOMAXPROCS.
	Workers int
	// EventBuffer is the drift-event channel capacity; 0 means 256.
	// Events beyond a full buffer are dropped (and counted) rather than
	// blocking the processing hot path on a slow subscriber.
	EventBuffer int
	// Instrument wraps every member in a core.Instrumented stage at Add
	// time, enabling per-stream counters, the drift-event trace ring and
	// (with SampleEvery > 0) sampled latency timing. Off by default: an
	// uninstrumented fleet adds nothing to the per-sample hot path.
	Instrument bool
	// SampleEvery is the latency-timing period for instrumented members
	// (time one Process call in every SampleEvery). 0 disables timing;
	// counters and traces stay on whenever Instrument is set.
	SampleEvery int
	// TraceDepth bounds each member's drift-trace ring; 0 means 64.
	TraceDepth int
	// WarmRecovery enables drift-triggered cooperative recovery: when a
	// member with a cohort detects drift, the fleet seeds its rebuilding
	// model from the merged state of the cohort's non-drifted,
	// merge-compatible peers (closed-form OS-ELM merge, see oselm.Merge),
	// falling back to the paper's cold reconstruction when no eligible
	// peer exists. Off by default: with it off the fleet is bit-identical
	// to the pre-cooperation behaviour.
	WarmRecovery bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// member is one registered stream: its stage, the lock serialising it,
// and its lifetime counters. removed (guarded by mu) marks a member
// whose Remove has completed, so a caller that looked the member up
// before removal and then won the lock afterwards cannot process
// samples on a ghost stream.
type member struct {
	mu    sync.Mutex
	stage core.Streaming
	// instr aliases stage when the fleet wrapped it at Add: the batch
	// loop calls the wrapper through this concrete pointer (a static
	// call target) instead of re-dispatching through the interface, so
	// instrumentation costs one direct call, not a second virtual one.
	instr *core.Instrumented
	// batch is the stage's batched-scoring capability, discovered once at
	// Add time (nil when the stage is per-sample only). When set, whole
	// ProcessBatch calls go through one virtual dispatch instead of one
	// per sample, and the stage gets contiguous chunks to run as GEMMs.
	batch core.BatchStreaming
	// merger is the stage's mergeable-state capability, discovered once
	// at Add time through the Guard/Instrumented seams (nil for stages
	// that cannot merge, e.g. Q16.16 detect-only members).
	merger core.Merger
	// trans is the stage's precision-transition capability, discovered
	// once at Add time through the same seams (nil for single-precision
	// stages — baselines, the Q16.16 port itself).
	trans core.Transitioner
	// phase reports the stage's detector phase, when it exposes one; the
	// cooperative policies use it to skip mid-reconstruction peers.
	phase func() core.Phase
	// cohort names the member's cooperation group ("" = none) and fprint
	// caches its merge fingerprint, so peer eligibility is an integer
	// compare, not a state export.
	cohort  string
	fprint  uint64
	samples uint64
	drifts  uint64
	removed bool
}

// shard is one slice of the registry.
type shard struct {
	mu      sync.RWMutex
	members map[string]*member
}

// Fleet is a sharded registry of independently monitored streams. All
// methods are safe for concurrent use; per-stream sample order is the
// caller's responsibility (feed one stream from one goroutine, or batch
// its samples through a single ProcessBatch call).
type Fleet struct {
	cfg    Config
	shards []shard

	events     chan Event
	subscribed atomic.Bool
	dropped    atomic.Uint64

	// cohorts indexes live member IDs by cohort name, under its own
	// mutex (never held together with a member lock).
	cohortMu sync.Mutex
	cohorts  map[string]map[string]struct{}

	// Cooperation counters (see Metrics / Health).
	warmRecoveries atomic.Uint64
	coldFallbacks  atomic.Uint64
	peersSkipped   atomic.Uint64

	// Precision-transition counters (see DemoteMember / PromoteMember).
	demotions          atomic.Uint64
	promotions         atomic.Uint64
	transitionFailures atomic.Uint64
}

// New builds an empty fleet.
func New(cfg Config) *Fleet {
	c := cfg.withDefaults()
	f := &Fleet{
		cfg:     c,
		shards:  make([]shard, c.Shards),
		events:  make(chan Event, c.EventBuffer),
		cohorts: map[string]map[string]struct{}{},
	}
	for i := range f.shards {
		f.shards[i].members = map[string]*member{}
	}
	return f
}

// shardOf routes a stream ID to its shard (FNV-1a, allocation-free).
func (f *Fleet) shardOf(id string) *shard {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return &f.shards[h%uint32(len(f.shards))]
}

// Add registers a stream. The stage must not be shared with another
// member or used directly afterwards — the fleet owns its schedule.
func (f *Fleet) Add(id string, s core.Streaming) error {
	return f.addMember(id, s, MemberConfig{}, 0, 0)
}

// MemberConfig carries per-member registration options.
type MemberConfig struct {
	// Cohort names the member's cooperation group. Members of one cohort
	// exchange merged model state during warm recovery and anti-entropy;
	// "" (the default) opts the member out of all cooperation. A cohort
	// requires a mergeable stage: registering a detect-only member (the
	// Q16.16 port) into a cohort is rejected loudly, never downgraded.
	Cohort string
}

// AddMember registers a stream with explicit member options.
func (f *Fleet) AddMember(id string, s core.Streaming, mc MemberConfig) error {
	return f.addMember(id, s, mc, 0, 0)
}

// addMember is AddMember with explicit starting lifetime counters — the
// shared registration path of Add (zero counters) and ImportMember
// (counters carried over from the exporting fleet so a migrated
// stream's roll-up neither loses nor double-counts samples).
func (f *Fleet) addMember(id string, s core.Streaming, mc MemberConfig, samples, drifts uint64) error {
	if id == "" {
		return fmt.Errorf("fleet: empty stream ID")
	}
	if s == nil {
		return fmt.Errorf("fleet: stream %q: nil stage", id)
	}
	mb := &member{stage: s, cohort: mc.Cohort, samples: samples, drifts: drifts}
	if f.cfg.Instrument {
		mb.instr = core.NewInstrumented(s, core.InstrumentConfig{
			StreamID:    id,
			SampleEvery: f.cfg.SampleEvery,
			TraceDepth:  f.cfg.TraceDepth,
		})
		mb.stage = mb.instr
	}
	if bs, ok := mb.stage.(core.BatchStreaming); ok {
		mb.batch = bs
	}
	if mg, ok := core.AsMerger(mb.stage); ok {
		mb.merger = mg
		mb.fprint = mg.MergeFingerprint()
	}
	if tr, ok := core.AsTransitioner(mb.stage); ok {
		mb.trans = tr
	}
	if p, ok := mb.stage.(interface{ PhaseNow() core.Phase }); ok {
		mb.phase = p.PhaseNow
	}
	if mc.Cohort != "" && mb.merger == nil {
		return fmt.Errorf("fleet: stream %q: cohort %q requires a mergeable stage (detect-only members cannot cooperate): %w",
			id, mc.Cohort, oselm.ErrMergeIncompatible)
	}
	sh := f.shardOf(id)
	sh.mu.Lock()
	if _, ok := sh.members[id]; ok {
		sh.mu.Unlock()
		return fmt.Errorf("fleet: stream %q already registered", id)
	}
	sh.members[id] = mb
	sh.mu.Unlock()
	f.cohortAdd(mc.Cohort, id)
	return nil
}

// cohortAdd indexes id under its cohort (no-op for the empty cohort).
func (f *Fleet) cohortAdd(cohort, id string) {
	if cohort == "" {
		return
	}
	f.cohortMu.Lock()
	set := f.cohorts[cohort]
	if set == nil {
		set = map[string]struct{}{}
		f.cohorts[cohort] = set
	}
	set[id] = struct{}{}
	f.cohortMu.Unlock()
}

// cohortRemove drops id from its cohort's index.
func (f *Fleet) cohortRemove(cohort, id string) {
	if cohort == "" {
		return
	}
	f.cohortMu.Lock()
	if set := f.cohorts[cohort]; set != nil {
		delete(set, id)
		if len(set) == 0 {
			delete(f.cohorts, cohort)
		}
	}
	f.cohortMu.Unlock()
}

// Cohort returns the member's cohort name ("" for none).
func (f *Fleet) Cohort(id string) (string, error) {
	m, err := f.member(id)
	if err != nil {
		return "", err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return "", fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m.cohort, nil
}

// CohortMembers returns the live member IDs of a cohort, sorted.
func (f *Fleet) CohortMembers(cohort string) []string {
	f.cohortMu.Lock()
	ids := make([]string, 0, len(f.cohorts[cohort]))
	for id := range f.cohorts[cohort] {
		ids = append(ids, id)
	}
	f.cohortMu.Unlock()
	sort.Strings(ids)
	return ids
}

// Remove deregisters a stream, reporting whether it existed and, when
// it did, the member's final lifetime sample and drift counts. Remove
// acquires the member's own lock before returning, so any batch that
// was mid-flight on the member has fully completed — results delivered,
// drift events emitted, counters settled — by the time Remove returns;
// a "removed" stream can never emit another event. Callers that raced a
// lookup against Remove and win the member lock afterwards see the
// removed mark and fail with an unknown-stream error.
func (f *Fleet) Remove(id string) (samples, drifts uint64, ok bool) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	m, found := sh.members[id]
	if !found {
		sh.mu.Unlock()
		return 0, 0, false
	}
	delete(sh.members, id)
	sh.mu.Unlock()

	// Wait out any in-flight batch, then seal the member. The shard lock
	// is already released: a long batch must not block Add/Remove of the
	// shard's other streams.
	m.mu.Lock()
	m.removed = true
	samples, drifts = m.samples, m.drifts
	cohort := m.cohort
	m.mu.Unlock()
	f.cohortRemove(cohort, id)
	return samples, drifts, true
}

// Len returns the registered stream count.
func (f *Fleet) Len() int {
	n := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		n += len(sh.members)
		sh.mu.RUnlock()
	}
	return n
}

// IDs returns the registered stream IDs, sorted.
func (f *Fleet) IDs() []string {
	var ids []string
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id := range sh.members {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

func (f *Fleet) member(id string) (*member, error) {
	sh := f.shardOf(id)
	sh.mu.RLock()
	m, ok := sh.members[id]
	sh.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m, nil
}

// ProcessBatch feeds a batch of samples to one stream in order and
// returns the per-sample results. Batching amortises the lock: the
// member mutex is taken once per batch, not once per sample.
func (f *Fleet) ProcessBatch(id string, xs [][]float64) ([]core.Result, error) {
	return f.ProcessBatchInto(make([]core.Result, 0, len(xs)), id, xs)
}

// ProcessBatchInto is ProcessBatch appending into dst — the
// allocation-free form for callers that reuse a result buffer across
// batches.
//
// With Config.WarmRecovery set, a batch that detected drift on a
// cohort member triggers the cooperative seed after the batch's results
// are settled and the member lock released (see warmRecover); the
// drift-free path is untouched.
func (f *Fleet) ProcessBatchInto(dst []core.Result, id string, xs [][]float64) ([]core.Result, error) {
	dst, drifted, err := f.processMember(dst, id, xs)
	if err == nil && drifted && f.cfg.WarmRecovery {
		f.warmRecover(id)
	}
	return dst, err
}

// processMember is the locked body of ProcessBatchInto, reporting
// whether any sample in the batch detected drift.
func (f *Fleet) processMember(dst []core.Result, id string, xs [][]float64) ([]core.Result, bool, error) {
	m, err := f.member(id)
	if err != nil {
		return dst, false, err
	}
	drifted := false
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return dst, false, fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.batch != nil {
		// Batched path: the stage consumes the whole slice in one call
		// (equivalence to per-sample Process is the BatchStreaming
		// contract), then the fleet replays its accounting over the
		// appended results.
		base := len(dst)
		dst = m.batch.ProcessBatch(dst, xs)
		for _, r := range dst[base:] {
			idx := m.samples
			m.samples++
			if r.DriftDetected {
				m.drifts++
				drifted = true
				f.emit(Event{StreamID: id, Index: int(idx), Result: r})
			}
		}
		return dst, drifted, nil
	}
	for _, x := range xs {
		var r core.Result
		if m.instr != nil {
			r = m.instr.Process(x)
		} else {
			r = m.stage.Process(x)
		}
		idx := m.samples
		m.samples++
		if r.DriftDetected {
			m.drifts++
			drifted = true
			f.emit(Event{StreamID: id, Index: int(idx), Result: r})
		}
		dst = append(dst, r)
	}
	return dst, drifted, nil
}

// warmRecover implements drift-triggered cooperative recovery for one
// just-drifted member: gather merge state from the cohort's eligible
// peers — live, merge-compatible (fingerprint match), and not mid-
// reconstruction (monitoring and checking models are static between
// samples; a rebuilding one is not), so a seed can never observe a
// half-trained peer —
// and seed the drifted member's rebuilding model with their closed-form
// combination. With no eligible peer the member falls back to the
// paper's cold reconstruction, and the fallback is counted, never
// silent. Peer locks are taken one at a time and never nested with the
// target's, so recovery cannot deadlock against concurrent batches,
// Remove, or another member's recovery.
func (f *Fleet) warmRecover(id string) {
	m, err := f.member(id)
	if err != nil {
		return // removed since the batch; nothing to recover
	}
	m.mu.Lock()
	cohort, fprint, merger := m.cohort, m.fprint, m.merger
	removed := m.removed
	m.mu.Unlock()
	if removed || cohort == "" || merger == nil {
		return
	}

	var states [][]byte
	for _, peerID := range f.CohortMembers(cohort) {
		if peerID == id {
			continue
		}
		p, err := f.member(peerID)
		if err != nil {
			continue
		}
		p.mu.Lock()
		eligible := !p.removed && p.merger != nil && p.fprint == fprint &&
			p.phase != nil && p.phase() != core.Reconstructing
		var st []byte
		if eligible {
			st, err = p.merger.ExportMergeState()
		}
		p.mu.Unlock()
		if !eligible || err != nil {
			f.peersSkipped.Add(1)
			continue
		}
		states = append(states, st)
	}
	if len(states) == 0 {
		f.coldFallbacks.Add(1)
		return
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		f.coldFallbacks.Add(1)
		return
	}
	if err := m.merger.MergeSeed(states); err != nil {
		// Peer state that decoded but failed final validation: count the
		// cold fallback; the member continues its normal reconstruction.
		f.peersSkipped.Add(uint64(len(states)))
		f.coldFallbacks.Add(1)
		return
	}
	f.warmRecoveries.Add(1)
}

// ExportMergeState exports one member's mergeable model state and its
// fingerprint — the cross-shard half of cooperative recovery. The state
// is exported under the member lock (a sample-boundary snapshot) and
// never from a reconstructing member: half-trained state is rejected
// at this mechanism level so no policy above can ship it.
func (f *Fleet) ExportMergeState(id string) ([]byte, uint64, error) {
	m, err := f.member(id)
	if err != nil {
		return nil, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return nil, 0, fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.merger == nil {
		return nil, 0, fmt.Errorf("fleet: stream %q: %w", id,
			&oselm.MergeError{Reason: "member has no mergeable state (detect-only stage)"})
	}
	if m.phase != nil && m.phase() == core.Reconstructing {
		return nil, 0, fmt.Errorf("fleet: stream %q is mid-reconstruction; merge state is only exported from a stable model", id)
	}
	st, err := m.merger.ExportMergeState()
	if err != nil {
		return nil, 0, fmt.Errorf("fleet: export merge state %q: %w", id, err)
	}
	return st, m.fprint, nil
}

// MergeSeedMember seeds one member's model with the closed-form
// combination of the given peer states (from ExportMergeState, locally
// or across shards). Incompatible state is rejected loudly and leaves
// the member untouched.
func (f *Fleet) MergeSeedMember(id string, states [][]byte) error {
	m, err := f.member(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.merger == nil {
		return fmt.Errorf("fleet: stream %q: %w", id,
			&oselm.MergeError{Reason: "member has no mergeable state (detect-only stage)"})
	}
	if err := m.merger.MergeSeed(states); err != nil {
		return fmt.Errorf("fleet: merge seed %q: %w", id, err)
	}
	return nil
}

// MemberFingerprint returns a member's merge fingerprint (0 when the
// member has no mergeable state).
func (f *Fleet) MemberFingerprint(id string) (uint64, error) {
	m, err := f.member(id)
	if err != nil {
		return 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return 0, fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m.fprint, nil
}

// DemoteMember switches one member to a cheaper numeric backend at
// runtime (see core.Transitioner: the full-precision state is retained,
// so the matching PromoteMember is bit-exact). The transition runs under
// the member lock — at a sample boundary, like every other member
// mutation — and is stamped into the member's trace ring when the fleet
// is instrumented. Members without the transition capability (baseline
// detectors, the Q16.16 port) and invalid transitions fail loudly and
// count as TransitionFailures.
func (f *Fleet) DemoteMember(id string, p oselm.Precision) error {
	m, err := f.member(id)
	if err != nil {
		f.transitionFailures.Add(1)
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.trans == nil {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: stream %q has no precision-transition capability", id)
	}
	if err := m.trans.Demote(p); err != nil {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: demote %q: %w", id, err)
	}
	f.demotions.Add(1)
	if m.instr != nil {
		m.instr.Stamp("demote:" + p.String())
	}
	return nil
}

// PromoteMember drops a demoted member's reduced-precision twin and
// resumes its retained full-precision origin bit-exactly from the
// demotion instant (samples served while demoted advanced only the
// twin). Same locking, stamping and failure accounting as DemoteMember.
func (f *Fleet) PromoteMember(id string) error {
	m, err := f.member(id)
	if err != nil {
		f.transitionFailures.Add(1)
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.trans == nil {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: stream %q has no precision-transition capability", id)
	}
	if err := m.trans.Promote(); err != nil {
		f.transitionFailures.Add(1)
		return fmt.Errorf("fleet: promote %q: %w", id, err)
	}
	f.promotions.Add(1)
	if m.instr != nil {
		m.instr.Stamp("promote:" + m.trans.ActivePrecision().String())
	}
	return nil
}

// MemberPrecision reports one member's transition state: whether it is
// currently demoted and the precision samples are processed at. Members
// without the capability report (false, Float64-zero-value) with ok
// false.
func (f *Fleet) MemberPrecision(id string) (degraded bool, active oselm.Precision, ok bool, err error) {
	m, err := f.member(id)
	if err != nil {
		return false, 0, false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return false, 0, false, fmt.Errorf("fleet: unknown stream %q", id)
	}
	if m.trans == nil {
		return false, 0, false, nil
	}
	return m.trans.Degraded(), m.trans.ActivePrecision(), true, nil
}

// AntiEntropy runs one periodic cooperative merge round over a cohort:
// every live, stable (not reconstructing), mutually compatible member contributes its
// state, and each such member is re-seeded with the closed-form
// combination of all contributions (its own included, so its evidence
// is kept). Members mid-reconstruction or fingerprint-mismatched are
// skipped and counted. It returns how many members were seeded.
func (f *Fleet) AntiEntropy(cohort string) (int, error) {
	ids := f.CohortMembers(cohort)
	if len(ids) == 0 {
		return 0, fmt.Errorf("fleet: unknown or empty cohort %q", cohort)
	}
	var (
		states  [][]byte
		donors  []string
		fprint  uint64
		haveRef bool
	)
	for _, id := range ids {
		m, err := f.member(id)
		if err != nil {
			continue
		}
		m.mu.Lock()
		ok := !m.removed && m.merger != nil &&
			(m.phase == nil || m.phase() != core.Reconstructing)
		if ok && haveRef && m.fprint != fprint {
			ok = false
		}
		var st []byte
		if ok {
			st, err = m.merger.ExportMergeState()
			ok = err == nil
		}
		if ok && !haveRef {
			fprint, haveRef = m.fprint, true
		}
		m.mu.Unlock()
		if !ok {
			f.peersSkipped.Add(1)
			continue
		}
		states = append(states, st)
		donors = append(donors, id)
	}
	if len(states) < 2 {
		return 0, fmt.Errorf("fleet: cohort %q has %d mergeable member(s); anti-entropy needs 2", cohort, len(states))
	}
	seeded := 0
	for _, id := range donors {
		if err := f.MergeSeedMember(id, states); err != nil {
			f.peersSkipped.Add(1)
			continue
		}
		seeded++
	}
	return seeded, nil
}

// ProcessAll fans a set of per-stream batches out over a bounded worker
// pool and returns the per-stream results keyed like the input. Each
// stream's batch is processed sequentially on one worker (preserving
// per-stream determinism); distinct streams run concurrently. The first
// failing stream aborts the call.
func (f *Fleet) ProcessAll(batches map[string][][]float64) (map[string][]core.Result, error) {
	ids := make([]string, 0, len(batches))
	for id := range batches {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	results := make([][]core.Result, len(ids))
	p := eval.NewPool(f.cfg.Workers)
	for i, id := range ids {
		i, id := i, id
		p.Go(func() error {
			rs, err := f.ProcessBatch(id, batches[id])
			if err != nil {
				return err
			}
			results[i] = rs
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		return nil, err
	}
	out := make(map[string][]core.Result, len(ids))
	for i, id := range ids {
		out[id] = results[i]
	}
	return out, nil
}

// Subscribe arms drift-event delivery and returns the fleet's single
// event channel. Events are fanned in from every member; when the
// buffer is full an event is dropped and counted rather than stalling
// processing (see EventsDropped). Before the first Subscribe call no
// events are buffered at all.
func (f *Fleet) Subscribe() <-chan Event {
	f.subscribed.Store(true)
	return f.events
}

// EventsDropped returns how many drift events were discarded because
// the subscriber channel was full.
func (f *Fleet) EventsDropped() uint64 { return f.dropped.Load() }

func (f *Fleet) emit(ev Event) {
	if !f.subscribed.Load() {
		return
	}
	select {
	case f.events <- ev:
	default:
		f.dropped.Add(1)
	}
}

// Do runs fn against one member's stage while holding that member's
// lock — the safe way to inspect or checkpoint a single stream while
// the rest of the fleet keeps processing.
func (f *Fleet) Do(id string, fn func(core.Streaming) error) error {
	m, err := f.member(id)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return fmt.Errorf("fleet: unknown stream %q", id)
	}
	return fn(m.stage)
}

// MemberStats returns one stream's lifetime sample and drift counts.
func (f *Fleet) MemberStats(id string) (samples, drifts uint64, err error) {
	m, err := f.member(id)
	if err != nil {
		return 0, 0, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.removed {
		return 0, 0, fmt.Errorf("fleet: unknown stream %q", id)
	}
	return m.samples, m.drifts, nil
}

// Health rolls every member's snapshot up into one fleet-level snapshot
// (see health.Aggregate for the semantics: counters sum, PFinite ANDs,
// score summaries pool). The fleet's own cooperation counters — warm
// recoveries and cold fallbacks are a fleet policy, invisible to any
// single member — are added onto the aggregate.
func (f *Fleet) Health() health.Snapshot {
	var snaps []health.Snapshot
	f.eachMember(func(id string, m *member) {
		snaps = append(snaps, m.stage.Health())
	})
	agg := health.Aggregate(snaps)
	agg.WarmRecoveries += f.warmRecoveries.Load()
	agg.ColdFallbacks += f.coldFallbacks.Load()
	return agg
}

// StartAntiEntropy launches the optional periodic anti-entropy policy:
// every interval, each cohort with ≥ 2 mergeable members is merged (see
// AntiEntropy). It returns a stop function; stopping waits for an
// in-flight round to finish. Round errors (e.g. a cohort momentarily
// mid-reconstruction everywhere) are expected and skipped — the next
// tick retries.
func (f *Fleet) StartAntiEntropy(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Minute
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	var once sync.Once
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				f.cohortMu.Lock()
				cohorts := make([]string, 0, len(f.cohorts))
				for c := range f.cohorts {
					cohorts = append(cohorts, c)
				}
				f.cohortMu.Unlock()
				sort.Strings(cohorts)
				for _, c := range cohorts {
					_, _ = f.AntiEntropy(c)
				}
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		wg.Wait()
	}
}

// StreamMetrics is one member's contribution to the fleet roll-up.
type StreamMetrics struct {
	// Samples and Drifts are the fleet's lifetime counters for the
	// member (identical to MemberStats).
	Samples uint64
	Drifts  uint64
	// Stage carries the member's instrumentation snapshot when the fleet
	// was built with Config.Instrument; nil otherwise.
	Stage *core.StageMetrics
	// Degraded reports whether the member is currently demoted, and
	// ActivePrecision names the backend its samples are processed at
	// ("" for members without the transition capability).
	Degraded        bool
	ActivePrecision string
}

// Metrics is the fleet-level metrics roll-up: whole-fleet totals plus
// the per-stream breakdown, the exposition layer's one-stop source.
type Metrics struct {
	// Streams is the registered member count.
	Streams int
	// Samples and Drifts sum every member's lifetime counters.
	Samples uint64
	Drifts  uint64
	// EventsDropped counts drift events discarded on a full subscriber
	// buffer.
	EventsDropped uint64
	// WarmRecoveries and ColdFallbacks count drift responses under the
	// cooperative policy: seeds applied from cohort peers vs. falls back
	// to cold reconstruction for want of an eligible peer. PeersSkipped
	// counts cohort peers passed over during recovery or anti-entropy
	// (mid-reconstruction, fingerprint mismatch, or export failure).
	WarmRecoveries uint64
	ColdFallbacks  uint64
	PeersSkipped   uint64
	// Degraded counts members currently running demoted; Demotions,
	// Promotions and TransitionFailures are the lifetime transition
	// counters (see DemoteMember / PromoteMember).
	Degraded           int
	Demotions          uint64
	Promotions         uint64
	TransitionFailures uint64
	// MemoryBytes is the whole-fleet retained-state audit.
	MemoryBytes int
	// PerStream holds each member's counters keyed by stream ID.
	PerStream map[string]StreamMetrics
}

// Metrics rolls every member's counters up into one fleet-level
// snapshot, the counterpart of Health for throughput and event
// accounting. Each member is visited under its own lock, so a snapshot
// taken under load is per-member consistent.
func (f *Fleet) Metrics() Metrics {
	m := Metrics{PerStream: make(map[string]StreamMetrics, f.Len())}
	f.eachMember(func(id string, mb *member) {
		sm := StreamMetrics{Samples: mb.samples, Drifts: mb.drifts}
		if mb.instr != nil {
			stage := mb.instr.Metrics()
			sm.Stage = &stage
		}
		if mb.trans != nil {
			sm.Degraded = mb.trans.Degraded()
			sm.ActivePrecision = mb.trans.ActivePrecision().String()
			if sm.Degraded {
				m.Degraded++
			}
		}
		m.MemoryBytes += mb.stage.MemoryBytes() + len(id) + len(mb.cohort) + memberOverheadBytes
		m.Streams++
		m.Samples += sm.Samples
		m.Drifts += sm.Drifts
		m.PerStream[id] = sm
	})
	m.EventsDropped = f.dropped.Load()
	m.WarmRecoveries = f.warmRecoveries.Load()
	m.ColdFallbacks = f.coldFallbacks.Load()
	m.PeersSkipped = f.peersSkipped.Load()
	m.Demotions = f.demotions.Load()
	m.Promotions = f.promotions.Load()
	m.TransitionFailures = f.transitionFailures.Load()
	return m
}

// Traces returns each instrumented member's retained drift trace,
// keyed by stream ID (members without instrumentation are absent).
// Each ring is read under its member's lock.
func (f *Fleet) Traces() map[string][]core.TraceEvent {
	out := map[string][]core.TraceEvent{}
	f.eachMember(func(id string, mb *member) {
		if mb.instr != nil {
			out[id] = mb.instr.Trace()
		}
	})
	return out
}

// MemberHealth returns each stream's own snapshot, keyed by ID.
func (f *Fleet) MemberHealth() map[string]health.Snapshot {
	out := make(map[string]health.Snapshot, f.Len())
	f.eachMember(func(id string, m *member) {
		out[id] = m.stage.Health()
	})
	return out
}

// memberOverheadBytes is the registry's own cost per member beyond the
// stage's audit and the ID/cohort bytes (charged as len(id) +
// len(cohort)): the member struct (mutex, 16-byte stage interface
// header, the concrete instr pointer, the 16-byte batch, merger and
// trans capability headers, the phase func value, the cohort string
// header, the fingerprint, two uint64 counters, removed mark + padding
// = 136), the map's *member value (8), and the string header of the map
// key (16). Pinned to the real layout by an unsafe.Sizeof test so it
// cannot rot when the struct changes.
const memberOverheadBytes = 136 + 8 + 16

// MemoryBytes audits the whole fleet's retained state: the sum of every
// member's audit plus the registry's own per-member overhead.
func (f *Fleet) MemoryBytes() int {
	total := 0
	f.eachMember(func(id string, m *member) {
		total += m.stage.MemoryBytes() + len(id) + len(m.cohort) + memberOverheadBytes
	})
	return total
}

// eachMember visits every live member under that member's own lock —
// never while holding a shard lock. The member set is snapshotted under
// each shard's read lock first and the shard lock released before any
// member lock is taken, so a visitor stalled behind one member's long
// batch (a /metrics or Health scrape, say) cannot block Add/Remove on
// that shard. Members removed between snapshot and visit are skipped.
// The visit order is unspecified; callers needing determinism sort by
// ID.
func (f *Fleet) eachMember(fn func(id string, m *member)) {
	type entry struct {
		id string
		m  *member
	}
	snap := make([]entry, 0, 64)
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		for id, m := range sh.members {
			snap = append(snap, entry{id, m})
		}
		sh.mu.RUnlock()
	}
	for _, e := range snap {
		e.m.mu.Lock()
		if !e.m.removed {
			fn(e.id, e.m)
		}
		e.m.mu.Unlock()
	}
}

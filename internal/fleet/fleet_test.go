package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/core"
	"edgedrift/internal/health"
)

// countStage is a deterministic, trivially serialisable Streaming stage:
// it echoes x[0] as the score and fires a drift every driftEvery-th
// sample. It stands in for a Monitor so the container and scheduling
// logic can be tested without training a model.
type countStage struct {
	samples    int
	driftEvery int
}

func (c *countStage) Process(x []float64) core.Result {
	c.samples++
	r := core.Result{Label: -1, Score: x[0], Phase: core.Monitoring}
	if c.driftEvery > 0 && c.samples%c.driftEvery == 0 {
		r.DriftDetected = true
	}
	return r
}

func (c *countStage) MemoryBytes() int { return 2 * 8 }

func (c *countStage) Health() health.Snapshot {
	return health.Snapshot{SamplesSeen: c.samples, PFinite: true, Phase: "monitoring"}
}

func encCount(id string, s core.Streaming, w io.Writer) (byte, error) {
	c := s.(*countStage)
	return 0, binary.Write(w, binary.LittleEndian, []uint32{uint32(c.samples), uint32(c.driftEvery)})
}

func decCount(id string, kind byte, r io.Reader) (core.Streaming, error) {
	if kind != 0 {
		return nil, fmt.Errorf("unexpected member kind %d", kind)
	}
	var u [2]uint32
	if err := binary.Read(r, binary.LittleEndian, u[:]); err != nil {
		return nil, err
	}
	return &countStage{samples: int(u[0]), driftEvery: int(u[1])}, nil
}

func samples(n int, base float64) [][]float64 {
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = []float64{base + float64(i)}
	}
	return xs
}

func TestRegistry(t *testing.T) {
	f := New(Config{Shards: 4})
	if err := f.Add("a", &countStage{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("a", &countStage{}); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := f.Add("", &countStage{}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := f.Add("b", nil); err == nil {
		t.Fatal("nil stage accepted")
	}
	for _, id := range []string{"b", "c", "d"} {
		if err := f.Add(id, &countStage{}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := f.IDs(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("IDs = %v", got)
	}
	if _, _, ok := f.Remove("c"); !ok {
		t.Fatal("Remove of a registered stream reported not found")
	}
	if _, _, ok := f.Remove("c"); ok {
		t.Fatal("second Remove of the same stream reported found")
	}
	if _, err := f.ProcessBatch("c", samples(1, 0)); err == nil {
		t.Fatal("ProcessBatch on removed stream succeeded")
	}
}

// TestProcessBatchMatchesDirect locks the scheduling guarantee: results
// through the fleet are identical to driving the stage directly.
func TestProcessBatchMatchesDirect(t *testing.T) {
	direct := &countStage{driftEvery: 7}
	xs := samples(50, 1)
	var want []core.Result
	for _, x := range xs {
		want = append(want, direct.Process(x))
	}

	f := New(Config{})
	if err := f.Add("s", &countStage{driftEvery: 7}); err != nil {
		t.Fatal(err)
	}
	got, err := f.ProcessBatch("s", xs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fleet results differ from direct stage results")
	}
}

// TestProcessAll checks the fan-out path returns every stream's results
// keyed correctly and identical to sequential processing.
func TestProcessAll(t *testing.T) {
	f := New(Config{Workers: 4})
	batches := map[string][][]float64{}
	want := map[string][]core.Result{}
	for i := 0; i < 16; i++ {
		id := fmt.Sprintf("stream-%02d", i)
		if err := f.Add(id, &countStage{driftEvery: 5}); err != nil {
			t.Fatal(err)
		}
		xs := samples(40, float64(i))
		batches[id] = xs
		ref := &countStage{driftEvery: 5}
		for _, x := range xs {
			want[id] = append(want[id], ref.Process(x))
		}
	}
	got, err := f.ProcessAll(batches)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ProcessAll results differ from sequential reference")
	}
}

// TestConcurrentHammer drives many goroutines across shards under the
// race detector and asserts per-stream determinism: every stream's
// lifetime counters equal the single-threaded reference no matter how
// batches interleave across streams.
func TestConcurrentHammer(t *testing.T) {
	const streams, goroutinesPer, batches, batchLen = 16, 4, 8, 25
	f := New(Config{Shards: 4})
	for i := 0; i < streams; i++ {
		if err := f.Add(fmt.Sprintf("s%02d", i), &countStage{driftEvery: 9}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, streams*goroutinesPer)
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%02d", i)
		for g := 0; g < goroutinesPer; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				dst := make([]core.Result, 0, batchLen)
				for b := 0; b < batches; b++ {
					var err error
					dst, err = f.ProcessBatchInto(dst[:0], id, samples(batchLen, 0))
					if err != nil {
						errc <- err
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	wantSamples := uint64(goroutinesPer * batches * batchLen)
	wantDrifts := wantSamples / 9
	for i := 0; i < streams; i++ {
		id := fmt.Sprintf("s%02d", i)
		s, d, err := f.MemberStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if s != wantSamples || d != wantDrifts {
			t.Fatalf("%s: samples=%d drifts=%d, want %d/%d", id, s, d, wantSamples, wantDrifts)
		}
	}
	agg := f.Health()
	if agg.SamplesSeen != int(wantSamples)*streams || !agg.Healthy() {
		t.Fatalf("aggregate health: %+v", agg)
	}
}

func TestEvents(t *testing.T) {
	f := New(Config{EventBuffer: 4})
	if err := f.Add("s", &countStage{driftEvery: 3}); err != nil {
		t.Fatal(err)
	}
	// Before Subscribe nothing is buffered or counted as dropped.
	if _, err := f.ProcessBatch("s", samples(6, 0)); err != nil {
		t.Fatal(err)
	}
	if f.EventsDropped() != 0 {
		t.Fatal("events dropped before any subscriber")
	}
	ch := f.Subscribe()
	if len(ch) != 0 {
		t.Fatal("events buffered before Subscribe")
	}
	if _, err := f.ProcessBatch("s", samples(6, 0)); err != nil {
		t.Fatal(err)
	}
	// Samples 7..12 of the stream: drifts at 1-based 9 and 12, i.e.
	// 0-based per-stream indices 8 and 11.
	ev := <-ch
	if ev.StreamID != "s" || ev.Index != 8 || !ev.Result.DriftDetected {
		t.Fatalf("first event = %+v", ev)
	}
	ev = <-ch
	if ev.Index != 11 {
		t.Fatalf("second event index = %d, want 11", ev.Index)
	}
	// Overflow the small buffer with an undrained subscriber.
	if _, err := f.ProcessBatch("s", samples(60, 0)); err != nil {
		t.Fatal(err)
	}
	if f.EventsDropped() == 0 {
		t.Fatal("no drops recorded after overflowing the event buffer")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	f := New(Config{})
	for i := 0; i < 5; i++ {
		st := &countStage{driftEvery: 4}
		for j := 0; j <= i; j++ {
			st.Process([]float64{0})
		}
		if err := f.Add(fmt.Sprintf("m%d", i), st); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, encCount); err != nil {
		t.Fatal(err)
	}

	g := New(Config{})
	if err := g.Load(bytes.NewReader(buf.Bytes()), decCount); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g.IDs(), f.IDs()) {
		t.Fatalf("IDs after load: %v", g.IDs())
	}
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("m%d", i)
		var got int
		if err := g.Do(id, func(s core.Streaming) error {
			got = s.(*countStage).samples
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got != i+1 {
			t.Fatalf("%s: samples=%d, want %d", id, got, i+1)
		}
	}

	// Determinism: saving the loaded fleet reproduces the bytes.
	var buf2 bytes.Buffer
	if err := g.Save(&buf2, encCount); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save-load-save is not byte-identical")
	}
}

// TestLoadCorruption flips every byte of the artifact in turn; every
// single flip must be caught by a member or container checksum.
func TestLoadCorruption(t *testing.T) {
	f := New(Config{})
	for i := 0; i < 3; i++ {
		if err := f.Add(fmt.Sprintf("m%d", i), &countStage{driftEvery: 2}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, encCount); err != nil {
		t.Fatal(err)
	}
	art := buf.Bytes()
	for pos := 0; pos < len(art); pos++ {
		bad := append([]byte(nil), art...)
		bad[pos] ^= 0x40
		g := New(Config{})
		if err := g.Load(bytes.NewReader(bad), decCount); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadFormat", pos, err)
		}
	}
	// Truncation at any length must also fail.
	for _, n := range []int{0, 3, 6, 10, len(art) / 2, len(art) - 1} {
		g := New(Config{})
		if err := g.Load(bytes.NewReader(art[:n]), decCount); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrBadFormat", n, err)
		}
	}
}

// TestMemberKindRoundTrip pins the FLEET2 member-kind byte: each
// member's kind survives save/load independently, and the decoder is
// handed exactly the kind its encoder recorded.
func TestMemberKindRoundTrip(t *testing.T) {
	f := New(Config{})
	if err := f.Add("a", &countStage{driftEvery: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("b", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	// Smuggle driftEvery through the kind byte: only the sample count is
	// in the payload, so a dropped or reordered kind cannot go unnoticed.
	enc := func(id string, s core.Streaming, w io.Writer) (byte, error) {
		c := s.(*countStage)
		if err := putU32(w, uint32(c.samples)); err != nil {
			return 0, err
		}
		return byte(c.driftEvery), nil
	}
	dec := func(id string, kind byte, r io.Reader) (core.Streaming, error) {
		n, err := getU32(r)
		if err != nil {
			return nil, err
		}
		return &countStage{samples: int(n), driftEvery: int(kind)}, nil
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, enc); err != nil {
		t.Fatal(err)
	}
	g := New(Config{})
	if err := g.Load(bytes.NewReader(buf.Bytes()), dec); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]int{"a": 1, "b": 2} {
		if err := g.Do(id, func(s core.Streaming) error {
			if got := s.(*countStage).driftEvery; got != want {
				t.Errorf("%s: kind round-tripped to %d, want %d", id, got, want)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadFleet1BackwardCompat hand-assembles a FLEET1 artifact (no
// kind byte) and checks it still loads, with every member decoding as
// the implicit kind 0.
func TestLoadFleet1BackwardCompat(t *testing.T) {
	var mbuf bytes.Buffer
	inner := ckpt.NewWriter(&mbuf)
	if err := binary.Write(inner, binary.LittleEndian, []uint32{5, 3}); err != nil {
		t.Fatal(err)
	}
	if err := inner.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	if _, err := cw.Write([]byte("FLEET1")); err != nil {
		t.Fatal(err)
	}
	if err := putU32(cw, 1); err != nil {
		t.Fatal(err)
	}
	if err := putU32(cw, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(cw, "s"); err != nil {
		t.Fatal(err)
	}
	if err := putU64(cw, uint64(mbuf.Len())); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(mbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteFooter(); err != nil {
		t.Fatal(err)
	}

	g := New(Config{})
	if err := g.Load(bytes.NewReader(buf.Bytes()), decCount); err != nil {
		t.Fatal(err)
	}
	if err := g.Do("s", func(s core.Streaming) error {
		c := s.(*countStage)
		if c.samples != 5 || c.driftEvery != 3 {
			t.Errorf("FLEET1 member decoded as %+v", c)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestExportImportMember locks the migration handoff: export removes
// the member atomically with a sample-boundary snapshot, import resumes
// it elsewhere with bit-identical continuation and carried-over
// lifetime counters — zero lost, zero double-counted.
func TestExportImportMember(t *testing.T) {
	f := New(Config{})
	if err := f.Add("s", &countStage{driftEvery: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", samples(7, 0)); err != nil {
		t.Fatal(err)
	}

	kind, cohort, payload, smp, dr, err := f.ExportMember("s", encCount)
	_ = cohort
	if err != nil {
		t.Fatal(err)
	}
	if kind != 0 || smp != 7 || dr != 2 {
		t.Fatalf("export kind=%d samples=%d drifts=%d, want 0/7/2", kind, smp, dr)
	}
	if _, err := f.ProcessBatch("s", samples(1, 0)); err == nil {
		t.Fatal("exported stream still accepts samples on the source")
	}
	if f.Len() != 0 {
		t.Fatalf("source Len = %d after export, want 0", f.Len())
	}

	g := New(Config{})
	if err := g.ImportMember("s", kind, "", payload, smp, dr, decCount); err != nil {
		t.Fatal(err)
	}
	got, err := g.ProcessBatch("s", samples(5, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical continuation: an unmigrated reference stage fed the
	// same 12 samples must agree on the last 5 results.
	ref := &countStage{driftEvery: 3}
	var want []core.Result
	for _, x := range samples(7, 0) {
		ref.Process(x)
	}
	for _, x := range samples(5, 0) {
		want = append(want, ref.Process(x))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-import results differ from the unmigrated reference")
	}
	// Counter carry-over: lifetime counts continue across the move.
	s2, d2, err := g.MemberStats("s")
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 12 || d2 != 4 {
		t.Fatalf("post-import stats = %d/%d, want 12/4", s2, d2)
	}
	if m := g.Metrics(); m.Samples != 12 || m.Drifts != 4 {
		t.Fatalf("roll-up after import = %d/%d, want 12/4", m.Samples, m.Drifts)
	}
}

// TestExportMemberFailureRollsBack: a failed encode must leave the
// fleet exactly as it was — the member re-registered and processable.
func TestExportMemberFailureRollsBack(t *testing.T) {
	f := New(Config{})
	if err := f.Add("s", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encode failed")
	encFail := func(id string, s core.Streaming, w io.Writer) (byte, error) { return 0, boom }
	if _, _, _, _, _, err := f.ExportMember("s", encFail); !errors.Is(err, boom) {
		t.Fatalf("export err = %v, want the encoder's error", err)
	}
	if _, err := f.ProcessBatch("s", samples(3, 0)); err != nil {
		t.Fatalf("member unusable after failed export: %v", err)
	}
	if s, _, err := f.MemberStats("s"); err != nil || s != 3 {
		t.Fatalf("stats after rollback = %d, %v", s, err)
	}
}

// TestExportMemberCollision: if Add re-created the id during a failed
// export, the rollback must not silently discard either member — the
// new registration keeps the slot and the export reports the collision
// as a typed error. (The old rollback's bare `if !exists` branch
// dropped the original member and its lifetime counters without a
// trace.)
func TestExportMemberCollision(t *testing.T) {
	f := New(Config{})
	if err := f.Add("s", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", samples(6, 0)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encode failed")
	usurper := &countStage{driftEvery: 100}
	encCollide := func(id string, s core.Streaming, w io.Writer) (byte, error) {
		// The id is out of the registry while the encoder runs, so a
		// concurrent Add succeeds — simulate it inline.
		if err := f.Add(id, usurper); err != nil {
			t.Errorf("re-Add during export: %v", err)
		}
		return 0, boom
	}
	_, _, _, _, _, err := f.ExportMember("s", encCollide)
	if !errors.Is(err, ErrExportCollision) {
		t.Fatalf("export err = %v, want ErrExportCollision", err)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("export err = %v, should also wrap the encode error", err)
	}
	// The new registration survives and is the one processing samples.
	if f.Len() != 1 {
		t.Fatalf("Len = %d after collision, want 1", f.Len())
	}
	if _, err := f.ProcessBatch("s", samples(2, 0)); err != nil {
		t.Fatalf("new member unusable after collision: %v", err)
	}
	if usurper.samples != 2 {
		t.Fatalf("usurper samples = %d, want 2 (original member resurrected?)", usurper.samples)
	}
	// The original's lifetime counters are gone — fresh member stats.
	if s, _, err := f.MemberStats("s"); err != nil || s != 2 {
		t.Fatalf("stats after collision = %d, %v; want 2 (new member's own)", s, err)
	}
}

// TestImportMemberCorruption: a corrupt payload must fail with
// ErrBadFormat and register nothing.
func TestImportMemberCorruption(t *testing.T) {
	f := New(Config{})
	if err := f.Add("s", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	kind, cohort, payload, smp, dr, err := f.ExportMember("s", encCount)
	_ = cohort
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(payload); pos++ {
		bad := append([]byte(nil), payload...)
		bad[pos] ^= 0x40
		g := New(Config{})
		if err := g.ImportMember("s", kind, "", bad, smp, dr, decCount); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadFormat", pos, err)
		}
		if g.Len() != 0 {
			t.Fatalf("flip at byte %d: corrupt import registered a member", pos)
		}
	}
	// Trailing garbage after the footer must also fail.
	g := New(Config{})
	if err := g.ImportMember("s", kind, "", append(payload, 0), smp, dr, decCount); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("trailing byte: err = %v, want ErrBadFormat", err)
	}
}

// blockingStage parks every Process call on a gate so tests can hold a
// batch mid-flight deterministically.
type blockingStage struct {
	gate    chan struct{} // each Process call consumes one token
	entered chan struct{} // signalled on Process entry
	n       int
}

func (b *blockingStage) Process(x []float64) core.Result {
	b.entered <- struct{}{}
	<-b.gate
	b.n++
	return core.Result{DriftDetected: true, Phase: core.Monitoring}
}

func (b *blockingStage) MemoryBytes() int { return 8 }

func (b *blockingStage) Health() health.Snapshot {
	return health.Snapshot{SamplesSeen: b.n, PFinite: true, Phase: "monitoring"}
}

// TestScrapeDoesNotBlockRegistry is the regression test for the
// eachMember lock-holding bug: a Health (or /metrics) scrape parked on
// one member's lock behind a long batch used to hold the shard read
// lock the whole time, so Add/Remove on that shard stalled with it. The
// fix snapshots the member set and releases the shard lock before
// visiting, so registry mutation proceeds while the scrape waits.
func TestScrapeDoesNotBlockRegistry(t *testing.T) {
	f := New(Config{Shards: 1}) // one shard: every stream contends on the same registry lock
	st := &blockingStage{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	if err := f.Add("busy", st); err != nil {
		t.Fatal(err)
	}

	batchDone := make(chan struct{})
	go func() {
		defer close(batchDone)
		if _, err := f.ProcessBatch("busy", samples(1, 0)); err != nil {
			t.Error(err)
		}
	}()
	<-st.entered // the batch holds the member lock, parked in Process

	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		f.Health()
	}()
	// Let the scrape reach the busy member and park on its lock.
	time.Sleep(20 * time.Millisecond)

	addDone := make(chan error, 1)
	go func() { addDone <- f.Add("other", &countStage{}) }()
	select {
	case err := <-addDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Add blocked behind a Health scrape stalled on a busy member of the same shard")
	}

	close(st.gate)
	<-batchDone
	<-healthDone
}

// TestRemoveWaitsForInFlightBatch locks the removal contract: Remove
// must not return while a batch is still mid-flight on the removed
// member, and the final counts it reports must include that batch. The
// pre-fix Remove took only the shard lock, so a "removed" stream could
// keep emitting drift events after Remove returned.
func TestRemoveWaitsForInFlightBatch(t *testing.T) {
	f := New(Config{})
	st := &blockingStage{gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	if err := f.Add("s", st); err != nil {
		t.Fatal(err)
	}
	ch := f.Subscribe()

	batchDone := make(chan error, 1)
	go func() {
		_, err := f.ProcessBatch("s", samples(1, 0))
		batchDone <- err
	}()
	<-st.entered // the batch now holds the member lock, parked in Process

	type rm struct {
		samples, drifts uint64
		ok              bool
	}
	removed := make(chan rm, 1)
	go func() {
		s, d, ok := f.Remove("s")
		removed <- rm{s, d, ok}
	}()

	select {
	case <-removed:
		t.Fatal("Remove returned while a batch was still mid-flight on the removed member")
	case <-time.After(50 * time.Millisecond):
		// Remove is (correctly) blocked on the member lock.
	}

	close(st.gate) // release the in-flight Process call
	if err := <-batchDone; err != nil {
		t.Fatal(err)
	}
	r := <-removed
	if !r.ok || r.samples != 1 || r.drifts != 1 {
		t.Fatalf("Remove final counts = %+v, want samples=1 drifts=1 ok=true", r)
	}
	// The in-flight batch's drift event was emitted before Remove
	// returned — nothing can arrive afterwards.
	select {
	case <-ch:
	default:
		t.Fatal("drift event from the in-flight batch missing at Remove return")
	}
}

// TestRemoveProcessBatchRace hammers Remove against concurrent
// ProcessBatch calls under the race detector and checks the accounting
// invariant: the final counts Remove reports equal exactly the samples
// the racing producers successfully processed — no batch slips through
// after removal.
func TestRemoveProcessBatchRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		f := New(Config{Shards: 2})
		if err := f.Add("s", &countStage{driftEvery: 3}); err != nil {
			t.Fatal(err)
		}
		var processed atomic.Uint64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for {
					rs, err := f.ProcessBatch("s", samples(5, 0))
					if err != nil {
						return // stream removed
					}
					processed.Add(uint64(len(rs)))
				}
			}()
		}
		removed := make(chan uint64, 1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s, _, ok := f.Remove("s")
			if !ok {
				t.Error("Remove lost the race it cannot lose")
			}
			removed <- s
		}()
		close(start)
		wg.Wait()
		if got, want := <-removed, processed.Load(); got != want {
			t.Fatalf("iter %d: Remove reported %d samples, producers processed %d", iter, got, want)
		}
	}
}

// TestMemberOverheadDerivedFromSizeof pins the registry's per-member
// accounting to the real struct layout so the constant cannot rot: the
// member struct itself, the map value pointer, and the string-header
// part of the map key (the key's bytes are charged per member as
// len(id)).
func TestMemberOverheadDerivedFromSizeof(t *testing.T) {
	want := int(unsafe.Sizeof(member{})) +
		int(unsafe.Sizeof((*member)(nil))) +
		int(unsafe.Sizeof(""))
	if memberOverheadBytes != want {
		t.Fatalf("memberOverheadBytes = %d, want %d (member struct %d + map value pointer %d + string header %d)",
			memberOverheadBytes, want,
			unsafe.Sizeof(member{}), unsafe.Sizeof((*member)(nil)), unsafe.Sizeof(""))
	}
	f := New(Config{})
	st := &countStage{}
	if err := f.Add("stream-00", st); err != nil {
		t.Fatal(err)
	}
	if got, want := f.MemoryBytes(), st.MemoryBytes()+memberOverheadBytes+len("stream-00"); got != want {
		t.Fatalf("fleet MemoryBytes = %d, want %d", got, want)
	}
}

func TestMetricsRollup(t *testing.T) {
	f := New(Config{})
	for i, n := range []int{10, 20, 30} {
		id := fmt.Sprintf("m%d", i)
		if err := f.Add(id, &countStage{driftEvery: 10}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch(id, samples(n, 0)); err != nil {
			t.Fatal(err)
		}
	}
	m := f.Metrics()
	if m.Streams != 3 || m.Samples != 60 || m.Drifts != 6 {
		t.Fatalf("roll-up = %+v, want 3 streams, 60 samples, 6 drifts", m)
	}
	if got := m.PerStream["m2"]; got.Samples != 30 || got.Drifts != 3 || got.Stage != nil {
		t.Fatalf("m2 = %+v, want 30/3 with no stage instrumentation", got)
	}
	if m.MemoryBytes != f.MemoryBytes() {
		t.Fatalf("metrics memory %d != audit %d", m.MemoryBytes, f.MemoryBytes())
	}
	if len(f.Traces()) != 0 {
		t.Fatal("uninstrumented fleet must have no traces")
	}
}

// TestInstrumentedFleet locks the opt-in instrumentation path: members
// wrapped at Add, per-stream stage metrics in the roll-up, and drift
// traces capped at TraceDepth.
func TestInstrumentedFleet(t *testing.T) {
	f := New(Config{Instrument: true, SampleEvery: 4, TraceDepth: 3})
	if err := f.Add("s", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("s", samples(20, 0)); err != nil {
		t.Fatal(err)
	}
	m := f.Metrics()
	sm := m.PerStream["s"]
	if sm.Stage == nil {
		t.Fatal("instrumented fleet must expose stage metrics")
	}
	if sm.Stage.Samples != 20 || sm.Stage.Drifts != 10 {
		t.Fatalf("stage metrics = %+v", sm.Stage)
	}
	if sm.Stage.Latency.Count != 5 {
		t.Fatalf("latency sampled %d times, want 5 (every 4th of 20)", sm.Stage.Latency.Count)
	}
	tr := f.Traces()["s"]
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want cap 3", len(tr))
	}
	if tr[2].Index != 19 || tr[2].StreamID != "s" {
		t.Fatalf("newest trace entry = %+v", tr[2])
	}
	// Scheduling results are identical to an uninstrumented stage.
	ref := &countStage{driftEvery: 2}
	var want []core.Result
	for _, x := range samples(20, 0) {
		want = append(want, ref.Process(x))
	}
	g := New(Config{Instrument: true})
	if err := g.Add("s", &countStage{driftEvery: 2}); err != nil {
		t.Fatal(err)
	}
	got, err := g.ProcessBatch("s", samples(20, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("instrumented fleet results differ from direct stage results")
	}
}

// TestFleetMetricsConcurrentScrape drives an instrumented member while
// another goroutine scrapes Metrics and Traces — the supported
// concurrent-read path, serialised by the member lock (the stage's own
// counters are plain single-writer fields). Run under -race.
func TestFleetMetricsConcurrentScrape(t *testing.T) {
	f := New(Config{Instrument: true, SampleEvery: 2, TraceDepth: 8})
	if err := f.Add("s", &countStage{driftEvery: 7}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if _, err := f.ProcessBatch("s", samples(10, 0)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		m := f.Metrics()
		sm := m.PerStream["s"]
		if sm.Drifts > sm.Samples || (sm.Stage != nil && sm.Stage.Samples != sm.Samples) {
			t.Errorf("scrape inconsistent: %+v / %+v", sm, sm.Stage)
			break
		}
		f.Traces()
	}
	<-done
	m := f.Metrics()
	if sm := m.PerStream["s"]; sm.Samples != 5000 || sm.Stage.Drifts != 5000/7 {
		t.Fatalf("final metrics = %+v / %+v", sm, sm.Stage)
	}
}

func TestHealthAggregate(t *testing.T) {
	a := health.Snapshot{SamplesSeen: 10, Rejected: 1, PTraceMax: 2, PFinite: true,
		ScoreSamples: 10, ScoreMean: 1, ScoreStd: 0, Phase: "monitoring"}
	b := health.Snapshot{SamplesSeen: 30, Clamped: 2, PTraceMax: 5, PFinite: true,
		ScoreSamples: 30, ScoreMean: 3, ScoreStd: 0, Phase: "reconstructing"}
	agg := health.Aggregate([]health.Snapshot{a, b})
	if agg.SamplesSeen != 40 || agg.Rejected != 1 || agg.Clamped != 2 {
		t.Fatalf("counter sums: %+v", agg)
	}
	if agg.PTraceMax != 5 || !agg.PFinite || agg.Phase != "reconstructing" {
		t.Fatalf("max/and/phase roll-up: %+v", agg)
	}
	// Pooled mean of (10×1, 30×3) is 2.5; pooled variance of two point
	// masses at 1 and 3 with those weights is 0.75.
	if agg.ScoreMean != 2.5 {
		t.Fatalf("pooled mean = %v", agg.ScoreMean)
	}
	if d := agg.ScoreStd*agg.ScoreStd - 0.75; d > 1e-12 || d < -1e-12 {
		t.Fatalf("pooled variance = %v, want 0.75", agg.ScoreStd*agg.ScoreStd)
	}
	unhealthy := health.Aggregate([]health.Snapshot{a, {PFinite: false}})
	if unhealthy.Healthy() {
		t.Fatal("one non-finite member must make the aggregate unhealthy")
	}
	idle := health.Aggregate(nil)
	if !idle.Healthy() || idle.Phase != "monitoring" {
		t.Fatalf("empty aggregate: %+v", idle)
	}
}

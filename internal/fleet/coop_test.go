package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/core"
	"edgedrift/internal/oselm"
)

// mergeStage is a countStage that additionally carries mergeable state:
// one uint64 "model value" whose merge semantics are summation. It
// stands in for a full Detector so cohort bookkeeping, warm-recovery
// policy and the FLEET3 container can be tested without training
// models; merge exactness itself is pinned in internal/oselm.
type mergeStage struct {
	countStage
	mu     sync.Mutex
	val    uint64
	fprint uint64
	phase  core.Phase
	merges int
}

func newMergeStage(val, fprint uint64) *mergeStage {
	return &mergeStage{val: val, fprint: fprint, phase: core.Monitoring}
}

func (m *mergeStage) MergeFingerprint() uint64 { return m.fprint }

func (m *mergeStage) PhaseNow() core.Phase {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.phase
}

func (m *mergeStage) setPhase(p core.Phase) {
	m.mu.Lock()
	m.phase = p
	m.mu.Unlock()
}

func (m *mergeStage) ExportMergeState() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], m.val)
	return b[:], nil
}

func (m *mergeStage) MergeSeed(states [][]byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum uint64
	for _, st := range states {
		if len(st) != 8 {
			return &oselm.MergeError{Reason: fmt.Sprintf("state is %d bytes, want 8", len(st))}
		}
		sum += binary.LittleEndian.Uint64(st)
	}
	m.val = sum
	m.merges++
	return nil
}

func (m *mergeStage) value() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.val
}

func (m *mergeStage) mergeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.merges
}

const mergeKind byte = 7

func encMerge(id string, s core.Streaming, w io.Writer) (byte, error) {
	m := s.(*mergeStage)
	m.mu.Lock()
	defer m.mu.Unlock()
	err := binary.Write(w, binary.LittleEndian, []uint64{m.val, m.fprint})
	return mergeKind, err
}

func decMerge(id string, kind byte, r io.Reader) (core.Streaming, error) {
	if kind != mergeKind {
		return nil, fmt.Errorf("unexpected member kind %d", kind)
	}
	var u [2]uint64
	if err := binary.Read(r, binary.LittleEndian, u[:]); err != nil {
		return nil, err
	}
	return newMergeStage(u[0], u[1]), nil
}

func TestCohortRegistry(t *testing.T) {
	f := New(Config{})
	for _, id := range []string{"a", "b", "c"} {
		if err := f.AddMember(id, newMergeStage(1, 99), MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Add("solo", newMergeStage(1, 99)); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Cohort("a"); got != "fans" {
		t.Fatalf("Cohort(a) = %q, want fans", got)
	}
	if got, _ := f.Cohort("solo"); got != "" {
		t.Fatalf("Cohort(solo) = %q, want empty", got)
	}
	if got := f.CohortMembers("fans"); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("CohortMembers = %v", got)
	}
	if _, _, ok := f.Remove("b"); !ok {
		t.Fatal("Remove failed")
	}
	if got := f.CohortMembers("fans"); len(got) != 2 {
		t.Fatalf("CohortMembers after Remove = %v", got)
	}
	if got := f.CohortMembers("nosuch"); len(got) != 0 {
		t.Fatalf("CohortMembers(nosuch) = %v", got)
	}
}

// TestCohortRequiresMerger pins the loud rejection: a detect-only stage
// (no mergeable state — the Q16.16 port's shape) cannot join a cohort,
// and the error matches oselm.ErrMergeIncompatible.
func TestCohortRequiresMerger(t *testing.T) {
	f := New(Config{})
	err := f.AddMember("q", &countStage{}, MemberConfig{Cohort: "fans"})
	if err == nil {
		t.Fatal("detect-only member joined a cohort")
	}
	if !errors.Is(err, oselm.ErrMergeIncompatible) {
		t.Fatalf("err = %v, want ErrMergeIncompatible", err)
	}
	if f.Len() != 0 {
		t.Fatal("rejected member was registered anyway")
	}
	// Without a cohort the same stage is fine.
	if err := f.Add("q", &countStage{}); err != nil {
		t.Fatal(err)
	}
}

// TestWarmRecovery drives a member to a drift detection and checks the
// cooperative seed: the drifted member's model is replaced by the merge
// of its cohort peers' states, and the recovery is counted exactly once
// at the fleet level and once on the member (via the merge counter).
func TestWarmRecovery(t *testing.T) {
	f := New(Config{WarmRecovery: true})
	target := newMergeStage(1, 99)
	target.driftEvery = 3
	peers := []*mergeStage{newMergeStage(10, 99), newMergeStage(20, 99)}
	if err := f.AddMember("t", target, MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	for i, p := range peers {
		if err := f.AddMember(fmt.Sprintf("p%d", i), p, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.ProcessBatch("t", samples(3, 0)); err != nil {
		t.Fatal(err)
	}
	if got := target.value(); got != 30 {
		t.Fatalf("seeded value = %d, want 30 (sum of peers)", got)
	}
	if got := target.mergeCount(); got != 1 {
		t.Fatalf("merge count = %d, want 1", got)
	}
	m := f.Metrics()
	if m.WarmRecoveries != 1 || m.ColdFallbacks != 0 {
		t.Fatalf("WarmRecoveries=%d ColdFallbacks=%d, want 1/0", m.WarmRecoveries, m.ColdFallbacks)
	}
	if h := f.Health(); h.WarmRecoveries != 1 {
		t.Fatalf("health WarmRecoveries = %d, want 1", h.WarmRecoveries)
	}
}

// TestWarmRecoveryOffByDefault: without Config.WarmRecovery a drift
// changes nothing cooperatively — the pre-cooperation behaviour.
func TestWarmRecoveryOffByDefault(t *testing.T) {
	f := New(Config{})
	target := newMergeStage(1, 99)
	target.driftEvery = 3
	peer := newMergeStage(10, 99)
	if err := f.AddMember("t", target, MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddMember("p", peer, MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ProcessBatch("t", samples(3, 0)); err != nil {
		t.Fatal(err)
	}
	if got := target.value(); got != 1 {
		t.Fatalf("value changed to %d with cooperation off", got)
	}
	if m := f.Metrics(); m.WarmRecoveries != 0 || m.ColdFallbacks != 0 {
		t.Fatalf("counters moved with cooperation off: %+v", m)
	}
}

// TestColdFallback covers every no-donor path: no cohort peers at all,
// fingerprint-incompatible peers, and mid-reconstruction peers. Each
// drift must fall back to cold reconstruction, counted, and the
// ineligible peers must be counted as skipped.
func TestColdFallback(t *testing.T) {
	t.Run("no peers", func(t *testing.T) {
		f := New(Config{WarmRecovery: true})
		target := newMergeStage(1, 99)
		target.driftEvery = 3
		if err := f.AddMember("t", target, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch("t", samples(3, 0)); err != nil {
			t.Fatal(err)
		}
		if m := f.Metrics(); m.ColdFallbacks != 1 || m.WarmRecoveries != 0 {
			t.Fatalf("ColdFallbacks=%d WarmRecoveries=%d, want 1/0", m.ColdFallbacks, m.WarmRecoveries)
		}
	})
	t.Run("incompatible fingerprint", func(t *testing.T) {
		f := New(Config{WarmRecovery: true})
		target := newMergeStage(1, 99)
		target.driftEvery = 3
		if err := f.AddMember("t", target, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddMember("p", newMergeStage(10, 77), MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch("t", samples(3, 0)); err != nil {
			t.Fatal(err)
		}
		m := f.Metrics()
		if m.ColdFallbacks != 1 || m.PeersSkipped != 1 || m.WarmRecoveries != 0 {
			t.Fatalf("metrics = %+v, want cold=1 skipped=1 warm=0", m)
		}
		if target.value() != 1 {
			t.Fatal("incompatible peer state leaked into the target")
		}
	})
	t.Run("reconstructing peer excluded", func(t *testing.T) {
		f := New(Config{WarmRecovery: true})
		target := newMergeStage(1, 99)
		target.driftEvery = 3
		busy := newMergeStage(10, 99)
		busy.setPhase(core.Reconstructing)
		ok := newMergeStage(20, 99)
		if err := f.AddMember("t", target, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddMember("busy", busy, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if err := f.AddMember("ok", ok, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.ProcessBatch("t", samples(3, 0)); err != nil {
			t.Fatal(err)
		}
		if got := target.value(); got != 20 {
			t.Fatalf("seed = %d, want 20 (only the monitoring peer)", got)
		}
		m := f.Metrics()
		if m.WarmRecoveries != 1 || m.PeersSkipped != 1 {
			t.Fatalf("metrics = %+v, want warm=1 skipped=1", m)
		}
	})
}

func TestExportMergeStateErrors(t *testing.T) {
	f := New(Config{})
	if err := f.Add("plain", &countStage{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ExportMergeState("plain"); err == nil {
		t.Fatal("export from a detect-only member succeeded")
	} else if !errors.Is(err, oselm.ErrMergeIncompatible) {
		t.Fatalf("err = %v, want ErrMergeIncompatible", err)
	}
	busy := newMergeStage(1, 99)
	busy.setPhase(core.Reconstructing)
	if err := f.Add("busy", busy); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ExportMergeState("busy"); err == nil {
		t.Fatal("export from a reconstructing member succeeded")
	}
	if _, _, err := f.ExportMergeState("nosuch"); err == nil {
		t.Fatal("export from an unknown member succeeded")
	}
	okm := newMergeStage(42, 99)
	if err := f.Add("ok", okm); err != nil {
		t.Fatal(err)
	}
	st, fp, err := f.ExportMergeState("ok")
	if err != nil {
		t.Fatal(err)
	}
	if fp != 99 || binary.LittleEndian.Uint64(st) != 42 {
		t.Fatalf("exported state=%v fprint=%d", st, fp)
	}
	if err := f.MergeSeedMember("plain", [][]byte{st}); !errors.Is(err, oselm.ErrMergeIncompatible) {
		t.Fatalf("seed into detect-only member: err = %v, want ErrMergeIncompatible", err)
	}
}

func TestAntiEntropy(t *testing.T) {
	f := New(Config{})
	ms := []*mergeStage{newMergeStage(1, 99), newMergeStage(2, 99), newMergeStage(4, 99)}
	for i, m := range ms {
		if err := f.AddMember(fmt.Sprintf("m%d", i), m, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	seeded, err := f.AntiEntropy("fans")
	if err != nil {
		t.Fatal(err)
	}
	if seeded != 3 {
		t.Fatalf("seeded = %d, want 3", seeded)
	}
	for i, m := range ms {
		if got := m.value(); got != 7 {
			t.Fatalf("m%d converged to %d, want 7 (sum of all)", i, got)
		}
	}
	if _, err := f.AntiEntropy("nosuch"); err == nil {
		t.Fatal("anti-entropy on an unknown cohort succeeded")
	}
	// A lone member has nobody to converge with.
	g := New(Config{})
	if err := g.AddMember("solo", newMergeStage(1, 1), MemberConfig{Cohort: "c"}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AntiEntropy("c"); err == nil {
		t.Fatal("anti-entropy with one member succeeded")
	}
}

// TestFleet4CohortRoundTrip pins the current container: cohorts survive
// save/load, the loaded fleet re-derives fingerprints from the decoded
// stages, and save-load-save is byte-identical.
func TestFleet4CohortRoundTrip(t *testing.T) {
	f := New(Config{})
	if err := f.AddMember("a", newMergeStage(5, 99), MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddMember("b", newMergeStage(6, 99), MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("c", newMergeStage(7, 42)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, encMerge); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("FLEET4")) {
		t.Fatal("Save did not write a FLEET4 container")
	}

	g := New(Config{})
	if err := g.Load(bytes.NewReader(buf.Bytes()), decMerge); err != nil {
		t.Fatal(err)
	}
	for id, want := range map[string]string{"a": "fans", "b": "fans", "c": ""} {
		if got, err := g.Cohort(id); err != nil || got != want {
			t.Fatalf("Cohort(%s) = %q, %v; want %q", id, got, err, want)
		}
	}
	if got := g.CohortMembers("fans"); len(got) != 2 {
		t.Fatalf("CohortMembers after load = %v", got)
	}
	if fp, _ := g.MemberFingerprint("a"); fp != 99 {
		t.Fatalf("fingerprint re-derived as %d, want 99", fp)
	}

	var buf2 bytes.Buffer
	if err := g.Save(&buf2, encMerge); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("save-load-save is not byte-identical")
	}
}

// TestFleet3Corruption extends the byte-flip sweep to a container with
// cohort fields: every flip — cohort bytes and fingerprint included —
// must be caught by a checksum.
func TestFleet3Corruption(t *testing.T) {
	f := New(Config{})
	if err := f.AddMember("a", newMergeStage(5, 99), MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf, encMerge); err != nil {
		t.Fatal(err)
	}
	art := buf.Bytes()
	for pos := 0; pos < len(art); pos++ {
		bad := append([]byte(nil), art...)
		bad[pos] ^= 0x40
		g := New(Config{})
		if err := g.Load(bytes.NewReader(bad), decMerge); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flip at byte %d: err = %v, want ErrBadFormat", pos, err)
		}
	}
}

// TestLoadFleet2BackwardCompat hand-assembles a FLEET2 artifact (kind
// byte, no cohort fields) and checks it still loads with the empty
// cohort.
func TestLoadFleet2BackwardCompat(t *testing.T) {
	var mbuf bytes.Buffer
	inner := ckpt.NewWriter(&mbuf)
	if err := binary.Write(inner, binary.LittleEndian, []uint64{5, 99}); err != nil {
		t.Fatal(err)
	}
	if err := inner.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	if _, err := cw.Write([]byte("FLEET2")); err != nil {
		t.Fatal(err)
	}
	if err := putU32(cw, 1); err != nil {
		t.Fatal(err)
	}
	if err := putU32(cw, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := io.WriteString(cw, "s"); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write([]byte{mergeKind}); err != nil {
		t.Fatal(err)
	}
	if err := putU64(cw, uint64(mbuf.Len())); err != nil {
		t.Fatal(err)
	}
	if _, err := cw.Write(mbuf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteFooter(); err != nil {
		t.Fatal(err)
	}

	g := New(Config{})
	if err := g.Load(bytes.NewReader(buf.Bytes()), decMerge); err != nil {
		t.Fatal(err)
	}
	if got, err := g.Cohort("s"); err != nil || got != "" {
		t.Fatalf("Cohort = %q, %v; want empty", got, err)
	}
	if fp, _ := g.MemberFingerprint("s"); fp != 99 {
		t.Fatalf("fingerprint = %d, want 99", fp)
	}
}

// TestCohortMigrationRoundTrip: ExportMember carries the cohort out and
// ImportMember re-joins it, so a migrated stream keeps cooperating.
func TestCohortMigrationRoundTrip(t *testing.T) {
	f := New(Config{})
	if err := f.AddMember("s", newMergeStage(5, 99), MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	kind, cohort, payload, smp, dr, err := f.ExportMember("s", encMerge)
	if err != nil {
		t.Fatal(err)
	}
	if cohort != "fans" || kind != mergeKind {
		t.Fatalf("exported kind=%d cohort=%q", kind, cohort)
	}
	if got := f.CohortMembers("fans"); len(got) != 0 {
		t.Fatalf("cohort still lists exported member: %v", got)
	}
	g := New(Config{})
	if err := g.ImportMember("s", kind, cohort, payload, smp, dr, decMerge); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Cohort("s"); got != "fans" {
		t.Fatalf("imported cohort = %q", got)
	}
	if got := g.CohortMembers("fans"); len(got) != 1 || got[0] != "s" {
		t.Fatalf("cohort after import = %v", got)
	}
}

// TestCoopConcurrency races batches (with warm recovery firing), state
// export, anti-entropy and Remove against each other. Run under -race;
// the assertions are liveness plus no lost member.
func TestCoopConcurrency(t *testing.T) {
	f := New(Config{WarmRecovery: true, Shards: 4})
	const n = 8
	for i := 0; i < n; i++ {
		st := newMergeStage(uint64(i+1), 99)
		st.driftEvery = 5
		if err := f.AddMember(fmt.Sprintf("m%d", i), st, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("m%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 30; j++ {
				if _, err := f.ProcessBatch(id, samples(3, 0)); err != nil {
					return // removed mid-run; fine
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			for i := 0; i < n; i++ {
				f.ExportMergeState(fmt.Sprintf("m%d", i)) //nolint:errcheck
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 10; j++ {
			f.AntiEntropy("fans") //nolint:errcheck
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Remove("m0")
		f.AddMember("m0b", newMergeStage(3, 99), MemberConfig{Cohort: "fans"}) //nolint:errcheck
	}()
	wg.Wait()
	if got := len(f.CohortMembers("fans")); got != n {
		t.Fatalf("cohort has %d members after churn, want %d", got, n)
	}
}

// TestStartAntiEntropy exercises the periodic driver end to end.
func TestStartAntiEntropy(t *testing.T) {
	f := New(Config{})
	ms := []*mergeStage{newMergeStage(1, 99), newMergeStage(2, 99)}
	for i, m := range ms {
		if err := f.AddMember(fmt.Sprintf("m%d", i), m, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	stop := f.StartAntiEntropy(time.Millisecond)
	defer stop()
	// The additive mergeStage doubles on every reconcile round, so the
	// values never settle — the periodic driver's job is only to keep
	// calling AntiEntropy. Wait until both members have been reseeded a
	// few times; the single-round convergence semantics are pinned by
	// TestAntiEntropy.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ms[0].mergeCount() >= 2 && ms[1].mergeCount() >= 2 {
			stop()
			stop() // idempotent
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("periodic rounds never ran: merges %d, %d", ms[0].mergeCount(), ms[1].mergeCount())
}

// TestStartAntiEntropyRestart: after stop() returns, a second
// StartAntiEntropy must drive fresh rounds — the stop of the first
// driver must not wedge the fleet for later ones.
func TestStartAntiEntropyRestart(t *testing.T) {
	f := New(Config{})
	ms := []*mergeStage{newMergeStage(1, 99), newMergeStage(2, 99)}
	for i, m := range ms {
		if err := f.AddMember(fmt.Sprintf("m%d", i), m, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}
	waitRounds := func(min int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if ms[0].mergeCount() >= min && ms[1].mergeCount() >= min {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("rounds never reached %d: merges %d, %d", min, ms[0].mergeCount(), ms[1].mergeCount())
	}

	stop := f.StartAntiEntropy(time.Millisecond)
	waitRounds(1)
	stop()
	stop() // idempotent

	// No rounds may run after stop has returned.
	quiesced := ms[0].mergeCount()
	time.Sleep(10 * time.Millisecond)
	if got := ms[0].mergeCount(); got != quiesced {
		t.Fatalf("rounds kept running after stop: %d -> %d", quiesced, got)
	}

	// A fresh driver on the same fleet runs again.
	stop2 := f.StartAntiEntropy(time.Millisecond)
	defer stop2()
	waitRounds(quiesced + 1)
}

// TestStartAntiEntropyConcurrent: two drivers started concurrently on
// one fleet, each stopped twice from separate goroutines, must neither
// race nor deadlock (run under -race via the Makefile race target; the
// PR 8 sync.Once fix covered only a double-stop of a single driver).
func TestStartAntiEntropyConcurrent(t *testing.T) {
	f := New(Config{})
	ms := []*mergeStage{newMergeStage(1, 99), newMergeStage(2, 99)}
	for i, m := range ms {
		if err := f.AddMember(fmt.Sprintf("m%d", i), m, MemberConfig{Cohort: "fans"}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stops := make([]func(), 2)
	for i := range stops {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stops[i] = f.StartAntiEntropy(time.Millisecond)
		}(i)
	}
	wg.Wait()

	// Let both drivers overlap on live rounds for a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && ms[0].mergeCount() < 2 {
		time.Sleep(time.Millisecond)
	}
	if ms[0].mergeCount() < 2 {
		t.Fatalf("concurrent drivers ran no rounds: merges %d", ms[0].mergeCount())
	}

	// Double-stop each driver from two goroutines at once.
	for _, stop := range stops {
		for k := 0; k < 2; k++ {
			wg.Add(1)
			go func(stop func()) {
				defer wg.Done()
				stop()
			}(stop)
		}
	}
	wg.Wait()
}

// TestCohortMemoryCharged: MemoryBytes moves when a cohort name is
// attached, pinning the accounting next to the Sizeof-derived constant.
func TestCohortMemoryCharged(t *testing.T) {
	base := New(Config{})
	if err := base.Add("s", newMergeStage(1, 1)); err != nil {
		t.Fatal(err)
	}
	withCohort := New(Config{})
	if err := withCohort.AddMember("s", newMergeStage(1, 1), MemberConfig{Cohort: "fans"}); err != nil {
		t.Fatal(err)
	}
	diff := withCohort.MemoryBytes() - base.MemoryBytes()
	if diff != len("fans") {
		t.Fatalf("cohort memory delta = %d, want %d", diff, len("fans"))
	}
}

package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/core"
)

// fleetMagicV1 identifies the original fleet container (FLEET1): the
// magic, a member count, then each member as (ID, length-prefixed
// payload) in sorted-ID order. Every member payload is written through
// its own nested ckpt.Writer and carries its own CRC32 footer, and the
// whole container — member footers included — is covered by one outer
// footer. A flipped bit therefore fails twice: once at the damaged
// member, once at the container level, and the member ID in the error
// says which stream's state is unusable. FLEET1 is load-only now; every
// member decodes with the implicit kind 0.
var fleetMagicV1 = [6]byte{'F', 'L', 'E', 'E', 'T', '1'}

// fleetMagicV2 is FLEET1 plus a one-byte member kind between each ID
// and its payload length, discriminating member encodings (a float
// Monitor artifact vs. a Q16.16 stage artifact) so mixed-precision
// fleets round-trip.
var fleetMagicV2 = [6]byte{'F', 'L', 'E', 'E', 'T', '2'}

// fleetMagicV3 is FLEET2 plus the cooperative-learning fields between
// each member's kind byte and its payload length: a length-prefixed
// cohort name and the member's u64 merge fingerprint at save time. The
// fingerprint is informational — a loader re-derives the live value
// from the decoded stage, which is what the cohort index uses — but it
// lets offline tooling group compatible members without decoding
// payloads. Save always writes FLEET3; Load accepts all three versions
// (FLEET1/2 members decode with the empty cohort).
var fleetMagicV3 = [6]byte{'F', 'L', 'E', 'E', 'T', '3'}

// fleetMagicV4 keeps FLEET3's container layout unchanged and adds the
// degraded member kind (the public wrapper's kind 2): a member that was
// demoted at save time carries its retained full-precision origin AND
// its reduced-precision twin in one payload, so a degraded fleet
// round-trips into a degraded fleet that still promotes bit-exactly.
// The magic is bumped anyway — a FLEET3-era loader would otherwise fail
// on the unknown kind byte deep inside a member instead of cleanly at
// the header. Save always writes FLEET4; Load accepts all four.
var fleetMagicV4 = [6]byte{'F', 'L', 'E', 'E', 'T', '4'}

// ErrBadFormat reports a stream that is not a serialised fleet of a
// known version, or one that is truncated or corrupt.
var ErrBadFormat = errors.New("fleet: not a serialised fleet (or corrupt artifact)")

// ErrExportCollision reports a failed ExportMember whose rollback found
// the id re-registered: between the deregistration and the encode
// failure, Add (or an import) created a new member under the same id.
// The new member wins the registry slot; the exported member and its
// lifetime counters are gone from the fleet, which the caller must know
// about rather than discover as silently reset sample counts.
var ErrExportCollision = errors.New("fleet: export rollback collision: id re-registered during export")

// Sanity bounds so a corrupt header fails as ErrBadFormat instead of
// demanding an absurd allocation.
const (
	maxLoadMembers = 1 << 20
	maxLoadIDLen   = 1 << 12
)

// EncodeFunc serialises one member's stage and reports the member-kind
// byte recorded alongside it. The fleet container is generic over the
// member type, so the caller supplies the encoding — the public Fleet
// wrapper maps Monitors to kind 0 and Q16.16 stages to kind 1.
type EncodeFunc func(id string, s core.Streaming, w io.Writer) (kind byte, err error)

// DecodeFunc reconstructs one member's stage from its payload, given
// the kind byte its encoder recorded (always 0 for FLEET1 artifacts).
// The reader is exactly the member's payload; reading past it fails.
type DecodeFunc func(id string, kind byte, r io.Reader) (core.Streaming, error)

// Save serialises the whole fleet to w in sorted-ID order (so identical
// fleets produce identical bytes). Each member is encoded while holding
// only that member's lock; streams are momentarily unblocked between
// members, so a snapshot taken under load is per-member consistent —
// every member's state is from a sample boundary — rather than a
// whole-fleet stop-the-world cut.
func (f *Fleet) Save(w io.Writer, enc EncodeFunc) error {
	ids := f.IDs()
	cw := ckpt.NewWriter(w)
	if _, err := cw.Write(fleetMagicV4[:]); err != nil {
		return err
	}
	if err := putU32(cw, uint32(len(ids))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, id := range ids {
		buf.Reset()
		var kind byte
		var cohort string
		var fprint uint64
		inner := ckpt.NewWriter(&buf)
		err := f.Do(id, func(s core.Streaming) error {
			var encErr error
			kind, encErr = enc(id, s, inner)
			return encErr
		})
		if err != nil {
			return fmt.Errorf("fleet: save %q: %w", id, err)
		}
		if m, merr := f.member(id); merr == nil {
			m.mu.Lock()
			cohort, fprint = m.cohort, m.fprint
			m.mu.Unlock()
		}
		if err := inner.WriteFooter(); err != nil {
			return fmt.Errorf("fleet: save %q: %w", id, err)
		}
		if err := putU32(cw, uint32(len(id))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, id); err != nil {
			return err
		}
		if _, err := cw.Write([]byte{kind}); err != nil {
			return err
		}
		if err := putU32(cw, uint32(len(cohort))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, cohort); err != nil {
			return err
		}
		if err := putU64(cw, fprint); err != nil {
			return err
		}
		if err := putU64(cw, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := cw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return cw.WriteFooter()
}

// Load reads a fleet container written by Save and registers every
// member into f via Add (typically f is fresh and empty; a duplicate ID
// fails). Any corruption — container or member level — fails with an
// error matching ErrBadFormat, naming the damaged member when one can
// be identified.
func (f *Fleet) Load(r io.Reader, dec DecodeFunc) error {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return badFormat(fmt.Errorf("load header: %w", err))
	}
	hasCohort := got == fleetMagicV3 || got == fleetMagicV4
	hasKind := got == fleetMagicV2 || hasCohort
	if got != fleetMagicV1 && !hasKind {
		return ErrBadFormat
	}
	cr := ckpt.NewReader(r)
	cr.Fold(got[:])
	count, err := getU32(cr)
	if err != nil {
		return badFormat(err)
	}
	if count > maxLoadMembers {
		return badFormat(fmt.Errorf("implausible member count %d", count))
	}
	for i := uint32(0); i < count; i++ {
		idLen, err := getU32(cr)
		if err != nil {
			return badFormat(err)
		}
		if idLen == 0 || idLen > maxLoadIDLen {
			return badFormat(fmt.Errorf("implausible ID length %d", idLen))
		}
		idBytes := make([]byte, idLen)
		if _, err := io.ReadFull(cr, idBytes); err != nil {
			return badFormat(err)
		}
		id := string(idBytes)
		var kind byte
		if hasKind {
			var kb [1]byte
			if _, err := io.ReadFull(cr, kb[:]); err != nil {
				return badFormat(fmt.Errorf("member %q: %w", id, err))
			}
			kind = kb[0]
		}
		var cohort string
		if hasCohort {
			clen, err := getU32(cr)
			if err != nil {
				return badFormat(fmt.Errorf("member %q: %w", id, err))
			}
			if clen > maxLoadIDLen {
				return badFormat(fmt.Errorf("member %q: implausible cohort length %d", id, clen))
			}
			if clen > 0 {
				cb := make([]byte, clen)
				if _, err := io.ReadFull(cr, cb); err != nil {
					return badFormat(fmt.Errorf("member %q: %w", id, err))
				}
				cohort = string(cb)
			}
			// The saved fingerprint is folded into the checksum but the
			// live value is re-derived from the decoded stage: the stage's
			// own bits are authoritative, not a label alongside them.
			if _, err := getU64(cr); err != nil {
				return badFormat(fmt.Errorf("member %q: %w", id, err))
			}
		}
		plen, err := getU64(cr)
		if err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		lim := &io.LimitedReader{R: cr, N: int64(plen)}
		inner := ckpt.NewReader(lim)
		s, err := dec(id, kind, inner)
		if err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		if err := inner.VerifyFooter(); err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		if lim.N != 0 {
			return badFormat(fmt.Errorf("member %q: %d payload bytes left unconsumed", id, lim.N))
		}
		if err := f.AddMember(id, s, MemberConfig{Cohort: cohort}); err != nil {
			return err
		}
	}
	if err := cr.VerifyFooter(); err != nil {
		return badFormat(err)
	}
	return nil
}

// SaveFile atomically writes the fleet artifact to path (temp file,
// sync, rename — the same crash-safety contract as Monitor.SaveFile).
func (f *Fleet) SaveFile(path string, enc EncodeFunc) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := f.Save(tmp, enc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a fleet artifact written by SaveFile into f.
func (f *Fleet) LoadFile(path string, dec DecodeFunc) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fleet: load %s: %w", path, err)
	}
	defer fh.Close()
	if err := f.Load(fh, dec); err != nil {
		return fmt.Errorf("%w (%s)", err, path)
	}
	return nil
}

// ExportMember atomically deregisters one member and serialises its
// final state — the source half of a live stream migration. The member
// is deleted from the registry first (new batches fail with
// unknown-stream), then encoded under the member lock after any
// in-flight batch completes, so the payload is a sample-boundary
// snapshot and no sample can land on the member after its export. The
// payload carries its own ckpt CRC32 footer; samples/drifts are the
// lifetime counters and cohort is the cooperation group the importing
// fleet must carry over. If encoding fails, the member is re-registered
// and the fleet is unchanged.
func (f *Fleet) ExportMember(id string, enc EncodeFunc) (kind byte, cohort string, payload []byte, samples, drifts uint64, err error) {
	sh := f.shardOf(id)
	sh.mu.Lock()
	m, ok := sh.members[id]
	if !ok {
		sh.mu.Unlock()
		return 0, "", nil, 0, 0, fmt.Errorf("fleet: unknown stream %q", id)
	}
	delete(sh.members, id)
	sh.mu.Unlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	kind, err = enc(id, m.stage, cw)
	if err == nil {
		err = cw.WriteFooter()
	}
	if err != nil {
		// Roll back: the member must survive a failed export. Taking the
		// shard lock while holding the member lock is safe — no path in
		// this package waits on a member lock while holding a shard lock.
		// If Add re-created the id while the member was deregistered, the
		// new member keeps the slot: overwriting it would vanish a live
		// stream, and dropping the new one would undo a registration the
		// caller was told succeeded. The exported member is retired
		// instead, and the collision is reported as a typed error so the
		// caller knows its lifetime counters did not survive the rollback.
		sh.mu.Lock()
		usurper, exists := sh.members[id]
		if !exists {
			sh.members[id] = m
		}
		sh.mu.Unlock()
		if exists {
			// The id was re-registered while the member was out of the
			// registry. The new member keeps the slot — overwriting it
			// would vanish a registration the caller was told succeeded —
			// so the exported member is retired and the collision reported
			// as a typed error: its lifetime counters did not survive.
			m.removed = true
			if m.cohort != "" {
				// Drop the retired member's cohort entry unless the new
				// member re-joined the same cohort (the index is keyed by
				// (cohort, id), so same-cohort removal would orphan the
				// new member from its group). Locking the new member while
				// holding m's lock is safe: m left the registry, so no
				// other path can hold its lock and wait on another member.
				usurper.mu.Lock()
				sameCohort := usurper.cohort == m.cohort
				usurper.mu.Unlock()
				if !sameCohort {
					f.cohortRemove(m.cohort, id)
				}
			}
			return 0, "", nil, 0, 0, fmt.Errorf("fleet: export %q: %w (samples=%d drifts=%d lost; encode error: %w)",
				id, ErrExportCollision, m.samples, m.drifts, err)
		}
		return 0, "", nil, 0, 0, fmt.Errorf("fleet: export %q: %w", id, err)
	}
	m.removed = true
	f.cohortRemove(m.cohort, id)
	return kind, m.cohort, buf.Bytes(), m.samples, m.drifts, nil
}

// ImportMember registers a member from an ExportMember payload — the
// target half of a live stream migration. The payload's CRC32 footer is
// verified before registration, and the member starts with the exported
// lifetime counters and cohort so the fleet-level roll-up neither loses
// nor double-counts samples across the move and the stream keeps
// cooperating with its group.
func (f *Fleet) ImportMember(id string, kind byte, cohort string, payload []byte, samples, drifts uint64, dec DecodeFunc) error {
	br := bytes.NewReader(payload)
	cr := ckpt.NewReader(br)
	s, err := dec(id, kind, cr)
	if err != nil {
		return badFormat(fmt.Errorf("import %q: %w", id, err))
	}
	if err := cr.VerifyFooter(); err != nil {
		return badFormat(fmt.Errorf("import %q: %w", id, err))
	}
	if br.Len() != 0 {
		return badFormat(fmt.Errorf("import %q: %d payload bytes left unconsumed", id, br.Len()))
	}
	return f.addMember(id, s, MemberConfig{Cohort: cohort}, samples, drifts)
}

// badFormat wraps a load failure so it matches both ErrBadFormat and
// the underlying cause (including ckpt.ErrChecksum).
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("fleet: corrupt artifact: %w: %w", ErrBadFormat, err)
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

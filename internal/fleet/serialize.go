package fleet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/core"
)

// fleetMagicV1 identifies a serialised fleet container (FLEET1): the
// magic, a member count, then each member as (ID, length-prefixed
// payload) in sorted-ID order. Every member payload is written through
// its own nested ckpt.Writer and carries its own CRC32 footer, and the
// whole container — member footers included — is covered by one outer
// footer. A flipped bit therefore fails twice: once at the damaged
// member, once at the container level, and the member ID in the error
// says which stream's state is unusable.
var fleetMagicV1 = [6]byte{'F', 'L', 'E', 'E', 'T', '1'}

// ErrBadFormat reports a stream that is not a serialised fleet of a
// known version, or one that is truncated or corrupt.
var ErrBadFormat = errors.New("fleet: not a serialised fleet (or corrupt artifact)")

// Sanity bounds so a corrupt header fails as ErrBadFormat instead of
// demanding an absurd allocation.
const (
	maxLoadMembers = 1 << 20
	maxLoadIDLen   = 1 << 12
)

// EncodeFunc serialises one member's stage. The fleet container is
// generic over the member type, so the caller supplies the encoding —
// the public Fleet wrapper passes Monitor.Save.
type EncodeFunc func(id string, s core.Streaming, w io.Writer) error

// DecodeFunc reconstructs one member's stage from its payload. The
// reader is exactly the member's payload; reading past it fails.
type DecodeFunc func(id string, r io.Reader) (core.Streaming, error)

// Save serialises the whole fleet to w in sorted-ID order (so identical
// fleets produce identical bytes). Each member is encoded while holding
// only that member's lock; streams are momentarily unblocked between
// members, so a snapshot taken under load is per-member consistent —
// every member's state is from a sample boundary — rather than a
// whole-fleet stop-the-world cut.
func (f *Fleet) Save(w io.Writer, enc EncodeFunc) error {
	ids := f.IDs()
	cw := ckpt.NewWriter(w)
	if _, err := cw.Write(fleetMagicV1[:]); err != nil {
		return err
	}
	if err := putU32(cw, uint32(len(ids))); err != nil {
		return err
	}
	var buf bytes.Buffer
	for _, id := range ids {
		buf.Reset()
		inner := ckpt.NewWriter(&buf)
		err := f.Do(id, func(s core.Streaming) error { return enc(id, s, inner) })
		if err != nil {
			return fmt.Errorf("fleet: save %q: %w", id, err)
		}
		if err := inner.WriteFooter(); err != nil {
			return fmt.Errorf("fleet: save %q: %w", id, err)
		}
		if err := putU32(cw, uint32(len(id))); err != nil {
			return err
		}
		if _, err := io.WriteString(cw, id); err != nil {
			return err
		}
		if err := putU64(cw, uint64(buf.Len())); err != nil {
			return err
		}
		if _, err := cw.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	return cw.WriteFooter()
}

// Load reads a fleet container written by Save and registers every
// member into f via Add (typically f is fresh and empty; a duplicate ID
// fails). Any corruption — container or member level — fails with an
// error matching ErrBadFormat, naming the damaged member when one can
// be identified.
func (f *Fleet) Load(r io.Reader, dec DecodeFunc) error {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return badFormat(fmt.Errorf("load header: %w", err))
	}
	if got != fleetMagicV1 {
		return ErrBadFormat
	}
	cr := ckpt.NewReader(r)
	cr.Fold(got[:])
	count, err := getU32(cr)
	if err != nil {
		return badFormat(err)
	}
	if count > maxLoadMembers {
		return badFormat(fmt.Errorf("implausible member count %d", count))
	}
	for i := uint32(0); i < count; i++ {
		idLen, err := getU32(cr)
		if err != nil {
			return badFormat(err)
		}
		if idLen == 0 || idLen > maxLoadIDLen {
			return badFormat(fmt.Errorf("implausible ID length %d", idLen))
		}
		idBytes := make([]byte, idLen)
		if _, err := io.ReadFull(cr, idBytes); err != nil {
			return badFormat(err)
		}
		id := string(idBytes)
		plen, err := getU64(cr)
		if err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		lim := &io.LimitedReader{R: cr, N: int64(plen)}
		inner := ckpt.NewReader(lim)
		s, err := dec(id, inner)
		if err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		if err := inner.VerifyFooter(); err != nil {
			return badFormat(fmt.Errorf("member %q: %w", id, err))
		}
		if lim.N != 0 {
			return badFormat(fmt.Errorf("member %q: %d payload bytes left unconsumed", id, lim.N))
		}
		if err := f.Add(id, s); err != nil {
			return err
		}
	}
	if err := cr.VerifyFooter(); err != nil {
		return badFormat(err)
	}
	return nil
}

// SaveFile atomically writes the fleet artifact to path (temp file,
// sync, rename — the same crash-safety contract as Monitor.SaveFile).
func (f *Fleet) SaveFile(path string, enc EncodeFunc) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := f.Save(tmp, enc); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fleet: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a fleet artifact written by SaveFile into f.
func (f *Fleet) LoadFile(path string, dec DecodeFunc) error {
	fh, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("fleet: load %s: %w", path, err)
	}
	defer fh.Close()
	if err := f.Load(fh, dec); err != nil {
		return fmt.Errorf("%w (%s)", err, path)
	}
	return nil
}

// badFormat wraps a load failure so it matches both ErrBadFormat and
// the underlying cause (including ckpt.ErrChecksum).
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("fleet: corrupt artifact: %w: %w", ErrBadFormat, err)
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

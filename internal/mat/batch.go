package mat

// Batched scoring kernels: the N-samples-at-a-time counterpart of
// MulVec. Scoring a batch as one GEMM amortises the weight-matrix loads
// — per-sample matvecs at the paper's shapes (D up to 511, H 22..128)
// re-stream W from memory for every sample, so the matvec is bound by
// W/β bandwidth, not arithmetic.
//
// Every output element is the same 4-accumulator dotKernel the
// per-sample MulVec uses, with the weight row as the first operand —
// IEEE multiplication is commutative bit for bit and the accumulation
// order per element is untouched, so batch scores are bit-identical to
// per-sample scores at every element type, regardless of the sample
// blocking. Blocking only reorders which (sample, row) pair is computed
// when: a block of samples stays resident in L1 while each weight row is
// streamed once per block instead of once per sample.

// batchRowBlock is the sample-block size of the batched kernels: small
// enough that a block of input rows stays L1-resident next to one weight
// row at the paper's largest D (4·511·8 B ≈ 16 kB of f64 against a
// 48 kB L1d), large enough to cut weight traffic 4×.
const batchRowBlock = 4

// MulBatch computes dst = a·bᵀ without materialising bᵀ: dst[i][j] is
// the inner product of a's row i and b's row j. With a holding N input
// samples (N×D) and b a weight matrix (H×D), dst is the N×H batch of
// per-sample matvec results.
func MulBatch[E Element](dst, a, b *MatrixOf[E]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(ErrShape)
	}
	dc := dst.Cols
	for i0 := 0; i0 < a.Rows; i0 += batchRowBlock {
		i1 := i0 + batchRowBlock
		if i1 > a.Rows {
			i1 = a.Rows
		}
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			for i := i0; i < i1; i++ {
				dst.Data[i*dc+j] = dotKernel(brow, a.Row(i))
			}
		}
	}
}

// MulBatchTrans computes dst's row i = mᵀ·(a's row i) for every row of
// a — the batched output-layer pass. Each row is exactly one MulVecTrans
// call, so batched results are bit-identical to per-sample ones at every
// element type; the batch form exists so m (β in the scoring path) is
// walked while still cache-warm from the previous row.
func MulBatchTrans[E Element](dst, a, m *MatrixOf[E]) {
	if dst.Rows != a.Rows || a.Cols != m.Rows || dst.Cols != m.Cols {
		panic(ErrShape)
	}
	for i := 0; i < a.Rows; i++ {
		MulVecTrans(dst.Row(i), m, a.Row(i))
	}
}

// MulBatchRows is MulBatch with the samples as a slice of rows instead
// of a packed matrix — the form the scoring path uses, avoiding a pack
// copy when the batch arrives as [][]float64. dst must be len(xs)×b.Rows
// and every sample must have length b.Cols.
func MulBatchRows[E Element](dst *MatrixOf[E], xs [][]E, b *MatrixOf[E]) {
	if dst.Rows != len(xs) || dst.Cols != b.Rows {
		panic(ErrShape)
	}
	dc := dst.Cols
	for i0 := 0; i0 < len(xs); i0 += batchRowBlock {
		i1 := i0 + batchRowBlock
		if i1 > len(xs) {
			i1 = len(xs)
		}
		for i := i0; i < i1; i++ {
			if len(xs[i]) != b.Cols {
				panic(ErrShape)
			}
		}
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			for i := i0; i < i1; i++ {
				dst.Data[i*dc+j] = dotKernel(brow, xs[i])
			}
		}
	}
}

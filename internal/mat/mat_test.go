package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randomSPD returns a random symmetric positive-definite n×n matrix.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	spd := New(n, n)
	MulTransA(spd, a, a)
	spd.AddDiag(float64(n)) // guarantee positive definiteness
	return spd
}

func TestNewZeroed(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows, m.Cols)
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewFromDataPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	NewFromData(2, 2, []float64{1, 2, 3})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7.5)
	if m.At(1, 2) != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", m.At(1, 2))
	}
	row := m.Row(1)
	row[0] = -1 // views alias underlying storage
	if m.At(1, 0) != -1 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestMulKnownValues(t *testing.T) {
	a := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFromData(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MulNew(a, b)
	want := NewFromData(2, 2, []float64{58, 64, 139, 154})
	if MaxAbsDiff(got, want) > tol {
		t.Fatalf("a·b = %v, want %v", got, want)
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

func TestMulTransAMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 5, 3)
	b := randomMatrix(rng, 5, 4)
	got := New(3, 4)
	MulTransA(got, a, b)
	want := MulNew(a.Transpose(), b)
	if MaxAbsDiff(got, want) > tol {
		t.Fatalf("MulTransA disagrees with explicit transpose by %v", MaxAbsDiff(got, want))
	}
}

func TestMulVecAndTrans(t *testing.T) {
	m := NewFromData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	MulVec(dst, m, x)
	if !almostEqual(dst[0], -2, tol) || !almostEqual(dst[1], -2, tol) {
		t.Fatalf("MulVec = %v, want [-2 -2]", dst)
	}
	y := []float64{1, 1}
	dt := make([]float64, 3)
	MulVecTrans(dt, m, y)
	want := []float64{5, 7, 9}
	for i := range want {
		if !almostEqual(dt[i], want[i], tol) {
			t.Fatalf("MulVecTrans = %v, want %v", dt, want)
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 4, 7)
	tt := m.Transpose().Transpose()
	if MaxAbsDiff(m, tt) != 0 {
		t.Fatal("(mᵀ)ᵀ != m")
	}
}

func TestInverseRecoversIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		a := randomMatrix(rng, n, n)
		a.AddDiag(float64(n)) // keep well-conditioned
		inv := New(n, n)
		if err := Inverse(inv, a); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod := MulNew(a, inv)
		if d := MaxAbsDiff(prod, Identity(n)); d > 1e-8 {
			t.Fatalf("trial %d: a·a⁻¹ deviates from I by %v", trial, d)
		}
	}
}

func TestInverseAliasingSafe(t *testing.T) {
	a := NewFromData(2, 2, []float64{4, 7, 2, 6})
	want := New(2, 2)
	if err := Inverse(want, a); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(a, a); err != nil { // in-place
		t.Fatal(err)
	}
	if MaxAbsDiff(a, want) > tol {
		t.Fatal("in-place Inverse differs from out-of-place")
	}
}

func TestInverseSingular(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 4})
	if err := Inverse(New(2, 2), a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(10)
		spd := randomSPD(rng, n)
		l := New(n, n)
		if err := Cholesky(l, spd); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		recon := MulNew(l, l.Transpose())
		if d := MaxAbsDiff(recon, spd); d > 1e-8 {
			t.Fatalf("trial %d: L·Lᵀ deviates by %v", trial, d)
		}
		// Strict upper triangle must be zero.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper triangle not zeroed at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewFromData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if err := Cholesky(New(2, 2), a); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestCholeskySolveMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 6
	spd := randomSPD(rng, n)
	l := New(n, n)
	if err := Cholesky(l, spd); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	CholeskySolveVec(x, l, b)
	// Check spd·x ≈ b.
	chk := make([]float64, n)
	MulVec(chk, spd, x)
	for i := range b {
		if !almostEqual(chk[i], b[i], 1e-8) {
			t.Fatalf("solve residual at %d: %v vs %v", i, chk[i], b[i])
		}
	}
}

func TestAddScaledOuter(t *testing.T) {
	m := New(2, 3)
	m.AddScaledOuter(2, []float64{1, -1}, []float64{1, 2, 3})
	want := NewFromData(2, 3, []float64{2, 4, 6, -2, -4, -6})
	if MaxAbsDiff(m, want) > tol {
		t.Fatalf("outer update = %v, want %v", m, want)
	}
}

func TestQuadForm(t *testing.T) {
	m := NewFromData(2, 2, []float64{2, 1, 1, 3})
	x := []float64{1, -2}
	// xᵀmx = 2 - 2 - 2 + 12 = 10
	if got := m.QuadForm(x); !almostEqual(got, 10, tol) {
		t.Fatalf("QuadForm = %v, want 10", got)
	}
}

func TestRidgeGram(t *testing.T) {
	a := NewFromData(3, 2, []float64{1, 0, 0, 1, 1, 1})
	g := New(2, 2)
	RidgeGram(g, a, 0.5)
	want := NewFromData(2, 2, []float64{2.5, 1, 1, 2.5})
	if MaxAbsDiff(g, want) > tol {
		t.Fatalf("RidgeGram = %v, want %v", g, want)
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewFromData(2, 2, []float64{1, 2, 4, 3})
	m.SymmetrizeInPlace()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("symmetrize = %v", m)
	}
}

func TestScaleAndAddDiagAndZero(t *testing.T) {
	m := Identity(3)
	m.Scale(2)
	m.AddDiag(1)
	for i := 0; i < 3; i++ {
		if m.At(i, i) != 3 {
			t.Fatalf("diag = %v, want 3", m.At(i, i))
		}
	}
	m.Zero()
	if m.FrobeniusNorm() != 0 {
		t.Fatal("Zero left non-zero entries")
	}
	m.SetIdentity()
	if MaxAbsDiff(m, Identity(3)) != 0 {
		t.Fatal("SetIdentity mismatch")
	}
}

func TestStringAbbreviatesLarge(t *testing.T) {
	small := Identity(2)
	if s := small.String(); len(s) == 0 || s == "Matrix(2x2)" {
		t.Fatalf("small String = %q", s)
	}
	big := New(20, 20)
	if s := big.String(); s != "Matrix(20x20)" {
		t.Fatalf("big String = %q", s)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random shapes.
func TestPropMulTransposeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, p := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(rng, m, n)
		b := randomMatrix(rng, n, p)
		lhs := MulNew(a, b).Transpose()
		rhs := MulNew(b.Transpose(), a.Transpose())
		return MaxAbsDiff(lhs, rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Sherman-Morrison consistency. For SPD P and vector h,
// P' = P − P h hᵀ P / (1 + hᵀ P h) equals (P⁻¹ + h hᵀ)⁻¹.
func TestPropShermanMorrison(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		p := randomSPD(r, n)
		h := make([]float64, n)
		for i := range h {
			h[i] = r.NormFloat64()
		}
		// Rank-1 downdate form.
		ph := make([]float64, n)
		MulVec(ph, p, h)
		denom := 1 + Dot(h, ph)
		upd := p.Clone()
		upd.AddScaledOuter(-1/denom, ph, ph)
		// Direct form.
		pinv := New(n, n)
		if err := Inverse(pinv, p); err != nil {
			return true // skip ill-conditioned draws
		}
		pinv.AddScaledOuter(1, h, h)
		direct := New(n, n)
		if err := Inverse(direct, pinv); err != nil {
			return true
		}
		return MaxAbsDiff(upd, direct) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMulVec511x22(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m := randomMatrix(rng, 22, 511)
	x := make([]float64, 511)
	dst := make([]float64, 22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVec(dst, m, x)
	}
}

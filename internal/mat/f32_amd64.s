// AVX2+FMA float32 kernels for the scoring hot path. Only reached when
// the runtime probe in f32_amd64.go set mat.f32SIMD; callers guarantee
// n >= 1 and non-nil pointers. All loads/stores are unaligned (VMOVUPS) —
// Go slices carry no alignment guarantee. Every exit runs VZEROUPPER so
// the surrounding SSE-encoded Go code pays no AVX transition penalty.

#include "textflag.h"

// func dotF32Asm(a, b *float32, n int) float32
//
// Four independent YMM accumulators, 32 floats per iteration, hiding the
// FMA latency chain; then single-YMM 8-wide steps, a horizontal reduce,
// and a scalar tail.
TEXT ·dotF32Asm(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ CX, DX
	SHRQ $5, DX            // 32-element blocks
	JZ   dot8
dot32:
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	DECQ DX
	JNZ  dot32
dot8:
	MOVQ CX, DX
	ANDQ $31, DX
	SHRQ $3, DX            // remaining 8-element blocks
	JZ   dotreduce
dot8loop:
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ DX
	JNZ  dot8loop
dotreduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	ANDQ $7, CX            // scalar tail
	JZ   dotdone
dottail:
	VMOVSS (SI), X4
	VMOVSS (DI), X5
	VMULSS X5, X4, X4
	VADDSS X4, X0, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JNZ  dottail
dotdone:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func axpy4F32Asm(dst, b *float32, ldb int, s *[4]float32, n int)
//
// dst[j] += s[0]·b[j] + s[1]·b[ldb+j] + s[2]·b[2ldb+j] + s[3]·b[3ldb+j]
// for j in [0, n) — four rows of the transposed-matvec accumulated into
// dst in one sweep, each scalar broadcast across a YMM lane set.
TEXT ·axpy4F32Asm(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ ldb+16(FP), DX
	SHLQ $2, DX            // row stride in bytes
	MOVQ s+24(FP), AX
	VBROADCASTSS 0(AX), Y1
	VBROADCASTSS 4(AX), Y2
	VBROADCASTSS 8(AX), Y3
	VBROADCASTSS 12(AX), Y4
	LEAQ (SI)(DX*1), R9    // row 1
	LEAQ (SI)(DX*2), R10   // row 2
	LEAQ (R10)(DX*1), R11  // row 3
	MOVQ n+32(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX            // 8-element blocks
	JZ   a4tail
a4loop:
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y5
	VMOVUPS (R9), Y6
	VMOVUPS (R10), Y7
	VMOVUPS (R11), Y8
	VFMADD231PS Y5, Y1, Y0
	VFMADD231PS Y6, Y2, Y0
	VFMADD231PS Y7, Y3, Y0
	VFMADD231PS Y8, Y4, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	DECQ DX
	JNZ  a4loop
a4tail:
	ANDQ $7, CX
	JZ   a4done
a4tailloop:
	VMOVSS (DI), X0
	VMOVSS (SI), X5
	VFMADD231SS X5, X1, X0
	VMOVSS (R9), X5
	VFMADD231SS X5, X2, X0
	VMOVSS (R10), X5
	VFMADD231SS X5, X3, X0
	VMOVSS (R11), X5
	VFMADD231SS X5, X4, X0
	VMOVSS X0, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $4, R11
	DECQ CX
	JNZ  a4tailloop
a4done:
	VZEROUPPER
	RET

// func axpy1F32Asm(dst, b *float32, s float32, n int)
//
// dst[j] += s·b[j] for j in [0, n) — the tail-row form of the
// transposed matvec (rows beyond the last multiple of four).
TEXT ·axpy1F32Asm(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	VBROADCASTSS s+16(FP), Y1
	MOVQ n+24(FP), CX
	MOVQ CX, DX
	SHRQ $3, DX
	JZ   a1tail
a1loop:
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y2
	VFMADD231PS Y2, Y1, Y0
	VMOVUPS Y0, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	DECQ DX
	JNZ  a1loop
a1tail:
	ANDQ $7, CX
	JZ   a1done
a1tailloop:
	VMOVSS (DI), X0
	VMOVSS (SI), X2
	VFMADD231SS X2, X1, X0
	VMOVSS X0, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	DECQ CX
	JNZ  a1tailloop
a1done:
	VZEROUPPER
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0Asm() (eax, edx uint32)
TEXT ·xgetbv0Asm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

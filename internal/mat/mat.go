// Package mat provides small, allocation-conscious dense linear algebra
// primitives used by the OS-ELM learner and the SPLL drift detector.
//
// The package is deliberately minimal: row-major dense matrices, the
// handful of kernels sequential learning needs (multiply, rank-1
// updates, symmetric inverses), and nothing else. It trades generality
// for predictable memory behaviour, which is what the paper's
// resource-limited setting is about: every retained buffer is visible
// and accountable.
//
// Since the precision refactor the kernel layer is generic over the
// element type: the same unrolled loops instantiate at float64 (the
// training path — RLS conditioning needs the headroom) and float32
// (the inference path on 32-bit edge targets, halving model memory and
// kernel bandwidth). Matrix remains an alias for the float64
// instantiation so existing callers don't churn; q16.go adds the
// Q16.16 fixed-point kernels the FPU-less deployment shares with
// internal/fixed. The dense solvers (Inverse, Cholesky) intentionally
// stay float64-only: they exist for initialisation and covariance
// conditioning, which the precision axis never moves off float64.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a matrix inversion or solve encounters a
// pivot too small to divide by reliably.
var ErrSingular = errors.New("mat: matrix is singular to working precision")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Element constrains the floating-point element types the generic
// kernel layer instantiates at.
type Element interface {
	~float32 | ~float64
}

// MatrixOf is a dense, row-major matrix of E.
//
// The zero value is an empty matrix; use New/NewOf or NewFromData to
// create a sized one. Methods that write results take the receiver as
// destination where practical so hot loops can reuse storage.
type MatrixOf[E Element] struct {
	Rows, Cols int
	// Data holds the elements in row-major order: element (i, j) is
	// Data[i*Cols+j]. len(Data) == Rows*Cols.
	Data []E
}

// Matrix is the float64 instantiation — the historical API and the
// element type of every training-side structure.
type Matrix = MatrixOf[float64]

// New returns a zeroed r×c float64 matrix.
func New(r, c int) *Matrix { return NewOf[float64](r, c) }

// NewOf returns a zeroed r×c matrix of E.
func NewOf[E Element](r, c int) *MatrixOf[E] {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &MatrixOf[E]{Rows: r, Cols: c, Data: make([]E, r*c)}
}

// NewFromData wraps data (not copied) as an r×c matrix.
func NewFromData[E Element](r, c int, data []E) *MatrixOf[E] {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &MatrixOf[E]{Rows: r, Cols: c, Data: data}
}

// Identity returns the n×n float64 identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *MatrixOf[E]) At(i, j int) E { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *MatrixOf[E]) Set(i, j int, v E) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *MatrixOf[E]) Row(i int) []E { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *MatrixOf[E]) Clone() *MatrixOf[E] {
	c := NewOf[E](m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m. Shapes must match.
func (m *MatrixOf[E]) CopyFrom(src *MatrixOf[E]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(ErrShape)
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to zero.
func (m *MatrixOf[E]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// SetIdentity overwrites m (which must be square) with the identity.
func (m *MatrixOf[E]) SetIdentity() {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] = 1
	}
}

// Scale multiplies every element of m by s in place.
func (m *MatrixOf[E]) Scale(s E) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddDiag adds s to every diagonal element of the square matrix m.
func (m *MatrixOf[E]) AddDiag(s E) {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += s
	}
}

// Transpose returns mᵀ as a new matrix.
func (m *MatrixOf[E]) Transpose() *MatrixOf[E] {
	t := NewOf[E](m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// Mul computes dst = a·b. dst must not alias a or b; it is resized storage
// allocated by the caller with shape a.Rows×b.Cols.
//
// The inner loop consumes eight rows of b per sweep of the destination
// row — twice the historical 4-wide unroll — halving how often drow is
// re-read from memory, which is what the kernel is bound by at these
// shapes. Float64 results stay bit-identical to refMul: each 8-row pass
// adds two 4-term groups to drow[j] in two statements, which is exactly
// the association of two consecutive 4-wide passes, and the 4-wide and
// scalar tails below are the reference's own (including the zero-skip,
// whose absence could flip a −0 sum to +0).
func Mul[E Element](dst, a, b *MatrixOf[E]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(ErrShape)
	}
	n := a.Cols
	bc := b.Cols
	n4 := n &^ 3
	n8 := n &^ 7
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		var k int
		for ; k < n8; k += 8 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			a4, a5, a6, a7 := arow[k+4], arow[k+5], arow[k+6], arow[k+7]
			b0 := b.Data[k*bc : k*bc+bc]
			b1 := b.Data[(k+1)*bc : (k+1)*bc+bc]
			b2 := b.Data[(k+2)*bc : (k+2)*bc+bc]
			b3 := b.Data[(k+3)*bc : (k+3)*bc+bc]
			b4 := b.Data[(k+4)*bc : (k+4)*bc+bc]
			b5 := b.Data[(k+5)*bc : (k+5)*bc+bc]
			b6 := b.Data[(k+6)*bc : (k+6)*bc+bc]
			b7 := b.Data[(k+7)*bc : (k+7)*bc+bc]
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) ||
				len(b4) < len(drow) || len(b5) < len(drow) || len(b6) < len(drow) || len(b7) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				s := drow[j] + (a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j])
				drow[j] = s + (a4*b4[j] + a5*b5[j] + a6*b6[j] + a7*b7[j])
			}
		}
		for ; k < n4; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Data[k*bc : k*bc+bc]
			b1 := b.Data[(k+1)*bc : (k+1)*bc+bc]
			b2 := b.Data[(k+2)*bc : (k+2)*bc+bc]
			b3 := b.Data[(k+3)*bc : (k+3)*bc+bc]
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulNew returns a·b as a freshly allocated matrix.
func MulNew[E Element](a, b *MatrixOf[E]) *MatrixOf[E] {
	dst := NewOf[E](a.Rows, b.Cols)
	Mul(dst, a, b)
	return dst
}

// MulTransA computes dst = aᵀ·b without materialising aᵀ. Eight rows of
// a and b are consumed per pass so each destination row is updated with
// two fused 4-term accumulations instead of eight separate
// read-modify-write sweeps. Like Mul, the 8-row pass adds its two 4-term
// groups in two statements — the exact association of two consecutive
// 4-row reference passes — and the tails are the reference's own, so
// float64 results are bit-identical to refMulTransA.
func MulTransA[E Element](dst, a, b *MatrixOf[E]) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(ErrShape)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	n := a.Rows
	n4 := n &^ 3
	n8 := n &^ 7
	var k int
	for ; k < n8; k += 8 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		a4, a5, a6, a7 := a.Row(k+4), a.Row(k+5), a.Row(k+6), a.Row(k+7)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		b4, b5, b6, b7 := b.Row(k+4), b.Row(k+5), b.Row(k+6), b.Row(k+7)
		for i := range a0 {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			v4, v5, v6, v7 := a4[i], a5[i], a6[i], a7[i]
			drow := dst.Row(i)
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) ||
				len(b4) < len(drow) || len(b5) < len(drow) || len(b6) < len(drow) || len(b7) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				s := drow[j] + (v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j])
				drow[j] = s + (v4*b4[j] + v5*b5[j] + v6*b6[j] + v7*b7[j])
			}
		}
	}
	for ; k < n4; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := range a0 {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			drow := dst.Row(i)
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
	}
	for ; k < n; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MulVec computes dst = m·x for a vector x (len m.Cols) into dst
// (len m.Rows). dst must not alias x. Each row product runs through the
// 4-accumulator dot kernel.
func MulVec[E Element](dst []E, m *MatrixOf[E], x []E) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(ErrShape)
	}
	cols := m.Cols
	for i := range dst {
		dst[i] = dotKernel(m.Data[i*cols:i*cols+cols], x)
	}
}

// MulVecTrans computes dst = mᵀ·x for x of length m.Rows into dst of
// length m.Cols, without materialising mᵀ. Four matrix rows are folded
// into dst per pass.
func MulVecTrans[E Element](dst []E, m *MatrixOf[E], x []E) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	cols := m.Cols
	n := m.Rows
	n4 := n &^ 3
	var i int
	for ; i < n4; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		r0 := m.Data[i*cols : i*cols+cols]
		r1 := m.Data[(i+1)*cols : (i+1)*cols+cols]
		r2 := m.Data[(i+2)*cols : (i+2)*cols+cols]
		r3 := m.Data[(i+3)*cols : (i+3)*cols+cols]
		if len(r0) < len(dst) || len(r1) < len(dst) || len(r2) < len(dst) || len(r3) < len(dst) {
			panic(ErrShape) // unreachable; hoists the bounds checks
		}
		for j := range dst {
			dst[j] += x0*r0[j] + x1*r1[j] + x2*r2[j] + x3*r3[j]
		}
	}
	for ; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// AddScaledOuter performs the rank-1 update m ← m + s·u·vᵀ in place.
// u has length m.Rows and v length m.Cols.
//
// Rows are processed in blocks of four per sweep of v, so v is read from
// cache once per block instead of once per row — the layout that makes
// Train's H×H Sherman-Morrison update and H×D β update stream at memory
// speed.
func (m *MatrixOf[E]) AddScaledOuter(s E, u, v []E) {
	if len(u) != m.Rows || len(v) != m.Cols {
		panic(ErrShape)
	}
	cols := m.Cols
	n := len(u)
	n4 := n &^ 3
	var i int
	for ; i < n4; i += 4 {
		s0, s1, s2, s3 := s*u[i], s*u[i+1], s*u[i+2], s*u[i+3]
		r0 := m.Data[i*cols : i*cols+cols]
		r1 := m.Data[(i+1)*cols : (i+1)*cols+cols]
		r2 := m.Data[(i+2)*cols : (i+2)*cols+cols]
		r3 := m.Data[(i+3)*cols : (i+3)*cols+cols]
		if len(v) < len(r0) || len(r1) < len(r0) || len(r2) < len(r0) || len(r3) < len(r0) {
			panic(ErrShape) // unreachable; hoists the bounds checks
		}
		for j := range r0 {
			vv := v[j]
			r0[j] += s0 * vv
			r1[j] += s1 * vv
			r2[j] += s2 * vv
			r3[j] += s3 * vv
		}
	}
	for ; i < n; i++ {
		su := s * u[i]
		if su == 0 {
			continue
		}
		row := m.Row(i)
		for j, vv := range v {
			row[j] += su * vv
		}
	}
}

// QuadForm returns xᵀ·m·x for the square matrix m.
func (m *MatrixOf[E]) QuadForm(x []E) E {
	if m.Rows != m.Cols || len(x) != m.Rows {
		panic(ErrShape)
	}
	var total E
	for i := 0; i < m.Rows; i++ {
		total += x[i] * dotKernel(m.Row(i), x)
	}
	return total
}

// Inverse computes the inverse of the square matrix a into dst using
// Gauss-Jordan elimination with partial pivoting. dst and a may alias.
//
// Inverse is float64-only by design: it serves batch initialisation and
// covariance conditioning, which stay at full precision regardless of
// the inference element width (the pivot threshold alone would be
// meaningless at float32).
func Inverse(dst, a *Matrix) error {
	if a.Rows != a.Cols || dst.Rows != dst.Cols || dst.Rows != a.Rows {
		panic(ErrShape)
	}
	n := a.Rows
	// Work on an augmented copy so aliasing is safe.
	work := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-300 {
			return ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(inv, pivot, col)
		}
		p := work.At(col, col)
		invP := 1 / p
		scaleRow(work, col, invP)
		scaleRow(inv, col, invP)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(work, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	dst.CopyFrom(inv)
	return nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

func scaleRow(m *Matrix, i int, s float64) {
	row := m.Row(i)
	for k := range row {
		row[k] *= s
	}
}

// axpyRow adds f times row j to row i.
func axpyRow(m *Matrix, i, j int, f float64) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k] += f * rj[k]
	}
}

// Cholesky computes the lower-triangular Cholesky factor L of the
// symmetric positive-definite matrix a (a = L·Lᵀ) into dst. dst and a may
// alias. Returns ErrSingular if a is not positive definite. Float64-only,
// like Inverse.
func Cholesky(dst, a *Matrix) error {
	if a.Rows != a.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic(ErrShape)
	}
	n := a.Rows
	l := dst
	if l != a {
		l.CopyFrom(a)
	}
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return ErrSingular
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s*inv)
		}
	}
	// Zero the strict upper triangle so dst is exactly L.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	return nil
}

// CholeskySolveVec solves (L·Lᵀ)·x = b given the Cholesky factor L,
// writing x into dst. dst and b may alias.
func CholeskySolveVec(dst []float64, l *Matrix, b []float64) {
	n := l.Rows
	if len(b) != n || len(dst) != n {
		panic(ErrShape)
	}
	// Forward substitution: L·y = b.
	y := dst
	if &y[0] != &b[0] {
		copy(y, b)
	}
	for i := 0; i < n; i++ {
		s := y[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
}

// RidgeGram computes dst = aᵀ·a + λ·I, the regularised Gram matrix used to
// initialise OS-ELM and SPLL covariance estimates.
func RidgeGram[E Element](dst, a *MatrixOf[E], lambda E) {
	if dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic(ErrShape)
	}
	MulTransA(dst, a, a)
	dst.AddDiag(lambda)
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// a and b; useful for approximate-equality assertions.
func MaxAbsDiff[E Element](a, b *MatrixOf[E]) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(ErrShape)
	}
	var m float64
	for i, v := range a.Data {
		if d := math.Abs(float64(v - b.Data[i])); d > m {
			m = d
		}
	}
	return m
}

// Trace returns the sum of the diagonal of the square matrix m.
func (m *MatrixOf[E]) Trace() float64 {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += float64(m.Data[i*m.Cols+i])
	}
	return s
}

// FrobeniusNorm returns the Frobenius norm of m. The accumulation runs
// at float64 for every element type.
func (m *MatrixOf[E]) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Asymmetry scans a square matrix and returns the largest absolute
// off-diagonal mismatch |m[i][j] − m[j][i]| together with the largest
// magnitude among the compared elements, so callers can judge symmetry
// loss relative to the matrix's own scale before deciding to repair it.
func (m *MatrixOf[E]) Asymmetry() (maxDiff, maxMag float64) {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := float64(m.At(i, j)), float64(m.At(j, i))
			if d := math.Abs(a - b); d > maxDiff {
				maxDiff = d
			}
			if aa := math.Abs(a); aa > maxMag {
				maxMag = aa
			}
			if ab := math.Abs(b); ab > maxMag {
				maxMag = ab
			}
		}
	}
	return maxDiff, maxMag
}

// SymmetrizeInPlace replaces m with (m + mᵀ)/2, repairing the small
// asymmetries rank-1 updates accumulate on covariance-like matrices.
func (m *MatrixOf[E]) SymmetrizeInPlace() {
	if m.Rows != m.Cols {
		panic(ErrShape)
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := E(0.5) * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// String renders a small matrix for debugging; large matrices are
// abbreviated to their shape.
func (m *MatrixOf[E]) String() string {
	if m.Rows*m.Cols > 64 {
		return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
	}
	s := fmt.Sprintf("Matrix(%dx%d)[", m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", float64(m.At(i, j)))
		}
	}
	return s + "]"
}

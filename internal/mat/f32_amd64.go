//go:build amd64

package mat

// AVX2+FMA feature probe. The asm kernels need AVX2 (256-bit integer-free
// float ops are AVX1, but VBROADCASTSS from register and the FMA forms we
// emit assume the AVX2+FMA pairing every AVX2 part ships), FMA3, and —
// critically — OS support for saving the YMM state (OSXSAVE set and
// XCR0[2:1] == 11b), without which executing a VEX.256 instruction faults
// even on capable hardware.

//go:noescape
func dotF32Asm(a, b *float32, n int) float32

//go:noescape
func axpy4F32Asm(dst, b *float32, ldb int, s *[4]float32, n int)

//go:noescape
func axpy1F32Asm(dst, b *float32, s float32, n int)

func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0Asm() (eax, edx uint32)

func init() {
	maxLeaf, _, _, _ := cpuidAsm(0, 0)
	if maxLeaf < 7 {
		return
	}
	_, _, c, _ := cpuidAsm(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c&fmaBit == 0 || c&osxsaveBit == 0 || c&avxBit == 0 {
		return
	}
	xcr0, _ := xgetbv0Asm()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return
	}
	_, b, _, _ := cpuidAsm(7, 0)
	const avx2Bit = 1 << 5
	f32SIMD = b&avx2Bit != 0
}

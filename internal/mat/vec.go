package mat

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot[E Element](a, b []E) E {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	return dotKernel(a, b)
}

// dotKernel is the shared 4-accumulator inner-product core. Callers
// guarantee len(b) >= len(a). Independent accumulators break the
// loop-carried dependency of the naive sum, letting the FPU pipeline
// overlap four multiply-adds in flight.
func dotKernel[E Element](a, b []E) E {
	var s0, s1, s2, s3 E
	n := len(a)
	n4 := n &^ 3
	var i int
	for ; i < n4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// AxpyVec performs y ← y + s·x element-wise.
func AxpyVec[E Element](y []E, s E, x []E) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec[E Element](x []E, s E) {
	for i := range x {
		x[i] *= s
	}
}

// SubVec computes dst = a − b element-wise. dst may alias a or b.
func SubVec[E Element](dst, a, b []E) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(ErrShape)
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AddVec computes dst = a + b element-wise. dst may alias a or b.
func AddVec[E Element](dst, a, b []E) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(ErrShape)
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// L1Dist returns the Manhattan distance Σ|aᵢ−bᵢ| — the metric Algorithm 1
// of the paper uses for centroid drift (line 14). The accumulation runs
// in the element type; the scalar result is returned at float64.
func L1Dist[E Element](a, b []E) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s E
	for i, v := range a {
		s += E(math.Abs(float64(v - b[i])))
	}
	return float64(s)
}

// L2Dist returns the Euclidean distance between a and b.
func L2Dist[E Element](a, b []E) float64 {
	return math.Sqrt(float64(SqDist(a, b)))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist[E Element](a, b []E) E {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s E
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2[E Element](x []E) float64 {
	var s E
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(float64(s))
}

// MeanVec computes the element-wise mean of rows into dst (len = row
// length). rows must be non-empty and rectangular.
func MeanVec[E Element](dst []E, rows [][]E) {
	if len(rows) == 0 {
		panic("mat: MeanVec of empty set")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, r := range rows {
		if len(r) != len(dst) {
			panic(ErrShape)
		}
		for i, v := range r {
			dst[i] += v
		}
	}
	inv := 1 / E(len(rows))
	for i := range dst {
		dst[i] *= inv
	}
}

// RunningMeanUpdate folds sample x into the running mean held in mean with
// prior count n, returning the new count. This is the sequential centroid
// update of Algorithm 1 line 12 and Algorithm 4 line 3:
//
//	mean ← (mean·n + x) / (n + 1)
func RunningMeanUpdate[E Element](mean []E, n int, x []E) int {
	if len(mean) != len(x) {
		panic(ErrShape)
	}
	fn := E(n)
	inv := 1 / (fn + 1)
	for i, v := range x {
		mean[i] = (mean[i]*fn + v) * inv
	}
	return n + 1
}

// EWMAUpdate folds x into mean with weight gamma on the new sample:
// mean ← (1−γ)·mean + γ·x. This implements the paper's remark that recent
// test centroids may weight newer samples more heavily.
func EWMAUpdate[E Element](mean []E, gamma E, x []E) {
	if len(mean) != len(x) {
		panic(ErrShape)
	}
	keep := 1 - gamma
	for i, v := range x {
		mean[i] = keep*mean[i] + gamma*v
	}
}

// ArgMin returns the index of the smallest value in xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMin[E Element](xs []E) int {
	if len(xs) == 0 {
		panic("mat: ArgMin of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value in xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMax[E Element](xs []E) int {
	if len(xs) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// AllFinite reports whether every element of x is finite. The v−v trick
// compiles to one subtract and one add per element: v−v is 0 for every
// finite v and NaN for ±Inf and NaN, so the accumulator ends non-zero
// (NaN) exactly when a non-finite element is present.
func AllFinite[E Element](x []E) bool {
	var acc E
	for _, v := range x {
		acc += v - v
	}
	return acc == 0
}

// CopyVec returns a copy of x.
func CopyVec[E Element](x []E) []E {
	c := make([]E, len(x))
	copy(c, x)
	return c
}

// ConvertVec copies src into dst element-by-element across element
// types — the precision boundary the mixed-precision training path
// crosses each sample. dst and src must have equal length.
func ConvertVec[D, S Element](dst []D, src []S) {
	if len(dst) != len(src) {
		panic(ErrShape)
	}
	for i, v := range src {
		dst[i] = D(v)
	}
}

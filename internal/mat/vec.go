package mat

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	return dotKernel(a, b)
}

// dotKernel is the shared 4-accumulator inner-product core. Callers
// guarantee len(b) >= len(a). Independent accumulators break the
// loop-carried dependency of the naive sum, letting the FPU pipeline
// overlap four multiply-adds in flight.
func dotKernel(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(a)
	n4 := n &^ 3
	var i int
	for ; i < n4; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// AxpyVec performs y ← y + s·x element-wise.
func AxpyVec(y []float64, s float64, x []float64) {
	if len(x) != len(y) {
		panic(ErrShape)
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(x []float64, s float64) {
	for i := range x {
		x[i] *= s
	}
}

// SubVec computes dst = a − b element-wise. dst may alias a or b.
func SubVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(ErrShape)
	}
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// AddVec computes dst = a + b element-wise. dst may alias a or b.
func AddVec(dst, a, b []float64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic(ErrShape)
	}
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// L1Dist returns the Manhattan distance Σ|aᵢ−bᵢ| — the metric Algorithm 1
// of the paper uses for centroid drift (line 14).
func L1Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range a {
		s += math.Abs(v - b[i])
	}
	return s
}

// L2Dist returns the Euclidean distance between a and b.
func L2Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// MeanVec computes the element-wise mean of rows into dst (len = row
// length). rows must be non-empty and rectangular.
func MeanVec(dst []float64, rows [][]float64) {
	if len(rows) == 0 {
		panic("mat: MeanVec of empty set")
	}
	for i := range dst {
		dst[i] = 0
	}
	for _, r := range rows {
		if len(r) != len(dst) {
			panic(ErrShape)
		}
		for i, v := range r {
			dst[i] += v
		}
	}
	inv := 1 / float64(len(rows))
	for i := range dst {
		dst[i] *= inv
	}
}

// RunningMeanUpdate folds sample x into the running mean held in mean with
// prior count n, returning the new count. This is the sequential centroid
// update of Algorithm 1 line 12 and Algorithm 4 line 3:
//
//	mean ← (mean·n + x) / (n + 1)
func RunningMeanUpdate(mean []float64, n int, x []float64) int {
	if len(mean) != len(x) {
		panic(ErrShape)
	}
	fn := float64(n)
	inv := 1 / (fn + 1)
	for i, v := range x {
		mean[i] = (mean[i]*fn + v) * inv
	}
	return n + 1
}

// EWMAUpdate folds x into mean with weight gamma on the new sample:
// mean ← (1−γ)·mean + γ·x. This implements the paper's remark that recent
// test centroids may weight newer samples more heavily.
func EWMAUpdate(mean []float64, gamma float64, x []float64) {
	if len(mean) != len(x) {
		panic(ErrShape)
	}
	keep := 1 - gamma
	for i, v := range x {
		mean[i] = keep*mean[i] + gamma*v
	}
}

// ArgMin returns the index of the smallest value in xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("mat: ArgMin of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest value in xs, breaking ties in
// favour of the lowest index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("mat: ArgMax of empty slice")
	}
	best := 0
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// AllFinite reports whether every element of x is finite. The v−v trick
// compiles to one subtract and one add per element: v−v is 0 for every
// finite v and NaN for ±Inf and NaN, so the accumulator ends non-zero
// (NaN) exactly when a non-finite element is present.
func AllFinite(x []float64) bool {
	var acc float64
	for _, v := range x {
		acc += v - v
	}
	return acc == 0
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

package mat

import (
	"fmt"
	"testing"

	"edgedrift/internal/rng"
)

// The detector's real shapes: the cooling-fan configuration has D=511
// inputs and H=22 hidden units; the NSL-KDD surrogate uses a smaller D
// with the same H; wider hidden layers (64, 128) are the scaling
// direction the ablation benches explore. Every per-sample step of the
// method reduces to these kernels at these shapes:
//
//	hiddenInto:  MulVec       (H×D)·x           — prediction and training
//	Predict:     MulVecTrans  (H×M)ᵀ·h, M=D     — reconstruction
//	Train:       MulVec       (H×H)·h  (twice)  — RLS gain
//	Train:       AddScaledOuter on H×H and H×D  — rank-1 updates
//	Train:       Dot          (H)               — Sherman-Morrison denom
//	InitBatch:   Mul, MulTransA                 — host-side only
var benchShapes = []struct {
	d, h int
}{
	{511, 22},
	{511, 64},
	{511, 128},
}

func benchName(d, h int) string { return fmt.Sprintf("D%d_H%d", d, h) }

func randMatrix(r *rng.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	r.FillUniform(m.Data, -1, 1)
	return m
}

func randVec(r *rng.Rand, n int) []float64 {
	v := make([]float64, n)
	r.FillUniform(v, -1, 1)
	return v
}

func BenchmarkMulVec(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			w := randMatrix(r, s.h, s.d)
			x := randVec(r, s.d)
			dst := make([]float64, s.h)
			b.SetBytes(int64(8 * s.h * s.d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulVec(dst, w, x)
			}
		})
	}
}

func BenchmarkMulVecTrans(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			beta := randMatrix(r, s.h, s.d) // H×M with M=D (autoencoder)
			h := randVec(r, s.h)
			dst := make([]float64, s.d)
			b.SetBytes(int64(8 * s.h * s.d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulVecTrans(dst, beta, h)
			}
		})
	}
}

func BenchmarkDot(b *testing.B) {
	for _, n := range []int{22, 128, 511} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			r := rng.New(1)
			x := randVec(r, n)
			y := randVec(r, n)
			b.SetBytes(int64(8 * n))
			b.ResetTimer()
			var s float64
			for i := 0; i < b.N; i++ {
				s += Dot(x, y)
			}
			sinkFloat = s
		})
	}
}

// BenchmarkAddScaledOuterP is the H×H rank-1 Sherman-Morrison update of
// Train: P ← P − ph·phᵀ/denom.
func BenchmarkAddScaledOuterP(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			p := randMatrix(r, s.h, s.h)
			ph := randVec(r, s.h)
			b.SetBytes(int64(8 * s.h * s.h))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.AddScaledOuter(-1e-9, ph, ph)
			}
		})
	}
}

// BenchmarkAddScaledOuterBeta is the H×M (M=D) output-weight update of
// Train: β ← β + k·eᵀ.
func BenchmarkAddScaledOuterBeta(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			beta := randMatrix(r, s.h, s.d)
			k := randVec(r, s.h)
			e := randVec(r, s.d)
			b.SetBytes(int64(8 * s.h * s.d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				beta.AddScaledOuter(1e-9, k, e)
			}
		})
	}
}

func BenchmarkMul(b *testing.B) {
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			p := randMatrix(r, s.h, s.h)
			ht := randMatrix(r, s.h, s.d)
			dst := New(s.h, s.d)
			b.SetBytes(int64(8 * s.h * s.h * s.d))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Mul(dst, p, ht)
			}
		})
	}
}

// BenchmarkMulTransA is the Gram-matrix build HᵀH of batch
// initialisation, with N=256 batch rows.
func BenchmarkMulTransA(b *testing.B) {
	const batch = 256
	for _, s := range benchShapes {
		b.Run(benchName(s.d, s.h), func(b *testing.B) {
			r := rng.New(1)
			hm := randMatrix(r, batch, s.h)
			dst := New(s.h, s.h)
			b.SetBytes(int64(8 * batch * s.h * s.h))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MulTransA(dst, hm, hm)
			}
		})
	}
}

// batchSizes is the sample-block axis of the batched-kernel benches:
// per-sample (the degenerate batch), the L1-friendly mid block, and the
// chunk size the scoring pipeline actually uses.
var batchSizes = []int{1, 8, 64}

func randRows(r *rng.Rand, n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = randVec(r, d)
	}
	return rows
}

// BenchmarkMulBatchRows is the hidden-layer GEMM of the batched scoring
// path at the detector's real shape: N samples against the H×D weight
// slab, which streams through cache once per block instead of once per
// sample. ns/op is per sample, so rows compare directly across N.
func BenchmarkMulBatchRows(b *testing.B) {
	const d, h = 511, 22
	for _, n := range batchSizes {
		b.Run(fmt.Sprintf("D%d_H%d/batch%d", d, h, n), func(b *testing.B) {
			r := rng.New(1)
			w := randMatrix(r, h, d)
			xs := randRows(r, n, d)
			dst := New(n, h)
			b.SetBytes(int64(8 * h * d))
			b.ResetTimer()
			for i := 0; i < b.N; i += n {
				MulBatchRows(dst, xs, w)
			}
		})
	}
}

// BenchmarkDotF32 measures the float32 dot kernel with the SIMD
// dispatch as built (see the f32simd suffix for what ran).
func BenchmarkDotF32(b *testing.B) {
	for _, n := range []int{22, 128, 511} {
		b.Run(fmt.Sprintf("N%d/f32simd=%v", n, F32SIMD()), func(b *testing.B) {
			r := rng.New(1)
			x := make([]float32, n)
			y := make([]float32, n)
			for i := range x {
				x[i] = float32(r.Float64()*2 - 1)
				y[i] = float32(r.Float64()*2 - 1)
			}
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			var s float32
			for i := 0; i < b.N; i++ {
				s += DotF32(x, y)
			}
			sinkFloat32 = s
		})
	}
}

// BenchmarkMulBatchF32 is the float32 hidden-layer GEMM (dst = xs·wᵀ)
// of the batched scoring path; ns/op is per sample.
func BenchmarkMulBatchF32(b *testing.B) {
	const d, h = 511, 22
	for _, n := range batchSizes {
		b.Run(fmt.Sprintf("D%d_H%d/batch%d/f32simd=%v", d, h, n, F32SIMD()), func(b *testing.B) {
			r := rng.New(1)
			w := NewOf[float32](h, d)
			xs := NewOf[float32](n, d)
			for i := range w.Data {
				w.Data[i] = float32(r.Float64()*2 - 1)
			}
			for i := range xs.Data {
				xs.Data[i] = float32(r.Float64()*2 - 1)
			}
			dst := NewOf[float32](n, h)
			b.SetBytes(int64(4 * h * d))
			b.ResetTimer()
			for i := 0; i < b.N; i += n {
				MulBatchF32(dst, xs, w)
			}
		})
	}
}

// sinkFloat defeats dead-code elimination in value-returning benches.
var sinkFloat float64
var sinkFloat32 float32

//go:build !amd64

package mat

// Stubs for the amd64-only SIMD kernels. f32SIMD is never set on other
// architectures, so these are unreachable; they exist only to keep the
// dispatchers in f32.go compiling on every GOARCH (the ROADMAP's ARM
// cross-build included).

func dotF32Asm(a, b *float32, n int) float32 {
	panic("mat: dotF32Asm called without SIMD support")
}

func axpy4F32Asm(dst, b *float32, ldb int, s *[4]float32, n int) {
	panic("mat: axpy4F32Asm called without SIMD support")
}

func axpy1F32Asm(dst, b *float32, s float32, n int) {
	panic("mat: axpy1F32Asm called without SIMD support")
}

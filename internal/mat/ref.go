package mat

// Reference kernels: the pre-blocking implementations of Mul and
// MulTransA, kept verbatim as the ground truth the parity tests compare
// the cache-blocked kernels against. The blocked kernels in mat.go are
// written to preserve these kernels' exact floating-point accumulation
// association at float64 (see the comments there), so "matches the
// reference bit for bit" is a testable invariant rather than an
// aspiration. Do not optimise these: their only job is to stay simple
// and obviously correct.

// refMul computes dst = a·b with the historical 4-wide k-unrolled loop.
func refMul[E Element](dst, a, b *MatrixOf[E]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(ErrShape)
	}
	n := a.Cols
	bc := b.Cols
	n4 := n &^ 3
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		var k int
		for ; k < n4; k += 4 {
			a0, a1, a2, a3 := arow[k], arow[k+1], arow[k+2], arow[k+3]
			b0 := b.Data[k*bc : k*bc+bc]
			b1 := b.Data[(k+1)*bc : (k+1)*bc+bc]
			b2 := b.Data[(k+2)*bc : (k+2)*bc+bc]
			b3 := b.Data[(k+3)*bc : (k+3)*bc+bc]
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				drow[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// refMulTransA computes dst = aᵀ·b with the historical 4-row loop.
func refMulTransA[E Element](dst, a, b *MatrixOf[E]) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(ErrShape)
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	n := a.Rows
	n4 := n &^ 3
	var k int
	for ; k < n4; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := range a0 {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			drow := dst.Row(i)
			if len(b0) < len(drow) || len(b1) < len(drow) || len(b2) < len(drow) || len(b3) < len(drow) {
				panic(ErrShape) // unreachable; hoists the bounds checks
			}
			for j := range drow {
				drow[j] += v0*b0[j] + v1*b1[j] + v2*b2[j] + v3*b3[j]
			}
		}
	}
	for ; k < n; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// refMulBatch computes dst = a·bᵀ one dot product at a time — the
// per-sample MulVec loop the batched kernel replaces, kept as the parity
// reference. Each element is the plain 4-accumulator dotKernel, which is
// also exactly what MulVec produces per row: the batch path being
// bit-identical to the per-sample path at every element type reduces to
// MulBatch matching this function.
func refMulBatch[E Element](dst, a, b *MatrixOf[E]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(ErrShape)
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = dotKernel(b.Row(j), arow)
		}
	}
}

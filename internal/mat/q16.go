package mat

import "math"

// Q16.16 fixed-point kernels — the third backend of the precision-
// parameterized kernel layer, shared with internal/fixed so the FPU-less
// deployment path no longer hand-rolls its own matvec and sigmoid.
//
// The kernels are generic over any type whose underlying representation
// is int32 (internal/fixed's Q satisfies the constraint), carrying 16
// integer and 16 fractional bits. Products run through 64-bit
// intermediates; results saturate at the representable range instead of
// wrapping, matching the behaviour of a careful MCU port.

// FixedElement constrains the Q16.16 fixed-point element types the
// integer kernels instantiate at.
type FixedElement interface {
	~int32
}

// Q16Shift is the fractional bit count of the Q16.16 format.
const Q16Shift = 16

// Q16One is the raw Q16.16 representation of 1.0.
const Q16One = int32(1) << Q16Shift

// SatQ16 saturates a 64-bit intermediate to the Q16.16 range.
func SatQ16[F FixedElement](v int64) F {
	switch {
	case v > int64(math.MaxInt32):
		return F(math.MaxInt32)
	case v < int64(math.MinInt32):
		return F(math.MinInt32)
	}
	return F(v)
}

// AddQ16 returns a+b with saturation.
func AddQ16[F FixedElement](a, b F) F { return SatQ16[F](int64(a) + int64(b)) }

// SubQ16 returns a−b with saturation.
func SubQ16[F FixedElement](a, b F) F { return SatQ16[F](int64(a) - int64(b)) }

// MulQ16 multiplies two Q16.16 values with a 64-bit intermediate (no
// overflow of the product itself; the result saturates).
func MulQ16[F FixedElement](a, b F) F {
	return SatQ16[F]((int64(a) * int64(b)) >> Q16Shift)
}

// DotQ16 accumulates Σ aᵢ·bᵢ in a 64-bit accumulator and converts once —
// the standard fixed-point MAC-loop pattern (one shift per dot product,
// not per term).
func DotQ16[F FixedElement](a, b []F) F {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var acc int64
	for i, v := range a {
		acc += int64(v) * int64(b[i])
	}
	return SatQ16[F](acc >> Q16Shift)
}

// L1DistQ16 returns Σ|aᵢ−bᵢ| with a 64-bit accumulator.
func L1DistQ16[F FixedElement](a, b []F) F {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	var acc int64
	for i, v := range a {
		d := int64(v) - int64(b[i])
		if d < 0 {
			d = -d
		}
		acc += d
	}
	return SatQ16[F](acc)
}

// MulVecQ16 computes dst[i] = dot(row i of w, x) for the row-major
// rows×cols weight slab w, with rows = len(dst) and cols = len(x) —
// the fixed-point counterpart of MulVec.
func MulVecQ16[F FixedElement](dst []F, w []F, x []F) {
	if len(w) != len(dst)*len(x) {
		panic(ErrShape)
	}
	cols := len(x)
	for i := range dst {
		dst[i] = DotQ16(w[i*cols:(i+1)*cols], x)
	}
}

// MulVecBatchQ16 is the batched form of MulVecQ16: for each of the
// len(xs) samples it computes dst[i*rows:(i+1)*rows] = w·xs[i], where w
// is the row-major rows×cols weight slab and every sample has length
// cols. Samples are processed in small blocks so each weight row is
// streamed from memory once per block instead of once per sample — the
// same amortisation as the float MulBatch. Every element is the same
// DotQ16 the per-sample kernel computes (one 64-bit accumulator, one
// saturation), so batched results are bit-identical to per-sample ones.
func MulVecBatchQ16[F FixedElement](dst []F, w []F, xs [][]F, rows int) {
	if len(dst) != rows*len(xs) {
		panic(ErrShape)
	}
	const blk = 4
	for i0 := 0; i0 < len(xs); i0 += blk {
		i1 := i0 + blk
		if i1 > len(xs) {
			i1 = len(xs)
		}
		for i := i0; i < i1; i++ {
			if len(w) != rows*len(xs[i]) {
				panic(ErrShape)
			}
		}
		cols := len(xs[i0])
		for r := 0; r < rows; r++ {
			wrow := w[r*cols : (r+1)*cols]
			for i := i0; i < i1; i++ {
				dst[i*rows+r] = DotQ16(wrow, xs[i])
			}
		}
	}
}

// MulVecTransQ16 computes dst = wᵀ·x for the row-major rows×cols slab w,
// with rows = len(x) and cols = len(dst) — the fixed-point counterpart
// of MulVecTrans. Each term saturates individually, matching the
// per-MAC behaviour of a 32-bit accumulator MCU port.
func MulVecTransQ16[F FixedElement](dst []F, w []F, x []F) {
	if len(w) != len(x)*len(dst) {
		panic(ErrShape)
	}
	for j := range dst {
		dst[j] = 0
	}
	cols := len(dst)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := w[i*cols : (i+1)*cols]
		for j, v := range row {
			dst[j] = AddQ16(dst[j], MulQ16(xi, v))
		}
	}
}

// sigmoidQ16Table holds a piecewise-linear approximation of the logistic
// function over [-8, 8] with 64 segments; beyond the range it clamps to
// 0/1. Max absolute error ≈ 1e-3, well below the Q16.16 noise floor of
// the downstream dot products at D≈500.
const sigmoidQ16Segments = 64

var sigmoidQ16Table [sigmoidQ16Segments + 1]int32

func init() {
	for i := 0; i <= sigmoidQ16Segments; i++ {
		x := -8.0 + 16.0*float64(i)/float64(sigmoidQ16Segments)
		sigmoidQ16Table[i] = int32(math.Round(1.0 / (1.0 + math.Exp(-x)) * float64(Q16One)))
	}
}

// SigmoidQ16 evaluates the logistic function by table interpolation —
// the table-driven activation an FPU-less MCU port uses in place of exp.
func SigmoidQ16[F FixedElement](x F) F {
	lo := int64(-8) << Q16Shift
	hi := int64(8) << Q16Shift
	if int64(x) <= lo {
		return 0
	}
	if int64(x) >= hi {
		return F(Q16One)
	}
	// Position within the table: (x+8)/16 · segments.
	pos := (int64(x) - lo) * sigmoidQ16Segments
	span := hi - lo
	idx := pos / span
	frac := F(((pos % span) << Q16Shift) / span)
	a := F(sigmoidQ16Table[idx])
	b := F(sigmoidQ16Table[idx+1])
	return AddQ16(a, MulQ16(frac, SubQ16(b, a)))
}

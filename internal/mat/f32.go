package mat

// Float32 fast-path kernels. The generic kernel layer compiles to clean
// scalar loops — gc does not auto-vectorize — so a float32 matvec runs
// at the same MACs/cycle as float64 while the paper's pitch for f32 is
// bandwidth and speed. These concrete float32 entry points dispatch to
// hand-written AVX2+FMA kernels (f32_amd64.s) when the running CPU has
// them and fall back to the shared generic kernels everywhere else
// (including the GOARCH=arm cross-build and pre-AVX2 amd64).
//
// The functions are deliberately non-generic: dispatching inside the
// generic kernels on the element type would box slice headers through
// interfaces and break the zero-allocation contract of the scoring hot
// path.
//
// Numerically the SIMD kernels fuse multiply-adds and use wider
// accumulator trees than the scalar reference, so float32 results are
// CPU-feature-dependent within the usual accumulation-error envelope
// (the f32 backend's tests are tolerance-based for exactly this
// reason). What is guaranteed — and what the batch path relies on — is
// self-consistency: the per-sample and batched entry points below share
// one kernel per operation, so batched f32 scores are bit-identical to
// per-sample f32 scores on any given machine.

// f32SIMD reports whether the AVX2+FMA kernels are usable on this CPU.
// Set once at init by the amd64 feature probe; never true elsewhere.
var f32SIMD bool

// F32SIMD reports whether the float32 kernels are running the
// hand-written SIMD path on this machine (AVX2+FMA, amd64 only). The
// benchmarks record it so throughput numbers are attributable.
func F32SIMD() bool { return f32SIMD }

// f32SIMDMinLen is the vector length below which the scalar kernel wins:
// under one 8-lane step the asm call is all prologue and tail.
const f32SIMDMinLen = 8

// DotF32 returns the inner product of a and b (equal lengths).
func DotF32(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(ErrShape)
	}
	if f32SIMD && len(a) >= f32SIMDMinLen {
		return dotF32Asm(&a[0], &b[0], len(a))
	}
	return dotKernel(a, b)
}

// MulVecF32 computes dst = m·x — the float32 MulVec with SIMD row dots.
func MulVecF32(dst []float32, m *MatrixOf[float32], x []float32) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(ErrShape)
	}
	cols := m.Cols
	if f32SIMD && cols >= f32SIMDMinLen {
		for i := range dst {
			dst[i] = dotF32Asm(&m.Data[i*cols], &x[0], cols)
		}
		return
	}
	for i := range dst {
		dst[i] = dotKernel(m.Data[i*cols:i*cols+cols], x)
	}
}

// MulVecTransF32 computes dst = mᵀ·x — the float32 MulVecTrans, folding
// four matrix rows into dst per SIMD sweep and remaining rows one at a
// time (the zero-skip on tail rows mirrors the generic kernel).
func MulVecTransF32(dst []float32, m *MatrixOf[float32], x []float32) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(ErrShape)
	}
	if !f32SIMD || m.Cols < f32SIMDMinLen {
		MulVecTrans(dst, m, x)
		return
	}
	for j := range dst {
		dst[j] = 0
	}
	cols := m.Cols
	n := m.Rows
	n4 := n &^ 3
	var s [4]float32
	var i int
	for ; i < n4; i += 4 {
		s[0], s[1], s[2], s[3] = x[i], x[i+1], x[i+2], x[i+3]
		axpy4F32Asm(&dst[0], &m.Data[i*cols], cols, &s, cols)
	}
	for ; i < n; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		axpy1F32Asm(&dst[0], &m.Data[i*cols], xi, cols)
	}
}

// MulBatchF32 is the float32 MulBatch: dst = a·bᵀ, each element the same
// dot kernel MulVecF32 runs per row, blocked so a block of a's rows is
// L1-resident while each b row streams once per block.
func MulBatchF32(dst, a, b *MatrixOf[float32]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(ErrShape)
	}
	dc := dst.Cols
	cols := a.Cols
	simd := f32SIMD && cols >= f32SIMDMinLen
	for i0 := 0; i0 < a.Rows; i0 += batchRowBlock {
		i1 := i0 + batchRowBlock
		if i1 > a.Rows {
			i1 = a.Rows
		}
		for j := 0; j < b.Rows; j++ {
			if simd {
				brow := &b.Data[j*cols]
				for i := i0; i < i1; i++ {
					dst.Data[i*dc+j] = dotF32Asm(brow, &a.Data[i*cols], cols)
				}
				continue
			}
			brow := b.Row(j)
			for i := i0; i < i1; i++ {
				dst.Data[i*dc+j] = dotKernel(brow, a.Row(i))
			}
		}
	}
}

// MulBatchTransF32 computes dst's row i = mᵀ·(a's row i) for every row
// of a — the batched output-layer pass (O = H·β for row-major per-sample
// activations). It is exactly MulVecTransF32 per row, so batched outputs
// are bit-identical to per-sample ones; the batch win for this pass is
// β staying cache-hot across the rows of one block.
func MulBatchTransF32(dst, a *MatrixOf[float32], m *MatrixOf[float32]) {
	if dst.Rows != a.Rows || a.Cols != m.Rows || dst.Cols != m.Cols {
		panic(ErrShape)
	}
	for i := 0; i < a.Rows; i++ {
		MulVecTransF32(dst.Row(i), m, a.Row(i))
	}
}

package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpyScaleSubAdd(t *testing.T) {
	y := []float64{1, 1}
	AxpyVec(y, 2, []float64{3, -1})
	if y[0] != 7 || y[1] != -1 {
		t.Fatalf("Axpy = %v", y)
	}
	ScaleVec(y, 0.5)
	if y[0] != 3.5 || y[1] != -0.5 {
		t.Fatalf("Scale = %v", y)
	}
	d := make([]float64, 2)
	SubVec(d, []float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub = %v", d)
	}
	AddVec(d, d, []float64{1, 1})
	if d[0] != 4 || d[1] != 3 {
		t.Fatalf("Add = %v", d)
	}
}

func TestDistances(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, -2, 2}
	if got := L1Dist(a, b); got != 5 {
		t.Fatalf("L1 = %v, want 5", got)
	}
	if got := L2Dist(a, b); got != 3 {
		t.Fatalf("L2 = %v, want 3", got)
	}
	if got := SqDist(a, b); got != 9 {
		t.Fatalf("Sq = %v, want 9", got)
	}
	if got := Norm2(b); got != 3 {
		t.Fatalf("Norm2 = %v, want 3", got)
	}
}

func TestMeanVec(t *testing.T) {
	dst := make([]float64, 2)
	MeanVec(dst, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	if dst[0] != 3 || dst[1] != 4 {
		t.Fatalf("MeanVec = %v", dst)
	}
}

func TestMeanVecPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MeanVec(make([]float64, 1), nil)
}

func TestRunningMeanUpdateMatchesBatchMean(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := 4
	mean := make([]float64, dim)
	var rows [][]float64
	n := 0
	for i := 0; i < 200; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		rows = append(rows, x)
		n = RunningMeanUpdate(mean, n, x)
	}
	if n != 200 {
		t.Fatalf("count = %d", n)
	}
	batch := make([]float64, dim)
	MeanVec(batch, rows)
	for j := range mean {
		if math.Abs(mean[j]-batch[j]) > 1e-10 {
			t.Fatalf("running mean %v != batch mean %v", mean, batch)
		}
	}
}

func TestEWMAUpdateConvergesToConstant(t *testing.T) {
	mean := []float64{0, 0}
	target := []float64{10, -5}
	for i := 0; i < 500; i++ {
		EWMAUpdate(mean, 0.1, target)
	}
	for j := range mean {
		if math.Abs(mean[j]-target[j]) > 1e-6 {
			t.Fatalf("EWMA did not converge: %v", mean)
		}
	}
}

func TestEWMAUpdateGammaOneTracksSample(t *testing.T) {
	mean := []float64{3, 3}
	EWMAUpdate(mean, 1, []float64{-1, 7})
	if mean[0] != -1 || mean[1] != 7 {
		t.Fatalf("γ=1 should replace mean, got %v", mean)
	}
}

func TestArgMinArgMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if ArgMin(xs) != 1 { // ties break to lowest index
		t.Fatalf("ArgMin = %d, want 1", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Fatalf("ArgMax = %d, want 4", ArgMax(xs))
	}
}

func TestArgMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ArgMin[float64](nil)
}

func TestCopyVec(t *testing.T) {
	x := []float64{1, 2}
	c := CopyVec(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("CopyVec must not alias")
	}
}

// Property: triangle inequality holds for both metrics.
func TestPropTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(16)
		a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
		for i := 0; i < n; i++ {
			a[i], b[i], c[i] = r.NormFloat64(), r.NormFloat64(), r.NormFloat64()
		}
		const eps = 1e-9
		return L1Dist(a, c) <= L1Dist(a, b)+L1Dist(b, c)+eps &&
			L2Dist(a, c) <= L2Dist(a, b)+L2Dist(b, c)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the running mean after k identical samples equals the sample.
func TestPropRunningMeanFixedPoint(t *testing.T) {
	f := func(v float64, k uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
			// mean·n + v overflows near MaxFloat64; out of scope for the
			// update rule, which operates on feature-scaled data.
			return true
		}
		mean := []float64{v}
		n := 1
		for i := 0; i < int(k%32); i++ {
			n = RunningMeanUpdate(mean, n, []float64{v})
		}
		return math.Abs(mean[0]-v) < 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Parity tests for the cache-blocked and batched kernels against the
// reference implementations in ref.go, and for the SIMD float32 kernels
// against the generic scalar path.
//
// Exactness tiers:
//   - Blocked Mul/MulTransA vs refMul/refMulTransA: bit-identical at
//     float64 AND float32 — the 8-wide pass is written as two 4-term
//     statements, preserving the reference association exactly.
//   - MulBatch/MulBatchRows vs refMulBatch: bit-identical at both float
//     types — every element is the same dotKernel call.
//   - MulVecBatchQ16 vs MulVecQ16: bit-identical — DotQ16 accumulates in
//     int64 and saturates once, so per-element order never changes.
//   - SIMD f32 kernels vs generic scalar: tolerance-based — FMA and wide
//     accumulator trees legitimately round differently. The tolerance is
//     scaled to float32 accumulation error over the vector length.
//   - SIMD batch vs SIMD per-sample: bit-identical — both entry points
//     run the same asm kernel per element.

// parityShapes covers the awkward cases: single-element dims, exact
// multiples of the 4- and 8-wide blocking, one-off-a-multiple (ragged
// tails), and the paper's real shapes (D=511, H=22).
var parityShapes = []struct{ n, d, h int }{
	{1, 1, 1},
	{1, 511, 22},
	{3, 5, 2},
	{4, 8, 8},
	{5, 9, 7},
	{7, 12, 4},
	{8, 16, 3},
	{9, 17, 9},
	{16, 32, 22},
	{17, 33, 23},
	{64, 511, 22},
	{65, 63, 129},
}

func fillRand[E Element](rng *rand.Rand, data []E) {
	for i := range data {
		// Sprinkle exact zeros so the zero-skip scalar tails are hit.
		if rng.Intn(8) == 0 {
			data[i] = 0
			continue
		}
		data[i] = E(rng.NormFloat64())
	}
}

func randomOf[E Element](rng *rand.Rand, r, c int) *MatrixOf[E] {
	m := NewOf[E](r, c)
	fillRand(rng, m.Data)
	return m
}

func requireBitEqual[E Element](t *testing.T, got, want []E, what string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] || (got[i] == 0 && math.Signbit(float64(got[i])) != math.Signbit(float64(want[i]))) {
			t.Fatalf("%s: element %d = %v, want %v (bit-exact)", what, i, got[i], want[i])
		}
	}
}

func testMulParity[E Element](t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, s := range parityShapes {
		a := randomOf[E](rng, s.n, s.d)
		b := randomOf[E](rng, s.d, s.h)
		got := NewOf[E](s.n, s.h)
		want := NewOf[E](s.n, s.h)
		Mul(got, a, b)
		refMul(want, a, b)
		requireBitEqual(t, got.Data, want.Data, "Mul")

		at := randomOf[E](rng, s.d, s.n)
		gotT := NewOf[E](s.n, s.h)
		wantT := NewOf[E](s.n, s.h)
		MulTransA(gotT, at, b)
		refMulTransA(wantT, at, b)
		requireBitEqual(t, gotT.Data, wantT.Data, "MulTransA")
	}
}

func TestMulBlockedMatchesReferenceF64(t *testing.T) { testMulParity[float64](t, 1) }
func TestMulBlockedMatchesReferenceF32(t *testing.T) { testMulParity[float32](t, 2) }

func testMulBatchParity[E Element](t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, s := range parityShapes {
		a := randomOf[E](rng, s.n, s.d)
		w := randomOf[E](rng, s.h, s.d)
		got := NewOf[E](s.n, s.h)
		want := NewOf[E](s.n, s.h)
		MulBatch(got, a, w)
		refMulBatch(want, a, w)
		requireBitEqual(t, got.Data, want.Data, "MulBatch")

		// Rows form, and per-sample MulVec equivalence.
		xs := make([][]E, s.n)
		for i := range xs {
			xs[i] = a.Row(i)
		}
		gotRows := NewOf[E](s.n, s.h)
		MulBatchRows(gotRows, xs, w)
		requireBitEqual(t, gotRows.Data, want.Data, "MulBatchRows")

		per := make([]E, s.h)
		for i := range xs {
			MulVec(per, w, xs[i])
			requireBitEqual(t, gotRows.Row(i), per, "MulBatchRows vs MulVec")
		}
	}
}

func TestMulBatchMatchesReferenceF64(t *testing.T) { testMulBatchParity[float64](t, 3) }
func TestMulBatchMatchesReferenceF32(t *testing.T) { testMulBatchParity[float32](t, 4) }

// TestMulBlockedPropertyRandomShapes is the property-style sweep: many
// random shapes beyond the curated list, still demanding bit-equality.
func TestMulBlockedPropertyRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(24)
		d := 1 + rng.Intn(70)
		h := 1 + rng.Intn(24)
		a := randomOf[float64](rng, n, d)
		b := randomOf[float64](rng, d, h)
		got := New(n, h)
		want := New(n, h)
		Mul(got, a, b)
		refMul(want, a, b)
		requireBitEqual(t, got.Data, want.Data, "Mul(property)")

		at := randomOf[float64](rng, d, n)
		MulTransA(got, at, b)
		refMulTransA(want, at, b)
		requireBitEqual(t, got.Data, want.Data, "MulTransA(property)")

		w := randomOf[float64](rng, h, d)
		MulBatch(got, a, w)
		refMulBatch(want, a, w)
		requireBitEqual(t, got.Data, want.Data, "MulBatch(property)")
	}
}

// f32Tol returns the comparison tolerance for SIMD-vs-scalar float32
// sums of n products: accumulation error grows like sqrt(n) in the
// random case but we budget linearly to keep the test deterministic.
func f32Tol(n int, scale float64) float64 {
	return float64(n)*1e-6*scale + 1e-6
}

func maxAbs32(v []float32) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(float64(x)); a > m {
			m = a
		}
	}
	return m
}

func TestF32SIMDKernelsMatchScalar(t *testing.T) {
	if !f32SIMD {
		t.Skip("SIMD kernels not available on this CPU")
	}
	defer func() { f32SIMD = true }()
	rng := rand.New(rand.NewSource(6))
	for _, s := range parityShapes {
		w := randomOf[float32](rng, s.h, s.d)
		x := make([]float32, s.d)
		fillRand(rng, x)

		f32SIMD = true
		gotDot := DotF32(w.Row(0), x)
		gotMV := make([]float32, s.h)
		MulVecF32(gotMV, w, x)
		xh := make([]float32, s.h)
		fillRand(rng, xh)
		gotMVT := make([]float32, s.d)
		MulVecTransF32(gotMVT, w, xh)

		f32SIMD = false
		wantDot := DotF32(w.Row(0), x)
		wantMV := make([]float32, s.h)
		MulVecF32(wantMV, w, x)
		wantMVT := make([]float32, s.d)
		MulVecTransF32(wantMVT, w, xh)
		f32SIMD = true

		tol := f32Tol(s.d, maxAbs32(w.Row(0))*maxAbs32(x))
		if math.Abs(float64(gotDot)-float64(wantDot)) > tol {
			t.Fatalf("DotF32 d=%d: simd %v scalar %v (tol %v)", s.d, gotDot, wantDot, tol)
		}
		for i := range gotMV {
			if math.Abs(float64(gotMV[i])-float64(wantMV[i])) > tol {
				t.Fatalf("MulVecF32 shape %dx%d row %d: simd %v scalar %v", s.h, s.d, i, gotMV[i], wantMV[i])
			}
		}
		tolT := f32Tol(s.h, maxAbs32(xh)*2)
		for j := range gotMVT {
			if math.Abs(float64(gotMVT[j])-float64(wantMVT[j])) > tolT {
				t.Fatalf("MulVecTransF32 shape %dx%d col %d: simd %v scalar %v", s.h, s.d, j, gotMVT[j], wantMVT[j])
			}
		}
	}
}

// TestF32BatchMatchesPerSample pins the batch-path invariant the scoring
// stack relies on: batched f32 results are bit-identical to per-sample
// f32 results through the same dispatchers, SIMD or not.
func TestF32BatchMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	run := func(t *testing.T) {
		for _, s := range parityShapes {
			a := randomOf[float32](rng, s.n, s.d)
			w := randomOf[float32](rng, s.h, s.d)
			batch := NewOf[float32](s.n, s.h)
			MulBatchF32(batch, a, w)
			per := make([]float32, s.h)
			for i := 0; i < s.n; i++ {
				MulVecF32(per, w, a.Row(i))
				requireBitEqual(t, batch.Row(i), per, "MulBatchF32 vs MulVecF32")
			}

			h := randomOf[float32](rng, s.n, s.h)
			beta := randomOf[float32](rng, s.h, s.d)
			batchT := NewOf[float32](s.n, s.d)
			MulBatchTransF32(batchT, h, beta)
			perT := make([]float32, s.d)
			for i := 0; i < s.n; i++ {
				MulVecTransF32(perT, beta, h.Row(i))
				requireBitEqual(t, batchT.Row(i), perT, "MulBatchTransF32 vs MulVecTransF32")
			}
		}
	}
	t.Run("dispatch", run)
	if f32SIMD {
		f32SIMD = false
		t.Run("scalar", run)
		f32SIMD = true
	}
}

func TestMulVecBatchQ16MatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range parityShapes {
		w := make([]int32, s.h*s.d)
		for i := range w {
			w[i] = int32(rng.Intn(1<<20) - 1<<19)
		}
		xs := make([][]int32, s.n)
		for i := range xs {
			xs[i] = make([]int32, s.d)
			for j := range xs[i] {
				xs[i][j] = int32(rng.Intn(1<<20) - 1<<19)
			}
		}
		dst := make([]int32, s.n*s.h)
		MulVecBatchQ16(dst, w, xs, s.h)
		per := make([]int32, s.h)
		for i := range xs {
			MulVecQ16(per, w, xs[i])
			for r := range per {
				if dst[i*s.h+r] != per[r] {
					t.Fatalf("MulVecBatchQ16 sample %d row %d: %d want %d", i, r, dst[i*s.h+r], per[r])
				}
			}
		}
	}
}

func TestBatchKernelShapePanics(t *testing.T) {
	a := New(3, 4)
	w := New(2, 4)
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"MulBatch dims", func() { MulBatch(New(3, 3), a, w) }},
		{"MulBatch inner", func() { MulBatch(New(3, 2), a, New(2, 5)) }},
		{"MulBatchRows ragged", func() {
			MulBatchRows(New(2, 2), [][]float64{make([]float64, 4), make([]float64, 3)}, w)
		}},
		{"MulBatchF32", func() { MulBatchF32(NewOf[float32](3, 3), NewOf[float32](3, 4), NewOf[float32](2, 4)) }},
		{"MulVecBatchQ16", func() {
			MulVecBatchQ16(make([]int32, 3), make([]int32, 8), [][]int32{make([]int32, 4)}, 2)
		}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected shape panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

package pressure_test

import (
	"testing"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/oselm"
	"edgedrift/internal/pressure"
	"edgedrift/internal/rng"
)

// The governor's Pool contract is satisfied by the public Fleet — the
// compile-time pin that keeps the two packages in step.
var _ pressure.Pool = (*edgedrift.Fleet)(nil)

// TestGovernorDrivesRealFleet closes the loop against an actual fleet:
// manual deterministic ticks demote the colder member first and promote
// it back, with the fleet's own transition counters agreeing.
func TestGovernorDrivesRealFleet(t *testing.T) {
	oldC := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldC, 300, r)
	st, err := synth.Generate(oldC, oldC, 800, synth.Spec{Kind: synth.Sudden, Start: 400}, r)
	if err != nil {
		t.Fatal(err)
	}
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	for _, id := range []string{"hot", "cold"} {
		mon, err := edgedrift.New(edgedrift.Options{Classes: 2, Inputs: 3, Hidden: 8, Window: 50, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if err := mon.Fit(trainX, trainY); err != nil {
			t.Fatal(err)
		}
		if err := f.Add(id, mon); err != nil {
			t.Fatal(err)
		}
	}
	g := pressure.New(pressure.Config{LatencyBudgetNs: 1000, HighStreak: 2, LowStreak: 2, Cooldown: 1}, f)

	serve := func(id string, n int) {
		if _, err := f.ProcessBatch(id, st.X[:n]); err != nil {
			t.Fatal(err)
		}
	}
	demoted := 0
	for i := 0; i < 20 && demoted < 2; i++ {
		serve("hot", 40)
		serve("cold", 2)
		if a := g.Tick(pressure.Sample{P99Ns: 5000}); a.Kind == pressure.Demote {
			demoted++
			if demoted == 1 && a.Stream != "cold" {
				t.Fatalf("first demotion hit %q, want the cold member", a.Stream)
			}
		}
	}
	if demoted != 2 {
		t.Fatalf("governor demoted %d members under sustained pressure", demoted)
	}
	m := f.Metrics()
	if m.Degraded != 2 || m.Demotions != 2 {
		t.Fatalf("fleet metrics disagree with the governor: %+v", m)
	}
	for _, id := range []string{"hot", "cold"} {
		if degraded, active, _, _ := f.MemberPrecision(id); !degraded || active != oselm.Float32 {
			t.Fatalf("%s: degraded=%v active=%v", id, degraded, active)
		}
	}

	promoted := 0
	for i := 0; i < 20 && promoted < 2; i++ {
		serve("hot", 40)
		serve("cold", 2)
		if a := g.Tick(pressure.Sample{P99Ns: 100}); a.Kind == pressure.Promote {
			promoted++
		}
	}
	if promoted != 2 {
		t.Fatalf("governor promoted %d members after pressure cleared", promoted)
	}
	if m := f.Metrics(); m.Degraded != 0 || m.Promotions != 2 {
		t.Fatalf("fleet metrics after recovery: %+v", m)
	}
}

package pressure

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"edgedrift/internal/oselm"
)

// fakeMember is one pool entry the tests script directly.
type fakeMember struct {
	samples    uint64
	degraded   bool
	active     oselm.Precision
	capable    bool
	failDemote bool
}

// fakePool implements Pool with scripted members and a transition log.
type fakePool struct {
	members map[string]*fakeMember
	log     []string
}

func newFakePool(ids ...string) *fakePool {
	p := &fakePool{members: map[string]*fakeMember{}}
	for _, id := range ids {
		p.members[id] = &fakeMember{active: oselm.Float64, capable: true}
	}
	return p
}

func (p *fakePool) IDs() []string {
	ids := make([]string, 0, len(p.members))
	for id := range p.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (p *fakePool) MemberStats(id string) (uint64, uint64, error) {
	m, ok := p.members[id]
	if !ok {
		return 0, 0, fmt.Errorf("unknown %q", id)
	}
	return m.samples, 0, nil
}

func (p *fakePool) MemberPrecision(id string) (bool, oselm.Precision, bool, error) {
	m, ok := p.members[id]
	if !ok {
		return false, 0, false, fmt.Errorf("unknown %q", id)
	}
	return m.degraded, m.active, m.capable, nil
}

func (p *fakePool) DemoteMember(id string, target oselm.Precision) error {
	m := p.members[id]
	if m.failDemote {
		return errors.New("scripted refusal")
	}
	if m.degraded {
		return errors.New("already demoted")
	}
	m.degraded, m.active = true, target
	p.log = append(p.log, "demote:"+id)
	return nil
}

func (p *fakePool) PromoteMember(id string) error {
	m := p.members[id]
	if !m.degraded {
		return errors.New("not demoted")
	}
	m.degraded, m.active = false, oselm.Float64
	p.log = append(p.log, "promote:"+id)
	return nil
}

// serve advances per-member sample counters, defining who is "hot".
func (p *fakePool) serve(counts map[string]uint64) {
	for id, n := range counts {
		if m, ok := p.members[id]; ok {
			m.samples += n
		}
	}
}

// tickN drives n identical ticks, serving traffic before each so the
// coldness ranking stays populated.
func tickN(g *Governor, p *fakePool, s Sample, traffic map[string]uint64, n int) []Action {
	var acts []Action
	for i := 0; i < n; i++ {
		p.serve(traffic)
		if a := g.Tick(s); a.Kind != None {
			acts = append(acts, a)
		}
	}
	return acts
}

const (
	overNs  = 2_000_000 // over a 1ms budget
	clearNs = 500_000   // below 0.75 * 1ms
	bandNs  = 900_000   // inside the hysteresis band
)

func testConfig() Config {
	return Config{LatencyBudgetNs: 1_000_000, HighStreak: 3, LowStreak: 4, Cooldown: 2}
}

// hot/cold traffic: "busy" serves 100 samples per tick, "idle" 1,
// "mid" 10 — the demotion order must be idle, mid, busy.
var traffic = map[string]uint64{"busy": 100, "mid": 10, "idle": 1}

func TestGovernorDemotesColdestFirst(t *testing.T) {
	p := newFakePool("busy", "mid", "idle")
	g := New(testConfig(), p)
	acts := tickN(g, p, Sample{P99Ns: overNs}, traffic, 20)
	if len(acts) != 3 {
		t.Fatalf("actions under sustained pressure: %+v", acts)
	}
	want := []string{"demote:idle", "demote:mid", "demote:busy"}
	if !reflect.DeepEqual(p.log, want) {
		t.Fatalf("demotion order %v, want %v", p.log, want)
	}
	// Everything demoted: further pressure is a no-op, not an error loop.
	before := g.Metrics()
	if extra := tickN(g, p, Sample{P99Ns: overNs}, traffic, 10); len(extra) != 0 {
		t.Fatalf("transitions with nothing left to demote: %+v", extra)
	}
	if after := g.Metrics(); after.Errors != before.Errors {
		t.Fatalf("errors grew from %d to %d on empty candidate set", before.Errors, after.Errors)
	}
}

func TestGovernorPromotesLIFOWhenClear(t *testing.T) {
	p := newFakePool("busy", "mid", "idle")
	g := New(testConfig(), p)
	tickN(g, p, Sample{P99Ns: overNs}, traffic, 20)
	p.log = nil
	acts := tickN(g, p, Sample{P99Ns: clearNs}, traffic, 30)
	if len(acts) != 3 {
		t.Fatalf("promotions when clear: %+v", acts)
	}
	// LIFO: last demoted (busy) recovers first.
	want := []string{"promote:busy", "promote:mid", "promote:idle"}
	if !reflect.DeepEqual(p.log, want) {
		t.Fatalf("promotion order %v, want %v", p.log, want)
	}
	m := g.Metrics()
	if m.Demoted != 0 || m.Demotions != 3 || m.Promotions != 3 {
		t.Fatalf("metrics after full cycle: %+v", m)
	}
}

// TestGovernorNeverFlaps is the acceptance criterion: under any steady
// signal — sustained band pressure, or oscillation that never holds a
// streak — the governor performs no transitions at all.
func TestGovernorNeverFlaps(t *testing.T) {
	t.Run("steady-in-band", func(t *testing.T) {
		p := newFakePool("busy", "idle")
		g := New(testConfig(), p)
		if acts := tickN(g, p, Sample{P99Ns: bandNs}, traffic, 200); len(acts) != 0 {
			t.Fatalf("transitions inside the hysteresis band: %+v", acts)
		}
	})
	t.Run("oscillation-below-streaks", func(t *testing.T) {
		p := newFakePool("busy", "idle")
		g := New(testConfig(), p)
		var acts []Action
		for i := 0; i < 200; i++ {
			s := Sample{P99Ns: clearNs}
			if i%4 < 2 { // 2 over, 2 clear — never 3 consecutive of either
				s.P99Ns = overNs
			}
			p.serve(traffic)
			if a := g.Tick(s); a.Kind != None {
				acts = append(acts, a)
			}
		}
		if len(acts) != 0 {
			t.Fatalf("oscillation below both streaks caused transitions: %+v", acts)
		}
	})
	t.Run("band-resets-streaks", func(t *testing.T) {
		p := newFakePool("busy", "idle")
		g := New(testConfig(), p)
		var acts []Action
		for i := 0; i < 200; i++ {
			s := Sample{P99Ns: overNs}
			if i%3 == 2 { // 2 over, then 1 in-band: the band tick resets
				s.P99Ns = bandNs
			}
			p.serve(traffic)
			if a := g.Tick(s); a.Kind != None {
				acts = append(acts, a)
			}
		}
		if len(acts) != 0 {
			t.Fatalf("band ticks failed to reset the demotion streak: %+v", acts)
		}
	})
}

func TestGovernorCooldownSpacesTransitions(t *testing.T) {
	p := newFakePool("a", "b", "c", "d")
	g := New(Config{LatencyBudgetNs: 1_000_000, HighStreak: 1, Cooldown: 10}, p)
	even := map[string]uint64{"a": 1, "b": 2, "c": 3, "d": 4}
	var gaps []int
	last := -1
	for i := 0; i < 50; i++ {
		p.serve(even)
		if a := g.Tick(Sample{P99Ns: overNs}); a.Kind == Demote {
			if last >= 0 {
				gaps = append(gaps, i-last)
			}
			last = i
		}
	}
	if len(gaps) == 0 {
		t.Fatal("no successive demotions to measure")
	}
	for _, gap := range gaps {
		if gap <= 10 {
			t.Fatalf("demotions %d ticks apart, cooldown is 10", gap)
		}
	}
}

func TestGovernorMemoryAxis(t *testing.T) {
	p := newFakePool("a", "b")
	g := New(Config{MemoryBudgetBytes: 1000, HighStreak: 2, LowStreak: 2, Cooldown: 1}, p)
	tr := map[string]uint64{"a": 1, "b": 2}
	if acts := tickN(g, p, Sample{MemoryBytes: 2000}, tr, 10); len(acts) == 0 {
		t.Fatal("memory pressure alone did not demote")
	}
	if !p.members["a"].degraded {
		t.Fatal("colder member a not the one demoted")
	}
	if acts := tickN(g, p, Sample{MemoryBytes: 500}, tr, 10); len(acts) == 0 {
		t.Fatal("clear memory did not promote")
	}
	if p.members["a"].degraded {
		t.Fatal("member a still demoted after clear")
	}
}

func TestGovernorSkipsRefusalsAndCountsErrors(t *testing.T) {
	p := newFakePool("cold", "warm")
	p.members["cold"].failDemote = true
	g := New(Config{LatencyBudgetNs: 1_000_000, HighStreak: 1, Cooldown: 1}, p)
	tr := map[string]uint64{"cold": 1, "warm": 5}
	tickN(g, p, Sample{P99Ns: overNs}, tr, 5)
	if !p.members["warm"].degraded {
		t.Fatal("governor did not fall through to the next candidate")
	}
	if m := g.Metrics(); m.Errors == 0 {
		t.Fatalf("refusals not counted: %+v", m)
	}
}

func TestGovernorForgetsRemovedMembers(t *testing.T) {
	p := newFakePool("a", "b")
	g := New(Config{LatencyBudgetNs: 1_000_000, HighStreak: 1, LowStreak: 1, Cooldown: 0}, p)
	tr := map[string]uint64{"a": 1, "b": 5}
	tickN(g, p, Sample{P99Ns: overNs}, tr, 3) // demotes a
	if !p.members["a"].degraded {
		t.Fatal("a not demoted")
	}
	delete(p.members, "a") // the member migrates away while demoted
	if acts := tickN(g, p, Sample{P99Ns: clearNs}, map[string]uint64{"b": 5}, 10); len(acts) != 0 {
		t.Fatalf("promoted a removed member: %+v", acts)
	}
	if m := g.Metrics(); m.Demoted != 0 {
		t.Fatalf("removed member still on the demotion stack: %+v", m)
	}
}

func TestGovernorZeroBudgetsNeverAct(t *testing.T) {
	p := newFakePool("a")
	g := New(Config{}, p)
	if acts := tickN(g, p, Sample{P99Ns: 1 << 60, MemoryBytes: 1 << 40}, map[string]uint64{"a": 1}, 50); len(acts) != 0 {
		t.Fatalf("governor with no budgets acted: %+v", acts)
	}
}

// Package pressure is the adaptive capacity governor: the control loop
// that turns the precision lifecycle (Monitor.Demote / Promote, fleet
// transitions) into an automatic response to resource pressure on a
// shard. It watches two budgets — p99 ingest latency and retained
// memory — and demotes the coldest members first when either budget is
// exceeded, promoting them back (most recently demoted first) when the
// pressure clears.
//
// The governor is deliberately clock-free and side-effect-free except
// through the Pool interface: the caller samples the pressure signals
// and calls Tick, so every decision is a pure function of the observed
// sequence and the tests can replay any scenario deterministically.
// Flap resistance is structural, not tuned: a demotion needs HighStreak
// consecutive over-budget ticks, a promotion needs LowStreak
// consecutive ticks below ClearFraction of the budget (a genuine
// hysteresis band — ticks between the two thresholds reset both
// streaks), and any transition starts a Cooldown during which the
// governor only watches.
package pressure

import (
	"sort"

	"edgedrift/internal/oselm"
)

// Pool is the slice of a fleet the governor drives. *edgedrift.Fleet
// satisfies it.
type Pool interface {
	// IDs returns the registered stream IDs, sorted.
	IDs() []string
	// MemberStats returns one stream's lifetime sample and drift counts.
	MemberStats(id string) (samples, drifts uint64, err error)
	// MemberPrecision reports a member's transition state.
	MemberPrecision(id string) (degraded bool, active oselm.Precision, capable bool, err error)
	// DemoteMember and PromoteMember run the transitions.
	DemoteMember(id string, p oselm.Precision) error
	PromoteMember(id string) error
}

// Config parameterises a Governor. The zero value of every field gets
// a sane default from New; budgets left at zero are unenforced axes.
type Config struct {
	// LatencyBudgetNs is the p99 ingest-latency budget in nanoseconds;
	// 0 disables the latency axis.
	LatencyBudgetNs uint64
	// MemoryBudgetBytes is the retained-state budget; 0 disables the
	// memory axis. Note that demotion RAISES the retained total (the
	// full-precision origin is kept alongside the twin — that retention
	// is what makes promotion bit-exact), so the memory axis relieves
	// pressure only through the smaller hot working set; size the
	// budget against the latency axis for the primary effect.
	MemoryBudgetBytes int
	// Target is the precision members are demoted to; default Float32.
	Target oselm.Precision
	// HighStreak is how many consecutive over-budget ticks arm a
	// demotion; default 3.
	HighStreak int
	// LowStreak is how many consecutive clear ticks (every enforced
	// axis below ClearFraction of its budget) arm a promotion;
	// default 6.
	LowStreak int
	// ClearFraction scales the budgets down to the promotion threshold,
	// opening the hysteresis band between "over budget" and "clear";
	// default 0.75. Must be in (0, 1].
	ClearFraction float64
	// Cooldown is the minimum number of ticks between two transitions;
	// default 5.
	Cooldown int
}

func (c Config) withDefaults() Config {
	if c.Target == 0 {
		c.Target = oselm.Float32
	}
	if c.HighStreak <= 0 {
		c.HighStreak = 3
	}
	if c.LowStreak <= 0 {
		c.LowStreak = 6
	}
	if c.ClearFraction <= 0 || c.ClearFraction > 1 {
		c.ClearFraction = 0.75
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5
	}
	return c
}

// Sample is one tick's observed pressure: the shard's current p99
// ingest latency and retained memory.
type Sample struct {
	P99Ns       uint64
	MemoryBytes int
}

// ActionKind classifies what a Tick did.
type ActionKind int

const (
	// None: the governor only watched this tick.
	None ActionKind = iota
	// Demote: one member was demoted to the configured target.
	Demote
	// Promote: the most recently governor-demoted member was promoted.
	Promote
)

// Action reports one Tick's decision.
type Action struct {
	Kind   ActionKind
	Stream string
}

// Metrics is the governor's counter snapshot.
type Metrics struct {
	Ticks       uint64
	OverBudget  uint64 // ticks with at least one axis over budget
	Demotions   uint64
	Promotions  uint64
	Errors      uint64 // transitions the pool refused
	Demoted     int    // members currently demoted by this governor
	HighStreak  int    // current consecutive over-budget ticks
	LowStreak   int    // current consecutive clear ticks
	SinceChange int    // ticks since the last transition
}

// Governor is the control loop. Not safe for concurrent Tick calls;
// drive it from one goroutine (the shard's pressure loop).
type Governor struct {
	cfg  Config
	pool Pool

	lastSamples map[string]uint64 // per-member lifetime samples at the previous tick
	lastDelta   map[string]uint64 // samples served between the last two ticks
	stack       []string          // members demoted by this governor, LIFO

	high, low   int
	sinceChange int

	ticks, overBudget, demotions, promotions, errs uint64
}

// New builds a governor over a pool.
func New(cfg Config, pool Pool) *Governor {
	return &Governor{
		cfg:         cfg.withDefaults(),
		pool:        pool,
		lastSamples: map[string]uint64{},
		lastDelta:   map[string]uint64{},
		sinceChange: 1 << 30, // no cooldown before the first transition
	}
}

// over reports whether any enforced axis exceeds its budget.
func (g *Governor) over(s Sample) bool {
	if g.cfg.LatencyBudgetNs > 0 && s.P99Ns > g.cfg.LatencyBudgetNs {
		return true
	}
	if g.cfg.MemoryBudgetBytes > 0 && s.MemoryBytes > g.cfg.MemoryBudgetBytes {
		return true
	}
	return false
}

// clear reports whether every enforced axis is below ClearFraction of
// its budget — the promotion side of the hysteresis band.
func (g *Governor) clear(s Sample) bool {
	if g.cfg.LatencyBudgetNs > 0 && float64(s.P99Ns) > g.cfg.ClearFraction*float64(g.cfg.LatencyBudgetNs) {
		return false
	}
	if g.cfg.MemoryBudgetBytes > 0 && float64(s.MemoryBytes) > g.cfg.ClearFraction*float64(g.cfg.MemoryBudgetBytes) {
		return false
	}
	return true
}

// Tick advances the control loop one step with the given pressure
// sample and performs at most one transition. It never flaps: the
// streak and cooldown preconditions make a demote→promote oscillation
// impossible under any steady pressure signal.
func (g *Governor) Tick(s Sample) Action {
	g.ticks++
	g.sinceChange++
	g.updateColdness()

	switch {
	case g.over(s):
		g.overBudget++
		g.high++
		g.low = 0
		if g.high >= g.cfg.HighStreak && g.sinceChange > g.cfg.Cooldown {
			if id, ok := g.demoteColdest(); ok {
				g.high = 0
				g.sinceChange = 0
				return Action{Kind: Demote, Stream: id}
			}
		}
	case g.clear(s):
		g.low++
		g.high = 0
		if g.low >= g.cfg.LowStreak && g.sinceChange > g.cfg.Cooldown && len(g.stack) > 0 {
			if id, ok := g.promoteLatest(); ok {
				g.low = 0
				g.sinceChange = 0
				return Action{Kind: Promote, Stream: id}
			}
		}
	default:
		// Inside the hysteresis band: neither demotion nor promotion
		// evidence accumulates — this is what prevents flapping around
		// either threshold.
		g.high, g.low = 0, 0
	}
	return Action{Kind: None}
}

// updateColdness refreshes the per-member sample deltas used to rank
// members by recent activity. Members the pool no longer knows are
// forgotten (and dropped from the demotion stack — a removed member
// cannot be promoted).
func (g *Governor) updateColdness() {
	ids := g.pool.IDs()
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		seen[id] = true
		n, _, err := g.pool.MemberStats(id)
		if err != nil {
			continue
		}
		if prev, ok := g.lastSamples[id]; ok {
			g.lastDelta[id] = n - prev
		} else {
			g.lastDelta[id] = 0
		}
		g.lastSamples[id] = n
	}
	for id := range g.lastSamples {
		if !seen[id] {
			delete(g.lastSamples, id)
			delete(g.lastDelta, id)
		}
	}
	if len(g.stack) > 0 {
		kept := g.stack[:0]
		for _, id := range g.stack {
			if seen[id] {
				kept = append(kept, id)
			}
		}
		g.stack = kept
	}
}

// demoteColdest demotes the least recently active member that is
// capable and not already demoted, trying candidates in coldness order
// until one succeeds. Ties break by ID so the choice is deterministic.
func (g *Governor) demoteColdest() (string, bool) {
	type cand struct {
		id    string
		delta uint64
	}
	var cands []cand
	for _, id := range g.pool.IDs() {
		degraded, _, capable, err := g.pool.MemberPrecision(id)
		if err != nil || !capable || degraded {
			continue
		}
		cands = append(cands, cand{id: id, delta: g.lastDelta[id]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].delta != cands[j].delta {
			return cands[i].delta < cands[j].delta
		}
		return cands[i].id < cands[j].id
	})
	for _, c := range cands {
		if err := g.pool.DemoteMember(c.id, g.cfg.Target); err != nil {
			g.errs++
			continue
		}
		g.demotions++
		g.stack = append(g.stack, c.id)
		return c.id, true
	}
	return "", false
}

// promoteLatest promotes the most recently demoted member (LIFO: the
// member degraded longest gets its full precision back last, keeping
// the recovery order the mirror of the degradation order).
func (g *Governor) promoteLatest() (string, bool) {
	for len(g.stack) > 0 {
		id := g.stack[len(g.stack)-1]
		g.stack = g.stack[:len(g.stack)-1]
		if err := g.pool.PromoteMember(id); err != nil {
			g.errs++
			continue
		}
		g.promotions++
		return id, true
	}
	return "", false
}

// Metrics snapshots the governor's counters.
func (g *Governor) Metrics() Metrics {
	since := g.sinceChange
	if since > 1<<29 {
		since = 0 // never transitioned; render as 0 rather than the sentinel
	}
	return Metrics{
		Ticks:       g.ticks,
		OverBudget:  g.overBudget,
		Demotions:   g.demotions,
		Promotions:  g.promotions,
		Errors:      g.errs,
		Demoted:     len(g.stack),
		HighStreak:  g.high,
		LowStreak:   g.low,
		SinceChange: since,
	}
}

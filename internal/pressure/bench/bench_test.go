package bench

import "testing"

// TestRunMatrix runs the full forced-degradation matrix once and checks
// its structural invariants: every stream×level cell present, the
// golden gate green, baselines anchoring the deltas, and the f32
// demotion actually paying for itself on throughput.
func TestRunMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full stream replays")
	}
	rep, err := Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GoldenGateOK {
		t.Fatal("golden gate failed: demote→promote excursion perturbed the f64 path")
	}
	if len(rep.Points) != 2*len(Levels) {
		t.Fatalf("%d points, want %d", len(rep.Points), 2*len(Levels))
	}
	cells := map[string]Point{}
	for _, p := range rep.Points {
		if p.SamplesPerSec <= 0 {
			t.Fatalf("%s/%s: non-positive throughput", p.Stream, p.Level)
		}
		cells[p.Stream+"/"+p.Level] = p
	}
	base, ok := cells["nsl-kdd/f64"]
	if !ok {
		t.Fatal("missing nsl-kdd baseline")
	}
	if base.AccuracyDeltaPct != 0 {
		t.Fatalf("baseline accuracy delta %v, want 0", base.AccuracyDeltaPct)
	}
	if base.AccuracyPct < 80 {
		t.Fatalf("nsl-kdd f64 accuracy %.1f%%, implausibly low", base.AccuracyPct)
	}
	f32 := cells["nsl-kdd/f32"]
	if f32.SamplesPerSec <= base.SamplesPerSec {
		t.Fatalf("f32 demotion did not raise throughput: %0.f vs %0.f samples/s",
			f32.SamplesPerSec, base.SamplesPerSec)
	}
	if d := f32.AccuracyDeltaPct; d < -2 || d > 2 {
		t.Fatalf("f32 accuracy delta %.2f%% out of the bounded band", d)
	}
	// Demotion retains origin + twin, so the memory axis must go UP.
	if f32.MemoryBytes <= base.MemoryBytes {
		t.Fatalf("demoted footprint %d not larger than baseline %d", f32.MemoryBytes, base.MemoryBytes)
	}
	for _, s := range []string{"nsl-kdd", "fan-sudden"} {
		if cells[s+"/f64"].Delay < 0 {
			t.Fatalf("%s baseline missed the drift", s)
		}
	}
}

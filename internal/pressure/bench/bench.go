// Package bench is the forced-degradation matrix behind the adaptive
// capacity governor: it measures what the governor actually trades when
// it demotes a member — throughput gained against detection quality
// given up — at every level it can force, and gates the whole artifact
// on the demote→promote off-path being bit-exactly free.
//
// It lives beside internal/pressure rather than internal/eval because
// the eval package sits below the fleet layer (fleet's worker pool uses
// it), so it cannot import the public edgedrift Monitor whose precision
// lifecycle is being measured here.
package bench

import (
	"bytes"
	"fmt"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/datasets/nslkdd"
)

// Paper §4.2 hyper-parameters (mirrors internal/eval, which this
// package cannot import — see the package comment).
const (
	nslHidden         = 22
	fanHidden         = 22
	fanTrainN         = 120
	proposedNReconNSL = 1500
	proposedNReconFan = 200
)

// Levels is the degradation axis of the matrix: the full-precision
// baseline and the two demotion targets the capacity governor can move
// a member to at runtime.
var Levels = []string{"f64", "f32", "q16"}

// Point is one stream×level cell of the matrix: the throughput and
// detection quality of a monitor forced to that degradation level for
// the whole stream.
type Point struct {
	// Stream names the replayed stream ("nsl-kdd", "fan-sudden").
	Stream string `json:"stream"`
	// Level is the degradation level ("f64" baseline, "f32", "q16").
	Level string `json:"level"`
	// SamplesPerSec is host wall-clock scoring throughput.
	SamplesPerSec float64 `json:"samples_per_sec"`
	// AccuracyPct is the labelled accuracy in percent, -1 for
	// unlabelled streams.
	AccuracyPct float64 `json:"accuracy_pct"`
	// AccuracyDeltaPct is AccuracyPct minus the stream's f64 baseline
	// (0 for the baseline itself and for unlabelled streams).
	AccuracyDeltaPct float64 `json:"accuracy_delta_pct"`
	// Delay is the detection delay against the ground-truth drift, -1
	// when the drift went undetected.
	Delay int `json:"delay"`
	// MemoryBytes is the monitor's retained footprint at this level —
	// origin plus twin while demoted, which is why demotion helps
	// latency budgets but *raises* the memory axis.
	MemoryBytes int `json:"memory_bytes"`
}

// Report is the full forced-degradation matrix plus the gate that makes
// it trustworthy: GoldenGateOK asserts that a monitor which took a
// demote→promote excursion before the replay is bit-identical —
// per-sample results and serialised state — to one that never degraded,
// i.e. the governor's off-path is exactly free.
type Report struct {
	Seed         uint64  `json:"seed"`
	GoldenGateOK bool    `json:"golden_gate_ok"`
	Points       []Point `json:"points"`
}

// stream is one replayable stream of the matrix with everything needed
// to build a fresh monitor for each cell.
type stream struct {
	name    string
	build   func() (*edgedrift.Monitor, error)
	xs      [][]float64
	ys      []int // nil for unlabelled streams
	driftAt int
}

// streams assembles the Table 2 and Table 3 streams: the NSL-KDD
// surrogate (labelled, sudden drift) and the cooling-fan sudden stream
// (unlabelled, delay only).
func streams(seed uint64) []stream {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	fanP := coolingfan.DefaultParams()
	fanP.Seed = seed
	gen := coolingfan.NewGenerator(fanP)
	fanX, fanY := gen.TrainingSet(fanTrainN)
	fan := gen.TestSudden()
	return []stream{
		{
			name: "nsl-kdd",
			build: func() (*edgedrift.Monitor, error) {
				mon, err := edgedrift.New(edgedrift.Options{
					Classes: 2, Inputs: nslkdd.Features, Hidden: nslHidden,
					Window: 100, Seed: seed, NRecon: proposedNReconNSL,
				})
				if err != nil {
					return nil, err
				}
				return mon, mon.Fit(ds.TrainX, ds.TrainY)
			},
			xs: ds.TestX, ys: ds.TestY, driftAt: ds.DriftAt,
		},
		{
			name: "fan-sudden",
			build: func() (*edgedrift.Monitor, error) {
				mon, err := edgedrift.New(edgedrift.Options{
					Classes: 1, Inputs: coolingfan.Features, Hidden: fanHidden,
					Window: 50, Seed: seed, NRecon: proposedNReconFan,
				})
				if err != nil {
					return nil, err
				}
				return mon, mon.Fit(fanX, fanY)
			},
			xs: fan.X, driftAt: fan.DriftAt,
		},
	}
}

// demoteFor forces a freshly fitted monitor to the given level. The f64
// level is the untouched baseline.
func demoteFor(mon *edgedrift.Monitor, level string) error {
	switch level {
	case "f64":
		return nil
	case "f32":
		return mon.Demote(edgedrift.Float32)
	case "q16":
		return mon.Demote(edgedrift.Fixed16)
	default:
		return fmt.Errorf("bench: unknown pressure level %q", level)
	}
}

// replay runs the whole stream through the monitor per-sample,
// measuring wall-clock throughput, labelled accuracy and detection
// delay. Detections are counted from per-sample results because a
// q16-demoted monitor's lifetime DriftEvents belong to the frozen
// origin, not the twin doing the work.
func replay(mon *edgedrift.Monitor, st stream) Point {
	correct, detectedAt := 0, -1
	start := time.Now()
	for i, x := range st.xs {
		res := mon.Process(x)
		if st.ys != nil && res.Label == st.ys[i] {
			correct++
		}
		if res.DriftDetected && detectedAt < 0 && i >= st.driftAt {
			detectedAt = i
		}
	}
	elapsed := time.Since(start).Seconds()
	p := Point{
		Stream:        st.name,
		SamplesPerSec: float64(len(st.xs)) / elapsed,
		AccuracyPct:   -1,
		Delay:         -1,
		MemoryBytes:   mon.MemoryBytes(),
	}
	if st.ys != nil {
		p.AccuracyPct = 100 * float64(correct) / float64(len(st.xs))
	}
	if detectedAt >= 0 {
		p.Delay = detectedAt - st.driftAt
	}
	return p
}

// golden is the gate: replay the stream through a monitor that took a
// full demote→promote excursion (f32 then q16) before the first sample
// and through one that never degraded, and require bit-identical
// per-sample results plus bit-identical serialised state afterwards.
func golden(st stream) (bool, error) {
	clean, err := st.build()
	if err != nil {
		return false, err
	}
	excursion, err := st.build()
	if err != nil {
		return false, err
	}
	for _, target := range []edgedrift.Precision{edgedrift.Float32, edgedrift.Fixed16} {
		if err := excursion.Demote(target); err != nil {
			return false, err
		}
		if err := excursion.Promote(); err != nil {
			return false, err
		}
	}
	for _, x := range st.xs {
		a, b := clean.Process(x), excursion.Process(x)
		if a != b {
			return false, nil
		}
	}
	var wantState, gotState bytes.Buffer
	if err := clean.Save(&wantState, edgedrift.Float64); err != nil {
		return false, err
	}
	if err := excursion.Save(&gotState, edgedrift.Float64); err != nil {
		return false, err
	}
	return bytes.Equal(wantState.Bytes(), gotState.Bytes()), nil
}

// Run produces the forced-degradation matrix: for each Table 2/3 stream
// and each degradation level, a fresh monitor is fitted, demoted to the
// level, and replayed end to end. The golden gate runs on the
// cooling-fan stream (the cheaper of the two full replays).
func Run(seed uint64) (*Report, error) {
	ss := streams(seed)
	rep := &Report{Seed: seed}
	for _, st := range ss {
		base := -1.0
		for _, level := range Levels {
			mon, err := st.build()
			if err != nil {
				return nil, fmt.Errorf("bench: pressure %s: %w", st.name, err)
			}
			if err := demoteFor(mon, level); err != nil {
				return nil, fmt.Errorf("bench: pressure %s/%s: %w", st.name, level, err)
			}
			p := replay(mon, st)
			p.Level = level
			if st.ys != nil {
				if level == "f64" {
					base = p.AccuracyPct
				}
				p.AccuracyDeltaPct = p.AccuracyPct - base
			}
			rep.Points = append(rep.Points, p)
		}
	}
	ok, err := golden(ss[1])
	if err != nil {
		return nil, fmt.Errorf("bench: pressure golden gate: %w", err)
	}
	rep.GoldenGateOK = ok
	return rep, nil
}

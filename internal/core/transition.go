package core

import (
	"bytes"

	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
)

// Transitioner is the optional capability a stage exposes when its
// numeric precision is a runtime lifecycle rather than a construction
// choice: the stage can demote itself to a cheaper backend under
// pressure and promote back when pressure clears. It follows the same
// capability-interface pattern as Merger/BatchStreaming — callers
// discover it with AsTransitioner, and stages that are inherently
// single-precision (the baseline detectors, the Q16.16 port itself)
// simply do not implement it.
//
// The contract is asymmetric by design: Demote derives a
// reduced-precision twin and KEEPS the full-precision state aside as
// the retained origin, so Promote is exact — the origin resumes
// bit-identically, never a widened image of rounded state.
type Transitioner interface {
	// Demote switches the stage to the given lower precision. The
	// full-precision state is retained; processing flows through the
	// reduced-precision twin until Promote. Demoting an already-demoted
	// stage, to a non-lower precision, or mid-reconstruction fails and
	// leaves the stage unchanged.
	Demote(p oselm.Precision) error
	// Promote discards the reduced-precision twin and resumes the
	// retained origin exactly as it was at the demotion instant. It
	// fails if the stage is not demoted.
	Promote() error
	// ActivePrecision returns the precision processing currently runs
	// at: the origin's when not demoted, the twin's while demoted.
	ActivePrecision() oselm.Precision
	// Degraded reports whether the stage is currently demoted.
	Degraded() bool
}

// AsTransitioner discovers the Transitioner capability anywhere in a
// wrapped stage chain, seeing through Guard/Instrumented seams like
// AsMerger does.
func AsTransitioner(s Streaming) (Transitioner, bool) {
	for s != nil {
		if t, ok := s.(Transitioner); ok {
			return t, true
		}
		w, ok := s.(innerer)
		if !ok {
			return nil, false
		}
		s = w.Inner()
	}
	return nil, false
}

// CloneAt builds a detector bound to m that continues d's stream: the
// calibrated state — thresholds, centroids, counts, window machinery —
// travels through the existing SaveState/LoadState wire path (all of it
// float64, so the copy is bit-exact at any model precision), and the
// host-local knobs plus lifetime diagnostics the wire format
// deliberately omits are carried over explicitly. m's precision decides
// the clone's; d is read, never mutated. CloneAt fails on an
// uncalibrated detector and mid-reconstruction (SaveState's own
// preconditions) — a transition is only taken from a stable state.
func (d *Detector) CloneAt(m *model.Multi) (*Detector, error) {
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		return nil, err
	}
	nd, err := LoadState(&buf, m)
	if err != nil {
		return nil, err
	}
	// Host-local guard policy: LoadState builds the default reject guard,
	// so rebuild the stage with d's policy and carry its counters and the
	// last accepted result (GuardReject replays it on rejection — the
	// clone must reject bit-identically).
	nd.cfg.Guard, nd.cfg.ClampLimit = d.cfg.Guard, d.cfg.ClampLimit
	nd.guard = NewGuard(machine{nd}, nd.cfg.Guard, nd.cfg.ClampLimit)
	if nd.cfg.Guard == GuardClamp {
		nd.guard.clampBuf = make([]float64, nd.dims)
	}
	nd.guard.rejected = d.guard.rejected
	nd.guard.clamped = d.guard.clamped
	nd.guard.lastGood = d.guard.lastGood
	// Lifetime diagnostics: the clone continues this stream's life, so
	// sample indices, drift history and health counters carry over.
	nd.samplesSeen = d.samplesSeen
	nd.driftEvents = append([]int(nil), d.driftEvents...)
	nd.reconsDone = d.reconsDone
	nd.divergences = d.divergences
	nd.merges = d.merges
	*nd.scoreHist = *d.scoreHist
	return nd, nil
}

package core

import (
	"testing"

	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

func newCalibratedEnsemble(t *testing.T, seed uint64, windows []int, quorum int) (*MultiWindow, *rng.Rand) {
	t.Helper()
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1000)
	xs, labels := trainSet(r, 400, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	mw, err := NewMultiWindow(m, windows, quorum, Config{ResetModelOnDrift: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	return mw, r
}

func TestNewMultiWindowValidation(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(1))
	if _, err := NewMultiWindow(m, nil, 1, Config{}); err == nil {
		t.Fatal("expected error for no windows")
	}
	if _, err := NewMultiWindow(m, []int{10}, 0, Config{}); err == nil {
		t.Fatal("expected error for zero quorum")
	}
	if _, err := NewMultiWindow(m, []int{10}, 2, Config{}); err == nil {
		t.Fatal("expected error for quorum above member count")
	}
	mw, err := NewMultiWindow(m, []int{10, 50}, 1, Config{ResetModelOnDrift: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range mw.Members() {
		if d.Config().ResetModelOnDrift {
			t.Fatal("members must not reset the shared model unilaterally")
		}
	}
}

func TestMultiWindowStationaryNoDrift(t *testing.T) {
	mw, r := newCalibratedEnsemble(t, 20, []int{20, 60}, 2)
	for i := 0; i < 1500; i++ {
		if res := mw.Process(sample(r, i%testClasses, 0)); res.DriftDetected {
			t.Fatalf("false ensemble detection at %d", i)
		}
	}
	if len(mw.DriftEvents()) != 0 {
		t.Fatalf("events: %v", mw.DriftEvents())
	}
}

func TestMultiWindowDetectsSuddenDrift(t *testing.T) {
	mw, r := newCalibratedEnsemble(t, 21, []int{20, 60}, 2)
	for i := 0; i < 300; i++ {
		mw.Process(sample(r, i%testClasses, 0))
	}
	detected := -1
	for i := 0; i < 4000; i++ {
		res := mw.Process(sample(r, i%testClasses, 5))
		if res.DriftDetected && detected == -1 {
			detected = i
		}
	}
	if detected == -1 {
		t.Fatal("ensemble never detected drift")
	}
	if len(mw.DriftEvents()) == 0 {
		t.Fatal("no events recorded")
	}
	// All members should be re-armed and monitoring (or at worst
	// checking) afterwards.
	for i, d := range mw.Members() {
		if d.PhaseNow() == Reconstructing {
			t.Fatalf("member %d stuck reconstructing", i)
		}
	}
}

func TestMultiWindowQuorumVeto(t *testing.T) {
	// Quorum 2 with very different windows: a short burst of anomalies
	// long enough to fire W=10 but not W=500 must be vetoed.
	mw, r := newCalibratedEnsemble(t, 22, []int{10, 500}, 2)
	for i := 0; i < 200; i++ {
		mw.Process(sample(r, i%testClasses, 0))
	}
	// 30 drifted samples, then back to normal (a transient, not a drift).
	for i := 0; i < 30; i++ {
		if res := mw.Process(sample(r, i%testClasses, 5)); res.DriftDetected {
			t.Fatalf("ensemble fired on transient at %d", i)
		}
	}
	for i := 0; i < 600; i++ {
		if res := mw.Process(sample(r, i%testClasses, 0)); res.DriftDetected {
			t.Fatalf("ensemble fired after transient ended, sample %d", i)
		}
	}
	if len(mw.DriftEvents()) != 0 {
		t.Fatalf("transient produced events: %v", mw.DriftEvents())
	}
}

func TestMultiWindowSingleMemberBehavesLikeDetector(t *testing.T) {
	mw, r := newCalibratedEnsemble(t, 23, []int{40}, 1)
	for i := 0; i < 200; i++ {
		mw.Process(sample(r, i%testClasses, 0))
	}
	detected := false
	for i := 0; i < 3000 && !detected; i++ {
		detected = mw.Process(sample(r, i%testClasses, 5)).DriftDetected
	}
	if !detected {
		t.Fatal("single-member ensemble never detected drift")
	}
}

func TestMultiWindowAlarmHorizon(t *testing.T) {
	// Detections of differently-sized windows never land on the same
	// sample; the alarm horizon is what lets them reach quorum.
	mw, r := newCalibratedEnsemble(t, 24, []int{10, 60}, 2)
	for i := 0; i < 200; i++ {
		mw.Process(sample(r, i%testClasses, 0))
	}
	if mw.Horizon != 60 {
		t.Fatalf("default horizon %d, want max window 60", mw.Horizon)
	}
	detected := false
	for i := 0; i < 3000 && !detected; i++ {
		detected = mw.Process(sample(r, i%testClasses, 5)).DriftDetected
	}
	if !detected {
		t.Fatal("ensemble with horizon never reached quorum")
	}
	// Every member contributed an alarm within one horizon of the
	// ensemble event.
	ev := mw.DriftEvents()
	if len(ev) == 0 {
		t.Fatal("no ensemble events recorded")
	}
	for i, d := range mw.Members() {
		fired := d.DriftEvents()
		ok := false
		for _, f := range fired {
			if ev[0]-f <= mw.Horizon && f <= ev[0] {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("member %d has no alarm within the horizon of event %d (fires: %v)", i, ev[0], fired)
		}
	}
}

func TestMultiWindowVetoScrubsResult(t *testing.T) {
	// A member-level detection without quorum must not leak into the
	// aggregate result.
	mw, r := newCalibratedEnsemble(t, 26, []int{10, 500}, 2)
	for i := 0; i < 200; i++ {
		mw.Process(sample(r, i%testClasses, 0))
	}
	for i := 0; i < 40; i++ {
		res := mw.Process(sample(r, i%testClasses, 5))
		if res.DriftDetected || res.Phase == Reconstructing {
			t.Fatalf("vetoed detection leaked at %d: %+v", i, res)
		}
	}
}

package core

import (
	"bytes"
	"testing"

	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

func TestDetectorSaveLoadRoundTrip(t *testing.T) {
	d, r := newCalibrated(t, 60, DefaultConfig(40))
	// Advance it a little so recent centroids differ from trained ones.
	for i := 0; i < 120; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	var modelBuf, stateBuf bytes.Buffer
	if _, err := d.Model().Save(&modelBuf, oselm.Float64); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveState(&stateBuf); err != nil {
		t.Fatal(err)
	}
	m2, err := model.Load(&modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LoadState(&stateBuf, m2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.ThetaError() != d.ThetaError() || d2.ThetaDrift() != d.ThetaDrift() {
		t.Fatalf("thresholds differ: (%v,%v) vs (%v,%v)",
			d2.ThetaError(), d2.ThetaDrift(), d.ThetaError(), d.ThetaDrift())
	}
	for c := 0; c < testClasses; c++ {
		a, b := d.TrainedCentroid(c), d2.TrainedCentroid(c)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("trained centroid %d differs", c)
			}
		}
		ra, rb := d.RecentCentroid(c), d2.RecentCentroid(c)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("recent centroid %d differs", c)
			}
		}
	}
	if d2.Config().Window != 40 {
		t.Fatalf("window %d", d2.Config().Window)
	}
	// Loaded detector keeps detecting: drive a drift through it.
	detected := false
	for i := 0; i < 3000 && !detected; i++ {
		detected = d2.Process(sample(r, i%testClasses, 5)).DriftDetected
	}
	if !detected {
		t.Fatal("loaded detector never detected a drift")
	}
}

func TestSaveStateRejectsUncalibratedAndMidReconstruction(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: testDims, Hidden: 4}, rng.New(61))
	d, err := New(m, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveState(&bytes.Buffer{}); err == nil {
		t.Fatal("expected uncalibrated error")
	}
	dc, r := newCalibrated(t, 62, DefaultConfig(10))
	dc.Process(sample(r, 0, 0))
	dc.TriggerReconstruction()
	if err := dc.SaveState(&bytes.Buffer{}); err == nil {
		t.Fatal("expected mid-reconstruction error")
	}
}

func TestLoadStateRejectsMismatchedModel(t *testing.T) {
	d, _ := newCalibrated(t, 63, DefaultConfig(10))
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	wrong, _ := model.New(model.Config{Classes: 3, Inputs: testDims, Hidden: 4}, rng.New(64))
	if _, err := LoadState(bytes.NewReader(buf.Bytes()), wrong); err == nil {
		t.Fatal("expected class-count mismatch error")
	}
	wrongDims, _ := model.New(model.Config{Classes: 2, Inputs: 9, Hidden: 4}, rng.New(65))
	if _, err := LoadState(bytes.NewReader(buf.Bytes()), wrongDims); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestLoadStateRejectsGarbage(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: testDims, Hidden: 4}, rng.New(66))
	if _, err := LoadState(bytes.NewReader([]byte("junkjunkjunk")), m); err == nil {
		t.Fatal("expected format error")
	}
}

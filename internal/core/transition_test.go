package core

import (
	"bytes"
	"math"
	"testing"

	"edgedrift/internal/health"
	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
)

// cloneModel copies d's model exactly (the f64 wire at f64 precision is
// lossless), so CloneAt over it must produce a perfect twin.
func cloneModel(t *testing.T, d *Detector) *model.Multi {
	t.Helper()
	var buf bytes.Buffer
	if _, err := d.Model().Save(&buf, oselm.Float64); err != nil {
		t.Fatal(err)
	}
	m2, err := model.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

// TestCloneAtContinuesBitIdentical drives the original detector and its
// CloneAt twin through the same post-clone stream and requires every
// Result field to match bit for bit — the guarantee a runtime precision
// transition is built on (at equal precision the clone is a perfect
// continuation).
func TestCloneAtContinuesBitIdentical(t *testing.T) {
	d, r := newCalibrated(t, 91, DefaultConfig(40))
	for i := 0; i < 150; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	nd, err := d.CloneAt(cloneModel(t, d))
	if err != nil {
		t.Fatal(err)
	}
	// Shifted samples push both through checking windows, drift and
	// reconstruction — the full state machine, not just monitoring.
	for i := 0; i < 3000; i++ {
		x := sample(r, i%testClasses, 4)
		a, b := d.Process(x), nd.Process(x)
		if a != b {
			t.Fatalf("sample %d: clone diverged: %+v vs %+v", i, a, b)
		}
	}
	if d.Reconstructions() == 0 {
		t.Fatal("stream never exercised a reconstruction")
	}
	ha, hb := d.Health(), nd.Health()
	// The monitoring-score histogram bins are the one piece of state the
	// clone starts fresh (the running summary itself is carried), so the
	// bin totals lag by the pre-clone samples.
	ha.ScoreHistTotal, hb.ScoreHistTotal = 0, 0
	ha.ScoreHistDropped, hb.ScoreHistDropped = 0, 0
	if ha != hb {
		t.Fatalf("health snapshots diverged:\n%+v\n%+v", ha, hb)
	}
}

// TestCloneAtCarriesGuardState pins the host-local carry-over the wire
// format omits: counters and the last accepted result that GuardReject
// replays on rejection.
func TestCloneAtCarriesGuardState(t *testing.T) {
	d, r := newCalibrated(t, 92, DefaultConfig(40))
	good := sample(r, 0, 0)
	d.Process(good)
	bad := append([]float64(nil), good...)
	bad[1] = math.NaN()
	want := d.Process(bad)
	if !want.Rejected {
		t.Fatal("NaN sample was not rejected")
	}
	nd, err := d.CloneAt(cloneModel(t, d))
	if err != nil {
		t.Fatal(err)
	}
	got := nd.Process(bad)
	if got != want {
		t.Fatalf("clone replayed %+v on rejection, origin %+v", got, want)
	}
	// The clone carried the origin's counter and then rejected once more
	// itself.
	if gh, dh := nd.Health().Rejected, d.Health().Rejected; gh != dh+1 {
		t.Fatalf("clone Rejected %d, origin %d", gh, dh)
	}
}

// TestCloneAtClampPolicySurvives verifies a GuardClamp detector does not
// silently degrade to the wire default (reject) across a clone.
func TestCloneAtClampPolicySurvives(t *testing.T) {
	cfg := DefaultConfig(40)
	cfg.Guard = GuardClamp
	d, r := newCalibrated(t, 93, cfg)
	inf := sample(r, 0, 0)
	inf[0] = math.Inf(1)
	d.Process(inf)
	nd, err := d.CloneAt(cloneModel(t, d))
	if err != nil {
		t.Fatal(err)
	}
	res := nd.Process(inf)
	if res.Rejected {
		t.Fatal("clone rejected under GuardClamp — policy lost in transit")
	}
	if nd.Health().Clamped != d.Health().Clamped+1 {
		t.Fatalf("clamp counter: clone %d, origin %d", nd.Health().Clamped, d.Health().Clamped)
	}
}

// fakeTrans is a minimal stage implementing the Transitioner capability
// for seam-discovery tests.
type fakeTrans struct {
	demoted bool
}

func (f *fakeTrans) Process(x []float64) Result     { return Result{} }
func (f *fakeTrans) PhaseNow() Phase                { return Monitoring }
func (f *fakeTrans) MemoryBytes() int               { return 0 }
func (f *fakeTrans) Health() health.Snapshot        { return health.Snapshot{} }
func (f *fakeTrans) Demote(p oselm.Precision) error { f.demoted = true; return nil }
func (f *fakeTrans) Promote() error                 { f.demoted = false; return nil }
func (f *fakeTrans) ActivePrecision() oselm.Precision {
	return oselm.Float64
}
func (f *fakeTrans) Degraded() bool { return f.demoted }

// TestAsTransitionerSeesThroughSeams pins capability discovery through
// the Instrumented wrapper, exactly like AsMerger.
func TestAsTransitionerSeesThroughSeams(t *testing.T) {
	ft := &fakeTrans{}
	wrapped := NewInstrumented(ft, InstrumentConfig{StreamID: "t7"})
	tr, ok := AsTransitioner(wrapped)
	if !ok {
		t.Fatal("AsTransitioner failed through Instrumented")
	}
	if err := tr.Demote(oselm.Float32); err != nil || !ft.demoted {
		t.Fatal("capability did not reach the inner stage")
	}
	if _, ok := AsTransitioner(nil); ok {
		t.Fatal("AsTransitioner(nil) succeeded")
	}
	d, _ := newCalibrated(t, 94, DefaultConfig(10))
	if _, ok := AsTransitioner(machine{d}); ok {
		t.Fatal("bare detector machine claims the Transitioner capability")
	}
}

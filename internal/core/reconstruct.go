package core

import (
	"math"

	"edgedrift/internal/kmeans"
	"edgedrift/internal/mat"
	"edgedrift/internal/rng"
)

// reconstructStep is Algorithm 2: one sample's worth of model
// reconstruction. It returns the Result for the sample and flips the
// detector back to monitoring when N samples have been consumed.
func (d *Detector) reconstructStep(x []float64) Result {
	d.count++
	res := Result{Phase: Reconstructing}

	if d.count < d.cfg.NSearch {
		d.stage(StageCoordInit, func() { d.initCoord(x) })
	}
	if d.count < d.cfg.NUpdate {
		d.stage(StageCoordUpdate, func() { d.updateCoord(x) })
	}

	// Exclusive retraining ranges; see the package comment for why the
	// pseudocode's overlapping guards are read as alternatives.
	if d.count < d.cfg.NRecon/2 {
		d.stage(StageRetrainNoPred, func() {
			label, _ := d.nearestCoord(x)
			d.model.Train(x, label)
			res.Label = label
		})
	} else {
		var label int
		var score float64
		d.stage(StageRetrainWithPred, func() {
			label, score = d.model.Predict(x)
			if !math.IsNaN(score) && !math.IsInf(score, 0) {
				d.model.Train(x, label)
			}
		})
		if math.IsNaN(score) || math.IsInf(score, 0) {
			// The rebuilding model itself diverged; training on its own
			// prediction or folding the score into the threshold
			// re-estimators would bake the divergence into the new concept.
			d.divergences++
		} else {
			// Threshold re-estimation uses only this phase: the coordinates
			// have settled by NRecon/2, so these distances and scores
			// characterise the new concept.
			d.reconDists.Observe(d.distance(x, d.cor[label]))
			d.reconScores.Observe(score)
			res.Label = label
			res.Score = score
		}
	}

	if d.count >= d.cfg.NRecon {
		d.finishReconstruction()
		res.Phase = Monitoring
	}
	return res
}

// nearestCoord returns the label whose coordinate is closest to x under
// the configured metric (Algorithm 2 line 8), and the distance.
func (d *Detector) nearestCoord(x []float64) (int, float64) {
	best, bd := 0, d.distance(x, d.cor[0])
	for c := 1; c < d.classes; c++ {
		if dist := d.distance(x, d.cor[c]); dist < bd {
			best, bd = c, dist
		}
	}
	d.ops.AddCmp(d.classes - 1)
	return best, bd
}

// initCoord is Algorithm 3: tentatively substitute x for each label
// coordinate and keep the substitution that maximises the total pairwise
// distance between coordinates, spreading them out k-means++-style.
func (d *Detector) initCoord(x []float64) {
	min := d.pairwiseCoordDist()
	label := -1
	for c := 0; c < d.classes; c++ {
		tmp := d.cor[c]
		d.cor[c] = x
		dist := d.pairwiseCoordDist()
		d.cor[c] = tmp
		d.ops.AddCmp(1)
		if min < dist {
			label = c
			min = dist
		}
	}
	if label != -1 {
		copy(d.cor[label], x)
		// A freshly seeded coordinate represents one observation.
		d.num[label] = 1
	}
}

// pairwiseCoordDist is the Σ_{j<k} distance(cor[j], cor[k]) objective of
// Algorithm 3.
func (d *Detector) pairwiseCoordDist() float64 {
	var s float64
	for j := 0; j < d.classes; j++ {
		for k := j + 1; k < d.classes; k++ {
			s += d.distance(d.cor[j], d.cor[k])
		}
	}
	return s
}

// updateCoord is Algorithm 4: sequential k-means on the label
// coordinates, plus the standard empty-cluster repair adapted to the
// sequential setting: the paper notes Init_Coord "may select outliers"
// and relies on Update_Coord to refine them, but a coordinate seeded on
// an extreme outlier never wins a sample under nearest-assignment and
// would stay stuck, collapsing every label onto one coordinate. When a
// coordinate has gone starveLimit updates without winning while holding
// at most its seed observation, it is re-seeded on the current sample
// (a member of the data bulk), after which nearest-assignment can refine
// it normally.
func (d *Detector) updateCoord(x []float64) {
	for c := range d.cor {
		d.starve[c]++
	}
	label, _ := d.nearestCoord(x)
	limit := d.starveLimit()
	repaired := false
	for c := range d.cor {
		if c != label && d.num[c] <= 2 && d.starve[c] >= limit {
			copy(d.cor[c], x)
			d.num[c] = 1
			d.starve[c] = 0
			repaired = true
			break
		}
	}
	if repaired {
		return
	}
	d.starve[label] = 0
	d.num[label] = mat.RunningMeanUpdate(d.cor[label], d.num[label], x)
	d.ops.AddMulAdd(d.dims)
	d.ops.AddDiv(d.dims)
}

// starveLimit is how many consecutive lost assignments a nearly-empty
// coordinate tolerates before being re-seeded.
func (d *Detector) starveLimit() int {
	l := d.cfg.NUpdate / 10
	if l < 20 {
		l = 20
	}
	return l
}

// finishReconstruction adopts the refined coordinates as the new trained
// centroids, re-derives θ_drift from the distances observed during
// retraining (Eq. 1 over the reconstruction samples), and re-arms the
// detector.
func (d *Detector) finishReconstruction() {
	for c := range d.trainCor {
		copy(d.trainCor[c], d.cor[c])
	}
	d.baseNum = append(d.baseNum[:0], d.num...)
	if d.cfg.DriftThreshold <= 0 && d.reconDists.N() > 0 {
		d.thetaDrift = d.reconDists.Mean() + d.cfg.ZDrift*d.reconDists.Std()
	}
	// Re-derive θ_error from the rebuilt model's own scores (collected in
	// the predicted-label retraining phase) so check windows re-arm
	// against the new concept, unless the caller pinned the threshold.
	if d.cfg.ErrorThreshold <= 0 && d.reconScores.N() > 0 {
		d.thetaError = d.reconScores.Mean() + d.cfg.ZError*d.reconScores.Std()
	}
	d.drift = false
	d.check = false
	d.win = 0
	d.dist = 0
	d.count = 0
	d.reconsDone++
	d.reconDists.Reset()
	d.reconScores.Reset()
}

// LabelsByKMeans produces the unsupervised initial labelling the paper
// assumes for the training set (§3.2): k-means with C clusters. The
// returned labels index the clustering's centroids, which callers should
// use consistently for model training and Calibrate.
func LabelsByKMeans(xs [][]float64, classes int, r *rng.Rand) []int {
	res := kmeans.Run(xs, kmeans.Config{K: classes}, r)
	return res.Assign
}

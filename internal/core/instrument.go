package core

import (
	"time"

	"edgedrift/internal/health"
	"edgedrift/internal/metrics"
)

// TraceEvent is one entry of the bounded drift trace: a drift detection
// — or a stamped lifecycle marker such as a precision transition — with
// enough context to reconstruct what the detector saw: which stream,
// which sample, the anomaly score and the θ_error in force at detection
// time.
type TraceEvent struct {
	// StreamID names the instrumented stage (empty when unset).
	StreamID string
	// Index is the stage's 0-based sample index of the detection.
	Index uint64
	// Score is the anomaly score on the detecting sample.
	Score float64
	// ThetaError is the error threshold active at detection time (0 when
	// the wrapped stage does not expose one).
	ThetaError float64
	// Phase is the stage phase after the detecting sample.
	Phase Phase
	// Kind distinguishes stamped lifecycle markers ("demote:f32",
	// "promote:f64", …) from ordinary drift detections (empty, the
	// overwhelmingly common case — the field costs a nil string header
	// per ring slot).
	Kind string
}

// InstrumentConfig parameterises an Instrumented stage.
type InstrumentConfig struct {
	// StreamID labels every metric and trace entry this stage records.
	StreamID string
	// SampleEvery enables latency timing on every k-th Process call.
	// 0 (the default) disables timing entirely — no time syscall ever
	// touches the hot path, keeping the paper's per-sample cost model
	// exact; the counters and the drift trace are integer work and stay
	// on regardless.
	SampleEvery int
	// TraceDepth bounds the drift-trace ring buffer; 0 means 64.
	TraceDepth int
}

const defaultTraceDepth = 64

// StageMetrics is a point-in-time copy of an Instrumented stage's
// counters, safe to pass around and render without synchronising with
// the hot path.
type StageMetrics struct {
	// StreamID labels the stage.
	StreamID string
	// Samples counts Process calls.
	Samples uint64
	// Drifts counts results with DriftDetected set.
	Drifts uint64
	// Rejected counts results with Rejected set (ingestion-guard refusals
	// observed through this seam).
	Rejected uint64
	// PhaseTransitions counts result-phase changes (e.g. monitoring →
	// checking → reconstructing → monitoring each count once).
	PhaseTransitions uint64
	// PhaseSamples counts samples per result phase, indexed by Phase.
	PhaseSamples [3]uint64
	// Latency is the sampled Process latency distribution in nanoseconds
	// (zero when SampleEvery is 0).
	Latency metrics.HistogramSnapshot
}

// Instrumented is the observability stage: a wrapper that records
// per-stage process latency (sampled), result phase transitions, and
// drift events into a bounded ring-buffer trace, mirroring how Guard
// wraps a stage with an ingestion policy. It changes nothing about the
// wrapped stage's behaviour — every Result passes through untouched —
// and its own cost is a handful of plain integer increments per sample,
// plus one clock read every SampleEvery-th call when timing is opted
// in. The counters are deliberately NOT atomic: one uncontended atomic
// add costs more than the whole per-sample budget this wrapper is
// allowed (<2% of a detector Process call), so the stage keeps the
// plain single-writer discipline of every other Streaming stage.
//
// Consequently Metrics() and Trace() share one read contract: call them
// from the processing goroutine, or under whatever lock serialises it —
// in a Fleet, the member lock, which Fleet.Metrics and Fleet.Traces
// take for you. That is also how exposition scrapes stay race-free:
// they go through the fleet, never through a bare Instrumented that
// another goroutine is driving.
type Instrumented struct {
	// Field order is deliberate: inner plus the per-sample fields (n,
	// untilTimed, lastPhase, haveLast) lead the struct so every hot-path
	// access lands on the first cache line, ahead of the cold histogram.
	inner      Streaming
	n          uint64 // Process calls
	untilTimed uint64 // countdown to the next timed call (0 = timing off)
	lastPhase  Phase
	haveLast   bool

	id    string
	every uint64
	theta func() float64 // θ_error capability of the wrapped chain, if any
	phase func() Phase   // PhaseNow capability, if any

	// Cold counters: plain fields, single writer (see type comment).
	// Per-phase sample counts are span-based: phaseCount only accumulates
	// closed phase spans (on transition), and Metrics adds the open span
	// [phaseStart, n) to lastPhase — so the steady-state hot path touches
	// nothing but n and one compound branch.
	drifts      uint64
	rejected    uint64
	transitions uint64
	phaseCount  [3]uint64
	phaseStart  uint64 // sample index the current phase span began at
	latency     metrics.Histogram

	trace    []TraceEvent // ring buffer, fixed capacity
	traceLen int          // entries filled while the ring was still growing
	tracePos int          // next write position
}

// errorThresholder is the optional capability a stage can expose so an
// instrumenting wrapper can stamp θ_error onto drift-trace entries.
type errorThresholder interface {
	ThetaError() float64
}

// thresholder is the Monitor-shaped variant of the same capability.
type thresholder interface {
	Thresholds() (errorThreshold, driftThreshold float64)
}

// innerer lets capability discovery see through wrapping stages (Guard,
// Instrumented) to the detector underneath.
type innerer interface {
	Inner() Streaming
}

// NewInstrumented wraps inner with the given instrumentation options.
func NewInstrumented(inner Streaming, cfg InstrumentConfig) *Instrumented {
	depth := cfg.TraceDepth
	if depth <= 0 {
		depth = defaultTraceDepth
	}
	in := &Instrumented{
		inner: inner,
		id:    cfg.StreamID,
		every: uint64(max(cfg.SampleEvery, 0)),
		trace: make([]TraceEvent, depth),
		// Sentinel: no real phase matches, so the first sample always
		// takes the record path and opens the first phase span.
		lastPhase: Phase(-1),
	}
	if in.every > 0 {
		in.untilTimed = 1 // time the first call, then every `every`-th
	}
	// Discover capabilities anywhere in the wrapped chain: a Monitor
	// inside a Guard still exposes its thresholds through the seam.
	for s := inner; s != nil; {
		if in.theta == nil {
			switch t := s.(type) {
			case errorThresholder:
				in.theta = t.ThetaError
			case thresholder:
				in.theta = func() float64 { e, _ := t.Thresholds(); return e }
			}
		}
		if in.phase == nil {
			if p, ok := s.(phaser); ok {
				in.phase = p.PhaseNow
			}
		}
		w, ok := s.(innerer)
		if !ok {
			break
		}
		s = w.Inner()
	}
	return in
}

// Inner returns the wrapped stage.
func (in *Instrumented) Inner() Streaming { return in.inner }

// Process forwards to the wrapped stage, recording counters, sampled
// latency, phase transitions and drift-trace entries on the way out.
// The steady-state cost (no drift, no rejection, phase unchanged,
// timing off) is one increment and a couple of predicted branches in a
// single stack frame; everything rarer funnels into the cold record
// path. untilTimed rests at 0 when timing is off and cycles 1..every
// when on, so the disarmed case is a single false branch.
func (in *Instrumented) Process(x []float64) Result {
	var start time.Time
	timed := false
	if in.untilTimed != 0 {
		in.untilTimed--
		if in.untilTimed == 0 {
			timed = true
			in.untilTimed = in.every
			start = time.Now()
		}
	}
	res := in.inner.Process(x)
	if timed {
		in.latency.Observe(uint64(time.Since(start)))
	}
	in.n++
	if res.Rejected || res.DriftDetected || res.Phase != in.lastPhase {
		in.record(res)
	}
	return res
}

// ProcessBatch forwards a whole batch to the wrapped stage's batch path
// and replays the counter/trace accounting over the returned results —
// observably identical to per-sample Process. Two cases force the
// per-sample fallback: an inner stage without the batch capability, and
// armed latency sampling (SampleEvery > 0), whose contract is "time
// every k-th Process call" — a batched call has no per-sample span to
// time, so timing-enabled stages keep the exact semantics instead of
// approximating them.
func (in *Instrumented) ProcessBatch(dst []Result, xs [][]float64) []Result {
	bs, ok := in.inner.(BatchStreaming)
	if !ok || in.every != 0 {
		for _, x := range xs {
			dst = append(dst, in.Process(x))
		}
		return dst
	}
	base := len(dst)
	dst = bs.ProcessBatch(dst, xs)
	for _, res := range dst[base:] {
		in.n++
		if res.Rejected || res.DriftDetected || res.Phase != in.lastPhase {
			in.record(res)
		}
	}
	return dst
}

var _ BatchStreaming = (*Instrumented)(nil)

// record handles the rare per-sample events: guard rejections, phase
// span closes, and drift-trace writes. Cold by construction — the hot
// path only calls it when one of those actually happened (and on the
// very first sample, whose sentinel lastPhase forces a span open).
func (in *Instrumented) record(res Result) {
	idx := in.n - 1
	if res.Rejected {
		in.rejected++
	}
	if res.Phase != in.lastPhase {
		if in.haveLast {
			in.transitions++
			if p := int(in.lastPhase); p >= 0 && p < len(in.phaseCount) {
				in.phaseCount[p] += idx - in.phaseStart
			}
		}
		in.haveLast = true
		in.lastPhase = res.Phase
		in.phaseStart = idx
	}
	if res.DriftDetected {
		in.drifts++
		ev := TraceEvent{StreamID: in.id, Index: idx, Score: res.Score, Phase: res.Phase}
		if in.theta != nil {
			ev.ThetaError = in.theta()
		}
		in.trace[in.tracePos] = ev
		in.tracePos = (in.tracePos + 1) % len(in.trace)
		if in.traceLen < len(in.trace) {
			in.traceLen++
		}
	}
}

// Stamp writes a lifecycle marker into the trace ring at the current
// sample index — the fleet uses it to make precision transitions
// auditable next to the drift detections they respond to. Like every
// trace write it is single-writer: call it from the processing
// goroutine or under the lock that serialises it (the fleet's member
// lock).
func (in *Instrumented) Stamp(kind string) {
	ev := TraceEvent{StreamID: in.id, Index: in.n, Kind: kind}
	if in.theta != nil {
		ev.ThetaError = in.theta()
	}
	if in.phase != nil {
		ev.Phase = in.phase()
	}
	in.trace[in.tracePos] = ev
	in.tracePos = (in.tracePos + 1) % len(in.trace)
	if in.traceLen < len(in.trace) {
		in.traceLen++
	}
}

// Metrics returns a snapshot of the stage's counters. Like Trace, call
// it from the processing goroutine or under the lock that serialises it
// (the fleet's member lock — Fleet.Metrics does this for you).
func (in *Instrumented) Metrics() StageMetrics {
	m := StageMetrics{
		StreamID:         in.id,
		Samples:          in.n,
		Drifts:           in.drifts,
		Rejected:         in.rejected,
		PhaseTransitions: in.transitions,
		Latency:          in.latency.Snapshot(),
	}
	copy(m.PhaseSamples[:], in.phaseCount[:])
	// Close the open phase span: samples since the last transition are
	// all in lastPhase but not yet folded into phaseCount.
	if in.haveLast {
		if p := int(in.lastPhase); p >= 0 && p < len(m.PhaseSamples) {
			m.PhaseSamples[p] += in.n - in.phaseStart
		}
	}
	return m
}

// Trace returns the retained drift events, oldest first — the last
// TraceDepth detections. Call from the processing goroutine or under
// the fleet's member lock.
func (in *Instrumented) Trace() []TraceEvent {
	out := make([]TraceEvent, 0, in.traceLen)
	if in.traceLen < len(in.trace) {
		return append(out, in.trace[:in.traceLen]...)
	}
	out = append(out, in.trace[in.tracePos:]...)
	return append(out, in.trace[:in.tracePos]...)
}

// MemoryBytes audits the wrapped stage plus the instrumentation's own
// retained state: the trace ring and the counter block.
func (in *Instrumented) MemoryBytes() int {
	const traceEventBytes = 16 + 8 + 8 + 8 + 8 + 16 // string header + index + score + theta + phase + kind header
	counters := (5 + 3) * 8                         // counters + phase counters
	histogram := (metrics.HistogramBuckets + 2) * 8
	return in.inner.MemoryBytes() + len(in.trace)*traceEventBytes + counters + histogram
}

// Health forwards the wrapped stage's snapshot unchanged: the
// instrumentation observes, it does not contribute health state.
func (in *Instrumented) Health() health.Snapshot { return in.inner.Health() }

// PhaseNow forwards the wrapped stage's phase, keeping the capability
// visible through arbitrarily deep stage nesting.
func (in *Instrumented) PhaseNow() Phase {
	if in.phase != nil {
		return in.phase()
	}
	if in.haveLast {
		return in.lastPhase
	}
	return Monitoring
}

// ThetaError forwards the wrapped chain's error threshold (0 when none
// is exposed), keeping the capability visible through nesting.
func (in *Instrumented) ThetaError() float64 {
	if in.theta != nil {
		return in.theta()
	}
	return 0
}

var _ Streaming = (*Instrumented)(nil)

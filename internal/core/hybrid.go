package core

import (
	"fmt"
	"math"
	"strings"

	"edgedrift/internal/health"
)

// FusionPolicy selects how a Hybrid stage combines its unsupervised
// centroid detector with the supervised error-rate arm.
type FusionPolicy int

const (
	// FuseEither responds to whichever arm fires first: a supervised
	// alarm triggers the inner detector's reconstruction directly, so
	// late labels can catch drifts the centroid distance misses (class
	// swaps that leave the input distribution alone).
	FuseEither FusionPolicy = iota
	// FuseConfirm treats the arms as cross-checks: neither arm changes
	// the other's behaviour, but an alarm from both within the
	// confirmation window is counted as a confirmed drift — the
	// high-confidence signal a deployment might page on.
	FuseConfirm
)

// String implements fmt.Stringer.
func (p FusionPolicy) String() string {
	switch p {
	case FuseEither:
		return "either"
	case FuseConfirm:
		return "confirm"
	default:
		return "unknown"
	}
}

// ParseFusionPolicy maps the CLI spelling to a FusionPolicy.
func ParseFusionPolicy(s string) (FusionPolicy, error) {
	switch strings.ToLower(s) {
	case "either":
		return FuseEither, nil
	case "confirm":
		return FuseConfirm, nil
	default:
		return 0, fmt.Errorf("core: unknown fusion policy %q (either, confirm)", s)
	}
}

// HybridConfig configures a Hybrid stage.
type HybridConfig struct {
	// Policy is the fusion policy; the zero value is FuseEither.
	Policy FusionPolicy
	// ConfirmWindow is how many samples apart the two arms' alarms may
	// be and still confirm each other (FuseConfirm). Zero defaults to
	// 100 — twice the paper's drift window.
	ConfirmWindow int
}

// hybridFarPast initialises the last-alarm clocks so that "no alarm
// yet" can never sit inside any confirmation window. Quartering MinInt
// keeps step-hybridFarPast arithmetic overflow-free on 32-bit targets.
const hybridFarPast = math.MinInt / 4

// Hybrid composes the unsupervised drift detector with a supervised
// error-rate detector (DDM/ADWIN from internal/detectors, passed as a
// plain Streaming over a one-feature error-bit stream) fed by
// whenever-they-arrive labels. Samples flow through Process exactly as
// without the stage; labels flow through the Observe side channel as
// they arrive. With no Observe calls the stage is a strict bystander:
// the inner detector sees the identical call sequence and every result
// is forwarded untouched, so golden fingerprints are unchanged when
// labels never come.
//
// The supervised arm is deliberately typed as Streaming rather than a
// concrete detector: internal/detectors imports this package, so the
// dependency can only point this way.
type Hybrid struct {
	inner Streaming
	batch BatchStreaming // inner's optional batch capability
	sup   Streaming
	cfg   HybridConfig

	trigger  func()       // inner's TriggerReconstruction capability
	phase    func() Phase // inner's PhaseNow capability
	supReset func()       // supervised arm's Reset capability

	step      int // accepted-sample clock for alarm pairing
	lastSup   int
	lastUnsup int
	errBuf    [1]float64

	labelsObserved uint64
	supFires       uint64
	supTriggers    uint64
	unsupFires     uint64
	confirms       uint64
}

// NewHybrid wraps inner with the supervised arm sup. The inner stage's
// TriggerReconstruction and PhaseNow capabilities are discovered
// through any depth of wrapping stages (a Guard around a Detector
// still fuses); an inner stage without TriggerReconstruction degrades
// gracefully — supervised fires are counted but trigger nothing.
func NewHybrid(inner, sup Streaming, cfg HybridConfig) *Hybrid {
	if inner == nil || sup == nil {
		panic("core: NewHybrid with nil stage")
	}
	if cfg.ConfirmWindow <= 0 {
		cfg.ConfirmWindow = 100
	}
	h := &Hybrid{
		inner:     inner,
		sup:       sup,
		cfg:       cfg,
		lastSup:   hybridFarPast,
		lastUnsup: hybridFarPast,
	}
	if bs, ok := inner.(BatchStreaming); ok {
		h.batch = bs
	}
	for cur := inner; cur != nil; {
		if h.trigger == nil {
			if t, ok := cur.(interface{ TriggerReconstruction() }); ok {
				h.trigger = t.TriggerReconstruction
			}
		}
		if h.phase == nil {
			if p, ok := cur.(phaser); ok {
				h.phase = p.PhaseNow
			}
		}
		w, ok := cur.(interface{ Inner() Streaming })
		if !ok {
			break
		}
		cur = w.Inner()
	}
	if r, ok := sup.(interface{ Reset() }); ok {
		h.supReset = r.Reset
	}
	return h
}

// Process forwards the sample to the inner detector and returns its
// result untouched, bookkeeping unsupervised alarms for the fusion
// counters.
func (h *Hybrid) Process(x []float64) Result {
	res := h.inner.Process(x)
	h.afterResult(res)
	return res
}

// ProcessBatch forwards to the inner stage's batch path when it has
// one, preserving the strict per-sample equivalence contract.
func (h *Hybrid) ProcessBatch(dst []Result, xs [][]float64) []Result {
	base := len(dst)
	if h.batch != nil {
		dst = h.batch.ProcessBatch(dst, xs)
	} else {
		for _, x := range xs {
			dst = append(dst, h.inner.Process(x))
		}
	}
	for _, res := range dst[base:] {
		h.afterResult(res)
	}
	return dst
}

// afterResult advances the pairing clock and books an unsupervised
// alarm, confirming it against a recent supervised one under
// FuseConfirm.
func (h *Hybrid) afterResult(res Result) {
	h.step++
	if !res.DriftDetected {
		return
	}
	h.unsupFires++
	h.lastUnsup = h.step
	if h.cfg.Policy == FuseConfirm && h.step-h.lastSup <= h.cfg.ConfirmWindow {
		h.confirms++
	}
}

// Observe feeds one late label to the supervised arm: the ground truth
// for some earlier sample together with the prediction the model made
// for it at the time. It returns true when the supervised arm raised a
// drift alarm on this observation. Under FuseEither a supervised alarm
// triggers the inner detector's reconstruction (unless one is already
// running); under FuseConfirm it is paired against unsupervised alarms
// within the confirmation window.
func (h *Hybrid) Observe(label, predicted int) bool {
	h.labelsObserved++
	h.errBuf[0] = 0
	if label != predicted {
		h.errBuf[0] = 1
	}
	res := h.sup.Process(h.errBuf[:])
	if !res.DriftDetected {
		return false
	}
	h.supFires++
	h.lastSup = h.step
	// Re-arm the supervised arm for the next drift. DDM self-resets on
	// a fire (Reset is then a no-op state-wise); ADWIN needs it.
	if h.supReset != nil {
		h.supReset()
	}
	switch h.cfg.Policy {
	case FuseConfirm:
		if h.step-h.lastUnsup <= h.cfg.ConfirmWindow {
			h.confirms++
		}
	default: // FuseEither
		if h.trigger != nil && (h.phase == nil || h.phase() != Reconstructing) {
			h.trigger()
			h.supTriggers++
		}
	}
	return true
}

// Inner returns the wrapped unsupervised stage.
func (h *Hybrid) Inner() Streaming { return h.inner }

// Supervised returns the error-rate arm.
func (h *Hybrid) Supervised() Streaming { return h.sup }

// LabelsObserved returns how many labels reached the side channel.
func (h *Hybrid) LabelsObserved() uint64 { return h.labelsObserved }

// SupervisedFires returns how many alarms the supervised arm raised.
func (h *Hybrid) SupervisedFires() uint64 { return h.supFires }

// SupervisedTriggers returns how many reconstructions the supervised
// arm started.
func (h *Hybrid) SupervisedTriggers() uint64 { return h.supTriggers }

// Confirms returns how many alarms the two arms confirmed jointly.
func (h *Hybrid) Confirms() uint64 { return h.confirms }

// PhaseNow forwards the inner stage's phase capability.
func (h *Hybrid) PhaseNow() Phase {
	if h.phase != nil {
		return h.phase()
	}
	return Monitoring
}

// MemoryBytes audits both arms plus the stage's own fixed state.
func (h *Hybrid) MemoryBytes() int {
	return h.inner.MemoryBytes() + h.sup.MemoryBytes() + 8*len(h.errBuf) + 10*8
}

// Health returns the inner stage's snapshot with the fusion counters
// added in — added, not assigned, per the stage-composition rule.
func (h *Hybrid) Health() health.Snapshot {
	s := h.inner.Health()
	s.LabelsObserved += h.labelsObserved
	s.SupervisedFires += h.supFires
	s.SupervisedTriggers += h.supTriggers
	s.HybridConfirms += h.confirms
	return s
}

var (
	_ Streaming      = (*Hybrid)(nil)
	_ BatchStreaming = (*Hybrid)(nil)
)

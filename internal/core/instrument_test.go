package core

import (
	"math"
	"reflect"
	"testing"
	"time"

	"edgedrift/internal/health"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// benchCalibrated is newCalibrated for benchmarks (testing.B has no
// access to the *testing.T-typed helper).
func benchCalibrated(b *testing.B, cfg Config) (*Detector, *rng.Rand) {
	b.Helper()
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1001)
	xs, labels := trainSet(r, 400, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		b.Fatal(err)
	}
	d, err := New(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		b.Fatal(err)
	}
	return d, r
}

// driftStage fires a drift every k-th sample, cycling its phase so
// transition counting has something to observe.
type driftStage struct {
	n     int
	every int
}

func (d *driftStage) Process(x []float64) Result {
	d.n++
	r := Result{Score: x[0], Phase: Monitoring}
	if d.every > 0 && d.n%d.every == 0 {
		r.DriftDetected = true
		r.Phase = Reconstructing
	}
	return r
}

func (d *driftStage) MemoryBytes() int { return 8 }

func (d *driftStage) Health() health.Snapshot {
	return health.Snapshot{SamplesSeen: d.n, PFinite: true, Phase: "monitoring"}
}

func (d *driftStage) ThetaError() float64 { return 0.75 }

func feed(s Streaming, n int) {
	x := []float64{0.5}
	for i := 0; i < n; i++ {
		s.Process(x)
	}
}

func TestInstrumentedPassthrough(t *testing.T) {
	ref := &driftStage{every: 5}
	in := NewInstrumented(&driftStage{every: 5}, InstrumentConfig{StreamID: "s"})
	x := []float64{2}
	for i := 0; i < 23; i++ {
		want := ref.Process(x)
		if got := in.Process(x); got != want {
			t.Fatalf("sample %d: instrumented result %+v differs from direct %+v", i, got, want)
		}
	}
	if in.Health().SamplesSeen != 23 {
		t.Fatal("Health must forward the wrapped stage's snapshot")
	}
}

func TestInstrumentedCounters(t *testing.T) {
	in := NewInstrumented(&driftStage{every: 5}, InstrumentConfig{StreamID: "s"})
	feed(in, 20)
	m := in.Metrics()
	if m.StreamID != "s" || m.Samples != 20 || m.Drifts != 4 {
		t.Fatalf("metrics = %+v, want 20 samples, 4 drifts on stream s", m)
	}
	// Phase flips monitoring→reconstructing and back on every 5th sample:
	// samples 5,10,15,20 flip out, 6,11,16 flip back — 7 transitions.
	if m.PhaseTransitions != 7 {
		t.Fatalf("phase transitions = %d, want 7", m.PhaseTransitions)
	}
	if m.PhaseSamples[Monitoring] != 16 || m.PhaseSamples[Reconstructing] != 4 {
		t.Fatalf("phase samples = %v", m.PhaseSamples)
	}
	// Timing is off by default: no latency observations.
	if m.Latency.Count != 0 {
		t.Fatalf("latency sampled %d times with SampleEvery=0, want 0", m.Latency.Count)
	}
}

func TestInstrumentedSampledLatency(t *testing.T) {
	in := NewInstrumented(&driftStage{}, InstrumentConfig{SampleEvery: 4})
	feed(in, 17)
	// Samples 0,4,8,12,16 are timed.
	if got := in.Metrics().Latency.Count; got != 5 {
		t.Fatalf("latency observations = %d, want 5", got)
	}
}

func TestInstrumentedTraceRing(t *testing.T) {
	in := NewInstrumented(&driftStage{every: 2}, InstrumentConfig{StreamID: "ring", TraceDepth: 4})
	feed(in, 6) // drifts at 0-based indices 1, 3, 5
	tr := in.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length = %d, want 3", len(tr))
	}
	wantIdx := []uint64{1, 3, 5}
	for i, ev := range tr {
		if ev.Index != wantIdx[i] || ev.StreamID != "ring" || ev.Score != 0.5 || ev.Phase != Reconstructing {
			t.Fatalf("trace[%d] = %+v", i, ev)
		}
		// The wrapped stage exposes ThetaError; it must be stamped in.
		if ev.ThetaError != 0.75 {
			t.Fatalf("trace[%d].ThetaError = %v, want 0.75", i, ev.ThetaError)
		}
	}

	// Overflow: the ring keeps exactly the last TraceDepth events.
	feed(in, 100) // many more drifts
	tr = in.Trace()
	if len(tr) != 4 {
		t.Fatalf("trace length after overflow = %d, want cap 4", len(tr))
	}
	// Oldest-first ordering: strictly increasing indices ending at the
	// final drift (sample 105 → 0-based index 105 fires at n%2==0 → index 105).
	for i := 1; i < len(tr); i++ {
		if tr[i].Index != tr[i-1].Index+2 {
			t.Fatalf("trace not oldest-first contiguous: %+v", tr)
		}
	}
	if last := tr[len(tr)-1].Index; last != 105 {
		t.Fatalf("newest trace index = %d, want 105", last)
	}
}

// TestInstrumentedThetaThroughGuard locks capability discovery through
// stage nesting: an Instrumented around a Guard around a detector still
// stamps the detector's θ_error onto trace entries.
func TestInstrumentedThetaThroughGuard(t *testing.T) {
	guard := NewGuard(&driftStage{every: 1}, GuardReject, 0)
	in := NewInstrumented(guard, InstrumentConfig{})
	in.Process([]float64{1})
	tr := in.Trace()
	if len(tr) != 1 || tr[0].ThetaError != 0.75 {
		t.Fatalf("trace through guard = %+v, want ThetaError 0.75", tr)
	}
	if in.ThetaError() != 0.75 {
		t.Fatal("ThetaError capability must stay visible through nesting")
	}
}

func TestInstrumentedCountsRejections(t *testing.T) {
	d, r := newCalibrated(t, 1, DefaultConfig(50))
	in := NewInstrumented(d, InstrumentConfig{StreamID: "s"})
	in.Process(sample(r, 0, 0))
	in.Process([]float64{math.NaN(), 0, 0, 0})
	m := in.Metrics()
	if m.Samples != 2 || m.Rejected != 1 {
		t.Fatalf("metrics = %+v, want 2 samples, 1 rejected", m)
	}
	if th := in.ThetaError(); th != d.ThetaError() || th <= 0 {
		t.Fatalf("instrumented θ_error = %v, detector's = %v", th, d.ThetaError())
	}
}

// TestInstrumentedZeroAllocs locks the observability overhead contract:
// the instrumented hot path allocates nothing, with and without sampled
// timing, including on drift-recording samples (the ring is
// preallocated).
func TestInstrumentedZeroAllocs(t *testing.T) {
	in := NewInstrumented(&driftStage{every: 3}, InstrumentConfig{StreamID: "s", SampleEvery: 4})
	x := []float64{1}
	feed(in, 10) // warm the ring
	if n := testing.AllocsPerRun(200, func() { in.Process(x) }); n != 0 {
		t.Fatalf("instrumented Process allocates %v objects per call, want 0", n)
	}
}

// TestInstrumentedDetectorZeroAllocs repeats the allocation lock on the
// real detector underneath, mirroring the detector's own alloc tests.
func TestInstrumentedDetectorZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.ErrorThreshold = 1e18 // never open a check window
	d, r := newCalibrated(t, 1, cfg)
	in := NewInstrumented(d, InstrumentConfig{StreamID: "s", SampleEvery: 8})
	x := sample(r, 0, 0)
	in.Process(x)
	if n := testing.AllocsPerRun(200, func() { in.Process(x) }); n != 0 {
		t.Fatalf("instrumented detector Process allocates %v objects per call, want 0", n)
	}
}

// TestInstrumentedMetricsExact locks the snapshot's exactness under the
// single-writer read contract: counters never lag processing. The
// concurrent-scrape path is exercised at the fleet level, where the
// member lock serialises readers against the hot path.
func TestInstrumentedMetricsExact(t *testing.T) {
	in := NewInstrumented(&driftStage{every: 7}, InstrumentConfig{SampleEvery: 2})
	for i := 1; i <= 5000; i++ {
		in.Process([]float64{0.5})
		if i%997 == 0 {
			if m := in.Metrics(); m.Samples != uint64(i) || m.Drifts != uint64(i/7) {
				t.Fatalf("after %d samples: %+v", i, m)
			}
		}
	}
	m := in.Metrics()
	if m.Samples != 5000 || m.Drifts != 5000/7 {
		t.Fatalf("final metrics = %+v", m)
	}
}

func TestInstrumentedTraceOldestFirstExactRing(t *testing.T) {
	in := NewInstrumented(&driftStage{every: 1}, InstrumentConfig{TraceDepth: 3})
	feed(in, 3)
	got := make([]uint64, 0, 3)
	for _, ev := range in.Trace() {
		got = append(got, ev.Index)
	}
	if !reflect.DeepEqual(got, []uint64{0, 1, 2}) {
		t.Fatalf("exactly-full ring order = %v", got)
	}
}

// The A/B pair behind the <2% overhead acceptance check: run with
//
//	go test -bench 'BenchmarkDetectorProcess' -benchtime 2s ./internal/core/
//
// and compare raw against instrumented-sampled. Call shapes mirror the
// fleet's batch loop exactly: a raw member is one interface dispatch to
// the stage; an instrumented member is one direct call to the concrete
// wrapper, which makes the same single interface dispatch inside — so
// the diff isolates the instrumentation, not a second virtual call the
// fleet never pays.
func benchDetector(b *testing.B) (*Detector, []float64) {
	cfg := DefaultConfig(50)
	cfg.ErrorThreshold = 1e18
	m, r := benchCalibrated(b, cfg)
	return m, sample(r, 0, 0)
}

func BenchmarkDetectorProcessRaw(b *testing.B) {
	m, x := benchDetector(b)
	var s Streaming = m
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Process(x)
	}
}

func benchmarkInstrumented(b *testing.B, cfg InstrumentConfig) {
	m, x := benchDetector(b)
	in := NewInstrumented(m, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Process(x)
	}
}

func BenchmarkDetectorProcessInstrumented(b *testing.B) {
	benchmarkInstrumented(b, InstrumentConfig{StreamID: "bench", SampleEvery: 64})
}

func BenchmarkDetectorProcessInstrumentedUntimed(b *testing.B) {
	benchmarkInstrumented(b, InstrumentConfig{StreamID: "bench"})
}

// paperShapeDetector builds a calibrated detector at the paper's
// NSL-KDD reference shape (41 features, 22 hidden units) — the workload
// the hot-path overhead budget is defined against. The tiny test shape
// (4 features, 8 hidden) stays available as a worst-case micro variant.
func paperShapeDetector(b *testing.B, seed uint64) (*Detector, []float64) {
	b.Helper()
	const dims, hidden = 41, 22
	m, err := model.New(model.Config{Classes: 2, Inputs: dims, Hidden: hidden, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2001)
	xs := make([][]float64, 400)
	labels := make([]int, len(xs))
	for i := range xs {
		labels[i] = i % 2
		x := make([]float64, dims)
		for j := range x {
			x[j] = r.Normal(float64(labels[i])*5, 0.3)
		}
		xs[i] = x
	}
	if err := m.InitSequential(xs, labels); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(100)
	cfg.ErrorThreshold = 1e18 // never open a check window: pure hot path
	d, err := New(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		b.Fatal(err)
	}
	probe := make([]float64, dims)
	for j := range probe {
		probe[j] = r.Normal(0, 0.3)
	}
	return d, probe
}

// benchmarkOverheadPaired measures the wrapper's cost differentially:
// raw and instrumented detectors (identically seeded) are driven in
// interleaved 1024-call chunks, so slow-machine frequency drift — which
// dwarfs a few-ns delta when A and B run a minute apart — cancels. The
// acceptance numbers are the custom metrics: overhead-ns/op and
// overhead-pct (budget: <2% with sampled timing on, at the paper
// shape).
func benchmarkOverheadPaired(b *testing.B, build func(*testing.B, uint64) (*Detector, []float64)) {
	raw, x := build(b, 1)
	inner, _ := build(b, 1)
	in := NewInstrumented(inner, InstrumentConfig{StreamID: "bench", SampleEvery: 64})
	var sRaw Streaming = raw
	const chunk = 1024
	var rawNs, instNs int64
	b.ResetTimer()
	for done := 0; done < b.N; done += chunk {
		n := min(chunk, b.N-done)
		t0 := time.Now()
		for j := 0; j < n; j++ {
			sRaw.Process(x)
		}
		t1 := time.Now()
		for j := 0; j < n; j++ {
			in.Process(x)
		}
		rawNs += t1.Sub(t0).Nanoseconds()
		instNs += time.Since(t1).Nanoseconds()
	}
	b.ReportMetric(float64(instNs-rawNs)/float64(b.N), "overhead-ns/op")
	b.ReportMetric(100*float64(instNs-rawNs)/float64(rawNs), "overhead-pct")
}

func BenchmarkInstrumentationOverheadPaired(b *testing.B) {
	benchmarkOverheadPaired(b, paperShapeDetector)
}

// BenchmarkInstrumentationOverheadPairedMicro is the worst case: the
// tiny 4-feature/8-hidden test shape, where the wrapped stage itself is
// only a few hundred ns, so the wrapper's fixed ~tens-of-ns cost is a
// larger fraction.
func BenchmarkInstrumentationOverheadPairedMicro(b *testing.B) {
	benchmarkOverheadPaired(b, func(b *testing.B, seed uint64) (*Detector, []float64) {
		cfg := DefaultConfig(50)
		cfg.ErrorThreshold = 1e18
		d, r := benchCalibrated(b, cfg)
		_ = seed
		return d, sample(r, 0, 0)
	})
}

package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/model"
)

// detMagicV1..detMagicV3 identify serialised detector bundles. v2 adds
// a CRC32 footer over the v1 payload (see internal/ckpt); v3 appends
// the caller-pinned threshold overrides (Config.ErrorThreshold /
// DriftThreshold) to the payload — without them a loaded detector
// re-derived both thresholds after its next reconstruction where the
// original held the pins, silently diverging. SaveState writes v3;
// LoadState accepts all three.
var (
	detMagicV1 = [6]byte{'E', 'D', 'D', 'E', 'T', '1'}
	detMagicV2 = [6]byte{'E', 'D', 'D', 'E', 'T', '2'}
	detMagicV3 = [6]byte{'E', 'D', 'D', 'E', 'T', '3'}
)

// ErrBadFormat reports a stream that is not a serialised detector of a
// known version, or a v2 artifact that is truncated or corrupt.
var ErrBadFormat = errors.New("core: not a serialised detector (or unsupported version)")

// Sanity bounds on deserialised shape fields, so a corrupt header fails
// as ErrBadFormat instead of demanding an absurd allocation.
const (
	maxLoadClasses       = 1 << 20
	maxLoadDims          = 1 << 20
	maxLoadCentroidElems = 1 << 26
)

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func putF64(w io.Writer, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, err := w.Write(b[:])
	return err
}

func getF64(r io.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func putF64s(w io.Writer, xs []float64) error {
	for _, v := range xs {
		if err := putF64(w, v); err != nil {
			return err
		}
	}
	return nil
}

func getF64s(r io.Reader, dst []float64) error {
	for i := range dst {
		v, err := getF64(r)
		if err != nil {
			return err
		}
		dst[i] = v
	}
	return nil
}

// SaveState serialises the calibrated detector state: configuration,
// centroids, counts and thresholds. The bound model is NOT included —
// pair it with model.(*Multi).Save so host and device agree on both
// halves. SaveState fails on an uncalibrated detector and on one that is
// mid-reconstruction (transient state is deliberately not persistable).
func (d *Detector) SaveState(w io.Writer) error {
	if !d.calibrated {
		return errors.New("core: SaveState before Calibrate")
	}
	if d.drift {
		return errors.New("core: SaveState during reconstruction")
	}
	cw := ckpt.NewWriter(w)
	w = cw
	if _, err := w.Write(detMagicV3[:]); err != nil {
		return err
	}
	for _, v := range []uint32{
		uint32(d.classes), uint32(d.dims), uint32(d.cfg.Window),
		uint32(d.cfg.NSearch), uint32(d.cfg.NUpdate), uint32(d.cfg.NRecon),
		uint32(d.cfg.Distance), uint32(d.cfg.Update), boolU32(d.cfg.ResetModelOnDrift),
		boolU32(d.cfg.ResetWindowState), boolU32(d.cfg.AlwaysCheck),
		boolU32(d.check), uint32(d.win),
	} {
		if err := putU32(w, v); err != nil {
			return err
		}
	}
	for _, v := range []float64{
		d.cfg.ZDrift, d.cfg.ZError, d.cfg.EWMAGamma,
		d.thetaError, d.thetaDrift, d.dist,
		// v3: the pinned-threshold overrides. finishReconstruction only
		// re-derives a threshold whose cfg pin is zero, so these decide
		// post-reconstruction behaviour and must survive a round trip.
		d.cfg.ErrorThreshold, d.cfg.DriftThreshold,
	} {
		if err := putF64(w, v); err != nil {
			return err
		}
	}
	for c := 0; c < d.classes; c++ {
		if err := putF64s(w, d.trainCor[c]); err != nil {
			return err
		}
		if err := putF64s(w, d.cor[c]); err != nil {
			return err
		}
		if err := putU32(w, uint32(d.num[c])); err != nil {
			return err
		}
		if err := putU32(w, uint32(d.baseNum[c])); err != nil {
			return err
		}
	}
	return cw.WriteFooter()
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// CheckpointState serialises the detector's calibrated state with the
// transient window machinery normalised away: the check gate closed,
// the window empty and the recent centroids back at their calibrated
// values. SaveState taken verbatim at a drift instant would freeze a
// full window (win == Window, check set) into the artifact — a detector
// restored from it could never close that window again and would wedge.
// The normalised image is what the model pool stores: restoring it
// drops the detector cleanly back into Monitoring under the thresholds
// it was running when the checkpoint was cut. The live detector is left
// bit-identical to before the call.
func (d *Detector) CheckpointState(w io.Writer) error {
	if !d.calibrated {
		return errors.New("core: CheckpointState before Calibrate")
	}
	if d.drift {
		return errors.New("core: CheckpointState during reconstruction")
	}
	savedCor := make([][]float64, len(d.cor))
	for c := range d.cor {
		savedCor[c] = append([]float64(nil), d.cor[c]...)
	}
	savedNum := append([]int(nil), d.num...)
	savedCheck, savedWin, savedDist := d.check, d.win, d.dist
	d.resetRecent()
	d.check, d.win = false, 0
	err := d.SaveState(w)
	for c := range d.cor {
		copy(d.cor[c], savedCor[c])
	}
	copy(d.num, savedNum)
	d.check, d.win, d.dist = savedCheck, savedWin, savedDist
	return err
}

// RestoreState adopts a SaveState/CheckpointState artifact into the
// live detector in place — thresholds, centroids, counts and window
// state — without rebinding the model pointer, so wrappers holding
// references to this detector (a Monitor, a Guard, a Hybrid) keep
// working. The artifact's structural configuration must match the
// detector's; lifetime diagnostics (samplesSeen, driftEvents, health
// counters) are deliberately kept, because a restore is an event in
// this detector's life, not a new detector. Any ongoing reconstruction
// is abandoned: the caller is adopting a fully-adapted state instead.
// On error the detector is unchanged.
func (d *Detector) RestoreState(r io.Reader) error {
	if !d.calibrated {
		return errors.New("core: RestoreState before Calibrate")
	}
	tmp, err := LoadState(r, d.model)
	if err != nil {
		return err
	}
	// Normalise the operational knobs that are host-local and not part
	// of the serialised structural identity.
	want := d.cfg
	got := tmp.cfg
	got.Guard, got.ClampLimit = want.Guard, want.ClampLimit
	if got != want {
		return fmt.Errorf("core: restore config mismatch: artifact %+v, detector %+v", tmp.cfg, d.cfg)
	}
	d.thetaError, d.thetaDrift = tmp.thetaError, tmp.thetaDrift
	for c := 0; c < d.classes; c++ {
		copy(d.trainCor[c], tmp.trainCor[c])
		copy(d.cor[c], tmp.cor[c])
	}
	copy(d.num, tmp.num)
	copy(d.baseNum, tmp.baseNum)
	d.check, d.win, d.dist = tmp.check, tmp.win, tmp.dist
	d.drift = false
	d.count = 0
	d.reconDists.Reset()
	d.reconScores.Reset()
	for c := range d.starve {
		d.starve[c] = 0
	}
	d.calibrated = true
	return nil
}

// LoadState deserialises detector state written by SaveState — the
// current checksummed v3 format or the legacy v1/v2 formats — and binds
// it to the given model, which must match the saved class count and
// dimension. In the checksummed paths every failure wraps ErrBadFormat
// so callers can classify corruption with errors.Is.
func LoadState(r io.Reader, m *model.Multi) (*Detector, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, badFormat(fmt.Errorf("load header: %w", err))
	}
	switch got {
	case detMagicV1:
		return loadStateBody(r, m, false)
	case detMagicV2, detMagicV3:
		cr := ckpt.NewReader(r)
		cr.Fold(got[:])
		d, err := loadStateBody(cr, m, got == detMagicV3)
		if err != nil {
			return nil, badFormat(err)
		}
		if err := cr.VerifyFooter(); err != nil {
			return nil, badFormat(err)
		}
		return d, nil
	default:
		return nil, ErrBadFormat
	}
}

// badFormat wraps a checksummed-format load failure so it matches both
// ErrBadFormat and the underlying cause.
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("core: corrupt artifact: %w: %w", ErrBadFormat, err)
}

// loadStateBody parses the payload that follows the magic. hasPins is
// true for v3, whose float block carries the two pinned-threshold
// overrides; v1/v2 artifacts predate the pins and load with both zero
// (their historical behaviour: re-derive after reconstruction).
func loadStateBody(r io.Reader, m *model.Multi, hasPins bool) (*Detector, error) {
	var u [13]uint32
	for i := range u {
		v, err := getU32(r)
		if err != nil {
			return nil, err
		}
		u[i] = v
	}
	f := make([]float64, 6, 8)
	if hasPins {
		f = f[:8]
	}
	for i := range f {
		v, err := getF64(r)
		if err != nil {
			return nil, err
		}
		f[i] = v
	}
	classes, dims := int(u[0]), int(u[1])
	if classes <= 0 || classes > maxLoadClasses || dims <= 0 || dims > maxLoadDims ||
		classes*dims > maxLoadCentroidElems {
		return nil, fmt.Errorf("%w: implausible shape %d×%d", ErrBadFormat, classes, dims)
	}
	if m.Classes() != classes {
		return nil, fmt.Errorf("core: model has %d classes, state has %d", m.Classes(), classes)
	}
	if m.Config().Inputs != dims {
		return nil, fmt.Errorf("core: model dimension %d, state %d", m.Config().Inputs, dims)
	}
	cfg := Config{
		Window:            int(u[2]),
		NSearch:           int(u[3]),
		NUpdate:           int(u[4]),
		NRecon:            int(u[5]),
		Distance:          DistanceKind(u[6]),
		Update:            CentroidUpdate(u[7]),
		ResetModelOnDrift: u[8] == 1,
		ResetWindowState:  u[9] == 1,
		AlwaysCheck:       u[10] == 1,
		ZDrift:            f[0],
		ZError:            f[1],
		EWMAGamma:         f[2],
		Precision:         m.Precision(),
	}
	if hasPins {
		cfg.ErrorThreshold, cfg.DriftThreshold = f[6], f[7]
	}
	d, err := New(m, cfg)
	if err != nil {
		return nil, err
	}
	d.thetaError, d.thetaDrift = f[3], f[4]
	d.check = u[11] == 1
	d.win = int(u[12])
	d.dist = f[5]
	d.trainCor = make([][]float64, classes)
	d.cor = make([][]float64, classes)
	d.num = make([]int, classes)
	d.baseNum = make([]int, classes)
	for c := 0; c < classes; c++ {
		d.trainCor[c] = make([]float64, dims)
		d.cor[c] = make([]float64, dims)
		if err := getF64s(r, d.trainCor[c]); err != nil {
			return nil, err
		}
		if err := getF64s(r, d.cor[c]); err != nil {
			return nil, err
		}
		n, err := getU32(r)
		if err != nil {
			return nil, err
		}
		d.num[c] = int(n)
		bn, err := getU32(r)
		if err != nil {
			return nil, err
		}
		d.baseNum[c] = int(bn)
	}
	d.calibrated = true
	d.initScoreBins()
	return d, nil
}

package core

import (
	"errors"
	"fmt"
	"math"

	"edgedrift/internal/health"
	"edgedrift/internal/model"
)

// MultiWindow runs several detector window sizes over one shared model,
// the extension the paper names as future work (§5.2, "using multiple
// detection models with different window sizes ... to address more
// complicated drift behaviors"). Each member keeps its own window and
// centroid state. A member that crosses its threshold raises an *alarm*
// that stays live for Horizon samples; when at least Quorum alarms are
// live simultaneously, the ensemble declares a drift and runs a single
// shared reconstruction. The horizon exists because detections are
// quantized to window closes — a 10-sample and a 150-sample window never
// fire on the same sample, but their alarms overlap when a real drift is
// in progress.
//
// Because the heavy work per sample — the model's label prediction — is
// shared across members, the ensemble's marginal cost is only the extra
// centroid bookkeeping (O(C·D) per member), preserving the method's
// sequential-memory property.
type MultiWindow struct {
	model   *model.Multi
	members []*Detector
	// Quorum is how many live alarms trigger the ensemble.
	Quorum int
	// Horizon is how long (in samples) a member's alarm stays live.
	Horizon int

	lastFire    []int
	driftEvents []int
	samples     int
	recon       *Detector // member driving an in-flight reconstruction
	wantReset   bool      // reset the shared model when quorum is reached
}

// NewMultiWindow builds an ensemble over the given window sizes. Member
// configurations are the base Config with the window substituted; the
// default Horizon is the largest window.
func NewMultiWindow(m *model.Multi, windows []int, quorum int, base Config) (*MultiWindow, error) {
	if len(windows) == 0 {
		return nil, errors.New("core: MultiWindow needs at least one window size")
	}
	if quorum <= 0 || quorum > len(windows) {
		return nil, fmt.Errorf("core: quorum %d out of [1,%d]", quorum, len(windows))
	}
	mw := &MultiWindow{model: m, Quorum: quorum, wantReset: base.ResetModelOnDrift}
	maxW := 0
	for _, w := range windows {
		if w > maxW {
			maxW = w
		}
		cfg := base
		cfg.Window = w
		if cfg.ZDrift == 0 {
			cfg.ZDrift = 1
		}
		if cfg.ZError == 0 {
			cfg.ZError = 1
		}
		// Members must not reset the shared model unilaterally — only the
		// ensemble does, once quorum is reached.
		cfg.ResetModelOnDrift = false
		det, err := New(m, cfg)
		if err != nil {
			return nil, err
		}
		mw.members = append(mw.members, det)
	}
	mw.Horizon = maxW
	mw.lastFire = make([]int, len(mw.members))
	for i := range mw.lastFire {
		mw.lastFire[i] = math.MinInt / 2
	}
	return mw, nil
}

// Calibrate calibrates every member on the shared training set.
func (mw *MultiWindow) Calibrate(xs [][]float64, labels []int) error {
	for i, d := range mw.members {
		if err := d.Calibrate(xs, labels); err != nil {
			return fmt.Errorf("core: member %d: %w", i, err)
		}
	}
	return nil
}

// Members returns the underlying detectors (views, not copies).
func (mw *MultiWindow) Members() []*Detector { return mw.members }

// DriftEvents returns the 0-based sample indices where the ensemble
// declared drift.
func (mw *MultiWindow) DriftEvents() []int {
	out := make([]int, len(mw.driftEvents))
	copy(out, mw.driftEvents)
	return out
}

// Process advances every member on x. While a reconstruction is in
// flight it is driven through the member whose detection completed the
// quorum; other members are paused (the model is shared, so one
// reconstruction is the whole ensemble's reconstruction).
func (mw *MultiWindow) Process(x []float64) Result {
	mw.samples++
	if mw.recon != nil {
		res := mw.recon.Process(x)
		if res.Phase != Reconstructing {
			// Reconstruction finished: propagate the refreshed state to
			// the other members so they monitor the new concept.
			for _, d := range mw.members {
				if d != mw.recon {
					d.adoptStateFrom(mw.recon)
				}
			}
			mw.recon = nil
		}
		return res
	}

	var agg Result
	var firedNow *Detector
	flagged := 0
	for i, d := range mw.members {
		res := d.Process(x)
		if i == 0 {
			agg = res
		}
		if res.DriftDetected {
			mw.lastFire[i] = mw.samples
			firedNow = d
		}
		if mw.samples-mw.lastFire[i] <= mw.Horizon {
			flagged++
		}
	}

	if flagged >= mw.Quorum && firedNow != nil {
		mw.driftEvents = append(mw.driftEvents, mw.samples-1)
		agg.DriftDetected = true
		agg.Phase = Reconstructing
		if mw.wantReset {
			mw.model.Reset()
		}
		// The member that completed the quorum drives the shared rebuild;
		// everyone else's in-flight reconstruction is cancelled and all
		// alarms clear.
		mw.recon = firedNow
		for _, d := range mw.members {
			if d != firedNow && d.drift {
				d.drift = false
				d.count = 0
			}
		}
		for i := range mw.lastFire {
			mw.lastFire[i] = math.MinInt / 2
		}
		return agg
	}

	// No quorum: individual detections stay as alarms only. Cancel the
	// member-local reconstructions so monitoring continues (the shared
	// model was not reset — members run with ResetModelOnDrift off), and
	// scrub the member-level detection flag from the aggregate result —
	// the ensemble did not declare a drift.
	for _, d := range mw.members {
		if d.drift {
			d.drift = false
			d.count = 0
		}
	}
	agg.DriftDetected = false
	if agg.Phase == Reconstructing {
		agg.Phase = Monitoring
	}
	return agg
}

// MemoryBytes audits the ensemble's retained state: the shared model
// counted once, plus each member's detector-only overhead (centroids,
// counts, accumulators).
func (mw *MultiWindow) MemoryBytes() int {
	shared := mw.model.MemoryBytes()
	total := shared
	for _, d := range mw.members {
		total += d.MemoryBytes() - shared
	}
	return total
}

// Health reports the ensemble's health. Every member processes every
// sample against the same shared model, so member 0's snapshot is fully
// representative of ingestion and model state; only the phase is
// ensemble-level (reconstructing while the quorum-elected member drives
// the shared rebuild).
func (mw *MultiWindow) Health() health.Snapshot {
	s := mw.members[0].Health()
	if mw.recon != nil {
		s.Phase = Reconstructing.String()
	}
	return s
}

var _ Streaming = (*MultiWindow)(nil)

// adoptStateFrom copies the post-reconstruction centroid state and
// thresholds from src, re-arming the member against the new concept.
func (d *Detector) adoptStateFrom(src *Detector) {
	for c := range d.trainCor {
		copy(d.trainCor[c], src.trainCor[c])
		copy(d.cor[c], src.cor[c])
	}
	copy(d.num, src.num)
	d.baseNum = append(d.baseNum[:0], src.baseNum...)
	d.thetaDrift = src.thetaDrift
	d.thetaError = src.thetaError
	d.drift, d.check, d.win, d.dist, d.count = false, false, 0, 0, 0
}

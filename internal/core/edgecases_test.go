package core

import (
	"bytes"
	"testing"

	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// singleClassDetector mirrors the cooling-fan configuration: C=1.
func singleClassDetector(t *testing.T, seed uint64, window int) (*Detector, *rng.Rand) {
	t.Helper()
	m, err := model.New(model.Config{Classes: 1, Inputs: testDims, Hidden: 6, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 500)
	xs := make([][]float64, 300)
	labels := make([]int, 300)
	for i := range xs {
		xs[i] = sample(r, 0, 0)
	}
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(window)
	cfg.NRecon = 120
	d, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestSingleClassDetectorLifecycle(t *testing.T) {
	d, r := singleClassDetector(t, 30, 20)
	// Stationary: no drift, labels always 0.
	for i := 0; i < 400; i++ {
		res := d.Process(sample(r, 0, 0))
		if res.Label != 0 {
			t.Fatalf("C=1 label %d", res.Label)
		}
		if res.DriftDetected {
			t.Fatalf("false positive at %d", i)
		}
	}
	// Shift: must detect and reconstruct despite the degenerate
	// Init_Coord (pairwise distance is empty for C=1).
	detected := false
	for i := 0; i < 2000; i++ {
		if d.Process(sample(r, 0, 4)).DriftDetected {
			detected = true
		}
	}
	if !detected {
		t.Fatal("C=1 detector missed the drift")
	}
	if d.Reconstructions() < 1 {
		t.Fatal("reconstruction did not complete")
	}
	if d.PhaseNow() == Reconstructing {
		t.Fatal("stuck reconstructing")
	}
}

func TestEWMAReconstructionRoundTrip(t *testing.T) {
	// EWMA centroids through a full detect→reconstruct→re-arm cycle.
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(531)
	xs, labels := trainSet(r, 300, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(25)
	cfg.Update = EWMA
	cfg.EWMAGamma = 0.1
	cfg.NRecon = 150
	d, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	for i := 0; i < 2500 && d.Reconstructions() == 0; i++ {
		d.Process(sample(r, i%testClasses, 5))
	}
	if d.Reconstructions() == 0 {
		t.Fatal("EWMA cycle never completed a reconstruction")
	}
	// The detector must remain serialisable and functional afterwards.
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	if _, err := d.Model().Save(&mbuf, oselm.Float64); err != nil {
		t.Fatal(err)
	}
	m2, err := model.Load(&mbuf)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := LoadState(&buf, m2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Config().Update != EWMA || d2.Config().EWMAGamma != 0.1 {
		t.Fatalf("EWMA config lost in round trip: %+v", d2.Config())
	}
}

func TestRecalibrateAfterReconstructionChangesThresholds(t *testing.T) {
	d, r := newCalibrated(t, 32, DefaultConfig(20))
	before := d.ThetaDrift()
	for i := 0; i < 200; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	for i := 0; i < 3000 && d.Reconstructions() == 0; i++ {
		d.Process(sample(r, i%testClasses, 6))
	}
	if d.Reconstructions() == 0 {
		t.Fatal("no reconstruction")
	}
	if d.ThetaDrift() == before {
		t.Fatal("θ_drift not re-derived after reconstruction")
	}
	if d.ThetaDrift() <= 0 {
		t.Fatalf("re-derived θ_drift %v", d.ThetaDrift())
	}
}

func TestPinnedThresholdsSurviveReconstruction(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.DriftThreshold = 2.5
	cfg.ErrorThreshold = 0.5
	d, r := newCalibrated(t, 33, cfg)
	for i := 0; i < 3000 && d.Reconstructions() == 0; i++ {
		d.Process(sample(r, i%testClasses, 6))
	}
	if d.Reconstructions() == 0 {
		t.Skip("pinned thresholds prevented detection on this draw")
	}
	if d.ThetaDrift() != 2.5 || d.ThetaError() != 0.5 {
		t.Fatalf("pinned thresholds drifted: %v / %v", d.ThetaDrift(), d.ThetaError())
	}
}

func TestTriggerReconstructionIdempotentWhileActive(t *testing.T) {
	d, r := newCalibrated(t, 34, DefaultConfig(10))
	d.Process(sample(r, 0, 0))
	d.TriggerReconstruction()
	events := len(d.DriftEvents())
	d.TriggerReconstruction() // no-op while already reconstructing
	if len(d.DriftEvents()) != events {
		t.Fatal("double trigger recorded twice")
	}
}

func TestScoreStatsTracksMonitoring(t *testing.T) {
	d, r := newCalibrated(t, 35, DefaultConfig(30))
	n0, _, _ := d.ScoreStats()
	if n0 != 0 {
		t.Fatalf("fresh detector score count %d", n0)
	}
	for i := 0; i < 120; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	n, mean, std := d.ScoreStats()
	if n != 120 {
		t.Fatalf("score count %d, want 120", n)
	}
	if mean <= 0 || std < 0 {
		t.Fatalf("score stats mean=%v std=%v", mean, std)
	}
}

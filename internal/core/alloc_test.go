package core

import (
	"testing"
)

// Process must be allocation-free in steady state — both plain
// monitoring and the checking phase with an open window. The only
// allocating events in the detector's life are drift detections (the
// event log append) and reconstruction begin, which happen a handful of
// times per deployment, not per sample.

func TestProcessMonitoringZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(50)
	cfg.ErrorThreshold = 1e18 // never open a check window
	d, r := newCalibrated(t, 1, cfg)
	x := sample(r, 0, 0)
	if n := testing.AllocsPerRun(200, func() { d.Process(x) }); n != 0 {
		t.Fatalf("monitoring Process allocates %v objects per call, want 0", n)
	}
}

func TestProcessCheckingZeroAllocs(t *testing.T) {
	cfg := DefaultConfig(1 << 30) // window never closes: stays checking
	cfg.NRecon = 1 << 31
	cfg.NUpdate = 1 << 30
	cfg.AlwaysCheck = true
	cfg.DriftThreshold = 1e18
	d, r := newCalibrated(t, 1, cfg)
	x := sample(r, 0, 0)
	d.Process(x)
	if got := d.PhaseNow(); got != Checking {
		t.Fatalf("phase = %v, want checking", got)
	}
	if n := testing.AllocsPerRun(200, func() { d.Process(x) }); n != 0 {
		t.Fatalf("checking Process allocates %v objects per call, want 0", n)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"

	"edgedrift/internal/health"
	"edgedrift/internal/mat"
	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
	"edgedrift/internal/stats"
)

// DistanceKind selects the centroid metric.
type DistanceKind int

const (
	// L1 is the paper's metric (Algorithm 1 line 14).
	L1 DistanceKind = iota
	// L2 is the Euclidean alternative, used by the ablation benches.
	L2
)

// String implements fmt.Stringer.
func (d DistanceKind) String() string {
	if d == L2 {
		return "l2"
	}
	return "l1"
}

// CentroidUpdate selects how recent test centroids absorb new samples.
type CentroidUpdate int

const (
	// RunningMean is the paper's Algorithm 1 line 12 rule.
	RunningMean CentroidUpdate = iota
	// EWMA weights newer samples more heavily (§3.2's "higher weight to a
	// newer sample" remark); the weight is Config.EWMAGamma.
	EWMA
)

// String implements fmt.Stringer.
func (c CentroidUpdate) String() string {
	if c == EWMA {
		return "ewma"
	}
	return "running-mean"
}

// GuardPolicy selects what Process does with a sample carrying a
// non-finite (NaN/±Inf) feature. Without a guard, a single bad sample —
// a flaky sensor over a months-long deployment — flows into the centroid
// running means and the rank-1 RLS update, after which every distance
// and score is NaN and every threshold comparison silently fails
// forever: the detector looks alive but can never detect drift again.
type GuardPolicy int

const (
	// GuardReject (the default) refuses the sample before it touches any
	// model or centroid state: the rejection counter increments and
	// Process returns the last accepted sample's Result with the Rejected
	// flag set.
	GuardReject GuardPolicy = iota
	// GuardClamp repairs the sample into a scratch buffer (NaN → 0,
	// ±Inf → ±ClampLimit) and processes the repaired copy; the caller's
	// slice is never written.
	GuardClamp
	// GuardPanic panics on the first non-finite feature — for tests and
	// pipelines where a bad sample indicates a bug upstream that must not
	// be papered over.
	GuardPanic
)

// String implements fmt.Stringer.
func (g GuardPolicy) String() string {
	switch g {
	case GuardClamp:
		return "clamp"
	case GuardPanic:
		return "panic"
	default:
		return "reject"
	}
}

// Phase is the detector's state-machine phase.
type Phase int

const (
	// Monitoring: predicting normally, no open check window.
	Monitoring Phase = iota
	// Checking: a window is open and centroid distances accumulate.
	Checking
	// Reconstructing: a drift was detected and the model is being rebuilt.
	Reconstructing
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Monitoring:
		return "monitoring"
	case Checking:
		return "checking"
	case Reconstructing:
		return "reconstructing"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Stage identifies an instrumented compute stage, matching the rows of
// the paper's Table 6.
type Stage int

const (
	// StageLabelPrediction is Algorithm 1 line 6 (and 7).
	StageLabelPrediction Stage = iota
	// StageDistance is Algorithm 1 lines 12–14: the recent-centroid
	// update and the summed centroid distance.
	StageDistance
	// StageRetrainNoPred is Algorithm 2 lines 8–9.
	StageRetrainNoPred
	// StageRetrainWithPred is Algorithm 2 lines 11–12.
	StageRetrainWithPred
	// StageCoordInit is Algorithm 3 (Init_Coord).
	StageCoordInit
	// StageCoordUpdate is Algorithm 4 (Update_Coord).
	StageCoordUpdate
	numStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageLabelPrediction:
		return "label prediction"
	case StageDistance:
		return "distance computation"
	case StageRetrainNoPred:
		return "model retraining without label prediction"
	case StageRetrainWithPred:
		return "model retraining with label prediction"
	case StageCoordInit:
		return "label coordinates initialization"
	case StageCoordUpdate:
		return "label coordinates update"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Stages lists all instrumented stages in Table 6 order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Config parameterises the detector. Classes and Dims are inferred from
// the model and training data at Calibrate time.
type Config struct {
	// Window is W, the number of samples accumulated before a drift
	// decision (required, ≥ 1).
	Window int
	// ZDrift is z in Eq. 1 for θ_drift; 0 means 1 (the paper's choice).
	ZDrift float64
	// ZError calibrates θ_error as mean + ZError·std of training anomaly
	// scores; 0 means 1. Ignored when ErrorThreshold is set.
	ZError float64
	// ErrorThreshold overrides the calibrated θ_error when > 0.
	ErrorThreshold float64
	// DriftThreshold overrides the calibrated θ_drift when > 0.
	DriftThreshold float64
	// NSearch is Algorithm 2's N_search (samples that refresh label
	// coordinates by Init_Coord); 0 means 2·C+2.
	NSearch int
	// NUpdate is Algorithm 2's N_update (samples that refine coordinates
	// by Update_Coord); 0 means a quarter of NRecon.
	NUpdate int
	// NRecon is Algorithm 2's N, the total samples a reconstruction
	// consumes; 0 means 10·Window (and at least 100).
	NRecon int
	// Distance selects L1 (paper) or L2 centroid distance.
	Distance DistanceKind
	// Update selects RunningMean (paper) or EWMA recent centroids.
	Update CentroidUpdate
	// EWMAGamma is the new-sample weight when Update == EWMA; 0 means 0.05.
	EWMAGamma float64
	// ResetModelOnDrift resets each OS-ELM instance's learned state when
	// a reconstruction starts. Default true (DefaultConfig); turning it
	// off is the "continue sequential update" ablation.
	ResetModelOnDrift bool
	// ResetWindowState restores recent centroids to the trained centroids
	// after a window closes without detecting drift (ablation; the
	// pseudocode keeps them).
	ResetWindowState bool
	// AlwaysCheck opens windows unconditionally instead of gating on
	// θ_error (ablation).
	AlwaysCheck bool
	// Guard selects the non-finite-input policy; the zero value is
	// GuardReject, the production default.
	Guard GuardPolicy
	// ClampLimit is the magnitude ±Inf features are clamped to under
	// GuardClamp; 0 means 1e12.
	ClampLimit float64
	// Precision pins the numeric backend the bound model must compute
	// at; New rejects a model whose precision differs, so a config that
	// says "f32" can never silently run over a float64 model. The zero
	// value (Float64) is also what un-precision-aware callers get, so it
	// doubles as "the historical default" — models at other precisions
	// must be paired with a config that names theirs.
	Precision oselm.Precision
}

// DefaultConfig returns the paper-faithful configuration for a given
// window size.
func DefaultConfig(window int) Config {
	return Config{
		Window:            window,
		ZDrift:            1,
		ZError:            1,
		ResetModelOnDrift: true,
	}
}

func (c Config) withDefaults(classes int) (Config, error) {
	if c.Window <= 0 {
		return c, errors.New("core: Window must be ≥ 1")
	}
	if c.ZDrift == 0 {
		c.ZDrift = 1
	}
	if c.ZError == 0 {
		c.ZError = 1
	}
	if c.NRecon == 0 {
		c.NRecon = 10 * c.Window
		if c.NRecon < 100 {
			c.NRecon = 100
		}
	}
	if c.NSearch == 0 {
		c.NSearch = 2*classes + 2
	}
	if c.NUpdate == 0 {
		c.NUpdate = c.NRecon / 4
	}
	if c.NSearch > c.NRecon || c.NUpdate > c.NRecon {
		return c, fmt.Errorf("core: NSearch (%d) and NUpdate (%d) must not exceed NRecon (%d)", c.NSearch, c.NUpdate, c.NRecon)
	}
	if c.Update == EWMA && c.EWMAGamma == 0 {
		c.EWMAGamma = 0.05
	}
	if c.EWMAGamma < 0 || c.EWMAGamma > 1 {
		return c, fmt.Errorf("core: EWMAGamma %v out of [0,1]", c.EWMAGamma)
	}
	if c.Guard < GuardReject || c.Guard > GuardPanic {
		return c, fmt.Errorf("core: unknown guard policy %d", int(c.Guard))
	}
	if c.ClampLimit == 0 {
		c.ClampLimit = 1e12
	}
	if c.ClampLimit < 0 || math.IsNaN(c.ClampLimit) || math.IsInf(c.ClampLimit, 0) {
		return c, fmt.Errorf("core: ClampLimit %v must be finite and positive", c.ClampLimit)
	}
	return c, nil
}

// Result describes the outcome of processing one sample.
type Result struct {
	// Label is the class predicted for the sample.
	Label int
	// Score is the anomaly (reconstruction) score of the winning
	// instance; it is 0 while reconstructing with coordinate labels.
	Score float64
	// Phase is the detector phase after processing the sample.
	Phase Phase
	// DriftDetected is true exactly on the sample whose window close
	// crossed θ_drift.
	DriftDetected bool
	// Dist is the summed centroid distance accumulated by this sample's
	// window, 0 when no check window consumed the sample. (It used to
	// report the previous window's stale distance between checks.)
	Dist float64
	// Rejected is true when the ingestion guard refused the sample
	// (non-finite feature under GuardReject); the remaining fields replay
	// the last accepted sample's result, except DriftDetected which is
	// always false on a rejection.
	Rejected bool
}

// Detector is the proposed sequential drift detector bound to a
// multi-instance discriminative model. It is not safe for concurrent
// use; the fleet layer (internal/fleet) is the concurrent entry point.
type Detector struct {
	cfg     Config
	model   *model.Multi
	classes int
	dims    int

	trainCor [][]float64 // trained centroids, one per class
	cor      [][]float64 // recent test centroids
	num      []int       // per-class sample counts backing the running mean
	baseNum  []int       // counts at calibration, for ResetWindowState

	thetaError float64
	thetaDrift float64

	drift bool
	check bool
	win   int
	dist  float64

	// Reconstruction state. The threshold re-estimators are Welford
	// accumulators, not sample buffers — reconstruction must stay O(1) in
	// memory like everything else in the method.
	count       int
	reconDists  stats.Running // coordinate distances, predicted-label phase
	reconScores stats.Running // model scores, predicted-label phase
	starve      []int         // consecutive lost assignments per coordinate

	samplesSeen int
	driftEvents []int // sample indices (0-based) where drift was detected
	reconsDone  int

	calibrated bool

	// guard is the ingestion stage wrapped around this detector's raw
	// state machine; Process delegates through it. See Guard in stage.go.
	guard *Guard
	// divergences counts monitoring samples whose score came back
	// non-finite despite finite input (the model state itself diverged).
	divergences uint64
	// merges counts cooperative peer-state merges applied to the model
	// (MergeSeed); surfaced through Health.
	merges uint64
	// driftHook, when set, runs at the top of every detected-drift
	// transition, before the detector flips to Reconstructing and before
	// ResetModelOnDrift clears the model — the only instant the outgoing
	// model and its calibrated detector state are both still intact and
	// serialisable. The model pool checkpoints from here.
	driftHook func()

	ops       *opcount.Counter
	stageOps  [numStages]opcount.Counter
	stageN    [numStages]uint64

	// Batch-scoring buffers (lazy; see ProcessBatch). Sized batchBlock.
	batchLabels []int
	batchScores []float64
	scoreHist *stats.Running   // anomaly scores seen while monitoring (diagnostics)
	scoreBins *stats.Histogram // score distribution over [0, 4·θ_error), for health
}

// New binds a detector to a model. Calibrate must be called before
// Process.
func New(m *model.Multi, cfg Config) (*Detector, error) {
	c, err := cfg.withDefaults(m.Classes())
	if err != nil {
		return nil, err
	}
	if c.Precision != m.Precision() {
		return nil, fmt.Errorf("core: config precision %v does not match model precision %v", c.Precision, m.Precision())
	}
	d := &Detector{
		cfg:       c,
		model:     m,
		classes:   m.Classes(),
		dims:      m.Config().Inputs,
		scoreHist: &stats.Running{},
	}
	d.guard = NewGuard(machine{d}, c.Guard, c.ClampLimit)
	if c.Guard == GuardClamp {
		// Pre-size the repair scratch so the hot path stays 0-alloc.
		d.guard.clampBuf = make([]float64, d.dims)
	}
	return d, nil
}

// machine adapts the detector's raw (unguarded) state machine to the
// Streaming interface so the ingestion Guard can wrap it like any other
// stage. It is the composition seam between the two layers that used to
// be one method.
type machine struct{ d *Detector }

func (m machine) Process(x []float64) Result { return m.d.processAccepted(x) }
func (m machine) MemoryBytes() int           { return m.d.MemoryBytes() }
func (m machine) Health() health.Snapshot    { return m.d.Health() }
func (m machine) PhaseNow() Phase            { return m.d.PhaseNow() }

// batchBlock is how many monitoring samples the detector scores per
// model sweep; aligned with the model/oselm chunk so one block is one
// batched GEMM pair per instance.
const batchBlock = 64

// ProcessBatch on the raw state machine: score whole blocks through the
// model's batched forward whenever the model is guaranteed static across
// the block, fall back to per-sample processing everywhere else.
//
// The fast path requires ops == nil (op-counted runs charge per-sample
// stage tallies through closures the batch path cannot replicate
// mid-GEMM) and the monitoring/checking phases (reconstruction trains
// the model on every sample, so consecutive scores are not batchable).
// Within a block, a drift detection or divergence mutates the model;
// the remaining precomputed scores are discarded and the outer loop
// resumes — per-sample — on the next sample, exactly as the sequential
// algorithm would.
func (m machine) ProcessBatch(dst []Result, xs [][]float64) []Result {
	d := m.d
	i := 0
	for i < len(xs) {
		if d.ops != nil || d.drift {
			dst = append(dst, d.processAccepted(xs[i]))
			i++
			continue
		}
		n := len(xs) - i
		if n > batchBlock {
			n = batchBlock
		}
		chunk := xs[i : i+n]
		labels, scores := d.ensureBatchBuffers(n)
		d.model.PredictBatch(labels, scores, chunk)
		for k, x := range chunk {
			d.samplesSeen++
			d.stageN[StageLabelPrediction]++
			res := d.monitorScored(x, labels[k], scores[k])
			dst = append(dst, res)
			i++
			if d.drift {
				break // model state changed; precomputed scores are stale
			}
		}
	}
	return dst
}

// ensureBatchBuffers lazily allocates the label/score staging for
// batched prediction; per-sample-only deployments never carry it.
func (d *Detector) ensureBatchBuffers(n int) ([]int, []float64) {
	if d.batchLabels == nil {
		d.batchLabels = make([]int, batchBlock)
		d.batchScores = make([]float64, batchBlock)
	}
	return d.batchLabels[:n], d.batchScores[:n]
}

var _ Streaming = (*Detector)(nil)
var _ BatchStreaming = (*Detector)(nil)
var _ BatchStreaming = (*Guard)(nil)
var _ BatchStreaming = machine{}

// Config returns the defaulted configuration.
func (d *Detector) Config() Config { return d.cfg }

// Model returns the bound discriminative model.
func (d *Detector) Model() *model.Multi { return d.model }

// SetOps attaches an operation counter to the detector and its model.
func (d *Detector) SetOps(c *opcount.Counter) {
	d.ops = c
	d.model.SetOps(c)
}

// ThetaError and ThetaDrift return the active thresholds.
func (d *Detector) ThetaError() float64 { return d.thetaError }

// SetErrorThreshold pins θ_error in place, before or after Calibrate.
// Called before, it records the override so Calibrate skips the
// training-score estimate; called after, it also swaps the live
// threshold and re-bins the health histogram around it. Unlike
// rebuilding the detector through New, it preserves every accumulated
// counter — guard rejections, divergences, stage op tallies — which is
// the point: calibration should pin a number, not erase history.
func (d *Detector) SetErrorThreshold(theta float64) error {
	if !(theta > 0) || math.IsInf(theta, 0) {
		return fmt.Errorf("core: error threshold %v must be finite and positive", theta)
	}
	d.cfg.ErrorThreshold = theta
	if d.calibrated {
		d.thetaError = theta
		d.initScoreBins()
	}
	return nil
}

// ThetaDrift returns the active drift threshold θ_drift.
func (d *Detector) ThetaDrift() float64 { return d.thetaDrift }

// PhaseNow returns the current phase.
func (d *Detector) PhaseNow() Phase {
	switch {
	case d.drift:
		return Reconstructing
	case d.check:
		return Checking
	default:
		return Monitoring
	}
}

// ScoreStats returns the running count, mean and standard deviation of
// the anomaly scores observed while monitoring — the live counterpart of
// the θ_error calibration, useful for operational dashboards.
func (d *Detector) ScoreStats() (n int, mean, std float64) {
	return d.scoreHist.N(), d.scoreHist.Mean(), d.scoreHist.Std()
}

// DriftEvents returns the 0-based indices of samples on which drift was
// detected, in order.
func (d *Detector) DriftEvents() []int {
	out := make([]int, len(d.driftEvents))
	copy(out, d.driftEvents)
	return out
}

// Reconstructions returns how many reconstructions have completed.
func (d *Detector) Reconstructions() int { return d.reconsDone }

// SamplesSeen returns the number of Process calls.
func (d *Detector) SamplesSeen() int { return d.samplesSeen }

// TrainedCentroid returns a copy of class c's trained centroid.
func (d *Detector) TrainedCentroid(c int) []float64 { return mat.CopyVec(d.trainCor[c]) }

// RecentCentroid returns a copy of class c's recent test centroid.
func (d *Detector) RecentCentroid(c int) []float64 { return mat.CopyVec(d.cor[c]) }

// StageOps returns the accumulated operation counts and invocation count
// for a stage.
func (d *Detector) StageOps(s Stage) (opcount.Counter, uint64) {
	return d.stageOps[s], d.stageN[s]
}

// distance returns the configured metric between two vectors, counting
// ops.
func (d *Detector) distance(a, b []float64) float64 {
	n := len(a)
	switch d.cfg.Distance {
	case L2:
		d.ops.AddMulAdd(n)
		d.ops.AddAdd(n)
		return mat.L2Dist(a, b)
	default:
		d.ops.AddAbs(n)
		d.ops.AddAdd(n)
		return mat.L1Dist(a, b)
	}
}

// centroidDist is Algorithm 1 line 14: the summed distance between every
// recent and trained centroid pair.
func (d *Detector) centroidDist() float64 {
	var s float64
	for c := range d.cor {
		s += d.distance(d.cor[c], d.trainCor[c])
	}
	return s
}

// Calibrate computes trained centroids, per-class counts and both
// thresholds from the labelled training set, per §3.2 and Eq. 1. The
// model must already be trained on the same data. Unsupervised callers
// can obtain labels from k-means (see LabelsByKMeans in this package).
func (d *Detector) Calibrate(xs [][]float64, labels []int) error {
	if len(xs) == 0 || len(xs) != len(labels) {
		return fmt.Errorf("core: calibration needs matched non-empty samples, got %d/%d", len(xs), len(labels))
	}
	if len(xs[0]) != d.dims {
		return fmt.Errorf("core: sample dimension %d, want %d", len(xs[0]), d.dims)
	}
	d.trainCor = make([][]float64, d.classes)
	d.cor = make([][]float64, d.classes)
	d.num = make([]int, d.classes)
	for c := range d.trainCor {
		d.trainCor[c] = make([]float64, d.dims)
		d.cor[c] = make([]float64, d.dims)
	}
	for i, x := range xs {
		l := labels[i]
		if l < 0 || l >= d.classes {
			return fmt.Errorf("core: label %d out of range [0,%d)", l, d.classes)
		}
		if !mat.AllFinite(x) {
			return fmt.Errorf("core: training sample %d has a non-finite feature", i)
		}
		d.num[l] = mat.RunningMeanUpdate(d.trainCor[l], d.num[l], x)
	}
	for c := range d.cor {
		copy(d.cor[c], d.trainCor[c])
		if d.num[c] == 0 {
			return fmt.Errorf("core: class %d has no training samples", c)
		}
	}
	d.baseNum = append([]int(nil), d.num...)

	// Eq. 1: θ_drift from the distribution of distances between each
	// training sample and "the centroid of its predicted label" (§3.4) —
	// predicted, not given: ambiguous samples land near the centroid the
	// model assigns them to, keeping the threshold tight.
	dists := make([]float64, len(xs))
	for i, x := range xs {
		pred, _ := d.model.Predict(x)
		dists[i] = d.distance(x, d.trainCor[pred])
	}
	mu, sigma := stats.MeanStd(dists)
	if d.cfg.DriftThreshold > 0 {
		d.thetaDrift = d.cfg.DriftThreshold
	} else {
		d.thetaDrift = mu + d.cfg.ZDrift*sigma
	}

	// θ_error from the model's anomaly scores on the training set.
	if d.cfg.ErrorThreshold > 0 {
		d.thetaError = d.cfg.ErrorThreshold
	} else {
		scores := make([]float64, len(xs))
		for i, x := range xs {
			_, scores[i] = d.model.Predict(x)
		}
		m2, s2 := stats.MeanStd(scores)
		d.thetaError = m2 + d.cfg.ZError*s2
	}

	d.initScoreBins()

	d.drift, d.check, d.win, d.dist, d.count = false, false, 0, 0, 0
	d.reconDists.Reset()
	d.reconScores.Reset()
	d.calibrated = true
	return nil
}

// initScoreBins (re)creates the health histogram of monitoring scores
// over [0, 4·θ_error) — wide enough to show the drift-triggering tail
// without letting outliers flatten the resolution near the threshold.
func (d *Detector) initScoreBins() {
	hi := 4 * d.thetaError
	if !(hi > 0) || math.IsInf(hi, 0) {
		hi = 1
	}
	d.scoreBins = stats.NewHistogram(0, hi, 16)
}

// stage wraps fn with per-stage op accounting.
func (d *Detector) stage(s Stage, fn func()) {
	if d.ops == nil {
		d.stageN[s]++
		fn()
		return
	}
	before := *d.ops
	fn()
	d.stageOps[s].AddCounter(d.ops.Sub(before))
	d.stageN[s]++
}

// Process consumes one sample and advances the state machine
// (Algorithm 1). It panics if Calibrate has not run.
//
// Samples carrying a non-finite feature never reach the model or
// centroid state; they are handled by the composed ingestion Guard
// stage first (see stage.go). Under the default GuardReject the
// accepted-sample stream behaves exactly as if the bad samples had
// never existed — same drift events, same centroids, bit for bit.
func (d *Detector) Process(x []float64) Result {
	if !d.calibrated {
		panic("core: Process before Calibrate")
	}
	if len(x) != d.dims {
		panic(fmt.Sprintf("core: sample dimension %d, want %d", len(x), d.dims))
	}
	return d.guard.Process(x)
}

// ProcessBatch consumes the samples of xs in order, appending one
// Result each to dst, with results and post-call state identical to
// calling Process per sample (see BatchStreaming). Monitoring-phase
// samples are scored in blocks through the model's batched GEMM
// forward; reconstruction, op-counted runs and guard-rejected samples
// take the per-sample path internally. After the lazily-allocated batch
// buffers exist, the call performs no heap allocation beyond dst's own
// growth.
func (d *Detector) ProcessBatch(dst []Result, xs [][]float64) []Result {
	if !d.calibrated {
		panic("core: Process before Calibrate")
	}
	for _, x := range xs {
		if len(x) != d.dims {
			panic(fmt.Sprintf("core: sample dimension %d, want %d", len(x), d.dims))
		}
	}
	return d.guard.ProcessBatch(dst, xs)
}

// processAccepted is the raw Algorithm 1 state machine, running on
// samples the ingestion Guard has already admitted (and, under
// GuardClamp, repaired).
func (d *Detector) processAccepted(x []float64) Result {
	d.samplesSeen++

	if d.drift {
		return d.reconstructStep(x)
	}

	var label int
	var score float64
	d.stage(StageLabelPrediction, func() {
		label, score = d.model.Predict(x)
	})
	return d.monitorScored(x, label, score)
}

// monitorScored is the monitoring-phase tail of Algorithm 1: everything
// after the label prediction, operating on an already-computed (label,
// score) pair. Factored out of processAccepted so the batched path —
// which computes whole blocks of predictions in one model sweep — drives
// the identical state machine per sample. samplesSeen and the
// label-prediction stage tally are the caller's responsibility.
func (d *Detector) monitorScored(x []float64, label int, score float64) Result {
	if math.IsNaN(score) || math.IsInf(score, 0) {
		// The input was finite, so the model's own state has diverged
		// (e.g. RLS blow-up between watchdog passes). Degrade gracefully:
		// rebuild the model through the reconstruction path instead of
		// comparing NaN against θ_error forever. Not recorded as a drift
		// event — it is a health event, visible in Health().
		d.divergences++
		d.scoreBins.Observe(score) // counted as dropped, keeping loss visible
		d.enterReconstruction(false)
		return Result{Phase: Reconstructing}
	}
	d.scoreHist.Observe(score)
	d.scoreBins.Observe(score)

	res := Result{Label: label, Score: score}

	if !d.check && (d.cfg.AlwaysCheck || score >= d.thetaError) {
		d.ops.AddCmp(1)
		d.check = true
		d.win = 0
	} else if !d.check {
		d.ops.AddCmp(1)
	}

	if d.check && d.win < d.cfg.Window {
		d.stage(StageDistance, func() {
			d.updateRecent(label, x)
			d.dist = d.centroidDist()
		})
		d.win++
		// Dist is reported only on samples a window actually consumed;
		// capture it before a close can reset the window state.
		res.Dist = d.dist
		if d.win == d.cfg.Window {
			d.ops.AddCmp(1)
			if d.dist >= d.thetaDrift {
				d.enterReconstruction(true)
				res.DriftDetected = true
			} else if d.cfg.ResetWindowState {
				d.resetRecent()
			}
			d.check = false
		}
	}

	res.Phase = d.PhaseNow()
	return res
}

// updateRecent applies the configured recent-centroid update for label.
func (d *Detector) updateRecent(label int, x []float64) {
	switch d.cfg.Update {
	case EWMA:
		mat.EWMAUpdate(d.cor[label], d.cfg.EWMAGamma, x)
		d.num[label]++
		d.ops.AddMulAdd(2 * d.dims)
	default:
		d.num[label] = mat.RunningMeanUpdate(d.cor[label], d.num[label], x)
		d.ops.AddMulAdd(d.dims)
		d.ops.AddDiv(d.dims)
	}
}

// resetRecent restores recent centroids and counts to their calibrated
// values (ResetWindowState ablation).
func (d *Detector) resetRecent() {
	for c := range d.cor {
		copy(d.cor[c], d.trainCor[c])
	}
	copy(d.num, d.baseNum)
	d.dist = 0
}

// TriggerReconstruction forces the detector into the Algorithm 2
// reconstruction mode, as if a drift had just been detected on the most
// recent sample. It exists so external detection signals (the batch
// baselines, an operator command) can drive the same adaptation path the
// internal detector uses.
func (d *Detector) TriggerReconstruction() {
	if !d.calibrated {
		panic("core: TriggerReconstruction before Calibrate")
	}
	if d.drift {
		return // already reconstructing
	}
	d.enterReconstruction(true)
}

// enterReconstruction flips the state machine into Reconstructing.
// recordEvent distinguishes a detected drift (logged in DriftEvents)
// from a health-driven model rebuild (counted in Health only): the drift
// event list is an evaluation artefact and must match the paper's
// detection semantics exactly.
func (d *Detector) enterReconstruction(recordEvent bool) {
	if recordEvent && d.driftHook != nil {
		// Run before any state flips: the hook must see the outgoing
		// model pre-reset and a detector that SaveState still accepts.
		d.driftHook()
	}
	d.drift = true
	d.check = false
	if recordEvent {
		d.driftEvents = append(d.driftEvents, d.samplesSeen-1)
	}
	d.beginReconstruction()
}

// SetDriftHook registers fn to run at the start of every detected-drift
// transition (TriggerReconstruction included; health-driven divergence
// rebuilds excluded — there is nothing worth checkpointing about a
// diverged model). The hook runs with the detector still in its
// pre-drift state; it must not call Process. A nil fn clears the hook.
func (d *Detector) SetDriftHook(fn func()) { d.driftHook = fn }

// Rejected returns how many samples the ingestion guard refused
// (GuardReject policy).
func (d *Detector) Rejected() uint64 { return d.guard.Rejected() }

// Clamped returns how many samples the ingestion guard repaired
// (GuardClamp policy).
func (d *Detector) Clamped() uint64 { return d.guard.Clamped() }

// Divergences returns how many times the model produced a non-finite
// score on a finite input, forcing a health-driven rebuild.
func (d *Detector) Divergences() uint64 { return d.divergences }

// Health assembles the detector's structured health snapshot: guard
// counters, the aggregated RLS watchdog view across all model
// instances, and the monitoring-score distribution summary.
func (d *Detector) Health() health.Snapshot {
	mh := d.model.Health()
	n, mean, std := d.ScoreStats()
	s := health.Snapshot{
		SamplesSeen:      d.samplesSeen,
		Rejected:         d.guard.Rejected(),
		Clamped:          d.guard.Clamped(),
		ModelDivergences: d.divergences,
		WatchdogResets:   mh.WatchdogResets,
		PTraceMax:        mh.PTrace,
		PFinite:          mh.PFinite && mh.BetaFinite,
		ScoreSamples:     n,
		ScoreMean:        mean,
		ScoreStd:         std,
		Merges:           d.merges,
		Phase:            d.PhaseNow().String(),
	}
	if d.scoreBins != nil {
		s.ScoreHistDropped = d.scoreBins.Dropped()
		s.ScoreHistTotal = d.scoreBins.Total()
	}
	return s
}

// MemoryBytes audits the detector's retained state: the discriminative
// model plus two centroid sets, counts and O(1) accumulators — the
// quantity the paper's Table 4 compares against the batch methods'
// buffers.
func (d *Detector) MemoryBytes() int {
	const f = 8
	centroids := 2 * d.classes * d.dims * f // trained + recent
	counts := 2 * d.classes * 8             // num + baseNum
	scalars := 16 * f                       // thresholds, window state, accumulators
	batch := 8 * (len(d.batchLabels) + len(d.batchScores)) // lazy; 0 until batching is used
	return d.model.MemoryBytes() + centroids + counts + scalars + batch
}

// beginReconstruction transitions into Algorithm 2. The per-class counts
// are reset to 1 so the running-mean coordinates can actually follow the
// new concept: counts inherited from training (thousands of samples)
// would freeze the coordinates for the whole reconstruction. The paper's
// pseudocode leaves num untouched, but with that reading Update_Coord
// moves each coordinate by at most N_update/num — effectively nothing —
// and the rebuilt model would re-detect the same drift forever.
func (d *Detector) beginReconstruction() {
	d.count = 0
	d.reconDists.Reset()
	d.reconScores.Reset()
	if d.starve == nil {
		d.starve = make([]int, d.classes)
	}
	for c := range d.num {
		d.num[c] = 1
		d.starve[c] = 0
	}
	if d.cfg.ResetModelOnDrift {
		d.model.Reset()
	}
}
